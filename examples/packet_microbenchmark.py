#!/usr/bin/env python3
"""Packet-level microbenchmarks with the imperative sim-MPI.

Uses :class:`repro.mpi.api.SimComm` (mpi4py-style calls over the
packet simulator) on a small dragonfly to show, packet by packet, the
physics the paper's campaigns average over:

1. small-message collectives: latency vs routing mode,
2. an incast hotspot and the stalls it produces,
3. per-mode minimal/non-minimal packet splits under contention.

Run:  python examples/packet_microbenchmark.py
"""

import numpy as np

from repro import AD0, AD3, RoutingEnv, toy
from repro.mpi.api import SimComm
from repro.network.packet_sim import InjectionSpec, PacketSimulator


def collective_latency(top) -> None:
    print("1) 8-byte allreduce over 16 ranks (recursive doubling):")
    for mode in (AD0, AD3):
        comm = SimComm(
            top, np.arange(16), env=RoutingEnv.uniform(mode), rng=np.random.default_rng(0)
        )
        t = comm.allreduce(8)
        print(f"   {mode.name}: {t * 1e6:6.2f} us")


def incast(top) -> None:
    print("\n2) 8-way incast of 16 KiB messages into one node:")
    for mode in (AD0, AD3):
        sim = PacketSimulator(top, rng=np.random.default_rng(1))
        for s in range(8):
            sim.add_message(InjectionSpec(src=s, dst=31, nbytes=16384, mode=mode))
        sim.run()
        worst = max(m.latency(sim.config.step_time) for m in sim.messages)
        print(
            f"   {mode.name}: slowest message {worst * 1e6:7.2f} us, "
            f"stalls/flit {sim.stall_to_flit_ratio():.2f}"
        )


def packet_split(top) -> None:
    print("\n3) adaptive split under cross-group contention (16 x 16 KiB):")
    for mode in (AD0, AD3):
        sim = PacketSimulator(top, rng=np.random.default_rng(2))
        for s in range(16):
            sim.add_message(
                InjectionSpec(src=s, dst=16 + (s % 16), nbytes=16384, mode=mode)
            )
        sim.run()
        mn = sum(m.min_packets for m in sim.messages)
        nm = sum(m.nonmin_packets for m in sim.messages)
        print(
            f"   {mode.name}: {mn} minimal / {nm} non-minimal packets "
            f"({100 * mn / (mn + nm):.0f}% minimal)"
        )


def main() -> None:
    top = toy()
    print(f"system: {top.describe()}\n")
    collective_latency(top)
    incast(top)
    packet_split(top)


if __name__ == "__main__":
    main()
