#!/usr/bin/env python3
"""The paper's production study in miniature: all six applications.

Runs a paired AD0-vs-AD3 campaign for each production application,
prints a Table-II-style summary, and asks the advisor what each
application should use — reproducing the study's best-practice output:
AD3 for everything except the bisection-bound HACC.

Run:  python examples/routing_mode_study.py           # quick (~1 min)
      python examples/routing_mode_study.py --samples 16
"""

import argparse

from repro import CampaignConfig, recommend, run_campaign, theta
from repro.apps import PRODUCTION_APPS
from repro.core.analysis import improvement_table
from repro.core.variability import format_variability
from repro.scheduler.background import BackgroundModel
from repro.util import derive_rng


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=8, help="runs per mode per app")
    args = parser.parse_args()

    top = theta()
    bm = BackgroundModel(top)
    scenarios = bm.build_pool(6, derive_rng(2021, "example-pool"), reserve_nodes=512)

    records = []
    profiles = {}
    for cls in PRODUCTION_APPS:
        app = cls()
        print(f"running {app.name} ({args.samples} samples per mode) ...")
        recs = run_campaign(
            top,
            CampaignConfig(app=app, samples=args.samples),
            background_model=bm,
            scenarios=scenarios,
        )
        records.extend(recs)
        profiles[app.name] = recs[0].report

    print("\nTable II (reproduced)")
    print(f"{'app':14s} {'AD0 (s)':>16s}  {'AD3 (s)':>16s}  {'%time':>7s}  {'%MPI':>7s}  {'runs':>4s}")
    for row in improvement_table(records):
        print(row.format())

    milc_records = [r for r in records if r.app == "MILC"]
    print("\nMILC variability attribution (what drives the spread):")
    print(format_variability(milc_records))

    print("\nadvisor recommendations (Section II-E best practices):")
    for name, report in profiles.items():
        rec = recommend(report)
        print(f"  {name:14s} -> {rec.mode.name}  [{rec.profile_class}]")


if __name__ == "__main__":
    main()
