#!/usr/bin/env python3
"""Quickstart: is AD0 or AD3 better for a MILC-like job on Theta?

Builds the Theta dragonfly, runs a small paired production campaign
(same placements, same background congestion, both routing modes), and
prints the comparison plus the advisor's recommendation — the paper's
Section IV experiment in miniature.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AD0,
    AD3,
    CampaignConfig,
    MILC,
    recommend,
    run_campaign,
    stats_by_mode,
    theta,
)

SAMPLES = 8


def main() -> None:
    top = theta()
    print(f"system: {top.describe()}")

    app = MILC()
    print(f"app:    {app.describe()}\n")

    print(f"running {SAMPLES} paired production samples per mode ...")
    records = run_campaign(
        top,
        CampaignConfig(app=app, n_nodes=256, modes=(AD0, AD3), samples=SAMPLES),
    )

    stats = stats_by_mode(records)
    for mode in ("AD0", "AD3"):
        s = stats[mode]
        print(
            f"  {mode}: mean {s.mean:7.1f} s  std {s.std:6.1f}  "
            f"p95 {s.p95:7.1f}  (n={s.n})"
        )
    imp = 100 * (stats["AD0"].mean - stats["AD3"].mean) / stats["AD0"].mean
    print(f"\nAD3 improvement over AD0: {imp:+.1f}%  (paper: +11.0%)")

    # what would the advisor have said from one AutoPerf profile?
    rec = recommend(records[0].report)
    print(f"\nadvisor: {rec}")


if __name__ == "__main__":
    main()
