#!/usr/bin/env python3
"""Bring your own application: model it, profile it, pick its bias.

Defines a new :class:`~repro.apps.base.Application` — a 2D halo exchange
with periodic large checkpoint flushes — then (1) profiles it with
AutoPerf under production background, (2) asks the advisor for a routing
mode, and (3) verifies the advice with a small paired campaign,
including a custom (non-vendor) bias from the (shift, add) space.

Run:  python examples/custom_application.py
"""

import numpy as np

from repro import AD0, AD3, CampaignConfig, recommend, run_campaign, stats_by_mode, theta
from repro.apps.base import Application, grid_dims, stencil_flows
from repro.core.biases import custom_bias
from repro.mpi.collectives import allreduce_flows
from repro.mpi.patterns import CollectiveSpec, P2PSpec, Phase
from repro.network.fluid import FlowSet
from repro.util import KiB, MiB


class HaloCheckpoint(Application):
    """2D halo exchange + periodic checkpoint incast to I/O nodes."""

    name = "halocheckpoint"
    scaling = "strong"
    base_nodes = 256
    halo_msg_bytes = 16 * KiB
    exchanges_per_iter = 200
    allreduces_per_iter = 150
    checkpoint_bytes = 2 * MiB
    compute_per_iter = 0.08

    def n_iterations(self, P: int) -> int:
        return 2000

    def phases(self, nodes, rng):
        nodes = np.asarray(nodes, dtype=np.int64)
        P = nodes.size
        s = self.scale_factor(P)
        dims = grid_dims(P, 2)

        halo = stencil_flows(nodes, dims, self.halo_msg_bytes * s * self.exchanges_per_iter)
        p2p = P2PSpec(
            flows=halo,
            exposed_messages=0.2 * 4 * self.exchanges_per_iter,
            wait_op="MPI_Waitall",
            messages_per_rank=4 * self.exchanges_per_iter,
            overlap_fraction=0.7,
        )
        ar_flows, rounds = allreduce_flows(nodes, 8.0)
        ar = CollectiveSpec(
            op="MPI_Allreduce",
            flows=ar_flows.scaled(self.allreduces_per_iter),
            rounds=rounds * self.allreduces_per_iter,
            calls=self.allreduces_per_iter,
            msg_bytes=8.0,
        )
        # checkpoint: every 8th rank acts as an I/O aggregator
        writers = np.arange(P)
        targets = nodes[(writers // 8) * 8]
        keep = nodes[writers] != targets
        ckpt = FlowSet(
            nodes[writers][keep],
            targets[keep],
            np.full(int(keep.sum()), self.checkpoint_bytes * s / 10),
            np.zeros(int(keep.sum()), dtype=np.int64),
        )
        ckpt_spec = P2PSpec(flows=ckpt, wait_op="MPI_Send", messages_per_rank=1.0)

        return [
            Phase(
                name="halo",
                compute_time=self.compute_per_iter * s,
                p2p=p2p,
                collectives=[ar],
                spread_time=self.compute_per_iter * s,
            ),
            Phase(name="checkpoint", compute_time=0.0, p2p=ckpt_spec),
        ]


def main() -> None:
    top = theta()
    app = HaloCheckpoint()

    print("profiling one production run ...")
    records = run_campaign(
        top, CampaignConfig(app=app, samples=1, modes=(AD0,), seed=99)
    )
    print(records[0].report.summary())

    rec = recommend(records[0].report)
    print(f"\nadvisor: {rec}\n")

    modes = (AD0, rec.mode, custom_bias(1, 2))
    print(f"verifying with a paired campaign over {[m.name for m in modes]} ...")
    records = run_campaign(
        top, CampaignConfig(app=app, samples=6, modes=modes, seed=99)
    )
    for mode, st in sorted(stats_by_mode(records).items(), key=lambda kv: kv[1].mean):
        print(f"  {mode:6s} mean {st.mean:7.1f} s  std {st.std:6.1f}")


if __name__ == "__main__":
    main()
