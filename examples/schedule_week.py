#!/usr/bin/env python3
"""Time-correlated facility study driven by a batch-scheduler trace.

Simulates a few hours of Theta's batch scheduler (Poisson arrivals,
FCFS + backfill, production placement), drives the before/after
default-routing comparison with the *same* evolving machine state, and
exports the resulting LDMS series to CSV — the full monitoring-pipeline
workflow a facility analyst would run.

Run:  python examples/schedule_week.py
"""

import numpy as np

from repro import AD3, RoutingEnv, theta
from repro.core.facility import WindowConfig, simulate_production_window
from repro.core.reporting import series_plot
from repro.monitoring.export import ldms_series_to_csv
from repro.scheduler.simulator import BatchScheduler

HOURS = 1.0
INTERVALS = 10


def main() -> None:
    top = theta()
    print(f"simulating {HOURS:.0f} h of the batch scheduler on {top.params.name} ...")
    sched = BatchScheduler(top, arrival_rate=14)
    trace = sched.run(HOURS, np.random.default_rng(11), sample_interval_hours=1 / 60)
    print(
        f"  {len(trace.jobs)} jobs submitted, "
        f"{sum(1 for j in trace.jobs if j.ran)} started, "
        f"mean utilization {trace.utilization.mean():.0%}, "
        f"mean queue wait {trace.mean_wait_hours():.2f} h"
    )

    print("\nreplaying the same machine state under both routing defaults ...")
    windows = {}
    for env in (RoutingEnv(), RoutingEnv.uniform(AD3)):
        windows[env.p2p_mode.name] = simulate_production_window(
            top,
            WindowConfig(env=env, n_intervals=INTERVALS, seed=5),
            trace=trace,
        )

    b = windows["AD0"].series()
    a = windows["AD3"].series()
    print(f"  flits : {b['flits'].sum():.3e} -> {a['flits'].sum():.3e} "
          f"({(a['flits'].sum() / b['flits'].sum() - 1):+.1%})")
    print(f"  stalls: {b['stalls'].sum():.3e} -> {a['stalls'].sum():.3e} "
          f"({(a['stalls'].sum() / b['stalls'].sum() - 1):+.1%})")

    print("\nstall series (one glyph per default):")
    print(series_plot(b["time"], {"AD0": b["stalls"], "AD3": a["stalls"]},
                      width=60, height=7, ylabel="stalls/interval"))

    csv = ldms_series_to_csv(windows["AD3"].ldms)
    print(f"\nLDMS CSV export (first 3 lines of {len(csv.splitlines())}):")
    for line in csv.splitlines()[:3]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
