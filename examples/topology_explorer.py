#!/usr/bin/env python3
"""Explore a dragonfly's geometry the way the paper reasons about it.

Prints, for Theta, Cori, and a Slingshot system: the structural summary,
the bisection/injection balance, minimal-path hop-distance and
diversity statistics, and how compact vs dispersed placements differ in
rank-3 exposure (Section II-C's placement discussion, quantified).

Run:  python examples/topology_explorer.py
"""

import numpy as np

from repro.core.reporting import bar_chart
from repro.scheduler.placement import compact_placement, dispersed_placement
from repro.topology import (
    cori,
    minimal_path_diversity,
    minimal_router_hops,
    placement_geometry,
    slingshot,
    theta,
)
from repro.topology.queries import bisection_cut


def explore(top) -> None:
    print(f"\n=== {top.params.name} ===")
    print(top.describe())

    half = np.arange(top.n_groups // 2)
    cut = bisection_cut(top, half)
    print(f"half-machine optical cut: {cut / 1e12:.2f} TB/s per direction")

    rng = np.random.default_rng(1)
    src = rng.integers(0, top.n_nodes, 2000)
    dst = (src + 1 + rng.integers(0, top.n_nodes - 1, 2000)) % top.n_nodes
    hops = minimal_router_hops(top, src, dst)
    div = minimal_path_diversity(top, src, dst)
    print(
        f"random pairs: mean minimal hops {hops.mean():.2f}, "
        f"mean minimal diversity {div.mean():.1f} routes"
    )

    for kind, fn in (("compact", compact_placement), ("dispersed", dispersed_placement)):
        geo = placement_geometry(top, fn(top, min(256, top.n_nodes // 4), np.random.default_rng(2)))
        print(
            f"256-node {kind:9s}: {geo['groups']:2d} groups, "
            f"{geo['cross_group_fraction']:.0%} pairs cross groups, "
            f"mean hops {geo['mean_min_hops']:.2f}"
        )


def main() -> None:
    tops = [theta(), cori(), slingshot()]
    for top in tops:
        explore(top)

    print("\nbisection : injection ratio by system:")
    print(
        bar_chart(
            [t.params.name for t in tops],
            [t.bisection_to_injection_ratio for t in tops],
            width=30,
        )
    )


if __name__ == "__main__":
    main()
