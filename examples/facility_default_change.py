#!/usr/bin/env python3
"""The facility's decision: what happens if the *default* becomes AD3?

Simulates two comparable production weeks on Theta — one with the AD0
default, one after switching everything to AD3 — and prints the
system-wide counter changes (Fig. 13) and the NIC packet-pair latency
percentile comparison (Fig. 14), i.e. the evidence ALCF/NERSC used to
keep the change.

Run:  python examples/facility_default_change.py
"""

from repro import run_default_change_study, theta
from repro.core.metrics import LATENCY_PERCENTILES

N_INTERVALS = 20  # one-minute LDMS intervals per window


def main() -> None:
    top = theta()
    print(f"simulating 2 x {N_INTERVALS} production intervals on {top.params.name} ...\n")
    study = run_default_change_study(top, n_intervals=N_INTERVALS)

    change = study.counter_change()
    print("system-wide network-tile counters (Fig. 13):")
    b, a = study.before.series(), study.after.series()
    print(f"  flits :  {b['flits'].sum():.3e} -> {a['flits'].sum():.3e}  ({change['flits']:+.1%})")
    print(f"  stalls:  {b['stalls'].sum():.3e} -> {a['stalls'].sum():.3e}  ({change['stalls']:+.1%})")
    rb = b["stalls"].sum() / b["flits"].sum()
    ra = a["stalls"].sum() / a["flits"].sum()
    print(f"  ratio :  {rb:.4f} -> {ra:.4f}  ({change['ratio']:+.1%})")

    print("\nper-NIC mean packet-pair latency percentiles (Fig. 14):")
    before = study.before.latency_percentiles()
    after = study.after.latency_percentiles()
    lat_change = study.latency_change()
    print(f"  {'pct':>7s}  {'before':>10s}  {'after':>10s}  {'change':>8s}")
    for p in LATENCY_PERCENTILES:
        print(
            f"  P{p:<6g}  {before[p] * 1e6:8.2f}us  {after[p] * 1e6:8.2f}us  "
            f"{lat_change[p]:+7.1f}%"
        )


if __name__ == "__main__":
    main()
