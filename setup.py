"""Setuptools shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` needs `wheel` for PEP-517 editable
installs; this shim keeps the legacy `--no-use-pep517` path working in
offline environments.
"""
from setuptools import setup

setup()
