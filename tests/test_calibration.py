"""Tests for the calibration harness — and the shipped constants."""

import numpy as np
import pytest

from repro.core.calibration import (
    PAPER_TARGETS,
    CalibrationTarget,
    format_score,
    probe_observables,
    score_against_paper,
    sweep_parameter,
)


@pytest.fixture(scope="module")
def observables():
    from repro.topology.systems import theta

    return probe_observables(theta())


class TestTargets:
    def test_band_check(self):
        t = CalibrationTarget("x", 10.0, lo=8.0, hi=12.0)
        assert t.check(9.0)
        assert not t.check(13.0)

    def test_paper_targets_cover_sign_structure(self):
        names = {t.name for t in PAPER_TARGETS}
        assert "milc_improvement_pct" in names
        assert "hacc_improvement_pct" in names
        # the HACC band is strictly negative: AD3 must lose there
        hacc = next(t for t in PAPER_TARGETS if t.name == "hacc_improvement_pct")
        assert hacc.hi < 0


class TestShippedConstants:
    def test_probe_produces_all_observables(self, observables):
        for key in (
            "milc_ad0_mean_s",
            "milc_improvement_pct",
            "milc_mpi_fraction",
            "hacc_improvement_pct",
        ):
            assert key in observables
            assert np.isfinite(observables[key])

    def test_shipped_constants_pass_all_targets(self, observables):
        """The constants in the repository must stay inside the paper
        bands — this is the regression test for any model change."""
        scored = score_against_paper(observables)
        failing = [(t.name, m) for t, m, ok in scored if not ok]
        assert not failing, format_score(scored)

    def test_format_scorecard(self, observables):
        text = format_score(score_against_paper(observables))
        assert "milc_improvement_pct" in text
        assert "yes" in text


class TestSweep:
    def test_unknown_parameter(self, theta_top):
        with pytest.raises(KeyError):
            sweep_parameter(theta_top, "magic_knob", [1.0])

    def test_sweep_shape(self, theta_top):
        out = sweep_parameter(theta_top, "stall_kappa", [3.0], samples=2)
        assert set(out) == {3.0}
        assert "milc_improvement_pct" in out[3.0]
