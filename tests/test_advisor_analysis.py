"""Unit tests for the routing advisor and the analysis layer."""

import numpy as np
import pytest

from repro.apps import BisectionBound, ComputeBound, LatencyBound, MILC, HACC
from repro.core.advisor import classify, recommend
from repro.core.analysis import (
    breakdown_rows,
    group_span_series,
    improvement_table,
    normalized_by_mode,
    ratio_samples,
)
from repro.core.biases import AD0, AD3
from repro.core.experiment import run_app_once
from repro.monitoring.autoperf import AutoPerf
from repro.mpi.env import RoutingEnv
from repro.util import derive_rng


def _profile_for(app_cls, theta_top, seed=0):
    _, report, _ = run_app_once(
        theta_top,
        app_cls(),
        np.arange(256),
        RoutingEnv(),
        rng=derive_rng(seed, "advisor", app_cls.__name__),
    )
    return report


class TestAdvisor:
    def test_latency_bound_gets_ad3(self, theta_top):
        rec = recommend(_profile_for(LatencyBound, theta_top))
        assert rec.profile_class == "latency_bound"
        assert rec.mode is AD3

    def test_bisection_bound_gets_ad0(self, theta_top):
        rec = recommend(_profile_for(BisectionBound, theta_top))
        assert rec.profile_class == "bisection_bound"
        assert rec.mode is AD0

    def test_compute_bound_insensitive(self, theta_top):
        rec = recommend(_profile_for(ComputeBound, theta_top))
        assert rec.profile_class == "compute_bound"

    def test_milc_recommendation_matches_paper(self, theta_top):
        # the paper's key recommendation: MILC-like codes should use AD3
        rec = recommend(_profile_for(MILC, theta_top))
        assert rec.mode is AD3

    def test_hacc_recommendation_matches_paper(self, theta_top):
        # HACC is the documented exception: bisection-bound -> AD0
        rec = recommend(_profile_for(HACC, theta_top))
        assert rec.mode is AD0

    def test_classify_synthetic_profile(self):
        ap = AutoPerf("x", 16)
        ap.record_op("MPI_Allreduce", calls=1e6, nbytes=8e6, time=50.0)
        ap.add_total_time(100.0)
        assert classify(ap.finalize()) == "latency_bound"

    def test_recommendation_str(self, theta_top):
        rec = recommend(_profile_for(LatencyBound, theta_top))
        s = str(rec)
        assert "AD3" in s and "latency" in s


class TestAnalysis:
    def test_improvement_table_row(self, milc_campaign):
        rows = improvement_table(milc_campaign)
        assert len(rows) == 1
        row = rows[0]
        assert row.app == "MILC"
        assert row.n_runs > 0
        assert np.isfinite(row.time_improvement)
        assert np.isfinite(row.mpi_improvement)
        assert "MILC" in row.format()

    def test_improvement_table_missing_mode(self, milc_campaign):
        rows = improvement_table(milc_campaign, base_mode="AD1", test_mode="AD2")
        assert rows == []

    def test_normalized_by_mode_zero_mean(self, milc_campaign):
        z = normalized_by_mode(milc_campaign)
        pooled = np.concatenate(list(z.values()))
        assert pooled.mean() == pytest.approx(0.0, abs=1e-9)
        assert set(z) == {"AD0", "AD3"}

    def test_group_span_series_keys(self, milc_campaign):
        series = group_span_series(milc_campaign)
        groups = {r.groups for r in milc_campaign}
        assert set(series) == groups
        for g, modes in series.items():
            for m, vals in modes.items():
                assert vals.size > 0

    def test_breakdown_rows_structure(self, milc_campaign):
        bd = breakdown_rows(milc_campaign)
        assert set(bd) == {"AD0", "AD3"}
        row = bd["AD0"][0]
        assert "Compute" in row and "Other_MPI" in row
        assert "MPI_Allreduce" in row
        # stacks must be non-negative and sum to the runtime
        rec = [r for r in milc_campaign if r.mode == "AD0"][0]
        assert sum(row.values()) == pytest.approx(rec.runtime, rel=1e-6)
        assert all(v >= 0 for v in row.values())

    def test_ratio_samples_network(self, milc_campaign):
        rs = ratio_samples(milc_campaign)
        assert set(rs) == {"AD0", "AD3"}
        for vals in rs.values():
            assert (vals >= 0).all()

    def test_ratio_samples_class(self, milc_campaign):
        rs = ratio_samples(milc_campaign, cls="proc_req")
        assert all(v.size for v in rs.values())
