"""Tests for the variability analysis module."""

import numpy as np
import pytest

from repro.core.variability import (
    DispersionStats,
    explain_variability,
    format_variability,
    variability_report,
)


class TestDispersionStats:
    def test_from_values(self):
        v = np.array([100.0, 110.0, 120.0, 130.0])
        d = DispersionStats.from_values("AD0", v)
        assert d.n == 4
        assert d.mean == pytest.approx(115.0)
        assert d.cov == pytest.approx(d.std / d.mean)
        assert d.tail_spread > d.iqr > 0

    def test_degenerate(self):
        d = DispersionStats.from_values("AD0", np.array([5.0]))
        assert d.n == 1 and d.std == 0.0


class TestCampaignVariability:
    def test_report_modes(self, milc_campaign):
        rep = variability_report(milc_campaign)
        assert set(rep) == {"AD0", "AD3"}
        for d in rep.values():
            assert d.cov > 0
            assert d.mean > 0

    def test_ad3_cov_no_worse(self, milc_campaign):
        # the paper's reduced-variability claim, in CoV form
        rep = variability_report(milc_campaign)
        assert rep["AD3"].cov <= rep["AD0"].cov * 1.25

    def test_attribution_structure(self, milc_campaign):
        attr = explain_variability(milc_campaign)
        for mode, parts in attr.items():
            assert set(parts) == {"background_intensity", "groups_spanned", "residual"}
            for v in parts.values():
                assert 0.0 <= v <= 1.0

    def test_intensity_is_the_dominant_factor(self, milc_campaign):
        # production variability is driven by how busy the machine is
        attr = explain_variability(milc_campaign)
        assert (
            attr["AD0"]["background_intensity"]
            >= attr["AD0"]["groups_spanned"] - 0.05
        )

    def test_format(self, milc_campaign):
        text = format_variability(milc_campaign)
        assert "CoV" in text and "AD3" in text
        assert len(text.splitlines()) == 3


class TestExplainEdgeCases:
    def test_constant_factor_gives_zero(self, milc_campaign):
        # a constant factor cannot explain any variance; copy the shared
        # fixture records rather than mutating them
        import dataclasses

        recs = [
            dataclasses.replace(r, background_intensity=0.5)
            for r in milc_campaign
            if r.mode == "AD0"
        ]
        attr = explain_variability(recs)
        assert attr["AD0"]["background_intensity"] == 0.0
