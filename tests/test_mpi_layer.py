"""Unit tests for phases, the routing env, and the imperative SimComm."""

import numpy as np
import pytest

from repro.core.biases import AD0, AD1, AD2, AD3
from repro.mpi.api import SimComm
from repro.mpi.env import (
    A2A_ROUTING_MODE_VAR,
    ROUTING_MODE_VAR,
    RoutingEnv,
)
from repro.mpi.patterns import CollectiveSpec, P2PSpec, Phase, TrafficOp
from repro.network.fluid import FlowSet


def _small_flows():
    return FlowSet(np.array([0, 1]), np.array([2, 3]), np.array([64.0, 64.0]), np.array([0, 0]))


class TestRoutingEnv:
    def test_cray_defaults(self):
        env = RoutingEnv.from_mapping({})
        assert env.p2p_mode is AD0
        assert env.a2a_mode is AD1

    def test_env_var_parsing(self):
        env = RoutingEnv.from_mapping(
            {ROUTING_MODE_VAR: "ADAPTIVE_3", A2A_ROUTING_MODE_VAR: "ADAPTIVE_2"}
        )
        assert env.p2p_mode is AD3
        assert env.a2a_mode is AD2

    def test_uniform(self):
        env = RoutingEnv.uniform(AD3)
        assert env.p2p_mode is AD3 and env.a2a_mode is AD3

    def test_mode_for_traffic_op(self):
        env = RoutingEnv()
        assert env.mode_for(TrafficOp.P2P) is AD0
        assert env.mode_for(TrafficOp.A2A) is AD1

    def test_modes_list_indexable_by_traffic_op(self):
        env = RoutingEnv(p2p_mode=AD2, a2a_mode=AD1)
        modes = env.modes_list()
        assert modes[int(TrafficOp.P2P)] is AD2
        assert modes[int(TrafficOp.A2A)] is AD1

    def test_roundtrip_mapping(self):
        env = RoutingEnv.uniform(AD3)
        again = RoutingEnv.from_mapping(env.as_mapping())
        assert again == env

    def test_from_os_environ(self, monkeypatch):
        monkeypatch.setenv(ROUTING_MODE_VAR, "ADAPTIVE_2")
        monkeypatch.delenv(A2A_ROUTING_MODE_VAR, raising=False)
        env = RoutingEnv.from_os_environ()
        assert env.p2p_mode is AD2
        assert env.a2a_mode is AD1


class TestPhase:
    def test_all_flows_classes(self):
        p2p = P2PSpec(flows=_small_flows())
        coll = CollectiveSpec(
            op="MPI_Alltoallv",
            flows=_small_flows(),
            rounds=3,
            traffic_op=TrafficOp.A2A,
        )
        phase = Phase(name="x", compute_time=0.1, p2p=p2p, collectives=[coll])
        fl = phase.all_flows()
        assert fl.n == 4
        assert set(np.unique(fl.cls)) == {int(TrafficOp.P2P), int(TrafficOp.A2A)}

    def test_total_bytes(self):
        phase = Phase(name="x", compute_time=0.0, p2p=P2PSpec(flows=_small_flows()))
        assert phase.total_bytes() == 128.0

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Phase(name="x", compute_time=-1.0)

    def test_overlap_fraction_validated(self):
        with pytest.raises(ValueError):
            P2PSpec(flows=_small_flows(), overlap_fraction=1.0)

    def test_collective_rounds_validated(self):
        with pytest.raises(ValueError):
            CollectiveSpec(op="x", flows=_small_flows(), rounds=-1)


class TestSimComm:
    def test_allreduce_runs(self, toy_top):
        comm = SimComm(toy_top, np.arange(16), rng=np.random.default_rng(0))
        t = comm.allreduce(8)
        assert t > 0
        assert comm.op_calls["MPI_Allreduce"] == 1

    def test_allreduce_non_power_of_two(self, toy_top):
        comm = SimComm(toy_top, np.arange(12), rng=np.random.default_rng(0))
        assert comm.allreduce(8) > 0

    def test_barrier_faster_than_big_allreduce(self, toy_top):
        comm = SimComm(toy_top, np.arange(16), rng=np.random.default_rng(0))
        tb = comm.barrier()
        ta = comm.allreduce(64 * 1024)
        assert tb < ta

    def test_isend_wait(self, toy_top):
        comm = SimComm(toy_top, np.arange(8), rng=np.random.default_rng(0))
        req = comm.isend(0, 7, 4096)
        assert not req.done
        t = req.wait()
        assert req.done and t > 0

    def test_waitall_multiple(self, toy_top):
        comm = SimComm(toy_top, np.arange(8), rng=np.random.default_rng(0))
        reqs = [comm.isend(i, (i + 4) % 8, 1024) for i in range(4)]
        t = comm.waitall(reqs)
        assert t > 0 and all(r.done for r in reqs)

    def test_alltoall_uses_a2a_mode(self, toy_top):
        env = RoutingEnv(p2p_mode=AD0, a2a_mode=AD3)
        comm = SimComm(toy_top, np.arange(8), env=env, rng=np.random.default_rng(0))
        comm.alltoall(512)
        # with AD3 on A2A traffic, almost everything goes minimal
        non = sum(m.nonmin_packets for m in comm._sim.messages)
        total = sum(m.n_packets for m in comm._sim.messages)
        assert non / total < 0.1

    def test_profile_accumulates(self, toy_top):
        comm = SimComm(toy_top, np.arange(8), rng=np.random.default_rng(0))
        comm.allreduce(8)
        comm.allreduce(8)
        calls, secs = comm.profile()["MPI_Allreduce"]
        assert calls == 2 and secs > 0

    def test_sendrecv(self, toy_top):
        comm = SimComm(toy_top, np.arange(8), rng=np.random.default_rng(0))
        t = comm.sendrecv([(0, 1), (2, 3)], 2048)
        assert t > 0

    def test_duplicate_rank_nodes_rejected(self, toy_top):
        with pytest.raises(ValueError, match="distinct node"):
            SimComm(toy_top, np.array([0, 0, 1]))

    def test_now_advances(self, toy_top):
        comm = SimComm(toy_top, np.arange(4), rng=np.random.default_rng(0))
        t0 = comm.now
        comm.barrier()
        assert comm.now > t0


class TestSimCommCollectives:
    def test_bcast(self, toy_top):
        import numpy as np

        comm = SimComm(toy_top, np.arange(16), rng=np.random.default_rng(0))
        t = comm.bcast(1024)
        assert t > 0
        assert comm.op_calls["MPI_Bcast"] == 1

    def test_bcast_rotated_root(self, toy_top):
        import numpy as np

        comm = SimComm(toy_top, np.arange(16), rng=np.random.default_rng(0))
        assert comm.bcast(1024, root=5) > 0

    def test_reduce(self, toy_top):
        import numpy as np

        comm = SimComm(toy_top, np.arange(16), rng=np.random.default_rng(0))
        t = comm.reduce(1024)
        assert t > 0
        assert comm.op_calls["MPI_Reduce"] == 1

    def test_allgather(self, toy_top):
        import numpy as np

        comm = SimComm(toy_top, np.arange(8), rng=np.random.default_rng(0))
        t = comm.allgather(512)
        assert t > 0

    def test_reduce_and_bcast_comparable_cost(self, toy_top):
        import numpy as np

        c1 = SimComm(toy_top, np.arange(16), rng=np.random.default_rng(1))
        c2 = SimComm(toy_top, np.arange(16), rng=np.random.default_rng(1))
        tb = c1.bcast(4096)
        tr = c2.reduce(4096)
        assert tb == pytest.approx(tr, rel=0.5)
