"""Unit tests for repro.util (units, rng derivation, validation)."""

import numpy as np
import pytest

from repro.util import (
    GB,
    GiB,
    KB,
    KiB,
    MB,
    MiB,
    US,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_power_of_two,
    derive_rng,
    derive_seeds,
    fmt_bytes,
    fmt_time,
    spawn_rngs,
)


class TestUnits:
    def test_binary_prefixes(self):
        assert KiB == 1024
        assert MiB == 1024**2
        assert GiB == 1024**3

    def test_decimal_prefixes(self):
        assert KB == 1_000
        assert MB == 1_000_000
        assert GB == 1_000_000_000

    def test_fmt_bytes_small(self):
        assert fmt_bytes(8) == "8 B"

    def test_fmt_bytes_kib(self):
        assert fmt_bytes(2048) == "2.0 KiB"

    def test_fmt_bytes_mib(self):
        assert fmt_bytes(3 * MiB) == "3.0 MiB"

    def test_fmt_bytes_gib(self):
        assert "GiB" in fmt_bytes(5 * GiB)

    def test_fmt_time_seconds(self):
        assert fmt_time(2.5) == "2.500 s"

    def test_fmt_time_ms(self):
        assert fmt_time(0.5) == "500.0 ms"

    def test_fmt_time_us(self):
        assert fmt_time(3 * US) == "3.0 us"


class TestDeriveRng:
    def test_deterministic(self):
        a = derive_rng(42, "milc", "AD0", 3)
        b = derive_rng(42, "milc", "AD0", 3)
        assert a.integers(1 << 30) == b.integers(1 << 30)

    def test_key_sensitivity(self):
        a = derive_rng(42, "milc", 0)
        b = derive_rng(42, "milc", 1)
        assert a.integers(1 << 30) != b.integers(1 << 30)

    def test_seed_sensitivity(self):
        a = derive_rng(1, "x")
        b = derive_rng(2, "x")
        assert a.integers(1 << 30) != b.integers(1 << 30)

    def test_string_vs_int_keys_differ(self):
        # "1" and 1 should not silently collide by repr
        a = derive_rng(0, "1")
        b = derive_rng(0, 1)
        assert a.integers(1 << 30) != b.integers(1 << 30)

    def test_float_keys_supported(self):
        rng = derive_rng(0, 0.5)
        assert 0 <= rng.random() < 1

    def test_bool_keys_supported(self):
        a = derive_rng(0, True)
        b = derive_rng(0, False)
        assert a.integers(1 << 30) != b.integers(1 << 30)

    def test_unsupported_key_type_raises(self):
        with pytest.raises(TypeError):
            derive_rng(0, object())

    def test_derive_seeds_count_and_range(self):
        seeds = derive_seeds(7, "a", n=5)
        assert len(seeds) == 5
        assert all(0 <= s < 2**63 for s in seeds)

    def test_spawn_rngs_independent(self):
        parent = np.random.default_rng(0)
        children = spawn_rngs(parent, 3)
        vals = [c.integers(1 << 30) for c in children]
        assert len(set(vals)) == 3


class TestValidation:
    def test_check_positive_ok(self):
        assert check_positive("x", 1.5) == 1.5

    def test_check_positive_zero_raises(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0)

    def test_check_nonnegative_ok(self):
        assert check_nonnegative("x", 0) == 0

    def test_check_nonnegative_raises(self):
        with pytest.raises(ValueError):
            check_nonnegative("x", -1)

    def test_check_in_range_bounds_inclusive(self):
        assert check_in_range("x", 0, 0, 15) == 0
        assert check_in_range("x", 15, 0, 15) == 15

    def test_check_in_range_raises(self):
        with pytest.raises(ValueError):
            check_in_range("x", 16, 0, 15)

    def test_check_power_of_two_ok(self):
        assert check_power_of_two("x", 256) == 256

    @pytest.mark.parametrize("bad", [0, -4, 3, 12])
    def test_check_power_of_two_raises(self, bad):
        with pytest.raises(ValueError):
            check_power_of_two("x", bad)
