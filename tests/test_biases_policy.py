"""Unit tests for routing modes (AD0..AD3) and the biased decision."""

import numpy as np
import pytest

from repro.core.biases import (
    AD0,
    AD1,
    AD2,
    AD3,
    VENDOR_MODES,
    RoutingMode,
    custom_bias,
    mode_by_name,
)
from repro.core.policy import (
    DEFAULT_POLICY,
    PolicyParams,
    effective_shift,
    minimal_preferred,
    split_fraction,
)


class TestModes:
    def test_vendor_presets(self):
        assert AD0.shift == 0 and AD0.add == 0
        assert AD2.shift == 0 and AD2.add == 4
        assert AD3.shift == 2 and AD3.add == 0
        assert AD1.increasing

    def test_ad3_multiplier_is_four(self):
        # "the load on minimal paths needs to be 4X of that on the
        # non-minimal paths, before non-minimal paths will be used"
        assert AD3.multiplier == 4

    def test_mode_order(self):
        assert tuple(m.name for m in VENDOR_MODES) == ("AD0", "AD1", "AD2", "AD3")

    def test_ad1_schedule_ramps(self):
        sched = AD1.hop_shift_schedule
        assert sched[0] == 0
        assert sched[-1] == AD1.shift
        assert list(sched) == sorted(sched)

    def test_ad1_mean_shift_between_ad0_and_ad3(self):
        assert AD0.mean_shift < AD1.mean_shift < AD3.mean_shift

    def test_shift_at_hop(self):
        assert AD1.shift_at_hop(0) == 0
        assert AD1.shift_at_hop(100) == AD1.shift
        assert AD3.shift_at_hop(0) == 2
        assert AD3.shift_at_hop(9) == 2

    def test_bias_range_validation(self):
        with pytest.raises(ValueError):
            RoutingMode("bad", shift=16, add=0)
        with pytest.raises(ValueError):
            RoutingMode("bad", shift=0, add=-1)

    def test_schedule_must_end_at_shift(self):
        with pytest.raises(ValueError, match="final hop_shift_schedule"):
            RoutingMode("bad", shift=3, add=0, hop_shift_schedule=(0, 1, 2))

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            RoutingMode("bad", shift=0, add=0, hop_shift_schedule=())

    def test_describe(self):
        assert "no bias" in AD0.describe()
        assert "increasingly-minimal" in AD1.describe()
        assert "x4" in AD3.describe()

    def test_custom_bias(self):
        m = custom_bias(1, 2)
        assert m.multiplier == 2 and m.add == 2 and m.name == "S1A2"


class TestModeByName:
    @pytest.mark.parametrize("name", ["AD0", "ad3", "ADAPTIVE_2", "1", "3"])
    def test_accepted_spellings(self, name):
        assert mode_by_name(name) in VENDOR_MODES

    def test_env_var_value(self):
        assert mode_by_name("ADAPTIVE_3") is AD3

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            mode_by_name("AD7")


class TestMinimalPreferred:
    def test_ad0_pure_comparison(self):
        assert bool(minimal_preferred(AD0, 2, 3))
        assert not bool(minimal_preferred(AD0, 3, 2))
        assert bool(minimal_preferred(AD0, 2, 2))  # ties go minimal

    def test_ad3_tolerates_4x(self):
        assert bool(minimal_preferred(AD3, 8, 2))
        assert not bool(minimal_preferred(AD3, 9, 2))

    def test_ad2_additive_handicap(self):
        assert bool(minimal_preferred(AD2, 5, 1))
        assert not bool(minimal_preferred(AD2, 6, 1))

    def test_ad1_hop_dependence(self):
        # at hop 0 AD1 behaves like AD0; deep in the network like AD3
        assert not bool(minimal_preferred(AD1, 3, 2, hops_taken=0))
        assert bool(minimal_preferred(AD1, 3, 2, hops_taken=4))

    def test_vectorized(self):
        out = minimal_preferred(AD0, np.array([1, 3]), np.array([2, 2]))
        np.testing.assert_array_equal(out, [True, False])

    def test_effective_shift_vector(self):
        np.testing.assert_array_equal(
            effective_shift(AD1, np.array([0, 2, 4, 9])), [0, 1, 2, 2]
        )
        np.testing.assert_array_equal(
            effective_shift(AD3, np.array([0, 5])), [2, 2]
        )


class TestSplitFraction:
    def test_half_at_threshold(self):
        # AD0 at exactly equal loads sits at the decision boundary
        assert split_fraction(AD0, 0.5, 0.5) == pytest.approx(0.5)

    def test_monotone_in_nonmin_load(self):
        x1 = split_fraction(AD0, 0.5, 0.4)
        x2 = split_fraction(AD0, 0.5, 0.8)
        assert x2 > x1

    def test_monotone_in_min_load(self):
        x1 = split_fraction(AD0, 0.2, 0.5)
        x2 = split_fraction(AD0, 0.9, 0.5)
        assert x2 < x1

    def test_stronger_bias_more_minimal(self):
        # at equal loads, AD3 >> AD2 > AD0 toward minimal
        loads = (0.6, 0.5)
        x0 = split_fraction(AD0, *loads)
        x2 = split_fraction(AD2, *loads)
        x3 = split_fraction(AD3, *loads)
        assert x0 < x2
        assert x0 < x3

    def test_extreme_margins_saturate(self):
        assert split_fraction(AD3, 0.0, 5.0) == pytest.approx(1.0, abs=1e-9)
        assert split_fraction(AD0, 50.0, 0.0) == pytest.approx(0.0, abs=1e-9)

    def test_temperature_controls_softness(self):
        soft = split_fraction(AD0, 0.5, 0.6, PolicyParams(temperature=5.0))
        hard = split_fraction(AD0, 0.5, 0.6, PolicyParams(temperature=0.05))
        assert 0.5 < soft < hard <= 1.0

    def test_numerical_safety_extreme_inputs(self):
        x = split_fraction(AD3, 1e6, 0.0)
        assert np.isfinite(x) and x == pytest.approx(0.0, abs=1e-12)

    def test_params_validation(self):
        with pytest.raises(ValueError):
            PolicyParams(load_unit=0)
        with pytest.raises(ValueError):
            PolicyParams(temperature=0)
        with pytest.raises(ValueError):
            PolicyParams(hop_bias=-0.1)
        with pytest.raises(ValueError):
            PolicyParams(adaptive_temp=0)

    def test_default_policy_sane(self):
        assert DEFAULT_POLICY.load_unit > 0
        assert DEFAULT_POLICY.temperature > 0
