"""Tests for the pairwise job-interference analysis."""

import numpy as np
import pytest

from repro.apps import MILC
from repro.core.biases import AD0, AD3
from repro.core.interference import (
    DEFAULT_AGGRESSORS,
    InterferenceEntry,
    format_matrix,
    interference_matrix,
)


@pytest.fixture(scope="module")
def matrix():
    from repro.topology.systems import theta

    return interference_matrix(theta(), MILC(), modes=(AD0, AD3), seed=5)


class TestEntries:
    def test_full_grid(self, matrix):
        assert len(matrix) == len(DEFAULT_AGGRESSORS) * 2
        keys = {(e.aggressor, e.mode) for e in matrix}
        assert len(keys) == len(matrix)

    def test_slowdowns_at_least_one(self, matrix):
        # background can only hurt (shared links lose capacity)
        for e in matrix:
            assert e.slowdown >= 0.995, (e.aggressor, e.mode, e.slowdown)

    def test_bisection_is_the_bully(self, matrix):
        # NIC-rate global streams are the worst neighbor for MILC
        by = {(e.aggressor, e.mode): e.slowdown for e in matrix}
        for mode in ("AD0", "AD3"):
            assert by[("bisection", mode)] == max(
                by[(a, mode)] for a in DEFAULT_AGGRESSORS
            )

    def test_incast_mostly_harmless(self, matrix):
        # endpoint-bound I/O barely touches the victim's paths
        by = {(e.aggressor, e.mode): e.slowdown for e in matrix}
        for mode in ("AD0", "AD3"):
            assert by[("io_incast", mode)] < 1.05

    def test_mode_contrast_is_bounded(self, matrix):
        # the mode changes interference by tens of percent, not orders
        # of magnitude (which direction wins is placement-dependent)
        by = {(e.aggressor, e.mode): e for e in matrix}
        for aggressor in DEFAULT_AGGRESSORS:
            ratio = by[(aggressor, "AD3")].disturbed / by[(aggressor, "AD0")].disturbed
            assert 0.5 < ratio < 2.0

    def test_baselines_shared_within_mode(self, matrix):
        for mode in ("AD0", "AD3"):
            bases = {e.baseline for e in matrix if e.mode == mode}
            assert len(bases) == 1


class TestFormatting:
    def test_matrix_text(self, matrix):
        text = format_matrix(matrix)
        lines = text.splitlines()
        assert "AD0" in lines[0] and "AD3" in lines[0]
        assert len(lines) == 1 + len(DEFAULT_AGGRESSORS)
        assert "bisection" in text

    def test_entry_slowdown_nan_on_zero_baseline(self):
        e = InterferenceEntry("v", "a", "AD0", baseline=0.0, disturbed=1.0)
        assert np.isnan(e.slowdown)
