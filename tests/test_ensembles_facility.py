"""Integration tests for controlled ensembles and facility studies."""

import numpy as np
import pytest

from repro.apps import MILC, LatencyBound
from repro.core.biases import AD0, AD3
from repro.core.ensembles import EnsembleConfig, run_ensemble
from repro.core.facility import (
    WindowConfig,
    run_default_change_study,
    simulate_production_window,
)
from repro.mpi.env import RoutingEnv
from repro.network.fluid import FluidParams


@pytest.fixture(scope="module")
def small_ensembles(request):
    from repro.topology.systems import theta

    top = theta()
    out = {}
    for mode in (AD0, AD3):
        out[mode.name] = run_ensemble(
            top,
            EnsembleConfig(app=MILC(), n_jobs=4, n_nodes=256, mode=mode, placement="dispersed"),
        )
    return top, out


class TestEnsembles:
    def test_validation(self, theta_top):
        with pytest.raises(ValueError, match="exceed the machine"):
            run_ensemble(theta_top, EnsembleConfig(app=MILC(), n_jobs=100, n_nodes=512))
        with pytest.raises(ValueError):
            EnsembleConfig(app=MILC(), n_jobs=0)

    def test_job_count_and_disjoint_placements(self, small_ensembles):
        top, ens = small_ensembles
        r = ens["AD0"]
        assert len(r.job_nodes) == 4
        allnodes = np.concatenate(r.job_nodes)
        assert np.unique(allnodes).size == allnodes.size

    def test_runtimes_per_job(self, small_ensembles):
        _, ens = small_ensembles
        r = ens["AD0"]
        assert r.job_runtimes.shape == (4,)
        assert (r.job_runtimes > 0).all()
        assert r.makespan == r.job_runtimes.max()

    def test_empty_makespan_is_zero(self, small_ensembles):
        # degenerate zero-job result (e.g. every job filtered out) must
        # not crash .max() on an empty array
        import dataclasses

        _, ens = small_ensembles
        r = ens["AD0"]
        empty = dataclasses.replace(r, job_runtimes=np.array([]), job_nodes=[], job_timings=[])
        assert empty.makespan == 0.0

    def test_counters_populated(self, small_ensembles):
        _, ens = small_ensembles
        snap = ens["AD0"].bank.snapshot()
        assert snap.total_flits() > 0
        assert ens["AD0"].stalls_to_flits("rank1") >= 0

    def test_ldms_samples_cover_makespan(self, small_ensembles):
        _, ens = small_ensembles
        r = ens["AD0"]
        n = len(r.ldms.samples)
        assert n == int(np.ceil(r.makespan / 60.0))
        series = r.ldms.series()
        assert series["flits"].sum() == pytest.approx(
            r.bank.snapshot().total_flits(("rank1", "rank2", "rank3")), rel=1e-6
        )

    def test_ad3_fewer_network_flits(self, small_ensembles):
        # minimal bias -> fewer hops -> fewer transmissions (Fig. 10)
        _, ens = small_ensembles
        f0 = ens["AD0"].bank.snapshot().total_flits(("rank1", "rank2", "rank3"))
        f3 = ens["AD3"].bank.snapshot().total_flits(("rank1", "rank2", "rank3"))
        assert f3 < f0

    def test_ad3_fewer_rank1_stalls(self, small_ensembles):
        # Fig. 10: "clear reduction in the absolute stall counts" on
        # rank-1/rank-2 under AD3
        _, ens = small_ensembles
        s0 = ens["AD0"].bank.snapshot().stalls["rank1"].sum()
        s3 = ens["AD3"].bank.snapshot().stalls["rank1"].sum()
        assert s3 < s0

    def test_network_ratio_per_router_shape(self, small_ensembles):
        top, ens = small_ensembles
        ratios = ens["AD0"].network_ratio_per_router()
        assert ratios.shape == (top.n_routers,)
        assert (ratios >= 0).all()

    def test_deterministic(self, theta_top):
        a = run_ensemble(theta_top, EnsembleConfig(app=LatencyBound(), n_jobs=2, n_nodes=128, seed=3))
        b = run_ensemble(theta_top, EnsembleConfig(app=LatencyBound(), n_jobs=2, n_nodes=128, seed=3))
        np.testing.assert_allclose(a.job_runtimes, b.job_runtimes)


class TestFacility:
    @pytest.fixture(scope="class")
    def study(self):
        from repro.topology.systems import theta

        return run_default_change_study(theta(), n_intervals=6, seed=42)

    def test_window_structure(self, theta_top):
        w = simulate_production_window(
            theta_top, WindowConfig(env=RoutingEnv(), n_intervals=2, seed=1)
        )
        assert len(w.ldms.samples) == 2
        assert w.nic_latency_samples.size > 0
        assert np.isfinite(w.nic_latency_samples).all()

    def test_latency_percentiles_positive_monotone(self, study):
        p = study.before.latency_percentiles()
        vals = list(p.values())
        assert all(v > 0 for v in vals)
        assert vals == sorted(vals)

    def test_flits_roughly_in_line(self, study):
        # the paper's comparability check between the two windows
        change = study.counter_change()
        assert abs(change["flits"]) < 0.35

    def test_ad3_reduces_median_latency(self, study):
        change = study.latency_change()
        assert change[50] < 1.0  # median no worse (typically improves)

    def test_counter_change_keys(self, study):
        assert set(study.counter_change()) == {"flits", "stalls", "ratio"}

    def test_matched_windows_same_workload(self, theta_top):
        # same seed -> same per-interval flit-generation workload
        p = FluidParams(k_min=2, k_nonmin=2, n_iter=3)
        a = simulate_production_window(
            theta_top, WindowConfig(env=RoutingEnv(), n_intervals=2, seed=9, params=p)
        )
        b = simulate_production_window(
            theta_top, WindowConfig(env=RoutingEnv(), n_intervals=2, seed=9, params=p)
        )
        np.testing.assert_allclose(a.series()["flits"], b.series()["flits"])
