"""Tests for blocked-packet re-routing in the packet simulator."""

import numpy as np

from repro.core.biases import AD0, AD1, AD3
from repro.network.packet_sim import InjectionSpec, PacketSimConfig, PacketSimulator


def incast_sim(top, mode, *, patience, seed=3, n_src=8, nbytes=16384):
    sim = PacketSimulator(
        top,
        PacketSimConfig(reroute_patience=patience),
        rng=np.random.default_rng(seed),
    )
    for s in range(n_src):
        sim.add_message(InjectionSpec(src=s, dst=31, nbytes=nbytes, mode=mode))
    sim.run()
    return sim


class TestReroute:
    def test_disabled_with_zero_patience(self, toy_top):
        # patience=0 must reproduce the static source decision exactly
        a = incast_sim(toy_top, AD0, patience=0)
        b = incast_sim(toy_top, AD0, patience=0)
        np.testing.assert_array_equal(a.packet_latencies(), b.packet_latencies())

    def test_all_packets_still_complete(self, toy_top):
        sim = incast_sim(toy_top, AD0, patience=4)
        assert sim.idle
        assert all(m.done for m in sim.messages)
        n_pkts = sum(m.n_packets for m in sim.messages)
        assert sim.packet_latencies().size == n_pkts

    def test_side_attribution_consistent(self, toy_top):
        # min/nonmin packet counts stay consistent with the packet total
        # even when packets are re-attributed after a re-route
        sim = incast_sim(toy_top, AD0, patience=2)
        for m in sim.messages:
            assert m.min_packets + m.nonmin_packets == m.n_packets
            assert m.min_packets >= 0 and m.nonmin_packets >= 0

    def test_rerouting_does_not_hurt_congested_latency(self, toy_top):
        # allowing blocked packets to re-decide should not make the
        # worst-case incast latency meaningfully worse
        no_rr = incast_sim(toy_top, AD0, patience=0)
        rr = incast_sim(toy_top, AD0, patience=4)
        worst_no = max(m.latency(no_rr.config.step_time) for m in no_rr.messages)
        worst_rr = max(m.latency(rr.config.step_time) for m in rr.messages)
        assert worst_rr <= worst_no * 1.15

    def test_ad1_reroutes_toward_minimal(self, mini_top):
        # AD1's shift schedule has ramped by the retry, so its re-routes
        # lean more minimal than AD0's under identical congestion
        fracs = {}
        for mode in (AD0, AD1):
            sim = PacketSimulator(
                mini_top,
                PacketSimConfig(reroute_patience=2),
                rng=np.random.default_rng(5),
            )
            for s in range(16):
                sim.add_message(
                    InjectionSpec(src=s, dst=mini_top.n_nodes - 1 - s, nbytes=16384, mode=mode)
                )
            sim.run()
            mn = sum(m.min_packets for m in sim.messages)
            nm = sum(m.nonmin_packets for m in sim.messages)
            fracs[mode.name] = mn / (mn + nm)
        assert fracs["AD1"] >= fracs["AD0"] - 0.02

    def test_ad3_unaffected_by_patience(self, toy_top):
        # AD3 is already pinned minimal; rerouting rarely changes it
        a = incast_sim(toy_top, AD3, patience=0)
        b = incast_sim(toy_top, AD3, patience=4)
        na = sum(m.nonmin_packets for m in a.messages)
        nb = sum(m.nonmin_packets for m in b.messages)
        total = sum(m.n_packets for m in a.messages)
        assert na / total < 0.1 and nb / total < 0.1
