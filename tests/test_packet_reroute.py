"""Tests for blocked-packet re-routing in the packet simulator."""

import numpy as np

from repro.core.biases import AD0, AD1, AD3
from repro.faults import FaultSchedule, FaultSpec
from repro.network.packet_sim import InjectionSpec, PacketSimConfig, PacketSimulator


def incast_sim(top, mode, *, patience, seed=3, n_src=8, nbytes=16384):
    sim = PacketSimulator(
        top,
        PacketSimConfig(reroute_patience=patience),
        rng=np.random.default_rng(seed),
    )
    for s in range(n_src):
        sim.add_message(InjectionSpec(src=s, dst=31, nbytes=nbytes, mode=mode))
    sim.run()
    return sim


class TestReroute:
    def test_disabled_with_zero_patience(self, toy_top):
        # patience=0 must reproduce the static source decision exactly
        a = incast_sim(toy_top, AD0, patience=0)
        b = incast_sim(toy_top, AD0, patience=0)
        np.testing.assert_array_equal(a.packet_latencies(), b.packet_latencies())

    def test_all_packets_still_complete(self, toy_top):
        sim = incast_sim(toy_top, AD0, patience=4)
        assert sim.idle
        assert all(m.done for m in sim.messages)
        n_pkts = sum(m.n_packets for m in sim.messages)
        assert sim.packet_latencies().size == n_pkts

    def test_side_attribution_consistent(self, toy_top):
        # min/nonmin packet counts stay consistent with the packet total
        # even when packets are re-attributed after a re-route
        sim = incast_sim(toy_top, AD0, patience=2)
        for m in sim.messages:
            assert m.min_packets + m.nonmin_packets == m.n_packets
            assert m.min_packets >= 0 and m.nonmin_packets >= 0

    def test_rerouting_does_not_hurt_congested_latency(self, toy_top):
        # allowing blocked packets to re-decide should not make the
        # worst-case incast latency meaningfully worse
        no_rr = incast_sim(toy_top, AD0, patience=0)
        rr = incast_sim(toy_top, AD0, patience=4)
        worst_no = max(m.latency(no_rr.config.step_time) for m in no_rr.messages)
        worst_rr = max(m.latency(rr.config.step_time) for m in rr.messages)
        assert worst_rr <= worst_no * 1.15

    def test_ad1_reroutes_toward_minimal(self, mini_top):
        # AD1's shift schedule has ramped by the retry, so its re-routes
        # lean more minimal than AD0's under identical congestion
        fracs = {}
        for mode in (AD0, AD1):
            sim = PacketSimulator(
                mini_top,
                PacketSimConfig(reroute_patience=2),
                rng=np.random.default_rng(5),
            )
            for s in range(16):
                sim.add_message(
                    InjectionSpec(src=s, dst=mini_top.n_nodes - 1 - s, nbytes=16384, mode=mode)
                )
            sim.run()
            mn = sum(m.min_packets for m in sim.messages)
            nm = sum(m.nonmin_packets for m in sim.messages)
            fracs[mode.name] = mn / (mn + nm)
        assert fracs["AD1"] >= fracs["AD0"] - 0.02

    def test_ad3_unaffected_by_patience(self, toy_top):
        # AD3 is already pinned minimal; rerouting rarely changes it
        a = incast_sim(toy_top, AD3, patience=0)
        b = incast_sim(toy_top, AD3, patience=4)
        na = sum(m.nonmin_packets for m in a.messages)
        nb = sum(m.nonmin_packets for m in b.messages)
        total = sum(m.n_packets for m in a.messages)
        assert na / total < 0.1 and nb / total < 0.1

    def test_zero_patience_actually_disables_rerouting(self, toy_top):
        # not just determinism: with patience=0 the adaptive decision
        # must never re-run, while the same traffic with patience>0 does
        off = incast_sim(toy_top, AD0, patience=0)
        on = incast_sim(toy_top, AD0, patience=1)
        assert off.reroutes == 0
        assert on.reroutes > 0


def fault_sim(top, faults, *, patience=4, n_src=6, nbytes=64 * 500, seed=3):
    cfg = PacketSimConfig(reroute_patience=patience)
    sim = PacketSimulator(top, cfg, rng=np.random.default_rng(seed), faults=faults)
    N = top.n_nodes
    for s in range(n_src):
        sim.add_message(InjectionSpec(src=s, dst=(s + N // 2) % N, nbytes=nbytes, mode=AD0))
    sim.run()
    return sim


class TestFaultReroute:
    def test_midrun_link_death_retries_and_drains(self, toy_top):
        # a cable dying mid-run strands in-flight packets; they must be
        # retransmitted around the dead link and the sim must still drain
        cfg = PacketSimConfig(reroute_patience=4)
        t_fault = 20 * cfg.step_time
        faults = FaultSchedule(
            specs=(FaultSpec.dead_cable(0, 1, 0, start=t_fault),), seed=5
        )
        sim = fault_sim(toy_top, faults)
        assert all(m.delivered for m in sim.messages)
        assert sim.retries > 0
        assert sim.dropped == 0
        # no served traffic on the dead pair after it died: the dead
        # links' flit counters stop growing (checked via final rate mask)
        dead = sim.rate <= 0.0
        assert dead.any()

    def test_static_fault_routes_around(self, toy_top):
        # fault active from t=0: initial paths avoid it, nothing retries
        faults = FaultSchedule(specs=(FaultSpec.dead_cable(0, 1, 0),), seed=5)
        sim = fault_sim(toy_top, faults)
        assert all(m.delivered for m in sim.messages)
        assert sim.retries == 0 and sim.dropped == 0

    def test_partition_drops_bounded_and_finishes(self, toy_top):
        # killing every cable mid-run partitions toy's two groups: cross
        # packets are dropped after bounded retries and every message
        # still finishes (with drops recorded) instead of livelocking
        cfg = PacketSimConfig(reroute_patience=4)
        t_fault = 20 * cfg.step_time
        K = toy_top.params.cables_per_group_pair
        faults = FaultSchedule(
            specs=tuple(FaultSpec.dead_cable(0, 1, c, start=t_fault) for c in range(K)),
            seed=5,
        )
        sim = fault_sim(toy_top, faults)
        assert all(m.done for m in sim.messages)
        assert sim.dropped > 0
        assert any(m.dropped_packets > 0 for m in sim.messages)
        assert not any(m.delivered for m in sim.messages if m.dropped_packets)

    def test_recovery_restores_delivery(self, toy_top):
        cfg = PacketSimConfig(reroute_patience=4)
        t = 20 * cfg.step_time
        faults = FaultSchedule(
            specs=(FaultSpec.dead_cable(0, 1, 0, start=t, end=3 * t),), seed=9
        )
        sim = fault_sim(toy_top, faults)
        assert all(m.delivered for m in sim.messages)
        # after recovery no link is dead anymore
        assert (sim.rate[toy_top.capacity > 0] > 0).all()

    def test_dead_retry_works_with_zero_patience(self, toy_top):
        # survivability retries are independent of adaptive re-routing
        cfg = PacketSimConfig(reroute_patience=0)
        t_fault = 20 * cfg.step_time
        faults = FaultSchedule(
            specs=(FaultSpec.dead_cable(0, 1, 0, start=t_fault),), seed=5
        )
        sim = PacketSimulator(
            toy_top, cfg, rng=np.random.default_rng(3), faults=faults
        )
        N = toy_top.n_nodes
        for s in range(6):
            sim.add_message(
                InjectionSpec(src=s, dst=(s + N // 2) % N, nbytes=64 * 500, mode=AD0)
            )
        sim.run()
        assert sim.reroutes == 0
        assert all(m.done for m in sim.messages)

    def test_empty_schedule_is_noop(self, toy_top):
        a = fault_sim(toy_top, None)
        b = fault_sim(toy_top, FaultSchedule())
        np.testing.assert_array_equal(a.packet_latencies(), b.packet_latencies())
        assert b.faults is None
