"""Property-based tests (hypothesis) for the parallel subsystem's
determinism primitives: SeedSequence-based stream derivation, the
topology/faulted-view LRU cache, and the path-table memo.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import FaultSchedule
from repro.parallel import (
    TopologySpec,
    cached_faulted_view,
    cached_minimal_paths,
    cached_topology,
    clear_path_cache,
    clear_topology_cache,
    path_cache_stats,
    topology_fingerprint,
)
from repro.topology.paths import minimal_paths, valiant_paths
from repro.topology.pathcache import cached_valiant_paths
from repro.topology.systems import toy
from repro.util import derive_rng, seed_sequence_for, spawn_rng_streams

SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

KEY_PARTS = st.one_of(
    st.integers(0, 2**31 - 1),
    st.text(alphabet="abcdefgh", min_size=1, max_size=6),
)
KEYS = st.lists(KEY_PARTS, min_size=1, max_size=4).map(tuple)

FAULT_SPECS = st.sampled_from(
    ["rank3:0.25", "rank1:0.1", "link:5*0.5", "cable:0-1:0", "router:3"]
)


class TestSeedDerivation:
    @given(seed=st.integers(0, 2**31 - 1), key=KEYS)
    @settings(max_examples=50, deadline=None)
    def test_spawned_streams_deterministic_and_distinct(self, seed, key):
        a = spawn_rng_streams(seed, *key, n=4)
        b = spawn_rng_streams(seed, *key, n=4)
        draws_a = [tuple(g.integers(0, 2**31, size=4)) for g in a]
        draws_b = [tuple(g.integers(0, 2**31, size=4)) for g in b]
        # pure function of (seed, key, index): identical across calls
        assert draws_a == draws_b
        # children are pairwise distinct streams
        assert len(set(draws_a)) == len(draws_a)

    @given(seed=st.integers(0, 2**31 - 1), key=KEYS, n=st.integers(1, 6))
    @settings(max_examples=50, deadline=None)
    def test_spawn_count_independent_prefix(self, seed, key, n):
        # child i is the same stream no matter how many siblings exist
        small = spawn_rng_streams(seed, *key, n=n)
        large = spawn_rng_streams(seed, *key, n=n + 3)
        for g1, g2 in zip(small, large):
            assert np.array_equal(
                g1.integers(0, 2**31, size=4), g2.integers(0, 2**31, size=4)
            )

    @given(seed=st.integers(0, 2**31 - 1), key=KEYS)
    @settings(max_examples=50, deadline=None)
    def test_spawn_key_matches_derive_key(self, seed, key):
        # both stream families hang off the same SeedSequence identity
        root = seed_sequence_for(seed, *key)
        child = root.spawn(1)[0]
        direct = np.random.default_rng(child)
        again = np.random.default_rng(seed_sequence_for(seed, *key).spawn(1)[0])
        assert np.array_equal(
            direct.integers(0, 2**31, size=4), again.integers(0, 2**31, size=4)
        )


class TestTopologyCache:
    @given(seed=st.integers(0, 40))
    @SLOW
    def test_cache_hit_equals_fresh_build(self, seed):
        clear_topology_cache()
        spec = TopologySpec.of(toy(seed=seed))
        cached = cached_topology(spec)
        fresh = spec.build()
        for name, value in vars(fresh).items():
            if isinstance(value, np.ndarray):
                assert np.array_equal(getattr(cached, name), value), name
        assert cached_topology(spec) is cached  # second lookup is a hit

    @given(s1=st.integers(0, 40), s2=st.integers(0, 40))
    @SLOW
    def test_distinct_specs_never_alias(self, s1, s2):
        spec1 = TopologySpec.of(toy(seed=s1))
        spec2 = TopologySpec.of(toy(seed=s2))
        assert (spec1 == spec2) == (s1 == s2)
        t1, t2 = cached_topology(spec1), cached_topology(spec2)
        assert (t1 is t2) == (s1 == s2)

    @given(
        spec_a=FAULT_SPECS, seed_a=st.integers(0, 5),
        spec_b=FAULT_SPECS, seed_b=st.integers(0, 5),
    )
    @SLOW
    def test_faulted_view_keys_never_alias(self, spec_a, seed_a, spec_b, seed_b):
        base = TopologySpec.of(toy())
        fa = FaultSchedule.parse(spec_a, seed=seed_a)
        fb = FaultSchedule.parse(spec_b, seed=seed_b)
        va = cached_faulted_view(base, fa)
        vb = cached_faulted_view(base, fb)
        if fa == fb:
            assert va is vb
        else:
            assert va is not vb
            # equal fingerprints would mean the path memo could serve one
            # view's tables for the other; only identical masks may match
            if not np.array_equal(va.capacity, vb.capacity):
                assert topology_fingerprint(va) != topology_fingerprint(vb)

    @given(fault=FAULT_SPECS, seed=st.integers(0, 5))
    @SLOW
    def test_faulted_view_matches_with_faults(self, fault, seed):
        schedule = FaultSchedule.parse(fault, seed=seed)
        spec = TopologySpec.of(toy())
        view = cached_faulted_view(spec, schedule)
        direct = toy().with_faults(schedule)
        assert np.array_equal(view.capacity, direct.capacity)

    def test_mutating_cached_topology_raises(self):
        clear_topology_cache()
        spec = TopologySpec.of(toy())
        top = cached_topology(spec)
        with pytest.raises(ValueError):
            top.capacity[0] = 99.0
        view = cached_faulted_view(spec, FaultSchedule.parse("rank3:0.25", seed=1))
        with pytest.raises(ValueError):
            view.capacity[0] = 99.0
        with pytest.raises(ValueError):
            view.fault_scale[0] = 0.0


class TestPathCache:
    def _flows(self, top, rng):
        src = rng.integers(0, top.n_nodes, size=24)
        dst = (src + 1 + rng.integers(0, top.n_nodes - 1, size=24)) % top.n_nodes
        return src, dst

    @given(seed=st.integers(0, 200))
    @SLOW
    def test_hit_equals_fresh_build_and_rng_state(self, seed):
        top = cached_topology(TopologySpec.of(toy()))
        src, dst = self._flows(top, derive_rng(seed, "flows"))
        for cached_fn, fresh_fn in (
            (cached_minimal_paths, minimal_paths),
            (cached_valiant_paths, valiant_paths),
        ):
            rng_f = derive_rng(seed, "paths")
            fresh = fresh_fn(top, src, dst, k=2, rng=rng_f)
            clear_path_cache()
            rng_m = derive_rng(seed, "paths")
            miss = cached_fn(top, src, dst, k=2, rng=rng_m)
            rng_h = derive_rng(seed, "paths")
            hit = cached_fn(top, src, dst, k=2, rng=rng_h)
            stats = path_cache_stats()
            assert stats["hits"] == 1 and stats["misses"] == 1
            for bundle in (miss, hit):
                assert np.array_equal(bundle.links, fresh.links)
                assert np.array_equal(bundle.flow, fresh.flow)
                assert bundle.kind == fresh.kind
            # the hit fast-forwards the generator to the post-build state:
            # downstream draws are identical to a fresh build's
            assert rng_m.bit_generator.state == rng_f.bit_generator.state
            assert rng_h.bit_generator.state == rng_f.bit_generator.state

    @given(seed=st.integers(0, 200))
    @SLOW
    def test_different_rng_state_is_a_different_key(self, seed):
        top = cached_topology(TopologySpec.of(toy()))
        src, dst = self._flows(top, derive_rng(seed, "flows"))
        clear_path_cache()
        rng_a = derive_rng(seed, "paths")
        cached_minimal_paths(top, src, dst, k=2, rng=rng_a)
        rng_b = derive_rng(seed, "paths")
        rng_b.integers(0, 10)  # advanced state: must not hit
        cached_minimal_paths(top, src, dst, k=2, rng=rng_b)
        assert path_cache_stats()["misses"] == 2

    def test_cached_bundles_are_read_only(self):
        top = cached_topology(TopologySpec.of(toy()))
        src, dst = self._flows(top, derive_rng(0, "flows"))
        clear_path_cache()
        bundle = cached_minimal_paths(top, src, dst, k=2, rng=derive_rng(0, "p"))
        with pytest.raises(ValueError):
            bundle.links[0, 0] = -2
        with pytest.raises(ValueError):
            bundle.flow[0] = 0
