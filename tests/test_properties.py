"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.biases import AD0, AD1, AD2, AD3, RoutingMode
from repro.core.metrics import ccdf, percentile_summary, remove_outliers, zscore
from repro.core.policy import minimal_preferred, split_fraction
from repro.network.congestion import CongestionModel
from repro.network.fluid import FlowSet, solve_fluid
from repro.topology.dragonfly import DragonflyParams, DragonflyTopology
from repro.topology.paths import minimal_paths, valiant_paths

MODES = st.sampled_from([AD0, AD1, AD2, AD3])
LOADS = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


class TestPolicyProperties:
    @given(mode=MODES, lm=LOADS, ln=LOADS)
    def test_split_fraction_in_unit_interval(self, mode, lm, ln):
        x = float(split_fraction(mode, lm, ln))
        assert 0.0 <= x <= 1.0

    @given(mode=MODES, lm=LOADS, ln=LOADS, delta=st.floats(0.01, 10.0))
    def test_split_monotone_in_nonmin_load(self, mode, lm, ln, delta):
        assert split_fraction(mode, lm, ln + delta) >= split_fraction(mode, lm, ln)

    @given(mode=MODES, lm=LOADS, ln=LOADS, delta=st.floats(0.01, 10.0))
    def test_split_antitone_in_min_load(self, mode, lm, ln, delta):
        assert split_fraction(mode, lm + delta, ln) <= split_fraction(mode, lm, ln)

    @given(lm=LOADS, ln=LOADS)
    def test_ad3_at_least_as_minimal_as_ad0(self, lm, ln):
        assert split_fraction(AD3, lm, ln) >= split_fraction(AD0, lm, ln) - 1e-12

    @given(lm=LOADS, ln=LOADS, hops=st.integers(0, 10))
    def test_minimal_preferred_monotone_in_bias(self, lm, ln, hops):
        # if the weaker bias already prefers minimal, the stronger must too
        if bool(minimal_preferred(AD0, lm, ln, hops)):
            assert bool(minimal_preferred(AD2, lm, ln, hops))
            assert bool(minimal_preferred(AD3, lm, ln, hops))

    @given(lm=LOADS, ln=LOADS, h1=st.integers(0, 10), h2=st.integers(0, 10))
    def test_ad1_increasingly_minimal(self, lm, ln, h1, h2):
        # deeper in the network, AD1 can only get more minimal
        lo, hi = min(h1, h2), max(h1, h2)
        if bool(minimal_preferred(AD1, lm, ln, lo)):
            assert bool(minimal_preferred(AD1, lm, ln, hi))

    @given(
        shift=st.integers(0, 15),
        add=st.integers(0, 15),
        lm=LOADS,
        ln=LOADS,
    )
    def test_any_valid_bias_well_defined(self, shift, add, lm, ln):
        mode = RoutingMode(f"S{shift}A{add}", shift=shift, add=add)
        assert bool(minimal_preferred(mode, lm, ln)) in (True, False)
        assert 0.0 <= float(split_fraction(mode, lm, ln)) <= 1.0


class TestCongestionProperties:
    @given(u=st.floats(0, 2, allow_nan=False))
    def test_stall_ratio_bounded(self, u):
        cm = CongestionModel()
        r = float(cm.stall_ratio(u))
        assert 0.0 <= r <= cm.stall_cap

    @given(u1=st.floats(0, 1), u2=st.floats(0, 1))
    def test_stall_ratio_monotone(self, u1, u2):
        cm = CongestionModel()
        lo, hi = min(u1, u2), max(u1, u2)
        assert cm.stall_ratio(hi) >= cm.stall_ratio(lo)

    @given(u=st.floats(0, 2), cap=st.floats(1e8, 2e10))
    def test_queue_delay_nonnegative_finite(self, u, cap):
        cm = CongestionModel()
        d = float(cm.queue_delay(u, cap))
        assert 0.0 <= d < 1.0
        assert np.isfinite(d)

    @given(u=st.floats(0, 3))
    def test_backpressure_bounded(self, u):
        cm = CongestionModel()
        f = float(cm.backpressure_factor(u))
        assert 1.0 <= f <= cm.backpressure_cap


class TestMetricsProperties:
    @given(
        st.lists(st.floats(1.0, 1e6, allow_nan=False, allow_infinity=False), min_size=3, max_size=100)
    )
    def test_zscore_shape_and_scale(self, values):
        v = np.array(values)
        z = zscore(v)
        assert z.shape == v.shape
        assert np.isfinite(z).all()

    @given(
        st.lists(st.floats(1.0, 1e6, allow_nan=False, allow_infinity=False), min_size=3, max_size=100)
    )
    def test_outlier_removal_subset(self, values):
        v = np.array(values)
        out = remove_outliers(v)
        assert out.size <= v.size
        assert np.isin(out, v).all()

    @given(
        st.lists(st.floats(0.1, 1e3, allow_nan=False), min_size=1, max_size=200)
    )
    def test_ccdf_bounds(self, values):
        x, c = ccdf(np.array(values))
        assert c[0] == pytest.approx(1.0)
        assert (c > 0).all() and (c <= 1.0 + 1e-12).all()
        assert (np.diff(c) <= 1e-12).all()

    @given(
        st.lists(st.floats(0.1, 1e3, allow_nan=False), min_size=2, max_size=300)
    )
    def test_percentiles_within_range(self, values):
        v = np.array(values)
        s = percentile_summary(v, percentiles=(5, 50, 99))
        assert v.min() - 1e-9 <= s[5] <= s[50] <= s[99] <= v.max() + 1e-9


@st.composite
def small_dragonfly(draw):
    return DragonflyTopology(
        DragonflyParams(
            name="prop",
            n_groups=draw(st.integers(2, 5)),
            chassis_per_group=draw(st.integers(1, 3)),
            routers_per_chassis=draw(st.integers(2, 6)),
            nodes_per_router=draw(st.integers(1, 3)),
            cables_per_group_pair=draw(st.integers(1, 4)),
            lanes_per_cable=1,
        ),
        seed=draw(st.integers(0, 100)),
    )


class TestTopologyProperties:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(top=small_dragonfly(), seed=st.integers(0, 1000))
    def test_paths_always_continuous(self, top, seed):
        rng = np.random.default_rng(seed)
        n = min(20, top.n_nodes - 1)
        src = rng.integers(0, top.n_nodes, n)
        dst = (src + 1 + rng.integers(0, top.n_nodes - 1, n)) % top.n_nodes
        for builder in (minimal_paths, valiant_paths):
            b = builder(top, src, dst, k=2, rng=rng)
            for row in b.links:
                ids = row[row >= 0]
                assert top.link_class[ids[0]] == 3  # injection
                assert top.link_class[ids[-1]] == 4  # ejection
                prev = top.link_dst_router[ids[0]]
                for lid in ids[1:-1]:
                    assert top.link_src_router[lid] == prev
                    prev = top.link_dst_router[lid]
                assert top.link_src_router[ids[-1]] == prev

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(top=small_dragonfly(), seed=st.integers(0, 1000), mode=MODES)
    def test_fluid_conserves_injection_load(self, top, seed, mode):
        rng = np.random.default_rng(seed)
        n = min(16, top.n_nodes - 1)
        src = rng.permutation(top.n_nodes)[:n]
        dst = np.roll(rng.permutation(top.n_nodes)[:n], 1)
        keep = src != dst
        fl = FlowSet(
            src[keep], dst[keep], np.full(int(keep.sum()), 1e5), np.zeros(int(keep.sum()), dtype=np.int64)
        )
        if fl.n == 0:
            return
        res = solve_fluid(top, fl, [mode], rng=rng)
        inj = top.injection_link(fl.src)
        expected = np.zeros(top.n_links)
        np.add.at(expected, inj, fl.nbytes)
        sel = expected > 0
        np.testing.assert_allclose(res.link_load[sel], expected[sel], rtol=1e-6)
        # split fraction always a valid probability
        assert (res.min_fraction >= 0).all() and (res.min_fraction <= 1).all()
        # times and latencies positive and finite
        assert np.isfinite(res.flow_time).all() and (res.flow_time > 0).all()
        assert np.isfinite(res.flow_latency).all() and (res.flow_latency > 0).all()
