"""Property and fault-injection tests for the content-addressed
:class:`repro.service.store.RunRecordStore`.

Three contracts under test:

* **round-trip** — any JSON-safe record committed under any
  ``(fingerprint, sample, mode)`` key comes back equal, and only under
  its own key (hypothesis);
* **quarantine** — a damaged entry (any single corrupted byte, or raw
  garbage) is never served and never raises: the read is a miss, the
  file moves to ``quarantine/``, and the slot is immediately writable
  again;
* **eviction** — LRU respects ``max_entries``/``max_bytes`` budgets and
  never removes a key pinned by an in-flight campaign.
"""

import json
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.service.store import KEY_LEN, RunRecordStore, entry_key

MODES = st.sampled_from(["AD0", "AD1", "AD2", "AD3"])

JSON_SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**31), 2**31),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)

RECORDS = st.dictionaries(
    st.text(alphabet="abcdefgh_", min_size=1, max_size=12),
    st.one_of(JSON_SCALARS, st.lists(JSON_SCALARS, max_size=4)),
    max_size=8,
)

FINGERPRINTS = st.fixed_dictionaries(
    {
        "app": st.sampled_from(["milc", "hacc", "lammps"]),
        "seed": st.integers(0, 999),
        "samples": st.integers(1, 32),
    }
)

FAST = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)


class TestEntryKey:
    def test_stable_and_distinct(self):
        fp = {"app": "milc", "seed": 1}
        k = entry_key(fp, 0, "AD0")
        assert len(k) == KEY_LEN
        assert k == entry_key(fp, 0, "AD0")
        assert k != entry_key(fp, 1, "AD0")
        assert k != entry_key(fp, 0, "AD3")
        assert k != entry_key({"app": "milc", "seed": 2}, 0, "AD0")

    def test_key_order_does_not_matter(self):
        a = {"app": "milc", "seed": 1}
        b = {"seed": 1, "app": "milc"}
        assert entry_key(a, 0, "AD0") == entry_key(b, 0, "AD0")


class TestRoundTrip:
    @given(fp=FINGERPRINTS, sample=st.integers(0, 63), mode=MODES, rec=RECORDS)
    @FAST
    def test_put_get_round_trip(self, tmp_path, fp, sample, mode, rec):
        # hypothesis reuses tmp_path across examples: each gets a fresh dir
        store = RunRecordStore(tempfile.mkdtemp(dir=tmp_path))
        assert store.put(fp, sample, mode, rec) is True
        got = store.get(fp, sample, mode)
        # exact value identity through the JSON layer
        assert json.dumps(got, sort_keys=True) == json.dumps(rec, sort_keys=True)

    @given(fp=FINGERPRINTS, sample=st.integers(0, 63), mode=MODES, rec=RECORDS)
    @FAST
    def test_distinct_keys_never_share_entries(self, tmp_path, fp, sample, mode, rec):
        store = RunRecordStore(tempfile.mkdtemp(dir=tmp_path))
        store.put(fp, sample, mode, rec)
        other_fp = dict(fp, seed=fp["seed"] + 1)
        assert store.get(other_fp, sample, mode) is None
        assert store.get(fp, sample + 1, mode) is None

    def test_duplicate_put_is_dedup_not_overwrite(self, tmp_path):
        store = RunRecordStore(tmp_path / "c")
        fp = {"app": "milc", "seed": 1}
        assert store.put(fp, 0, "AD0", {"runtime": 1.0}) is True
        assert store.put(fp, 0, "AD0", {"runtime": 1.0}) is False
        st_ = store.stats()
        assert st_.puts == 1 and st_.dedup_puts == 1 and st_.entries == 1

    def test_persistence_across_store_instances(self, tmp_path):
        fp = {"app": "milc", "seed": 1}
        RunRecordStore(tmp_path / "c").put(fp, 0, "AD0", {"runtime": 1.0})
        again = RunRecordStore(tmp_path / "c")
        assert again.get(fp, 0, "AD0") == {"runtime": 1.0}


class TestQuarantine:
    FP = {"app": "milc", "seed": 7}
    REC = {"runtime": 123.5, "mode": "AD0", "status": "ok"}

    def _entry_path(self, store):
        return store._path(entry_key(self.FP, 0, "AD0"))

    def test_every_single_byte_corruption_is_quarantined(self, tmp_path):
        store = RunRecordStore(tmp_path / "c")
        store.put(self.FP, 0, "AD0", self.REC)
        path = self._entry_path(store)
        pristine = path.read_bytes()
        for off in range(len(pristine)):
            damaged = bytearray(pristine)
            damaged[off] ^= 0xFF
            path.write_bytes(bytes(damaged))
            # never served, never raises
            assert store.get(self.FP, 0, "AD0") is None
            assert not path.exists(), f"byte {off}: damaged entry survived"
            # the slot heals: a fresh put serves again
            assert store.put(self.FP, 0, "AD0", self.REC) is True
            assert store.get(self.FP, 0, "AD0") == self.REC
        st_ = store.stats()
        assert st_.quarantined == len(pristine)
        assert st_.quarantined_files == len(pristine)

    def test_garbage_file_is_quarantined(self, tmp_path):
        store = RunRecordStore(tmp_path / "c")
        key = entry_key(self.FP, 0, "AD0")
        store._path(key).write_bytes(b"\x00\xffnot json at all")
        assert store.get(self.FP, 0, "AD0") is None
        assert store.stats().quarantined == 1

    def test_valid_json_wrong_identity_is_quarantined(self, tmp_path):
        """An entry addressed to a different campaign must never be
        served even if its own integrity hash is intact."""
        store = RunRecordStore(tmp_path / "c")
        other = {"app": "hacc", "seed": 8}
        store.put(other, 0, "AD0", self.REC)
        src = store._path(entry_key(other, 0, "AD0"))
        dst = store._path(entry_key(self.FP, 0, "AD0"))
        dst.write_bytes(src.read_bytes())
        assert store.get(self.FP, 0, "AD0") is None
        assert store.stats().quarantined == 1
        # the innocent original is untouched
        assert store.get(other, 0, "AD0") == self.REC

    def test_stale_tmp_scratch_is_cleared_on_init(self, tmp_path):
        store = RunRecordStore(tmp_path / "c")
        (store.tmp_dir / ".orphan.123.abc").write_bytes(b"torn")
        again = RunRecordStore(tmp_path / "c")
        assert not list(again.tmp_dir.iterdir())


class TestEviction:
    FP = {"app": "milc", "seed": 7}

    def _fill(self, store, n, pad=0):
        import os
        import time

        for i in range(n):
            store.put(self.FP, i, "AD0", {"i": i, "pad": "x" * pad})
            # distinct mtimes make LRU order deterministic on coarse
            # filesystem timestamp granularity
            path = store._path(entry_key(self.FP, i, "AD0"))
            t = time.time() - (n - i) * 10
            os.utime(path, (t, t))

    def test_max_entries_keeps_newest(self, tmp_path):
        store = RunRecordStore(tmp_path / "c", max_entries=3)
        self._fill(store, 6)
        assert len(store) <= 3
        # the most recent keys survive, the oldest are gone
        assert store.get(self.FP, 5, "AD0") is not None
        assert store.get(self.FP, 0, "AD0") is None

    def test_max_bytes_bounds_disk_usage(self, tmp_path):
        store = RunRecordStore(tmp_path / "c", max_bytes=2000)
        self._fill(store, 10, pad=300)
        assert store.stats().bytes <= 2000
        assert store.stats().evictions > 0

    def test_pinned_keys_survive_eviction(self, tmp_path):
        store = RunRecordStore(tmp_path / "c", max_entries=2)
        keys = [entry_key(self.FP, i, "AD0") for i in range(5)]
        with store.pinned(keys):
            self._fill(store, 5)
            # over budget, but every key is pinned: nothing evictable
            assert len(store) == 5
            for i in range(5):
                assert store.get(self.FP, i, "AD0") is not None
        # pins released: the next put shrinks the cache back to budget
        store.put(self.FP, 99, "AD0", {"i": 99})
        assert len(store) <= 2

    def test_unpinned_are_evicted_before_pinned(self, tmp_path):
        store = RunRecordStore(tmp_path / "c", max_entries=2)
        with store.pinned([entry_key(self.FP, 0, "AD0")]):
            self._fill(store, 4)
            assert store.get(self.FP, 0, "AD0") is not None

    def test_bad_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            RunRecordStore(tmp_path / "c", max_bytes=0)
        with pytest.raises(ValueError):
            RunRecordStore(tmp_path / "c", max_entries=-1)
