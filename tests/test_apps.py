"""Unit tests for the application workload models (Table I invariants)."""

import numpy as np
import pytest

from repro.apps import (
    HACC,
    MILC,
    PRODUCTION_APPS,
    BisectionBound,
    ComputeBound,
    InjectionBound,
    LatencyBound,
    MILCReorder,
    Nek5000,
    Qbox,
    Rayleigh,
    app_by_name,
)
from repro.apps.base import grid_dims, rank_grid_coords, random_pair_flows, stencil_flows
from repro.mpi.patterns import TrafficOp
from repro.util import KiB, MiB


@pytest.fixture
def nodes256():
    return np.arange(256)


class TestGridHelpers:
    def test_grid_dims_balanced(self):
        assert grid_dims(256, 4) == (4, 4, 4, 4)
        assert grid_dims(128, 4) == (4, 4, 4, 2)
        assert grid_dims(512, 4) == (8, 4, 4, 4)
        assert grid_dims(64, 3) == (4, 4, 4)

    def test_grid_dims_prime(self):
        assert grid_dims(7, 2) == (7, 1)

    def test_grid_dims_product(self):
        for n in (12, 100, 256, 360):
            assert int(np.prod(grid_dims(n, 4))) == n

    def test_grid_dims_validation(self):
        with pytest.raises(ValueError):
            grid_dims(0, 3)

    def test_rank_grid_coords_roundtrip(self):
        dims = (4, 4, 2)
        coords = rank_grid_coords(32, dims)
        # row-major recomposition
        recomposed = coords[:, 0] * 8 + coords[:, 1] * 2 + coords[:, 2]
        np.testing.assert_array_equal(recomposed, np.arange(32))

    def test_rank_grid_coords_validation(self):
        with pytest.raises(ValueError):
            rank_grid_coords(10, (3, 3))

    def test_stencil_flows_degree(self, nodes256):
        fl = stencil_flows(nodes256, (4, 4, 4, 4), 1000.0)
        # periodic 4D grid: 8 neighbors each
        counts = np.bincount(fl.src, minlength=256)
        assert (counts == 8).all()

    def test_stencil_flows_nonperiodic_boundary(self):
        fl = stencil_flows(np.arange(16), (4, 4), 10.0, periodic=False)
        counts = np.bincount(fl.src, minlength=16)
        assert counts.min() == 2  # corners
        assert counts.max() == 4  # interior

    def test_stencil_dim2_no_self_duplicates(self):
        # dims of size 2: +1 and -1 reach the same partner
        fl = stencil_flows(np.arange(8), (2, 2, 2), 10.0)
        assert (fl.src != fl.dst).all()

    def test_random_pair_flows(self, nodes256, rng):
        fl = random_pair_flows(nodes256, 12, 100.0, rng)
        assert fl.n == 256 * 12
        assert (fl.src != fl.dst).all()


class TestAppRegistry:
    def test_production_set(self):
        names = [cls.name for cls in PRODUCTION_APPS]
        assert names == ["MILC", "MILCREORDER", "Nek5000", "HACC", "Qbox", "Rayleigh"]

    @pytest.mark.parametrize("name", ["milc", "MILCREORDER", "hacc", "qbox", "latencybound"])
    def test_app_by_name(self, name):
        assert app_by_name(name).name.lower() == name.lower().replace(" ", "")

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            app_by_name("gromacs")


class TestTableICharacteristics:
    """Each model must emit the communication profile of Table I."""

    def test_milc_message_sizes_kb_range(self, nodes256, rng):
        phases = MILC().phases(nodes256, rng)
        stencil = phases[0].p2p
        per_msg = stencil.flows.nbytes[0] / MILC.cg_per_iter
        assert 1 * KiB <= per_msg <= 128 * KiB

    def test_milc_allreduce_is_8_bytes(self, nodes256, rng):
        phases = MILC().phases(nodes256, rng)
        ar = phases[1].collectives[0]
        assert ar.op == "MPI_Allreduce"
        assert ar.msg_bytes == 8.0

    def test_milc_4d_stencil(self, nodes256, rng):
        phases = MILC().phases(nodes256, rng)
        counts = np.bincount(phases[0].p2p.flows.src, minlength=256)
        assert (counts == 8).all()  # 2 * 4 dims

    def test_milcreorder_less_volume_than_milc(self, nodes256, rng):
        v_milc = sum(p.total_bytes() for p in MILC().phases(nodes256, rng))
        v_reord = sum(p.total_bytes() for p in MILCReorder().phases(nodes256, rng))
        assert v_reord < v_milc

    def test_hacc_large_messages(self, nodes256, rng):
        phases = HACC().phases(nodes256, rng)
        fft = phases[0].p2p
        per_msg = fft.flows.nbytes[0] / HACC.transposes_per_iter
        assert per_msg >= 1 * MiB  # the paper's 1.2 MB sends

    def test_hacc_fft_not_latency_exposed(self, nodes256, rng):
        phases = HACC().phases(nodes256, rng)
        assert phases[0].p2p.exposed_messages == 0.0

    def test_hacc_allreduce_1kb(self, nodes256, rng):
        phases = HACC().phases(nodes256, rng)
        sums = phases[2].collectives[0]
        assert sums.msg_bytes == 1 * KiB

    def test_qbox_alltoallv_is_a2a_class(self, nodes256, rng):
        phases = Qbox().phases(nodes256, rng)
        a2a = phases[0].collectives[0]
        assert a2a.op == "MPI_Alltoallv"
        assert a2a.traffic_op == TrafficOp.A2A
        assert a2a.sync == "pairwise"

    def test_qbox_pair_bytes_128k(self, nodes256, rng):
        phases = Qbox().phases(nodes256, rng)
        assert phases[0].collectives[0].msg_bytes == pytest.approx(128 * KiB)

    def test_rayleigh_no_heavy_p2p(self, nodes256, rng):
        phases = Rayleigh().phases(nodes256, rng)
        a2a_bytes = phases[0].collectives[0].flows.nbytes.sum()
        p2p_bytes = phases[0].p2p.flows.nbytes.sum()
        assert p2p_bytes < 0.1 * a2a_bytes

    def test_rayleigh_23mb_alltoallv(self, nodes256, rng):
        phases = Rayleigh().phases(nodes256, rng)
        assert phases[0].collectives[0].msg_bytes == pytest.approx(23 * MiB)

    def test_nek_medium_messages_light_collectives(self, nodes256, rng):
        phases = Nek5000().phases(nodes256, rng)
        gs = phases[0].p2p
        per_msg = gs.flows.nbytes[0] / Nek5000.solves_per_iter
        assert 1 * KiB <= per_msg <= 64 * KiB
        ar = phases[1].collectives[0]
        assert ar.msg_bytes == 16.0  # Table I: light (16B)


class TestScaling:
    @pytest.mark.parametrize("cls", [MILC, HACC, Qbox])
    def test_strong_scaling_halves_volume(self, cls, rng):
        app = cls()
        v256 = sum(p.total_bytes() for p in app.phases(np.arange(256), rng))
        v512 = sum(p.total_bytes() for p in app.phases(np.arange(512), rng))
        # per-rank volume halves, rank count doubles: total roughly constant
        assert v512 == pytest.approx(v256, rel=0.25)

    def test_scale_factor(self):
        app = MILC()
        assert app.scale_factor(256) == 1.0
        assert app.scale_factor(512) == 0.5
        assert app.scale_factor(128) == 2.0

    def test_weak_scaling_mode(self):
        app = MILC()
        app.scaling = "weak"
        assert app.scale_factor(512) == 1.0
        app.scaling = "strong"

    def test_unknown_scaling_rejected(self):
        app = MILC()
        app.scaling = "magic"
        with pytest.raises(ValueError):
            app.scale_factor(512)
        app.scaling = "strong"

    @pytest.mark.parametrize("cls", list(PRODUCTION_APPS))
    def test_phases_well_formed(self, cls, rng):
        phases = cls()().phases(np.arange(128), rng) if False else cls().phases(np.arange(128), rng)
        assert len(phases) >= 1
        for p in phases:
            fl = p.all_flows()
            if fl.n:
                assert (fl.src != fl.dst).all()
                assert (fl.nbytes >= 0).all()


class TestSyntheticApps:
    def test_latency_bound_small_messages(self, nodes256, rng):
        phases = LatencyBound().phases(nodes256, rng)
        coll = phases[0].collectives[0]
        assert coll.flows.nbytes.max() <= 8.0 * LatencyBound.allreduces_per_iter

    def test_bisection_bound_large_messages(self, nodes256, rng):
        phases = BisectionBound().phases(nodes256, rng)
        assert phases[0].p2p.flows.nbytes.min() >= 1 * MiB

    def test_injection_bound_one_partner(self, nodes256, rng):
        phases = InjectionBound().phases(nodes256, rng)
        counts = np.bincount(phases[0].p2p.flows.src, minlength=256)
        assert counts.max() == 1

    def test_compute_bound_tiny_comm(self, nodes256, rng):
        phases = ComputeBound().phases(nodes256, rng)
        assert sum(p.total_bytes() for p in phases) < 1 * MiB
