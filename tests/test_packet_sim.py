"""Unit tests for the packet-level simulator."""

import numpy as np
import pytest

from repro.core.biases import AD0, AD3
from repro.network.congestion import PACKET_BYTES
from repro.network.packet_sim import InjectionSpec, PacketSimConfig, PacketSimulator


def make_sim(top, seed=0, **kw):
    return PacketSimulator(top, PacketSimConfig(**kw), rng=np.random.default_rng(seed))


class TestBasics:
    def test_single_message_delivery(self, toy_top):
        sim = make_sim(toy_top)
        mid = sim.add_message(InjectionSpec(src=0, dst=17, nbytes=1024, mode=AD0))
        steps = sim.run()
        assert steps > 0
        assert sim.messages[mid].done
        assert sim.messages[mid].latency(sim.config.step_time) > 0

    def test_packet_count(self, toy_top):
        sim = make_sim(toy_top)
        mid = sim.add_message(InjectionSpec(src=0, dst=17, nbytes=1000, mode=AD0))
        assert sim.messages[mid].n_packets == int(np.ceil(1000 / PACKET_BYTES))

    def test_all_packets_accounted(self, toy_top):
        sim = make_sim(toy_top)
        sim.add_message(InjectionSpec(src=0, dst=20, nbytes=4096, mode=AD0))
        sim.add_message(InjectionSpec(src=5, dst=25, nbytes=4096, mode=AD0))
        sim.run()
        n_pkts = sum(m.n_packets for m in sim.messages)
        assert sim.packet_latencies().size == n_pkts
        assert sim.idle

    def test_flits_counted_on_service(self, toy_top):
        sim = make_sim(toy_top)
        sim.add_message(InjectionSpec(src=0, dst=17, nbytes=640, mode=AD0))
        sim.run()
        assert sim.flits.sum() > 0

    def test_validation(self, toy_top):
        sim = make_sim(toy_top)
        with pytest.raises(ValueError):
            sim.add_message(InjectionSpec(src=3, dst=3, nbytes=64, mode=AD0))
        with pytest.raises(ValueError):
            sim.add_message(InjectionSpec(src=0, dst=10**6, nbytes=64, mode=AD0))
        with pytest.raises(ValueError):
            sim.add_message(InjectionSpec(src=0, dst=1, nbytes=0, mode=AD0))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PacketSimConfig(step_time=0)
        with pytest.raises(ValueError):
            PacketSimConfig(occupancy_credit_unit=0)

    def test_delayed_start(self, toy_top):
        sim = make_sim(toy_top)
        sim.add_message(InjectionSpec(src=0, dst=17, nbytes=64, mode=AD0, start_step=50))
        sim.run()
        assert sim.messages[0].finish_step > 50

    def test_past_start_rejected(self, toy_top):
        sim = make_sim(toy_top)
        for _ in range(10):
            sim.advance()
        with pytest.raises(ValueError, match="in the past"):
            sim.add_message(InjectionSpec(src=0, dst=17, nbytes=64, mode=AD0, start_step=5))

    def test_run_limit(self, toy_top):
        sim = make_sim(toy_top, max_steps=1)
        sim.add_message(InjectionSpec(src=0, dst=17, nbytes=10_000_000, mode=AD0))
        with pytest.raises(RuntimeError, match="did not drain"):
            sim.run()


class TestRoutingBehavior:
    def test_ad3_overwhelmingly_minimal(self, toy_top):
        # AD3 may legitimately divert when minimal load exceeds 4x the
        # alternative, but that should be rare
        sim = make_sim(toy_top)
        for s in range(8):
            sim.add_message(InjectionSpec(src=s, dst=16 + s, nbytes=8192, mode=AD3))
        sim.run()
        non = sum(m.nonmin_packets for m in sim.messages)
        total = sum(m.n_packets for m in sim.messages)
        assert non / total < 0.05

    def test_ad3_more_minimal_than_ad0(self, toy_top):
        fracs = {}
        for mode in (AD0, AD3):
            sim = make_sim(toy_top, seed=3)
            for s in range(16):
                sim.add_message(
                    InjectionSpec(src=s, dst=16 + (s % 16), nbytes=16384, mode=mode)
                )
            sim.run()
            non = sum(m.nonmin_packets for m in sim.messages)
            total = sum(m.n_packets for m in sim.messages)
            fracs[mode.name] = non / total
        assert fracs["AD3"] < fracs["AD0"]

    def test_ad0_splits_under_contention(self, toy_top):
        sim = make_sim(toy_top)
        for s in range(16):
            sim.add_message(InjectionSpec(src=s, dst=16 + (s % 16), nbytes=16384, mode=AD0))
        sim.run()
        total_non = sum(m.nonmin_packets for m in sim.messages)
        assert total_non > 0

    def test_stalls_emerge_under_incast(self, toy_top):
        # many senders, one destination: ejection queue must stall
        sim = make_sim(toy_top)
        for s in range(8):
            sim.add_message(InjectionSpec(src=s, dst=31, nbytes=16384, mode=AD0))
        sim.run()
        assert sim.stalls.sum() > 0

    def test_uncontended_faster_than_incast(self, toy_top):
        free = make_sim(toy_top)
        free.add_message(InjectionSpec(src=0, dst=31, nbytes=16384, mode=AD0))
        free.run()
        t_free = free.messages[0].latency(free.config.step_time)

        incast = make_sim(toy_top)
        mids = [
            incast.add_message(InjectionSpec(src=s, dst=31, nbytes=16384, mode=AD0))
            for s in range(8)
        ]
        incast.run()
        t_incast = max(incast.messages[m].latency(incast.config.step_time) for m in mids)
        assert t_incast > t_free

    def test_occupancy_snapshot(self, toy_top):
        sim = make_sim(toy_top)
        sim.add_message(InjectionSpec(src=0, dst=17, nbytes=64 * 100, mode=AD0))
        sim.advance()
        occ = sim.occupancy()
        assert occ.sum() > 0

    def test_stall_to_flit_ratio_finite(self, toy_top):
        sim = make_sim(toy_top)
        for s in range(8):
            sim.add_message(InjectionSpec(src=s, dst=24 + (s % 8), nbytes=8192, mode=AD0))
        sim.run()
        assert np.isfinite(sim.stall_to_flit_ratio())

    def test_deterministic(self, toy_top):
        lats = []
        for _ in range(2):
            sim = make_sim(toy_top, seed=7)
            for s in range(4):
                sim.add_message(InjectionSpec(src=s, dst=16 + s, nbytes=4096, mode=AD0))
            sim.run()
            lats.append(sim.packet_latencies())
        np.testing.assert_array_equal(lats[0], lats[1])


class TestBandwidth:
    def test_throughput_bounded_by_nic(self, toy_top):
        # one large message cannot beat the injection-link rate
        sim = make_sim(toy_top)
        nbytes = 512 * 1024
        sim.add_message(InjectionSpec(src=0, dst=17, nbytes=nbytes, mode=AD3))
        sim.run()
        elapsed = sim.messages[0].latency(sim.config.step_time)
        nic_rate = toy_top.params.nic_bw_bidir / 2
        assert nbytes / elapsed <= nic_rate * 1.05

    def test_throughput_reasonable_fraction_of_nic(self, toy_top):
        sim = make_sim(toy_top)
        nbytes = 512 * 1024
        sim.add_message(InjectionSpec(src=0, dst=17, nbytes=nbytes, mode=AD3))
        sim.run()
        elapsed = sim.messages[0].latency(sim.config.step_time)
        nic_rate = toy_top.params.nic_bw_bidir / 2
        # an uncontended stream should achieve most of the line rate
        assert nbytes / elapsed >= 0.5 * nic_rate


class TestPacketTelemetry:
    def test_run_event_and_step_stats(self, toy_top):
        from repro.telemetry import MemoryTraceWriter, Telemetry

        mem = MemoryTraceWriter()
        tel = Telemetry(trace=mem)
        sim = PacketSimulator(
            toy_top,
            PacketSimConfig(trace_every=2),
            rng=np.random.default_rng(0),
            telemetry=tel,
        )
        sim.add_message(InjectionSpec(src=0, dst=17, nbytes=4096, mode=AD0))
        sim.run()
        (run_ev,) = mem.of_type("packet.run")
        assert run_ev["messages_done"] == 1
        assert run_ev["steps"] > 0
        assert run_ev["flits"] > 0
        assert mem.of_type("packet.step")  # periodic queue stats
        assert tel.metrics.counter("packet_steps_total").value == run_ev["steps"]

    def test_no_telemetry_no_events(self, toy_top):
        sim = PacketSimulator(toy_top, rng=np.random.default_rng(0))
        sim.add_message(InjectionSpec(src=0, dst=17, nbytes=1024, mode=AD0))
        sim.run()  # ambient telemetry is the null sink: nothing to assert, must not raise
