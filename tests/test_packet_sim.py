"""Unit tests for the packet-level simulator."""

import numpy as np
import pytest

from repro.core.biases import AD0, AD3
from repro.network.congestion import PACKET_BYTES
from repro.network.packet_sim import InjectionSpec, PacketSimConfig, PacketSimulator


def make_sim(top, seed=0, **kw):
    return PacketSimulator(top, PacketSimConfig(**kw), rng=np.random.default_rng(seed))


class TestBasics:
    def test_single_message_delivery(self, toy_top):
        sim = make_sim(toy_top)
        mid = sim.add_message(InjectionSpec(src=0, dst=17, nbytes=1024, mode=AD0))
        steps = sim.run()
        assert steps > 0
        assert sim.messages[mid].done
        assert sim.messages[mid].latency(sim.config.step_time) > 0

    def test_packet_count(self, toy_top):
        sim = make_sim(toy_top)
        mid = sim.add_message(InjectionSpec(src=0, dst=17, nbytes=1000, mode=AD0))
        assert sim.messages[mid].n_packets == int(np.ceil(1000 / PACKET_BYTES))

    def test_all_packets_accounted(self, toy_top):
        sim = make_sim(toy_top)
        sim.add_message(InjectionSpec(src=0, dst=20, nbytes=4096, mode=AD0))
        sim.add_message(InjectionSpec(src=5, dst=25, nbytes=4096, mode=AD0))
        sim.run()
        n_pkts = sum(m.n_packets for m in sim.messages)
        assert sim.packet_latencies().size == n_pkts
        assert sim.idle

    def test_flits_counted_on_service(self, toy_top):
        sim = make_sim(toy_top)
        sim.add_message(InjectionSpec(src=0, dst=17, nbytes=640, mode=AD0))
        sim.run()
        assert sim.flits.sum() > 0

    def test_validation(self, toy_top):
        sim = make_sim(toy_top)
        with pytest.raises(ValueError):
            sim.add_message(InjectionSpec(src=3, dst=3, nbytes=64, mode=AD0))
        with pytest.raises(ValueError):
            sim.add_message(InjectionSpec(src=0, dst=10**6, nbytes=64, mode=AD0))
        with pytest.raises(ValueError):
            sim.add_message(InjectionSpec(src=0, dst=1, nbytes=0, mode=AD0))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PacketSimConfig(step_time=0)
        with pytest.raises(ValueError):
            PacketSimConfig(occupancy_credit_unit=0)

    def test_delayed_start(self, toy_top):
        sim = make_sim(toy_top)
        sim.add_message(InjectionSpec(src=0, dst=17, nbytes=64, mode=AD0, start_step=50))
        sim.run()
        assert sim.messages[0].finish_step > 50

    def test_past_start_rejected(self, toy_top):
        sim = make_sim(toy_top)
        for _ in range(10):
            sim.advance()
        with pytest.raises(ValueError, match="in the past"):
            sim.add_message(InjectionSpec(src=0, dst=17, nbytes=64, mode=AD0, start_step=5))

    def test_run_limit(self, toy_top):
        sim = make_sim(toy_top, max_steps=1)
        sim.add_message(InjectionSpec(src=0, dst=17, nbytes=10_000_000, mode=AD0))
        with pytest.raises(RuntimeError, match="did not drain"):
            sim.run()


class TestRoutingBehavior:
    def test_ad3_overwhelmingly_minimal(self, toy_top):
        # AD3 may legitimately divert when minimal load exceeds 4x the
        # alternative, but that should be rare
        sim = make_sim(toy_top)
        for s in range(8):
            sim.add_message(InjectionSpec(src=s, dst=16 + s, nbytes=8192, mode=AD3))
        sim.run()
        non = sum(m.nonmin_packets for m in sim.messages)
        total = sum(m.n_packets for m in sim.messages)
        assert non / total < 0.05

    def test_ad3_more_minimal_than_ad0(self, toy_top):
        fracs = {}
        for mode in (AD0, AD3):
            sim = make_sim(toy_top, seed=3)
            for s in range(16):
                sim.add_message(
                    InjectionSpec(src=s, dst=16 + (s % 16), nbytes=16384, mode=mode)
                )
            sim.run()
            non = sum(m.nonmin_packets for m in sim.messages)
            total = sum(m.n_packets for m in sim.messages)
            fracs[mode.name] = non / total
        assert fracs["AD3"] < fracs["AD0"]

    def test_ad0_splits_under_contention(self, toy_top):
        sim = make_sim(toy_top)
        for s in range(16):
            sim.add_message(InjectionSpec(src=s, dst=16 + (s % 16), nbytes=16384, mode=AD0))
        sim.run()
        total_non = sum(m.nonmin_packets for m in sim.messages)
        assert total_non > 0

    def test_stalls_emerge_under_incast(self, toy_top):
        # many senders, one destination: ejection queue must stall
        sim = make_sim(toy_top)
        for s in range(8):
            sim.add_message(InjectionSpec(src=s, dst=31, nbytes=16384, mode=AD0))
        sim.run()
        assert sim.stalls.sum() > 0

    def test_uncontended_faster_than_incast(self, toy_top):
        free = make_sim(toy_top)
        free.add_message(InjectionSpec(src=0, dst=31, nbytes=16384, mode=AD0))
        free.run()
        t_free = free.messages[0].latency(free.config.step_time)

        incast = make_sim(toy_top)
        mids = [
            incast.add_message(InjectionSpec(src=s, dst=31, nbytes=16384, mode=AD0))
            for s in range(8)
        ]
        incast.run()
        t_incast = max(incast.messages[m].latency(incast.config.step_time) for m in mids)
        assert t_incast > t_free

    def test_occupancy_snapshot(self, toy_top):
        sim = make_sim(toy_top)
        sim.add_message(InjectionSpec(src=0, dst=17, nbytes=64 * 100, mode=AD0))
        sim.advance()
        occ = sim.occupancy()
        assert occ.sum() > 0

    def test_stall_to_flit_ratio_finite(self, toy_top):
        sim = make_sim(toy_top)
        for s in range(8):
            sim.add_message(InjectionSpec(src=s, dst=24 + (s % 8), nbytes=8192, mode=AD0))
        sim.run()
        assert np.isfinite(sim.stall_to_flit_ratio())

    def test_deterministic(self, toy_top):
        lats = []
        for _ in range(2):
            sim = make_sim(toy_top, seed=7)
            for s in range(4):
                sim.add_message(InjectionSpec(src=s, dst=16 + s, nbytes=4096, mode=AD0))
            sim.run()
            lats.append(sim.packet_latencies())
        np.testing.assert_array_equal(lats[0], lats[1])


class TestBandwidth:
    def test_throughput_bounded_by_nic(self, toy_top):
        # one large message cannot beat the injection-link rate
        sim = make_sim(toy_top)
        nbytes = 512 * 1024
        sim.add_message(InjectionSpec(src=0, dst=17, nbytes=nbytes, mode=AD3))
        sim.run()
        elapsed = sim.messages[0].latency(sim.config.step_time)
        nic_rate = toy_top.params.nic_bw_bidir / 2
        assert nbytes / elapsed <= nic_rate * 1.05

    def test_throughput_reasonable_fraction_of_nic(self, toy_top):
        sim = make_sim(toy_top)
        nbytes = 512 * 1024
        sim.add_message(InjectionSpec(src=0, dst=17, nbytes=nbytes, mode=AD3))
        sim.run()
        elapsed = sim.messages[0].latency(sim.config.step_time)
        nic_rate = toy_top.params.nic_bw_bidir / 2
        # an uncontended stream should achieve most of the line rate
        assert nbytes / elapsed >= 0.5 * nic_rate


class TestPacketTelemetry:
    def test_run_event_and_step_stats(self, toy_top):
        from repro.telemetry import MemoryTraceWriter, Telemetry

        mem = MemoryTraceWriter()
        tel = Telemetry(trace=mem)
        sim = PacketSimulator(
            toy_top,
            PacketSimConfig(trace_every=2),
            rng=np.random.default_rng(0),
            telemetry=tel,
        )
        sim.add_message(InjectionSpec(src=0, dst=17, nbytes=4096, mode=AD0))
        sim.run()
        (run_ev,) = mem.of_type("packet.run")
        assert run_ev["messages_done"] == 1
        assert run_ev["steps"] > 0
        assert run_ev["flits"] > 0
        assert mem.of_type("packet.step")  # periodic queue stats
        assert tel.metrics.counter("packet_steps_total").value == run_ev["steps"]

    def test_no_telemetry_no_events(self, toy_top):
        sim = PacketSimulator(toy_top, rng=np.random.default_rng(0))
        sim.add_message(InjectionSpec(src=0, dst=17, nbytes=1024, mode=AD0))
        sim.run()  # ambient telemetry is the null sink: nothing to assert, must not raise


class TestBookkeeping:
    def test_messages_done_matches_recount(self, toy_top):
        sim = make_sim(toy_top, reroute_patience=2)
        for s in range(6):
            sim.add_message(
                InjectionSpec(src=s, dst=16 + s, nbytes=2048, mode=AD0, start_step=3 * s)
            )
        # the counter must track completion incrementally, not just at the end
        while not sim.idle:
            sim.advance()
            assert sim.messages_done == sum(1 for m in sim.messages if m.done)
        assert sim.messages_done == len(sim.messages)

    def test_messages_done_counts_drops(self, toy_top):
        # partition the two groups mid-run so cross packets drop after
        # bounded retries; dropped messages still count as done
        from repro.faults.model import FaultSchedule, FaultSpec

        cfg = PacketSimConfig(reroute_patience=4)
        t_fault = 20 * cfg.step_time
        K = toy_top.params.cables_per_group_pair
        faults = FaultSchedule(
            specs=tuple(FaultSpec.dead_cable(0, 1, c, start=t_fault) for c in range(K)),
            seed=5,
        )
        sim = PacketSimulator(toy_top, cfg, rng=np.random.default_rng(4), faults=faults)
        for s in range(8):
            sim.add_message(InjectionSpec(src=s, dst=16 + s, nbytes=6400, mode=AD0))
        sim.run()
        assert sim.dropped > 0
        assert sim.messages_done == sum(1 for m in sim.messages if m.done)
        assert sim.messages_done == len(sim.messages)


class TestBulkInjection:
    """add_messages(): batched path construction, statistically equivalent.

    The bulk API consumes RNG draws in a different order than repeated
    add_message() (all minimal draws before any Valiant draws), so runs
    are not byte-identical — but message structure is, and completion
    behavior must be conserved (see docs/PERFORMANCE.md).
    """

    def _specs(self):
        return [
            InjectionSpec(src=s, dst=16 + s, nbytes=4096, mode=AD0, start_step=s % 3)
            for s in range(12)
        ]

    def test_matches_per_message_structure(self, toy_top):
        bulk = make_sim(toy_top, seed=7)
        mids = bulk.add_messages(self._specs())
        seq = make_sim(toy_top, seed=7)
        for spec in self._specs():
            seq.add_message(spec)
        assert mids == list(range(12))
        for mb, ms in zip(bulk.messages, seq.messages):
            assert mb.spec == ms.spec
            assert mb.n_packets == ms.n_packets

    def test_conserves_packets_and_delivery(self, toy_top):
        bulk = make_sim(toy_top, seed=7)
        bulk.add_messages(self._specs())
        bulk.run()
        seq = make_sim(toy_top, seed=7)
        for spec in self._specs():
            seq.add_message(spec)
        seq.run()
        for sim in (bulk, seq):
            assert all(m.delivered for m in sim.messages)
            assert sim.packet_latencies().size == sum(m.n_packets for m in sim.messages)
            for m in sim.messages:
                assert m.min_packets + m.nonmin_packets == m.n_packets
        # trajectories (and so flit/step totals) differ; delivery must not

    def test_empty_batch(self, toy_top):
        sim = make_sim(toy_top)
        assert sim.add_messages([]) == []

    def test_bulk_validates_all_before_registering(self, toy_top):
        sim = make_sim(toy_top)
        good = InjectionSpec(src=0, dst=17, nbytes=64, mode=AD0)
        bad = InjectionSpec(src=1, dst=1, nbytes=64, mode=AD0)
        with pytest.raises(ValueError):
            sim.add_messages([good, bad])
        assert not sim.messages  # nothing partially registered
