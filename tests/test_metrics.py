"""Unit tests for the statistical toolkit."""

import numpy as np
import pytest

from repro.core.metrics import (
    LATENCY_PERCENTILES,
    SampleStats,
    ccdf,
    density,
    percent_change,
    percentile_summary,
    remove_outliers,
    zscore,
    zscore_pooled,
)


class TestZScore:
    def test_zero_mean_unit_std(self, rng):
        v = rng.normal(10, 2, 500)
        z = zscore(v)
        assert z.mean() == pytest.approx(0.0, abs=1e-12)
        assert z.std(ddof=1) == pytest.approx(1.0)

    def test_degenerate_inputs(self):
        assert zscore(np.array([5.0])).tolist() == [0.0]
        assert zscore(np.array([3.0, 3.0, 3.0])).tolist() == [0.0, 0.0, 0.0]

    def test_positive_is_slower(self):
        z = zscore(np.array([1.0, 2.0, 3.0]))
        assert z[-1] > 0 > z[0]

    def test_pooled_normalization(self):
        pool = np.array([10.0, 12.0, 14.0, 16.0])
        z = zscore_pooled(np.array([13.0]), pool)
        assert z[0] == pytest.approx(0.0)

    def test_pooled_degenerate(self):
        assert zscore_pooled(np.array([5.0]), np.array([1.0]))[0] == 0.0


class TestOutlierRemoval:
    def test_keeps_clean_data(self, rng):
        v = rng.normal(100, 5, 100)
        assert remove_outliers(v).size >= 98

    def test_removes_extreme(self):
        v = np.concatenate([np.random.default_rng(0).normal(100, 1, 100), [500.0]])
        out = remove_outliers(v)
        assert 500.0 not in out
        assert out.size == 100

    def test_small_samples_untouched(self):
        v = np.array([1.0, 100.0])
        np.testing.assert_array_equal(remove_outliers(v), v)


class TestCcdf:
    def test_starts_at_one_decreases(self, rng):
        v = rng.integers(1, 100, 200).astype(float)
        x, c = ccdf(v)
        assert c[0] == pytest.approx(1.0)
        assert (np.diff(c) <= 1e-12).all()

    def test_weighted(self):
        x, c = ccdf(np.array([1.0, 2.0]), weights=np.array([1.0, 3.0]))
        assert c[0] == pytest.approx(1.0)
        assert c[1] == pytest.approx(0.75)


class TestDensity:
    def test_integrates_to_one(self, rng):
        v = rng.normal(500, 40, 300)
        x, d = density(v, n_grid=400)
        area = np.trapezoid(d, x)
        assert area == pytest.approx(1.0, abs=0.05)

    def test_peak_near_mean(self, rng):
        v = rng.normal(500, 10, 500)
        x, d = density(v)
        assert abs(x[np.argmax(d)] - 500) < 10

    def test_degenerate_spike(self):
        x, d = density(np.array([5.0, 5.0, 5.0]))
        assert d.max() == 1.0

    def test_custom_grid(self, rng):
        grid = np.linspace(0, 1000, 50)
        x, d = density(rng.normal(500, 40, 100), grid=grid)
        np.testing.assert_array_equal(x, grid)


class TestPercentiles:
    def test_fig14_percentile_set(self):
        assert LATENCY_PERCENTILES == (5, 25, 50, 75, 90, 95, 99, 99.9, 99.99)

    def test_summary_monotone(self, rng):
        v = rng.lognormal(0, 1, 10000)
        s = percentile_summary(v)
        vals = [s[p] for p in LATENCY_PERCENTILES]
        assert vals == sorted(vals)

    def test_nan_dropped(self):
        v = np.array([1.0, np.nan, 3.0])
        s = percentile_summary(v, percentiles=(50,))
        assert s[50] == pytest.approx(2.0)

    def test_empty_gives_nan(self):
        s = percentile_summary(np.array([]), percentiles=(50,))
        assert np.isnan(s[50])

    def test_percent_change_sign(self):
        before = {50: 10.0}
        after = {50: 8.0}
        assert percent_change(before, after)[50] == pytest.approx(-20.0)


class TestSampleStats:
    def test_from_values(self):
        s = SampleStats.from_values(np.array([10.0, 12.0, 14.0]))
        assert s.mean == pytest.approx(12.0)
        assert s.n == 3
        assert s.p95 >= s.mean

    def test_improvement_over(self):
        base = SampleStats.from_values(np.array([100.0, 100.0]))
        fast = SampleStats.from_values(np.array([90.0, 90.0]))
        assert fast.improvement_over(base) == pytest.approx(10.0)
        assert base.improvement_over(fast) == pytest.approx(-100.0 / 9, rel=1e-6)

    def test_empty(self):
        s = SampleStats.from_values(np.array([]))
        assert np.isnan(s.mean) and s.n == 0
        assert not s.reliable

    def test_failed_runs_filtered(self):
        # NaN runtimes (error-status records) must not poison the stats
        s = SampleStats.from_values(np.array([10.0, np.nan, 12.0, np.inf]))
        assert s.mean == pytest.approx(11.0)
        assert s.n == 2

    def test_all_nan_is_unreliable_not_crash(self):
        s = SampleStats.from_values(np.full(5, np.nan))
        assert s.n == 0 and not s.reliable

    def test_reliable_needs_min_samples(self):
        few = SampleStats.from_values(np.array([1.0, 2.0, 3.0]))
        enough = SampleStats.from_values(np.array([1.0, 2.0, 3.0, 4.0]))
        assert not few.reliable
        assert enough.reliable
