"""Seed (pre-arena) packet simulator, kept verbatim as the golden reference.

This is a frozen copy of src/repro/network/packet_sim.py as of the commit
before the engine hot-path overhaul.  The golden-equivalence, property-based
arena, and perf-gate suites compare the optimized engine against this
implementation byte for byte.  Do not optimize or otherwise edit this file
except to track intentional, documented re-baselines (see
docs/PERFORMANCE.md).
"""


from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.biases import RoutingMode
from repro.core.policy import minimal_preferred
from repro.faults.model import FaultSchedule
from repro.guard.context import active_guard
from repro.guard.invariants import check_packet_state
from repro.network.congestion import PACKET_BYTES, FLIT_BYTES
from repro.telemetry import Telemetry, resolve_telemetry
from repro.topology.dragonfly import DragonflyTopology, LinkClass
from repro.topology.paths import minimal_paths, valiant_paths

#: per-packet state arrays compacted together when packets leave the sim
_STATE_ARRAYS = (
    "_p_msg",
    "_p_row",
    "_p_hop",
    "_p_link",
    "_p_seq",
    "_p_birth",
    "_p_flits",
    "_p_wait",
    "_p_retry",
    "_p_drop",
)


@dataclass(frozen=True)
class PacketSimConfig:
    """Simulator tuning.

    Attributes
    ----------
    step_time:
        Seconds per simulation step.  At the default 50 ns a 5.25 GB/s
        rank-1 link serves ~4 packets per step.
    occupancy_credit_unit:
        Queued packets per credit unit when scoring candidate paths
        (hardware load estimates are coarse queue-depth buckets).
    k_min, k_nonmin:
        Candidate sub-paths per side per message.
    max_steps:
        Safety limit for :meth:`PacketSimulator.run`.
    """

    step_time: float = 50e-9
    occupancy_credit_unit: float = 4.0
    #: credit units a candidate is charged per router hop (the UGAL
    #: convention: a longer path means more downstream queue even when
    #: idle, so biased modes prefer minimal at zero load)
    hop_bias_credits: float = 0.25
    #: steps a packet may wait at its first router-output queue before the
    #: router re-runs the adaptive decision for it (Aries re-adapts while
    #: blocked; AD1's per-hop shift schedule applies at the retry).
    #: 0 disables re-routing.
    reroute_patience: int = 8
    #: times a packet stranded on a **dead** link may be retransmitted
    #: from its source NIC before it is dropped.  Independent of
    #: ``reroute_patience``: survivability retries still run when
    #: adaptive re-routing is disabled (patience 0).
    max_reroute_attempts: int = 4
    k_min: int = 2
    k_nonmin: int = 2
    max_steps: int = 200_000
    #: emit a ``packet.step`` trace event every this many steps while a
    #: trace sink is attached (0 disables the periodic events; the
    #: end-of-run ``packet.run`` summary is always emitted when tracing)
    trace_every: int = 0

    def __post_init__(self) -> None:
        if self.step_time <= 0:
            raise ValueError("step_time must be > 0")
        if self.occupancy_credit_unit <= 0:
            raise ValueError("occupancy_credit_unit must be > 0")
        if self.max_reroute_attempts < 0:
            raise ValueError("max_reroute_attempts must be >= 0")


@dataclass
class InjectionSpec:
    """One message to inject: ``src``/``dst`` node, size, mode, start step."""

    src: int
    dst: int
    nbytes: int
    mode: RoutingMode
    start_step: int = 0


@dataclass
class MessageStats:
    """Completion record for one injected message."""

    spec: InjectionSpec
    n_packets: int
    finish_step: int = -1
    min_packets: int = 0
    nonmin_packets: int = 0
    #: packets abandoned after exhausting dead-link retransmits; a
    #: message with drops still *finishes* (the sim would otherwise
    #: never drain) but is not fully delivered.
    dropped_packets: int = 0

    @property
    def done(self) -> bool:
        return self.finish_step >= 0

    @property
    def delivered(self) -> bool:
        return self.done and self.dropped_packets == 0

    def latency(self, step_time: float) -> float:
        """Message completion time in seconds (start -> last packet out)."""
        if not self.done:
            raise RuntimeError("message has not completed")
        return (self.finish_step - self.spec.start_step) * step_time


def _compact_rows(links: np.ndarray) -> np.ndarray:
    """Push the valid (>=0) entries of each row to the front, keep order."""
    order = np.argsort(links < 0, axis=1, kind="stable")
    return np.take_along_axis(links, order, axis=1)


class PacketSimulator:
    """Packet-level simulator over a dragonfly topology."""

    def __init__(
        self,
        top: DragonflyTopology,
        config: PacketSimConfig | None = None,
        *,
        rng: np.random.Generator | None = None,
        telemetry: Telemetry | None = None,
        faults: FaultSchedule | None = None,
    ) -> None:
        self.config = config or PacketSimConfig()
        self.rng = rng or np.random.default_rng(0)
        self.telemetry = telemetry
        c = self.config

        # Faults: ``top`` is the pristine fabric; the simulator derives
        # the degraded view itself so timed specs can flip mid-run.
        self.faults = faults if faults else None
        self._base_top = top
        if self.faults is not None:
            top = top.with_faults(self.faults, at_time=0.0)
        self.top = top
        self._fault_changes: list[float] = (
            list(self.faults.change_times()) if self.faults is not None else []
        )

        # per-link service rate, packets per step
        self._base_rate = self._base_top.capacity * c.step_time / PACKET_BYTES
        self.rate = top.capacity * c.step_time / PACKET_BYTES
        self.credit = np.zeros(top.n_links)
        self.flits = np.zeros(top.n_links)
        self.stalls = np.zeros(top.n_links)

        self.step = 0
        self._seq = 0
        #: adaptive re-route decisions re-run for blocked packets
        self.reroutes = 0
        #: packets retransmitted from their source NIC off a dead link
        self.retries = 0
        #: packets dropped after exhausting ``max_reroute_attempts``
        self.dropped = 0

        # message bookkeeping
        self.messages: list[MessageStats] = []
        self._msg_mode: list[RoutingMode] = []
        self._msg_remaining: list[int] = []
        # candidate paths, stacked: per message k_min minimal rows then
        # k_nonmin non-minimal rows
        self._cand_links: np.ndarray | None = None
        self._cand_valid: np.ndarray | None = None
        self._cand_msg_start: list[int] = []
        self._pending: list[InjectionSpec] = []

        # active packet arrays
        self._p_msg = np.zeros(0, dtype=np.int64)
        self._p_row = np.zeros(0, dtype=np.int64)  # -1 until routed
        self._p_hop = np.zeros(0, dtype=np.int64)
        self._p_link = np.zeros(0, dtype=np.int64)
        self._p_seq = np.zeros(0, dtype=np.int64)
        self._p_birth = np.zeros(0, dtype=np.int64)
        self._p_flits = np.zeros(0, dtype=np.float64)
        self._p_wait = np.zeros(0, dtype=np.int64)
        self._p_retry = np.zeros(0, dtype=np.int64)
        self._p_drop = np.zeros(0, dtype=bool)
        self._pkt_latencies: list[np.ndarray] = []

    # ------------------------------------------------------------------
    # injection
    # ------------------------------------------------------------------
    def add_message(self, spec: InjectionSpec) -> int:
        """Register a message; returns its message id."""
        if spec.src == spec.dst:
            raise ValueError("src and dst must differ")
        if not (0 <= spec.src < self.top.n_nodes and 0 <= spec.dst < self.top.n_nodes):
            raise ValueError("node index out of range")
        if spec.nbytes <= 0:
            raise ValueError("nbytes must be > 0")
        if spec.start_step < self.step:
            raise ValueError("start_step is in the past")
        c = self.config
        mid = len(self.messages)
        n_pkts = int(np.ceil(spec.nbytes / PACKET_BYTES))

        src = np.array([spec.src])
        dst = np.array([spec.dst])
        bmin = minimal_paths(self.top, src, dst, k=c.k_min, rng=self.rng)
        bnon = valiant_paths(self.top, src, dst, k=c.k_nonmin, rng=self.rng)
        rows = _compact_rows(np.vstack([bmin.links, bnon.links]))
        valid = rows >= 0
        if self._cand_links is None:
            self._cand_links = rows
            self._cand_valid = valid
            self._cand_msg_start = [0]
        else:
            self._cand_msg_start.append(self._cand_links.shape[0])
            self._cand_links = np.vstack([self._cand_links, rows])
            self._cand_valid = np.vstack([self._cand_valid, valid])
        self._n_min_cand = bmin.links.shape[0]  # same for every message

        self.messages.append(MessageStats(spec=spec, n_packets=n_pkts))
        self._msg_mode.append(spec.mode)
        self._msg_remaining.append(n_pkts)
        self._pending.append(spec)
        return mid

    def _activate_pending(self) -> None:
        """Enqueue packets of messages whose start step has arrived."""
        due = [s for s in self._pending if s.start_step <= self.step]
        if not due:
            return
        self._pending = [s for s in self._pending if s.start_step > self.step]
        for spec in due:
            mid = next(
                i
                for i, st in enumerate(self.messages)
                if st.spec is spec
            )
            n_pkts = self.messages[mid].n_packets
            tail = spec.nbytes - (n_pkts - 1) * PACKET_BYTES
            flits = np.full(n_pkts, PACKET_BYTES / FLIT_BYTES)
            flits[-1] = max(1.0, np.ceil(tail / FLIT_BYTES))
            inj = int(self.top.injection_link(spec.src))
            self._append_packets(
                msg=np.full(n_pkts, mid, dtype=np.int64),
                link=np.full(n_pkts, inj, dtype=np.int64),
                flits=flits,
            )

    def _append_packets(self, msg: np.ndarray, link: np.ndarray, flits: np.ndarray) -> None:
        n = msg.size
        seq = np.arange(self._seq, self._seq + n, dtype=np.int64)
        self._seq += n
        self._p_msg = np.concatenate([self._p_msg, msg])
        self._p_row = np.concatenate([self._p_row, np.full(n, -1, dtype=np.int64)])
        self._p_hop = np.concatenate([self._p_hop, np.zeros(n, dtype=np.int64)])
        self._p_link = np.concatenate([self._p_link, link])
        self._p_seq = np.concatenate([self._p_seq, seq])
        self._p_birth = np.concatenate([self._p_birth, np.full(n, self.step, dtype=np.int64)])
        self._p_flits = np.concatenate([self._p_flits, flits])
        self._p_wait = np.concatenate([self._p_wait, np.zeros(n, dtype=np.int64)])
        self._p_retry = np.concatenate([self._p_retry, np.zeros(n, dtype=np.int64)])
        self._p_drop = np.concatenate([self._p_drop, np.zeros(n, dtype=bool)])

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    @property
    def n_active(self) -> int:
        return self._p_msg.size

    @property
    def idle(self) -> bool:
        return self.n_active == 0 and not self._pending

    def occupancy(self) -> np.ndarray:
        """Current queued-packet count per link."""
        occ = np.zeros(self.top.n_links)
        if self.n_active:
            np.add.at(occ, self._p_link, 1.0)
        return occ

    def advance(self) -> None:
        """Execute one simulation step."""
        if self._fault_changes and self.now >= self._fault_changes[0]:
            while self._fault_changes and self.now >= self._fault_changes[0]:
                self._fault_changes.pop(0)
            self._apply_fault_state()
        self._activate_pending()
        n = self.n_active
        if n == 0:
            self.step += 1
            self._maybe_trace_step()
            return

        # FIFO rank of each packet within its link's queue
        order = np.lexsort((self._p_seq, self._p_link))
        link_sorted = self._p_link[order]
        new_group = np.ones(n, dtype=bool)
        new_group[1:] = link_sorted[1:] != link_sorted[:-1]
        group_start = np.maximum.accumulate(np.where(new_group, np.arange(n), 0))
        rank = np.arange(n) - group_start

        # replenish credits on links with waiting packets (burst-clamped)
        active_links = link_sorted[new_group]
        self.credit[active_links] = np.minimum(
            self.credit[active_links] + self.rate[active_links],
            2.0 * self.rate[active_links] + 1.0,
        )
        served_budget = np.floor(self.credit[link_sorted]).astype(np.int64)
        served_mask_sorted = rank < served_budget
        served = order[served_mask_sorted]
        waiting = order[~served_mask_sorted]

        # account service and stalls
        if served.size:
            np.add.at(self.flits, self._p_link[served], self._p_flits[served])
            served_counts = np.bincount(self._p_link[served], minlength=self.top.n_links)
            self.credit -= served_counts
        if waiting.size:
            np.add.at(self.stalls, self._p_link[waiting], 1.0)
            self._p_wait[waiting] += 1

        # a packet stuck at its first router-output queue gets its
        # adaptive decision re-run (with hops_taken=1, so AD1's schedule
        # has started ramping).  This must run before the served packets
        # advance: completion there compacts the state arrays and would
        # invalidate the waiting indices.
        patience = self.config.reroute_patience

        # packets stranded on a link that died mid-run can never be
        # served there: retransmit them from their source NIC (bounded
        # by max_reroute_attempts, then dropped).  This runs even with
        # reroute_patience=0 — survivability is not adaptivity.
        if waiting.size and self.faults is not None:
            on_dead = waiting[self.rate[self._p_link[waiting]] <= 0.0]
            if on_dead.size:
                due = on_dead[self._p_wait[on_dead] >= max(1, patience)]
                if due.size:
                    self._retry_dead(due)

        # a packet stuck at its first router-output queue gets its
        # adaptive decision re-run (with hops_taken=1, so AD1's schedule
        # has started ramping).  This must run before the served packets
        # advance: completion there compacts the state arrays and would
        # invalidate the waiting indices.
        if patience > 0 and waiting.size:
            stuck = waiting[
                (self._p_hop[waiting] == 1)
                & (self._p_wait[waiting] >= patience)
                & ~self._p_drop[waiting]
                & (self.rate[self._p_link[waiting]] > 0.0)
            ]
            if stuck.size:
                self._route(stuck, hops_taken=1, at_hop=1)
                self._p_wait[stuck] = 0
                self.reroutes += int(stuck.size)

        if served.size:
            self._p_wait[served] = 0
            self._advance_served(served)
        self._flush_drops()
        self.step += 1
        self._maybe_trace_step()

    def _apply_fault_state(self) -> None:
        """Recompute per-link rates after a timed fault/recovery edge."""
        assert self.faults is not None
        scale = self.faults.capacity_scale(self._base_top, at_time=self.now)
        new_rate = self._base_rate if scale is None else self._base_rate * scale
        newly_dead = (new_rate <= 0.0) & (self.rate > 0.0)
        recovered = (new_rate > 0.0) & (self.rate <= 0.0) & (self._base_rate > 0.0)
        self.rate = new_rate
        if newly_dead.any():
            self.credit[newly_dead] = 0.0
        # later add_message calls should route around the current state
        self.top = self._base_top.with_faults(self.faults, at_time=self.now)
        tel = resolve_telemetry(self.telemetry)
        if tel.trace.enabled:
            tel.event(
                "packet.fault",
                step=self.step,
                t=self.now,
                links_died=int(newly_dead.sum()),
                links_recovered=int(recovered.sum()),
            )

    def _retry_dead(self, pkts: np.ndarray) -> None:
        """Retransmit packets stranded on dead links; drop repeat offenders."""
        self._p_retry[pkts] += 1
        give_up = pkts[self._p_retry[pkts] > self.config.max_reroute_attempts]
        retry = pkts[self._p_retry[pkts] <= self.config.max_reroute_attempts]
        if give_up.size:
            self._p_drop[give_up] = True
        if retry.size == 0:
            return
        mids = self._p_msg[retry]
        for mid in np.unique(mids):
            mid = int(mid)
            sel = retry[mids == mid]
            rows = self._p_row[sel]
            routed = rows >= 0
            if routed.any():
                # un-attribute: the packet will be re-routed from scratch
                start = self._cand_msg_start[mid]
                prev_min = rows[routed] - start < self._n_min_cand
                self.messages[mid].min_packets -= int(prev_min.sum())
                self.messages[mid].nonmin_packets -= int((~prev_min).sum())
            inj = int(self.top.injection_link(self.messages[mid].spec.src))
            self._p_link[sel] = inj
        self._p_row[retry] = -1
        self._p_hop[retry] = 0
        self._p_wait[retry] = 0
        self._p_seq[retry] = np.arange(self._seq, self._seq + retry.size)
        self._seq += retry.size
        self.retries += int(retry.size)

    def _flush_drops(self) -> None:
        """Remove packets flagged for dropping and settle their messages."""
        if not self._p_drop.any():
            return
        drop = np.flatnonzero(self._p_drop)
        self.dropped += int(drop.size)
        for mid, cnt in zip(*np.unique(self._p_msg[drop], return_counts=True)):
            mid = int(mid)
            self.messages[mid].dropped_packets += int(cnt)
            self._msg_remaining[mid] -= int(cnt)
            if self._msg_remaining[mid] == 0:
                self.messages[mid].finish_step = self.step + 1
        tel = resolve_telemetry(self.telemetry)
        if tel.trace.enabled:
            tel.event("packet.drop", step=self.step, dropped=int(drop.size))
        keep = ~self._p_drop
        for name in _STATE_ARRAYS:
            setattr(self, name, getattr(self, name)[keep])

    def _maybe_trace_step(self) -> None:
        """Periodic queue-state event (``trace_every`` steps apart)."""
        every = self.config.trace_every
        if every <= 0 or self.step % every:
            return
        tel = resolve_telemetry(self.telemetry)
        if not tel.trace.enabled:
            return
        occ = self.occupancy()
        tel.event(
            "packet.step",
            step=self.step,
            active_packets=self.n_active,
            pending_messages=len(self._pending),
            queued_max=float(occ.max()) if occ.size else 0.0,
            busy_links=int((occ > 0).sum()),
            stall_ratio=self.stall_to_flit_ratio(),
        )

    def _advance_served(self, served: np.ndarray) -> None:
        top = self.top
        is_inj = top.link_class[self._p_link[served]] == int(LinkClass.INJECTION)

        # 1. packets leaving their injection link: route them now.  The
        # chosen row's first link (column 1) is where they queue next,
        # so they advance no further this step — otherwise the first
        # router-output queue would be skipped entirely and the hop-1
        # re-route window could never open.
        entering = served[is_inj]
        if entering.size:
            self._route(entering)
            # join the back of the new link's FIFO queue
            routed = entering[~self._p_drop[entering]]
            self._p_seq[routed] = np.arange(self._seq, self._seq + routed.size)
            self._seq += routed.size
            served = served[~is_inj]

        # 2. all other served packets advance one hop along their row
        hop = self._p_hop[served] + 1
        rows = self._p_row[served]
        assert (rows >= 0).all(), "served packet without a routed path"
        next_link = self._cand_links[rows, np.minimum(hop, self._cand_links.shape[1] - 1)]
        valid = (hop < self._cand_links.shape[1]) & (next_link >= 0)

        done = served[~valid]
        moving = served[valid]
        self._p_hop[moving] = hop[valid]
        self._p_link[moving] = next_link[valid]
        self._p_seq[moving] = np.arange(self._seq, self._seq + moving.size)
        self._seq += moving.size

        if done.size:
            self._complete(done)

        if done.size:
            keep = np.ones(self.n_active, dtype=bool)
            keep[done] = False
            for name in _STATE_ARRAYS:
                setattr(self, name, getattr(self, name)[keep])

    def _route(self, packets: np.ndarray, *, hops_taken: int = 0, at_hop: int = 1) -> None:
        """(Re-)run the adaptive decision for packets at the source router.

        ``at_hop`` is the path column the packets will occupy on the
        chosen row (1 right after injection; also 1 when a blocked
        packet is re-routed to a different output port of the same
        router).  ``hops_taken`` feeds AD1's per-hop shift schedule.
        """
        occ = self.occupancy()
        unit = self.config.occupancy_credit_unit
        dead = self.rate <= 0.0 if self.faults is not None else None
        mids = self._p_msg[packets]
        # score every candidate row of the affected messages
        for mid in np.unique(mids):
            start = self._cand_msg_start[mid]
            n_cand = self._n_min_cand + self.config.k_nonmin
            # a message's rows: k_min minimal then k_nonmin non-minimal;
            # skip the injection link (position 0) when scoring.
            rows = slice(start, start + n_cand)
            links = self._cand_links[rows, 1:]
            validm = self._cand_valid[rows, 1:]
            scores = np.where(validm, occ[np.where(validm, links, 0)], 0.0).sum(axis=1) / unit
            scores = scores + self.config.hop_bias_credits * validm.sum(axis=1)
            if dead is not None:
                # a row crossing a dead link can never drain: rule it out
                row_dead = (validm & dead[np.where(validm, links, 0)]).any(axis=1)
                if row_dead.all():
                    # no surviving candidate at all — drop these packets
                    self._p_drop[packets[mids == mid]] = True
                    continue
                scores = np.where(row_dead, np.inf, scores)
            smin = scores[: self._n_min_cand]
            snon = scores[self._n_min_cand:]
            best_min = int(np.argmin(smin))
            best_non = int(np.argmin(snon)) + self._n_min_cand
            mode = self._msg_mode[mid]
            if not np.isfinite(smin.min()):
                take_min = False
            elif not np.isfinite(snon.min()):
                take_min = True
            else:
                take_min = bool(
                    minimal_preferred(mode, smin.min(), snon.min(), hops_taken)
                )
            row = start + (best_min if take_min else best_non)
            sel = packets[mids == mid]
            rerouted = self._p_row[sel] >= 0
            # un-count packets that had already been attributed to a side
            if rerouted.any():
                prev_min = self._p_row[sel[rerouted]] - start < self._n_min_cand
                self.messages[mid].min_packets -= int(prev_min.sum())
                self.messages[mid].nonmin_packets -= int((~prev_min).sum())
            self._p_row[sel] = row
            self._p_hop[sel] = at_hop
            self._p_link[sel] = self._cand_links[row, at_hop]
            if take_min:
                self.messages[mid].min_packets += sel.size
            else:
                self.messages[mid].nonmin_packets += sel.size

    def _complete(self, done: np.ndarray) -> None:
        lat = (self.step - self._p_birth[done] + 1).astype(np.float64) * self.config.step_time
        self._pkt_latencies.append(lat)
        for mid, cnt in zip(*np.unique(self._p_msg[done], return_counts=True)):
            self._msg_remaining[mid] -= int(cnt)
            if self._msg_remaining[mid] == 0:
                self.messages[mid].finish_step = self.step + 1

    # ------------------------------------------------------------------
    def run(self, *, max_steps: int | None = None) -> int:
        """Step until idle (or the step limit); returns steps executed."""
        limit = max_steps if max_steps is not None else self.config.max_steps
        start = self.step
        tel = resolve_telemetry(self.telemetry)
        # None unless a GuardPolicy is active; the unguarded loop pays
        # one None-check per step and nothing else
        guard = active_guard()
        t0 = time.perf_counter() if tel.enabled else 0.0
        while not self.idle:
            if self.step - start >= limit:
                raise RuntimeError(
                    f"packet simulation did not drain within {limit} steps "
                    f"({self.n_active} packets active)"
                )
            self.advance()
            if guard is not None:
                guard.tick_steps(1, where="packet.run")
                if guard.check_invariants and (self.step - start) % 64 == 0:
                    check_packet_state(guard, self)
        steps = self.step - start
        if guard is not None and guard.check_invariants and steps:
            check_packet_state(guard, self)
        if tel.enabled:
            wall = time.perf_counter() - t0
            m = tel.metrics
            if m.enabled:
                m.counter("packet_steps_total", "packet-sim steps executed").inc(steps)
                m.counter(
                    "packet_messages_total", "messages drained by packet-sim runs"
                ).inc(sum(1 for s in self.messages if s.done))
                m.histogram("packet_run_seconds", "wall time per packet-sim run").observe(
                    wall
                )
                if self.dropped:
                    m.counter(
                        "packet_drops_total", "packets dropped on dead links"
                    ).inc(self.dropped)
            tel.event(
                "packet.run",
                steps=steps,
                sim_time_s=self.now,
                messages=len(self.messages),
                messages_done=sum(1 for s in self.messages if s.done),
                flits=float(self.flits.sum()),
                stalls=float(self.stalls.sum()),
                stall_ratio=self.stall_to_flit_ratio(),
                reroutes=self.reroutes,
                retries=self.retries,
                dropped=self.dropped,
                wall_ms=wall * 1e3,
            )
        return steps

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.step * self.config.step_time

    def packet_latencies(self) -> np.ndarray:
        """Latencies (seconds) of all completed packets."""
        if not self._pkt_latencies:
            return np.zeros(0)
        return np.concatenate(self._pkt_latencies)

    def stall_to_flit_ratio(self) -> float:
        """Aggregate network stalls-to-flits ratio observed so far."""
        cls = self.top.link_class
        net = cls <= int(LinkClass.RANK3)
        f = self.flits[net].sum()
        return float(self.stalls[net].sum() / f) if f > 0 else 0.0
