"""Chaos soaks: whole campaigns under a failure schedule.

These run real (tiny) campaigns in forked children with failpoints
active, restart on injected crashes, and assert the standing
invariants — the same harness `repro chaos` and the CI chaos leg use.
"""

import pytest

from repro.apps import MILC
from repro.chaos import ChaosSpecError, deactivate
from repro.chaos.runner import run_soak, verify_replay
from repro.core.biases import AD0, AD3
from repro.core.experiment import CampaignConfig
from repro.topology.systems import mini

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.network.fluid.NonConvergenceWarning"
)


@pytest.fixture(autouse=True)
def _no_leftover_schedule():
    deactivate()
    yield
    deactivate()


@pytest.fixture(scope="module")
def top():
    return mini()


def _cfg(**kw):
    kw.setdefault("samples", 2)
    kw.setdefault("seed", 11)
    return CampaignConfig(
        app=MILC(), n_nodes=32, modes=(AD0, AD3), scenario_pool=4, **kw
    )


def test_store_heavy_soak_survives_crashes_and_enospc(top, tmp_path):
    report = run_soak(
        top,
        _cfg(),
        spec="checkpoint.append:crash:at=3; store.commit.pre_rename:enospc:p=0.3",
        seed=2021,
        workdir=tmp_path,
    )
    assert report.ok, report.format()
    assert report.crashes >= 1  # the at=3 crash definitely fired
    assert report.attempts == report.crashes + report.io_failures + 1
    # the headline invariant: survivor bytes == clean serial bytes
    names = [name for name, _, _ in report.invariants]
    assert "checkpoint byte-identical to clean serial" in names


def test_soak_replays_identically_from_seed_and_spec(top, tmp_path):
    first, second, same = verify_replay(
        top,
        _cfg(samples=1),
        spec="checkpoint.append:crash:at=2; store.get.read:eio:p=0.5",
        seed=7,
        workdir=tmp_path,
    )
    assert first.ok, first.format()
    assert second.ok, second.format()
    assert same, "two soaks from the same (seed, spec) diverged"
    assert first.fired == second.fired


def test_queue_soak_holds_queue_invariants(top, tmp_path):
    report = run_soak(
        top,
        _cfg(samples=1),
        spec="queue.commit.post_tmp:torn:p=0.4; queue.commit.link:eio:p=0.2",
        seed=7,
        workdir=tmp_path,
        queue=True,
    )
    assert report.ok, report.format()
    names = [name for name, _, _ in report.invariants]
    assert "queue results complete and owned" in names


def test_total_store_outage_degrades_without_failing_the_campaign(top, tmp_path):
    """Every cache put fails (ENOSPC on each commit) — the campaign must
    still complete in one attempt: put loss degrades, never aborts."""
    report = run_soak(
        top,
        _cfg(samples=1),
        spec="store.commit.pre_rename:enospc",
        seed=3,
        workdir=tmp_path,
    )
    assert report.completed, report.format()
    assert report.attempts == 1
    assert report.io_failures == 0
    # checkpoint identical even though the cache captured nothing
    ckpt_ok = [held for name, held, _ in report.invariants if "byte-identical" in name]
    assert ckpt_ok == [True]


def test_soak_rejects_a_typo_before_running_anything(top, tmp_path):
    with pytest.raises(ChaosSpecError):
        run_soak(top, _cfg(), spec="store.comit.*:eio", seed=1, workdir=tmp_path)
    assert not (tmp_path / "reference.jsonl").exists()
