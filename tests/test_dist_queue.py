"""Unit tests for the shared-directory work queue (``repro.dist.queue``).

The queue's whole protocol is files + three atomic POSIX primitives, so
everything here runs against a real tmp directory; only the clock is
injected (lease expiry must be testable without sleeping).
"""

import json
import os

import pytest

from repro.dist.queue import (
    Lease,
    QueueTask,
    QueueUnavailable,
    WorkQueue,
    task_id,
)

FP = {"app": "milc", "seed": 11, "samples": 2}


class Clock:
    """An injectable wall clock."""

    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def make_queue(tmp_path, **kw):
    clock = Clock()
    kw.setdefault("ttl", 30.0)
    kw.setdefault("retry_budget", 3)
    q = WorkQueue(tmp_path / "q", now=clock, **kw)
    tasks = [
        QueueTask(tid=task_id(FP, i, m), index=2 * i + j, sample=i, mode=m)
        for i in range(2)
        for j, m in enumerate(("AD0", "AD3"))
    ]
    q.create({"fingerprint": FP}, tasks)
    return q, tasks, clock


class TestTaskIdentity:
    def test_content_addressed_and_stable(self):
        a = task_id(FP, 0, "AD0")
        assert a == task_id(FP, 0, "AD0")
        assert len(a) == 16
        # any coordinate change changes the id
        assert len({a, task_id(FP, 1, "AD0"), task_id(FP, 0, "AD3"),
                    task_id({**FP, "seed": 12}, 0, "AD0")}) == 4

    def test_key_order_is_canonical(self):
        assert task_id({"a": 1, "b": 2}, 0, "m") == task_id({"b": 2, "a": 1}, 0, "m")

    def test_queue_task_round_trip(self):
        t = QueueTask(tid="abc", index=3, sample=1, mode="AD3")
        assert QueueTask.from_dict(json.loads(json.dumps(t.to_dict()))) == t


class TestManifest:
    def test_absent_until_created(self, tmp_path):
        q = WorkQueue(tmp_path / "empty")
        assert q.load_manifest() is None

    def test_round_trip(self, tmp_path):
        q, tasks, _ = make_queue(tmp_path)
        m = q.load_manifest()
        assert m["fingerprint"] == FP
        assert m["ttl"] == 30.0 and m["retry_budget"] == 3
        assert q.manifest_tasks(m) == tasks

    def test_foreign_manifest_rejected(self, tmp_path):
        q, _, _ = make_queue(tmp_path)
        q.manifest_path.write_text(json.dumps({"kind": "other", "version": 9}))
        with pytest.raises(ValueError, match="not a version"):
            q.load_manifest()

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            WorkQueue(tmp_path, ttl=0.0)
        with pytest.raises(ValueError):
            WorkQueue(tmp_path, retry_budget=0)


class TestClaiming:
    def test_fresh_claim_is_exclusive(self, tmp_path):
        q, tasks, _ = make_queue(tmp_path)
        lease = q.try_claim(tasks[0].tid, "w1")
        assert isinstance(lease, Lease)
        assert lease.attempt == 1 and not lease.reclaimed
        # a second claimer loses while the lease is live
        assert q.try_claim(tasks[0].tid, "w2") is None

    def test_release_reopens_the_task(self, tmp_path):
        q, tasks, _ = make_queue(tmp_path)
        lease = q.try_claim(tasks[0].tid, "w1")
        q.release(lease)
        second = q.try_claim(tasks[0].tid, "w2")
        assert second is not None
        assert second.attempt == 2  # a re-claim still burns budget

    def test_release_requires_ownership(self, tmp_path):
        q, tasks, _ = make_queue(tmp_path)
        lease = q.try_claim(tasks[0].tid, "w1")
        stranger = Lease(
            tid=lease.tid, owner="w2", token="not-the-token",
            attempt=1, claimed_at=0.0, expires_at=1e12,
        )
        q.release(stranger)  # must be a no-op
        assert q.try_claim(tasks[0].tid, "w2") is None

    def test_expired_lease_is_reclaimed(self, tmp_path):
        q, tasks, clock = make_queue(tmp_path)
        first = q.try_claim(tasks[0].tid, "w1")
        clock.advance(31.0)
        second = q.try_claim(tasks[0].tid, "w2")
        assert second is not None
        assert second.owner == "w2"
        assert second.reclaimed and second.attempt == 2
        # only one reclaimer can win: the next claim sees a live lease
        assert q.try_claim(tasks[0].tid, "w3") is None
        # the victim's renewal discovers the theft
        assert q.renew(first) is False
        assert first.lost

    def test_reclaim_records_the_displaced_owner(self, tmp_path):
        """The attempts file remembers who lost each reclaim, so retry
        attribution never depends on a racy lease scan."""
        q, tasks, clock = make_queue(tmp_path)
        tid = tasks[0].tid
        assert q.last_victim(tid) == ""
        q.try_claim(tid, "w1")
        assert q.last_victim(tid) == ""  # a fresh claim displaces nobody
        clock.advance(31.0)
        q.try_claim(tid, "w2")
        assert q.last_victim(tid) == "w1"
        clock.advance(31.0)
        q.try_claim(tid, "w3")
        assert q.last_victim(tid) == "w2"
        # budget bookkeeping after exhaustion keeps the last victim
        clock.advance(31.0)
        assert q.try_claim(tid, "w4") is None
        assert q.last_victim(tid) == "w3"

    def test_renew_extends_expiry(self, tmp_path):
        q, tasks, clock = make_queue(tmp_path)
        lease = q.try_claim(tasks[0].tid, "w1")
        clock.advance(20.0)
        assert q.renew(lease) is True
        clock.advance(20.0)  # 40s after claim, but renewed at +20
        assert q.try_claim(tasks[0].tid, "w2") is None

    def test_result_blocks_claims(self, tmp_path):
        q, tasks, _ = make_queue(tmp_path)
        q.commit_result(tasks[0].tid, {"index": 0})
        assert q.try_claim(tasks[0].tid, "w1") is None

    def test_torn_live_lease_is_not_stolen(self, tmp_path):
        """A lease file mid-write parses as None; the O_EXCL gate must
        still refuse to double-claim underneath it."""
        q, tasks, _ = make_queue(tmp_path)
        (q.leases_dir / f"{tasks[0].tid}.lease").write_text("{half a jso")
        assert q.try_claim(tasks[0].tid, "w1") is None


class TestRetryBudget:
    def test_exhaustion_after_repeated_expiry(self, tmp_path):
        q, tasks, clock = make_queue(tmp_path)  # budget 3
        tid = tasks[0].tid
        for expected in (1, 2, 3):
            lease = q.try_claim(tid, f"w{expected}")
            assert lease is not None and lease.attempt == expected
            clock.advance(31.0)
        assert q.try_claim(tid, "w4") is None
        assert q.exhausted(tid)
        assert q.attempts_used(tid) >= q.retry_budget
        # other tasks are unaffected
        assert not q.exhausted(tasks[1].tid)

    def test_attempt_counter_is_monotone(self, tmp_path):
        q, tasks, clock = make_queue(tmp_path)
        tid = tasks[0].tid
        assert q.attempts_used(tid) == 0
        q.try_claim(tid, "w1")
        assert q.attempts_used(tid) == 1
        clock.advance(31.0)
        q.try_claim(tid, "w2")
        assert q.attempts_used(tid) == 2


class TestResults:
    def test_first_commit_wins(self, tmp_path):
        q, tasks, _ = make_queue(tmp_path)
        tid = tasks[0].tid
        assert q.commit_result(tid, {"index": 0, "worker": "w1"}) is True
        assert q.commit_result(tid, {"index": 0, "worker": "w2"}) is False
        assert q.read_result(tid)["worker"] == "w1"

    def test_read_absent_is_none(self, tmp_path):
        q, tasks, _ = make_queue(tmp_path)
        assert q.read_result(tasks[0].tid) is None
        assert not q.has_result(tasks[0].tid)

    def test_tmp_scratch_is_invisible(self, tmp_path):
        """Corrupt in-flight files (a SIGKILLed writer's debris) never
        surface as results or leases."""
        q, tasks, _ = make_queue(tmp_path)
        (q.tmp_dir / f".{tasks[0].tid}.999.deadbeef.json").write_text("{gar")
        assert q.read_result(tasks[0].tid) is None
        assert q.status(tasks).done == 0
        assert q.live_leases() == {}


class TestScans:
    def test_status_partitions_every_task(self, tmp_path):
        q, tasks, clock = make_queue(tmp_path)
        q.commit_result(tasks[0].tid, {"index": 0})     # done
        q.try_claim(tasks[1].tid, "w1")                  # claimed (live)
        old = q.try_claim(tasks[2].tid, "w2")            # will expire
        assert old is not None
        clock.advance(31.0)
        lease = q.try_claim(tasks[3].tid, "w3")          # re-claimed live
        assert lease is not None
        st = q.status(tasks)
        assert (st.total, st.done, st.claimed, st.expired, st.available) == (
            4, 1, 1, 2, 0,
        )
        assert st.pending == 3
        assert set(st.workers) == {"w1", "w2", "w3"}
        assert st.exhausted == []

    def test_status_reads_manifest_when_tasks_omitted(self, tmp_path):
        q, tasks, _ = make_queue(tmp_path)
        assert q.status().total == len(tasks)

    def test_lease_scans_split_on_expiry(self, tmp_path):
        q, tasks, clock = make_queue(tmp_path)
        q.try_claim(tasks[0].tid, "w1")
        clock.advance(31.0)
        q.try_claim(tasks[1].tid, "w2")
        assert set(q.live_leases()) == {tasks[1].tid}
        assert set(q.expired_leases()) == {tasks[0].tid}


class TestOutages:
    def test_missing_directory_raises_queue_unavailable(self, tmp_path):
        q = WorkQueue(tmp_path / "never-created")
        with pytest.raises(QueueUnavailable) as ei:
            q.try_claim("sometid", "w1")
        assert ei.value.errno == 2  # ENOENT travels with the wrapper

    def test_commit_into_dead_queue_raises(self, tmp_path):
        q, tasks, _ = make_queue(tmp_path)
        import shutil

        shutil.rmtree(q.root)
        with pytest.raises(QueueUnavailable):
            q.commit_result(tasks[0].tid, {"index": 0})

    def test_scans_survive_missing_subdirs(self, tmp_path):
        q = WorkQueue(tmp_path / "half")
        os.makedirs(q.root)
        assert q.live_leases() == {}
        assert q.status([]).total == 0
