"""Distributed-campaign observability surfaces.

The coordinator's ``dist.*`` events feed three read-only consumers:
``CampaignProgress`` (the live fold behind ``repro top``), the ``top``
renderer's queue/worker rows, and the post-hoc ``report`` digest.  All
three are pure functions of events, so these tests drive them with
synthetic streams and a tiny real queue — no campaigns are run.
"""

import json

import pytest

from repro.telemetry.report import format_summary, summarize_trace
from repro.telemetry.stream import CampaignProgress
from repro.telemetry.top import render_top


def _dist_events():
    """A plausible event stream from a 2-worker --queue campaign."""
    t = 100.0
    return [
        {"ev": "campaign.start", "ts": t, "app": "milc", "n_nodes": 32,
         "modes": ["AD0", "AD3"], "samples": 3, "jobs": 1,
         "queue": "/shared/q"},
        {"ev": "dist.worker", "ts": t + 1, "owner": "hostA:10", "worker": 0},
        {"ev": "dist.worker", "ts": t + 1, "owner": "hostB:20", "worker": 1},
        {"ev": "dist.queue", "ts": t + 2, "depth": 6, "merged": 0,
         "total": 6, "leases": 2, "workers": 2},
        {"ev": "campaign.sample", "ts": t + 3, "mode": "AD0", "sample": 0,
         "status": "ok", "worker": 0, "run_index": 0, "runtime_s": 1.0},
        {"ev": "dist.lease_reclaimed", "ts": t + 4, "tid": "aaaa",
         "run_index": 1, "attempt": 2, "victim": "hostB:20"},
        {"ev": "campaign.sample", "ts": t + 5, "mode": "AD3", "sample": 0,
         "status": "ok", "worker": 0, "run_index": 1, "runtime_s": 1.1},
        {"ev": "dist.task_stolen", "ts": t + 6, "tid": "bbbb",
         "run_index": 2, "owner": "hostA:10", "victim": "hostB:20"},
        {"ev": "dist.queue_unavailable", "ts": t + 7, "outages": 1},
        {"ev": "dist.task_exhausted", "ts": t + 8, "tid": "cccc",
         "run_index": 3, "attempts": 3},
        {"ev": "dist.queue", "ts": t + 9, "depth": 2, "merged": 4,
         "total": 6, "leases": 1, "workers": 2},
        {"ev": "dist.fallback", "ts": t + 10, "remaining": 2, "waited_s": 10.0},
    ]


class TestCampaignProgressDistFold:
    def test_snapshot_carries_queue_state(self):
        prog = CampaignProgress()
        for e in _dist_events():
            prog.feed(e)
        snap = prog.snapshot()
        assert snap["queue"] == "/shared/q"
        assert snap["queue_depth"] == 2
        assert snap["queue_leases"] == 1
        assert snap["dist_retries"] == 1
        assert snap["dist_steals"] == 1
        assert snap["dist_exhausted"] == 1
        assert snap["dist_outages"] == 1
        assert snap["dist_fallback"] is True

    def test_per_worker_states_and_done_counts(self):
        prog = CampaignProgress()
        for e in _dist_events():
            prog.feed(e)
        workers = prog.snapshot()["dist_workers"]
        assert set(workers) == {"hostA:10", "hostB:20"}
        # hostA committed both merged samples (worker id 0)
        assert workers["hostA:10"]["done"] == 2
        assert workers["hostA:10"]["state"] == "live"
        # hostB lost a lease, then had a task stolen — latest state wins
        assert workers["hostB:20"]["state"] == "stolen"
        assert workers["hostB:20"]["done"] == 0

    def test_non_queue_campaign_keeps_snapshot_shape(self):
        prog = CampaignProgress()
        prog.feed({"ev": "campaign.start", "ts": 1.0, "app": "milc",
                   "n_nodes": 32, "modes": ["AD0"], "samples": 1, "jobs": 2})
        snap = prog.snapshot()
        assert snap["queue"] is None
        assert snap["dist_workers"] == {}
        assert snap["dist_fallback"] is False


class TestTopRendering:
    def test_queue_line_and_worker_rows(self):
        prog = CampaignProgress()
        for e in _dist_events():
            prog.feed(e)
        frame = render_top(prog.snapshot(), now=112.0)
        assert "queue /shared/q" in frame
        assert "depth 2" in frame
        assert "retries 1" in frame
        assert "steals 1" in frame
        assert "exhausted 1" in frame
        assert "outages 1" in frame
        assert "LOCAL FALLBACK" in frame
        assert "hostA:10" in frame and "[live]" in frame
        assert "hostB:20" in frame and "[STOLEN]" in frame

    def test_lost_lease_rendered_loudly(self):
        prog = CampaignProgress()
        for e in _dist_events():
            if e["ev"] == "dist.task_stolen":
                continue  # leave hostB in the lost-lease state
            prog.feed(e)
        frame = render_top(prog.snapshot(), now=112.0)
        assert "[LOST LEASE]" in frame

    def test_plain_campaign_has_no_queue_line(self):
        prog = CampaignProgress()
        prog.feed({"ev": "campaign.start", "ts": 1.0, "app": "milc",
                   "n_nodes": 32, "modes": ["AD0"], "samples": 1, "jobs": 2})
        assert "queue" not in render_top(prog.snapshot(), now=2.0)


class TestReportDigest:
    def test_dist_section_summarizes_retries_and_steals(self):
        s = summarize_trace(_dist_events())
        assert s.dist.active
        assert s.dist.workers == ["hostA:10", "hostB:20"]
        assert s.dist.retries_by_run == {1: 1}
        assert s.dist.steals_by_run == {2: 1}
        assert s.dist.exhausted == 1
        assert s.dist.outages == 1
        assert s.dist.fallback is True
        text = format_summary(s)
        assert "distributed queue: 2 worker(s)" in text
        assert "retries 1" in text and "steals 1" in text
        assert "run 1: retried x1" in text
        assert "run 2: stolen x1" in text
        assert "LOCAL FALLBACK" in text

    def test_serial_trace_has_no_dist_section(self):
        s = summarize_trace([
            {"ev": "campaign.sample", "ts": 1.0, "mode": "AD0", "sample": 0,
             "runtime_s": 1.0},
        ])
        assert not s.dist.active
        assert "distributed queue" not in format_summary(s)

    def test_report_cli_renders_dist_trace(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "dist.jsonl"
        with trace.open("w") as fh:
            for e in _dist_events():
                fh.write(json.dumps(e) + "\n")
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "distributed queue" in out


class TestQueueStatusCli:
    @pytest.fixture
    def queue_dir(self, tmp_path):
        from repro.dist.queue import QueueTask, WorkQueue, task_id

        q = WorkQueue(tmp_path / "q", ttl=300.0)
        fp = {"app": "milc", "system": "mini", "samples": 2, "seed": 11}
        tasks = [
            QueueTask(tid=task_id(fp, i, m), index=2 * i + j, sample=i, mode=m)
            for i in range(2)
            for j, m in enumerate(("AD0", "AD3"))
        ]
        q.create({"fingerprint": fp}, tasks)
        q.commit_result(tasks[0].tid, {"index": 0})
        q.try_claim(tasks[1].tid, "hostA:1")
        return q.root

    def test_scan_output(self, queue_dir, capsys):
        from repro.cli import main

        assert main(["queue-status", "--queue", str(queue_dir)]) == 0
        out = capsys.readouterr().out
        assert "milc" in out
        assert "4 total  1 done  1 claimed  2 available" in out
        assert "worker hostA:1: 1 lease(s) [live]" in out

    def test_no_manifest_yet(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["queue-status", "--queue", str(tmp_path / "empty")]) == 0
        assert "no manifest yet" in capsys.readouterr().out


class TestQueueStatusHeartbeats:
    """Worker guard heartbeats surfaced into ``repro queue-status``."""

    @pytest.fixture
    def queue(self, tmp_path):
        from repro.dist.queue import QueueTask, WorkQueue, task_id

        q = WorkQueue(tmp_path / "q", ttl=300.0)
        fp = {"app": "milc", "system": "mini", "samples": 1, "seed": 11}
        tasks = [QueueTask(tid=task_id(fp, 0, "AD0"), index=0, sample=0, mode="AD0")]
        q.create({"fingerprint": fp}, tasks)
        return q

    def test_create_makes_heartbeat_dir(self, queue):
        assert queue.heartbeats_dir.is_dir()

    def test_leased_worker_shows_heartbeat_age(self, queue, capsys):
        from repro.cli import main
        from repro.guard import WorkerHeartbeat

        tid = next(iter(queue.manifest_tasks(queue.load_manifest()))).tid
        queue.try_claim(tid, "hostA:1")
        hb = WorkerHeartbeat(queue.heartbeats_dir, name="hostA:1")
        hb.start_task()
        assert main(["queue-status", "--queue", str(queue.root)]) == 0
        out = capsys.readouterr().out
        assert "worker hostA:1: 1 lease(s) [live]  heartbeat" in out
        assert "no heartbeat" not in out

    def test_worker_without_lease_is_listed_from_heartbeat_alone(
        self, queue, capsys
    ):
        """A speculating (or between-tasks) worker holds no lease but is
        alive — the heartbeat file is the only trace of it."""
        from repro.cli import main
        from repro.guard import WorkerHeartbeat

        WorkerHeartbeat(queue.heartbeats_dir, name="hostB:2").start_task()
        assert main(["queue-status", "--queue", str(queue.root)]) == 0
        out = capsys.readouterr().out
        assert "worker hostB:2: 0 lease(s) [busy (no lease)]  heartbeat" in out

    def test_leased_worker_without_heartbeat_flagged(self, queue, capsys):
        from repro.cli import main

        tid = next(iter(queue.manifest_tasks(queue.load_manifest()))).tid
        queue.try_claim(tid, "hostC:3")
        assert main(["queue-status", "--queue", str(queue.root)]) == 0
        assert "worker hostC:3: 1 lease(s) [live]  no heartbeat" in (
            capsys.readouterr().out
        )

    def test_dist_worker_writes_owner_named_heartbeat(self, tmp_path):
        """The real worker loop leaves an ``<owner>.hb`` file while a
        run executes (and removes it when the task ends)."""
        from repro.apps import MILC
        from repro.core.biases import AD0
        from repro.core.experiment import CampaignConfig
        from repro.dist import DistWorker, WorkQueue
        from repro.dist.manifest import build_tasks, campaign_to_manifest
        from repro.telemetry import NULL_TELEMETRY
        from repro.topology.systems import mini

        top = mini()
        cfg = CampaignConfig(
            app=MILC(), n_nodes=32, modes=(AD0,), samples=1, seed=11,
            scenario_pool=2,
        )
        q = WorkQueue(tmp_path / "q", ttl=300.0)
        q.create(
            campaign_to_manifest(top, cfg, NULL_TELEMETRY), build_tasks(top, cfg)
        )
        worker = DistWorker(q, owner="testhost:99", max_tasks=1, poll=0.01)
        stats = worker.run()
        assert stats.executed == 1
        # the worker registered an owner-named heartbeat in the queue's
        # shared directory and removed the file when the task ended
        assert worker._hb is not None
        assert worker._hb.path == q.heartbeats_dir / "testhost:99.hb"
        assert not list(q.heartbeats_dir.glob("*.hb"))
        worker._hb.start_task()
        assert (q.heartbeats_dir / "testhost:99.hb").exists()
