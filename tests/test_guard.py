"""Run guardrails: budgets, invariant monitors, watchdog, diagnostics.

The contracts under test:

* an inactive :class:`GuardPolicy` is a strict no-op — guarded campaign
  output is byte-identical to an unguarded one;
* budgets (deadline / step / iteration) terminate a run cooperatively
  with a typed :class:`RunTimeoutError`, which campaigns convert into
  error-status records (never retried, never aborting the sweep);
* invariant monitors catch sabotaged engine state under the policy's
  warn/record/raise disposition and leave healthy runs untouched;
* a deliberately hung pool worker is detected by heartbeat staleness,
  SIGKILL-ed, and isolated, while every surviving run stays
  byte-identical to the guard-disabled serial campaign;
* a guard-terminated run leaves a diagnostics bundle with enough state
  (fingerprint, RNG key, trailing events) to replay it.
"""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

import repro.core.checkpoint as ckpt_mod
import repro.core.experiment as exp
import repro.network.fluid as fluid_mod
from repro.apps import MILC
from repro.core.biases import AD0, AD3
from repro.core.checkpoint import record_to_dict
from repro.core.experiment import CampaignConfig, run_campaign
from repro.faults import FaultSchedule, FaultSpecError
from repro.guard import (
    GuardPolicy,
    GuardWarning,
    InvariantViolation,
    NO_GUARD,
    RingTraceWriter,
    RunGuard,
    RunTimeoutError,
    Watchdog,
    WorkerHeartbeat,
    active_guard,
    current_guard,
    load_bundle,
    use_guard,
    write_bundle,
)
from repro.network.fluid import FlowSet, solve_fluid
from repro.network.packet_sim import InjectionSpec, PacketSimulator
from repro.parallel import run_campaign_parallel
from repro.telemetry import MemoryTraceWriter, MetricsRegistry, Telemetry
from repro.telemetry.report import order_events
from repro.topology.systems import toy
from repro.util import derive_rng

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.network.fluid.NonConvergenceWarning"
)


@pytest.fixture(scope="module")
def top():
    return toy()


def _cfg(**kw):
    kw.setdefault("samples", 2)
    kw.setdefault("background", "isolated")
    return CampaignConfig(app=MILC(), n_nodes=8, modes=(AD0, AD3), seed=7, **kw)


def _dicts(records):
    return [json.dumps(record_to_dict(r), sort_keys=True) for r in records]


# ---------------------------------------------------------------------------
# policy
# ---------------------------------------------------------------------------
class TestGuardPolicy:
    def test_default_is_inactive(self):
        assert not NO_GUARD.active
        assert not bool(GuardPolicy())
        assert not GuardPolicy().check_invariants

    @pytest.mark.parametrize(
        "kw",
        [
            {"deadline": 1.0},
            {"step_budget": 10},
            {"iteration_budget": 1},
            {"invariants": "record"},
            {"hang_timeout": 2.0},
            {"bundle_dir": "/tmp/x"},
        ],
    )
    def test_any_field_activates(self, kw):
        assert GuardPolicy(**kw).active

    @pytest.mark.parametrize(
        "kw",
        [
            {"deadline": 0.0},
            {"deadline": -1.0},
            {"step_budget": 0},
            {"iteration_budget": -3},
            {"hang_timeout": 0.0},
            {"invariants": "loud"},
            {"bundle_events": 0},
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            GuardPolicy(**kw)

    def test_from_env(self):
        assert not GuardPolicy.from_env({})
        assert not GuardPolicy.from_env({"REPRO_GUARD": "off"})
        assert GuardPolicy.from_env({"REPRO_GUARD": "strict"}).invariants == "raise"
        assert GuardPolicy.from_env({"REPRO_GUARD": "warn"}).invariants == "warn"
        with pytest.raises(ValueError, match="unknown REPRO_GUARD"):
            GuardPolicy.from_env({"REPRO_GUARD": "stric"})

    def test_env_guard_ambient(self, monkeypatch):
        monkeypatch.delenv("REPRO_GUARD", raising=False)
        assert active_guard() is None
        monkeypatch.setenv("REPRO_GUARD", "record")
        g = active_guard()
        assert g is not None and g.check_invariants
        monkeypatch.setenv("REPRO_GUARD", "off")
        assert active_guard() is None


# ---------------------------------------------------------------------------
# RunGuard budgets and dispositions
# ---------------------------------------------------------------------------
class TestRunGuard:
    def test_step_budget_trips(self):
        g = RunGuard(GuardPolicy(step_budget=3))
        for _ in range(3):
            g.tick_steps()
        with pytest.raises(RunTimeoutError, match="step budget") as ei:
            g.tick_steps()
        assert ei.value.kind == "step_budget"
        assert ei.value.spent == 4 and ei.value.limit == 3

    def test_iteration_budget_trips(self):
        g = RunGuard(GuardPolicy(iteration_budget=2))
        g.tick_iterations(2)
        with pytest.raises(RunTimeoutError, match="iteration budget"):
            g.tick_iterations()

    def test_deadline_uses_injected_clock(self):
        now = [100.0]
        g = RunGuard(GuardPolicy(deadline=5.0), clock=lambda: now[0])
        g.tick_steps()  # within budget
        now[0] = 105.5
        with pytest.raises(RunTimeoutError, match="deadline") as ei:
            g.tick_steps()
        assert ei.value.kind == "deadline"
        assert ei.value.spent == pytest.approx(5.5)

    def test_timeout_emits_guard_event(self):
        tel = Telemetry(trace=MemoryTraceWriter())
        g = RunGuard(GuardPolicy(step_budget=1), telemetry=tel, label="x-AD0-s0")
        g.tick_steps()
        with pytest.raises(RunTimeoutError):
            g.tick_steps()
        evs = [e for e in tel.trace.events if e["ev"] == "guard.timeout"]
        assert len(evs) == 1
        assert evs[0]["label"] == "x-AD0-s0" and evs[0]["kind"] == "step_budget"

    def test_violation_dispositions(self):
        recorded = RunGuard(GuardPolicy(invariants="record"))
        recorded.violation("fluid.split_range", "min -0.1", min=-0.1)
        assert recorded.violations == [
            {"invariant": "fluid.split_range", "detail": "min -0.1", "min": -0.1}
        ]

        warning = RunGuard(GuardPolicy(invariants="warn"))
        with pytest.warns(GuardWarning, match="fluid.split_range"):
            warning.violation("fluid.split_range", "min -0.1")

        raising = RunGuard(GuardPolicy(invariants="raise"))
        with pytest.raises(InvariantViolation, match="fluid.split_range"):
            raising.violation("fluid.split_range", "min -0.1")

    def test_violation_counts_metric(self):
        tel = Telemetry(trace=MemoryTraceWriter(), metrics=MetricsRegistry())
        g = RunGuard(GuardPolicy(invariants="record"), telemetry=tel)
        g.violation("packet.nonnegative_credit", "credit -1")
        assert tel.metrics.counter("guard_violations_total").value == 1
        assert any(e["ev"] == "guard.violation" for e in tel.trace.events)

    def test_use_guard_none_does_not_mask(self):
        outer = RunGuard(GuardPolicy(step_budget=1))
        with use_guard(outer):
            with use_guard(None):
                assert current_guard() is outer
        assert current_guard() is None


# ---------------------------------------------------------------------------
# engine integration
# ---------------------------------------------------------------------------
def _flows(top):
    n = top.n_nodes
    return FlowSet(
        src=np.arange(0, n // 2),
        dst=np.arange(n // 2, n),
        nbytes=np.full(n // 2, 1e6),
        cls=np.zeros(n // 2, dtype=np.int64),
    )


class TestEngineBudgets:
    def test_fluid_iteration_budget(self, top):
        with use_guard(RunGuard(GuardPolicy(iteration_budget=2))):
            with pytest.raises(RunTimeoutError, match="fluid.solve"):
                solve_fluid(top, _flows(top), [AD0], rng=derive_rng(0, "g"))

    def test_packet_step_budget(self, top):
        sim = PacketSimulator(top, rng=derive_rng(0, "g"))
        sim.add_message(
            InjectionSpec(src=0, dst=top.n_nodes - 1, nbytes=64 * 1024, mode=AD3)
        )
        with use_guard(RunGuard(GuardPolicy(step_budget=5))):
            with pytest.raises(RunTimeoutError, match="packet.run"):
                sim.run()

    def test_healthy_engines_clean_under_strict(self, top):
        g = RunGuard(GuardPolicy(invariants="raise"))
        with use_guard(g):
            solve_fluid(top, _flows(top), [AD0, AD3], rng=derive_rng(0, "g"))
            sim = PacketSimulator(top, rng=derive_rng(1, "g"))
            sim.add_message(
                InjectionSpec(src=0, dst=top.n_nodes - 1, nbytes=16 * 1024, mode=AD0)
            )
            sim.run()
        assert g.violations == []

    def test_divergent_fluid_caught(self, top, monkeypatch):
        real = fluid_mod.split_fraction

        def poisoned(mode, smin, snon, pp):
            return np.full_like(real(mode, smin, snon, pp), np.nan)

        monkeypatch.setattr(fluid_mod, "split_fraction", poisoned)
        with use_guard(RunGuard(GuardPolicy(invariants="raise"))):
            with pytest.raises(InvariantViolation, match="fluid.finite_split"):
                solve_fluid(top, _flows(top), [AD0], rng=derive_rng(0, "g"))

    def test_sabotaged_packet_credit_caught(self, top):
        sim = PacketSimulator(top, rng=derive_rng(0, "g"))
        sim.credit[0] = -1.0
        g = RunGuard(GuardPolicy(invariants="record"))
        from repro.guard.invariants import check_packet_state

        check_packet_state(g, sim)
        assert any(
            v["invariant"] == "packet.nonnegative_credit" for v in g.violations
        )


# ---------------------------------------------------------------------------
# campaign integration
# ---------------------------------------------------------------------------
class TestGuardedCampaigns:
    def test_active_guard_is_noop_on_healthy_runs(self, top):
        cfg = _cfg()
        plain = run_campaign(top, cfg)
        import dataclasses

        guarded = run_campaign(
            top,
            dataclasses.replace(
                cfg, guard=GuardPolicy(deadline=300.0, invariants="record")
            ),
        )
        assert _dicts(guarded) == _dicts(plain)

    def test_divergent_run_isolated_with_bundle(self, top, tmp_path, monkeypatch):
        import dataclasses

        cfg = _cfg()
        plain = run_campaign(top, cfg)

        target = "MILC-AD3-s1"
        real = fluid_mod.split_fraction

        def poison_target(mode, smin, snon, pp):
            out = real(mode, smin, snon, pp)
            g = current_guard()
            if g is not None and g.label == target:
                return np.full_like(out, np.nan)
            return out

        monkeypatch.setattr(fluid_mod, "split_fraction", poison_target)
        tel = Telemetry(trace=MemoryTraceWriter())
        guarded = run_campaign(
            top,
            dataclasses.replace(
                cfg,
                guard=GuardPolicy(invariants="raise", bundle_dir=str(tmp_path)),
            ),
            telemetry=tel,
        )

        # the sabotaged run is isolated, the rest byte-identical
        assert [r.status for r in guarded] == ["ok", "ok", "ok", "error"]
        bad = guarded[3]
        assert bad.attempts == 1  # deterministic: never retried
        assert "fluid.finite_split" in bad.error
        keep = [0, 1, 2]
        assert [_dicts(guarded)[i] for i in keep] == [_dicts(plain)[i] for i in keep]

        evs = {e["ev"] for e in tel.trace.events}
        assert {"guard.violation", "guard.bundle"} <= evs

        bundle = load_bundle(tmp_path / f"{target}.bundle.json")
        assert bundle["reason"]["type"] == "InvariantViolation"
        assert bundle["rng_key"]["sample"] == 1 and bundle["rng_key"]["mode"] == "AD3"
        assert bundle["violations"][0]["invariant"] == "fluid.finite_split"
        assert bundle["policy"]["invariants"] == "raise"

    def test_deadline_terminates_run(self, top, monkeypatch):
        import dataclasses

        target = "MILC-AD0-s0"
        real = fluid_mod.split_fraction

        def slow_target(mode, smin, snon, pp):
            g = current_guard()
            if g is not None and g.label == target:
                time.sleep(0.15)
            return real(mode, smin, snon, pp)

        monkeypatch.setattr(fluid_mod, "split_fraction", slow_target)
        t0 = time.monotonic()
        records = run_campaign(
            top,
            dataclasses.replace(_cfg(samples=1), guard=GuardPolicy(deadline=0.1)),
        )
        assert time.monotonic() - t0 < 30.0
        assert records[0].status == "error"
        assert "deadline" in records[0].error
        assert records[1].status == "ok"

    def test_guard_excluded_from_fingerprint(self, top):
        import dataclasses

        cfg = _cfg()
        fp_plain = exp.campaign_fingerprint(top, cfg)
        fp_guarded = exp.campaign_fingerprint(
            top, dataclasses.replace(cfg, guard=GuardPolicy(deadline=60.0))
        )
        assert fp_plain == fp_guarded  # checkpoints stay interchangeable


# ---------------------------------------------------------------------------
# watchdog + heartbeat
# ---------------------------------------------------------------------------
class TestWatchdog:
    def _sleeper(self):
        return subprocess.Popen([sys.executable, "-c", "import time; time.sleep(60)"])

    def test_stale_heartbeat_kills_pool_pid(self, tmp_path):
        proc = self._sleeper()
        try:
            hb = tmp_path / f"{proc.pid}.hb"
            hb.touch()
            past = time.time() - 30.0
            os.utime(hb, (past, past))
            wd = Watchdog(tmp_path, timeout=1.0, pid_provider=lambda: {proc.pid})
            wd.scan()
            assert wd.kills and wd.kills[0][0] == proc.pid
            assert wd.kills[0][1] > 1.0
            assert proc.wait(timeout=10) == -signal.SIGKILL
            assert not hb.exists()
        finally:
            proc.kill()
            proc.wait()

    def test_never_kills_outside_the_pool(self, tmp_path):
        proc = self._sleeper()
        try:
            hb = tmp_path / f"{proc.pid}.hb"
            hb.touch()
            past = time.time() - 30.0
            os.utime(hb, (past, past))
            # pid not reported by the pool: stale file must be ignored
            wd = Watchdog(tmp_path, timeout=1.0, pid_provider=lambda: set())
            wd.scan()
            assert wd.kills == []
            assert proc.poll() is None
        finally:
            proc.kill()
            proc.wait()

    def test_fresh_heartbeat_survives(self, tmp_path):
        hb = WorkerHeartbeat(tmp_path)
        hb.start_task()
        wd = Watchdog(tmp_path, timeout=5.0, pid_provider=lambda: {os.getpid()})
        wd.scan()
        assert wd.kills == []
        hb.end_task()
        assert not hb.path.exists()

    def test_beat_is_throttled(self, tmp_path):
        hb = WorkerHeartbeat(tmp_path)
        hb.start_task()
        first = hb.path.stat().st_mtime_ns
        hb.beat()  # within min_interval: no utime
        assert hb.path.stat().st_mtime_ns == first
        hb._last = 0.0
        hb.beat()
        hb.end_task()


class TestHungWorker:
    def test_hung_worker_killed_and_isolated(self, top, monkeypatch):
        import dataclasses

        cfg = _cfg()
        plain = run_campaign(top, cfg)

        target = "MILC-AD0-s1"

        def hang_target(*a, **kw):
            g = current_guard()
            if g is not None and g.label == target:
                time.sleep(600)
            return exp_real(*a, **kw)

        exp_real = exp.run_app_once
        monkeypatch.setattr(exp, "run_app_once", hang_target)

        tel = Telemetry(trace=MemoryTraceWriter())
        guarded_cfg = dataclasses.replace(
            cfg, guard=GuardPolicy(hang_timeout=2.0)
        )
        t0 = time.monotonic()
        records = run_campaign_parallel(
            top, guarded_cfg, jobs=2, telemetry=tel, max_pool_retries=1
        )
        elapsed = time.monotonic() - t0
        assert elapsed < 120.0  # two watchdog rounds, not a 600 s hang

        by_key = {(r.sample_index, r.mode): r for r in records}
        bad = by_key[(1, "AD0")]
        assert bad.status == "error" and "worker died" in bad.error
        assert bad.attempts == 2

        evs = [e for e in tel.trace.events if e["ev"] == "guard.worker_hung"]
        assert len(evs) == 2  # one kill per retry round
        assert all(e["stale_s"] >= 1.0 for e in evs)
        assert any(
            e["ev"] == "guard.worker_lost" and e["label"] == target
            for e in tel.trace.events
        )

        # every surviving run byte-identical to the guard-disabled serial
        plain_by_key = {(r.sample_index, r.mode): r for r in plain}
        for key, rec in by_key.items():
            if key == (1, "AD0"):
                continue
            assert json.dumps(record_to_dict(rec), sort_keys=True) == json.dumps(
                record_to_dict(plain_by_key[key]), sort_keys=True
            )


# ---------------------------------------------------------------------------
# bundles
# ---------------------------------------------------------------------------
class TestBundles:
    def test_roundtrip(self, tmp_path):
        path = write_bundle(
            tmp_path,
            label="MILC-AD0-s0",
            reason={"type": "RunTimeoutError", "message": "deadline"},
            fingerprint={"app": "milc"},
            rng_key={"seed": 7, "sample": 0},
            events=[{"ev": "fluid.solve", "seq": 3}],
            violations=[{"invariant": "fluid.split_range"}],
        )
        assert path is not None and path.name == "MILC-AD0-s0.bundle.json"
        b = load_bundle(path)
        assert b["fingerprint"] == {"app": "milc"}
        assert b["events"][0]["ev"] == "fluid.solve"

    def test_unwritable_dir_swallowed(self):
        assert (
            write_bundle("/proc/definitely/not/writable", label="x", reason={})
            is None
        )

    def test_ring_writer_keeps_tail(self):
        ring = RingTraceWriter(maxlen=3)
        tel = Telemetry(trace=ring)
        for i in range(10):
            tel.event("tick", i=i)
        assert [e["i"] for e in ring.tail()] == [7, 8, 9]


# ---------------------------------------------------------------------------
# checkpoint tail repair
# ---------------------------------------------------------------------------
class TestCheckpointRepair:
    def _checkpointed(self, top, tmp_path, name="full.jsonl", **kw):
        path = tmp_path / name
        records = run_campaign(top, _cfg(**kw), checkpoint_path=str(path))
        return path, records

    def test_clean_file_untouched(self, top, tmp_path):
        path, _ = self._checkpointed(top, tmp_path)
        before = path.read_bytes()
        assert ckpt_mod.repair_tail(path) is False
        assert path.read_bytes() == before

    def test_torn_unterminated_line_truncated(self, top, tmp_path):
        path, _ = self._checkpointed(top, tmp_path)
        clean = path.read_bytes()
        with open(path, "ab") as f:
            f.write(b'{"app": "milc", "mode": "AD0", "runt')
        assert ckpt_mod.repair_tail(path) is True
        assert path.read_bytes() == clean

    def test_torn_terminated_garbage_line_truncated(self, top, tmp_path):
        path, _ = self._checkpointed(top, tmp_path)
        clean = path.read_bytes()
        with open(path, "ab") as f:
            f.write(b'{"app": "milc", "half\n')
        assert ckpt_mod.repair_tail(path) is True
        assert path.read_bytes() == clean

    def test_resume_after_torn_tail_matches_serial(self, top, tmp_path):
        cfg = _cfg()
        full = tmp_path / "full.jsonl"
        serial = run_campaign(top, cfg, checkpoint_path=str(full))
        # tear the last record in half, as a mid-append crash would
        part = tmp_path / "part.jsonl"
        lines = full.read_bytes().splitlines(keepends=True)
        part.write_bytes(b"".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])
        resumed = run_campaign(
            top, cfg, checkpoint_path=str(part), resume=True
        )
        assert _dicts(resumed) == _dicts(serial)
        assert part.read_bytes() == full.read_bytes()


# ---------------------------------------------------------------------------
# telemetry guards (metrics merge tags, order_events clamping)
# ---------------------------------------------------------------------------
class TestMergeGuards:
    def test_duplicate_tag_skipped_with_warning(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        worker.counter("runs_total").inc(3)
        parent.merge(worker, tag=5)
        with pytest.warns(RuntimeWarning, match="already merged"):
            parent.merge(worker, tag=5)
        assert parent.counter("runs_total").value == 3  # not double-counted
        parent.merge(worker, tag=6)
        assert parent.counter("runs_total").value == 6

    def test_merge_into_self_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="itself"):
            reg.merge(reg)

    def test_untagged_merge_unchanged(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        worker.counter("runs_total").inc()
        parent.merge(worker)
        parent.merge(worker)
        assert parent.counter("runs_total").value == 2


class TestOrderEventsGuards:
    def test_bad_keys_clamped_with_warning(self):
        events = [
            {"ev": "b", "run_index": float("nan"), "seq": 2},
            {"ev": "a", "run_index": "zero", "seq": -5},
            {"ev": "c", "run_index": 0, "seq": 1},
            {"ev": "d", "run_index": True, "seq": 0},
        ]
        with pytest.warns(RuntimeWarning, match="clamped"):
            out = order_events(events)
        # clamped events keep a stable order before every real run
        assert [e["ev"] for e in out] == ["a", "d", "b", "c"]

    def test_duplicate_worker_tags_warn(self):
        events = [
            {"ev": "x", "run_index": 2, "seq": 0, "worker": 0},
            {"ev": "y", "run_index": 2, "seq": 1, "worker": 1},
        ]
        with pytest.warns(RuntimeWarning, match="distinct workers"):
            order_events(events)

    def test_clean_events_no_warning(self, recwarn):
        events = [
            {"ev": "y", "run_index": 1, "seq": 0, "worker": 1},
            {"ev": "x", "run_index": 0, "seq": 0, "worker": 0},
        ]
        assert [e["ev"] for e in order_events(events)] == ["x", "y"]
        assert not [w for w in recwarn.list if w.category is RuntimeWarning]


# ---------------------------------------------------------------------------
# fault-spec parse errors
# ---------------------------------------------------------------------------
class TestFaultSpecErrors:
    def test_token_and_position_reported(self):
        text = "router:1; cable:0-1:x"
        with pytest.raises(FaultSpecError) as ei:
            FaultSchedule.parse(text)
        assert ei.value.token == "0-1:x"
        assert ei.value.position == text.index("0-1:x")
        assert "position" in str(ei.value)

    def test_bad_fraction_token(self):
        with pytest.raises(FaultSpecError) as ei:
            FaultSchedule.parse("rank3:lots")
        assert ei.value.token == "lots" and ei.value.position == 6

    def test_unknown_head_token(self):
        with pytest.raises(FaultSpecError) as ei:
            FaultSchedule.parse("rank3:0.05;routr:3")
        assert ei.value.token == "routr"
        assert ei.value.position == len("rank3:0.05;")

    def test_bad_window_token(self):
        with pytest.raises(FaultSpecError) as ei:
            FaultSchedule.parse("router:3@soon")
        assert ei.value.token == "soon"

    def test_is_a_value_error(self):
        with pytest.raises(ValueError):
            FaultSchedule.parse("link:abc")

    def test_cli_reports_position_and_exits_2(self, capsys):
        import repro.cli as cli

        rc = cli.main(
            ["compare", "--system", "toy", "--nodes", "8", "--samples", "1",
             "--modes", "AD0", "--faults", "rank3:abc"]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert "'abc'" in err and "position 6" in err
        assert "Traceback" not in err


# ---------------------------------------------------------------------------
# CLI guard flags
# ---------------------------------------------------------------------------
class TestCliGuardFlags:
    def _parse(self, *extra):
        import repro.cli as cli

        args = cli.build_parser().parse_args(["compare", *extra])
        return cli._guard_from_args(args)

    def test_no_flags_no_policy(self):
        assert self._parse() is None

    def test_flags_build_policy(self):
        policy = self._parse(
            "--deadline", "30", "--step-budget", "1000",
            "--guard", "strict", "--hang-timeout", "5", "--bundle-dir", "/tmp/b",
        )
        assert policy == GuardPolicy(
            deadline=30.0,
            step_budget=1000,
            invariants="raise",
            hang_timeout=5.0,
            bundle_dir="/tmp/b",
        )

    def test_guard_mode_alone(self):
        assert self._parse("--guard", "record").invariants == "record"

    def test_guarded_compare_runs_clean(self, capsys):
        import repro.cli as cli

        rc = cli.main(
            ["compare", "--system", "mini", "--nodes", "16", "--samples", "1",
             "--modes", "AD0,AD3", "--guard", "strict", "--deadline", "300"]
        )
        assert rc == 0
        assert "runs failed" not in capsys.readouterr().out
