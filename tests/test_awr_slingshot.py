"""Tests for the AWR runtime comparison and the Slingshot preset."""

import numpy as np
import pytest

from repro.apps import MILC
from repro.core.awr import AwrConfig, AwrRunResult, run_app_awr, run_app_static
from repro.core.biases import AD0, AD3
from repro.topology.systems import slingshot


class TestAwrConfig:
    def test_defaults_valid(self):
        cfg = AwrConfig()
        assert cfg.degrade_factor > cfg.recover_factor

    def test_validation(self):
        with pytest.raises(ValueError):
            AwrConfig(n_windows=0)
        with pytest.raises(ValueError):
            AwrConfig(degrade_factor=1.0, recover_factor=1.1)


@pytest.fixture(scope="module")
def awr_setup():
    from repro.scheduler.background import BackgroundModel
    from repro.scheduler.placement import production_placement
    from repro.core.experiment import mask_endpoint_background
    from repro.topology.systems import theta
    from repro.util import derive_rng

    top = theta()
    bm = BackgroundModel(top)
    sc = bm.build_scenario(derive_rng(5, "awr-test"), reserve_nodes=256)
    nodes = production_placement(top, 256, derive_rng(6, "awr-test"))
    rng_i = derive_rng(7, "awr-test")
    windows = [
        mask_endpoint_background(
            top,
            sc.at_intensity(float(np.clip(rng_i.lognormal(np.log(0.7), 0.6), 0.05, 1.3))),
            nodes,
        )
        for _ in range(6)
    ]
    return top, nodes, windows


class TestAwrRuntime:
    def test_result_structure(self, awr_setup):
        from repro.util import derive_rng

        top, nodes, windows = awr_setup
        cfg = AwrConfig(n_windows=6)
        res = run_app_awr(
            top, MILC(), nodes, background_windows=windows, rng=derive_rng(1, "a"), config=cfg
        )
        assert isinstance(res, AwrRunResult)
        assert res.runtime > 0
        assert len(res.window_modes) == 6
        assert len(res.window_latencies) == 6
        assert res.mode_changes >= 0

    def test_starts_at_ad0(self, awr_setup):
        from repro.util import derive_rng

        top, nodes, windows = awr_setup
        res = run_app_awr(
            top,
            MILC(),
            nodes,
            background_windows=windows,
            rng=derive_rng(1, "b"),
            config=AwrConfig(n_windows=6),
        )
        assert res.window_modes[0] == "AD0"

    def test_knl_overhead_strictly_slower(self, awr_setup):
        from repro.util import derive_rng

        top, nodes, windows = awr_setup
        fast = run_app_awr(
            top,
            MILC(),
            nodes,
            background_windows=windows,
            rng=derive_rng(1, "c"),
            config=AwrConfig(n_windows=6, core_slowdown=1.0),
        )
        knl = run_app_awr(
            top,
            MILC(),
            nodes,
            background_windows=windows,
            rng=derive_rng(1, "c"),
            config=AwrConfig(n_windows=6, core_slowdown=8.0),
        )
        assert knl.runtime > fast.runtime

    def test_static_ad3_beats_awr_for_milc(self, awr_setup):
        from repro.util import derive_rng

        top, nodes, windows = awr_setup
        cfg = AwrConfig(n_windows=6)
        awr = run_app_awr(
            top, MILC(), nodes, background_windows=windows, rng=derive_rng(1, "d"), config=cfg
        )
        static = run_app_static(
            top,
            MILC(),
            nodes,
            AD3,
            background_windows=windows,
            rng=derive_rng(1, "d"),
            config=cfg,
        )
        assert static < awr.runtime

    def test_static_baseline_mode_sensitivity(self, awr_setup):
        from repro.util import derive_rng

        top, nodes, windows = awr_setup
        cfg = AwrConfig(n_windows=6)
        t0 = run_app_static(
            top, MILC(), nodes, AD0, background_windows=windows, rng=derive_rng(1, "e"), config=cfg
        )
        t3 = run_app_static(
            top, MILC(), nodes, AD3, background_windows=windows, rng=derive_rng(1, "e"), config=cfg
        )
        assert t3 < t0


class TestSlingshot:
    def test_structure(self):
        top = slingshot()
        assert top.n_groups == 16
        assert top.routers_per_group == 32
        assert top.params.nodes_per_router == 16
        assert top.n_nodes == 16 * 32 * 16

    def test_single_level_groups(self):
        # Slingshot groups are all-to-all: no rank-2 tier
        top = slingshot()
        from repro.topology.dragonfly import LinkClass

        assert (top.link_class == int(LinkClass.RANK2)).sum() == 0

    def test_paths_work(self, rng):
        from repro.topology.paths import minimal_paths, valiant_paths

        top = slingshot()
        src = rng.integers(0, top.n_nodes, 100)
        dst = (src + 1 + rng.integers(0, top.n_nodes - 1, 100)) % top.n_nodes
        bm = minimal_paths(top, src, dst, k=2, rng=rng)
        bv = valiant_paths(top, src, dst, k=2, rng=rng)
        # flat groups: minimal inter-group is at most 3 router hops
        assert bm.router_hops.max() <= 3
        assert bv.router_hops.max() <= 5

    def test_faster_links_than_aries(self):
        top = slingshot()
        assert top.params.rank1_bw_bidir > 2 * 10.5e9

    def test_fluid_solver_runs(self, rng):
        from repro.core.biases import AD0
        from repro.network.fluid import FlowSet, solve_fluid

        top = slingshot()
        src = np.arange(64)
        dst = np.arange(1000, 1064)
        fl = FlowSet(src, dst, np.full(64, 1e6), np.zeros(64, dtype=np.int64))
        res = solve_fluid(top, fl, [AD0], rng=rng)
        assert res.phase_time > 0
