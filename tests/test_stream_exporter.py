"""Tests for the live-observability plumbing: bus, tail, progress, HTTP.

Everything here runs in-process against ephemeral ports and tmp files;
no test depends on wall-clock timing beyond generous poll loops.
"""

import json
import threading
import urllib.request

import pytest

from repro.telemetry import (
    BusTraceWriter,
    CampaignProgress,
    EventBus,
    MetricsExporter,
    MetricsRegistry,
    MultiTraceWriter,
    NULL_TRACE,
    OPENMETRICS_CONTENT_TYPE,
    TraceTail,
    scan_trace,
)
from repro.telemetry.top import (
    format_duration,
    heartbeat_ages,
    progress_bar,
    render_top,
    sparkline,
)


class TestEventBus:
    def test_fanout_and_unsubscribe(self):
        bus = EventBus()
        got_a, got_b = [], []
        unsub = bus.subscribe(got_a.append)
        bus.subscribe(got_b.append)
        bus.publish({"ev": "x"})
        unsub()
        bus.publish({"ev": "y"})
        assert [e["ev"] for e in got_a] == ["x"]
        assert [e["ev"] for e in got_b] == ["x", "y"]
        assert bus.published == 2

    def test_raising_subscriber_dropped_not_fatal(self):
        bus = EventBus()
        healthy = []

        def broken(ev):
            raise RuntimeError("observer bug")

        bus.subscribe(broken)
        bus.subscribe(healthy.append)
        bus.publish({"ev": "a"})  # must not raise
        bus.publish({"ev": "b"})
        assert [e["ev"] for e in healthy] == ["a", "b"]

    def test_bus_trace_writer_publishes_events(self):
        bus = EventBus()
        got = []
        bus.subscribe(got.append)
        w = BusTraceWriter(bus)
        w.emit("solve.start", run=3)
        assert got[0]["ev"] == "solve.start" and got[0]["run"] == 3

    def test_splices_with_null_trace(self):
        # the CLI wraps whatever trace exists; a disabled NULL_TRACE
        # member must not swallow the bus events
        bus = EventBus()
        got = []
        bus.subscribe(got.append)
        multi = MultiTraceWriter([NULL_TRACE, BusTraceWriter(bus)])
        multi.emit("tick")
        assert [e["ev"] for e in got] == ["tick"]

    def test_concurrent_publish(self):
        bus = EventBus()
        got = []
        lock = threading.Lock()

        def sub(ev):
            with lock:
                got.append(ev)

        bus.subscribe(sub)
        threads = [
            threading.Thread(
                target=lambda: [bus.publish({"ev": "t"}) for _ in range(100)]
            )
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(got) == 400 and bus.published == 400


class TestTraceTail:
    def test_incremental_poll(self, tmp_path):
        p = tmp_path / "t.jsonl"
        tail = TraceTail(p)
        assert tail.poll() == []  # missing file: not an error
        with p.open("w") as fh:
            fh.write('{"ev":"a"}\n')
            fh.flush()
            assert [e["ev"] for e in tail.poll()] == ["a"]
            fh.write('{"ev":"b"}\n{"ev":"c"}\n')
            fh.flush()
            assert [e["ev"] for e in tail.poll()] == ["b", "c"]
        assert tail.poll() == []

    def test_torn_line_buffered_until_complete(self, tmp_path):
        p = tmp_path / "t.jsonl"
        with p.open("w") as fh:
            fh.write('{"ev":"a"}\n{"ev":"b"')
            fh.flush()
            tail = TraceTail(p)
            assert [e["ev"] for e in tail.poll()] == ["a"]
            fh.write(',"n":1}\n')
            fh.flush()
            assert tail.poll() == [{"ev": "b", "n": 1}]
        assert tail.n_bad == 0

    def test_truncation_resets_reader(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text('{"ev":"a"}\n{"ev":"b"}\n')
        tail = TraceTail(p)
        tail.poll()
        p.write_text('{"ev":"fresh"}\n')  # rotated: shorter file
        assert [e["ev"] for e in tail.poll()] == ["fresh"]

    def test_garbage_counted_not_returned(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text('{"ev":"a"}\nnot json\n[1,2]\n{"ev":"b"}\n')
        tail = TraceTail(p)
        assert [e["ev"] for e in tail.poll()] == ["a", "b"]
        assert tail.n_bad == 2


class TestScanTrace:
    def test_clean_file(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text('{"ev":"a"}\n{"ev":"b"}\n')
        scan = scan_trace(p)
        assert len(scan.events) == 2
        assert scan.n_bad == 0 and not scan.truncated_tail

    def test_torn_tail_flagged(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text('{"ev":"a"}\n{"ev":"b"')
        scan = scan_trace(p)
        assert [e["ev"] for e in scan.events] == ["a"]
        assert scan.truncated_tail

    def test_empty_file(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text("")
        scan = scan_trace(p)
        assert scan.events == [] and not scan.truncated_tail


def _campaign_events():
    return [
        {
            "ev": "campaign.start",
            "ts": 100.0,
            "app": "MILC",
            "n_nodes": 32,
            "modes": ["AD0", "AD3"],
            "samples": 3,
            "resumed_runs": 1,
            "jobs": 2,
        },
        {"ev": "campaign.workers", "ts": 100.1, "jobs": 2, "heartbeat_dir": "/hb"},
        {
            "ev": "campaign.sample",
            "ts": 101.0,
            "worker": 0,
            "status": "ok",
            "attempts": 1,
            "wall_ms": 900.0,
        },
        {
            "ev": "campaign.sample",
            "ts": 102.0,
            "worker": 1,
            "status": "error",
            "attempts": 2,
            "wall_ms": 1900.0,
        },
        {"ev": "packet.run", "ts": 102.5, "stall_ratio": 0.25},
        {"ev": "guard.violation", "ts": 103.0, "kind": "counter_negative"},
    ]


class TestCampaignProgress:
    def test_folds_counts(self):
        prog = CampaignProgress()
        prog.feed_many(_campaign_events())
        snap = prog.snapshot()
        assert snap["app"] == "MILC"
        assert snap["total_runs"] == 6  # 3 samples x 2 modes
        assert snap["done_runs"] == 3  # 1 resumed + 2 fresh
        assert snap["failed_runs"] == 1
        assert snap["resumed_runs"] == 1
        assert snap["attempts"] == 3
        assert snap["running"] is True
        assert snap["guard_violations"] == 1
        assert snap["heartbeat_dir"] == "/hb"
        assert snap["workers_seen"] == {"0": 101.0, "1": 102.0}
        assert snap["health_ratios"] == [0.25]

    def test_eta_from_fresh_rate_only(self):
        prog = CampaignProgress()
        prog.feed_many(_campaign_events())
        # 2 fresh done over 3s elapsed, 3 remaining -> 4.5s
        assert prog.eta_seconds(now=103.0) == pytest.approx(4.5)

    def test_eta_none_before_fresh_completions_and_after_end(self):
        prog = CampaignProgress()
        assert prog.eta_seconds(now=1.0) is None
        prog.feed_many(_campaign_events())
        prog.feed({"ev": "campaign.end", "ts": 110.0})
        assert prog.eta_seconds(now=111.0) is None
        assert prog.snapshot()["running"] is False

    def test_order_insensitive_counts(self):
        evs = _campaign_events()
        a, b = CampaignProgress(), CampaignProgress()
        a.feed_many(evs)
        b.feed_many([evs[0]] + list(reversed(evs[1:])))
        sa, sb = a.snapshot(), b.snapshot()
        for key in ("done_runs", "failed_runs", "attempts", "guard_violations"):
            assert sa[key] == sb[key]


class TestMetricsExporter:
    def fetch(self, url):
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.status, resp.headers.get("Content-Type"), resp.read()

    def test_serves_metrics_health_runs(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("solves_total", "solver invocations").inc(3)
        prog = CampaignProgress()
        prog.feed_many(_campaign_events())
        with MetricsExporter(reg, progress=prog) as exp:
            code, ctype, body = self.fetch(exp.url + "/metrics")
            assert code == 200 and ctype == OPENMETRICS_CONTENT_TYPE
            text = body.decode()
            assert "solves_total 3" in text
            assert text.endswith("# EOF\n")

            code, _, body = self.fetch(exp.url + "/healthz")
            assert code == 200 and body == b"ok\n"

            code, ctype, body = self.fetch(exp.url + "/runs")
            assert code == 200 and ctype.startswith("application/json")
            snap = json.loads(body)
            assert snap["total_runs"] == 6 and snap["app"] == "MILC"

    def test_runs_null_without_progress(self):
        with MetricsExporter(MetricsRegistry(enabled=True)) as exp:
            _, _, body = self.fetch(exp.url + "/runs")
            assert json.loads(body) is None

    def test_unknown_path_404(self):
        with MetricsExporter(MetricsRegistry(enabled=True)) as exp:
            with pytest.raises(urllib.error.HTTPError) as ei:
                self.fetch(exp.url + "/nope")
            assert ei.value.code == 404

    def test_registry_provider_called_per_scrape(self):
        regs = [MetricsRegistry(enabled=True), MetricsRegistry(enabled=True)]
        regs[1].counter("late_total", "added after swap").inc()
        current = {"reg": regs[0]}
        with MetricsExporter(lambda: current["reg"]) as exp:
            _, _, body = self.fetch(exp.url + "/metrics")
            assert b"late_total" not in body
            current["reg"] = regs[1]
            _, _, body = self.fetch(exp.url + "/metrics")
            assert b"late_total 1" in body

    def test_close_idempotent(self):
        exp = MetricsExporter(MetricsRegistry(enabled=True))
        exp.close()
        exp.close()


class TestTopRendering:
    def test_sparkline_scales(self):
        assert sparkline([]) == ""
        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3 and line[-1] == "█"

    def test_progress_bar(self):
        assert progress_bar(0, 0) == "[" + "-" * 30 + "]"
        assert progress_bar(5, 10, width=10) == "[#####-----]"

    def test_format_duration(self):
        assert format_duration(None) == "--"
        assert format_duration(45) == "45s"
        assert format_duration(182) == "3m02s"
        assert format_duration(3900) == "1h05m"

    def test_heartbeat_ages(self, tmp_path):
        (tmp_path / "123.hb").write_text("")
        (tmp_path / "notes.txt").write_text("")
        ages = heartbeat_ages(str(tmp_path))
        assert list(ages) == ["123"] and ages["123"] >= 0.0
        assert heartbeat_ages(None) == {}
        assert heartbeat_ages(str(tmp_path / "missing")) == {}

    def test_render_full_frame(self):
        prog = CampaignProgress()
        prog.feed_many(_campaign_events())
        frame = render_top(
            prog.snapshot(), heartbeats={"123": 1.0, "456": 99.0}, now=104.0
        )
        assert "campaign MILC x32" in frame
        assert "3/6 runs (50%)" in frame
        assert "failed 1" in frame
        assert "resumed 1" in frame
        assert "stall/flit health" in frame
        assert "123:live" in frame and "456:STALE" in frame
        assert "GUARD violations 1" in frame

    def test_render_empty_snapshot(self):
        frame = render_top(CampaignProgress().snapshot(), now=0.0)
        assert "waiting" in frame and "0/0 runs" in frame
