"""Tests for the CSV/JSON export layer."""

import json

import numpy as np
import pytest

from repro.monitoring.autoperf import AutoPerf
from repro.monitoring.export import (
    autoperf_to_dict,
    autoperf_to_json,
    counters_to_csv,
    ldms_series_to_csv,
    records_to_csv,
)
from repro.monitoring.ldms import LdmsCollector
from repro.network.counters import CounterBank, TILE_CLASSES


@pytest.fixture
def report(toy_top):
    ap = AutoPerf("MILC", 16)
    ap.record_op("MPI_Allreduce", calls=100, nbytes=800, time=2.0)
    ap.record_op("MPI_Wait", calls=50, nbytes=0, time=1.0)
    ap.add_total_time(10.0)
    bank = CounterBank(toy_top)
    lid = toy_top.rank1_link(0, 0, 0, 1)
    bank.add_network_link_counts(np.array([lid]), np.array([10.0]), np.array([5.0]))
    ap.attach_counters(bank.local_view(np.arange(4)))
    return ap.finalize()


class TestAutoPerfExport:
    def test_dict_fields(self, report):
        d = autoperf_to_dict(report)
        assert d["app"] == "MILC"
        assert d["mpi_fraction"] == pytest.approx(0.3)
        assert d["ops"]["MPI_Allreduce"]["avg_bytes"] == 8.0
        assert set(d["stalls_to_flits"]) == set(TILE_CLASSES)

    def test_json_roundtrip(self, report, tmp_path):
        path = tmp_path / "report.json"
        text = autoperf_to_json(report, path)
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(text)
        assert loaded["n_nodes"] == 16

    def test_dict_without_counters(self):
        ap = AutoPerf("x", 2)
        ap.add_total_time(1.0)
        d = autoperf_to_dict(ap.finalize())
        assert "stalls_to_flits" not in d


class TestLdmsExport:
    def test_csv_rows(self, toy_top, tmp_path):
        bank = CounterBank(toy_top)
        ldms = LdmsCollector(bank, interval=60.0)
        lid = toy_top.rank3_link(0, 1, 0)
        bank.add_network_link_counts(np.array([lid]), np.array([8.0]), np.array([4.0]))
        ldms.sample()
        ldms.sample()
        path = tmp_path / "series.csv"
        text = ldms_series_to_csv(ldms, path)
        lines = text.strip().splitlines()
        assert lines[0] == "time_s,flits,stalls,ratio,partial"
        assert len(lines) == 3
        assert "0.500000" in lines[1]  # ratio of the first interval
        assert all(l.endswith(",0") for l in lines[1:])  # full intervals
        assert path.read_text() == text

    def test_csv_partial_flag(self, toy_top):
        bank = CounterBank(toy_top)
        ldms = LdmsCollector(bank, interval=60.0)
        lid = toy_top.rank3_link(0, 1, 0)
        bank.add_network_link_counts(np.array([lid]), np.array([8.0]), np.array([4.0]))
        ldms.sample()
        bank.add_network_link_counts(np.array([lid]), np.array([2.0]), np.array([1.0]))
        ldms.finalize(75.0)
        lines = ldms_series_to_csv(ldms).strip().splitlines()
        assert lines[1].endswith(",0")
        assert lines[2].endswith(",1")


class TestCounterExport:
    def test_per_router_csv(self, toy_top):
        bank = CounterBank(toy_top)
        lid = toy_top.rank1_link(0, 0, 0, 1)
        bank.add_network_link_counts(np.array([lid]), np.array([7.0]), np.array([0.0]))
        text = counters_to_csv(bank.snapshot())
        lines = text.strip().splitlines()
        assert len(lines) == toy_top.n_routers + 1
        assert lines[0].startswith("router,rank1_flits,rank1_stalls")


class TestRecordsExport:
    def test_campaign_csv(self, milc_campaign, tmp_path):
        path = tmp_path / "runs.csv"
        text = records_to_csv(milc_campaign, path)
        lines = text.strip().splitlines()
        assert len(lines) == len(milc_campaign) + 1
        assert lines[0].startswith("app,mode,n_nodes")
        assert any(",AD3," in l for l in lines[1:])
        # every row parses to the right column count
        ncols = lines[0].count(",")
        assert all(l.count(",") == ncols for l in lines[1:])


class TestEmptyExports:
    """Empty collectors/snapshots must yield header-only CSVs, not crash."""

    def test_ldms_csv_no_samples(self, toy_top):
        ldms = LdmsCollector(CounterBank(toy_top), interval=60.0)
        text = ldms_series_to_csv(ldms)
        assert text == "time_s,flits,stalls,ratio,partial\n"

    def test_counters_csv_empty_snapshot(self):
        from repro.network.counters import CounterSnapshot

        text = counters_to_csv(CounterSnapshot(flits={}, stalls={}))
        lines = text.splitlines()
        assert len(lines) == 1
        assert lines[0].startswith("router,rank1_flits")

    def test_records_csv_no_records(self):
        text = records_to_csv([])
        assert text.count("\n") == 1  # header only
