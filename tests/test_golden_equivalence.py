"""Golden byte-equivalence: optimized engines vs the frozen seed copies.

The hot-path overhaul (SoA packet arenas, bincount fluid kernels) must be
invisible at the output level: every counter, array, record, and
checkpoint byte produced through the default per-message API has to match
the pre-overhaul implementation exactly — not approximately.  The seed
engines are frozen verbatim in ``tests/_reference_fluid.py`` and
``tests/_reference_packet_sim.py``; these tests drive both
implementations through identical scenarios and assert equality with
``==``, never with tolerances.

Only the new bulk :meth:`PacketSimulator.add_messages` API is exempt (it
consumes RNG draws in a different order); its statistical-equivalence
contract is covered separately in ``test_packet_sim.py`` and documented
in ``docs/PERFORMANCE.md``.
"""

import numpy as np
import pytest

from repro.apps import MILC
from repro.core.biases import AD0, AD1, AD2, AD3
from repro.core.checkpoint import record_to_dict
from repro.core.experiment import CampaignConfig, run_campaign
from repro.faults.model import FaultSchedule
from repro.mpi.env import RoutingEnv
from repro.network.fluid import FlowSet, FluidParams, solve_fluid
from repro.network.packet_sim import InjectionSpec, PacketSimConfig, PacketSimulator
from repro.topology.pathcache import clear_path_cache
from repro.topology.systems import mini, toy

from tests import _reference_fluid as ref_fluid
from tests import _reference_packet_sim as ref_pkt

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.network.fluid.NonConvergenceWarning"
)


# ----------------------------------------------------------------------
# fluid solver
# ----------------------------------------------------------------------
def _random_flows(top, n, seed, n_cls=4, flowset_cls=FlowSet):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, top.n_nodes, n)
    dst = (src + 1 + rng.integers(0, top.n_nodes - 1, n)) % top.n_nodes
    nbytes = rng.integers(64, 2_000_000, n).astype(np.float64)
    cls = rng.integers(0, n_cls, n)
    return flowset_cls(src, dst, nbytes, cls)


_FLUID_ARRAY_FIELDS = (
    "flow_time",
    "flow_latency",
    "flow_latency_ambient",
    "flow_latency_worst",
    "flow_hops",
    "min_fraction",
    "link_load",
    "link_util",
    "link_raw_util",
    "link_flits",
    "link_stalls",
)
_FLUID_SCALAR_FIELDS = (
    "phase_time",
    "timescale",
    "converged",
    "iterations",
    "residual",
    "residual_mean",
)


def assert_fluid_identical(new, old):
    for name in _FLUID_SCALAR_FIELDS:
        assert getattr(new, name) == getattr(old, name), name
    for name in _FLUID_ARRAY_FIELDS:
        a, b = getattr(new, name), getattr(old, name)
        assert a.shape == b.shape, name
        assert a.tobytes() == b.tobytes(), name


def _fluid_pair(top, n_flows, *, seed, modes, background=None, params=None, **kw):
    """Run the same scenario through both solvers with fresh RNG streams."""
    out = []
    for solver, fsc in ((solve_fluid, FlowSet), (ref_fluid.solve_fluid, ref_fluid.FlowSet)):
        clear_path_cache()
        fl = _random_flows(top, n_flows, seed, n_cls=len(modes), flowset_cls=fsc)
        out.append(
            solver(
                top,
                fl,
                list(modes),
                background_util=background,
                rng=np.random.default_rng(seed + 1),
                params=params,
                **kw,
            )
        )
    return out


class TestFluidGolden:
    @pytest.mark.parametrize("mode", [AD0, AD1, AD2, AD3], ids=lambda m: m.name)
    def test_single_mode(self, mode):
        new, old = _fluid_pair(mini(), 96, seed=3, modes=[mode])
        assert_fluid_identical(new, old)

    def test_mixed_classes(self):
        new, old = _fluid_pair(mini(), 128, seed=5, modes=[AD0, AD1, AD2, AD3])
        assert_fluid_identical(new, old)

    def test_background_utilization(self):
        top = mini()
        rng = np.random.default_rng(9)
        bg = rng.uniform(0.0, 0.6, top.n_links)
        new, old = _fluid_pair(top, 64, seed=7, modes=[AD3], background=bg)
        assert_fluid_identical(new, old)

    def test_faulted_topology(self):
        view = mini().with_faults(FaultSchedule.parse("rank3:0.25", seed=7))
        new, old = _fluid_pair(view, 64, seed=11, modes=[AD0, AD3])
        assert_fluid_identical(new, old)

    def test_fast_params_and_durations(self):
        params = FluidParams(k_min=2, k_nonmin=2, n_iter=4)
        new, old = _fluid_pair(
            mini(), 48, seed=13, modes=[AD2], params=params, min_duration=1e-4
        )
        assert_fluid_identical(new, old)
        new, old = _fluid_pair(mini(), 48, seed=17, modes=[AD1], fixed_duration=2e-3)
        assert_fluid_identical(new, old)

    def test_empty_phase(self):
        top = mini()
        empty = FlowSet(
            np.empty(0, np.int64), np.empty(0, np.int64),
            np.empty(0, np.float64), np.empty(0, np.int64),
        )
        ref_empty = ref_fluid.FlowSet(
            np.empty(0, np.int64), np.empty(0, np.int64),
            np.empty(0, np.float64), np.empty(0, np.int64),
        )
        new = solve_fluid(top, empty, [AD0], rng=np.random.default_rng(1))
        old = ref_fluid.solve_fluid(top, ref_empty, [AD0], rng=np.random.default_rng(1))
        assert_fluid_identical(new, old)


# ----------------------------------------------------------------------
# packet simulator
# ----------------------------------------------------------------------
def assert_packet_identical(new, old):
    assert new.step == old.step
    assert new.flits.tobytes() == old.flits.tobytes()
    assert new.stalls.tobytes() == old.stalls.tobytes()
    assert new.credit.tobytes() == old.credit.tobytes()
    assert new.reroutes == old.reroutes
    assert new.retries == old.retries
    assert new.dropped == old.dropped
    ln, lo = new.packet_latencies(), old.packet_latencies()
    assert ln.shape == lo.shape and ln.tobytes() == lo.tobytes()
    assert new.stall_to_flit_ratio() == old.stall_to_flit_ratio()
    assert len(new.messages) == len(old.messages)
    for mn, mo in zip(new.messages, old.messages):
        assert mn.finish_step == mo.finish_step
        assert mn.min_packets == mo.min_packets
        assert mn.nonmin_packets == mo.nonmin_packets
        assert mn.dropped_packets == mo.dropped_packets
        assert mn.n_packets == mo.n_packets
        assert mn.done == mo.done
    assert new.messages_done == sum(1 for s in new.messages if s.done)


def _bench(cls, cfg_cls):
    sim = cls(toy(), rng=np.random.default_rng(3))
    for s in range(16):
        sim.add_message(InjectionSpec(src=s, dst=16 + s, nbytes=8192, mode=AD0))
    sim.run()
    return sim


def _mixed(cls, cfg_cls):
    sim = cls(toy(), cfg_cls(reroute_patience=3), rng=np.random.default_rng(7))
    modes = [AD0, AD1, AD2, AD3]
    sizes = [64, 100, 8192, 4096, 777, 64 * 200]
    starts = [0, 0, 5, 17, 100, 400, 1000]
    for i in range(24):
        sim.add_message(
            InjectionSpec(
                src=i % 16,
                dst=(i % 16 + 1 + (i * 3) % 30) % 32,
                nbytes=sizes[i % len(sizes)],
                mode=modes[i % 4],
                start_step=starts[i % len(starts)],
            )
        )
    sim.run()
    return sim


def _faulted(spec_txt, seed, patience=4, max_retry=2):
    def build(cls, cfg_cls):
        top = toy()
        cfg = cfg_cls(reroute_patience=patience, max_reroute_attempts=max_retry)
        faults = FaultSchedule.parse(spec_txt, seed=seed)
        sim = cls(top, cfg, rng=np.random.default_rng(11), faults=faults)
        for s in range(8):
            sim.add_message(
                InjectionSpec(src=s, dst=(s + 16) % 32, nbytes=64 * 400, mode=AD0)
            )
        sim.run()
        return sim

    return build


def _patience_zero(cls, cfg_cls):
    faults = FaultSchedule.parse("cable:0-1:0@5e-7", seed=2)
    sim = cls(toy(), cfg_cls(reroute_patience=0), rng=np.random.default_rng(5), faults=faults)
    for s in range(8):
        sim.add_message(InjectionSpec(src=s, dst=16 + s, nbytes=6400, mode=AD3))
    sim.run()
    return sim


def _incremental(cls, cfg_cls):
    sim = cls(toy(), rng=np.random.default_rng(9))
    sim.add_message(InjectionSpec(src=0, dst=17, nbytes=4096, mode=AD2))
    for _ in range(10):
        sim.advance()
    sim.add_message(
        InjectionSpec(src=3, dst=21, nbytes=2048, mode=AD0, start_step=sim.step + 2)
    )
    sim.add_message(InjectionSpec(src=5, dst=29, nbytes=3333, mode=AD1, start_step=sim.step))
    sim.run()
    return sim


_PACKET_SCENARIOS = {
    "bench": _bench,
    "mixed": _mixed,
    "fault-dead-cable": _faulted("cable:0-1:0", 2),
    "fault-timed": _faulted("cable:0-1:0@2.5e-6,9e-6", 3),
    "fault-degraded": _faulted("rank3:0.25", 5, patience=2),
    "fault-router": _faulted("router:1@1e-6", 4, max_retry=1),
    "patience0": _patience_zero,
    "incremental": _incremental,
}


class TestPacketGolden:
    @pytest.mark.parametrize("scenario", list(_PACKET_SCENARIOS), ids=str)
    def test_scenario_identical(self, scenario):
        build = _PACKET_SCENARIOS[scenario]
        clear_path_cache()
        new = build(PacketSimulator, PacketSimConfig)
        clear_path_cache()
        old = build(ref_pkt.PacketSimulator, ref_pkt.PacketSimConfig)
        assert_packet_identical(new, old)


# ----------------------------------------------------------------------
# end to end: campaign records and checkpoints
# ----------------------------------------------------------------------
class TestEndToEndGolden:
    def test_campaign_records_and_checkpoint(self, tmp_path, monkeypatch):
        """A full campaign through the optimized solver writes the same
        records and checkpoint bytes as one through the frozen seed."""
        top = mini()
        cfg = CampaignConfig(
            app=MILC(), n_nodes=32, modes=(AD0, AD3), samples=2, seed=11,
            scenario_pool=4,
        )
        p_new = tmp_path / "new.jsonl"
        p_old = tmp_path / "old.jsonl"

        clear_path_cache()
        new = run_campaign(top, cfg, checkpoint_path=str(p_new))
        clear_path_cache()
        monkeypatch.setattr(
            "repro.core.experiment.solve_fluid", ref_fluid.solve_fluid
        )
        old = run_campaign(top, cfg, checkpoint_path=str(p_old))

        assert [record_to_dict(r) for r in new] == [record_to_dict(r) for r in old]
        assert p_new.read_bytes() == p_old.read_bytes()

    def test_simcomm_identical(self, monkeypatch):
        """The MPI layer sees identical timings from either engine."""
        from repro.mpi import api as mpi_api

        def workload():
            comm = mpi_api.SimComm(
                toy(),
                np.arange(8),
                env=RoutingEnv(),
                rng=np.random.default_rng(21),
            )
            reqs = [
                comm.isend(r, (r + 4) % 8, 32 * 1024) for r in range(8)
            ]
            comm.waitall(reqs)
            return comm

        clear_path_cache()
        new = workload()
        clear_path_cache()
        monkeypatch.setattr(mpi_api, "PacketSimulator", ref_pkt.PacketSimulator)
        old = workload()
        assert new.now == old.now
        assert new.op_times == old.op_times
        assert new.op_calls == old.op_calls
