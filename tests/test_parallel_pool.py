"""Fault and crash behaviour of the parallel dispatcher.

Three failure layers, three contracts:

* an exception *inside* a run is isolated into an error-status
  ``RunRecord`` by the worker, exactly as the serial loop would;
* a worker process that *dies* (``os._exit``, OOM-kill) breaks the pool;
  the dispatcher rebuilds it and retries the unfinished runs a bounded
  number of times before isolating them too;
* an interrupt (Ctrl-C) mid-campaign leaves the checkpoint as a clean,
  resumable prefix of the serial file.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

import repro.core.checkpoint as ckpt_mod
import repro.core.experiment as exp
from repro.apps import MILC
from repro.core.biases import AD0, AD3
from repro.core.checkpoint import record_to_dict
from repro.core.experiment import CampaignConfig, run_campaign
from repro.parallel import run_campaign_parallel, run_tasks
from repro.topology.systems import mini

pytestmark = pytest.mark.filterwarnings("ignore::repro.network.fluid.NonConvergenceWarning")


@pytest.fixture(scope="module")
def top():
    return mini()


def _cfg(**kw):
    kw.setdefault("samples", 2)
    return CampaignConfig(
        app=MILC(), n_nodes=32, modes=(AD0, AD3), seed=11, scenario_pool=4, **kw
    )


def _dicts(records):
    # via JSON so NaN runtimes of error records compare equal
    return [json.dumps(record_to_dict(r), sort_keys=True) for r in records]


class TestWorkerExceptions:
    def test_run_exception_becomes_error_record(self, top, monkeypatch):
        cfg = _cfg()

        def exploding(*a, **kw):
            raise RuntimeError("solver exploded")

        monkeypatch.setattr(exp, "run_app_once", exploding)
        serial = run_campaign(top, cfg, jobs=1)
        parallel = run_campaign_parallel(top, cfg, jobs=2)
        assert _dicts(parallel) == _dicts(serial)
        assert all(r.status == "error" for r in parallel)
        assert "solver exploded" in parallel[0].error

    def test_harness_error_propagates(self, top, monkeypatch):
        # an exception outside execute_run is a dispatcher bug, not a run
        # failure: it must abort the campaign like the serial loop would
        import repro.parallel.campaign as pc

        def boom(*a, **kw):
            raise RuntimeError("harness bug")

        monkeypatch.setattr(pc, "sample_draws", boom)
        with pytest.raises(RuntimeError, match="harness bug"):
            run_campaign_parallel(top, _cfg(), jobs=2)


class TestDeadWorkers:
    def test_killed_worker_retried_and_results_identical(
        self, top, tmp_path, monkeypatch
    ):
        cfg = _cfg()
        serial = _dicts(run_campaign(top, cfg, jobs=1))
        marker = tmp_path / "died-once"
        real = exp.run_app_once

        def die_once(*a, **kw):
            if not marker.exists():
                marker.write_text("x")
                os._exit(17)
            return real(*a, **kw)

        monkeypatch.setattr(exp, "run_app_once", die_once)
        parallel = _dicts(run_campaign_parallel(top, cfg, jobs=2))
        assert marker.exists()
        assert parallel == serial

    def test_retries_are_bounded(self, top, monkeypatch):
        cfg = _cfg()

        def always_die(*a, **kw):
            os._exit(13)

        monkeypatch.setattr(exp, "run_app_once", always_die)
        records = run_campaign_parallel(top, cfg, jobs=2, max_pool_retries=1)
        assert len(records) == cfg.samples * 2
        assert all(r.status == "error" for r in records)
        assert all(r.attempts == 2 for r in records)
        assert "worker died" in records[0].error
        assert all(np.isnan(r.runtime) for r in records)

    def test_run_tasks_retry_accounting(self):
        outcomes = list(
            run_tasks([1, 2, 3], _square, jobs=2, max_retries=1)
        )
        assert sorted(o.result for o in outcomes) == [1, 4, 9]
        assert all(o.ok and o.attempts == 1 for o in outcomes)


def _square(x):
    return x * x


class TestInterrupts:
    def test_ctrl_c_leaves_resumable_checkpoint(self, top, tmp_path, monkeypatch):
        cfg = _cfg(samples=3)
        full = tmp_path / "full.jsonl"
        serial = run_campaign(top, cfg, jobs=1, checkpoint_path=str(full))

        part = tmp_path / "part.jsonl"
        real_append = ckpt_mod.append_record
        state = {"appends": 0, "armed": True}

        def interrupting(path, rec):
            if state["armed"] and state["appends"] >= 2:
                raise KeyboardInterrupt
            state["appends"] += 1
            return real_append(path, rec)

        monkeypatch.setattr(ckpt_mod, "append_record", interrupting)
        with pytest.raises(KeyboardInterrupt):
            run_campaign_parallel(top, cfg, jobs=3, checkpoint_path=str(part))
        state["armed"] = False

        # clean prefix: header plus the two flushed records
        assert full.read_text().startswith(part.read_text())
        assert len(part.read_text().splitlines()) == 3

        resumed = run_campaign(
            top, cfg, jobs=3, checkpoint_path=str(part), resume=True
        )
        assert _dicts(resumed) == _dicts(serial)
        assert part.read_bytes() == full.read_bytes()

    def test_ensemble_ctrl_c_resumable_via_cli(self, tmp_path, capsys, monkeypatch):
        import repro.cli as cli
        import repro.parallel as par

        monkeypatch.setitem(cli.SYSTEMS, "mini", mini)

        def argv(ck):
            return [
                "ensemble", "--system", "mini", "--app", "milc",
                "--jobs", "2", "--nodes", "16", "--modes", "AD0,AD3",
                "--workers", "2", "--checkpoint", str(ck),
            ]

        ck_full = tmp_path / "full.json"
        assert cli.main(argv(ck_full)) == 0
        capsys.readouterr()

        ck = tmp_path / "interrupted.json"
        real = par.run_ensembles

        def interrupted(topx, cfgs, *, on_result=None, **kw):
            def wrapper(i, res):
                on_result(i, res)
                raise KeyboardInterrupt

            return real(topx, cfgs, on_result=wrapper, **kw)

        monkeypatch.setattr(par, "run_ensembles", interrupted)
        with pytest.raises(KeyboardInterrupt):
            cli.main(argv(ck))
        monkeypatch.setattr(par, "run_ensembles", real)
        capsys.readouterr()

        assert set(json.loads(ck.read_text())["outputs"]) == {"AD0"}
        assert cli.main([*argv(ck), "--resume"]) == 0
        out = capsys.readouterr().out
        assert out.startswith(f"(resumed from {ck})")
        assert json.loads(ck.read_text())["outputs"] == (
            json.loads(ck_full.read_text())["outputs"]
        )


def _procs_mentioning(needle: str) -> list[int]:
    """Pids of live processes whose cmdline contains ``needle``.

    Pool workers are forked, so they share the parent's cmdline; a
    unique checkpoint path in the argv therefore tags the whole
    process tree of one campaign.
    """
    pids = []
    for p in Path("/proc").iterdir():
        if not p.name.isdigit():
            continue
        try:
            cmd = (p / "cmdline").read_bytes()
        except OSError:
            continue
        if needle.encode() in cmd:
            pids.append(int(p.name))
    return pids


class TestParentSigterm:
    """SIGTERM of the *parent* mid-sweep (scheduler preemption, timeout).

    Contract: the CLI's SIGTERM handler converts the signal to a clean
    ``SystemExit(143)``, the executor SIGKILLs its pool workers on the
    way out (no orphans mining CPU after the job is gone), and the
    checkpoint on disk is a clean resumable prefix — a rerun with
    ``--resume`` finishes the campaign byte-identically.
    """

    def _argv(self, ck):
        return [
            sys.executable, "-m", "repro", "compare",
            "--system", "mini", "--nodes", "32", "--samples", "4",
            "--modes", "AD0,AD3", "--seed", "11", "-j", "2",
            "--checkpoint", str(ck),
        ]

    def _env(self):
        src = str(Path(exp.__file__).resolve().parents[2])
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return env

    def test_sigterm_reaps_workers_and_leaves_resumable_prefix(self, tmp_path):
        env = self._env()

        # reference: the same sweep, run to completion
        ck_full = tmp_path / "full.jsonl"
        done = subprocess.run(
            self._argv(ck_full), env=env, capture_output=True, text=True,
            timeout=600,
        )
        assert done.returncode == 0, done.stderr
        full_lines = ck_full.read_text().splitlines()
        assert len(full_lines) == 1 + 8  # header + 4 samples x 2 modes

        # victim: SIGTERM once at least two runs have been checkpointed
        ck = tmp_path / "preempted.jsonl"
        proc = subprocess.Popen(
            self._argv(ck), env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 300
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    pytest.fail(
                        f"campaign finished (rc {proc.returncode}) before "
                        "SIGTERM could be delivered; sweep too small"
                    )
                if ck.exists() and len(ck.read_text().splitlines()) >= 3:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("checkpoint never reached two records")
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=60)
        assert rc == 143  # the conventional 128+SIGTERM exit

        # no orphaned pool workers keep running after the parent is gone
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and _procs_mentioning(str(ck)):
            time.sleep(0.1)
        assert _procs_mentioning(str(ck)) == []

        # what hit disk is a clean prefix of the full serial-order file
        part_lines = ck.read_text().splitlines()
        assert 3 <= len(part_lines) < len(full_lines)
        for line in part_lines:
            json.loads(line)  # no torn tail
        assert full_lines[: len(part_lines)] == part_lines

        # and --resume completes the sweep byte-identically
        resumed = subprocess.run(
            [*self._argv(ck), "--resume"], env=env, capture_output=True,
            text=True, timeout=600,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert ck.read_bytes() == ck_full.read_bytes()
