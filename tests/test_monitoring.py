"""Unit tests for AutoPerf, LDMS, and NIC latency counters."""

import numpy as np
import pytest

from repro.monitoring.autoperf import AutoPerf, MpiOpRecord
from repro.monitoring.ldms import LdmsCollector
from repro.monitoring.nic import NicLatencyCounters
from repro.network.counters import CounterBank
from repro.network.fluid import FlowSet


class TestAutoPerf:
    def _report(self):
        ap = AutoPerf("MILC", 256)
        ap.record_op("MPI_Allreduce", calls=1000, nbytes=8000, time=100.0)
        ap.record_op("MPI_Wait", calls=5000, nbytes=0, time=60.0)
        ap.record_op("MPI_Isend", calls=5000, nbytes=5 * 32768 * 1000, time=5.0)
        ap.add_total_time(400.0)
        return ap.finalize()

    def test_avg_bytes(self):
        rec = MpiOpRecord(calls=10, nbytes=80, time=1.0)
        assert rec.avg_bytes == 8.0
        assert MpiOpRecord().avg_bytes == 0.0

    def test_mpi_time_and_fraction(self):
        rep = self._report()
        assert rep.mpi_time == pytest.approx(165.0)
        assert rep.compute_time == pytest.approx(235.0)
        assert rep.mpi_fraction == pytest.approx(165.0 / 400.0)

    def test_top_ops_ordered_by_time(self):
        rep = self._report()
        assert rep.top_ops(3) == ["MPI_Allreduce", "MPI_Wait", "MPI_Isend"]

    def test_breakdown_sums_to_total(self):
        rep = self._report()
        bd = rep.breakdown()
        assert sum(bd.values()) == pytest.approx(rep.total_time)
        assert "Compute" in bd and "Other_MPI" in bd

    def test_record_op_accumulates(self):
        ap = AutoPerf("x", 4)
        ap.record_op("MPI_Send", calls=1, nbytes=10, time=0.5)
        ap.record_op("MPI_Send", calls=2, nbytes=20, time=0.5)
        rep = ap.finalize()
        assert rep.ops["MPI_Send"].calls == 3
        assert rep.ops["MPI_Send"].time == 1.0

    def test_counters_attachment(self, toy_top):
        bank = CounterBank(toy_top)
        lid = toy_top.rank1_link(0, 0, 0, 1)
        bank.add_network_link_counts(np.array([lid]), np.array([10.0]), np.array([5.0]))
        ap = AutoPerf("x", 2)
        ap.add_total_time(1.0)
        ap.attach_counters(bank.local_view(np.array([0, 1])))
        rep = ap.finalize()
        assert rep.stalls_to_flits("rank1") == pytest.approx(0.5)

    def test_stalls_without_counters_raises(self):
        rep = self._report()
        with pytest.raises(RuntimeError):
            rep.stalls_to_flits("rank1")

    def test_summary_text(self):
        s = self._report().summary()
        assert "MILC" in s and "MPI_Allreduce" in s


class TestLdms:
    def test_sample_deltas(self, toy_top):
        bank = CounterBank(toy_top)
        ldms = LdmsCollector(bank, interval=60.0)
        lid = toy_top.rank1_link(0, 0, 0, 1)
        bank.add_network_link_counts(np.array([lid]), np.array([10.0]), np.array([1.0]))
        s1 = ldms.sample()
        assert s1.delta.flits["rank1"].sum() == 10
        bank.add_network_link_counts(np.array([lid]), np.array([5.0]), np.array([2.0]))
        s2 = ldms.sample()
        assert s2.delta.flits["rank1"].sum() == 5
        assert s2.time == pytest.approx(120.0)

    def test_series_ratio(self, toy_top):
        bank = CounterBank(toy_top)
        ldms = LdmsCollector(bank, interval=60.0)
        lid = toy_top.rank3_link(0, 1, 0)
        bank.add_network_link_counts(np.array([lid]), np.array([10.0]), np.array([5.0]))
        ldms.sample()
        series = ldms.series()
        assert series["ratio"][0] == pytest.approx(0.5)
        r3 = ldms.series("rank3")
        assert r3["flits"][0] == 10

    def test_per_router_series_shape(self, toy_top):
        bank = CounterBank(toy_top)
        ldms = LdmsCollector(bank, interval=60.0)
        ldms.sample()
        ldms.sample()
        flits, stalls = ldms.per_router_series("rank1")
        assert flits.shape == (2, toy_top.n_routers)

    def test_cumulative(self, toy_top):
        bank = CounterBank(toy_top)
        ldms = LdmsCollector(bank, interval=60.0)
        lid = toy_top.rank1_link(0, 0, 0, 1)
        bank.add_network_link_counts(np.array([lid]), np.array([4.0]), np.array([0.0]))
        ldms.sample()
        bank.add_network_link_counts(np.array([lid]), np.array([6.0]), np.array([0.0]))
        ldms.sample()
        assert ldms.cumulative().flits["rank1"].sum() == 10

    def test_cumulative_empty_raises(self, toy_top):
        ldms = LdmsCollector(CounterBank(toy_top))
        with pytest.raises(RuntimeError):
            ldms.cumulative()

    def test_interval_validation(self, toy_top):
        with pytest.raises(ValueError):
            LdmsCollector(CounterBank(toy_top), interval=0)

    def test_finalize_emits_partial_window(self, toy_top):
        """Regression: counters accumulated after the last cadence boundary
        must surface as a partial=True sample, not vanish."""
        bank = CounterBank(toy_top)
        ldms = LdmsCollector(bank, interval=60.0)
        lid = toy_top.rank1_link(0, 0, 0, 1)
        bank.add_network_link_counts(np.array([lid]), np.array([10.0]), np.array([1.0]))
        ldms.sample()
        # the run ends 15 s into the next interval, counters still moving
        bank.add_network_link_counts(np.array([lid]), np.array([3.0]), np.array([2.0]))
        s = ldms.finalize(75.0)
        assert s is not None and s.partial
        assert s.time == pytest.approx(75.0)
        assert s.delta.flits["rank1"].sum() == 3
        assert not ldms.samples[0].partial
        # the residual is part of the series and the cumulative totals
        assert ldms.series()["flits"].sum() == 13
        assert ldms.cumulative().flits["rank1"].sum() == 13

    def test_finalize_unknown_end_time_is_partial(self, toy_top):
        bank = CounterBank(toy_top)
        ldms = LdmsCollector(bank, interval=60.0)
        lid = toy_top.rank1_link(0, 0, 0, 1)
        bank.add_network_link_counts(np.array([lid]), np.array([4.0]), np.array([0.0]))
        s = ldms.finalize()
        assert s is not None and s.partial

    def test_finalize_empty_residual_records_nothing(self, toy_top):
        bank = CounterBank(toy_top)
        ldms = LdmsCollector(bank, interval=60.0)
        ldms.sample()
        assert ldms.finalize(60.0) is None
        assert len(ldms.samples) == 1

    def test_finalize_rejects_time_travel(self, toy_top):
        ldms = LdmsCollector(CounterBank(toy_top), interval=60.0)
        ldms.sample()
        with pytest.raises(ValueError):
            ldms.finalize(30.0)


class TestNicCounters:
    def test_record_and_mean(self, toy_top):
        nic = NicLatencyCounters(toy_top)
        fl = FlowSet(
            np.array([0, 0, 1]),
            np.array([2, 3, 2]),
            np.array([64.0, 64.0, 64.0]),
            np.array([0, 0, 0]),
        )
        nic.record_flows(fl, latency=np.array([1e-6, 3e-6, 5e-6]), pairs=np.array([1.0, 1.0, 2.0]))
        means = nic.interval_means()
        assert means[0] == pytest.approx(2e-6)  # (1 + 3) / 2 pairs
        assert means[1] == pytest.approx(5e-6)
        assert np.isnan(means[4])  # idle NIC

    def test_window_mean_between_snapshots(self, toy_top):
        nic = NicLatencyCounters(toy_top)
        fl = FlowSet(np.array([0]), np.array([2]), np.array([64.0]), np.array([0]))
        nic.record_flows(fl, np.array([2e-6]), np.array([4.0]))
        before = nic.snapshot()
        nic.record_flows(fl, np.array([10e-6]), np.array([1.0]))
        means = NicLatencyCounters.window_mean_latency(before, nic.snapshot())
        # the window only contains the 10us pair
        assert means[0] == pytest.approx(10e-6)

    def test_counters_cumulative(self, toy_top):
        nic = NicLatencyCounters(toy_top)
        fl = FlowSet(np.array([5]), np.array([6]), np.array([64.0]), np.array([0]))
        nic.record_flows(fl, np.array([1e-6]), np.array([1.0]))
        nic.record_flows(fl, np.array([1e-6]), np.array([1.0]))
        assert nic.rsp_count[5] == 2.0
