"""Service restart recovery, graceful drain, and client retry.

The contract under test (docs/CHAOS.md): a SIGKILLed `repro serve` is
a delay, not a loss — the journal re-adopts in-flight campaigns on
restart and the result cache turns completed work into hits, so the
records served after recovery are identical to an uninterrupted run.
"""

import io
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
from pathlib import Path

import pytest

import repro
from repro.apps import MILC
from repro.core.biases import AD0, AD3
from repro.core.experiment import CampaignConfig
from repro.dist.manifest import campaign_to_manifest
from repro.service import (
    CampaignService,
    JobJournal,
    RunRecordStore,
    ServiceDraining,
)
from repro.service import client
from repro.service.journal import TERMINAL_STATES
from repro.telemetry import NULL_TELEMETRY
from repro.topology.systems import mini
from repro.util.backoff import NO_BACKOFF, Backoff

def _FAST():
    """A retry backoff that never sleeps — keeps the retry tests fast."""
    return Backoff(NO_BACKOFF, sleeper=lambda s: None)

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.network.fluid.NonConvergenceWarning"
)

SRC = str(Path(repro.__file__).resolve().parents[1])


@pytest.fixture(scope="module")
def top():
    return mini()


def _cfg(**kw):
    kw.setdefault("samples", 2)
    kw.setdefault("seed", 11)
    return CampaignConfig(
        app=MILC(), n_nodes=32, modes=(AD0, AD3), scenario_pool=4, **kw
    )


def _manifest(top, cfg):
    return campaign_to_manifest(top, cfg, NULL_TELEMETRY)


# ----------------------------------------------------------------------
# the journal itself
# ----------------------------------------------------------------------
class TestJournal:
    def test_round_trip_and_pending(self, top, tmp_path):
        j = JobJournal(tmp_path)
        man = _manifest(top, _cfg())
        j.record("k1-1", key="k1", manifest=man, jobs=None, state="submitted",
                 submitted_at=1.0)
        j.record("k2-2", key="k2", manifest=man, jobs=2, state="done",
                 submitted_at=2.0, finished_at=3.0)
        entries = j.load()
        assert [e["id"] for e in entries] == ["k1-1", "k2-2"]
        assert entries[0]["manifest"] == man
        assert [e["id"] for e in j.pending()] == ["k1-1"]

    def test_rewrite_is_a_state_transition_not_a_duplicate(self, top, tmp_path):
        j = JobJournal(tmp_path)
        man = _manifest(top, _cfg())
        j.record("k1-1", key="k1", manifest=man, jobs=None, state="submitted")
        j.record("k1-1", key="k1", manifest=man, jobs=None, state="done")
        assert len(j.load()) == 1
        assert j.pending() == []

    def test_prune_terminal_keeps_only_recoverable_entries(self, top, tmp_path):
        j = JobJournal(tmp_path)
        man = _manifest(top, _cfg())
        for i, state in enumerate(("submitted", "running", *TERMINAL_STATES)):
            j.record(f"k-{i}", key="k", manifest=man, jobs=None, state=state)
        assert j.prune_terminal() == 2
        assert {e["state"] for e in j.load()} == {"submitted", "running"}

    def test_torn_and_foreign_files_are_skipped(self, top, tmp_path):
        j = JobJournal(tmp_path)
        man = _manifest(top, _cfg())
        j.record("k1-1", key="k1", manifest=man, jobs=None, state="running")
        (tmp_path / "torn.json").write_text('{"kind": "repro-job-jour')
        (tmp_path / "foreign.json").write_text('{"kind": "something-else"}\n')
        assert [e["id"] for e in j.load()] == ["k1-1"]


# ----------------------------------------------------------------------
# in-process recovery + drain
# ----------------------------------------------------------------------
class TestRecovery:
    def test_recover_re_adopts_pending_jobs_with_original_ids(self, top, tmp_path):
        """A journal entry left by a dead server becomes a live job —
        same id — on the next server over the same directories."""
        man = _manifest(top, _cfg(samples=1))
        JobJournal(tmp_path / "journal").record(
            "abcdef123456-7", key="abcdef123456", manifest=man, jobs=None,
            state="running", submitted_at=5.0,
        )
        service = CampaignService(
            RunRecordStore(tmp_path / "cache"), journal_dir=str(tmp_path / "journal")
        )
        adopted = service.recover()
        assert adopted == ["abcdef123456-7"]
        job = service._jobs["abcdef123456-7"]
        assert job.done_evt.wait(300)
        assert job.state == "done"
        assert len(job.outcome.records) == 2  # 1 sample x 2 modes
        # the journal now remembers it as terminal: a second restart
        # would not re-run it
        assert service.journal.pending() == []
        # and the sequence counter moved past the adopted id, so new
        # jobs can never collide with recovered ones
        new_job, _ = service.submit(_manifest(top, _cfg(samples=1, seed=99)))
        assert int(new_job.id.rsplit("-", 1)[1]) > 7
        assert new_job.done_evt.wait(300)

    def test_unparseable_manifest_is_counted_not_fatal(self, top, tmp_path):
        JobJournal(tmp_path / "journal").record(
            "deadbeef0000-1", key="deadbeef0000",
            manifest={"kind": "not-a-campaign"}, jobs=None, state="running",
        )
        service = CampaignService(
            RunRecordStore(tmp_path / "cache"), journal_dir=str(tmp_path / "journal")
        )
        assert service.recover() == []
        assert service.journal_errors == 1

    def test_drain_refuses_new_work_and_reports_it(self, top, tmp_path):
        service = CampaignService(RunRecordStore(tmp_path / "cache")).start()
        try:
            man = _manifest(top, _cfg(samples=1))
            first = client.submit(service.url, man)
            client.wait(service.url, first["id"], timeout=300)
            assert service.drain(timeout=30.0) == []  # nothing in flight
            # in-process and over HTTP, new submissions are refused
            with pytest.raises(ServiceDraining):
                service.submit(man)
            with pytest.raises(client.ServiceError, match="HTTP 503"):
                client._call(
                    f"{service.url}/campaigns", data={"manifest": man}, retries=0
                )
            health = client._call(f"{service.url}/healthz")
            assert health["draining"] is True
            # finished jobs are still readable while draining
            done = client.status(service.url, first["id"])
            assert done["state"] == "done"
        finally:
            service.close()


# ----------------------------------------------------------------------
# client retry
# ----------------------------------------------------------------------
class _FakeResponse(io.BytesIO):
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


class TestClientRetry:
    def test_connection_failures_retry_until_success(self, monkeypatch):
        calls = []

        def fake_urlopen(req, timeout=None):
            calls.append(req.full_url)
            if len(calls) < 3:
                raise urllib.error.URLError(ConnectionRefusedError(111))
            return _FakeResponse(b'{"ok": true}')

        monkeypatch.setattr(client.urllib.request, "urlopen", fake_urlopen)
        doc = client._call("http://127.0.0.1:1/x", backoff=_FAST())
        assert doc == {"ok": True}
        assert len(calls) == 3

    def test_5xx_retries_then_surfaces_the_server_message(self, monkeypatch):
        calls = []

        def fake_urlopen(req, timeout=None):
            calls.append(1)
            raise urllib.error.HTTPError(
                req.full_url, 503, "Service Unavailable", {},
                io.BytesIO(b'{"error": "service is draining"}'),
            )

        monkeypatch.setattr(client.urllib.request, "urlopen", fake_urlopen)
        with pytest.raises(client.ServiceError, match="draining"):
            client._call("http://127.0.0.1:1/x", retries=2, backoff=_FAST())
        assert len(calls) == 3  # first attempt + 2 retries

    def test_4xx_is_the_callers_fault_and_never_retried(self, monkeypatch):
        calls = []

        def fake_urlopen(req, timeout=None):
            calls.append(1)
            raise urllib.error.HTTPError(
                req.full_url, 400, "Bad Request", {},
                io.BytesIO(b'{"error": "manifest is not a campaign"}'),
            )

        monkeypatch.setattr(client.urllib.request, "urlopen", fake_urlopen)
        with pytest.raises(client.ServiceError, match="HTTP 400"):
            client._call("http://127.0.0.1:1/x", backoff=_FAST())
        assert len(calls) == 1

    def test_exhausted_retries_surface_unreachable(self, monkeypatch):
        def fake_urlopen(req, timeout=None):
            raise urllib.error.URLError(ConnectionRefusedError(111))

        monkeypatch.setattr(client.urllib.request, "urlopen", fake_urlopen)
        with pytest.raises(client.ServiceError, match="unreachable"):
            client._call("http://127.0.0.1:1/x", retries=1, backoff=_FAST())


# ----------------------------------------------------------------------
# the acceptance scenario: kill -9 a real `repro serve` mid-campaign
# ----------------------------------------------------------------------
def _spawn_serve(cache_dir) -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--cache", str(cache_dir),
         "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    line = proc.stdout.readline()
    m = re.search(r"http://[\d.]+:\d+", line)
    assert m, f"no service URL in serve banner: {line!r}"
    return proc, m.group(0)


class TestKillServe:
    def test_sigkilled_serve_recovers_and_serves_identical_records(
        self, top, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        man = _manifest(top, _cfg(samples=4))

        proc, url = _spawn_serve(cache_dir)
        try:
            submitted = client.submit(url, man)
            jid = submitted["id"]
            # kill -9 the moment the first result lands in the cache —
            # mid-campaign, with 7 of 8 runs still to go
            entries_dir = cache_dir / "entries"
            deadline = time.monotonic() + 300
            while time.monotonic() < deadline:
                if entries_dir.is_dir() and list(entries_dir.glob("*.json")):
                    break
                time.sleep(0.005)
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
            assert proc.returncode == -signal.SIGKILL
        finally:
            if proc.poll() is None:
                proc.kill()

        # restart over the same cache: the journal re-adopts the job
        proc2, url2 = _spawn_serve(cache_dir)
        try:
            banner = proc2.stdout.readline()
            assert jid in banner, f"expected {jid} recovered, got: {banner!r}"
            doc = client.wait(url2, jid, timeout=600)
            assert doc["state"] == "done"
            assert len(doc["records"]) == 8  # 4 samples x 2 modes
            # completed pre-kill work was served from the cache, not redone
            assert doc["cache"]["hits"] >= 1

            # resubmitting the same campaign is now all hits, and the
            # records are identical to the recovered run's
            again = client.submit(url2, man)
            doc2 = client.wait(url2, again["id"], timeout=300)
            assert doc2["cache"]["hits"] == 8
            assert doc2["cache"]["misses"] == 0
            assert doc2["records"] == doc["records"]
        finally:
            proc2.send_signal(signal.SIGTERM)
            try:
                proc2.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc2.kill()
                raise
        # the drain path exits 0 on SIGTERM
        assert proc2.returncode == 0

    def test_sigterm_drains_and_exits_zero(self, top, tmp_path):
        proc, url = _spawn_serve(tmp_path / "cache")
        try:
            man = _manifest(top, _cfg(samples=1))
            sub = client.submit(url, man)
            client.wait(url, sub["id"], timeout=300)
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise
        assert proc.returncode == 0
