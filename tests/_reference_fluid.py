"""Seed (pre-arena/bincount) fluid solver, kept verbatim as the golden reference.

This is a frozen copy of src/repro/network/fluid.py as of the commit before
the engine hot-path overhaul.  The golden-equivalence and perf-gate suites
compare the optimized engine against this implementation byte for byte.
Do not optimize or otherwise edit this file except to track intentional,
documented re-baselines (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core.biases import RoutingMode
from repro.core.policy import PolicyParams, DEFAULT_POLICY, split_fraction
from repro.guard.context import active_guard
from repro.guard.invariants import check_fluid_iterate, check_fluid_result
from repro.network.congestion import (
    CongestionModel,
    LatencyModel,
    FLIT_BYTES,
    PACKET_BYTES,
)
from repro.network.counters import CounterBank
from repro.telemetry import Telemetry, resolve_telemetry
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.paths import PathBundle
from repro.topology.pathcache import cached_minimal_paths, cached_valiant_paths


class NonConvergenceWarning(RuntimeWarning):
    """The fluid solver hit its iteration cap before the splits settled."""


@dataclass
class FlowSet:
    """A batch of point-to-point byte demands for one phase.

    Attributes
    ----------
    src, dst:
        Node indices (``int64``), element-wise pairs; self-flows are
        rejected.
    nbytes:
        Total bytes each flow moves during the phase.
    cls:
        Traffic-class index of each flow, mapping into the ``modes``
        sequence passed to :func:`solve_fluid` (e.g. class 0 = the job's
        point-to-point mode, class 1 = its Alltoall mode, class 2 =
        another job in the ensemble, ...).
    """

    src: np.ndarray
    dst: np.ndarray
    nbytes: np.ndarray
    cls: np.ndarray

    def __post_init__(self) -> None:
        self.src = np.asarray(self.src, dtype=np.int64)
        self.dst = np.asarray(self.dst, dtype=np.int64)
        self.nbytes = np.asarray(self.nbytes, dtype=np.float64)
        self.cls = np.asarray(self.cls, dtype=np.int64)
        n = self.src.size
        for name, arr in (("dst", self.dst), ("nbytes", self.nbytes), ("cls", self.cls)):
            if arr.size != n:
                raise ValueError(f"{name} has {arr.size} entries, expected {n}")
        if n and np.any(self.src == self.dst):
            raise ValueError("FlowSet contains self-flows")
        if n and np.any(self.nbytes < 0):
            raise ValueError("FlowSet contains negative byte counts")

    @property
    def n(self) -> int:
        return self.src.size

    @classmethod
    def empty(cls) -> "FlowSet":
        z = np.zeros(0, dtype=np.int64)
        return cls(z, z, np.zeros(0), z)

    @classmethod
    def concat(cls, parts: list["FlowSet"]) -> "FlowSet":
        """Concatenate flow sets (classes are kept as-is; remap upstream)."""
        parts = [p for p in parts if p.n > 0]
        if not parts:
            return cls.empty()
        return cls(
            np.concatenate([p.src for p in parts]),
            np.concatenate([p.dst for p in parts]),
            np.concatenate([p.nbytes for p in parts]),
            np.concatenate([p.cls for p in parts]),
        )

    def with_class(self, cls_index: int) -> "FlowSet":
        """Copy with every flow assigned to one traffic class."""
        return FlowSet(self.src, self.dst, self.nbytes, np.full(self.n, cls_index, dtype=np.int64))

    def scaled(self, factor: float) -> "FlowSet":
        """Copy with byte counts scaled by ``factor``."""
        return FlowSet(self.src, self.dst, self.nbytes * factor, self.cls)


@dataclass(frozen=True)
class FluidParams:
    """Solver configuration."""

    k_min: int = 6
    k_nonmin: int = 4
    n_iter: int = 8
    damping: float = 0.5
    min_timescale: float = 1e-5
    policy: PolicyParams = DEFAULT_POLICY
    congestion: CongestionModel = field(default_factory=CongestionModel)
    latency: LatencyModel = field(default_factory=LatencyModel)
    #: mean |Δx| of the split update between the last two iterations
    #: below which the solve is classified converged.  The mean is the
    #: criterion (the max is dominated by a handful of flows sitting on a
    #: decision boundary and is reported separately as the residual).
    #: The solver always runs ``n_iter`` iterations — the tolerance only
    #: classifies the result, it never changes the numbers.
    convergence_tol: float = 0.05

    def __post_init__(self) -> None:
        if not (0.0 <= self.damping < 1.0):
            raise ValueError("damping must be in [0, 1)")
        if self.n_iter < 1:
            raise ValueError("n_iter must be >= 1")
        if self.convergence_tol <= 0:
            raise ValueError("convergence_tol must be > 0")


@dataclass
class FluidResult:
    """Resolved state of one phase."""

    flows: FlowSet
    phase_time: float
    flow_time: np.ndarray
    flow_latency: np.ndarray
    flow_latency_ambient: np.ndarray
    flow_latency_worst: np.ndarray
    flow_hops: np.ndarray
    min_fraction: np.ndarray
    link_load: np.ndarray
    link_util: np.ndarray
    link_raw_util: np.ndarray
    link_flits: np.ndarray
    link_stalls: np.ndarray
    timescale: float
    #: solver diagnostics.  ``residual`` is the final max |Δx| of the
    #: split update; ``residual_mean`` the final mean |Δx| (the
    #: convergence criterion, see :attr:`FluidParams.convergence_tol`).
    #: Empty phases converge trivially.
    converged: bool = True
    iterations: int = 0
    residual: float = 0.0
    residual_mean: float = 0.0

    def utilization_field(self) -> np.ndarray:
        """Per-link utilization (for use as another solve's background)."""
        return self.link_util

    def accumulate_counters(self, bank: CounterBank, top: DragonflyTopology) -> None:
        """Scatter this phase's flit/stall increments into a counter bank."""
        active = np.flatnonzero(self.link_flits > 0)
        if active.size == 0:
            return
        cls = top.link_class[active]
        net = active[cls <= 2]
        bank.add_network_link_counts(net, self.link_flits[net], self.link_stalls[net])

        # processor tiles: request VC carries the bulk (Put) data on both
        # injection and ejection; response VC carries per-packet acks.
        nodes = np.arange(top.n_nodes)
        inj = top.injection_link(nodes)
        eje = top.ejection_link(nodes)
        req_flits = self.link_flits[inj] + self.link_flits[eje]
        req_stalls = self.link_stalls[inj] + self.link_stalls[eje]
        rsp_flits = (self.link_load[inj] + self.link_load[eje]) / PACKET_BYTES
        # the paper: "the routing does not affect the response traffic" —
        # responses are tiny and rarely blocked.
        rsp_stalls = 0.02 * rsp_flits
        used = (req_flits > 0) | (rsp_flits > 0)
        if used.any():
            bank.add_proc_counts(
                nodes[used],
                req_flits[used],
                req_stalls[used],
                rsp_flits[used],
                rsp_stalls[used],
            )


def _side_arrays(bundle: PathBundle, n_flows: int):
    """Precompute gather/scatter helpers for one path bundle."""
    valid = bundle.links >= 0
    safe_links = np.where(valid, bundle.links, 0)
    count = np.bincount(bundle.flow, minlength=n_flows).astype(np.float64)
    return valid, safe_links, count


def _flow_min(values: np.ndarray, flow: np.ndarray, n_flows: int) -> np.ndarray:
    """Per-flow minimum of sub-path values."""
    out = np.full(n_flows, np.inf)
    np.minimum.at(out, flow, values)
    return out


def _flow_max(values: np.ndarray, flow: np.ndarray, n_flows: int) -> np.ndarray:
    """Per-flow maximum of sub-path values."""
    out = np.zeros(n_flows)
    np.maximum.at(out, flow, values)
    return out


def _flow_mean(values: np.ndarray, flow: np.ndarray, count: np.ndarray) -> np.ndarray:
    """Per-flow mean of sub-path values."""
    out = np.zeros(count.size)
    np.add.at(out, flow, values)
    return out / np.maximum(count, 1.0)


def _flow_weighted_sum(values: np.ndarray, flow: np.ndarray, n_flows: int) -> np.ndarray:
    """Per-flow sum of (already weighted) sub-path values."""
    out = np.zeros(n_flows)
    np.add.at(out, flow, values)
    return out


def _visible_links(links: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The first two router-output links of each sub-path.

    Aries routing decisions use *local* load estimates: the source
    router's output-tile queues (and, through credit backpressure, a
    shadow of the next hop) — not the whole path.  The decision scores
    therefore see only these links; distant congestion on a candidate is
    invisible at decision time, which is precisely why an unbiased
    comparison (AD0) wanders onto non-minimal routes that turn out to be
    congested downstream (the paper's core observation).

    Returns ``(link1, has1, link2, has2)``; injection (column 0) and
    ejection (last column) are excluded.
    """
    body = links[:, 1:-1]
    valid = body >= 0
    rows = np.arange(body.shape[0])
    i1 = np.argmax(valid, axis=1)
    has1 = valid.any(axis=1)
    l1 = np.where(has1, body[rows, i1], 0)
    valid2 = valid.copy()
    valid2[rows, i1] = False
    i2 = np.argmax(valid2, axis=1)
    has2 = valid2.any(axis=1)
    l2 = np.where(has2, body[rows, i2], 0)
    return l1, has1, l2, has2


def _softmin_weights(
    scores: np.ndarray, flow: np.ndarray, n_flows: int, temp: float
) -> np.ndarray:
    """Softmin weights within each flow's candidate group.

    ``exp(-(score - group_min) / temp)`` normalized per group: candidates
    near the group's best share the traffic, clearly-worse ones are
    avoided — the fluid analogue of per-packet adaptive candidate choice.
    """
    m = _flow_min(scores, flow, n_flows)
    e = np.exp(-np.minimum((scores - m[flow]) / temp, 60.0))
    s = np.zeros(n_flows)
    np.add.at(s, flow, e)
    return e / s[flow]


def solve_fluid(
    top: DragonflyTopology,
    flows: FlowSet,
    modes: list[RoutingMode],
    *,
    background_util: np.ndarray | None = None,
    rng: np.random.Generator,
    params: FluidParams | None = None,
    fixed_duration: float | None = None,
    min_duration: float = 0.0,
    telemetry: Telemetry | None = None,
) -> FluidResult:
    """Resolve one phase to its routing/congestion equilibrium.

    Parameters
    ----------
    flows:
        The phase's byte demands.  ``flows.cls`` indexes into ``modes``.
    modes:
        Routing mode per traffic class.
    background_util:
        Optional per-link ambient utilization in [0, 1) from other
        system activity (production noise).  Reduces effective capacity
        and inflates queueing.
    fixed_duration:
        When given, the phase timescale is pinned (rate mode): loads are
        interpreted as bytes over that window.  Used to build background
        utilization fields from byte *rates*.
    min_duration:
        Utilization-timescale floor for phases whose traffic is known to
        be spread over a wall-clock window (see
        :attr:`repro.mpi.patterns.Phase.spread_time`).  Ignored when
        ``fixed_duration`` is set.  Link drain times (and therefore flow
        completion times) are unaffected.
    rng:
        Drives path sampling only.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`; defaults to the
        ambient handle (a null sink unless the CLI installed one).
    """
    params = params or FluidParams()
    tel = resolve_telemetry(telemetry)
    # None unless a GuardPolicy is active (campaign-installed or
    # $REPRO_GUARD); the unguarded path costs this one call per solve
    guard = active_guard()
    t_start = time.perf_counter() if tel.enabled else 0.0
    cm = params.congestion
    lm = params.latency
    n = flows.n
    cap = top.capacity

    bg = np.zeros(top.n_links) if background_util is None else np.asarray(background_util)
    if bg.shape != (top.n_links,):
        raise ValueError(f"background_util must have shape ({top.n_links},)")
    # the floor reflects that a job's bursts still win a minimum share on
    # a background-busy link (the background is itself adaptive and backs
    # off); production hotspots are also transient rather than run-long.
    cap_eff = cap * np.clip(1.0 - bg, 0.25, 1.0)

    if n == 0:
        zero = np.zeros(0)
        return FluidResult(
            flows=flows,
            phase_time=0.0,
            flow_time=zero,
            flow_latency=zero,
            flow_latency_ambient=zero,
            flow_latency_worst=zero,
            flow_hops=zero,
            min_fraction=zero,
            link_load=np.zeros(top.n_links),
            link_util=bg.copy(),
            link_raw_util=bg.copy(),
            link_flits=np.zeros(top.n_links),
            link_stalls=np.zeros(top.n_links),
            timescale=fixed_duration or 0.0,
        )

    if max(flows.cls.max(), 0) >= len(modes):
        raise ValueError("flow class index out of range of modes list")

    pmin = cached_minimal_paths(top, flows.src, flows.dst, k=params.k_min, rng=rng)
    pnon = cached_valiant_paths(top, flows.src, flows.dst, k=params.k_nonmin, rng=rng)
    vmin, lmin, cnt_min = _side_arrays(pmin, n)
    vnon, lnon, cnt_non = _side_arrays(pnon, n)
    hops_sub_min = pmin.router_hops.astype(np.float64)
    hops_sub_non = pnon.router_hops.astype(np.float64)
    # UGAL-style hop component of the load estimate: longer candidates
    # carry more downstream queue even when idle, so at zero load every
    # biased mode prefers minimal while AD0 stays close to indifferent.
    bias_min = params.policy.hop_bias * hops_sub_min
    bias_non = params.policy.hop_bias * hops_sub_non
    # local visibility window of the routing decision (see _visible_links)
    m1_l, m1_h, m2_l, m2_h = _visible_links(pmin.links)
    n1_l, n1_h, n2_l, n2_h = _visible_links(pnon.links)

    x = np.full(n, 0.75)  # initial lean toward minimal (zero-load preference)
    w_sub_min = np.broadcast_to((1.0 / np.maximum(cnt_min, 1.0))[pmin.flow], pmin.flow.shape).copy()
    w_sub_non = np.broadcast_to((1.0 / np.maximum(cnt_non, 1.0))[pnon.flow], pnon.flow.shape).copy()
    load = np.zeros(top.n_links)
    util = bg.copy()
    T = fixed_duration or params.min_timescale

    inv_cap_eff = np.divide(1.0, cap_eff, out=np.zeros_like(cap_eff), where=cap_eff > 0)
    adaptive_temp = params.policy.adaptive_temp

    residual = 0.0
    residual_mean = 0.0
    iters_to_tol: int | None = None
    for it in range(params.n_iter):
        # 1. per-link loads from the current side splits and within-side
        #    adaptive weights
        w_min = (flows.nbytes * x)[pmin.flow] * w_sub_min
        w_non = (flows.nbytes * (1.0 - x))[pnon.flow] * w_sub_non
        load[:] = 0.0
        np.add.at(load, lmin[vmin], np.broadcast_to(w_min[:, None], vmin.shape)[vmin])
        np.add.at(load, lnon[vnon], np.broadcast_to(w_non[:, None], vnon.shape)[vnon])

        # 2. timescale and utilizations
        t_link = load * inv_cap_eff
        if fixed_duration is None:
            T = max(float(t_link.max()), params.min_timescale, min_duration)
        else:
            T = fixed_duration
        util = np.clip(load / (np.maximum(cap, 1.0) * T), 0.0, 1.5) + bg

        # 3. two kinds of scores.
        #    (a) full-path scores drive the *within-side* candidate
        #        weights: per-hop adaptivity lets every router on the way
        #        steer packets off its hot output tiles, so over the whole
        #        path the candidate set is effectively load-aware;
        s_min_full = np.where(vmin, util[lmin], 0.0).sum(axis=1) + bias_min
        s_non_full = np.where(vnon, util[lnon], 0.0).sum(axis=1) + bias_non
        w_sub_min = _softmin_weights(s_min_full, pmin.flow, n, adaptive_temp)
        w_sub_non = _softmin_weights(s_non_full, pnon.flow, n, adaptive_temp)

        #    (b) the minimal-vs-non-minimal *side* decision is made once,
        #        near the source, from locally visible load only — distant
        #        congestion on a non-minimal detour is invisible to it
        #        (the paper's core deficiency of unbiased adaptive routing)
        s_min_loc = util[m1_l] * m1_h + util[m2_l] * m2_h + bias_min
        s_non_loc = util[n1_l] * n1_h + util[n2_l] * n2_h + bias_non
        score_min = _flow_min(s_min_loc, pmin.flow, n)
        score_non = _flow_min(s_non_loc, pnon.flow, n)

        # 4. biased split per traffic class
        x_new = np.empty(n)
        for ci, mode in enumerate(modes):
            sel = flows.cls == ci
            if sel.any():
                x_new[sel] = split_fraction(mode, score_min[sel], score_non[sel], params.policy)
        x_prev = x
        x = params.damping * x + (1.0 - params.damping) * x_new
        dx = np.abs(x - x_prev)
        residual = float(dx.max())
        residual_mean = float(dx.mean())
        if iters_to_tol is None and residual_mean <= params.convergence_tol:
            iters_to_tol = it + 1

        if guard is not None:
            # cooperative budget/deadline enforcement + NaN/Inf monitors;
            # runs after the split update so a diverging iterate is
            # caught in the same iteration it appears
            guard.tick_iterations(1, where="fluid.solve")
            if guard.check_invariants:
                check_fluid_iterate(guard, it, x, load)

    # ---- final extraction ------------------------------------------------
    t_link = load * inv_cap_eff
    if fixed_duration is None:
        T = max(float(t_link.max()), params.min_timescale, min_duration)
    raw_util = load / (np.maximum(cap, 1.0) * T) + bg
    util = np.clip(raw_util, 0.0, 1.0)

    # flow completion: each side finishes when the slowest *meaningfully
    # used* sub-path's bottleneck link drains; the flow when its slower
    # used side does.
    t_sub_min = np.where(vmin, t_link[lmin], 0.0).max(axis=1)
    t_sub_non = np.where(vnon, t_link[lnon], 0.0).max(axis=1)
    # sub-paths the adaptive weighting has suppressed carry few of the
    # flow's packets and do not gate its completion
    used_min_sub = w_sub_min > 0.15
    used_non_sub = w_sub_non > 0.15
    t_min_flow = _flow_max(t_sub_min * used_min_sub, pmin.flow, n)
    t_non_flow = _flow_max(t_sub_non * used_non_sub, pnon.flow, n)
    used_non = x < 0.995
    flow_time = np.where(used_non, np.maximum(t_min_flow * (x > 0.005), t_non_flow), t_min_flow)

    # per-packet latency: base + queueing along the path, weighted by the
    # side split and the within-side weights
    def _latency_at(util_field: np.ndarray) -> np.ndarray:
        qd_link = cm.queue_delay(util_field, cap)
        qd_sub_min = np.where(vmin, qd_link[lmin], 0.0).sum(axis=1)
        qd_sub_non = np.where(vnon, qd_link[lnon], 0.0).sum(axis=1)
        lat_min = _flow_weighted_sum(
            (lm.base_latency(hops_sub_min) + qd_sub_min) * w_sub_min, pmin.flow, n
        )
        lat_non = _flow_weighted_sum(
            (lm.base_latency(hops_sub_non) + qd_sub_non) * w_sub_non, pnon.flow, n
        )
        return x * lat_min + (1.0 - x) * lat_non

    flow_latency = _latency_at(util)
    # latency against ambient (background) traffic only: what a message
    # experiences once the phase's own burst has drained around it
    flow_latency_ambient = _latency_at(bg)

    # worst-packet latency: the slowest used sub-path of any used side —
    # what a globally synchronizing collective round actually waits for
    qd_link_amb = cm.queue_delay(bg, cap)
    lat_sub_min = lm.base_latency(hops_sub_min) + np.where(vmin, qd_link_amb[lmin], 0.0).sum(axis=1)
    lat_sub_non = lm.base_latency(hops_sub_non) + np.where(vnon, qd_link_amb[lnon], 0.0).sum(axis=1)
    lat_max_min = _flow_max(lat_sub_min * (w_sub_min > 0.05), pmin.flow, n)
    lat_max_non = _flow_max(lat_sub_non * (w_sub_non > 0.05), pnon.flow, n)
    # a side only contributes its worst path when it carries a meaningful
    # share of the flow's packets (a strongly-biased mode's few stray
    # non-minimal packets do not gate every collective round)
    flow_latency_worst = np.maximum(
        lat_max_min * (x > 0.15), lat_max_non * (x < 0.85)
    )
    hops_min = _flow_weighted_sum(hops_sub_min * w_sub_min, pmin.flow, n)
    hops_non = _flow_weighted_sum(hops_sub_non * w_sub_non, pnon.flow, n)
    flow_hops = x * hops_min + (1.0 - x) * hops_non

    # counters: stalls follow the congestion curve; saturated links
    # additionally inflate flits (retransmission / backpressure
    # re-injection -- the Fig. 12 effect), and that backpressure
    # propagates upstream into the injecting NICs as processor-tile
    # request stalls (Fig. 6 / Fig. 12's higher Proc stalls under strong
    # minimal bias).
    sr = cm.stall_ratio(util)
    bp = cm.backpressure_factor(raw_util) * (1.0 + 0.6 * sr / cm.stall_cap)
    link_flits = load / FLIT_BYTES * bp
    link_stalls = link_flits * sr

    # congestion spreading (the paper's own conclusion: "non-minimal
    # routing can end up spreading the congestion"): a flow that crosses
    # a saturated link exhausts credits back along its *whole* path, so
    # every upstream link it uses — including its injection tile —
    # accrues stalls proportional to the worst downstream congestion.
    # Long (Valiant) paths spread that backpressure over more links.
    coupling = cm.backpressure_inj_coupling
    sr_sub_min = np.where(vmin, sr[lmin], 0.0).max(axis=1)
    sr_sub_non = np.where(vnon, sr[lnon], 0.0).max(axis=1)
    w_min_final = (flows.nbytes * x)[pmin.flow] * w_sub_min
    w_non_final = (flows.nbytes * (1.0 - x))[pnon.flow] * w_sub_non
    extra_min = w_min_final / FLIT_BYTES * coupling * sr_sub_min
    extra_non = w_non_final / FLIT_BYTES * coupling * sr_sub_non
    np.add.at(
        link_stalls,
        lmin[vmin],
        np.broadcast_to(extra_min[:, None], vmin.shape)[vmin],
    )
    np.add.at(
        link_stalls,
        lnon[vnon],
        np.broadcast_to(extra_non[:, None], vnon.shape)[vnon],
    )

    if guard is not None and guard.check_invariants:
        check_fluid_result(guard, top, load, link_flits, link_stalls, flow_time)

    converged = residual_mean <= params.convergence_tol
    if not converged and fixed_duration is None:
        # rate-mode (fixed_duration) solves build deliberately coarse,
        # clipped background fields and are expected to stay unsettled on
        # overloaded links; only equilibrium results feed calibration and
        # campaign statistics, so only those warn.
        warnings.warn(
            f"fluid solver hit the {params.n_iter}-iteration cap with mean "
            f"split residual {residual_mean:.2g} > tol "
            f"{params.convergence_tol:g} (max {residual:.2g}, {n} flows); "
            f"result may be off-equilibrium",
            NonConvergenceWarning,
            stacklevel=2,
        )

    if tel.enabled:
        wall = time.perf_counter() - t_start
        links_saturated = int((raw_util >= 1.0).sum())
        m = tel.metrics
        if m.enabled:
            m.counter("fluid_solves_total", "fluid solver invocations").inc()
            if not converged:
                m.counter(
                    "fluid_nonconverged_total", "solves that hit the iteration cap"
                ).inc()
            m.histogram("fluid_solve_seconds", "wall time per solve").observe(wall)
            m.histogram(
                "fluid_solve_residual",
                "final mean |dx| of the split update",
                buckets=(1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0),
            ).observe(residual_mean)
            m.gauge(
                "fluid_links_saturated", "links at/above capacity in the last solve"
            ).set(links_saturated)
        tel.event(
            "fluid.solve",
            flows=n,
            iterations=params.n_iter,
            residual=residual,
            residual_mean=residual_mean,
            converged=converged,
            iters_to_tol=iters_to_tol,
            phase_time=float(T if fixed_duration is None else t_link.max()),
            timescale=float(T),
            links_saturated=links_saturated,
            max_util=float(raw_util.max()),
            min_fraction_mean=float(x.mean()),
            wall_ms=wall * 1e3,
        )

    return FluidResult(
        flows=flows,
        phase_time=float(T if fixed_duration is None else t_link.max()),
        flow_time=flow_time,
        flow_latency=flow_latency,
        flow_latency_ambient=flow_latency_ambient,
        flow_latency_worst=flow_latency_worst,
        flow_hops=flow_hops,
        min_fraction=x,
        link_load=load,
        link_util=util,
        link_raw_util=raw_util,
        link_flits=link_flits,
        link_stalls=link_stalls,
        timescale=T,
        converged=converged,
        iterations=params.n_iter,
        residual=residual,
        residual_mean=residual_mean,
    )
