"""Unit and behavioral tests for the fluid congestion engine."""

import numpy as np
import pytest

from repro.core.biases import AD0, AD1, AD2, AD3
from repro.network.counters import CounterBank
from repro.network.fluid import FlowSet, FluidParams, solve_fluid


def _perm_flows(top, rng, n=128, nbytes=1.2e6):
    nodes = rng.choice(top.n_nodes, n, replace=False)
    perm = rng.permutation(n)
    fix = perm == np.arange(n)
    perm[fix] = (perm[fix] + 1) % n
    return FlowSet(nodes, nodes[perm], np.full(n, nbytes), np.zeros(n, dtype=np.int64))


class TestFlowSet:
    def test_validation_self_flow(self):
        with pytest.raises(ValueError, match="self-flows"):
            FlowSet(np.array([1]), np.array([1]), np.array([8.0]), np.array([0]))

    def test_validation_length_mismatch(self):
        with pytest.raises(ValueError):
            FlowSet(np.array([1, 2]), np.array([3]), np.array([8.0]), np.array([0]))

    def test_validation_negative_bytes(self):
        with pytest.raises(ValueError, match="negative"):
            FlowSet(np.array([1]), np.array([2]), np.array([-8.0]), np.array([0]))

    def test_empty(self):
        fl = FlowSet.empty()
        assert fl.n == 0

    def test_concat(self):
        a = FlowSet(np.array([0]), np.array([1]), np.array([8.0]), np.array([0]))
        b = FlowSet(np.array([2]), np.array([3]), np.array([16.0]), np.array([1]))
        c = FlowSet.concat([a, b])
        assert c.n == 2
        assert c.nbytes.sum() == 24

    def test_concat_empty_parts(self):
        assert FlowSet.concat([]).n == 0
        assert FlowSet.concat([FlowSet.empty()]).n == 0

    def test_with_class_and_scaled(self):
        a = FlowSet(np.array([0, 1]), np.array([2, 3]), np.array([8.0, 8.0]), np.array([0, 0]))
        b = a.with_class(3).scaled(2.0)
        assert (b.cls == 3).all()
        assert b.nbytes.sum() == 32


class TestSolveFluid:
    def test_empty_flows(self, theta_top, rng):
        res = solve_fluid(theta_top, FlowSet.empty(), [AD0], rng=rng)
        assert res.phase_time == 0.0
        assert res.link_load.sum() == 0

    def test_class_out_of_range(self, theta_top, rng):
        fl = FlowSet(np.array([0]), np.array([5]), np.array([8.0]), np.array([1]))
        with pytest.raises(ValueError, match="class index"):
            solve_fluid(theta_top, fl, [AD0], rng=rng)

    def test_background_shape_checked(self, theta_top, rng):
        fl = _perm_flows(theta_top, rng, 16)
        with pytest.raises(ValueError, match="background_util"):
            solve_fluid(theta_top, fl, [AD0], background_util=np.zeros(3), rng=rng)

    def test_load_conservation_minimal_only(self, theta_top, rng):
        """Under a fully-minimal split, injection-link loads must equal the
        per-source byte demands exactly."""
        fl = _perm_flows(theta_top, rng, 64)
        res = solve_fluid(theta_top, fl, [AD3], rng=rng)
        inj = theta_top.injection_link(fl.src)
        expected = np.zeros(theta_top.n_links)
        np.add.at(expected, inj, fl.nbytes)
        sel = expected > 0
        np.testing.assert_allclose(res.link_load[sel], expected[sel], rtol=1e-9)

    def test_ejection_load_conservation(self, theta_top, rng):
        fl = _perm_flows(theta_top, rng, 64)
        res = solve_fluid(theta_top, fl, [AD0], rng=rng)
        eje = theta_top.ejection_link(fl.dst)
        expected = np.zeros(theta_top.n_links)
        np.add.at(expected, eje, fl.nbytes)
        sel = expected > 0
        np.testing.assert_allclose(res.link_load[sel], expected[sel], rtol=1e-9)

    def test_ad3_more_minimal_than_ad0(self, theta_top, rng):
        fl = _perm_flows(theta_top, rng)
        r0 = solve_fluid(theta_top, fl, [AD0], rng=np.random.default_rng(0))
        r3 = solve_fluid(theta_top, fl, [AD3], rng=np.random.default_rng(0))
        assert r3.min_fraction.mean() > r0.min_fraction.mean()
        assert r3.min_fraction.mean() > 0.9

    def test_mode_ordering_in_min_fraction(self, theta_top, rng):
        fl = _perm_flows(theta_top, rng)
        fracs = {}
        for mode in (AD0, AD1, AD2, AD3):
            res = solve_fluid(theta_top, fl, [mode], rng=np.random.default_rng(0))
            fracs[mode.name] = res.min_fraction.mean()
        assert fracs["AD0"] <= fracs["AD1"] <= fracs["AD3"] + 0.05
        assert fracs["AD0"] < fracs["AD3"]

    def test_ad3_fewer_flits(self, theta_top, rng):
        # minimal bias -> fewer hops -> fewer total flit transmissions
        fl = _perm_flows(theta_top, rng)
        r0 = solve_fluid(theta_top, fl, [AD0], rng=np.random.default_rng(0))
        r3 = solve_fluid(theta_top, fl, [AD3], rng=np.random.default_rng(0))
        assert r3.link_flits.sum() < r0.link_flits.sum()

    def test_bisection_bound_prefers_ad0_when_idle(self, theta_top, rng):
        # large random-pair messages on an idle network: non-minimal
        # spreading gives more bandwidth (the HACC effect)
        fl = _perm_flows(theta_top, rng, n=256, nbytes=4e6)
        r0 = solve_fluid(theta_top, fl, [AD0], rng=np.random.default_rng(0))
        r3 = solve_fluid(theta_top, fl, [AD3], rng=np.random.default_rng(0))
        assert r0.phase_time <= r3.phase_time * 1.05

    def test_latency_grows_with_background(self, theta_top, rng):
        fl = _perm_flows(theta_top, rng, 64, nbytes=8.0)
        quiet = solve_fluid(theta_top, fl, [AD0], rng=np.random.default_rng(0))
        bg = np.full(theta_top.n_links, 0.5)
        noisy = solve_fluid(
            theta_top, fl, [AD0], background_util=bg, rng=np.random.default_rng(0)
        )
        assert noisy.flow_latency.mean() > quiet.flow_latency.mean()

    def test_ambient_latency_below_full_latency(self, theta_top, rng):
        fl = _perm_flows(theta_top, rng, 128, nbytes=2e6)
        res = solve_fluid(theta_top, fl, [AD0], rng=rng)
        assert res.flow_latency_ambient.mean() <= res.flow_latency.mean() + 1e-12

    def test_worst_latency_at_least_mean(self, theta_top, rng):
        fl = _perm_flows(theta_top, rng, 64, nbytes=8.0)
        bg = np.clip(np.abs(np.random.default_rng(1).normal(0.2, 0.2, theta_top.n_links)), 0, 0.9)
        res = solve_fluid(theta_top, fl, [AD0], background_util=bg, rng=rng)
        assert res.flow_latency_worst.mean() >= res.flow_latency_ambient.mean() * 0.99

    def test_min_duration_reduces_utilization(self, theta_top, rng):
        fl = _perm_flows(theta_top, rng, 128)
        burst = solve_fluid(theta_top, fl, [AD0], rng=np.random.default_rng(0))
        spread = solve_fluid(
            theta_top, fl, [AD0], rng=np.random.default_rng(0), min_duration=1.0
        )
        assert spread.link_util.max() < burst.link_util.max()
        assert spread.link_stalls.sum() < burst.link_stalls.sum()

    def test_fixed_duration_rate_mode(self, theta_top, rng):
        fl = _perm_flows(theta_top, rng, 64, nbytes=1e9)
        res = solve_fluid(theta_top, fl, [AD0], rng=rng, fixed_duration=1.0)
        assert res.timescale == 1.0
        # 1 GB/s over a ~5 GB/s NIC: injection util ~0.2
        inj = theta_top.injection_link(fl.src)
        assert 0.1 < res.link_util[inj].mean() < 0.4

    def test_flow_times_positive(self, theta_top, rng):
        fl = _perm_flows(theta_top, rng, 64)
        res = solve_fluid(theta_top, fl, [AD0], rng=rng)
        assert (res.flow_time > 0).all()
        assert res.phase_time >= res.flow_time.max() * 0.999

    def test_deterministic_given_rng(self, theta_top, rng):
        fl = _perm_flows(theta_top, rng, 64)
        a = solve_fluid(theta_top, fl, [AD0], rng=np.random.default_rng(3))
        b = solve_fluid(theta_top, fl, [AD0], rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a.link_load, b.link_load)
        np.testing.assert_array_equal(a.min_fraction, b.min_fraction)

    def test_per_class_modes(self, theta_top, rng):
        # two classes with opposite biases should split differently
        base = _perm_flows(theta_top, rng, 64)
        both = FlowSet.concat([base.with_class(0), base.with_class(1)])
        res = solve_fluid(theta_top, both, [AD0, AD3], rng=rng)
        x0 = res.min_fraction[:64].mean()
        x3 = res.min_fraction[64:].mean()
        assert x3 > x0

    def test_counter_accumulation(self, theta_top, rng):
        fl = _perm_flows(theta_top, rng, 64)
        res = solve_fluid(theta_top, fl, [AD0], rng=rng)
        bank = CounterBank(theta_top)
        res.accumulate_counters(bank, theta_top)
        snap = bank.snapshot()
        assert snap.total_flits() > 0
        # request flits include both injection and ejection sides
        assert snap.flits["proc_req"].sum() == pytest.approx(
            (res.link_flits[theta_top.injection_link(np.arange(theta_top.n_nodes))].sum()
             + res.link_flits[theta_top.ejection_link(np.arange(theta_top.n_nodes))].sum())
        )

    def test_params_validation(self):
        with pytest.raises(ValueError):
            FluidParams(damping=1.0)
        with pytest.raises(ValueError):
            FluidParams(n_iter=0)
