"""Cross-validation of the fluid solver against the packet simulator.

The fluid engine approximates what the packet engine simulates.  On
small systems the two must agree on the *qualitative* routing physics:
which mode routes more minimally, how contention slows transfers, and
where stalls appear.
"""

import numpy as np
import pytest

from repro.core.biases import AD0, AD3
from repro.network.fluid import FlowSet, solve_fluid
from repro.network.packet_sim import InjectionSpec, PacketSimConfig, PacketSimulator


def _cross_traffic(top):
    """Group-0 -> group-1 streams: 8 pairs, 32 KiB each."""
    src = np.arange(8)
    dst = np.arange(16, 24)
    nbytes = 32 * 1024
    return src, dst, nbytes


@pytest.fixture(scope="module")
def engines(request):
    from repro.topology.systems import toy

    top = toy()
    out = {}
    for mode in (AD0, AD3):
        src, dst, nbytes = _cross_traffic(top)
        fl = FlowSet(src, dst, np.full(8, float(nbytes)), np.zeros(8, dtype=np.int64))
        fluid = solve_fluid(top, fl, [mode], rng=np.random.default_rng(0))

        sim = PacketSimulator(top, PacketSimConfig(), rng=np.random.default_rng(0))
        mids = [
            sim.add_message(InjectionSpec(src=int(s), dst=int(d), nbytes=nbytes, mode=mode))
            for s, d in zip(src, dst)
        ]
        sim.run()
        out[mode.name] = (fluid, sim, mids)
    return top, out


class TestEnginesAgree:
    def test_minimal_fraction_ordering(self, engines):
        _, out = engines
        fluid_frac = {m: out[m][0].min_fraction.mean() for m in out}
        sim_frac = {}
        for m in out:
            sim = out[m][1]
            mn = sum(s.min_packets for s in sim.messages)
            nm = sum(s.nonmin_packets for s in sim.messages)
            sim_frac[m] = mn / (mn + nm)
        # both engines: AD3 more minimal than AD0
        assert fluid_frac["AD3"] > fluid_frac["AD0"]
        assert sim_frac["AD3"] > sim_frac["AD0"]

    def test_ad3_near_fully_minimal_in_both(self, engines):
        _, out = engines
        fluid, sim, _ = out["AD3"]
        assert fluid.min_fraction.mean() > 0.85
        mn = sum(s.min_packets for s in sim.messages)
        nm = sum(s.nonmin_packets for s in sim.messages)
        assert mn / (mn + nm) > 0.85

    def test_completion_times_same_scale(self, engines):
        # fluid flow times and packet-sim message latencies should agree
        # within a small factor (both are dominated by the same 32 KiB
        # cross-group serialization)
        _, out = engines
        for m in out:
            fluid, sim, mids = out[m]
            t_fluid = fluid.flow_time.max()
            t_sim = max(sim.messages[i].latency(sim.config.step_time) for i in mids)
            assert t_fluid == pytest.approx(t_sim, rel=2.0)

    def test_both_engines_count_flits(self, engines):
        top, out = engines
        for m in out:
            fluid, sim, _ = out[m]
            net = top.link_class <= 2
            assert fluid.link_flits[net].sum() > 0
            assert sim.flits[net].sum() > 0

    def test_flit_counts_same_scale(self, engines):
        # total network flits: same traffic, so within ~2x of each other
        top, out = engines
        net = top.link_class <= 2
        for m in out:
            fluid, sim, _ = out[m]
            ratio = fluid.link_flits[net].sum() / sim.flits[net].sum()
            assert 0.4 < ratio < 2.5

    def test_ad3_fewer_network_flits_in_both(self, engines):
        top, out = engines
        net = top.link_class <= 2
        f = {m: out[m][0].link_flits[net].sum() for m in out}
        s = {m: out[m][1].flits[net].sum() for m in out}
        assert f["AD3"] <= f["AD0"] * 1.02
        assert s["AD3"] <= s["AD0"] * 1.02


class TestContentionAgreement:
    def test_incast_slows_both_engines(self):
        from repro.topology.systems import toy

        top = toy()
        # free-flowing pair vs 6-way incast to node 31
        fl_free = FlowSet(np.array([0]), np.array([31]), np.array([16384.0]), np.array([0]))
        r_free = solve_fluid(top, fl_free, [AD0], rng=np.random.default_rng(1))

        src = np.arange(6)
        fl_incast = FlowSet(src, np.full(6, 31), np.full(6, 16384.0), np.zeros(6, dtype=np.int64))
        r_incast = solve_fluid(top, fl_incast, [AD0], rng=np.random.default_rng(1))
        assert r_incast.flow_time.max() > r_free.flow_time.max()

        sim_free = PacketSimulator(top, rng=np.random.default_rng(1))
        sim_free.add_message(InjectionSpec(src=0, dst=31, nbytes=16384, mode=AD0))
        sim_free.run()
        t_free = sim_free.messages[0].latency(sim_free.config.step_time)

        sim_in = PacketSimulator(top, rng=np.random.default_rng(1))
        for s in range(6):
            sim_in.add_message(InjectionSpec(src=s, dst=31, nbytes=16384, mode=AD0))
        sim_in.run()
        t_in = max(m.latency(sim_in.config.step_time) for m in sim_in.messages)
        assert t_in > t_free

        # and the slowdown factors agree in scale (ejection serialization
        # of 6 messages ~ 6x)
        slow_fluid = r_incast.flow_time.max() / r_free.flow_time.max()
        slow_sim = t_in / t_free
        assert slow_fluid == pytest.approx(slow_sim, rel=0.8)
