"""Unit/integration tests for the run harness and campaigns."""

import numpy as np
import pytest

from repro.apps import MILC, LatencyBound
from repro.core.biases import AD0, AD3
from repro.core.experiment import (
    CampaignConfig,
    mask_endpoint_background,
    resolve_phase,
    run_app_once,
    run_campaign,
    runtimes_by_mode,
    stats_by_mode,
)
from repro.mpi.env import RoutingEnv
from repro.util import derive_rng


class TestMaskEndpointBackground:
    def test_zeroes_only_own_nics(self, theta_top):
        bg = np.full(theta_top.n_links, 0.5)
        nodes = np.arange(10)
        out = mask_endpoint_background(theta_top, bg, nodes)
        assert (out[theta_top.injection_link(nodes)] == 0).all()
        assert (out[theta_top.ejection_link(nodes)] == 0).all()
        other = theta_top.injection_link(np.arange(20, 30))
        assert (out[other] == 0.5).all()

    def test_original_untouched(self, theta_top):
        bg = np.full(theta_top.n_links, 0.5)
        mask_endpoint_background(theta_top, bg, np.arange(5))
        assert (bg == 0.5).all()


class TestResolvePhase:
    def test_op_times_cover_comm_time(self, theta_top, rng):
        app = MILC()
        phases = app.phases(np.arange(256), rng)
        pt = resolve_phase(
            theta_top, phases[0], RoutingEnv(), background_util=None, rng=rng
        )
        assert pt.comm_time == pytest.approx(sum(pt.op_times.values()))

    def test_collective_phase_attribution(self, theta_top, rng):
        app = MILC()
        phases = app.phases(np.arange(256), rng)
        pt = resolve_phase(
            theta_top, phases[1], RoutingEnv(), background_util=None, rng=rng
        )
        assert set(pt.op_times) == {"MPI_Allreduce"}
        assert pt.op_calls["MPI_Allreduce"] == app.allreduces_per_cg * app.cg_per_iter

    def test_stencil_wait_and_post(self, theta_top, rng):
        app = MILC()
        phases = app.phases(np.arange(256), rng)
        pt = resolve_phase(
            theta_top, phases[0], RoutingEnv(), background_util=None, rng=rng
        )
        assert "MPI_Wait" in pt.op_times
        assert "MPI_Isend" in pt.op_times
        assert pt.op_times["MPI_Wait"] > pt.op_times["MPI_Isend"]


class TestRunAppOnce:
    def test_runtime_composition(self, theta_top):
        app = MILC()
        rt, report, timings = run_app_once(
            theta_top,
            app,
            np.arange(256),
            RoutingEnv(),
            rng=derive_rng(0, "t1"),
        )
        assert rt > 0
        assert report.total_time == pytest.approx(rt)
        # runtime ~ iterations x (compute + comm), within noise
        per_iter = sum(p.compute_time for p in app.phases(np.arange(256), derive_rng(0, "t1"))) + sum(
            t.comm_time for t in timings
        )
        assert rt == pytest.approx(per_iter * app.n_iterations(256), rel=0.05)

    def test_counters_collected_by_default(self, theta_top):
        _, report, _ = run_app_once(
            theta_top, MILC(), np.arange(256), RoutingEnv(), rng=derive_rng(0, "t2")
        )
        assert report.counters is not None
        assert report.counters.total_flits() > 0

    def test_counters_optional(self, theta_top):
        _, report, _ = run_app_once(
            theta_top,
            MILC(),
            np.arange(256),
            RoutingEnv(),
            rng=derive_rng(0, "t3"),
            collect_counters=False,
        )
        assert report.counters is None

    def test_milc_top_ops_match_table1(self, theta_top):
        _, report, _ = run_app_once(
            theta_top, MILC(), np.arange(256), RoutingEnv(), rng=derive_rng(0, "t4")
        )
        assert set(report.top_ops(3)) == {"MPI_Allreduce", "MPI_Wait", "MPI_Isend"}

    def test_deterministic(self, theta_top):
        runs = [
            run_app_once(
                theta_top, MILC(), np.arange(256), RoutingEnv(), rng=derive_rng(7, "d")
            )[0]
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


class TestCampaign:
    def test_record_structure(self, milc_campaign):
        assert len(milc_campaign) == 5 * 2  # samples x modes
        modes = {r.mode for r in milc_campaign}
        assert modes == {"AD0", "AD3"}
        for r in milc_campaign:
            assert r.runtime > 0
            assert r.n_nodes == 256
            assert 1 <= r.groups <= 12
            assert r.report.mpi_fraction > 0

    def test_pairing_same_placement(self, milc_campaign):
        by_sample = {}
        for r in milc_campaign:
            by_sample.setdefault(r.sample_index, []).append(r)
        for recs in by_sample.values():
            assert len({r.groups for r in recs}) == 1
            assert len({r.background_intensity for r in recs}) == 1

    def test_runtimes_by_mode_filters(self, milc_campaign):
        raw = runtimes_by_mode(milc_campaign, filter_outliers=False)
        filt = runtimes_by_mode(milc_campaign)
        for m in raw:
            assert filt[m].size <= raw[m].size

    def test_stats_by_mode(self, milc_campaign):
        st = stats_by_mode(milc_campaign)
        assert st["AD0"].mean > 0
        assert st["AD0"].n >= 4

    def test_isolated_background(self, theta_top):
        cfg = CampaignConfig(
            app=LatencyBound(), samples=2, background="isolated", n_nodes=128
        )
        recs = run_campaign(theta_top, cfg)
        assert all(r.background_intensity == 0.0 for r in recs)

    def test_unknown_background_rejected(self, theta_top):
        cfg = CampaignConfig(app=MILC(), background="martian")
        with pytest.raises(ValueError):
            run_campaign(theta_top, cfg)

    def test_non_uniform_env(self, theta_top):
        # uniform_env=False keeps Alltoall on AD1 (Cray default)
        cfg = CampaignConfig(
            app=LatencyBound(),
            samples=1,
            background="isolated",
            n_nodes=64,
            modes=(AD3,),
            uniform_env=False,
        )
        recs = run_campaign(theta_top, cfg)
        assert len(recs) == 1
