"""Edge-case and failure-injection tests across the stack."""

import numpy as np
import pytest

from repro.apps import MILC, PRODUCTION_APPS
from repro.core.biases import AD0, AD3
from repro.core.experiment import run_app_once
from repro.mpi.env import RoutingEnv
from repro.network.fluid import FlowSet, FluidParams, solve_fluid
from repro.util import derive_rng


class TestFluidExtremes:
    def test_fully_saturated_background(self, theta_top, rng):
        """Background at the clip ceiling must not produce NaNs or hangs."""
        bg = np.full(theta_top.n_links, 0.9)
        fl = FlowSet(
            np.arange(32), np.arange(100, 132), np.full(32, 1e6), np.zeros(32, dtype=np.int64)
        )
        res = solve_fluid(theta_top, fl, [AD0], background_util=bg, rng=rng)
        assert np.isfinite(res.flow_time).all()
        assert np.isfinite(res.flow_latency).all()
        assert res.link_util.max() <= 1.0 + 1e-9

    def test_single_flow(self, theta_top, rng):
        fl = FlowSet(np.array([0]), np.array([4000]), np.array([1e7]), np.array([0]))
        res = solve_fluid(theta_top, fl, [AD3], rng=rng)
        assert res.flow_time[0] > 0
        # 10 MB over a ~5.25 GB/s NIC: at least ~1.9 ms
        assert res.flow_time[0] >= 1e7 / theta_top.capacity[theta_top.injection_link(0)]

    def test_tiny_flows(self, theta_top, rng):
        fl = FlowSet(np.array([0, 1]), np.array([2, 3]), np.array([1.0, 1.0]), np.zeros(2, dtype=np.int64))
        res = solve_fluid(theta_top, fl, [AD0], rng=rng)
        assert (res.flow_time > 0).all()

    def test_huge_flow_counts(self, theta_top, rng):
        n = 20_000
        src = rng.integers(0, theta_top.n_nodes, n)
        dst = (src + 1 + rng.integers(0, theta_top.n_nodes - 1, n)) % theta_top.n_nodes
        fl = FlowSet(src, dst, np.full(n, 1e4), np.zeros(n, dtype=np.int64))
        res = solve_fluid(theta_top, fl, [AD0], rng=rng, params=FluidParams(n_iter=3))
        assert res.link_load.sum() > 0

    def test_k_larger_than_cables(self, toy_top, rng):
        # toy has 2 cables/pair; asking for 8 minimal candidates must cap
        fl = FlowSet(np.array([0]), np.array([31]), np.array([1e5]), np.array([0]))
        res = solve_fluid(
            toy_top, fl, [AD0], rng=rng, params=FluidParams(k_min=8, k_nonmin=8)
        )
        assert res.flow_time[0] > 0

    def test_zero_byte_flow_allowed(self, theta_top, rng):
        fl = FlowSet(np.array([0]), np.array([9]), np.array([0.0]), np.array([0]))
        res = solve_fluid(theta_top, fl, [AD0], rng=rng)
        assert np.isfinite(res.flow_latency[0])


class TestAppsSmallScales:
    @pytest.mark.parametrize("P", [2, 4, 8])
    def test_every_app_runs_tiny(self, theta_top, P):
        for cls in PRODUCTION_APPS:
            rt, rep, _ = run_app_once(
                theta_top,
                cls(),
                np.arange(P),
                RoutingEnv(),
                rng=derive_rng(0, "tiny", cls.name, P),
                collect_counters=False,
            )
            assert rt > 0, (cls.name, P)
            assert rep.mpi_time >= 0

    def test_odd_rank_counts(self, theta_top):
        for P in (7, 13, 100):
            rt, _, _ = run_app_once(
                theta_top,
                MILC(),
                np.arange(P),
                RoutingEnv(),
                rng=derive_rng(0, "odd", P),
                collect_counters=False,
            )
            assert rt > 0

    def test_non_contiguous_nodes(self, theta_top):
        nodes = np.arange(0, 512, 2)  # every other node
        rt, _, _ = run_app_once(
            theta_top,
            MILC(),
            nodes,
            RoutingEnv(),
            rng=derive_rng(0, "stride"),
            collect_counters=False,
        )
        assert rt > 0


class TestModeInvariance:
    def test_compute_bound_app_mode_insensitive(self, theta_top):
        """An app with negligible traffic must be unaffected by routing."""
        from repro.apps import ComputeBound

        times = {}
        for mode in (AD0, AD3):
            rt, _, _ = run_app_once(
                theta_top,
                ComputeBound(),
                np.arange(64),
                RoutingEnv.uniform(mode),
                rng=derive_rng(0, "cb", mode.name),
                collect_counters=False,
            )
            times[mode.name] = rt
        assert times["AD0"] == pytest.approx(times["AD3"], rel=0.03)

    def test_injection_bound_app_mode_insensitive(self, theta_top):
        """NIC-limited streams do not care about the routing mode
        (Section II-E: 'less sensitive to routing mode changes')."""
        from repro.apps import InjectionBound

        times = {}
        for mode in (AD0, AD3):
            rt, _, _ = run_app_once(
                theta_top,
                InjectionBound(),
                np.arange(64),
                RoutingEnv.uniform(mode),
                rng=derive_rng(0, "ib", mode.name),
                collect_counters=False,
            )
            times[mode.name] = rt
        assert times["AD0"] == pytest.approx(times["AD3"], rel=0.05)


class TestLatencyPhysics:
    def test_latency_floor_is_base_latency(self, theta_top, rng):
        """No flow can beat the software + per-hop base latency."""
        from repro.network.congestion import LatencyModel

        fl = FlowSet(
            np.arange(16), np.arange(2000, 2016), np.full(16, 8.0), np.zeros(16, dtype=np.int64)
        )
        res = solve_fluid(theta_top, fl, [AD3], rng=rng)
        lm = LatencyModel()
        assert (res.flow_latency >= lm.software_overhead).all()

    def test_more_hops_more_latency_at_idle(self, theta_top, rng):
        # same-router pair vs cross-group pair at idle
        near = FlowSet(np.array([0]), np.array([1]), np.array([8.0]), np.array([0]))
        far = FlowSet(np.array([0]), np.array([4000]), np.array([8.0]), np.array([0]))
        ln = solve_fluid(theta_top, near, [AD3], rng=np.random.default_rng(0)).flow_latency[0]
        lf = solve_fluid(theta_top, far, [AD3], rng=np.random.default_rng(0)).flow_latency[0]
        assert lf > ln
