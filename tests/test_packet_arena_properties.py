"""Property-based equivalence of the arena packet engine vs the seed.

The SoA arena rewrite replaces per-activation ``np.concatenate`` growth
and the per-tick global lexsort with preallocated capacity-doubling
buffers, swap-compaction on completion, and incremental per-link FIFO
ranks.  Arena growth and compaction are exactly the kind of bookkeeping
a fixed test matrix under-covers, so here hypothesis drives both the
optimized engine and the frozen seed copy
(``tests/_reference_packet_sim.py``) through randomized interleavings of
``add_message`` / ``advance`` / mid-run link death (timed fault specs)
/ retry-exhaustion drops, and requires every observable — per-message
stats, flit/stall/credit counters, reroute/retry/drop totals, and packet
latencies — to be identical.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.biases import AD0, AD1, AD2, AD3
from repro.faults.errors import NetworkPartitionedError
from repro.faults.model import FaultSchedule
from repro.network.packet_sim import InjectionSpec, PacketSimConfig, PacketSimulator
from repro.topology.pathcache import clear_path_cache
from repro.topology.systems import toy

from tests import _reference_packet_sim as ref_pkt
from tests.test_golden_equivalence import assert_packet_identical

MODES = [AD0, AD1, AD2, AD3]

# one program = an interleaved op sequence; each op either injects a
# message (params drawn here, start offset relative to the current step)
# or advances the clock a few ticks with messages in flight
_ADD = st.tuples(
    st.just("add"),
    st.integers(0, 31),        # src
    st.integers(1, 31),        # dst offset (never a self-flow)
    st.integers(64, 20_000),   # nbytes
    st.integers(0, 3),         # mode index
    st.integers(0, 25),        # start_step offset from "now"
)
_ADVANCE = st.tuples(st.just("advance"), st.integers(1, 40))
_OPS = st.lists(st.one_of(_ADD, _ADVANCE), min_size=1, max_size=10).filter(
    lambda ops: any(op[0] == "add" for op in ops)
)

# optional mid-run fault edge: a cable or router death crossing at a
# drawn step boundary exercises reroute, retry, and drop paths
_FAULT = st.one_of(
    st.none(),
    st.tuples(st.sampled_from(["cable:0-1:0", "router:1"]), st.integers(0, 120)),
)


def _build(cls, cfg_cls, ops, patience, max_retry, fault):
    faults = None
    if fault is not None:
        spec, at_step = fault
        faults = FaultSchedule.parse(f"{spec}@{at_step * 2.5e-9:g}", seed=3)
    sim = cls(
        toy(),
        cfg_cls(reroute_patience=patience, max_reroute_attempts=max_retry),
        rng=np.random.default_rng(17),
        faults=faults,
    )
    for op in ops:
        if op[0] == "advance":
            for _ in range(op[1]):
                sim.advance()
        else:
            _, src, off, nbytes, mi, start_off = op
            sim.add_message(
                InjectionSpec(
                    src=src,
                    dst=(src + off) % 32,
                    nbytes=nbytes,
                    mode=MODES[mi],
                    start_step=sim.step + start_off,
                )
            )
    sim.run(max_steps=4000)
    return sim


@given(
    ops=_OPS,
    patience=st.integers(0, 4),
    max_retry=st.integers(1, 3),
    fault=_FAULT,
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_interleaved_program_identical(ops, patience, max_retry, fault):
    # a drawn fault can legitimately partition a drawn flow's endpoints;
    # that must surface as the same error from both engines
    clear_path_cache()
    try:
        new = _build(PacketSimulator, PacketSimConfig, ops, patience, max_retry, fault)
        new_err = None
    except NetworkPartitionedError as e:
        new, new_err = None, str(e)
    clear_path_cache()
    try:
        old = _build(
            ref_pkt.PacketSimulator, ref_pkt.PacketSimConfig,
            ops, patience, max_retry, fault,
        )
        old_err = None
    except NetworkPartitionedError as e:
        old, old_err = None, str(e)
    assert new_err == old_err
    if new is not None:
        assert_packet_identical(new, old)
