"""Additional property-based tests: collectives, placement, counters."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mpi.collectives import (
    allgather_flows,
    allreduce_flows,
    alltoall_flows,
    barrier_flows,
    bcast_flows,
)
from repro.network.counters import CounterBank


class TestCollectiveProperties:
    @given(p=st.integers(2, 200), nbytes=st.floats(1.0, 1e6))
    def test_allreduce_invariants(self, p, nbytes):
        fl, rounds = allreduce_flows(np.arange(p), nbytes)
        # symmetric algorithm: sends == receives per core rank
        assert (fl.src != fl.dst).all()
        assert rounds >= int(np.floor(np.log2(p)))
        # every flow carries the message size
        assert np.allclose(fl.nbytes, nbytes)

    @given(p=st.integers(2, 150))
    def test_barrier_total_flows(self, p):
        fl, rounds = barrier_flows(np.arange(p))
        assert rounds == int(np.ceil(np.log2(p)))
        # dissemination: every rank sends exactly once per round
        assert fl.n == p * rounds

    @given(p=st.integers(2, 100), k=st.integers(1, 32), seed=st.integers(0, 100))
    def test_alltoall_byte_conservation(self, p, k, seed):
        rng = np.random.default_rng(seed)
        per_pair = 100.0
        fl, rounds = alltoall_flows(np.arange(p), per_pair, max_partners=k, rng=rng)
        assert rounds == p - 1
        # sampling rescales bytes so the expected total is exact
        assert fl.nbytes.sum() == pytest.approx(p * (p - 1) * per_pair, rel=1e-9)

    @given(p=st.integers(2, 128), root=st.integers(0, 127))
    def test_bcast_reaches_everyone_once(self, p, root):
        root = root % p
        fl, _ = bcast_flows(np.arange(p), 64.0, root=root)
        recv = np.bincount(fl.dst, minlength=p)
        assert recv[root] == 0
        assert recv.sum() == p - 1
        assert recv.max() == 1

    @given(p=st.integers(2, 100), nbytes=st.floats(1.0, 1e5))
    def test_allgather_volume(self, p, nbytes):
        fl, rounds = allgather_flows(np.arange(p), nbytes)
        assert rounds == p - 1
        # ring: total on-wire volume is P*(P-1)*nbytes
        assert fl.nbytes.sum() == pytest.approx(p * (p - 1) * nbytes, rel=1e-9)


class TestPlacementProperties:
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        n=st.integers(8, 512),
        kind=st.sampled_from(["compact", "dispersed", "random", "production"]),
        seed=st.integers(0, 500),
    )
    def test_any_placement_valid(self, theta_top, n, kind, seed):
        from repro.scheduler.placement import make_placement

        nodes = make_placement(kind, theta_top, n, np.random.default_rng(seed))
        assert nodes.size == n
        assert np.unique(nodes).size == n
        assert nodes.min() >= 0 and nodes.max() < theta_top.n_nodes

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(sizes=st.lists(st.integers(8, 256), min_size=1, max_size=6), seed=st.integers(0, 100))
    def test_pooled_placements_disjoint(self, theta_top, sizes, seed):
        from repro.scheduler.placement import FreeNodePool, production_placement

        rng = np.random.default_rng(seed)
        pool = FreeNodePool(theta_top)
        taken = []
        for size in sizes:
            if size > pool.n_free:
                break
            taken.append(production_placement(theta_top, size, rng, pool=pool))
        allnodes = np.concatenate(taken) if taken else np.zeros(0, dtype=int)
        assert np.unique(allnodes).size == allnodes.size


class TestCounterAlgebra:
    @given(
        f1=st.floats(0, 1e9),
        s1=st.floats(0, 1e9),
        scale=st.floats(0, 100),
        frac=st.floats(0, 1),
    )
    def test_merge_scale_linear(self, toy_top, f1, s1, scale, frac):
        a = CounterBank(toy_top)
        b = CounterBank(toy_top)
        lid = toy_top.rank1_link(0, 0, 0, 1)
        b.add_network_link_counts(np.array([lid]), np.array([f1]), np.array([s1]))
        a.merge(b, fraction=frac)
        a.scale(scale)
        snap = a.snapshot()
        assert snap.flits["rank1"].sum() == pytest.approx(f1 * frac * scale, rel=1e-9, abs=1e-6)
        assert snap.stalls["rank1"].sum() == pytest.approx(s1 * frac * scale, rel=1e-9, abs=1e-6)

    @given(vals=st.lists(st.floats(0, 1e6), min_size=1, max_size=8))
    def test_snapshot_delta_inverts_accumulation(self, toy_top, vals):
        bank = CounterBank(toy_top)
        lid = toy_top.rank3_link(0, 1, 0)
        before = bank.snapshot()
        for v in vals:
            bank.add_network_link_counts(np.array([lid]), np.array([v]), np.array([0.0]))
        delta = bank.snapshot() - before
        assert delta.flits["rank3"].sum() == pytest.approx(sum(vals), rel=1e-9, abs=1e-6)
