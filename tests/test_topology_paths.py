"""Unit tests for minimal / Valiant path construction."""

import numpy as np
import pytest

from repro.topology.dragonfly import LinkClass
from repro.topology.paths import MAX_HOPS, minimal_paths, valiant_paths


def check_continuity(top, bundle):
    """Every path must start at injection, end at ejection, and chain
    router-continuously in between."""
    for row in bundle.links:
        ids = row[row >= 0]
        assert top.link_class[ids[0]] == int(LinkClass.INJECTION)
        assert top.link_class[ids[-1]] == int(LinkClass.EJECTION)
        prev = top.link_dst_router[ids[0]]
        for lid in ids[1:-1]:
            assert top.link_src_router[lid] == prev
            prev = top.link_dst_router[lid]
        assert top.link_src_router[ids[-1]] == prev


def _pairs(top, rng, n=200):
    src = rng.integers(0, top.n_nodes, n)
    dst = rng.integers(0, top.n_nodes, n)
    keep = src != dst
    return src[keep], dst[keep]


class TestMinimalPaths:
    def test_continuity_theta(self, theta_top, rng):
        src, dst = _pairs(theta_top, rng)
        b = minimal_paths(theta_top, src, dst, k=3, rng=rng)
        check_continuity(theta_top, b)

    def test_continuity_toy(self, toy_top, rng):
        src, dst = _pairs(toy_top, rng, 64)
        b = minimal_paths(toy_top, src, dst, k=2, rng=rng)
        check_continuity(toy_top, b)

    def test_subpath_count(self, theta_top, rng):
        src, dst = _pairs(theta_top, rng, 50)
        b = minimal_paths(theta_top, src, dst, k=4, rng=rng)
        assert b.n_subpaths == 4 * src.size
        np.testing.assert_array_equal(
            b.subpaths_per_flow(src.size), np.full(src.size, 4)
        )

    def test_at_most_one_global_hop(self, theta_top, rng):
        src, dst = _pairs(theta_top, rng)
        b = minimal_paths(theta_top, src, dst, k=2, rng=rng)
        r3 = theta_top.link_class[np.where(b.links >= 0, b.links, 0)] == int(
            LinkClass.RANK3
        )
        r3 &= b.links >= 0
        assert r3.sum(axis=1).max() <= 1

    def test_intra_group_paths_have_no_global_hop(self, theta_top, rng):
        # nodes 0..50 are all in group 0
        src = np.arange(0, 25)
        dst = np.arange(25, 50)
        b = minimal_paths(theta_top, src, dst, k=2, rng=rng)
        used = np.where(b.links >= 0, b.links, 0)
        r3 = (theta_top.link_class[used] == int(LinkClass.RANK3)) & (b.links >= 0)
        assert r3.sum() == 0

    def test_minimal_router_hops_bound(self, theta_top, rng):
        # minimal: <= 2 local + 1 global + 2 local = 5 router-to-router hops
        src, dst = _pairs(theta_top, rng)
        b = minimal_paths(theta_top, src, dst, k=2, rng=rng)
        assert b.router_hops.max() <= 5

    def test_same_router_pair_shortest(self, theta_top, rng):
        # two nodes of the same router: injection + ejection only
        b = minimal_paths(theta_top, np.array([0]), np.array([1]), k=2, rng=rng)
        assert set(b.hops) == {2}
        assert b.router_hops.max() == 0

    def test_distinct_cables_sampled(self, theta_top, rng):
        # inter-group flow with k > 1 should touch distinct cables
        src = np.array([0])
        dst = np.array([theta_top.n_nodes - 1])
        b = minimal_paths(theta_top, src, dst, k=4, rng=rng)
        used = b.links[b.links >= 0]
        cables = used[theta_top.link_class[used] == int(LinkClass.RANK3)]
        assert np.unique(cables).size == 4

    def test_self_flow_rejected(self, theta_top, rng):
        with pytest.raises(ValueError, match="self-flows"):
            minimal_paths(theta_top, np.array([3]), np.array([3]), rng=rng)

    def test_shape_mismatch_rejected(self, theta_top, rng):
        with pytest.raises(ValueError, match="same shape"):
            minimal_paths(theta_top, np.array([1, 2]), np.array([3]), rng=rng)

    def test_valid_capacities(self, mini_top, rng):
        src, dst = _pairs(mini_top, rng, 100)
        b = minimal_paths(mini_top, src, dst, k=3, rng=rng)
        used = b.links[b.links >= 0]
        assert (mini_top.capacity[used] > 0).all()


class TestValiantPaths:
    def test_continuity_theta(self, theta_top, rng):
        src, dst = _pairs(theta_top, rng)
        b = valiant_paths(theta_top, src, dst, k=3, rng=rng)
        check_continuity(theta_top, b)

    def test_continuity_mini(self, mini_top, rng):
        src, dst = _pairs(mini_top, rng, 100)
        b = valiant_paths(mini_top, src, dst, k=2, rng=rng)
        check_continuity(mini_top, b)

    def test_two_global_hops_inter_group(self, theta_top, rng):
        src = np.array([0])
        dst = np.array([theta_top.n_nodes - 1])
        b = valiant_paths(theta_top, src, dst, k=3, rng=rng)
        used = np.where(b.links >= 0, b.links, 0)
        r3 = (theta_top.link_class[used] == int(LinkClass.RANK3)) & (b.links >= 0)
        np.testing.assert_array_equal(r3.sum(axis=1), [2, 2, 2])

    def test_intermediate_group_differs_from_endpoints(self, theta_top, rng):
        src = np.zeros(50, dtype=np.int64)
        dst = np.full(50, theta_top.n_nodes - 1, dtype=np.int64)
        b = valiant_paths(theta_top, src, dst, k=2, rng=rng)
        g_src = int(theta_top.node_group(0))
        g_dst = int(theta_top.node_group(theta_top.n_nodes - 1))
        for row in b.links:
            ids = row[row >= 0]
            cables = ids[theta_top.link_class[ids] == int(LinkClass.RANK3)]
            g_int = int(theta_top.router_group(theta_top.link_dst_router[cables[0]]))
            assert g_int not in (g_src, g_dst)

    def test_valiant_longer_than_minimal_on_average(self, theta_top, rng):
        src, dst = _pairs(theta_top, rng)
        bm = minimal_paths(theta_top, src, dst, k=2, rng=rng)
        bv = valiant_paths(theta_top, src, dst, k=2, rng=rng)
        assert bv.router_hops.mean() > bm.router_hops.mean()

    def test_two_group_system_fallback(self, toy_top, rng):
        # a 2-group dragonfly has no intermediate group: the non-minimal
        # set degrades to random-cable minimal-shaped paths
        src = np.arange(0, 16)
        dst = np.arange(16, 32)
        b = valiant_paths(toy_top, src, dst, k=2, rng=rng)
        check_continuity(toy_top, b)
        used = np.where(b.links >= 0, b.links, 0)
        r3 = (toy_top.link_class[used] == int(LinkClass.RANK3)) & (b.links >= 0)
        assert r3.sum(axis=1).max() == 1

    def test_intra_group_detour(self, theta_top, rng):
        # intra-group valiant goes via an intermediate router
        src = np.arange(0, 20)
        dst = np.arange(40, 60)
        b = valiant_paths(theta_top, src, dst, k=2, rng=rng)
        check_continuity(theta_top, b)
        bm = minimal_paths(theta_top, src, dst, k=2, rng=rng)
        assert b.router_hops.mean() >= bm.router_hops.mean()

    def test_max_hops_respected(self, theta_top, rng):
        src, dst = _pairs(theta_top, rng)
        b = valiant_paths(theta_top, src, dst, k=3, rng=rng)
        assert b.links.shape[1] == MAX_HOPS
        assert b.hops.max() <= MAX_HOPS


class TestDeterminism:
    def test_same_rng_same_paths(self, theta_top):
        src = np.arange(100)
        dst = np.arange(200, 300)
        a = minimal_paths(theta_top, src, dst, k=3, rng=np.random.default_rng(5))
        b = minimal_paths(theta_top, src, dst, k=3, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.links, b.links)

    def test_different_rng_different_valiant(self, theta_top):
        src = np.arange(100)
        dst = np.arange(2000, 2100)
        a = valiant_paths(theta_top, src, dst, k=2, rng=np.random.default_rng(5))
        b = valiant_paths(theta_top, src, dst, k=2, rng=np.random.default_rng(6))
        assert not np.array_equal(a.links, b.links)
