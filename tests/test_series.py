"""Tests for repro.telemetry.series: sketches, recorders, engine wiring.

The invariants here are the load-bearing ones from the observability
layer's contract:

* sampling is keyed to *sim time* and deterministic — the same run
  yields byte-identical series every time;
* per-window flit/stall totals always reconcile exactly with the
  end-of-run aggregates (coalescing merges windows, never drops mass);
* a run with telemetry off is byte-identical to one never instrumented;
* records round-trip through the JSONL checkpoint with the series
  intact, and records without a series keep their pre-PR byte layout.
"""

import json

import numpy as np
import pytest

from repro.apps import app_by_name
from repro.core.biases import AD0, AD3
from repro.core.checkpoint import record_from_dict, record_to_dict
from repro.core.experiment import CampaignConfig, run_campaign
from repro.network.packet_sim import InjectionSpec, PacketSimulator
from repro.telemetry import (
    CadenceRecorder,
    CounterSeries,
    QuantileSketch,
    SeriesConfig,
    SeriesWindow,
    Telemetry,
)


class TestQuantileSketch:
    def test_exact_below_capacity(self):
        sk = QuantileSketch(capacity=256)
        sk.observe_many(range(100))
        assert sk.count == 100
        assert sk.min == 0 and sk.max == 99
        assert sk.quantile(0.0) == 0
        assert sk.quantile(1.0) == 99
        assert abs(sk.quantile(0.5) - 50) <= 1

    def test_thinned_stream_stays_unbiased(self):
        # systematic thinning keeps every stride-th arrival, all equal
        # weight, so quantiles of a long stream stay close to truth
        sk = QuantileSketch(capacity=256)
        sk.observe_many(float(v % 97) for v in range(10_000))
        assert sk.count == 10_000
        assert abs(sk.quantile(0.5) - 48) <= 3
        assert abs(sk.quantile(0.95) - 91) <= 3
        assert sk.max == 96.0

    def test_deterministic(self):
        a, b = QuantileSketch(capacity=64), QuantileSketch(capacity=64)
        vals = [float((7 * i) % 101) for i in range(5000)]
        a.observe_many(vals)
        b.observe_many(vals)
        assert a.to_dict() == b.to_dict()

    def test_roundtrip(self):
        sk = QuantileSketch(capacity=32)
        sk.observe_many(range(1000))
        back = QuantileSketch.from_dict(sk.to_dict())
        assert back.to_dict() == sk.to_dict()
        assert back.summary() == sk.summary()

    def test_empty_summary(self):
        sk = QuantileSketch()
        assert sk.count == 0
        assert np.isnan(sk.quantile(0.5))

    def test_bounded_memory(self):
        sk = QuantileSketch(capacity=64)
        sk.observe_many(range(100_000))
        assert len(sk.to_dict()["values"]) <= 64


class TestCadenceRecorder:
    def cfg(self, cadence=1.0, capacity=8):
        return SeriesConfig(cadence=cadence, capacity=capacity)

    def test_windows_tile_sim_time(self):
        rec = CadenceRecorder(self.cfg())
        for i in range(1, 6):
            rec.add(float(i), flit_delta=10.0, stall_delta=1.0)
        series = rec.finalize(5.0, aggregate_flits=50.0, aggregate_stalls=5.0)
        assert [w.t_start for w in series.windows] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert all(w.t_end - w.t_start == pytest.approx(1.0) for w in series.windows)
        assert not any(w.partial for w in series.windows)

    def test_window_totals_reconcile_with_aggregate(self):
        rec = CadenceRecorder(self.cfg(cadence=0.25))
        rng = np.random.default_rng(0)
        t, ftot, stot = 0.0, 0.0, 0.0
        for _ in range(200):
            t += float(rng.uniform(0.01, 0.4))
            f, s = float(rng.uniform(0, 100)), float(rng.uniform(0, 10))
            ftot += f
            stot += s
            rec.add(t, f, s)
        series = rec.finalize(t, ftot, stot)
        assert series.total_flits() == pytest.approx(ftot)
        assert series.total_stalls() == pytest.approx(stot)
        assert series.aggregate_flits == ftot

    def test_ring_coalesces_but_preserves_mass(self):
        rec = CadenceRecorder(self.cfg(cadence=1.0, capacity=4))
        for i in range(1, 33):
            rec.add(float(i), flit_delta=1.0, stall_delta=0.5)
        series = rec.finalize(32.0, 32.0, 16.0)
        assert len(series.windows) <= 4 + 1  # ring + residual partial
        assert series.cadence > 1.0  # cadence doubled under pressure
        assert series.n_coalesced > 0
        assert series.total_flits() == pytest.approx(32.0)
        assert series.total_stalls() == pytest.approx(16.0)

    def test_time_travel_rejected(self):
        rec = CadenceRecorder(self.cfg())
        rec.add(2.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            rec.add(1.0, 1.0, 0.0)

    def test_trailing_residual_is_partial(self):
        rec = CadenceRecorder(self.cfg(cadence=1.0))
        rec.add(1.5, 3.0, 1.0)
        series = rec.finalize(1.5, 3.0, 1.0)
        assert series.windows[-1].partial
        assert series.total_flits() == pytest.approx(3.0)

    def test_latency_sketch_attached_only_when_observed(self):
        rec = CadenceRecorder(self.cfg())
        rec.add(1.0, 1.0, 0.0)
        assert rec.finalize(1.0, 1.0, 0.0).latency is None
        rec2 = CadenceRecorder(self.cfg())
        rec2.add(1.0, 1.0, 0.0)
        rec2.observe_latency([1e-6, 2e-6])
        series = rec2.finalize(1.0, 1.0, 0.0)
        assert series.latency is not None and series.latency.count == 2


class TestSeriesSerialization:
    def make_series(self):
        rec = CadenceRecorder(SeriesConfig(cadence=1.0))
        for i in range(1, 4):
            rec.add(float(i), 10.0 * i, float(i))
        rec.observe_latency([1e-6, 5e-6, 9e-6])
        return rec.finalize(3.0, 60.0, 6.0)

    def test_counter_series_roundtrip(self):
        series = self.make_series()
        back = CounterSeries.from_dict(series.to_dict())
        assert back.to_dict() == series.to_dict()
        assert back.total_flits() == series.total_flits()
        assert [w.ratio for w in back.windows] == [w.ratio for w in series.windows]

    def test_window_partial_key_omitted_when_false(self):
        full = SeriesWindow(0.0, 1.0, 5.0, 1.0)
        assert "partial" not in full.to_dict()
        part = SeriesWindow(0.0, 1.0, 5.0, 1.0, partial=True)
        assert part.to_dict()["partial"] is True


class TestPacketSimSeries:
    def run_sim(self, toy_top, telemetry=None):
        sim = PacketSimulator(
            toy_top, rng=np.random.default_rng(3), telemetry=telemetry
        )
        for s in range(8):
            sim.add_message(
                InjectionSpec(src=s, dst=16 + s, nbytes=4096, mode=AD0)
            )
        sim.run()
        return sim

    def test_sampling_does_not_change_results(self, toy_top):
        plain = self.run_sim(toy_top)
        cadence = 100 * plain.config.step_time
        sampled = self.run_sim(
            toy_top, Telemetry(series=SeriesConfig(cadence=cadence))
        )
        assert plain.step == sampled.step
        np.testing.assert_array_equal(plain.flits, sampled.flits)
        np.testing.assert_array_equal(plain.stalls, sampled.stalls)

    def test_series_reconciles_with_counters(self, toy_top):
        sim = self.run_sim(
            toy_top, Telemetry(series=SeriesConfig(cadence=1e-6))
        )
        series = sim.counter_series()
        assert series is not None and series.windows
        assert series.total_flits() == pytest.approx(float(sim.flits.sum()))
        assert series.total_stalls() == pytest.approx(float(sim.stalls.sum()))
        # windows are keyed to sim time, so they cannot outrun the clock
        assert series.windows[-1].t_end <= sim.now + series.cadence

    def test_counter_series_none_when_unconfigured(self, toy_top):
        assert self.run_sim(toy_top).counter_series() is None

    def test_series_deterministic_across_runs(self, toy_top):
        cadence = 50 * PacketSimulator(
            toy_top, rng=np.random.default_rng(3)
        ).config.step_time
        a = self.run_sim(toy_top, Telemetry(series=SeriesConfig(cadence=cadence)))
        b = self.run_sim(toy_top, Telemetry(series=SeriesConfig(cadence=cadence)))
        assert json.dumps(a.counter_series().to_dict()) == json.dumps(
            b.counter_series().to_dict()
        )


class TestCampaignSeries:
    @pytest.fixture(scope="class")
    def recorded(self, mini_top):
        cfg = CampaignConfig(
            app=app_by_name("milc")(),
            n_nodes=32,
            modes=(AD0, AD3),
            samples=2,
            seed=11,
        )
        tel = Telemetry(series=SeriesConfig(cadence=50.0))
        return run_campaign(mini_top, cfg, telemetry=tel)

    def test_records_carry_series(self, recorded):
        assert all(r.series is not None for r in recorded)
        assert all(r.series.windows for r in recorded)

    def test_series_sums_to_run_aggregate(self, recorded):
        for r in recorded:
            assert r.series.total_flits() == pytest.approx(
                r.series.aggregate_flits
            )
            assert r.series.total_stalls() == pytest.approx(
                r.series.aggregate_stalls
            )

    def test_checkpoint_roundtrip_preserves_series(self, recorded):
        for r in recorded:
            d = record_to_dict(r)
            assert "series" in d
            back = record_from_dict(json.loads(json.dumps(d)))
            assert back.series.to_dict() == r.series.to_dict()

    def test_record_dict_unchanged_without_series(self, mini_top):
        cfg = CampaignConfig(
            app=app_by_name("milc")(),
            n_nodes=32,
            modes=(AD0,),
            samples=1,
            seed=11,
        )
        (rec,) = run_campaign(mini_top, cfg)
        assert rec.series is None
        assert "series" not in record_to_dict(rec)

    def test_parallel_series_byte_identical(self, mini_top, recorded):
        cfg = CampaignConfig(
            app=app_by_name("milc")(),
            n_nodes=32,
            modes=(AD0, AD3),
            samples=2,
            seed=11,
        )
        tel = Telemetry(series=SeriesConfig(cadence=50.0))
        par = run_campaign(mini_top, cfg, telemetry=tel, jobs=2)
        serial_json = [json.dumps(record_to_dict(r)) for r in recorded]
        par_json = [json.dumps(record_to_dict(r)) for r in par]
        assert serial_json == par_json
