"""Unit tests for the dragonfly structure and its index arithmetic."""

import numpy as np
import pytest

from repro.topology.dragonfly import DragonflyParams, LinkClass


class TestParams:
    def test_theta_counts(self, theta_top):
        assert theta_top.n_groups == 12
        assert theta_top.routers_per_group == 96
        assert theta_top.n_routers == 1152
        assert theta_top.n_nodes == 4392

    def test_cori_counts(self, cori_top):
        assert cori_top.n_groups == 28
        assert cori_top.n_nodes == 9668

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="exceeds node capacity"):
            DragonflyParams(name="bad", n_groups=2, n_compute_nodes=10**6)

    def test_single_group_rejected(self):
        with pytest.raises(ValueError, match="at least 2 groups"):
            DragonflyParams(name="bad", n_groups=1)

    def test_node_capacity(self, toy_top):
        # 2 groups x 2 chassis x 4 routers x 2 nodes
        assert toy_top.params.node_capacity == 32
        assert toy_top.n_nodes == 32

    def test_bisection_to_injection_cori_below_theta(self, theta_top, cori_top):
        # the paper: Cori has a reduced bisection-to-injection ratio
        # (4 vs 12 cables per group pair)
        assert cori_top.bisection_to_injection_ratio < theta_top.bisection_to_injection_ratio

    def test_describe_mentions_name(self, theta_top):
        assert "theta" in theta_top.describe()


class TestLinkTables:
    def test_total_links_consistent(self, toy_top):
        t = toy_top
        assert t.n_links == t.eje_base + t.n_nodes

    def test_rank1_capacity_is_half_bidirectional(self, theta_top):
        lid = theta_top.rank1_link(0, 0, 0, 1)
        assert theta_top.capacity[lid] == pytest.approx(10.5e9 / 2)

    def test_rank2_bundle_capacity(self, theta_top):
        # three physical links aggregated per rank-2 bundle
        lid = theta_top.rank2_link(0, 0, 0, 1)
        assert theta_top.capacity[lid] == pytest.approx(3 * 10.5e9 / 2)

    def test_rank3_cable_capacity(self, theta_top):
        lid = theta_top.rank3_link(0, 1, 0)
        assert theta_top.capacity[lid] == pytest.approx(3 * 9.38e9 / 2)

    def test_diagonal_rank1_links_unusable(self, theta_top):
        lid = theta_top.rank1_link(0, 0, 3, 3)
        assert theta_top.capacity[lid] == 0.0
        assert theta_top.link_class[lid] == -1

    def test_diagonal_rank3_links_unusable(self, theta_top):
        lid = theta_top.rank3_link(2, 2, 0)
        assert theta_top.capacity[lid] == 0.0

    def test_link_class_counts(self, toy_top):
        t = toy_top
        p = t.params
        n_r1 = t.params.n_groups * p.chassis_per_group * p.routers_per_chassis * (
            p.routers_per_chassis - 1
        )
        assert (t.link_class == int(LinkClass.RANK1)).sum() == n_r1
        n_r3 = p.n_groups * (p.n_groups - 1) * p.cables_per_group_pair
        assert (t.link_class == int(LinkClass.RANK3)).sum() == n_r3
        assert (t.link_class == int(LinkClass.INJECTION)).sum() == t.n_nodes
        assert (t.link_class == int(LinkClass.EJECTION)).sum() == t.n_nodes

    def test_rank1_endpoints_same_chassis(self, theta_top):
        lid = theta_top.rank1_link(2, 3, 4, 5)
        src = theta_top.link_src_router[lid]
        dst = theta_top.link_dst_router[lid]
        assert theta_top.router_group(src) == 2
        assert theta_top.router_chassis(src) == 3
        assert theta_top.router_slot(src) == 4
        assert theta_top.router_slot(dst) == 5
        assert theta_top.router_chassis(dst) == 3

    def test_rank2_endpoints_same_slot(self, theta_top):
        lid = theta_top.rank2_link(1, 7, 0, 5)
        src = theta_top.link_src_router[lid]
        dst = theta_top.link_dst_router[lid]
        assert theta_top.router_slot(src) == 7
        assert theta_top.router_slot(dst) == 7
        assert theta_top.router_chassis(src) == 0
        assert theta_top.router_chassis(dst) == 5

    def test_rank3_endpoints_cross_groups(self, theta_top):
        lid = theta_top.rank3_link(0, 5, 3)
        src = theta_top.link_src_router[lid]
        dst = theta_top.link_dst_router[lid]
        assert theta_top.router_group(src) == 0
        assert theta_top.router_group(dst) == 5

    def test_gateway_matches_link_endpoint(self, theta_top):
        gw = theta_top.gateway_router(0, 5, 3)
        lid = theta_top.rank3_link(0, 5, 3)
        assert theta_top.link_src_router[lid] == gw

    def test_cable_reverse_direction_shares_gateways(self, theta_top):
        fwd = theta_top.rank3_link(0, 5, 3)
        rev = theta_top.rank3_link(5, 0, 3)
        assert theta_top.link_src_router[fwd] == theta_top.link_dst_router[rev]
        assert theta_top.link_dst_router[fwd] == theta_top.link_src_router[rev]


class TestIndexArithmetic:
    def test_node_router_scalar_and_array(self, theta_top):
        assert theta_top.node_router(0) == 0
        assert theta_top.node_router(7) == 1
        np.testing.assert_array_equal(
            theta_top.node_router(np.array([0, 4, 8])), [0, 1, 2]
        )

    def test_node_group(self, theta_top):
        nodes_per_group = theta_top.routers_per_group * 4
        assert theta_top.node_group(0) == 0
        assert theta_top.node_group(nodes_per_group) == 1

    def test_router_decomposition_roundtrip(self, theta_top):
        for r in (0, 17, 95, 96, 1151):
            g = theta_top.router_group(r)
            c = theta_top.router_chassis(r)
            s = theta_top.router_slot(r)
            assert g * 96 + c * 16 + s == r

    def test_injection_ejection_distinct(self, theta_top):
        node = 100
        assert theta_top.injection_link(node) != theta_top.ejection_link(node)
        assert theta_top.link_class[theta_top.injection_link(node)] == int(
            LinkClass.INJECTION
        )
        assert theta_top.link_class[theta_top.ejection_link(node)] == int(
            LinkClass.EJECTION
        )

    def test_cable_assignment_deterministic(self):
        from repro.topology.systems import theta

        a = theta(seed=3)
        b = theta(seed=3)
        np.testing.assert_array_equal(a.cable_gateway, b.cable_gateway)

    def test_cable_assignment_seed_sensitivity(self):
        from repro.topology.systems import theta

        a = theta(seed=3)
        b = theta(seed=4)
        assert not np.array_equal(a.cable_gateway, b.cable_gateway)
