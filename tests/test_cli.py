"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_describe_defaults(self):
        args = build_parser().parse_args(["describe"])
        assert args.system == "theta"
        assert args.seed == 2021

    def test_compare_args(self):
        args = build_parser().parse_args(
            ["compare", "--app", "hacc", "--nodes", "128", "--modes", "AD1,AD2"]
        )
        assert args.app == "hacc"
        assert args.nodes == 128
        assert args.modes == "AD1,AD2"

    def test_ensemble_args(self):
        args = build_parser().parse_args(
            ["ensemble", "--jobs", "4", "--mode", "AD0", "--placement", "compact"]
        )
        assert args.jobs == 4 and args.mode == "AD0"


class TestCommands:
    def test_describe_runs(self, capsys):
        assert main(["describe", "--system", "theta"]) == 0
        out = capsys.readouterr().out
        assert "theta" in out
        assert "AD3" in out

    def test_describe_slingshot(self, capsys):
        assert main(["describe", "--system", "slingshot"]) == 0
        assert "slingshot" in capsys.readouterr().out

    def test_unknown_system(self):
        with pytest.raises(SystemExit, match="unknown system"):
            main(["describe", "--system", "summit"])

    def test_compare_small(self, capsys):
        rc = main(
            ["compare", "--app", "latencybound", "--nodes", "64", "--samples", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "AD0" in out and "AD3" in out and "over AD0" in out

    def test_advise(self, capsys):
        assert main(["advise", "--app", "bisectionbound", "--nodes", "64"]) == 0
        out = capsys.readouterr().out
        assert "AD0" in out  # bisection-bound apps get AD0

    def test_facility_tiny(self, capsys):
        assert main(["facility", "--intervals", "2"]) == 0
        out = capsys.readouterr().out
        assert "flits" in out and "P99.99" in out

    def test_ensemble_tiny(self, capsys):
        rc = main(
            [
                "ensemble",
                "--app",
                "latencybound",
                "--jobs",
                "2",
                "--nodes",
                "128",
                "--mode",
                "AD3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "network stalls/flits" in out


class TestCalibrateCommand:
    def test_parser(self):
        args = build_parser().parse_args(
            ["calibrate", "--param", "stall_kappa", "--values", "1,3"]
        )
        assert args.param == "stall_kappa"
        assert args.values == "1,3"

    def test_score_runs_small(self, capsys):
        assert main(["calibrate", "--samples", "2"]) == 0
        out = capsys.readouterr().out
        assert "milc_improvement_pct" in out
