"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_describe_defaults(self):
        args = build_parser().parse_args(["describe"])
        assert args.system == "theta"
        assert args.seed == 2021

    def test_compare_args(self):
        args = build_parser().parse_args(
            ["compare", "--app", "hacc", "--nodes", "128", "--modes", "AD1,AD2"]
        )
        assert args.app == "hacc"
        assert args.nodes == 128
        assert args.modes == "AD1,AD2"

    def test_ensemble_args(self):
        args = build_parser().parse_args(
            ["ensemble", "--jobs", "4", "--mode", "AD0", "--placement", "compact"]
        )
        assert args.jobs == 4 and args.mode == "AD0"


class TestCommands:
    def test_describe_runs(self, capsys):
        assert main(["describe", "--system", "theta"]) == 0
        out = capsys.readouterr().out
        assert "theta" in out
        assert "AD3" in out

    def test_describe_slingshot(self, capsys):
        assert main(["describe", "--system", "slingshot"]) == 0
        assert "slingshot" in capsys.readouterr().out

    def test_unknown_system(self, capsys):
        # config errors exit 2 with a one-line message, not a traceback
        assert main(["describe", "--system", "summit"]) == 2
        err = capsys.readouterr().err
        assert "unknown system" in err and "\n" == err[-1]

    def test_bad_fault_spec(self, capsys):
        assert main(["compare", "--faults", "bogus:1", "--samples", "1"]) == 2
        assert "unknown fault spec" in capsys.readouterr().err

    def test_compare_small(self, capsys):
        rc = main(
            ["compare", "--app", "latencybound", "--nodes", "64", "--samples", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "AD0" in out and "AD3" in out and "over AD0" in out

    def test_advise(self, capsys):
        assert main(["advise", "--app", "bisectionbound", "--nodes", "64"]) == 0
        out = capsys.readouterr().out
        assert "AD0" in out  # bisection-bound apps get AD0

    def test_facility_tiny(self, capsys):
        assert main(["facility", "--intervals", "2"]) == 0
        out = capsys.readouterr().out
        assert "flits" in out and "P99.99" in out

    def test_ensemble_tiny(self, capsys):
        rc = main(
            [
                "ensemble",
                "--app",
                "latencybound",
                "--jobs",
                "2",
                "--nodes",
                "128",
                "--mode",
                "AD3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "network stalls/flits" in out


class TestCalibrateCommand:
    def test_parser(self):
        args = build_parser().parse_args(
            ["calibrate", "--param", "stall_kappa", "--values", "1,3"]
        )
        assert args.param == "stall_kappa"
        assert args.values == "1,3"

    def test_score_runs_small(self, capsys):
        assert main(["calibrate", "--samples", "2"]) == 0
        out = capsys.readouterr().out
        assert "milc_improvement_pct" in out


class TestSweepModes:
    def test_sweep_has_own_modes_default(self):
        args = build_parser().parse_args(["sweep"])
        assert args.modes == "AD0,AD1,AD2,AD3"

    def test_sweep_modes_honored(self, capsys):
        rc = main(
            [
                "sweep",
                "--app",
                "latencybound",
                "--nodes",
                "64",
                "--samples",
                "1",
                "--modes",
                "AD0,AD2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "AD2" in out and "AD1" not in out and "AD3" not in out

    def test_sweep_does_not_mutate_compare_defaults(self):
        # regression: sweep used to overwrite args.modes unconditionally
        args = build_parser().parse_args(["sweep", "--modes", "AD1,AD3"])
        assert args.modes == "AD1,AD3"


class TestObservabilityFlags:
    def test_flags_on_every_subcommand(self):
        for cmd in ("describe", "compare", "sweep", "advise", "facility",
                    "calibrate", "ensemble"):
            args = build_parser().parse_args([cmd])
            assert args.verbose == 0
            assert args.trace is None
            assert args.metrics is None

    def test_verbose_counts(self):
        args = build_parser().parse_args(["describe", "-vv"])
        assert args.verbose == 2

    def test_trace_written_and_closed(self, tmp_path, capsys):
        trace = tmp_path / "d.jsonl"
        assert main(["facility", "--intervals", "2", "--trace", str(trace)]) == 0
        capsys.readouterr()
        from repro.telemetry import read_trace

        events = read_trace(trace)
        kinds = {e["ev"] for e in events}
        assert "facility.interval" in kinds
        assert "fluid.solve" in kinds
        assert "facility.window" in kinds
