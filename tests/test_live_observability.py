"""End-to-end live observability: CLI campaign + exporter + top + report.

These tests drive the real CLI surfaces the way an operator would:
a ``-j 2`` campaign with ``--serve`` is scraped mid-run over HTTP,
``repro top --once`` renders its progress from the trace file, and the
observed run's stdout must stay byte-identical to an unobserved one.
"""

import json
import os
import re
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.cli import main
from tests.test_telemetry import _scrape_openmetrics

REPO_ROOT = Path(__file__).resolve().parents[1]

COMPARE_ARGS = [
    "compare",
    "--system",
    "mini",
    "--nodes",
    "32",
    "--samples",
    "2",
    "--seed",
    "9",
    "-j",
    "2",
]


def _spawn_cli(args, **popen_kw):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        **popen_kw,
    )


def _wait_for_url(stream, deadline=30.0):
    """Read lines from a pipe until the exporter announces its URL."""
    t0 = time.monotonic()
    while time.monotonic() - t0 < deadline:
        line = stream.readline()
        if not line:
            time.sleep(0.05)
            continue
        m = re.search(r"http://[0-9.:]+", line)
        if m:
            return m.group(0)
    raise AssertionError("exporter URL never appeared")


def _get(url, deadline=10.0):
    t0 = time.monotonic()
    last = None
    while time.monotonic() - t0 < deadline:
        try:
            with urllib.request.urlopen(url, timeout=2) as resp:
                return resp.read().decode()
        except Exception as e:  # server still starting
            last = e
            time.sleep(0.05)
    raise AssertionError(f"could not fetch {url}: {last}")


@pytest.mark.slow
class TestLiveCampaign:
    def test_mid_run_scrape_and_top(self, tmp_path, capsys):
        trace = tmp_path / "live.jsonl"
        proc = _spawn_cli(
            [
                "compare",
                "--system",
                "mini",
                "--nodes",
                "32",
                "--samples",
                "24",
                "--seed",
                "9",
                "-j",
                "2",
                "--trace",
                str(trace),
                "--series",
                "50",
                "--serve",
                "0",
            ]
        )
        try:
            url = _wait_for_url(proc.stderr)

            # mid-run /metrics must parse as OpenMetrics
            text = _get(url + "/metrics")
            families, _ = _scrape_openmetrics(text)
            assert text.endswith("# EOF\n")

            # /runs reports live campaign progress (the exporter comes
            # up before the campaign announces itself; poll briefly)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                snap = json.loads(_get(url + "/runs"))
                if snap["app"]:
                    break
                time.sleep(0.05)
            assert snap["app"] == "MILC"
            assert snap["total_runs"] == 48
            assert snap["jobs"] == 2

            assert _get(url + "/healthz") == "ok\n"
        finally:
            out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err

        # the campaign saw real work while we scraped
        assert "campaign_sample" in " ".join(families) or snap["done_runs"] >= 0

        # top --once renders the (now finished) campaign from its trace
        rc = main(["top", str(trace), "--once"])
        assert rc == 0
        frame = capsys.readouterr().out
        assert "campaign MILC x32" in frame
        assert "48/48 runs (100%)" in frame
        assert "jobs=2" in frame
        assert "workers(2)" in frame

    def test_observed_stdout_byte_identical(self, tmp_path, capsys):
        assert main(list(COMPARE_ARGS)) == 0
        plain = capsys.readouterr().out
        rc = main(
            COMPARE_ARGS
            + [
                "--trace",
                str(tmp_path / "obs.jsonl"),
                "--series",
                "50",
                "--serve",
                "0",
            ]
        )
        assert rc == 0
        observed = capsys.readouterr().out
        assert observed == plain  # observation must never perturb results


class TestReportRobustness:
    def test_empty_trace_friendly_exit_zero(self, tmp_path, capsys):
        p = tmp_path / "empty.jsonl"
        p.write_text("")
        assert main(["report", str(p)]) == 0
        out = capsys.readouterr().out
        assert "0 events" in out
        assert "no events recorded yet" in out

    def test_truncated_tail_warns_but_summarizes(self, tmp_path, capsys):
        p = tmp_path / "torn.jsonl"
        p.write_text('{"ev":"campaign.start","ts":1.0}\n{"ev":"camp')
        assert main(["report", str(p)]) == 0
        captured = capsys.readouterr()
        assert "ends mid-line" in captured.err
        assert "campaign.start" in captured.out

    def test_malformed_lines_warn_to_stderr(self, tmp_path, capsys):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"ev":"a","ts":1.0}\ngarbage\n{"ev":"b","ts":2.0}\n')
        assert main(["report", str(p)]) == 0
        captured = capsys.readouterr()
        assert "skipped 1 malformed line(s)" in captured.err

    def test_missing_file_still_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["report", str(tmp_path / "nope.jsonl")])

    def test_follow_exits_on_campaign_end(self, tmp_path, capsys):
        p = tmp_path / "done.jsonl"
        events = [
            {"ev": "campaign.start", "ts": 1.0, "app": "MILC", "samples": 1},
            {"ev": "campaign.sample", "ts": 2.0, "status": "ok"},
            {"ev": "campaign.end", "ts": 3.0},
        ]
        p.write_text("".join(json.dumps(e) + "\n" for e in events))
        t0 = time.monotonic()
        rc = main(
            ["report", str(p), "--follow", "--interval", "0.05", "--max-seconds", "30"]
        )
        assert rc == 0
        assert time.monotonic() - t0 < 10  # exited on end, not the deadline
        assert "campaign.end" in capsys.readouterr().out

    def test_follow_respects_deadline(self, tmp_path):
        p = tmp_path / "quiet.jsonl"
        p.write_text("")
        t0 = time.monotonic()
        rc = main(
            ["report", str(p), "--follow", "--interval", "0.05", "--max-seconds", "0.3"]
        )
        assert rc == 0
        assert time.monotonic() - t0 < 10


class TestTopCommand:
    def test_once_renders_synthetic_trace(self, tmp_path, capsys):
        p = tmp_path / "t.jsonl"
        events = [
            {
                "ev": "campaign.start",
                "ts": 1.0,
                "app": "HACC",
                "n_nodes": 64,
                "modes": ["AD0"],
                "samples": 4,
                "jobs": 1,
            },
            {"ev": "campaign.sample", "ts": 2.0, "status": "ok", "wall_ms": 100.0},
        ]
        p.write_text("".join(json.dumps(e) + "\n" for e in events))
        assert main(["top", str(p), "--once"]) == 0
        frame = capsys.readouterr().out
        assert "campaign HACC x64" in frame
        assert "1/4 runs (25%)" in frame

    def test_once_tolerates_missing_trace(self, tmp_path, capsys):
        assert main(["top", str(tmp_path / "nope.jsonl"), "--once"]) == 0
        assert "waiting" in capsys.readouterr().out

    def test_passive_commands_do_not_truncate_trace(self, tmp_path, capsys):
        # `top --trace X` must treat X as input; a regression that opens
        # it for writing would wipe a live campaign's journal
        p = tmp_path / "t.jsonl"
        p.write_text('{"ev":"campaign.start","ts":1.0,"app":"M","samples":1}\n')
        before = p.read_bytes()
        assert main(["top", str(p), "--once", "--trace", str(p)]) == 0
        capsys.readouterr()
        assert p.read_bytes() == before


@pytest.mark.slow
class TestServeMetricsSidecar:
    def test_sidecar_follows_trace(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        events = [
            {
                "ev": "campaign.start",
                "ts": 1.0,
                "app": "MILC",
                "n_nodes": 32,
                "modes": ["AD0"],
                "samples": 2,
                "jobs": 1,
            },
            {"ev": "campaign.sample", "ts": 2.0, "status": "ok", "wall_ms": 50.0},
            {"ev": "campaign.sample", "ts": 3.0, "status": "ok", "wall_ms": 60.0},
            {"ev": "campaign.end", "ts": 4.0},
        ]
        trace.write_text("".join(json.dumps(e) + "\n" for e in events))
        proc = _spawn_cli(
            [
                "serve-metrics",
                "--trace",
                str(trace),
                "--port",
                "0",
                "--interval",
                "0.1",
                "--max-seconds",
                "15",
            ]
        )
        try:
            url = _wait_for_url(proc.stdout)
            text = _get(url + "/metrics")
            _scrape_openmetrics(text)  # must stay spec-conformant
            # give the poll loop a beat to fold the trace, then check
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                snap = json.loads(_get(url + "/runs"))
                if snap["done_runs"] == 2:
                    break
                time.sleep(0.1)
            assert snap["done_runs"] == 2
            assert snap["running"] is False
            text = _get(url + "/metrics")
            assert "trace_campaign_sample_total 2" in text
            assert "campaign_runs_done 2" in text
        finally:
            proc.terminate()
            proc.communicate(timeout=30)
