"""Unit tests for the congestion response functions and counter banks."""

import numpy as np
import pytest

from repro.network.congestion import (
    FLIT_BYTES,
    PACKET_BYTES,
    CongestionModel,
    LatencyModel,
)
from repro.network.counters import TILE_CLASSES, CounterBank


class TestCongestionModel:
    def setup_method(self):
        self.cm = CongestionModel()

    def test_stall_ratio_zero_at_idle(self):
        assert self.cm.stall_ratio(0.0) == 0.0

    def test_stall_ratio_monotone(self):
        u = np.linspace(0, 0.95, 50)
        r = self.cm.stall_ratio(u)
        assert (np.diff(r) >= 0).all()

    def test_stall_ratio_capped(self):
        assert self.cm.stall_ratio(0.999) <= self.cm.stall_cap
        assert self.cm.stall_ratio(5.0) <= self.cm.stall_cap

    def test_stall_ratio_small_at_moderate_load(self):
        assert self.cm.stall_ratio(0.3) < 0.5

    def test_queue_delay_zero_capacity_safe(self):
        assert self.cm.queue_delay(0.5, 0.0) == 0.0

    def test_queue_delay_scales_with_buffer_drain(self):
        fast = self.cm.queue_delay(0.6, 10e9)
        slow = self.cm.queue_delay(0.6, 1e9)
        assert slow == pytest.approx(10 * fast)

    def test_queue_delay_capped(self):
        cap = self.cm.buffer_bytes / 5.25e9 * self.cm.queue_delay_cap_factor
        assert self.cm.queue_delay(0.999, 5.25e9) <= cap * 1.0001

    def test_queue_delay_microsecond_scale(self):
        # a congested Aries link adds ~microseconds, not milliseconds
        d = self.cm.queue_delay(0.7, 5.25e9)
        assert 0.5e-6 < d < 100e-6

    def test_backpressure_identity_below_onset(self):
        assert self.cm.backpressure_factor(0.5) == 1.0
        assert self.cm.backpressure_factor(self.cm.backpressure_onset) == 1.0

    def test_backpressure_grows_then_caps(self):
        lo = self.cm.backpressure_factor(0.9)
        hi = self.cm.backpressure_factor(1.5)
        assert 1.0 < lo < hi <= self.cm.backpressure_cap

    def test_flit_packet_constants(self):
        assert PACKET_BYTES % FLIT_BYTES == 0


class TestLatencyModel:
    def test_base_latency_components(self):
        lm = LatencyModel()
        assert lm.base_latency(0) == pytest.approx(lm.software_overhead)
        assert lm.base_latency(5) == pytest.approx(
            lm.software_overhead + 5 * lm.per_hop
        )

    def test_base_latency_microseconds(self):
        # small-message MPI latency on Aries/KNL is ~1.3-2 us
        lm = LatencyModel()
        assert 1e-6 < lm.base_latency(5) < 3e-6


class TestCounterBank:
    def test_initial_state_zero(self, toy_top):
        bank = CounterBank(toy_top)
        snap = bank.snapshot()
        for c in TILE_CLASSES:
            assert snap.flits[c].sum() == 0

    def test_network_accumulation_by_class(self, toy_top):
        bank = CounterBank(toy_top)
        r1 = toy_top.rank1_link(0, 0, 0, 1)
        r3 = toy_top.rank3_link(0, 1, 0)
        bank.add_network_link_counts(
            np.array([r1, r3]), np.array([100.0, 50.0]), np.array([10.0, 5.0])
        )
        snap = bank.snapshot()
        assert snap.flits["rank1"].sum() == 100
        assert snap.flits["rank3"].sum() == 50
        assert snap.stalls["rank1"].sum() == 10

    def test_attribution_to_transmit_router(self, toy_top):
        bank = CounterBank(toy_top)
        lid = toy_top.rank1_link(0, 0, 2, 3)
        src_router = toy_top.link_src_router[lid]
        bank.add_network_link_counts(np.array([lid]), np.array([7.0]), np.array([1.0]))
        assert bank.snapshot().flits["rank1"][src_router] == 7.0

    def test_proc_split_req_rsp(self, toy_top):
        bank = CounterBank(toy_top)
        bank.add_proc_counts(
            np.array([0, 1]),
            req_flits=np.array([10.0, 20.0]),
            req_stalls=np.array([1.0, 2.0]),
            rsp_flits=np.array([3.0, 4.0]),
            rsp_stalls=np.array([0.1, 0.2]),
        )
        snap = bank.snapshot()
        assert snap.flits["proc_req"].sum() == 30
        assert snap.flits["proc_rsp"].sum() == 7
        # nodes 0,1 share router 0
        assert snap.flits["proc_req"][0] == 30

    def test_snapshot_delta(self, toy_top):
        bank = CounterBank(toy_top)
        lid = toy_top.rank1_link(0, 0, 0, 1)
        bank.add_network_link_counts(np.array([lid]), np.array([5.0]), np.array([1.0]))
        s1 = bank.snapshot()
        bank.add_network_link_counts(np.array([lid]), np.array([5.0]), np.array([4.0]))
        delta = bank.snapshot() - s1
        assert delta.flits["rank1"].sum() == 5
        assert delta.stalls["rank1"].sum() == 4

    def test_ratio_safe_when_idle(self, toy_top):
        snap = CounterBank(toy_top).snapshot()
        assert snap.class_ratio("rank1") == 0.0
        assert snap.network_ratio() == 0.0
        assert np.all(snap.ratio("rank3") == 0)

    def test_local_view_masks_other_routers(self, toy_top):
        bank = CounterBank(toy_top)
        r1a = toy_top.rank1_link(0, 0, 0, 1)  # router 0 transmits
        r1b = toy_top.rank1_link(1, 0, 0, 1)  # a router in group 1
        bank.add_network_link_counts(
            np.array([r1a, r1b]), np.array([10.0, 20.0]), np.array([0.0, 0.0])
        )
        # nodes 0/1 live on router 0 only
        local = bank.local_view(np.array([0, 1]))
        assert local.flits["rank1"].sum() == 10.0

    def test_merge_and_scale(self, toy_top):
        a = CounterBank(toy_top)
        b = CounterBank(toy_top)
        lid = toy_top.rank1_link(0, 0, 0, 1)
        b.add_network_link_counts(np.array([lid]), np.array([8.0]), np.array([2.0]))
        a.merge(b, fraction=0.5)
        assert a.snapshot().flits["rank1"].sum() == 4.0
        a.scale(3.0)
        assert a.snapshot().flits["rank1"].sum() == 12.0

    def test_scale_negative_rejected(self, toy_top):
        with pytest.raises(ValueError):
            CounterBank(toy_top).scale(-1)

    def test_merge_different_topologies_rejected(self, toy_top, mini_top):
        with pytest.raises(ValueError):
            CounterBank(toy_top).merge(CounterBank(mini_top))

    def test_per_tile_normalization(self, toy_top):
        bank = CounterBank(toy_top)
        lid = toy_top.rank1_link(0, 0, 0, 1)
        bank.add_network_link_counts(np.array([lid]), np.array([15.0]), np.array([0.0]))
        # 15 rank-1 tiles per router
        router = toy_top.link_src_router[lid]
        assert bank.per_tile_flits("rank1")[router] == pytest.approx(1.0)

    def test_reset(self, toy_top):
        bank = CounterBank(toy_top)
        lid = toy_top.rank1_link(0, 0, 0, 1)
        bank.add_network_link_counts(np.array([lid]), np.array([5.0]), np.array([0.0]))
        bank.reset()
        assert bank.snapshot().total_flits() == 0


class TestTileInventory:
    def test_aries_layout(self, theta_top):
        t = theta_top.tiles
        assert t.rank1 == 15 and t.rank2 == 15 and t.rank3 == 10 and t.proc == 8
        assert t.network == 40
        assert t.total == 48

    def test_count_for_aliases(self, theta_top):
        t = theta_top.tiles
        assert t.count_for("proc_req") == t.count_for("proc_rsp") == 8
        assert t.count_for("rank3") == 10
        with pytest.raises(KeyError):
            t.count_for("rank9")
