"""The ``repro doctor`` self-check layer.

Exit-code contract: 0 when every check passes on shipped configs, 2 on
configuration errors (bad dims, partitioned fault schedule, unwritable
checkpoint destination), 1 when config is fine but a self-test fails.
Each failure must come with a pointed, human-readable finding — not a
traceback.
"""

import pytest

import repro.cli as cli
from repro.guard.doctor import (
    CONFIG_CHECKS,
    Finding,
    check_checkpoint,
    check_faults,
    check_topology,
    exit_code,
    run_doctor,
    run_selftests,
)
from repro.topology.systems import mini, toy

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.network.fluid.NonConvergenceWarning"
)


class TestChecks:
    def test_topology_by_system(self):
        finding, top = check_topology("toy", None)
        assert finding.ok and top.n_nodes == 32
        assert "2 groups" in finding.detail

    def test_topology_custom_dims(self):
        finding, top = check_topology(None, "4,2,4,2")
        assert finding.ok and top.n_groups == 4

    def test_topology_invalid_dims(self):
        finding, top = check_topology(None, "1,2,8,2")
        assert not finding.ok and top is None
        assert "2 groups" in finding.detail

    def test_topology_malformed_dims(self):
        finding, top = check_topology(None, "4,2,8")
        assert not finding.ok and "G,C,R,N" in finding.detail

    def test_topology_unknown_system(self):
        finding, top = check_topology("summit", None)
        assert not finding.ok and "summit" in finding.detail

    def test_faults_ok(self):
        findings = check_faults("rank3:0.05", toy())
        assert all(f.ok for f in findings)
        assert any("partition probe" in f.detail for f in findings)

    def test_faults_unparsable(self):
        findings = check_faults("rank3:lots", toy())
        assert not findings[0].ok
        assert "'lots'" in findings[0].detail

    def test_faults_partitioned(self):
        # router 0 down kills every node attached to it: doctor must flag
        # the partition before a campaign wastes compute discovering it
        findings = check_faults("router:0", mini())
        assert any(not f.ok and "partitions the network" in f.detail for f in findings)

    def test_checkpoint_writable(self, tmp_path):
        assert check_checkpoint(str(tmp_path / "run.jsonl")).ok

    def test_checkpoint_missing_dir(self):
        finding = check_checkpoint("/no/such/dir/run.jsonl")
        assert not finding.ok and "does not exist" in finding.detail

    def test_selftests_pass_here(self):
        findings = run_selftests()
        assert findings and all(f.ok for f in findings)
        assert any("determinism" in f.detail for f in findings)


class TestExitCode:
    def test_all_ok(self):
        assert exit_code([Finding("environment", "ok", ""), Finding("selftest", "ok", "")]) == 0

    def test_config_failure_wins(self):
        findings = [
            Finding("selftest", "fail", "engine broken"),
            Finding("faults", "fail", "partitioned"),
        ]
        assert "faults" in CONFIG_CHECKS
        assert exit_code(findings) == 2

    def test_selftest_failure_is_1(self):
        assert exit_code([Finding("selftest", "fail", "x")]) == 1


class TestRunDoctor:
    def test_shipped_config_passes(self):
        findings = run_doctor(system="toy", selftest=True)
        assert all(f.ok for f in findings)
        assert exit_code(findings) == 0

    def test_seeded_misconfigurations(self):
        bad_dims = run_doctor(dims="1,2,8,2", selftest=False)
        assert exit_code(bad_dims) == 2
        bad_faults = run_doctor(system="mini", faults="router:0", selftest=False)
        assert exit_code(bad_faults) == 2
        bad_ckpt = run_doctor(
            system="toy", checkpoint="/no/such/dir/run.jsonl", selftest=False
        )
        assert exit_code(bad_ckpt) == 2


class TestDoctorCli:
    def test_ok_exit_0(self, capsys):
        rc = cli.main(["doctor", "--system", "toy", "--no-selftest"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "checks passed" in out and "NOT ready" not in out

    def test_partitioned_faults_exit_2(self, capsys):
        rc = cli.main(
            ["doctor", "--system", "mini", "--faults", "router:0", "--no-selftest"]
        )
        out = capsys.readouterr().out
        assert rc == 2
        assert "[FAIL] faults" in out and "partitions the network" in out

    def test_invalid_dims_exit_2(self, capsys):
        rc = cli.main(["doctor", "--dims", "1,2,8,2", "--no-selftest"])
        assert rc == 2
        assert "[FAIL] topology" in capsys.readouterr().out

    def test_unwritable_checkpoint_exit_2(self, capsys):
        rc = cli.main(
            ["doctor", "--system", "toy", "--checkpoint", "/no/such/dir/x.jsonl",
             "--no-selftest"]
        )
        assert rc == 2
        assert "[FAIL] checkpoint" in capsys.readouterr().out

    def test_selftest_via_cli(self, capsys):
        rc = cli.main(["doctor", "--system", "toy"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "strict invariants clean" in out


def test_probe_rng_is_deterministic():
    # the partition probe must not perturb any campaign RNG stream: it
    # derives its own keyed stream and two probes agree with themselves
    a = check_faults("rank3:0.3", toy(), seed=5)
    b = check_faults("rank3:0.3", toy(), seed=5)
    assert [f.detail for f in a] == [f.detail for f in b]


class TestQueuePreflight:
    """``repro doctor --queue DIR``: the distributed-campaign preflight."""

    def test_unset_queue_adds_nothing(self):
        from repro.guard.doctor import check_queue

        assert check_queue(None) == []
        assert check_queue("") == []

    def test_fresh_directory_passes_all_probes(self, tmp_path):
        from repro.guard.doctor import check_queue

        findings = check_queue(str(tmp_path / "q"))
        assert findings and all(f.ok for f in findings)
        assert all(f.check == "queue" for f in findings)
        details = " ".join(f.detail for f in findings)
        assert "O_EXCL" in details
        assert "atomic rename" in details
        assert "free" in details
        assert "clock skew" in details
        # probes clean up after themselves
        assert list((tmp_path / "q").iterdir()) == []

    def test_stale_leases_from_a_dead_campaign_are_reported(self, tmp_path):
        import json

        from repro.guard.doctor import check_queue

        leases = tmp_path / "q" / "leases"
        leases.mkdir(parents=True)
        (leases / "aaaa.lease").write_text(
            json.dumps({"owner": "dead:1", "expires_at": 1.0}) + "\n"
        )
        (leases / "bbbb.lease").write_text(
            json.dumps({"owner": "live:2", "expires_at": 4e12}) + "\n"
        )
        findings = check_queue(str(tmp_path / "q"))
        lease_findings = [f for f in findings if "lease" in f.detail and "O_EXCL" not in f.detail]
        assert lease_findings
        assert "1 live lease(s), 1 stale" in lease_findings[0].detail
        assert "workers will reclaim" in lease_findings[0].detail

    def test_queue_is_a_config_check(self, tmp_path):
        from repro.guard.doctor import CONFIG_CHECKS, exit_code

        assert "queue" in CONFIG_CHECKS
        bad = [Finding("queue", "fail", "no space")]
        assert exit_code(bad) == 2

    def test_run_doctor_includes_queue_findings(self, tmp_path):
        findings = run_doctor(
            system="toy", selftest=False, queue=str(tmp_path / "q")
        )
        assert any(f.check == "queue" for f in findings)

    def test_cli_queue_flag(self, tmp_path, capsys):
        rc = cli.main(
            ["doctor", "--system", "toy", "--no-selftest",
             "--queue", str(tmp_path / "q")]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "[ok ] queue" in out

    def test_uncreatable_queue_dir_fails(self, capsys):
        rc = cli.main(
            ["doctor", "--system", "toy", "--no-selftest",
             "--queue", "/proc/definitely/not/writable"]
        )
        assert rc == 2
        assert "[FAIL] queue" in capsys.readouterr().out
