"""Shared fixtures.

Topology construction and campaign runs are the expensive pieces, so
they are session-scoped; tests must treat them as read-only (anything
mutating — counter banks, pools — builds its own instance).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.systems import cori, mini, theta, toy


@pytest.fixture(scope="session")
def theta_top():
    return theta()


@pytest.fixture(scope="session")
def cori_top():
    return cori()


@pytest.fixture(scope="session")
def mini_top():
    return mini()


@pytest.fixture(scope="session")
def toy_top():
    return toy()


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def milc_campaign(theta_top):
    """A small paired MILC campaign shared by analysis-layer tests."""
    from repro.apps import MILC
    from repro.core.experiment import CampaignConfig, run_campaign
    from repro.scheduler.background import BackgroundModel
    from repro.util import derive_rng

    bm = BackgroundModel(theta_top)
    scenarios = bm.build_pool(3, derive_rng(99, "testpool"), reserve_nodes=256)
    cfg = CampaignConfig(app=MILC(), samples=5, scenario_pool=3)
    return run_campaign(theta_top, cfg, background_model=bm, scenarios=scenarios)
