"""Byte-offset fuzz of ``checkpoint.repair_tail`` (crash-tear coverage).

A campaign killed mid-append can truncate the checkpoint at *any* byte.
The contract: after ``repair_tail``, the file is either empty or a
header plus complete records — so ``load_records`` succeeds and a
subsequent ``append_record`` cannot corrupt anything.  These tests
enumerate every possible truncation point of a real multi-sample,
multi-mode checkpoint rather than sampling a few.
"""

import json

import pytest

from repro.apps import MILC
from repro.core import checkpoint as ckpt
from repro.core.biases import AD0, AD3
from repro.core.experiment import CampaignConfig, campaign_fingerprint, run_campaign
from repro.topology.systems import mini

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.network.fluid.NonConvergenceWarning"
)


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """One real checkpoint (2 samples x 2 modes) plus its campaign."""
    top = mini()
    cfg = CampaignConfig(
        app=MILC(), n_nodes=32, modes=(AD0, AD3), samples=2, seed=11,
        scenario_pool=4,
    )
    path = tmp_path_factory.mktemp("fuzz") / "full.jsonl"
    records = run_campaign(top, cfg, checkpoint_path=str(path))
    return path.read_bytes(), campaign_fingerprint(top, cfg), records


class TestRepairTailEveryOffset:
    def test_every_truncation_point_is_recoverable(self, corpus, tmp_path):
        data, fingerprint, records = corpus
        serial = {
            (r.sample_index, r.mode): ckpt.record_to_dict(r) for r in records
        }
        path = tmp_path / "torn.jsonl"
        for cut in range(len(data) + 1):
            path.write_bytes(data[:cut])
            ckpt.repair_tail(path)
            repaired = path.read_bytes()
            # 1) whatever survives is complete JSON lines
            assert repaired == b"" or repaired.endswith(b"\n")
            lines = repaired.splitlines()
            for line in lines:
                json.loads(line)
            if not lines:
                continue  # cut inside the header: file is (as good as) empty
            # 2) the reader accepts the repaired file and every loaded
            #    record matches the uninterrupted campaign's bytes
            done = ckpt.load_records(path, fingerprint)
            assert len(done) <= len(serial)
            for key, rec in done.items():
                assert ckpt.record_to_dict(rec) == serial[key]
            # 3) repair is idempotent: a clean tail is never touched
            assert ckpt.repair_tail(path) is False

    def test_truncation_mid_final_line_then_append_restores_bytes(
        self, corpus, tmp_path
    ):
        """The real resume path: tear the last record, repair, re-append
        it — the file must come back byte-identical."""
        data, _, records = corpus
        last_line_start = data.rstrip(b"\n").rfind(b"\n") + 1
        path = tmp_path / "tear.jsonl"
        for cut in (last_line_start + 1, len(data) - 1):
            path.write_bytes(data[:cut])
            assert ckpt.repair_tail(path) is True
            assert path.read_bytes() == data[:last_line_start]
            ckpt.append_record(path, records[-1])
            assert path.read_bytes() == data

    def test_noop_on_empty_and_clean_files(self, corpus, tmp_path):
        data, _, _ = corpus
        path = tmp_path / "c.jsonl"
        path.write_bytes(b"")
        assert ckpt.repair_tail(path) is False
        path.write_bytes(data)
        assert ckpt.repair_tail(path) is False
        assert path.read_bytes() == data

    def test_torn_newline_terminated_json_is_dropped(self, corpus, tmp_path):
        """A crash can land the newline but not the JSON before it."""
        data, fingerprint, _ = corpus
        path = tmp_path / "d.jsonl"
        path.write_bytes(data + b'{"app": "milc", "mode":\n')
        assert ckpt.repair_tail(path) is True
        assert path.read_bytes() == data
        assert ckpt.load_records(path, fingerprint)
