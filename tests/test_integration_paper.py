"""Integration tests asserting the paper's headline result *shapes*.

These exercise the full pipeline (topology -> background -> campaigns ->
analysis) at reduced sample counts and assert the qualitative findings:

* AD3 improves MILC's mean runtime and reduces its variability (Fig. 2),
* HACC is the exception and prefers AD0 (Table II / Fig. 8),
* AD3 is the best of the four modes for the mixed workload (Fig. 9),
* controlled MILC ensembles move less traffic under AD3 (Fig. 10),
* HACC ensembles show backpressure flit inflation on their hot rank-3
  cables under AD3 (Fig. 12),
* the facility default change lowers flits and median latency (Figs. 13/14).
"""

import numpy as np
import pytest

from repro.apps import HACC, MILC
from repro.core.biases import AD0, AD1, AD2, AD3
from repro.core.ensembles import EnsembleConfig, run_ensemble
from repro.core.experiment import CampaignConfig, run_campaign, stats_by_mode
from repro.scheduler.background import BackgroundModel
from repro.util import derive_rng


@pytest.fixture(scope="module")
def shared_pool():
    from repro.topology.systems import theta

    top = theta()
    bm = BackgroundModel(top)
    scenarios = bm.build_pool(6, derive_rng(2021, "itest-pool"), reserve_nodes=512)
    return top, bm, scenarios


@pytest.fixture(scope="module")
def milc_recs(shared_pool):
    top, bm, scenarios = shared_pool
    cfg = CampaignConfig(app=MILC(), samples=12, seed=77)
    return run_campaign(top, cfg, background_model=bm, scenarios=scenarios)


@pytest.fixture(scope="module")
def hacc_recs(shared_pool):
    top, bm, scenarios = shared_pool
    cfg = CampaignConfig(app=HACC(), samples=10, seed=77)
    return run_campaign(top, cfg, background_model=bm, scenarios=scenarios)


class TestMilcProduction:
    def test_ad3_improves_mean(self, milc_recs):
        st = stats_by_mode(milc_recs)
        assert st["AD3"].mean < st["AD0"].mean

    def test_ad3_reduces_variability(self, milc_recs):
        # Fig. 2: lower run-to-run variability under AD3
        st = stats_by_mode(milc_recs)
        assert st["AD3"].std < st["AD0"].std * 1.05

    def test_ad3_reduces_tail(self, milc_recs):
        st = stats_by_mode(milc_recs)
        assert st["AD3"].p95 < st["AD0"].p95

    def test_runtime_magnitude(self, milc_recs):
        # the paper's 256-node MILC runs take roughly 400-700 s
        st = stats_by_mode(milc_recs)
        assert 300 < st["AD0"].mean < 900

    def test_mpi_fraction_near_table1(self, milc_recs):
        fracs = [r.mpi_fraction for r in milc_recs if r.mode == "AD0"]
        assert 0.3 < np.mean(fracs) < 0.7  # Table I: 52%

    def test_allreduce_improves_under_ad3(self, milc_recs):
        # Fig. 5: the latency-bound MPI time shrinks with minimal bias
        def ar_mean(mode):
            return np.mean(
                [r.report.ops["MPI_Allreduce"].time for r in milc_recs if r.mode == mode]
            )

        assert ar_mean("AD3") < ar_mean("AD0")


class TestHaccProduction:
    def test_hacc_prefers_ad0(self, hacc_recs):
        # Table II: the one application that degrades under AD3
        st = stats_by_mode(hacc_recs)
        assert st["AD3"].mean > st["AD0"].mean

    def test_hacc_degradation_is_mild(self, hacc_recs):
        # -2.7% in the paper; the model should stay within ~[-15%, 0)
        st = stats_by_mode(hacc_recs)
        loss = (st["AD3"].mean - st["AD0"].mean) / st["AD0"].mean
        assert 0.0 < loss < 0.15

    def test_hacc_wait_dominates(self, hacc_recs):
        # Table I: MPI_Wait is HACC's top interface
        assert hacc_recs[0].report.top_ops(1) == ["MPI_Wait"]


class TestControlledModes:
    def test_ad3_best_of_four_for_milc(self, shared_pool):
        # Fig. 9's ordering, probed with MILC (the latency-sensitive app)
        top, bm, scenarios = shared_pool
        cfg = CampaignConfig(
            app=MILC(), samples=6, modes=(AD0, AD1, AD2, AD3), seed=31
        )
        recs = run_campaign(top, cfg, background_model=bm, scenarios=scenarios)
        st = stats_by_mode(recs)
        assert st["AD3"].mean <= min(st["AD0"].mean, st["AD1"].mean) * 1.02
        # biased modes beat the unbiased default on average
        assert min(st["AD2"].mean, st["AD3"].mean) < st["AD0"].mean


class TestControlledEnsembles:
    def test_milc_ensemble_fig10_shapes(self, shared_pool):
        top, _, _ = shared_pool
        snaps = {}
        for mode in (AD0, AD3):
            r = run_ensemble(
                top,
                EnsembleConfig(
                    app=MILC(), n_jobs=4, n_nodes=256, mode=mode, placement="dispersed"
                ),
            )
            snaps[mode.name] = r.bank.snapshot()
        net = ("rank1", "rank2", "rank3")
        # fewer packet transmissions under minimal bias
        assert snaps["AD3"].total_flits(net) < snaps["AD0"].total_flits(net)
        # clear stall reduction on the copper tiles
        assert snaps["AD3"].stalls["rank1"].sum() < snaps["AD0"].stalls["rank1"].sum()
        assert snaps["AD3"].stalls["rank2"].sum() < snaps["AD0"].stalls["rank2"].sum()

    def test_hacc_ensemble_fig12_shapes(self, shared_pool):
        top, _, _ = shared_pool
        results = {}
        for mode in (AD0, AD3):
            results[mode.name] = run_ensemble(
                top,
                EnsembleConfig(
                    app=HACC(), n_jobs=8, n_nodes=256, mode=mode, placement="compact"
                ),
            )
        # AD3 runtimes suffer (bisection-bound workload)
        assert results["AD3"].job_runtimes.mean() > results["AD0"].job_runtimes.mean() * 0.98
        # localized rank-3 stall peaks under minimal concentration
        peak0 = results["AD0"].bank.snapshot().stalls["rank3"].max()
        peak3 = results["AD3"].bank.snapshot().stalls["rank3"].max()
        assert peak3 > peak0 * 0.9


class TestFacilityChange:
    def test_default_change_directions(self, shared_pool):
        from repro.core.facility import run_default_change_study

        top, _, _ = shared_pool
        study = run_default_change_study(top, n_intervals=8, seed=5)
        change = study.counter_change()
        # fewer transmissions with minimal routing...
        assert change["flits"] < 0.0
        # ...and no stall explosion (the paper: a marked improvement)
        assert change["stalls"] < 0.25
        # median packet latency improves
        lat = study.latency_change()
        assert lat[50] < 2.0
        assert lat[25] < 1.0
