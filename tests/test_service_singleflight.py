"""Concurrency and crash-safety contracts of the campaign service.

* **single-flight** — N concurrent identical submissions coalesce into
  one execution (one job id, one set of store puts);
* **isolation** — campaigns with distinct fingerprints never share
  cache entries, even when submitted concurrently;
* **crash atomicity** — an executor SIGKILLed at any instant leaves no
  torn cache entry: every visible entry is complete and valid, and a
  torn file planted at *every* truncation offset (the
  ``test_checkpoint_fuzz`` harness, pointed at the store) is
  quarantined, never served, never fatal.
"""

import json
import os
import signal
import threading
import time

import pytest

from repro.apps import MILC
from repro.core.biases import AD0, AD3
from repro.core.experiment import CampaignConfig, campaign_fingerprint
from repro.dist.manifest import campaign_to_manifest
from repro.service import (
    CampaignService,
    RunRecordStore,
    entry_key,
    run_campaign_cached,
)
from repro.service import client
from repro.service.store import _entry_digest
from repro.telemetry import NULL_TELEMETRY
from repro.topology.systems import mini

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.network.fluid.NonConvergenceWarning"
)


@pytest.fixture(scope="module")
def top():
    return mini()


def _cfg(**kw):
    kw.setdefault("samples", 2)
    kw.setdefault("seed", 11)
    return CampaignConfig(
        app=MILC(), n_nodes=32, modes=(AD0, AD3), scenario_pool=4, **kw
    )


def _manifest(top, cfg):
    return campaign_to_manifest(top, cfg, NULL_TELEMETRY)


class TestSingleFlight:
    def test_concurrent_identical_submissions_execute_once(self, top, tmp_path):
        store = RunRecordStore(tmp_path / "cache")
        service = CampaignService(store).start()
        try:
            man = _manifest(top, _cfg())
            n = 6
            results: list[dict] = [None] * n
            barrier = threading.Barrier(n)

            def _submit(k):
                barrier.wait()
                results[k] = client.submit(service.url, man)

            threads = [
                threading.Thread(target=_submit, args=(k,)) for k in range(n)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            ids = {r["id"] for r in results}
            assert len(ids) == 1, f"submissions split into jobs {ids}"
            assert sum(1 for r in results if r["deduped"]) == n - 1
            doc = client.wait(service.url, ids.pop(), timeout=300)
            assert doc["state"] == "done"
            assert doc["coalesced"] == n - 1
            # executed exactly once: every run was a fresh put, none a
            # duplicate from a second execution
            st = store.stats()
            assert st.puts == len(doc["records"])
            assert st.dedup_puts == 0
        finally:
            service.close()

    def test_sequential_resubmission_is_a_new_job_but_all_hits(self, top, tmp_path):
        store = RunRecordStore(tmp_path / "cache")
        service = CampaignService(store).start()
        try:
            man = _manifest(top, _cfg())
            first = client.submit(service.url, man)
            done1 = client.wait(service.url, first["id"], timeout=300)
            second = client.submit(service.url, man)
            assert second["deduped"] is False  # first already finished
            assert second["id"] != first["id"]
            done2 = client.wait(service.url, second["id"], timeout=60)
            assert done2["cache"]["hits"] == len(done1["records"])
            assert done2["cache"]["misses"] == 0
            assert done2["records"] == done1["records"]
            assert client.cache_stats(service.url)["cache_hits_total"] > 0
        finally:
            service.close()

    def test_distinct_fingerprints_never_share_entries(self, top, tmp_path):
        store = RunRecordStore(tmp_path / "cache")
        service = CampaignService(store).start()
        try:
            cfg_a, cfg_b = _cfg(seed=11), _cfg(seed=12)
            ra = client.submit(service.url, _manifest(top, cfg_a))
            rb = client.submit(service.url, _manifest(top, cfg_b))
            assert ra["id"] != rb["id"] and not rb["deduped"]
            da = client.wait(service.url, ra["id"], timeout=300)
            db = client.wait(service.url, rb["id"], timeout=300)
            # each campaign only sees its own keys
            fa = campaign_fingerprint(top, cfg_a)
            fb = campaign_fingerprint(top, cfg_b)
            runs = [(i, m.name) for i in range(2) for m in (AD0, AD3)]
            keys_a = {entry_key(fa, i, m) for i, m in runs}
            keys_b = {entry_key(fb, i, m) for i, m in runs}
            assert not (keys_a & keys_b)
            assert len(store) == len(keys_a) + len(keys_b)
            # and the served records differ (different seeds, different draws)
            assert da["records"] != db["records"]
        finally:
            service.close()


class TestCrashAtomicity:
    def test_sigkilled_executor_leaves_no_torn_entry(self, top, tmp_path):
        """Fork a cached campaign, SIGKILL it as soon as entries start
        landing, and verify every visible entry is complete and valid."""
        import multiprocessing as mp

        cache_dir = tmp_path / "cache"
        cfg = _cfg(samples=3)

        def _child():
            run_campaign_cached(top, cfg, store=RunRecordStore(cache_dir))

        ctx = mp.get_context("fork")
        proc = ctx.Process(target=_child)
        proc.start()
        deadline = time.monotonic() + 120
        entries_dir = cache_dir / "entries"
        while time.monotonic() < deadline:
            if entries_dir.is_dir() and list(entries_dir.glob("*.json")):
                break
            if not proc.is_alive():
                break  # finished before we could kill it — still valid
            time.sleep(0.005)
        if proc.is_alive():
            os.kill(proc.pid, signal.SIGKILL)
        proc.join(timeout=30)

        fp = campaign_fingerprint(top, cfg)
        store = RunRecordStore(cache_dir)
        committed = list(entries_dir.glob("*.json"))
        assert committed, "child was killed before committing anything"
        for path in committed:
            entry = json.loads(path.read_bytes())  # parses: not torn
            assert entry["fingerprint"] == fp
            assert entry["sha256"] == _entry_digest(
                entry["fingerprint"], entry["rng_key"], entry["record"]
            )
        # the reader agrees: every committed entry is servable
        hits = sum(
            store.get(fp, i, m.name) is not None
            for i in range(3)
            for m in (AD0, AD3)
        )
        assert hits == len(committed)
        assert store.stats().quarantined == 0

    def test_every_truncation_offset_of_an_entry_is_quarantined(
        self, top, tmp_path
    ):
        """The checkpoint-fuzz harness pointed at a real cache entry: a
        commit torn at any byte must never be served and never crash."""
        cfg = _cfg(samples=1)
        store = RunRecordStore(tmp_path / "cache")
        out = run_campaign_cached(top, cfg, store=store)
        fp = campaign_fingerprint(top, cfg)
        rec = out.records[0]
        key = entry_key(fp, rec.sample_index, rec.mode)
        path = store._path(key)
        pristine = path.read_bytes()
        served = store.get(fp, rec.sample_index, rec.mode)
        assert served is not None

        quarantined = 0
        for cut in range(len(pristine)):
            path.write_bytes(pristine[:cut])
            got = store.get(fp, rec.sample_index, rec.mode)
            if got is None:
                # torn: must be quarantined, never left in place
                assert not path.exists(), f"cut at {cut}: torn entry survived"
                quarantined += 1
            else:
                # a cut that only lost trailing whitespace still parses to
                # the complete entry — serving it is correct, but it must
                # be byte-for-byte the pristine record, never a wrong one
                assert got == served, f"cut at {cut}: wrong record served"
            # heal for the next offset
            path.write_bytes(pristine)
        # every cut that removed actual payload was quarantined
        assert quarantined >= len(pristine) - 2
        assert store.get(fp, rec.sample_index, rec.mode) == served
        assert store.stats().quarantined == quarantined

    def test_tmp_scratch_from_killed_writer_is_invisible_and_reaped(
        self, top, tmp_path
    ):
        store = RunRecordStore(tmp_path / "cache")
        fp = {"app": "milc", "seed": 1}
        # a SIGKILL mid-tmp-write leaves scratch that no reader sees
        (store.tmp_dir / ".abc.999.dead").write_bytes(b'{"kind": "repro-run')
        assert store.get(fp, 0, "AD0") is None
        assert store.stats().entries == 0
        # and a fresh store instance reaps it
        again = RunRecordStore(tmp_path / "cache")
        assert not list(again.tmp_dir.iterdir())
