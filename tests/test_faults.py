"""Tests for the fault-injection subsystem (``repro.faults``).

Covers the acceptance criteria of the robustness milestone: strict
no-op empty schedules, fault-avoiding path construction, partition
detection at the path layer, load shift onto surviving cables, fluid
safety on degraded capacities, per-run failure isolation, and JSONL
checkpoint/resume identity.
"""

import numpy as np
import pytest

import repro.core.experiment as experiment
from repro.apps import LatencyBound
from repro.core import checkpoint as ckpt
from repro.core.biases import AD0, AD3
from repro.core.experiment import CampaignConfig, campaign_fingerprint, run_campaign
from repro.faults import NO_FAULTS, FaultSchedule, FaultSpec, NetworkPartitionedError
from repro.network.fluid import FlowSet, solve_fluid
from repro.network.packet_sim import InjectionSpec, PacketSimConfig, PacketSimulator
from repro.topology.paths import minimal_paths, valiant_paths


class TestFaultModel:
    def test_empty_schedule_is_falsy_and_scale_free(self, mini_top):
        assert not NO_FAULTS
        assert len(NO_FAULTS) == 0
        assert NO_FAULTS.capacity_scale(mini_top, at_time=0.0) is None

    def test_dead_cable_kills_both_directions(self, mini_top):
        sched = FaultSchedule(specs=(FaultSpec.dead_cable(0, 1, 2),))
        scale = sched.capacity_scale(mini_top, at_time=0.0)
        assert scale[mini_top.rank3_link(0, 1, 2)] == 0.0
        assert scale[mini_top.rank3_link(1, 0, 2)] == 0.0
        # everything else untouched
        assert (np.delete(scale, [mini_top.rank3_link(0, 1, 2),
                                  mini_top.rank3_link(1, 0, 2)]) == 1.0).all()

    def test_degraded_cable_uses_lane_geometry(self, mini_top):
        # mini has 3 lanes/cable: losing one leaves 2/3 of the capacity
        sched = FaultSchedule(specs=(FaultSpec.degraded_cable(0, 1, 0, lanes_lost=1),))
        scale = sched.capacity_scale(mini_top, at_time=0.0)
        assert scale[mini_top.rank3_link(0, 1, 0)] == pytest.approx(2.0 / 3.0)

    def test_composition_is_multiplicative(self, mini_top):
        link = int(mini_top.rank3_link(0, 1, 0))
        sched = FaultSchedule(
            specs=(
                FaultSpec.degraded_links([link], 0.5),
                FaultSpec.degraded_links([link], 0.5),
            )
        )
        scale = sched.capacity_scale(mini_top, at_time=0.0)
        assert scale[link] == pytest.approx(0.25)

    def test_timed_window(self, mini_top):
        sched = FaultSchedule(
            specs=(FaultSpec.dead_cable(0, 1, 0, start=10.0, end=20.0),)
        )
        assert sched.capacity_scale(mini_top, at_time=0.0) is None
        assert sched.capacity_scale(mini_top, at_time=15.0) is not None
        assert sched.capacity_scale(mini_top, at_time=25.0) is None
        assert sched.change_times() == [10.0, 20.0]

    def test_random_failures_deterministic_from_seed(self, mini_top):
        a = FaultSchedule.parse("rank3:0.25", seed=7).capacity_scale(mini_top, at_time=0.0)
        b = FaultSchedule.parse("rank3:0.25", seed=7).capacity_scale(mini_top, at_time=0.0)
        c = FaultSchedule.parse("rank3:0.25", seed=8).capacity_scale(mini_top, at_time=0.0)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_parse_grammar(self, mini_top):
        sched = FaultSchedule.parse("cable:0-1:2;link:5*0.5;router:3@10,20", seed=1)
        assert len(sched) == 3
        scale = sched.capacity_scale(mini_top, at_time=0.0)
        assert scale[mini_top.rank3_link(0, 1, 2)] == 0.0
        assert scale[5] == pytest.approx(0.5)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="unknown fault spec"):
            FaultSchedule.parse("bogus:1")


class TestWithFaults:
    def test_empty_schedule_returns_self(self, mini_top):
        assert mini_top.with_faults(NO_FAULTS) is mini_top
        assert mini_top.with_faults(None) is mini_top
        assert mini_top.with_faults(FaultSchedule()) is mini_top

    def test_view_masks_capacity_without_mutating_base(self, mini_top):
        sched = FaultSchedule(specs=(FaultSpec.dead_cable(0, 1, 0),))
        view = mini_top.with_faults(sched)
        assert view is not mini_top
        assert view.has_faults and not mini_top.has_faults
        dead = mini_top.rank3_link(0, 1, 0)
        assert view.capacity[dead] == 0.0
        assert mini_top.capacity[dead] > 0.0
        np.testing.assert_array_equal(view.base_capacity, mini_top.capacity)


class TestFaultAwarePaths:
    def test_paths_avoid_dead_links(self, mini_top):
        sched = FaultSchedule.parse("cable:0-1:0;cable:0-1:1", seed=3)
        view = mini_top.with_faults(sched)
        rng = np.random.default_rng(0)
        src = np.arange(0, 8)
        dst = src + 40  # group 0 -> group 1 on mini
        for builder in (minimal_paths, valiant_paths):
            bundle = builder(view, src, dst, k=4, rng=rng)
            used = bundle.links[bundle.links >= 0]
            assert (view.capacity[used] > 0.0).all()

    def test_partition_raises_typed_error(self, toy_top):
        # toy has exactly 2 groups: cutting every 0-1 cable partitions it
        K = toy_top.params.cables_per_group_pair
        sched = FaultSchedule(
            specs=tuple(FaultSpec.dead_cable(0, 1, c) for c in range(K))
        )
        view = toy_top.with_faults(sched)
        src = np.array([0])
        dst = np.array([toy_top.n_nodes - 1])  # other group
        with pytest.raises(NetworkPartitionedError):
            minimal_paths(view, src, dst, k=2, rng=np.random.default_rng(0))

    def test_intra_group_paths_survive_partition(self, toy_top):
        # the cut only separates the groups; local traffic still routes
        K = toy_top.params.cables_per_group_pair
        sched = FaultSchedule(
            specs=tuple(FaultSpec.dead_cable(0, 1, c) for c in range(K))
        )
        view = toy_top.with_faults(sched)
        bundle = minimal_paths(
            view, np.array([0]), np.array([5]), k=2, rng=np.random.default_rng(0)
        )
        used = bundle.links[bundle.links >= 0]
        assert (view.capacity[used] > 0.0).all()


class TestLoadShift:
    def cross_group_sim(self, top, faults):
        sim = PacketSimulator(
            top,
            PacketSimConfig(reroute_patience=4),
            rng=np.random.default_rng(11),
            faults=faults,
        )
        N = top.n_nodes
        for s in range(8):
            sim.add_message(
                InjectionSpec(src=s, dst=(s + N // 2) % N, nbytes=64 * 400, mode=AD0)
            )
        sim.run()
        return sim

    def test_surviving_cable_absorbs_the_load(self, toy_top):
        # toy has 2 cables between its two groups; killing cable 0 must
        # push the flits it would have carried onto cable 1 (the paper's
        # degraded-operation premise), visible at the counter level
        pristine = self.cross_group_sim(toy_top, None)
        faulted = self.cross_group_sim(
            toy_top, FaultSchedule(specs=(FaultSpec.dead_cable(0, 1, 0),), seed=2)
        )
        assert all(m.delivered for m in faulted.messages)
        dead_links = [toy_top.rank3_link(0, 1, 0), toy_top.rank3_link(1, 0, 0)]
        live_links = [toy_top.rank3_link(0, 1, 1), toy_top.rank3_link(1, 0, 1)]
        assert sum(faulted.flits[link] for link in dead_links) == 0.0
        live_flits = sum(faulted.flits[link] for link in live_links)
        live_flits_pristine = sum(pristine.flits[link] for link in live_links)
        assert live_flits > live_flits_pristine
        # total rank-3 traffic is conserved, not dropped
        total_pristine = sum(
            pristine.flits[link] for link in dead_links + live_links
        )
        assert live_flits == pytest.approx(total_pristine, rel=0.35)


class TestFluidDegraded:
    def cross_flows(self, top):
        src = np.arange(0, 12)
        dst = src + top.n_nodes // 2
        nbytes = np.full(src.size, 1 << 20, dtype=np.float64)
        return FlowSet(src, dst, nbytes, np.zeros(src.size, dtype=np.int64))

    def test_finite_on_dead_and_degraded_caps(self, mini_top):
        sched = FaultSchedule.parse("cable:0-2:0;cable:0-2:1*0.25", seed=5)
        view = mini_top.with_faults(sched)
        res = solve_fluid(
            view, self.cross_flows(mini_top), [AD0], rng=np.random.default_rng(0)
        )
        assert np.isfinite(res.phase_time) and res.phase_time > 0
        assert np.isfinite(res.flow_time).all()
        assert np.isfinite(res.link_load).all()

    def test_dead_links_carry_no_load(self, mini_top):
        sched = FaultSchedule(specs=(FaultSpec.dead_cable(0, 2, 0),), seed=5)
        view = mini_top.with_faults(sched)
        res = solve_fluid(
            view, self.cross_flows(mini_top), [AD0], rng=np.random.default_rng(0)
        )
        for link in (mini_top.rank3_link(0, 2, 0), mini_top.rank3_link(2, 0, 0)):
            assert res.link_load[link] == 0.0


def small_campaign(faults=None, *, samples=3, max_attempts=1, placement="dispersed"):
    return CampaignConfig(
        app=LatencyBound(),
        n_nodes=48,
        modes=(AD0, AD3),
        samples=samples,
        placement=placement,
        background="isolated",
        seed=77,
        faults=faults,
        max_attempts=max_attempts,
    )


class TestCampaignRobustness:
    def test_empty_schedule_is_byte_identical(self, mini_top):
        # the regression the tentpole hinges on: an empty FaultSchedule
        # must not perturb a single RNG draw anywhere in the stack
        base = run_campaign(mini_top, small_campaign(None))
        empty = run_campaign(mini_top, small_campaign(FaultSchedule()))
        assert [ckpt.record_to_dict(r) for r in base] == [
            ckpt.record_to_dict(r) for r in empty
        ]

    def test_faults_change_results(self, mini_top):
        base = run_campaign(mini_top, small_campaign(None))
        hurt = run_campaign(
            mini_top,
            small_campaign(FaultSchedule.parse("cable:0-1:0;cable:0-1:1", seed=1)),
        )
        assert any(
            b.runtime != h.runtime for b, h in zip(base, hurt)
        )
        assert all(h.ok for h in hurt)

    def test_partition_isolated_into_error_records(self, mini_top):
        # cut every cable out of group 0: runs placed there cannot route,
        # but the campaign must finish and report them as error records
        K = mini_top.params.cables_per_group_pair
        specs = tuple(
            FaultSpec.dead_cable(0, g, c)
            for g in range(1, mini_top.n_groups)
            for c in range(K)
        )
        recs = run_campaign(
            mini_top, small_campaign(FaultSchedule(specs=specs), samples=2)
        )
        assert len(recs) == 4  # nothing aborted the sweep
        failed = [r for r in recs if not r.ok]
        assert failed, "dispersed jobs must have crossed the cut"
        for r in failed:
            assert r.status == "error"
            assert np.isnan(r.runtime)
            assert "partition" in r.error.lower()

    def test_single_failing_run_does_not_abort(self, mini_top, monkeypatch):
        # the flaky counter lives in this process: keep the run in-process
        # even when the suite executes under REPRO_JOBS>1
        monkeypatch.setenv("REPRO_JOBS", "1")
        real = experiment.run_app_once
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("injected transient failure")
            return real(*args, **kwargs)

        monkeypatch.setattr(experiment, "run_app_once", flaky)
        recs = run_campaign(mini_top, small_campaign(None, samples=2))
        assert len(recs) == 4
        bad = [r for r in recs if not r.ok]
        assert len(bad) == 1
        assert "injected transient failure" in bad[0].error
        assert all(np.isfinite(r.runtime) for r in recs if r.ok)

    def test_transient_failure_retried(self, mini_top, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")  # counter is per-process
        real = experiment.run_app_once
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("boom once")
            return real(*args, **kwargs)

        monkeypatch.setattr(experiment, "run_app_once", flaky)
        recs = run_campaign(mini_top, small_campaign(None, samples=1, max_attempts=2))
        assert all(r.ok for r in recs)
        assert recs[0].attempts == 2

    def test_failed_runs_excluded_from_stats(self, mini_top, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")  # counter is per-process
        real = experiment.run_app_once
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("boom")
            return real(*args, **kwargs)

        monkeypatch.setattr(experiment, "run_app_once", flaky)
        recs = run_campaign(mini_top, small_campaign(None, samples=2))
        by_mode = experiment.runtimes_by_mode(recs)
        assert all(np.isfinite(v).all() for v in by_mode.values())
        assert sum(v.size for v in by_mode.values()) == 3


class TestCheckpointResume:
    def test_resume_after_truncation_is_identical(self, mini_top, tmp_path, monkeypatch):
        # the headline crash-tolerance criterion: kill a campaign
        # mid-sweep (simulated by truncating its checkpoint mid-line),
        # resume, and get records identical to an uninterrupted run
        path = tmp_path / "ck.jsonl"
        cfg = small_campaign(None)
        full = run_campaign(mini_top, cfg, checkpoint_path=str(path))
        blob = path.read_bytes()
        lines = blob.splitlines(keepends=True)
        assert len(lines) == 1 + len(full)
        # keep header + 3 records + half of the 4th (crash mid-append)
        path.write_bytes(b"".join(lines[:4]) + lines[4][: len(lines[4]) // 2])

        monkeypatch.setenv("REPRO_JOBS", "1")  # counter is per-process
        real = experiment.run_app_once
        calls = {"n": 0}

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(experiment, "run_app_once", counting)
        resumed = run_campaign(mini_top, cfg, checkpoint_path=str(path), resume=True)
        assert [ckpt.record_to_dict(r) for r in resumed] == [
            ckpt.record_to_dict(r) for r in full
        ]
        # only the lost runs were re-executed
        assert calls["n"] == len(full) - 3

    def test_double_resume_from_clean_file(self, mini_top, tmp_path):
        # resuming rewrites the file cleanly, so a second resume works
        path = tmp_path / "ck.jsonl"
        cfg = small_campaign(None, samples=2)
        full = run_campaign(mini_top, cfg, checkpoint_path=str(path))
        again = run_campaign(mini_top, cfg, checkpoint_path=str(path), resume=True)
        once_more = run_campaign(mini_top, cfg, checkpoint_path=str(path), resume=True)
        assert [ckpt.record_to_dict(r) for r in once_more] == [
            ckpt.record_to_dict(r) for r in full
        ]
        assert [ckpt.record_to_dict(r) for r in again] == [
            ckpt.record_to_dict(r) for r in full
        ]

    def test_fingerprint_mismatch_rejected(self, mini_top, tmp_path):
        path = tmp_path / "ck.jsonl"
        cfg = small_campaign(None, samples=1)
        run_campaign(mini_top, cfg, checkpoint_path=str(path))
        other = small_campaign(None, samples=1)
        other = CampaignConfig(**{**other.__dict__, "seed": 78})
        with pytest.raises(ValueError, match="fingerprint|config"):
            ckpt.load_records(str(path), campaign_fingerprint(mini_top, other))

    def test_record_roundtrip(self, mini_top):
        recs = run_campaign(mini_top, small_campaign(None, samples=1))
        for r in recs:
            d = ckpt.record_to_dict(r)
            back = ckpt.record_from_dict(d)
            assert ckpt.record_to_dict(back) == d

    def test_faults_in_fingerprint(self, mini_top):
        a = campaign_fingerprint(mini_top, small_campaign(None))
        b = campaign_fingerprint(
            mini_top, small_campaign(FaultSchedule.parse("cable:0-1:0", seed=1))
        )
        assert a != b
