"""Byte-equivalence contract of the memoizing campaign executor.

The claim under test (ISSUE 9 acceptance): for the same campaign,
**cold** (empty cache), **warm** (fully populated), and **mixed**
(partial hits) executions of :func:`repro.service.run_campaign_cached`
all produce records and checkpoint JSONL byte-identical to a plain
serial :func:`repro.core.experiment.run_campaign` — and a warm replay
executes *zero* simulation steps.  Without ``--cache``, the CLI is a
strict no-op over the uncached path.
"""

import json

import pytest

from repro.apps import MILC
from repro.core import checkpoint as ckpt
from repro.core.biases import AD0, AD3
from repro.core.experiment import (
    CampaignConfig,
    campaign_fingerprint,
    run_campaign,
)
from repro.service import RunRecordStore, entry_key, run_campaign_cached
from repro.telemetry import MetricsRegistry, Telemetry
from repro.topology.systems import mini

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.network.fluid.NonConvergenceWarning"
)


@pytest.fixture(scope="module")
def top():
    return mini()


def _cfg(**kw):
    kw.setdefault("samples", 3)
    kw.setdefault("seed", 11)
    return CampaignConfig(
        app=MILC(), n_nodes=32, modes=(AD0, AD3), scenario_pool=4, **kw
    )


def _dicts(records):
    return [ckpt.record_to_dict(r) for r in records]


@pytest.fixture(scope="module")
def serial(top, tmp_path_factory):
    """The ground truth: serial records + checkpoint bytes."""
    path = tmp_path_factory.mktemp("serial") / "ck.jsonl"
    records = run_campaign(top, _cfg(), checkpoint_path=str(path))
    return _dicts(records), path.read_bytes()


class TestColdWarmMixed:
    def test_cold_run_matches_serial(self, top, serial, tmp_path):
        recs, bytes_ = serial
        store = RunRecordStore(tmp_path / "cache")
        ck = tmp_path / "cold.jsonl"
        out = run_campaign_cached(
            top, _cfg(), store=store, checkpoint_path=str(ck)
        )
        assert out.hits == 0 and out.misses == len(recs)
        assert _dicts(out.records) == recs
        assert ck.read_bytes() == bytes_

    def test_warm_run_is_byte_identical_and_executes_nothing(
        self, top, serial, tmp_path, monkeypatch
    ):
        recs, bytes_ = serial
        store = RunRecordStore(tmp_path / "cache")
        run_campaign_cached(top, _cfg(), store=store)

        # zero simulation steps: any dispatch on the warm pass is a bug
        import repro.service.executor as executor

        def _boom(*a, **k):
            raise AssertionError("warm replay executed a simulation run")

        monkeypatch.setattr(executor, "execute_run", _boom)
        tel = Telemetry(metrics=MetricsRegistry(enabled=True))
        ck = tmp_path / "warm.jsonl"
        out = run_campaign_cached(
            top, _cfg(), store=store, checkpoint_path=str(ck), telemetry=tel
        )
        assert out.hits == len(recs) and out.misses == 0
        assert _dicts(out.records) == recs
        assert ck.read_bytes() == bytes_
        # the hit counter is on both surfaces: campaign metrics and store
        assert tel.metrics.counter("cache_hits_total").value == len(recs)
        assert store.stats().hits == len(recs)
        # no run executed → no campaign_samples_total increments
        assert "campaign_samples_total" not in tel.metrics.to_json()

    def test_mixed_hits_and_misses_match_serial(self, top, serial, tmp_path):
        recs, bytes_ = serial
        store = RunRecordStore(tmp_path / "cache")
        run_campaign_cached(top, _cfg(), store=store)
        # knock out half the entries (every other canonical run)
        fp = campaign_fingerprint(top, _cfg())
        runs = [(i, m.name) for i in range(3) for m in (AD0, AD3)]
        for n, (i, mode) in enumerate(runs):
            if n % 2 == 1:
                store._path(entry_key(fp, i, mode)).unlink()
        ck = tmp_path / "mixed.jsonl"
        out = run_campaign_cached(
            top, _cfg(), store=store, checkpoint_path=str(ck)
        )
        assert out.hits == 3 and out.misses == 3
        assert _dicts(out.records) == recs
        assert ck.read_bytes() == bytes_

    def test_warm_parallel_dispatch_matches_serial(self, top, serial, tmp_path):
        """Mixed cache + fork-pool misses: still byte-identical."""
        recs, bytes_ = serial
        store = RunRecordStore(tmp_path / "cache")
        ck = tmp_path / "pool.jsonl"
        out = run_campaign_cached(
            top, _cfg(), store=store, checkpoint_path=str(ck), jobs=2
        )
        assert out.misses == len(recs)
        assert _dicts(out.records) == recs
        assert ck.read_bytes() == bytes_
        # and the pool-produced entries serve a warm serial replay
        out2 = run_campaign_cached(top, _cfg(), store=store)
        assert out2.hits == len(recs)
        assert _dicts(out2.records) == recs

    def test_resume_plus_cache_matches_serial(self, top, serial, tmp_path):
        """A torn checkpoint resumed against a warm cache: the rewritten
        file ends byte-identical to the uninterrupted serial one."""
        recs, bytes_ = serial
        store = RunRecordStore(tmp_path / "cache")
        run_campaign_cached(top, _cfg(), store=store)
        ck = tmp_path / "resume.jsonl"
        # keep header + first two records, as if SIGKILLed mid-campaign
        lines = bytes_.splitlines(keepends=True)
        ck.write_bytes(b"".join(lines[:3]))
        out = run_campaign_cached(
            top, _cfg(), store=store, checkpoint_path=str(ck), resume=True
        )
        assert out.resumed == 2 and out.hits == len(recs) - 2
        assert _dicts(out.records) == recs
        assert ck.read_bytes() == bytes_


class TestErrorRecordsNotCached:
    def test_failed_runs_reexecute_on_next_campaign(self, top, tmp_path):
        """Error-status records never enter the store: a campaign whose
        runs fail deterministically gets zero hits on replay."""
        cfg = _cfg(samples=1)
        from repro.core import experiment

        store = RunRecordStore(tmp_path / "cache")
        tel = Telemetry(metrics=MetricsRegistry(enabled=True))

        real = experiment.execute_run

        def _fail(top_, run_top, cfg_, i, mode, nodes, bg, intensity, tel_):
            # what execute_run returns when the run itself fails
            return experiment._error_record(
                cfg_, mode, i, 1, float(intensity), RuntimeError("boom"), 1
            )

        import repro.service.executor as executor

        orig = executor.execute_run
        executor.execute_run = _fail
        try:
            out1 = run_campaign_cached(top, cfg, store=store, telemetry=tel)
        finally:
            executor.execute_run = orig
        assert all(not r.ok for r in out1.records)
        assert len(store) == 0  # nothing cached
        out2 = run_campaign_cached(top, cfg, store=store)
        assert out2.hits == 0 and out2.misses == len(out2.records)
        assert all(r.ok for r in out2.records)
        assert real is experiment.execute_run  # monkeypatch fully undone


class TestCacheDisabledIsNoOp:
    def test_cli_without_cache_flag_matches_library_serial(
        self, top, serial, tmp_path, capsys
    ):
        """`repro compare` without --cache is the seed behavior: same
        checkpoint bytes as a plain run_campaign, no cache artifacts."""
        from repro.cli import main

        recs, bytes_ = serial
        ck = tmp_path / "cli.jsonl"
        rc = main(
            [
                "compare", "--system", "mini", "--app", "milc",
                "--nodes", "32", "--samples", "3", "--seed", "11",
                "--checkpoint", str(ck),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cache:" not in out  # no cache accounting printed
        # scenario_pool differs between CLI default and _cfg, so compare
        # structure rather than bytes: header + one line per run
        lines = ck.read_bytes().splitlines()
        assert len(lines) == 1 + len(recs)

    def test_cli_with_cache_flag_is_byte_identical_to_serial(
        self, top, serial, tmp_path, capsys
    ):
        from repro.cli import main

        _, _ = serial
        ck_plain = tmp_path / "plain.jsonl"
        ck_cached = tmp_path / "cached.jsonl"
        argv = [
            "compare", "--system", "mini", "--app", "milc",
            "--nodes", "32", "--samples", "2", "--seed", "11",
        ]
        assert main(argv + ["--checkpoint", str(ck_plain)]) == 0
        assert (
            main(
                argv
                + ["--checkpoint", str(ck_cached), "--cache", str(tmp_path / "c")]
            )
            == 0
        )
        assert ck_cached.read_bytes() == ck_plain.read_bytes()
        out = capsys.readouterr().out
        assert "cache: 0 hit(s)  4 miss(es)" in out


class TestStoredEntryShape:
    def test_entries_are_canonical_record_dicts(self, top, tmp_path):
        """What the store holds is exactly the checkpoint wire form, so
        any other consumer (service, dist merge) round-trips it."""
        cfg = _cfg(samples=1)
        store = RunRecordStore(tmp_path / "cache")
        out = run_campaign_cached(top, cfg, store=store)
        fp = campaign_fingerprint(top, cfg)
        for rec in out.records:
            got = store.get(fp, rec.sample_index, rec.mode)
            assert got == ckpt.record_to_dict(rec)
            # the JSON bytes the checkpoint would write are reproducible
            assert json.dumps(got) == json.dumps(
                ckpt.record_to_dict(ckpt.record_from_dict(got))
            )
