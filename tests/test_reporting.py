"""Tests for the terminal figure rendering."""

import numpy as np

from repro.core.reporting import (
    bar_chart,
    density_plot,
    grouped_bar_chart,
    hbar,
    histogram,
    series_plot,
)


class TestHbar:
    def test_scaling(self):
        assert hbar(5, 10, width=10) == "#####"
        assert hbar(10, 10, width=10) == "#" * 10

    def test_clamps(self):
        assert hbar(20, 10, width=10) == "#" * 10
        assert hbar(-1, 10, width=10) == ""
        assert hbar(1, 0, width=10) == ""


class TestBarChart:
    def test_basic(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], width=4)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("a ")
        assert "####" in lines[1]
        assert "2.00" in lines[1]

    def test_grouped(self):
        out = grouped_bar_chart(
            ["rank1", "rank3"], {"AD0": [2.0, 4.0], "AD3": [1.0, 3.0]}, width=8
        )
        assert "AD0" in out and "AD3" in out
        assert out.count("\n") == 3  # 2 labels x 2 series


class TestDensityPlot:
    def test_renders_all_series(self, rng):
        out = density_plot(
            {"AD0": rng.normal(540, 45, 100), "AD3": rng.normal(480, 35, 100)},
            width=50,
            height=8,
            xlabel="runtime (s)",
        )
        assert "#=AD0" in out
        assert "*=AD3" in out
        assert "runtime (s)" in out
        # the canvas is exactly the requested width
        assert all(len(l) <= 60 for l in out.splitlines()[:8])

    def test_empty(self):
        assert density_plot({}) == "(no data)"

    def test_degenerate_series(self):
        out = density_plot({"x": np.array([5.0, 5.0, 5.0])})
        assert "#=x" in out


class TestSeriesPlot:
    def test_renders(self, rng):
        t = np.arange(20) * 60.0
        out = series_plot(
            t,
            {"stalls": rng.random(20) * 10, "flits": rng.random(20) * 8},
            width=40,
            height=6,
            ylabel="counts",
        )
        assert "#=stalls" in out and "*=flits" in out
        assert "counts" in out

    def test_empty(self):
        assert series_plot(np.arange(3), {}) == "(no data)"


class TestHistogram:
    def test_counts_sum(self, rng):
        v = rng.normal(0, 1, 500)
        out = histogram(v, bins=10)
        total = sum(int(line.rsplit(" ", 1)[-1]) for line in out.splitlines())
        assert total == 500

    def test_empty(self):
        assert histogram(np.array([])) == "(no data)"
