"""The shared jittered-backoff schedule (``repro.util.backoff``).

Every retry path in the codebase — local pool rebuilds, distributed
lease reclaims, queue-outage parking — draws its waits from one
``BackoffPolicy``/``Backoff`` pair, so these tests pin the schedule's
shape (exponential ceilings, cap, full jitter) and its determinism
hooks (injectable rng and sleeper: no real sleeps anywhere below).
"""

import os

import numpy as np
import pytest

from repro.util.backoff import NO_BACKOFF, Backoff, BackoffPolicy


class TestBackoffPolicy:
    def test_ceiling_doubles_until_cap(self):
        p = BackoffPolicy(base=0.5, cap=4.0, multiplier=2.0)
        assert [p.ceiling(a) for a in (1, 2, 3, 4, 5, 50)] == [
            0.5, 1.0, 2.0, 4.0, 4.0, 4.0,
        ]

    def test_attempt_floor(self):
        p = BackoffPolicy(base=0.25, cap=10.0)
        # 0 and negative attempts behave like the first one
        assert p.ceiling(0) == p.ceiling(1) == 0.25
        assert p.ceiling(-3) == 0.25

    @pytest.mark.parametrize(
        "kw", [{"base": -0.1}, {"cap": -1.0}, {"multiplier": 0.5}]
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            BackoffPolicy(**kw)

    def test_no_backoff_is_all_zero(self):
        assert NO_BACKOFF.ceiling(1) == 0.0
        assert NO_BACKOFF.ceiling(100) == 0.0


class TestBackoff:
    def test_full_jitter_bounds(self):
        p = BackoffPolicy(base=1.0, cap=8.0)
        b = Backoff(p, rng=np.random.default_rng(0), sleeper=lambda d: None)
        for attempt in range(1, 10):
            draws = [b.delay(attempt) for _ in range(200)]
            assert all(0.0 <= d <= p.ceiling(attempt) for d in draws)
            # full jitter spans the whole interval, not a fixed fraction
            assert max(draws) > 0.5 * p.ceiling(attempt)
            assert min(draws) < 0.5 * p.ceiling(attempt)

    def test_injected_rng_is_deterministic(self):
        p = BackoffPolicy(base=0.3, cap=5.0)
        a = Backoff(p, rng=np.random.default_rng(7), sleeper=lambda d: None)
        b = Backoff(p, rng=np.random.default_rng(7), sleeper=lambda d: None)
        assert [a.delay(i) for i in range(1, 8)] == [b.delay(i) for i in range(1, 8)]

    def test_sleep_records_history_and_calls_sleeper(self):
        slept = []
        b = Backoff(
            BackoffPolicy(base=1.0, cap=4.0),
            rng=np.random.default_rng(1),
            sleeper=slept.append,
        )
        d1 = b.sleep(1)
        d2 = b.sleep(3)
        assert b.history == [d1, d2]
        assert slept == [d1, d2]

    def test_no_backoff_never_sleeps(self):
        slept = []
        b = Backoff(NO_BACKOFF, sleeper=slept.append)
        assert b.sleep(1) == 0.0
        assert b.sleep(9) == 0.0
        assert slept == []
        assert b.history == [0.0, 0.0]


def _die(task):
    os._exit(17)  # simulate a hard worker crash (SIGKILL-like)


class TestExecutorRetryBackoff:
    def test_pool_rebuild_waits_are_injectable(self):
        """Pool-death retry rounds draw their waits from the injected
        Backoff — the death of a worker costs zero wall-clock here."""
        from repro.parallel.executor import run_tasks

        slept = []
        backoff = Backoff(
            BackoffPolicy(base=0.5, cap=2.0),
            rng=np.random.default_rng(3),
            sleeper=slept.append,
        )
        outcomes = list(
            run_tasks(
                [0], _die, jobs=1, max_retries=2, retry_backoff=backoff
            )
        )
        assert len(outcomes) == 1
        assert not outcomes[0].ok
        # one wait per rebuild round after the first
        assert len(backoff.history) >= 1
        assert slept == [d for d in backoff.history if d > 0]
