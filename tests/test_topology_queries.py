"""Tests for the topology analytics helpers."""

import numpy as np
import pytest

from repro.topology.queries import (
    bisection_cut,
    minimal_path_diversity,
    minimal_router_hops,
    placement_geometry,
)


class TestHops:
    def test_same_router(self, theta_top):
        assert minimal_router_hops(theta_top, 0, 1) == 0

    def test_same_chassis(self, theta_top):
        # nodes 0 (router 0) and 7 (router 1): same chassis row
        assert minimal_router_hops(theta_top, 0, 7) == 1

    def test_same_group_two_hops(self, theta_top):
        # router 0 (chassis 0, slot 0) to router 17 (chassis 1, slot 1)
        node_b = 17 * 4
        assert minimal_router_hops(theta_top, 0, node_b) == 2

    def test_cross_group(self, theta_top):
        far = theta_top.n_nodes - 1
        assert minimal_router_hops(theta_top, 0, far) == 5

    def test_vectorized(self, theta_top):
        out = minimal_router_hops(theta_top, np.array([0, 0]), np.array([1, 4000]))
        assert out.shape == (2,)
        assert out[0] == 0 and out[1] == 5

    def test_matches_sampled_paths_on_average(self, theta_top, rng):
        # the closed form and the sampled builders agree within a hop
        from repro.topology.paths import minimal_paths

        src = rng.integers(0, theta_top.n_nodes, 300)
        dst = (src + 17 + rng.integers(0, 2000, 300)) % theta_top.n_nodes
        keep = src != dst
        src, dst = src[keep], dst[keep]
        closed = minimal_router_hops(theta_top, src, dst).mean()
        sampled = minimal_paths(theta_top, src, dst, k=2, rng=rng).router_hops.mean()
        assert closed == pytest.approx(sampled, abs=1.0)


class TestDiversity:
    def test_same_router_single(self, theta_top):
        assert minimal_path_diversity(theta_top, 0, 1) == 1

    def test_two_hop_pairs_have_two(self, theta_top):
        node_b = 17 * 4
        assert minimal_path_diversity(theta_top, 0, node_b) == 2

    def test_cross_group_scales_with_cables(self, theta_top, cori_top):
        far_t = theta_top.n_nodes - 1
        far_c = cori_top.n_nodes - 1
        d_theta = int(minimal_path_diversity(theta_top, 0, far_t))
        d_cori = int(minimal_path_diversity(cori_top, 0, far_c))
        # Theta: 12 cables/pair, Cori: 4 — 3x the minimal diversity
        assert d_theta == 3 * d_cori


class TestPlacementGeometry:
    def test_compact_vs_dispersed(self, theta_top, rng):
        from repro.scheduler.placement import compact_placement, dispersed_placement

        compact = placement_geometry(theta_top, compact_placement(theta_top, 256, rng))
        dispersed = placement_geometry(
            theta_top, dispersed_placement(theta_top, 256, rng)
        )
        assert compact["groups"] < dispersed["groups"]
        assert compact["cross_group_fraction"] < dispersed["cross_group_fraction"]
        assert compact["mean_min_hops"] < dispersed["mean_min_hops"]

    def test_fields(self, theta_top):
        geo = placement_geometry(theta_top, np.arange(64))
        assert set(geo) == {
            "groups",
            "chassis",
            "routers",
            "cross_group_fraction",
            "mean_min_hops",
        }
        assert geo["routers"] == 16
        assert geo["groups"] == 1
        assert geo["cross_group_fraction"] == 0.0


class TestBisectionCut:
    def test_half_machine_cut(self, theta_top):
        half = np.arange(6)
        cut = bisection_cut(theta_top, half)
        per_cable = 3 * 9.38e9 / 2
        assert cut == pytest.approx(6 * 6 * 12 * per_cable)

    def test_cut_symmetric(self, theta_top):
        a = bisection_cut(theta_top, np.arange(4))
        b = bisection_cut(theta_top, np.arange(4, 12))
        assert a == pytest.approx(b)

    def test_cori_thinner_cut(self, theta_top, cori_top):
        # same bipartition size: Cori's 4-cable pairs give a thinner cut
        cut_t = bisection_cut(theta_top, np.arange(6))
        cut_c = bisection_cut(cori_top, np.arange(6))
        per_pair_t = cut_t / (6 * 6)
        per_pair_c = cut_c / (6 * 22)
        assert per_pair_t == pytest.approx(3 * per_pair_c)
