"""Tests for the telemetry subsystem: metrics, tracing, diagnostics, report."""

import json
import math

import numpy as np
import pytest

from repro.apps import app_by_name
from repro.cli import main
from repro.core.biases import AD0
from repro.core.experiment import CampaignConfig, run_campaign
from repro.network.fluid import (
    FlowSet,
    FluidParams,
    NonConvergenceWarning,
    solve_fluid,
)
from repro.telemetry import (
    NULL_TELEMETRY,
    JsonlTraceWriter,
    MemoryTraceWriter,
    MetricsRegistry,
    MultiTraceWriter,
    NullTraceWriter,
    Telemetry,
    current_telemetry,
    format_summary,
    read_trace,
    summarize_trace,
    use_telemetry,
)


def _scrape_openmetrics(text: str):
    """Strict mini scrape parser for the OpenMetrics text exposition.

    Returns (families, samples): families maps family name -> type, and
    samples maps a sample name (or ``(name, labels)`` tuple when labeled)
    to its value.  Raises ValueError on any spec violation this study's
    exposition could plausibly commit: missing # EOF, text after # EOF,
    samples outside a declared family, or counter samples without the
    _total suffix.
    """
    lines = text.split("\n")
    if lines[-1] != "" or lines[-2] != "# EOF":
        raise ValueError("exposition must end with a single '# EOF' line")
    families: dict[str, str] = {}
    samples: dict = {}
    for line in lines[:-2]:
        if line == "# EOF":
            raise ValueError("'# EOF' before the end of the exposition")
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            _, kind, rest = line.split(" ", 2)
            name, payload = rest.split(" ", 1)
            if kind == "TYPE":
                families[name] = payload
            continue
        if not line:
            raise ValueError("blank line inside the exposition")
        name_and_labels, value = line.rsplit(" ", 1)
        if "{" in name_and_labels:
            name, raw = name_and_labels[:-1].split("{", 1)
            labels = []
            for pair in raw.split(","):
                k, v = pair.split("=", 1)
                if not (v.startswith('"') and v.endswith('"')):
                    raise ValueError(f"unquoted label value in {line!r}")
                labels.append((k, v[1:-1]))
            key = (name, tuple(labels))
        else:
            name, key = name_and_labels, name_and_labels
        base = name
        for suffix in ("_total", "_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                break
        family = base if base in families else name if name in families else None
        if family is None:
            raise ValueError(f"sample {name!r} outside any declared family")
        if families[family] == "counter" and not name.endswith("_total"):
            raise ValueError(f"counter sample {name!r} lacks the _total suffix")
        samples[key] = float(value)
    return families, samples


def _incast_flows(top, rng, n=48):
    """Everyone sends to one hot node — reliably congested."""
    dst = 0
    srcs = rng.choice(np.arange(1, top.n_nodes), n, replace=False)
    return FlowSet(
        srcs, np.full(n, dst), np.full(n, 4e6), np.zeros(n, dtype=np.int64)
    )


class TestMetricsRegistry:
    def test_counter_arithmetic(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total")
        c.inc()
        c.inc(4)
        assert reg.counter("x_total").value == 5.0
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(7)
        g.dec(2.5)
        assert g.value == 4.5

    def test_kind_conflict(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_histogram_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in range(1, 101):  # 0.01 .. 1.00
            h.observe(v / 100.0)
        assert h.count == 100
        assert h.mean == pytest.approx(0.505)
        assert h.percentile(50) == pytest.approx(0.505, abs=1e-9)
        assert h.percentile(95) == pytest.approx(0.9505, abs=1e-3)
        assert h.percentile(0) == pytest.approx(0.01)
        assert h.percentile(100) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_histogram_empty_percentile_nan(self):
        h = MetricsRegistry().histogram("empty")
        assert math.isnan(h.percentile(50))

    def test_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("b", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 99.0):
            h.observe(v)
        assert h.cumulative_buckets() == [(1.0, 1), (2.0, 2), (math.inf, 3)]

    def test_timeit_records(self):
        reg = MetricsRegistry()
        with reg.timeit("span_seconds") as span:
            pass
        assert span.elapsed >= 0.0
        assert reg.histogram("span_seconds").count == 1

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("solves_total", help="number of solves").inc(3)
        reg.gauge("queue.depth").set(2)  # dot must be sanitized
        reg.histogram("t", buckets=(1.0,)).observe(0.5)
        text = reg.to_prometheus()
        # OpenMetrics: counter family without the suffix, sample with it
        assert "# TYPE solves counter" in text
        assert "# HELP solves number of solves" in text
        assert "solves_total 3" in text
        assert "# TYPE queue_depth gauge" in text
        assert "queue_depth 2" in text
        assert 't_bucket{le="1"} 1' in text
        assert 't_bucket{le="+Inf"} 1' in text
        assert "t_count 1" in text
        assert text.endswith("# EOF\n")

    def test_json_exposition(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        loaded = json.loads(reg.to_json())
        assert loaded["c"] == {"type": "counter", "value": 1.0}

    def test_openmetrics_scrape_roundtrip(self):
        """The exposition must survive a strict OpenMetrics scrape parse."""
        reg = MetricsRegistry()
        reg.counter("runs_total", help='with "quotes" and \\slashes\\').inc(7)
        reg.counter("bare").inc(2)  # family without suffix gains _total
        reg.gauge("depth", help="queue depth").set(3.5)
        reg.histogram("lat_seconds", buckets=(0.1, 1.0)).observe(0.5)
        families, samples = _scrape_openmetrics(reg.to_prometheus())
        assert families["runs"] == "counter"
        assert families["bare"] == "counter"
        assert families["depth"] == "gauge"
        assert families["lat_seconds"] == "histogram"
        assert samples["runs_total"] == 7.0
        assert samples["bare_total"] == 2.0
        assert samples["depth"] == 3.5
        assert samples[('lat_seconds_bucket', (('le', '1'),))] == 1.0
        assert samples[('lat_seconds_bucket', (('le', '+Inf'),))] == 1.0
        assert samples["lat_seconds_sum"] == 0.5
        assert samples["lat_seconds_count"] == 1.0

    def test_openmetrics_empty_registry(self):
        assert MetricsRegistry().to_prometheus() == "# EOF\n"


class TestTraceWriters:
    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTraceWriter(path) as w:
            w.emit("a.b", x=1, arr=np.arange(3), f=np.float64(2.5), s="hi")
            w.emit("a.c", y=None)
        events = read_trace(path)
        assert [e["ev"] for e in events] == ["a.b", "a.c"]
        assert events[0]["x"] == 1
        assert events[0]["arr"] == [0, 1, 2]
        assert events[0]["f"] == 2.5
        assert events[0]["seq"] == 0 and events[1]["seq"] == 1
        assert events[1]["y"] is None

    def test_read_trace_skips_garbage(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"ev":"ok"}\nnot json\n\n{"ev":"ok2"}\n')
        assert [e["ev"] for e in read_trace(path)] == ["ok", "ok2"]
        with pytest.raises(ValueError, match="bad JSON"):
            read_trace(path, strict=True)

    def test_null_sink_is_noop(self):
        w = NullTraceWriter()
        assert not w.enabled
        w.emit("anything", x=1)  # must not raise or record
        assert not NULL_TELEMETRY.enabled
        assert not current_telemetry().enabled  # ambient default is null

    def test_multi_writer_fans_out(self):
        a, b = MemoryTraceWriter(), MemoryTraceWriter()
        m = MultiTraceWriter([a, b, NullTraceWriter()])
        m.emit("x")
        assert len(a.events) == 1 and len(b.events) == 1

    def test_use_telemetry_scoping(self):
        mem = MemoryTraceWriter()
        tel = Telemetry(trace=mem)
        with use_telemetry(tel):
            assert current_telemetry() is tel
        assert current_telemetry() is NULL_TELEMETRY


class TestFluidDiagnostics:
    def test_result_carries_convergence_fields(self, mini_top, rng):
        fl = _incast_flows(mini_top, rng, n=8)
        res = solve_fluid(mini_top, fl, [AD0], rng=rng)
        assert res.iterations == FluidParams().n_iter
        assert res.residual >= res.residual_mean >= 0.0
        assert res.converged == (res.residual_mean <= FluidParams().convergence_tol)

    def test_empty_solve_converges_trivially(self, mini_top, rng):
        res = solve_fluid(mini_top, FlowSet.empty(), [AD0], rng=rng)
        assert res.converged and res.iterations == 0 and res.residual == 0.0

    def test_cap_hit_warns_and_flags(self, mini_top, rng):
        fl = _incast_flows(mini_top, rng)
        params = FluidParams(n_iter=1)  # cannot settle in one iteration
        with pytest.warns(NonConvergenceWarning, match="iteration cap"):
            res = solve_fluid(mini_top, fl, [AD0], rng=rng, params=params)
        assert not res.converged
        assert res.residual_mean > params.convergence_tol
        assert res.iterations == 1

    def test_rate_mode_cap_hit_does_not_warn(self, mini_top, rng):
        import warnings as W

        fl = _incast_flows(mini_top, rng)
        params = FluidParams(n_iter=1)
        with W.catch_warnings():
            W.simplefilter("error", NonConvergenceWarning)
            res = solve_fluid(
                mini_top, fl, [AD0], rng=rng, params=params, fixed_duration=1.0
            )
        assert not res.converged  # still flagged, just silent

    def test_solve_emits_event_and_metrics(self, mini_top, rng):
        mem = MemoryTraceWriter()
        tel = Telemetry(trace=mem)
        fl = _incast_flows(mini_top, rng, n=8)
        solve_fluid(mini_top, fl, [AD0], rng=rng, telemetry=tel)
        (ev,) = mem.of_type("fluid.solve")
        for key in ("flows", "iterations", "residual", "converged", "wall_ms"):
            assert key in ev
        assert ev["flows"] == 8
        assert tel.metrics.counter("fluid_solves_total").value == 1

    def test_telemetry_does_not_change_results(self, mini_top):
        fl = _incast_flows(mini_top, np.random.default_rng(3), n=16)
        r0 = solve_fluid(
            mini_top, fl, [AD0], rng=np.random.default_rng(7)
        )
        mem = MemoryTraceWriter()
        r1 = solve_fluid(
            mini_top,
            fl,
            [AD0],
            rng=np.random.default_rng(7),
            telemetry=Telemetry(trace=mem),
        )
        np.testing.assert_array_equal(r0.flow_time, r1.flow_time)
        np.testing.assert_array_equal(r0.min_fraction, r1.min_fraction)
        np.testing.assert_array_equal(r0.link_stalls, r1.link_stalls)
        assert mem.events  # telemetry actually ran


class TestCampaignTelemetry:
    @pytest.fixture(scope="class")
    def traced_campaign(self, theta_top):
        mem = MemoryTraceWriter()
        tel = Telemetry(trace=mem)
        cfg = CampaignConfig(
            app=app_by_name("latencybound")(),
            n_nodes=64,
            samples=2,
            background="isolated",
            seed=5,
        )
        records = run_campaign(theta_top, cfg, telemetry=tel)
        return records, mem, tel

    def test_sample_events_per_record(self, traced_campaign):
        records, mem, _ = traced_campaign
        samples = mem.of_type("campaign.sample")
        assert len(samples) == len(records) == 4  # 2 modes x 2 samples
        assert {e["mode"] for e in samples} == {"AD0", "AD3"}

    def test_convergence_events_every_sample(self, traced_campaign):
        records, mem, _ = traced_campaign
        solves = mem.of_type("fluid.solve")
        # at least one solve event per run, each carrying the diagnostics
        assert len(solves) >= len(records)
        for e in solves:
            assert isinstance(e["converged"], bool)
            assert e["residual"] >= 0.0

    def test_diagnostics_reach_run_record(self, traced_campaign):
        records, _, _ = traced_campaign
        for r in records:
            assert r.solver_iterations == FluidParams().n_iter
            assert r.solver_max_residual >= r.solver_max_residual_mean >= 0.0
            assert r.solver_converged == (r.solver_nonconverged_phases == 0)

    def test_campaign_metrics(self, traced_campaign):
        records, _, tel = traced_campaign
        assert tel.metrics.counter("campaign_samples_total").value == len(records)
        assert tel.metrics.histogram("campaign_sample_seconds").count == len(records)


class TestReport:
    def test_summarize_memory_events(self):
        events = [
            {"ev": "fluid.solve", "converged": True, "residual_mean": 1e-3,
             "residual": 2e-2, "iters_to_tol": 3, "wall_ms": 5.0, "flows": 10},
            {"ev": "fluid.solve", "converged": False, "residual_mean": 0.2,
             "residual": 0.4, "iters_to_tol": None, "wall_ms": 50.0, "flows": 99},
            {"ev": "campaign.sample", "mode": "AD0", "runtime_s": 100.0,
             "wall_ms": 60.0},
        ]
        s = summarize_trace(events)
        assert s.n_events == 3
        assert s.convergence.n_solves == 2
        assert s.convergence.n_nonconverged == 1
        assert s.slowest[0]["wall_ms"] == 60.0
        text = format_summary(s)
        assert "NON-CONVERGED" in text
        assert "iterations to tolerance" in text
        assert "AD0" in text

    def test_report_command_on_recorded_trace(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        rc = main(
            [
                "compare",
                "--app",
                "latencybound",
                "--nodes",
                "64",
                "--samples",
                "2",
                "--trace",
                str(trace),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        events = read_trace(trace)  # parseable JSONL
        solves = [e for e in events if e["ev"] == "fluid.solve"]
        samples = [e for e in events if e["ev"] == "campaign.sample"]
        assert samples and solves
        # every sample preceded by at least one convergence event
        assert all("converged" in e and "residual" in e for e in solves)

        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "fluid solver" in out
        assert "campaign samples" in out
        assert "slowest instrumented spans" in out

    def test_report_missing_file(self):
        with pytest.raises(SystemExit, match="no such trace"):
            main(["report", "/nonexistent/t.jsonl"])


class TestCliMetricsFlag:
    def test_metrics_prometheus_file(self, tmp_path, capsys):
        mpath = tmp_path / "m.prom"
        rc = main(
            [
                "compare",
                "--app",
                "latencybound",
                "--nodes",
                "64",
                "--samples",
                "1",
                "--metrics",
                str(mpath),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        text = mpath.read_text()
        assert "# TYPE fluid_solves counter" in text
        assert "campaign_samples_total 2" in text  # 2 modes x 1 sample
        assert text.endswith("# EOF\n")

    def test_metrics_json_file(self, tmp_path, capsys):
        mpath = tmp_path / "m.json"
        rc = main(
            [
                "describe",
                "--metrics",
                str(mpath),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        assert json.loads(mpath.read_text()) == {}  # describe runs no solver
