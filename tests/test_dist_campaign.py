"""Serial ≡ distributed equivalence suite (``repro.dist``).

The distributed coordinator's contract mirrors the parallel one: worker
count, host count, completion order, speculation, and fallback are all
unobservable — records and checkpoint bytes must be identical to a
serial run.  Workers here are real forked processes sharing a tmp-dir
queue; the fallback tests run with no workers at all.
"""

import json
import multiprocessing as mp
import threading

import pytest

from repro.apps import MILC
from repro.core.biases import AD0, AD3
from repro.core.checkpoint import record_to_dict
from repro.core.experiment import CampaignConfig, campaign_fingerprint, run_campaign
from repro.dist import (
    DistWorker,
    NotDistributable,
    WorkQueue,
    build_tasks,
    campaign_to_manifest,
    manifest_to_campaign,
    run_campaign_distributed,
)
from repro.faults import FaultSchedule
from repro.guard import GuardPolicy
from repro.telemetry import (
    MemoryTraceWriter,
    MetricsRegistry,
    Telemetry,
    resolve_telemetry,
)
from repro.topology.systems import mini

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.network.fluid.NonConvergenceWarning"
)


@pytest.fixture(scope="module")
def top():
    return mini()


def _cfg(**kw):
    kw.setdefault("samples", 3)
    kw.setdefault("seed", 11)
    return CampaignConfig(
        app=MILC(), n_nodes=32, modes=(AD0, AD3), scenario_pool=4, **kw
    )


def _dicts(records):
    return [record_to_dict(r) for r in records]


@pytest.fixture(scope="module")
def serial(top, tmp_path_factory):
    """The ground truth every distributed variant must reproduce."""
    path = tmp_path_factory.mktemp("serial") / "ckpt.jsonl"
    records = run_campaign(top, _cfg(), jobs=1, checkpoint_path=str(path))
    return records, path.read_bytes()


def _worker_main(queue_dir, owner):
    DistWorker(WorkQueue(queue_dir), owner=owner, poll=0.05).run()


class TestManifestRoundTrip:
    def test_rebuilds_identical_campaign(self, top):
        cfg = _cfg(
            faults=FaultSchedule.parse("rank3:0.25", seed=7),
            guard=GuardPolicy(deadline=60.0),
        )
        wire = json.loads(json.dumps(campaign_to_manifest(top, cfg, resolve_telemetry(None))))
        top2, cfg2 = manifest_to_campaign(wire)
        assert campaign_fingerprint(top2, cfg2) == campaign_fingerprint(top, cfg)
        assert cfg2.faults == cfg.faults
        assert cfg2.faults.source == "rank3:0.25"
        assert cfg2.guard == cfg.guard
        assert [m.name for m in cfg2.modes] == ["AD0", "AD3"]

    def test_bundle_dir_rewritten_for_workers(self, top):
        cfg = _cfg(guard=GuardPolicy(deadline=60.0, bundle_dir="/coordinator/bundles"))
        wire = campaign_to_manifest(top, cfg, resolve_telemetry(None))
        _, cfg2 = manifest_to_campaign(wire, bundle_dir="/queue/bundles")
        assert cfg2.guard.bundle_dir == "/queue/bundles"

    def test_custom_fluid_params_not_distributable(self, top):
        from repro.network.fluid import FluidParams

        cfg = _cfg(params=FluidParams())
        with pytest.raises(NotDistributable, match="FluidParams"):
            campaign_to_manifest(top, cfg, resolve_telemetry(None))

    def test_programmatic_faults_not_distributable(self, top):
        sched = FaultSchedule.parse("rank3:0.25;router:1", seed=7)
        # with_spec drops the parse source — no longer wire-serializable
        sched = sched.with_spec(sched.specs[0])
        cfg = _cfg(faults=sched)
        with pytest.raises(NotDistributable, match="parse"):
            campaign_to_manifest(top, cfg, resolve_telemetry(None))

    def test_tampered_fingerprint_rejected(self, top):
        wire = campaign_to_manifest(top, _cfg(), resolve_telemetry(None))
        wire["fingerprint"] = {**wire["fingerprint"], "seed": 999}
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            manifest_to_campaign(wire)

    def test_tasks_are_canonical_and_content_addressed(self, top):
        cfg = _cfg()
        tasks = build_tasks(top, cfg)
        assert [t.index for t in tasks] == list(range(6))
        assert [(t.sample, t.mode) for t in tasks] == [
            (i, m) for i in range(3) for m in ("AD0", "AD3")
        ]
        assert len({t.tid for t in tasks}) == 6
        assert tasks == build_tasks(top, cfg)  # deterministic
        # a different campaign can never collide on task ids
        other = build_tasks(top, _cfg(seed=12))
        assert not ({t.tid for t in tasks} & {t.tid for t in other})


class TestDistributedEquivalence:
    def test_two_forked_workers_byte_identical(self, top, serial, tmp_path):
        serial_records, serial_bytes = serial
        qdir = tmp_path / "queue"
        ckpt = tmp_path / "dist.jsonl"
        ctx = mp.get_context("fork")
        workers = [
            ctx.Process(target=_worker_main, args=(str(qdir), f"host{i}:1"))
            for i in range(2)
        ]
        for w in workers:
            w.start()
        tel = Telemetry(trace=MemoryTraceWriter(), metrics=MetricsRegistry())
        try:
            records = run_campaign_distributed(
                top,
                _cfg(),
                queue_dir=str(qdir),
                telemetry=tel,
                checkpoint_path=str(ckpt),
                poll=0.05,
                fallback_after=300.0,
            )
        finally:
            for w in workers:
                w.join(timeout=60)
                assert w.exitcode == 0
        assert _dicts(records) == _dicts(serial_records)
        assert ckpt.read_bytes() == serial_bytes
        # observability: both workers were sighted, all runs merged
        owners = {e["owner"] for e in tel.trace.of_type("dist.worker")}
        assert len(owners) >= 1  # one worker may drain the whole queue
        samples = tel.trace.of_type("campaign.sample")
        assert len(samples) == 6
        assert all("worker" in e and "run_index" in e for e in samples)
        counters = tel.metrics.to_dict()
        assert counters["dist_tasks_done_total"]["value"] == 6

    def test_no_workers_falls_back_to_local_pool(self, top, serial, tmp_path):
        serial_records, serial_bytes = serial
        ckpt = tmp_path / "fb.jsonl"
        tel = Telemetry(trace=MemoryTraceWriter(), metrics=MetricsRegistry())
        records = run_campaign_distributed(
            top,
            _cfg(),
            queue_dir=str(tmp_path / "queue"),
            telemetry=tel,
            checkpoint_path=str(ckpt),
            jobs=2,
            poll=0.05,
            fallback_after=0.5,
        )
        assert _dicts(records) == _dicts(serial_records)
        assert ckpt.read_bytes() == serial_bytes
        fallback = tel.trace.of_type("dist.fallback")
        assert len(fallback) == 1
        assert fallback[0]["remaining"] == 6

    def test_resume_skips_done_prefix(self, top, serial, tmp_path):
        serial_records, serial_bytes = serial
        lines = serial_bytes.decode().splitlines(True)
        part = tmp_path / "part.jsonl"
        part.write_text("".join(lines[: 1 + len(serial_records) // 2]))
        records = run_campaign_distributed(
            top,
            _cfg(),
            queue_dir=str(tmp_path / "queue"),
            checkpoint_path=str(part),
            resume=True,
            jobs=2,
            poll=0.05,
            fallback_after=0.5,
        )
        assert _dicts(records) == _dicts(serial_records)
        assert part.read_bytes() == serial_bytes
        # resumed runs were never queued
        q = WorkQueue(tmp_path / "queue")
        m = q.load_manifest()
        assert len(q.manifest_tasks(m)) == 6 - len(serial_records) // 2

    def test_run_campaign_dispatches_on_queue_dir(self, top, serial, tmp_path):
        """The public entry point routes --queue campaigns to the
        coordinator; an in-process worker drains the queue."""
        serial_records, _ = serial
        qdir = tmp_path / "queue"
        t = threading.Thread(
            target=_worker_main, args=(str(qdir), "thread:1"), daemon=True
        )
        t.start()
        records = run_campaign(top, _cfg(), queue_dir=str(qdir))
        t.join(timeout=60)
        assert not t.is_alive()
        assert _dicts(records) == _dicts(serial_records)


class TestSpeculation:
    def test_tail_straggler_is_stolen_first_commit_wins(self, top, serial, tmp_path):
        """A worker with nothing claimable re-executes the straggler;
        the straggler's own late commit loses gracefully."""
        serial_records, _ = serial
        cfg = _cfg()
        qdir = tmp_path / "queue"
        coord = WorkQueue(qdir, ttl=300.0)
        tasks = build_tasks(top, cfg)
        coord.create(campaign_to_manifest(top, cfg, resolve_telemetry(None)), tasks)
        straggler = coord.try_claim(tasks[0].tid, "slow-host:1")
        assert straggler is not None

        w2 = DistWorker(WorkQueue(qdir), owner="fast-host:1", poll=0.01)
        stats = w2.run()
        assert stats.executed == 6  # 5 leased + 1 speculative duplicate
        assert stats.speculated == 1
        assert stats.committed == 6

        payload = coord.read_result(tasks[0].tid)
        assert payload["speculative"] is True
        assert payload["worker"] == "fast-host:1"
        # determinism: the stolen run's record is the serial one
        assert payload["record"] == record_to_dict(serial_records[0])
        # the straggler finally finishes: its commit must lose
        assert coord.commit_result(tasks[0].tid, {"late": True}) is False
        assert coord.read_result(tasks[0].tid)["worker"] == "fast-host:1"

    def test_speculation_respects_opt_out(self, top, tmp_path):
        cfg = _cfg(samples=1)
        qdir = tmp_path / "queue"
        coord = WorkQueue(qdir, ttl=300.0)
        tasks = build_tasks(top, cfg)
        coord.create(campaign_to_manifest(top, cfg, resolve_telemetry(None)), tasks)
        coord.try_claim(tasks[0].tid, "slow-host:1")
        w2 = DistWorker(
            WorkQueue(qdir), owner="fast-host:1", poll=0.01,
            speculate=False, max_seconds=2.0,
        )
        stats = w2.run()  # returns on max_seconds, not campaign completion
        assert stats.speculated == 0
        assert coord.read_result(tasks[0].tid) is None
