"""Tests for the discrete-event batch scheduler and its facility hookup."""

import numpy as np
import pytest

from repro.core.biases import AD3
from repro.core.facility import WindowConfig, simulate_production_window
from repro.mpi.env import RoutingEnv
from repro.scheduler.simulator import BatchScheduler


@pytest.fixture(scope="module")
def trace():
    from repro.topology.systems import theta

    top = theta()
    sched = BatchScheduler(top, arrival_rate=14)
    return top, sched.run(
        2.0, np.random.default_rng(7), sample_interval_hours=1.0 / 12.0
    )


class TestBatchScheduler:
    def test_validation(self, theta_top):
        with pytest.raises(ValueError):
            BatchScheduler(theta_top, arrival_rate=0)
        with pytest.raises(ValueError):
            BatchScheduler(theta_top, backfill_depth=-1)
        with pytest.raises(ValueError):
            BatchScheduler(theta_top).run(0, np.random.default_rng(0))

    def test_sample_count(self, trace):
        _, tr = trace
        assert tr.sample_times.size == 24  # 2 h at 5-minute samples

    def test_utilization_bounds(self, trace):
        _, tr = trace
        assert (tr.utilization >= 0).all()
        assert (tr.utilization <= 1.0).all()

    def test_machine_fills_after_warmup(self, trace):
        _, tr = trace
        # a 14 jobs/hour stream of multi-hour jobs keeps Theta busy
        assert tr.utilization.mean() > 0.5

    def test_running_jobs_fit_machine(self, trace):
        top, tr = trace
        for active in tr.active_at:
            assert sum(sj.job.n_nodes for sj in active) <= top.n_nodes

    def test_no_placement_overlap_at_any_sample(self, trace):
        _, tr = trace
        for active in tr.active_at:
            allnodes = (
                np.concatenate([sj.nodes for sj in active])
                if active
                else np.zeros(0, dtype=np.int64)
            )
            assert np.unique(allnodes).size == allnodes.size

    def test_lifecycle_ordering(self, trace):
        _, tr = trace
        for sj in tr.jobs:
            if sj.ran:
                assert sj.start >= sj.submit
                assert sj.end == pytest.approx(sj.start + sj.job.duration_hours)

    def test_wait_times_nonnegative(self, trace):
        _, tr = trace
        assert tr.mean_wait_hours() >= 0

    def test_job_log_roundtrip(self, trace):
        _, tr = trace
        log = tr.job_log()
        assert len(log) == sum(1 for j in tr.jobs if j.ran)

    def test_deterministic(self, theta_top):
        a = BatchScheduler(theta_top).run(0.5, np.random.default_rng(3))
        b = BatchScheduler(theta_top).run(0.5, np.random.default_rng(3))
        np.testing.assert_array_equal(a.utilization, b.utilization)

    def test_jobs_persist_across_samples(self, trace):
        # time correlation: consecutive samples share running jobs
        _, tr = trace
        shared = 0
        for a, b in zip(tr.active_at, tr.active_at[1:]):
            shared += len({id(x) for x in a} & {id(x) for x in b})
        assert shared > 0


class TestTraceDrivenFacility:
    def test_window_uses_trace(self, trace):
        top, tr = trace
        w = simulate_production_window(
            top,
            WindowConfig(env=RoutingEnv(), n_intervals=4, seed=5),
            trace=tr,
        )
        assert len(w.ldms.samples) == 4
        assert w.series()["flits"].sum() > 0

    def test_trace_modes_comparable(self, trace):
        top, tr = trace
        flits = {}
        for env in (RoutingEnv(), RoutingEnv.uniform(AD3)):
            w = simulate_production_window(
                top,
                WindowConfig(env=env, n_intervals=4, seed=5),
                trace=tr,
            )
            flits[env.p2p_mode.name] = w.series()["flits"].sum()
        # same trace, fewer hops under AD3
        assert flits["AD3"] < flits["AD0"]
