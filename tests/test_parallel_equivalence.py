"""Serial ≡ parallel equivalence suite.

The parallel dispatcher's contract is that worker count and completion
order are unobservable: records, checkpoint bytes, merged metrics, and
CLI output must be field-for-field identical to serial execution.
These tests pin that contract for compare/sweep/ensemble campaigns,
with and without fault schedules, including the interleaving-scrambled
delivery order the ``scramble_seed`` test hook produces.
"""

import json

import numpy as np
import pytest

from repro.apps import MILC
from repro.core.biases import AD0, AD1, AD2, AD3
from repro.core.checkpoint import load_records, record_to_dict
from repro.core.ensembles import EnsembleConfig
from repro.core.experiment import CampaignConfig, run_campaign
from repro.faults import FaultSchedule
from repro.parallel import run_campaign_parallel, run_ensembles
from repro.telemetry import MemoryTraceWriter, MetricsRegistry, Telemetry
from repro.topology.systems import mini

pytestmark = pytest.mark.filterwarnings("ignore::repro.network.fluid.NonConvergenceWarning")


@pytest.fixture(scope="module")
def top():
    return mini()


def _dicts(records):
    return [record_to_dict(r) for r in records]


FAULTS = FaultSchedule.parse("rank3:0.25", seed=7)


def _cfg(modes=(AD0, AD3), faults=None, **kw):
    kw.setdefault("samples", 3)
    return CampaignConfig(
        app=MILC(), n_nodes=32, modes=modes, seed=11, scenario_pool=4,
        faults=faults, **kw
    )


class TestCampaignEquivalence:
    @pytest.mark.parametrize("faults", [None, FAULTS], ids=["pristine", "faulted"])
    def test_compare_jobs4_identical(self, top, faults):
        cfg = _cfg(faults=faults)
        serial = _dicts(run_campaign(top, cfg, jobs=1))
        parallel = _dicts(run_campaign(top, cfg, jobs=4))
        assert parallel == serial

    def test_scrambled_completion_order_identical(self, top):
        cfg = _cfg()
        serial = _dicts(run_campaign(top, cfg, jobs=1))
        for seed in (1, 2, 3):
            scrambled = _dicts(
                run_campaign_parallel(top, cfg, jobs=3, scramble_seed=seed)
            )
            assert scrambled == serial

    def test_sweep_all_modes_identical(self, top):
        cfg = _cfg(modes=(AD0, AD1, AD2, AD3), samples=2)
        serial = run_campaign(top, cfg, jobs=1)
        parallel = run_campaign(top, cfg, jobs=4)
        assert _dicts(parallel) == _dicts(serial)
        # per-run identity fields the pairing depends on
        for s, p in zip(serial, parallel):
            assert (s.sample_index, s.mode) == (p.sample_index, p.mode)
            assert s.solver_converged == p.solver_converged
            assert s.solver_max_residual == p.solver_max_residual

    def test_checkpoint_bytes_identical(self, top, tmp_path):
        cfg = _cfg(faults=FAULTS)
        p1 = tmp_path / "serial.jsonl"
        p4 = tmp_path / "jobs4.jsonl"
        ps = tmp_path / "scrambled.jsonl"
        run_campaign(top, cfg, jobs=1, checkpoint_path=str(p1))
        run_campaign(top, cfg, jobs=4, checkpoint_path=str(p4))
        run_campaign_parallel(
            top, cfg, jobs=3, checkpoint_path=str(ps), scramble_seed=5
        )
        assert p4.read_bytes() == p1.read_bytes()
        assert ps.read_bytes() == p1.read_bytes()

    def test_resume_under_parallel_identical(self, top, tmp_path):
        cfg = _cfg()
        full = tmp_path / "full.jsonl"
        serial = run_campaign(top, cfg, jobs=1, checkpoint_path=str(full))
        # truncate to a prefix, as an interrupt would leave it
        lines = full.read_text().splitlines(True)
        part = tmp_path / "part.jsonl"
        part.write_text("".join(lines[: 1 + len(serial) // 2]))
        resumed = run_campaign(
            top, cfg, jobs=4, checkpoint_path=str(part), resume=True
        )
        assert _dicts(resumed) == _dicts(serial)
        assert part.read_bytes() == full.read_bytes()

    def test_metrics_merge_matches_serial(self, top):
        cfg = _cfg()
        tels = [
            Telemetry(trace=MemoryTraceWriter(), metrics=MetricsRegistry())
            for _ in range(2)
        ]
        serial = run_campaign(top, cfg, jobs=1, telemetry=tels[0])
        parallel = run_campaign(top, cfg, jobs=4, telemetry=tels[1])
        assert _dicts(parallel) == _dicts(serial)
        d1, d4 = tels[0].metrics.to_dict(), tels[1].metrics.to_dict()
        assert (
            d4["campaign_samples_total"] == d1["campaign_samples_total"]
        )
        for name, m in d1.items():
            if m["type"] == "histogram":
                # wall-clock values differ; the populations' sizes cannot
                assert d4[name]["count"] == m["count"], name

    def test_worker_trace_events_tagged_and_complete(self, top):
        cfg = _cfg()
        tel = Telemetry(trace=MemoryTraceWriter(), metrics=MetricsRegistry())
        run_campaign(top, cfg, jobs=3, telemetry=tel)
        samples = tel.trace.of_type("campaign.sample")
        assert len(samples) == cfg.samples * len(cfg.modes)
        assert all("worker" in e and "run_index" in e for e in samples)
        # run_index is the canonical (sample-major, mode-minor) position
        mode_names = [m.name for m in cfg.modes]
        for e in samples:
            assert e["run_index"] == e["sample"] * len(cfg.modes) + mode_names.index(
                e["mode"]
            )


class TestEnsembleEquivalence:
    @pytest.mark.parametrize("faults", [None, FAULTS], ids=["pristine", "faulted"])
    def test_parallel_ensembles_identical(self, top, faults):
        cfgs = [
            EnsembleConfig(
                app=MILC(), n_jobs=2, n_nodes=16, mode=m, seed=5, faults=faults
            )
            for m in (AD0, AD3)
        ]
        serial = run_ensembles(top, cfgs, jobs=1)
        parallel = run_ensembles(top, cfgs, jobs=2)
        scrambled = run_ensembles(top, cfgs, jobs=2, scramble_seed=3)
        for s, p, c in zip(serial, parallel, scrambled):
            for other in (p, c):
                assert np.array_equal(s.job_nodes, other.job_nodes)
                assert np.array_equal(s.job_runtimes, other.job_runtimes)
                s_snap, o_snap = s.bank.snapshot(), other.bank.snapshot()
                for cls in ("rank1", "rank2", "rank3", "proc_req"):
                    assert np.array_equal(s_snap.flits[cls], o_snap.flits[cls])
                    assert np.array_equal(s_snap.stalls[cls], o_snap.stalls[cls])

    def test_delivery_is_canonical_order(self, top):
        cfgs = [
            EnsembleConfig(app=MILC(), n_jobs=2, n_nodes=16, mode=m, seed=5)
            for m in (AD0, AD1, AD3)
        ]
        order = []
        run_ensembles(
            top, cfgs, jobs=3, on_result=lambda i, r: order.append(i), scramble_seed=9
        )
        assert order == [0, 1, 2]


class TestCliEquivalence:
    """Every campaign CLI path produces identical output for any --jobs."""

    @pytest.fixture(autouse=True)
    def mini_system(self, monkeypatch):
        import repro.cli as cli

        monkeypatch.setitem(cli.SYSTEMS, "mini", mini)

    def _run(self, capsys, argv):
        from repro.cli import main

        assert main(argv) == 0
        return capsys.readouterr().out

    BASE = ["--system", "mini", "--app", "milc", "--nodes", "32", "--samples", "2"]

    def test_compare_output_identical(self, capsys):
        serial = self._run(capsys, ["compare", *self.BASE, "-j", "1"])
        parallel = self._run(capsys, ["compare", *self.BASE, "-j", "4"])
        assert parallel == serial

    def test_sweep_with_faults_output_identical(self, capsys):
        argv = ["sweep", *self.BASE, "--faults", "rank3:0.25"]
        serial = self._run(capsys, [*argv, "--jobs", "1"])
        parallel = self._run(capsys, [*argv, "--jobs", "4"])
        assert parallel == serial

    def test_ensemble_modes_sweep_identical(self, capsys, tmp_path):
        argv = [
            "ensemble", "--system", "mini", "--app", "milc",
            "--jobs", "2", "--nodes", "16", "--modes", "AD0,AD3",
        ]
        serial = self._run(capsys, [*argv, "--workers", "1"])
        parallel = self._run(capsys, [*argv, "--workers", "2"])
        assert parallel == serial

    def test_ensemble_checkpoint_resume_prefix(self, capsys, tmp_path):
        ck = tmp_path / "ens.json"
        argv = [
            "ensemble", "--system", "mini", "--app", "milc",
            "--jobs", "2", "--nodes", "16", "--modes", "AD0,AD3",
            "--checkpoint", str(ck),
        ]
        full = self._run(capsys, [*argv, "--workers", "2"])
        saved = json.loads(ck.read_text())
        assert set(saved["outputs"]) == {"AD0", "AD3"}
        # drop AD3, as an interrupt after the first ensemble would
        saved["outputs"].pop("AD3")
        ck.write_text(json.dumps(saved) + "\n")
        resumed = self._run(capsys, [*argv, "--workers", "2", "--resume"])
        assert resumed == f"(resumed from {ck})\n" + full
        assert set(json.loads(ck.read_text())["outputs"]) == {"AD0", "AD3"}

    def test_calibrate_probe_jobs_identical(self, theta_top):
        from repro.core.calibration import probe_observables

        serial = probe_observables(theta_top, samples=1, seed=4242, jobs=1)
        parallel = probe_observables(theta_top, samples=1, seed=4242, jobs=4)
        assert parallel == serial


class TestInterleavedReaders:
    """Checkpoint/trace readers tolerate multi-worker interleavings."""

    def test_checkpoint_loader_tolerates_shuffled_records(self, top, tmp_path):
        from repro.core.experiment import campaign_fingerprint

        cfg = _cfg()
        path = tmp_path / "c.jsonl"
        serial = run_campaign(top, cfg, jobs=1, checkpoint_path=str(path))
        lines = path.read_text().splitlines(True)
        header, body = lines[0], lines[1:]
        rng = np.random.default_rng(0)
        shuffled = [body[i] for i in rng.permutation(len(body))]
        path.write_text(header + "".join(shuffled))
        done = load_records(str(path), campaign_fingerprint(top, cfg))
        assert len(done) == len(serial)
        by_key = {(r.sample_index, r.mode): record_to_dict(r) for r in serial}
        for key, rec in done.items():
            assert record_to_dict(rec) == by_key[key]

    def test_trace_summary_invariant_to_shuffling(self, top, tmp_path):
        from repro.telemetry import order_events, summarize_trace

        cfg = _cfg()
        tel = Telemetry(trace=MemoryTraceWriter(), metrics=MetricsRegistry())
        run_campaign(top, cfg, jobs=3, telemetry=tel)
        events = list(tel.trace.events)
        rng = np.random.default_rng(1)
        shuffled = [events[i] for i in rng.permutation(len(events))]
        ordered = order_events(shuffled)
        assert ordered == order_events(events)
        # forwarded events reconstruct (run_index, seq) lexicographic order
        tagged = [e for e in ordered if "run_index" in e]
        keys = [(e["run_index"], e["seq"]) for e in tagged]
        assert keys == sorted(keys)
        a = summarize_trace(events)
        b = summarize_trace(shuffled)
        assert a.by_type == b.by_type
        assert a.sample_runtimes == b.sample_runtimes
        assert a.convergence.n_solves == b.convergence.n_solves

    def test_report_cmd_reads_shuffled_trace_file(self, tmp_path, capsys, top):
        from repro.cli import main

        cfg = _cfg()
        trace_path = tmp_path / "trace.jsonl"
        tel = Telemetry(trace=MemoryTraceWriter(), metrics=MetricsRegistry())
        run_campaign(top, cfg, jobs=3, telemetry=tel)
        events = list(tel.trace.events)
        rng = np.random.default_rng(2)
        with trace_path.open("w") as fh:
            for i in rng.permutation(len(events)):
                fh.write(json.dumps(events[i]) + "\n")
        assert main(["report", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "campaign.sample" in out
