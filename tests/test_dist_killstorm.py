"""Kill-storm equivalence: SIGKILLed workers, corrupt scratch, dead fleets.

The distributed contract under fire: workers are real ``python -m repro
worker`` subprocesses sharing a tmp-dir queue with an in-process
coordinator, and the tests kill them at the worst moments, scribble
garbage into the queue's scratch space, and strand leases — the merged
checkpoint must still come out byte-identical to a serial run (or, for
a genuinely poisoned task, degrade to an explicit error record).
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.apps import MILC
from repro.core.biases import AD0, AD3
from repro.core.checkpoint import record_to_dict
from repro.core.experiment import CampaignConfig, run_campaign
from repro.dist import WorkQueue, run_campaign_distributed
from repro.telemetry import MemoryTraceWriter, MetricsRegistry, Telemetry
from repro.topology.systems import mini

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.network.fluid.NonConvergenceWarning"
)

SRC = str(Path(repro.__file__).resolve().parents[1])


@pytest.fixture(scope="module")
def top():
    return mini()


def _cfg(**kw):
    kw.setdefault("samples", 3)
    return CampaignConfig(
        app=MILC(), n_nodes=32, modes=(AD0, AD3), seed=11, scenario_pool=4, **kw
    )


@pytest.fixture(scope="module")
def serial(top, tmp_path_factory):
    path = tmp_path_factory.mktemp("serial") / "ckpt.jsonl"
    records = run_campaign(top, _cfg(), jobs=1, checkpoint_path=str(path))
    return records, path.read_bytes()


def _spawn_worker(qdir, owner, *extra, env_extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    if env_extra:
        env.update(env_extra)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--queue", str(qdir), "--owner", owner, "--poll", "0.05", *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _finish(proc, expect_ok=True, timeout=120):
    out, _ = proc.communicate(timeout=timeout)
    if expect_ok:
        assert proc.returncode == 0, out
    return out


class _Coordinator(threading.Thread):
    """run_campaign_distributed on a thread, capturing its outcome."""

    def __init__(self, **kw):
        super().__init__(daemon=True)
        self.kw = kw
        self.records = None
        self.error = None

    def run(self):
        try:
            self.records = run_campaign_distributed(**self.kw)
        except BaseException as exc:  # surfaced by the test's join
            self.error = exc

    def finish(self, timeout=120):
        self.join(timeout=timeout)
        assert not self.is_alive(), "coordinator did not complete"
        if self.error is not None:
            raise self.error
        return self.records


def _wait_until(cond, timeout=60.0, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {what}")


class TestKillStorm:
    def test_sigkill_one_worker_merged_bytes_identical(self, top, serial, tmp_path):
        """Two workers; one is SIGKILLed mid-run and its scratch space
        corrupted; a stranded ghost lease forces a tail steal.  The
        merged checkpoint must equal the serial bytes exactly."""
        serial_records, serial_bytes = serial
        qdir = tmp_path / "queue"
        ckpt = tmp_path / "storm.jsonl"
        tel = Telemetry(trace=MemoryTraceWriter(), metrics=MetricsRegistry())
        coord = _Coordinator(
            top=top,
            cfg=_cfg(),
            queue_dir=str(qdir),
            telemetry=tel,
            checkpoint_path=str(ckpt),
            ttl=2.0,
            poll=0.05,
            fallback_after=600.0,
        )
        coord.start()
        q = WorkQueue(qdir)
        _wait_until(lambda: q.load_manifest() is not None, what="manifest")
        tasks = q.manifest_tasks(q.load_manifest())

        # a ghost claim on the last task: its owner is already dead, so
        # the survivor must steal it at the tail (or reclaim on expiry)
        ghost = q.try_claim(tasks[-1].tid, "ghost:1")
        assert ghost is not None

        victim = _spawn_worker(qdir, "victim:1")
        _wait_until(
            lambda: any(
                lease.get("owner") == "victim:1"
                for lease in q.live_leases().values()
            ),
            what="victim to claim a task",
        )
        victim_tids = [
            tid for tid, lease in q.live_leases().items()
            if lease.get("owner") == "victim:1"
        ]
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=30)
        interrupted = [t for t in victim_tids if not q.has_result(t)]
        # the victim's in-flight scratch is now garbage on shared disk
        (q.tmp_dir / f".{tasks[0].tid}.{victim.pid}.dead.json").write_text(
            '{"torn": '
        )
        (q.leases_dir / "stray-not-a-lease").write_text("junk")

        survivor = _spawn_worker(qdir, "survivor:1")
        records = coord.finish()
        _finish(survivor)

        assert [record_to_dict(r) for r in records] == [
            record_to_dict(r) for r in serial_records
        ]
        assert ckpt.read_bytes() == serial_bytes
        owners = {e["owner"] for e in tel.trace.of_type("dist.worker")}
        assert "survivor:1" in owners
        if interrupted:
            # the killed worker's task was finished by someone else:
            # either a reclaim (expired lease) or a tail steal
            retries = tel.trace.of_type("dist.lease_reclaimed")
            steals = tel.trace.of_type("dist.task_stolen")
            assert retries or steals
        # the ghost's task was completed without its owner ever committing
        assert q.read_result(tasks[-1].tid)["worker"] != "ghost:1"

    def test_failpoint_crash_mid_commit_merges_identically(
        self, top, serial, tmp_path
    ):
        """The deterministic twin of the SIGKILL storm: a worker dies at
        a *named* point — mid-way through committing its second result,
        after the scratch write but before the fsync — via a
        ``repro.chaos`` schedule in its environment.  The fleet must
        absorb it exactly like a random kill: no torn result visible,
        merged bytes identical to serial."""
        import json

        from repro.chaos import CRASH_EXIT_CODE

        serial_records, serial_bytes = serial
        qdir = tmp_path / "queue"
        ckpt = tmp_path / "chaoskill.jsonl"
        fired_log = tmp_path / "fired.jsonl"
        tel = Telemetry(trace=MemoryTraceWriter(), metrics=MetricsRegistry())
        coord = _Coordinator(
            top=top,
            cfg=_cfg(),
            queue_dir=str(qdir),
            telemetry=tel,
            checkpoint_path=str(ckpt),
            ttl=2.0,
            poll=0.05,
            fallback_after=600.0,
        )
        coord.start()
        q = WorkQueue(qdir)
        _wait_until(lambda: q.load_manifest() is not None, what="manifest")
        tasks = q.manifest_tasks(q.load_manifest())

        victim = _spawn_worker(
            qdir,
            "victim:1",
            env_extra={
                "REPRO_CHAOS": "queue.commit.post_tmp:crash:at=2",
                "REPRO_CHAOS_SEED": "2021",
                "REPRO_CHAOS_LOG": str(fired_log),
            },
        )
        victim.wait(timeout=120)
        assert victim.returncode == CRASH_EXIT_CODE
        # the failpoint log proves it died where the schedule said
        fired = [json.loads(line) for line in fired_log.read_text().splitlines()]
        assert [(e["site"], e["action"]) for e in fired] == [
            ("queue.commit.post_tmp", "crash")
        ]
        # exactly one result committed before the crash, none torn
        committed = [t.tid for t in tasks if q.has_result(t.tid)]
        assert len(committed) == 1

        survivor = _spawn_worker(qdir, "survivor:1")
        records = coord.finish()
        _finish(survivor)

        assert ckpt.read_bytes() == serial_bytes
        assert [record_to_dict(r) for r in records] == [
            record_to_dict(r) for r in serial_records
        ]
        # the survivor finished the victim's abandoned task
        assert all(q.read_result(t.tid) is not None for t in tasks)

    def test_expired_lease_is_reclaimed_not_stolen(self, top, serial, tmp_path):
        """With speculation off, the only path past a dead owner's lease
        is expiry + reclaim — the retry machinery end to end."""
        serial_records, serial_bytes = serial
        qdir = tmp_path / "queue"
        ckpt = tmp_path / "reclaim.jsonl"
        tel = Telemetry(trace=MemoryTraceWriter(), metrics=MetricsRegistry())
        coord = _Coordinator(
            top=top,
            cfg=_cfg(),
            queue_dir=str(qdir),
            telemetry=tel,
            checkpoint_path=str(ckpt),
            ttl=1.5,
            poll=0.05,
            fallback_after=600.0,
        )
        coord.start()
        q = WorkQueue(qdir)
        _wait_until(lambda: q.load_manifest() is not None, what="manifest")
        tasks = q.manifest_tasks(q.load_manifest())
        ghost = q.try_claim(tasks[-1].tid, "ghost:1")
        assert ghost is not None

        worker = _spawn_worker(qdir, "diligent:1", "--no-speculate")
        records = coord.finish()
        out = _finish(worker)

        assert ckpt.read_bytes() == serial_bytes
        assert [record_to_dict(r) for r in records] == [
            record_to_dict(r) for r in serial_records
        ]
        reclaims = tel.trace.of_type("dist.lease_reclaimed")
        assert reclaims and reclaims[0]["victim"] == "ghost:1"
        assert tel.metrics.to_dict()["dist_retries_total"]["value"] >= 1
        assert "reclaims 1" in out or "reclaims" in out

    def test_dead_fleet_degrades_to_local_fallback(self, top, serial, tmp_path):
        """Every worker dies and none returns: the coordinator must
        finish the campaign itself, byte-identically."""
        serial_records, serial_bytes = serial
        qdir = tmp_path / "queue"
        ckpt = tmp_path / "fleet.jsonl"
        tel = Telemetry(trace=MemoryTraceWriter(), metrics=MetricsRegistry())
        coord = _Coordinator(
            top=top,
            cfg=_cfg(),
            queue_dir=str(qdir),
            telemetry=tel,
            checkpoint_path=str(ckpt),
            ttl=1.5,
            jobs=2,
            poll=0.05,
            fallback_after=1.0,
        )
        coord.start()
        q = WorkQueue(qdir)
        _wait_until(lambda: q.load_manifest() is not None, what="manifest")
        doomed = _spawn_worker(qdir, "doomed:1")
        _wait_until(
            lambda: bool(q.live_leases()) or any(
                q.has_result(t.tid)
                for t in q.manifest_tasks(q.load_manifest())
            ),
            what="doomed worker to start",
        )
        doomed.send_signal(signal.SIGKILL)
        doomed.wait(timeout=30)

        records = coord.finish()
        assert ckpt.read_bytes() == serial_bytes
        assert [record_to_dict(r) for r in records] == [
            record_to_dict(r) for r in serial_records
        ]
        assert tel.trace.of_type("dist.fallback")

    def test_poisoned_task_exhausts_budget_into_error_record(
        self, top, serial, tmp_path
    ):
        """A task that can never finish (its lease always dies) burns the
        retry budget and becomes an explicit error record instead of
        stalling the campaign forever."""
        serial_records, _ = serial
        qdir = tmp_path / "queue"
        tel = Telemetry(trace=MemoryTraceWriter(), metrics=MetricsRegistry())
        coord = _Coordinator(
            top=top,
            cfg=_cfg(),
            queue_dir=str(qdir),
            telemetry=tel,
            ttl=1.5,
            retry_budget=1,
            poll=0.05,
            fallback_after=600.0,
        )
        coord.start()
        q = WorkQueue(qdir)
        _wait_until(lambda: q.load_manifest() is not None, what="manifest")
        tasks = q.manifest_tasks(q.load_manifest())
        # burn the whole (size-1) budget on task 0, then never commit
        ghost = q.try_claim(tasks[0].tid, "ghost:1")
        assert ghost is not None

        worker = _spawn_worker(qdir, "honest:1", "--no-speculate")
        records = coord.finish()
        _finish(worker)

        assert len(records) == len(serial_records)
        assert records[0].status == "error"
        assert "retry budget exhausted" in records[0].error
        assert [record_to_dict(r) for r in records[1:]] == [
            record_to_dict(r) for r in serial_records[1:]
        ]
        assert tel.trace.of_type("dist.task_exhausted")
