"""Unit tests for collective lowering (flows + latency rounds)."""

import numpy as np
import pytest

from repro.mpi.collectives import (
    allgather_flows,
    allreduce_flows,
    alltoall_flows,
    alltoallv_flows,
    barrier_flows,
    bcast_flows,
)


class TestAllreduce:
    def test_power_of_two(self):
        fl, rounds = allreduce_flows(np.arange(16), 8.0)
        assert rounds == 4
        assert fl.n == 16 * 4
        assert (fl.nbytes == 8.0).all()

    def test_non_power_of_two_fold(self):
        fl, rounds = allreduce_flows(np.arange(20), 8.0)
        # 16-rank core: 4 rounds + fold down/up
        assert rounds == 6
        assert fl.n == 16 * 4 + 2 * 4

    def test_each_core_rank_sends_each_round(self):
        P = 32
        fl, rounds = allreduce_flows(np.arange(P), 8.0)
        counts = np.bincount(fl.src, minlength=P)
        assert (counts == rounds).all()

    def test_round_partners_are_hypercube(self):
        P = 8
        fl, _ = allreduce_flows(np.arange(P), 8.0)
        # every (i, i^2^k) pair must appear exactly once per direction
        pairs = set(zip(fl.src.tolist(), fl.dst.tolist()))
        for k in range(3):
            for i in range(P):
                assert (i, i ^ (1 << k)) in pairs

    def test_trivial_sizes(self):
        fl, rounds = allreduce_flows(np.arange(1), 8.0)
        assert fl.n == 0 and rounds == 0

    def test_arbitrary_node_ids(self):
        nodes = np.array([100, 205, 7, 4000])
        fl, _ = allreduce_flows(nodes, 8.0)
        assert set(np.unique(fl.src)) <= set(nodes.tolist())


class TestBarrier:
    def test_dissemination_rounds(self):
        fl, rounds = barrier_flows(np.arange(33))
        assert rounds == int(np.ceil(np.log2(33)))
        assert (fl.nbytes == 8.0).all()

    def test_every_rank_sends_every_round(self):
        P = 16
        fl, rounds = barrier_flows(np.arange(P))
        counts = np.bincount(fl.src, minlength=P)
        assert (counts == rounds).all()

    def test_single_rank(self):
        fl, rounds = barrier_flows(np.arange(1))
        assert fl.n == 0 and rounds == 0


class TestAlltoall:
    def test_full_density_small(self, rng):
        fl, rounds = alltoall_flows(np.arange(8), 100.0, max_partners=32, rng=rng)
        # every ordered pair exactly once
        assert fl.n == 8 * 7
        assert rounds == 7
        assert np.allclose(fl.nbytes, 100.0)

    def test_sampling_preserves_total_bytes(self, rng):
        P, per_pair = 100, 1000.0
        fl, _ = alltoall_flows(np.arange(P), per_pair, max_partners=16, rng=rng)
        assert fl.n == P * 16
        assert fl.nbytes.sum() == pytest.approx(P * (P - 1) * per_pair, rel=1e-9)

    def test_sampled_partners_distinct(self, rng):
        fl, _ = alltoall_flows(np.arange(64), 10.0, max_partners=8, rng=rng)
        for r in range(64):
            partners = fl.dst[fl.src == r]
            assert np.unique(partners).size == partners.size

    def test_no_self_pairs(self, rng):
        fl, _ = alltoall_flows(np.arange(50), 10.0, max_partners=10, rng=rng)
        assert (fl.src != fl.dst).all()


class TestAlltoallv:
    def test_imbalance_varies_bytes(self, rng):
        fl, _ = alltoallv_flows(np.arange(32), 1000.0, imbalance=0.8, rng=rng)
        assert fl.nbytes.std() > 0

    def test_zero_imbalance_uniform(self, rng):
        fl, _ = alltoallv_flows(np.arange(32), 1000.0, imbalance=0.0, rng=rng)
        assert fl.nbytes.std() == 0

    def test_mean_bytes_preserved_under_imbalance(self, rng):
        P, mean_pair = 64, 5000.0
        fl, _ = alltoallv_flows(
            np.arange(P), mean_pair, imbalance=0.5, max_partners=32, rng=rng
        )
        # log-normal jitter is mean-1 by construction
        assert fl.nbytes.sum() == pytest.approx(P * (P - 1) * mean_pair, rel=0.15)

    def test_two_ranks(self, rng):
        fl, rounds = alltoallv_flows(np.arange(2), 100.0, rng=rng)
        assert rounds == 1
        assert fl.n == 2


class TestBcast:
    def test_binomial_edge_count(self):
        # a broadcast tree reaches P-1 receivers exactly once
        for P in (2, 7, 16, 33):
            fl, rounds = bcast_flows(np.arange(P), 64.0)
            assert fl.n == P - 1
            assert rounds == int(np.ceil(np.log2(P)))

    def test_every_nonroot_receives_once(self):
        P = 21
        fl, _ = bcast_flows(np.arange(P), 64.0)
        recv_counts = np.bincount(fl.dst, minlength=P)
        assert recv_counts[0] == 0
        assert (recv_counts[1:] == 1).all()

    def test_rotated_root(self):
        P = 16
        fl, _ = bcast_flows(np.arange(P), 64.0, root=5)
        recv_counts = np.bincount(fl.dst, minlength=P)
        assert recv_counts[5] == 0
        assert recv_counts.sum() == P - 1


class TestAllgather:
    def test_ring_structure(self):
        P = 8
        fl, rounds = allgather_flows(np.arange(P), 64.0)
        assert rounds == P - 1
        assert fl.n == P
        # each rank sends (P-1) * nbytes around the ring
        assert np.allclose(fl.nbytes, 64.0 * (P - 1))
        np.testing.assert_array_equal(np.sort(fl.dst), np.arange(P))


class TestReduceGatherScatter:
    def test_reduce_mirrors_bcast(self):
        import numpy as np
        from repro.mpi.collectives import bcast_flows, reduce_flows

        b, rb = bcast_flows(np.arange(16), 64.0)
        r, rr = reduce_flows(np.arange(16), 64.0)
        assert rb == rr
        np.testing.assert_array_equal(np.sort(b.src), np.sort(r.dst))
        np.testing.assert_array_equal(np.sort(b.dst), np.sort(r.src))

    def test_gather_incast_structure(self):
        import numpy as np
        from repro.mpi.collectives import gather_flows

        fl, rounds = gather_flows(np.arange(10), 128.0, root=3)
        assert rounds == 9
        assert (fl.dst == 3).all()
        assert np.unique(fl.src).size == 9
        assert 3 not in fl.src

    def test_scatter_outcast_structure(self):
        import numpy as np
        from repro.mpi.collectives import scatter_flows

        fl, rounds = scatter_flows(np.arange(10), 128.0, root=0)
        assert (fl.src == 0).all()
        assert np.unique(fl.dst).size == 9

    def test_trivial_sizes(self):
        import numpy as np
        from repro.mpi.collectives import gather_flows, reduce_flows, scatter_flows

        for fn in (reduce_flows, gather_flows, scatter_flows):
            fl, rounds = fn(np.arange(1), 8.0)
            assert fl.n == 0 and rounds == 0
