"""The deterministic failpoint framework (``repro.chaos``).

Three contracts under test:

* **Spec + determinism** — the schedule mini-language parses/rejects
  correctly, and every fire decision is a pure function of
  ``(seed, spec, epoch, hit index)``.
* **Strict no-op** — with no schedule active (or an active schedule
  whose rules match other sites), the store/checkpoint/queue commit
  paths produce byte-identical files to the pre-chaos protocols.
* **Site coverage** — every registered site in
  :data:`repro.chaos.failpoints.SITES` is exercised through its *real*
  code path by at least one test here; the registry meta-test fails
  the build when a new site ships without one.
"""

import errno
import json
import multiprocessing
import os

import pytest

from repro.apps import MILC
from repro.chaos import (
    SITES,
    ChaosSchedule,
    ChaosSpecError,
    CRASH_EXIT_CODE,
    activate,
    active,
    deactivate,
    failpoint,
)
from repro.chaos import failpoints as fp
from repro.core import checkpoint as ckpt
from repro.core.biases import AD0, AD3
from repro.core.checkpoint import StoreUnavailableError
from repro.core.experiment import (
    CampaignConfig,
    campaign_fingerprint,
    run_campaign,
)
from repro.dist import (
    DistWorker,
    WorkQueue,
    build_tasks,
    campaign_to_manifest,
)
from repro.dist.queue import Lease, QueueUnavailable
from repro.service import CampaignService, RunRecordStore
from repro.telemetry import resolve_telemetry
from repro.topology.systems import mini

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.network.fluid.NonConvergenceWarning"
)


@pytest.fixture(autouse=True)
def _no_leftover_schedule():
    """Chaos state is process-global: never leak it between tests."""
    deactivate()
    yield
    deactivate()


@pytest.fixture(scope="module")
def top():
    return mini()


def _cfg(**kw):
    kw.setdefault("samples", 1)
    kw.setdefault("seed", 11)
    return CampaignConfig(
        app=MILC(), n_nodes=32, modes=(AD0, AD3), scenario_pool=4, **kw
    )


FP = {"app": "milc", "seed": 11}
REC = {"runtime": 1.5, "mode": "AD0"}


# ----------------------------------------------------------------------
# schedule spec mini-language
# ----------------------------------------------------------------------
class TestSpec:
    def test_parses_rules_and_params(self):
        s = ChaosSchedule.parse(
            "store.commit.pre_rename:enospc:p=0.25; queue.*:eio:at=2,times=3; "
            "worker.heartbeat:latency:ms=5",
            seed=9,
        )
        assert [r.action for r in s.rules] == ["enospc", "eio", "latency"]
        assert s.rules[0].p == 0.25
        assert s.rules[1].at == 2 and s.rules[1].times == 3
        assert s.rules[2].ms == 5.0

    def test_empty_spec_is_an_empty_schedule(self):
        assert ChaosSchedule.parse("  ").rules == []
        assert ChaosSchedule.parse(";;").rules == []

    @pytest.mark.parametrize(
        "bad",
        [
            "store.get.read",  # missing action
            "store.get.read:explode",  # unknown action
            "store.get.read:eio:p=1.5",  # p out of range
            "store.get.read:eio:at=0",  # at is 1-based
            "store.get.read:eio:times=0",
            "store.get.read:eio:ms=-1",
            "store.get.read:eio:bogus=1",  # unknown parameter
            "store.get.read:eio:p",  # not k=v
            "store.get.read:eio:p=x",  # bad value
            ":eio",  # empty site
            "a:b:c:d",  # too many fields
        ],
    )
    def test_rejects_malformed_clauses(self, bad):
        with pytest.raises(ChaosSpecError):
            ChaosSchedule.parse(bad)

    def test_activate_rejects_unregistered_site_pattern(self):
        with pytest.raises(ChaosSpecError):
            activate(ChaosSchedule.parse("no.such.site:crash"))

    def test_glob_patterns_match_registered_sites(self):
        activate(ChaosSchedule.parse("queue.*:trace"))
        assert fp.is_active()

    def test_env_round_trip(self):
        s = ChaosSchedule.parse("checkpoint.append:eio:p=0.5", seed=3, epoch=2)
        env = s.to_env({})
        restored = fp.activate_from_env(env)
        assert restored is not None
        assert restored.seed == 3 and restored.epoch == 2
        assert restored.describe() == s.describe()

    def test_env_unset_is_inactive(self):
        assert fp.activate_from_env({}) is None
        assert not fp.is_active()

    def test_env_bad_spec_raises_value_error(self):
        with pytest.raises(ValueError):
            fp.activate_from_env({"REPRO_CHAOS": "bogus:crash"})


# ----------------------------------------------------------------------
# deterministic decisions
# ----------------------------------------------------------------------
def _fire_pattern(seed: int, epoch: int, hits: int = 40) -> list[int]:
    s = ChaosSchedule.parse("worker.heartbeat:trace:p=0.5", seed=seed, epoch=epoch)
    out = []
    for i in range(hits):
        before = len(s.fired)
        s.hit("worker.heartbeat")
        out.append(len(s.fired) - before)
    return out


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        assert _fire_pattern(7, 0) == _fire_pattern(7, 0)

    def test_seed_changes_decisions(self):
        assert _fire_pattern(7, 0) != _fire_pattern(8, 0)

    def test_epoch_decorrelates_probability_draws(self):
        assert _fire_pattern(7, 0) != _fire_pattern(7, 1)

    def test_at_fires_exactly_once_per_process(self):
        s = ChaosSchedule.parse("worker.heartbeat:trace:at=3")
        for _ in range(10):
            s.hit("worker.heartbeat")
        assert [e["hit"] for e in s.fired] == [3]

    def test_times_caps_fires(self):
        s = ChaosSchedule.parse("worker.heartbeat:trace:times=2")
        for _ in range(5):
            s.hit("worker.heartbeat")
        assert len(s.fired) == 2

    def test_fired_log_written_before_action(self, tmp_path):
        log = tmp_path / "fired.jsonl"
        s = ChaosSchedule.parse("worker.heartbeat:eio", log_path=str(log))
        with pytest.raises(OSError):
            s.hit("worker.heartbeat")
        entries = [json.loads(line) for line in log.read_text().splitlines()]
        assert entries[0]["site"] == "worker.heartbeat"
        assert entries[0]["action"] == "eio"


# ----------------------------------------------------------------------
# zero-cost no-op + golden byte-identity
# ----------------------------------------------------------------------
class TestStrictNoOp:
    def test_inactive_failpoint_is_a_pure_return(self):
        assert failpoint("store.get.read") is None
        assert not fp.is_active()

    def test_store_entry_bytes_identical_with_chaos_off_and_unmatched(
        self, tmp_path
    ):
        """Golden no-op: routing writes through the chaos fs shim must
        not change a single committed byte."""
        a = RunRecordStore(tmp_path / "a")
        a.put(FP, 0, "AD0", REC)
        with active(ChaosSchedule.parse("worker.heartbeat:trace")):
            b = RunRecordStore(tmp_path / "b")
            b.put(FP, 0, "AD0", REC)
        pa = a.entries_dir / os.listdir(a.entries_dir)[0]
        pb = b.entries_dir / os.listdir(b.entries_dir)[0]
        assert pa.read_bytes() == pb.read_bytes()

    def test_checkpoint_bytes_identical_with_chaos_active_unmatched(
        self, top, tmp_path
    ):
        clean = tmp_path / "clean.jsonl"
        run_campaign(top, _cfg(), checkpoint_path=str(clean), jobs=1)
        with active(ChaosSchedule.parse("queue.lease.renew:trace")):
            observed = tmp_path / "observed.jsonl"
            run_campaign(top, _cfg(), checkpoint_path=str(observed), jobs=1)
        assert observed.read_bytes() == clean.read_bytes()


# ----------------------------------------------------------------------
# action semantics
# ----------------------------------------------------------------------
def _crash_child():
    activate(ChaosSchedule.parse("worker.heartbeat:crash"))
    failpoint("worker.heartbeat")
    os._exit(0)  # pragma: no cover - the failpoint must not return


class TestActions:
    def test_enospc_and_eio_carry_errno_and_filename(self, tmp_path):
        target = tmp_path / "f"
        for action, eno in (("enospc", errno.ENOSPC), ("eio", errno.EIO)):
            s = ChaosSchedule.parse(f"worker.heartbeat:{action}")
            with pytest.raises(OSError) as ei:
                s.hit("worker.heartbeat", path=target)
            assert ei.value.errno == eno
            assert ei.value.filename == str(target)

    def test_latency_uses_the_injected_sleeper(self):
        slept = []
        s = ChaosSchedule.parse("worker.heartbeat:latency:ms=250", sleeper=slept.append)
        s.hit("worker.heartbeat")
        assert slept == [0.25]

    def test_torn_append_leaves_half_the_payload(self, tmp_path):
        target = tmp_path / "t"
        s = ChaosSchedule.parse("worker.heartbeat:torn")
        with pytest.raises(OSError) as ei:
            s.hit("worker.heartbeat", path=target, data="0123456789")
        assert ei.value.errno == errno.EIO
        assert target.read_bytes() == b"01234"

    def test_torn_truncates_an_existing_file_without_payload(self, tmp_path):
        target = tmp_path / "t"
        target.write_bytes(b"x" * 100)
        s = ChaosSchedule.parse("worker.heartbeat:torn")
        with pytest.raises(OSError):
            s.hit("worker.heartbeat", path=target)
        assert target.stat().st_size == 50

    def test_crash_exits_with_the_sigkill_code(self):
        proc = multiprocessing.get_context("fork").Process(target=_crash_child)
        proc.start()
        proc.join(30)
        assert proc.exitcode == CRASH_EXIT_CODE


# ----------------------------------------------------------------------
# per-site coverage: each registered site through its real code path.
# Add the new site's exercise here when you register one — the
# meta-test at the bottom will not let you forget.
# ----------------------------------------------------------------------
def _exercise_store_commit_post_tmp(top, tmp_path):
    store = RunRecordStore(tmp_path / "cache")
    with active(ChaosSchedule.parse("store.commit.post_tmp:torn")):
        with pytest.raises(StoreUnavailableError):
            store.put(FP, 0, "AD0", REC)
    # the torn scratch never became a visible entry, and was cleaned up
    assert os.listdir(store.entries_dir) == []
    assert os.listdir(store.tmp_dir) == []
    assert store.get(FP, 0, "AD0") is None


def _exercise_store_commit_pre_rename(top, tmp_path):
    store = RunRecordStore(tmp_path / "cache")
    with active(ChaosSchedule.parse("store.commit.pre_rename:enospc")):
        with pytest.raises(StoreUnavailableError) as ei:
            store.put(FP, 0, "AD0", REC)
    assert ei.value.errno == errno.ENOSPC
    assert os.listdir(store.entries_dir) == []
    assert os.listdir(store.tmp_dir) == []
    # the store recovers the moment the disk does
    assert store.put(FP, 0, "AD0", REC) is True
    assert store.get(FP, 0, "AD0") == REC


def _exercise_store_get_read(top, tmp_path):
    store = RunRecordStore(tmp_path / "cache")
    store.put(FP, 0, "AD0", REC)
    with active(ChaosSchedule.parse("store.get.read:eio")):
        assert store.get(FP, 0, "AD0") is None  # EIO degrades to a miss
    assert store.get(FP, 0, "AD0") == REC  # and the entry survives it


def _exercise_checkpoint_append(top, tmp_path):
    path = tmp_path / "ck.jsonl"
    fingerprint = campaign_fingerprint(top, _cfg())
    records = run_campaign(top, _cfg(), jobs=1)
    ckpt.write_header(path, fingerprint)
    ckpt.append_record(path, records[0])
    good = path.read_bytes()
    with active(ChaosSchedule.parse("checkpoint.append:torn")):
        with pytest.raises(StoreUnavailableError):
            ckpt.append_record(path, records[1])
    assert path.read_bytes() != good  # the torn half-line landed
    # repair_tail removes exactly the torn fragment — the crash path
    assert ckpt.repair_tail(path) is True
    assert path.read_bytes() == good


def _exercise_queue_lease_claim(top, tmp_path):
    cfg = _cfg()
    q = WorkQueue(tmp_path / "q", ttl=300.0)
    tasks = build_tasks(top, cfg)
    q.create(campaign_to_manifest(top, cfg, resolve_telemetry(None)), tasks)
    with active(ChaosSchedule.parse("queue.lease.claim:eio")):
        with pytest.raises(QueueUnavailable):
            q.try_claim(tasks[0].tid, "w:1")
    assert q.try_claim(tasks[0].tid, "w:1") is not None  # recovers


def _exercise_queue_lease_renew(top, tmp_path):
    cfg = _cfg()
    q = WorkQueue(tmp_path / "q", ttl=300.0)
    tasks = build_tasks(top, cfg)
    q.create(campaign_to_manifest(top, cfg, resolve_telemetry(None)), tasks)
    lease = q.try_claim(tasks[0].tid, "w:1")
    assert isinstance(lease, Lease)
    with active(ChaosSchedule.parse("queue.lease.renew:enospc")):
        with pytest.raises(QueueUnavailable):
            q.renew(lease)
    assert not lease.lost  # an outage is not a steal
    assert q.renew(lease) is True


def _exercise_queue_commit_post_tmp(top, tmp_path):
    cfg = _cfg()
    q = WorkQueue(tmp_path / "q", ttl=300.0)
    tasks = build_tasks(top, cfg)
    q.create(campaign_to_manifest(top, cfg, resolve_telemetry(None)), tasks)
    with active(ChaosSchedule.parse("queue.commit.post_tmp:torn")):
        with pytest.raises(QueueUnavailable):
            q.commit_result(tasks[0].tid, {"record": {"x": 1}})
    assert q.read_result(tasks[0].tid) is None  # nothing became visible
    assert list((tmp_path / "q" / "tmp").iterdir()) == []  # scratch cleaned


def _exercise_queue_commit_link(top, tmp_path):
    cfg = _cfg()
    q = WorkQueue(tmp_path / "q", ttl=300.0)
    tasks = build_tasks(top, cfg)
    q.create(campaign_to_manifest(top, cfg, resolve_telemetry(None)), tasks)
    with active(ChaosSchedule.parse("queue.commit.link:eio")):
        with pytest.raises(QueueUnavailable):
            q.commit_result(tasks[0].tid, {"record": {"x": 1}})
    assert q.read_result(tasks[0].tid) is None
    assert q.commit_result(tasks[0].tid, {"record": {"x": 1}}) is True  # recovers


def _exercise_worker_heartbeat(top, tmp_path):
    """Heartbeat loss is advisory: the worker still finishes the task."""
    cfg = _cfg()
    qdir = tmp_path / "q"
    q = WorkQueue(qdir, ttl=300.0)
    tasks = build_tasks(top, cfg)
    q.create(campaign_to_manifest(top, cfg, resolve_telemetry(None)), tasks)
    with active(ChaosSchedule.parse("worker.heartbeat:eio")):
        stats = DistWorker(WorkQueue(qdir), owner="hb:1", poll=0.01).run()
    assert stats.executed == len(tasks)
    assert all(q.read_result(t.tid) is not None for t in tasks)


def _exercise_service_job_dispatch(top, tmp_path):
    cfg = _cfg()
    store = RunRecordStore(tmp_path / "cache")
    service = CampaignService(store)
    manifest = campaign_to_manifest(top, cfg, resolve_telemetry(None))
    with active(ChaosSchedule.parse("service.job.dispatch:eio")):
        job, deduped = service.submit(manifest)
        assert job.done_evt.wait(60)
    assert not deduped
    assert job.state == "error"
    assert "injected" in (job.error or "")


def _exercise_service_journal_append(top, tmp_path):
    cfg = _cfg()
    store = RunRecordStore(tmp_path / "cache")
    service = CampaignService(store, journal_dir=str(tmp_path / "journal"))
    manifest = campaign_to_manifest(top, cfg, resolve_telemetry(None))
    with active(ChaosSchedule.parse("service.journal.append:enospc")):
        job, _ = service.submit(manifest)
        assert job.done_evt.wait(120)
    # journal loss is survivable: the campaign ran, the failures counted
    assert job.state == "done"
    assert service.journal_errors >= 1
    assert service.journal.pending() == []


SITE_EXERCISES = {
    "store.commit.post_tmp": _exercise_store_commit_post_tmp,
    "store.commit.pre_rename": _exercise_store_commit_pre_rename,
    "store.get.read": _exercise_store_get_read,
    "checkpoint.append": _exercise_checkpoint_append,
    "queue.lease.claim": _exercise_queue_lease_claim,
    "queue.lease.renew": _exercise_queue_lease_renew,
    "queue.commit.post_tmp": _exercise_queue_commit_post_tmp,
    "queue.commit.link": _exercise_queue_commit_link,
    "worker.heartbeat": _exercise_worker_heartbeat,
    "service.job.dispatch": _exercise_service_job_dispatch,
    "service.journal.append": _exercise_service_journal_append,
}


class TestSiteCoverage:
    @pytest.mark.parametrize("site", sorted(SITE_EXERCISES))
    def test_site(self, site, top, tmp_path):
        SITE_EXERCISES[site](top, tmp_path)

    def test_every_site_has_a_chaos_test(self):
        """Registry completeness: shipping a failpoint without a chaos
        test exercising it fails the build right here."""
        assert set(SITE_EXERCISES) == set(SITES), (
            "every site in repro.chaos.failpoints.SITES needs an entry in "
            "SITE_EXERCISES (and vice versa); update both together"
        )
