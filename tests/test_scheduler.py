"""Unit tests for placement, workload mix, jobs, and background noise."""

import numpy as np
import pytest

from repro.scheduler.background import ARCHETYPE_RATES, BackgroundModel, _job_flows
from repro.scheduler.jobs import Job, JobLog
from repro.scheduler.placement import (
    FreeNodePool,
    compact_placement,
    dispersed_placement,
    groups_spanned,
    make_placement,
    production_placement,
    random_placement,
)
from repro.scheduler.workload import ARCHETYPE_WEIGHTS, JobSizeMix, WorkloadModel


class TestFreeNodePool:
    def test_take_and_release(self, theta_top):
        pool = FreeNodePool(theta_top)
        n0 = pool.n_free
        pool.take(np.arange(100))
        assert pool.n_free == n0 - 100
        pool.release(np.arange(100))
        assert pool.n_free == n0

    def test_double_take_rejected(self, theta_top):
        pool = FreeNodePool(theta_top)
        pool.take(np.arange(10))
        with pytest.raises(ValueError, match="overlaps"):
            pool.take(np.arange(5, 15))

    def test_restricted_initial_set(self, theta_top):
        pool = FreeNodePool(theta_top, free=np.arange(50))
        assert pool.n_free == 50


class TestPlacements:
    @pytest.mark.parametrize("kind", ["compact", "dispersed", "random", "production"])
    def test_right_count_unique_sorted(self, theta_top, rng, kind):
        nodes = make_placement(kind, theta_top, 256, rng)
        assert nodes.size == 256
        assert np.unique(nodes).size == 256
        assert (np.diff(nodes) > 0).all()

    def test_compact_minimizes_groups(self, theta_top, rng):
        nodes = compact_placement(theta_top, 256, rng)
        # 256 nodes fit within one group (384 slots)
        assert groups_spanned(theta_top, nodes) == 1

    def test_compact_large_job_spans_minimum(self, theta_top, rng):
        nodes = compact_placement(theta_top, 800, rng)
        assert groups_spanned(theta_top, nodes) <= 3

    def test_dispersed_spans_all_groups(self, theta_top, rng):
        nodes = dispersed_placement(theta_top, 256, rng)
        assert groups_spanned(theta_top, nodes) >= theta_top.n_groups - 1

    def test_dispersed_with_span_limit(self, theta_top, rng):
        nodes = dispersed_placement(theta_top, 128, rng, n_groups_span=4)
        assert groups_spanned(theta_top, nodes) <= 5

    def test_production_spans_vary(self, theta_top):
        spans = {
            groups_spanned(
                theta_top, production_placement(theta_top, 256, np.random.default_rng(i))
            )
            for i in range(30)
        }
        assert len(spans) >= 4  # Fig. 3's x-axis diversity

    def test_pool_respected(self, theta_top, rng):
        pool = FreeNodePool(theta_top)
        a = compact_placement(theta_top, 256, rng, pool=pool)
        b = compact_placement(theta_top, 256, rng, pool=pool)
        assert np.intersect1d(a, b).size == 0

    def test_insufficient_nodes(self, toy_top, rng):
        with pytest.raises(ValueError, match="only"):
            random_placement(toy_top, 100, rng)

    def test_unknown_kind(self, theta_top, rng):
        with pytest.raises(KeyError):
            make_placement("magic", theta_top, 16, rng)


class TestJobLog:
    def test_core_hours(self):
        j = Job(n_nodes=256, duration_hours=2.0)
        assert j.core_hours == 256 * 64 * 2.0

    def test_fraction_between(self):
        log = JobLog(
            jobs=[
                Job(n_nodes=128, duration_hours=1.0),
                Job(n_nodes=1024, duration_hours=1.0),
            ]
        )
        frac = log.core_hour_fraction_between(128, 512)
        assert frac == pytest.approx(128 / (128 + 1024))

    def test_ccdf_starts_at_one(self):
        log = JobLog(
            jobs=[Job(n_nodes=s, duration_hours=1.0) for s in (128, 256, 512)]
        )
        sizes, ccdf = log.corehours_ccdf()
        assert ccdf[0] == pytest.approx(1.0)
        assert (np.diff(ccdf) <= 0).all()

    def test_empty_log_fraction(self):
        assert JobLog().core_hour_fraction_between(0, 10**6) == 0.0


class TestWorkloadModel:
    def test_fig1_corehour_share(self, theta_top):
        # ~40% of core-hours from 128-512 node jobs (paper Fig. 1)
        wm = WorkloadModel(theta_top)
        log = wm.generate_log(4000, np.random.default_rng(0))
        share = log.core_hour_fraction_between(128, 512)
        assert 0.30 <= share <= 0.55

    def test_sizes_within_machine(self, theta_top, rng):
        wm = WorkloadModel(theta_top)
        log = wm.generate_log(500, rng)
        assert log.sizes().max() <= theta_top.n_nodes

    def test_archetype_weights_normalized(self):
        assert sum(ARCHETYPE_WEIGHTS.values()) == pytest.approx(1.0)

    def test_active_jobs_respect_fill(self, theta_top, rng):
        wm = WorkloadModel(theta_top)
        jobs = wm.sample_active_jobs(rng, target_fill=0.5, reserve_nodes=256)
        used = sum(j.n_nodes for j in jobs)
        assert used <= int((theta_top.n_nodes - 256) * 0.5)

    def test_active_jobs_fill_validation(self, theta_top, rng):
        wm = WorkloadModel(theta_top)
        with pytest.raises(ValueError):
            wm.sample_active_jobs(rng, target_fill=1.5)

    def test_size_mix_probabilities(self):
        mix = JobSizeMix()
        sizes, p = mix.probabilities(1024)
        assert sizes.max() <= 1024
        assert p.sum() == pytest.approx(1.0)
        # power law: smaller sizes more likely
        assert p[0] > p[-1]


class TestBackground:
    @pytest.mark.parametrize("archetype", sorted(ARCHETYPE_RATES))
    def test_job_flows_valid(self, rng, archetype):
        job = Job(n_nodes=64, duration_hours=1.0, archetype=archetype)
        nodes = np.arange(64)
        p2p, a2a = _job_flows(job, nodes, rng)
        for fl in (p2p, a2a):
            if fl.n:
                assert (fl.src != fl.dst).all()
                assert (fl.nbytes > 0).all()

    def test_alltoall_goes_to_a2a_class(self, rng):
        job = Job(n_nodes=64, duration_hours=1.0, archetype="alltoall")
        p2p, a2a = _job_flows(job, np.arange(64), rng)
        assert p2p.n == 0 and a2a.n > 0

    def test_unknown_archetype(self, rng):
        job = Job(n_nodes=4, duration_hours=1.0, archetype="quantum")
        with pytest.raises(KeyError):
            _job_flows(job, np.arange(4), rng)

    def test_tiny_job_no_flows(self, rng):
        job = Job(n_nodes=1, duration_hours=1.0, archetype="stencil")
        p2p, a2a = _job_flows(job, np.arange(1), rng)
        assert p2p.n == 0 and a2a.n == 0

    def test_scenario_field_properties(self, theta_top):
        bm = BackgroundModel(theta_top)
        sc = bm.build_scenario(np.random.default_rng(4), reserve_nodes=256)
        assert sc.util.shape == (theta_top.n_links,)
        assert sc.util.min() >= 0
        assert sc.util.max() <= 0.95
        assert 0 < sc.fill <= 1.0
        assert sc.n_jobs > 0

    def test_intensity_scaling_clipped(self, theta_top):
        bm = BackgroundModel(theta_top)
        sc = bm.build_scenario(np.random.default_rng(4), reserve_nodes=256)
        assert sc.at_intensity(100.0).max() <= 0.9
        assert np.allclose(sc.at_intensity(0.0), 0.0)

    def test_intensity_sampler_bounds(self, theta_top, rng):
        bm = BackgroundModel(theta_top)
        vals = [bm.sample_intensity(rng) for _ in range(200)]
        assert all(0.05 <= v <= 1.3 for v in vals)

    def test_scenarios_deterministic(self, theta_top):
        bm = BackgroundModel(theta_top)
        a = bm.build_scenario(np.random.default_rng(11))
        b = bm.build_scenario(np.random.default_rng(11))
        np.testing.assert_array_equal(a.util, b.util)
