"""Benchmark suite configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark regenerates one table or figure of the paper and writes
its rows/series to ``benchmarks/results/<name>.txt`` (also printed; use
``-s`` to see them live).
"""

import sys
from pathlib import Path

# make `_harness` importable regardless of rootdir configuration
sys.path.insert(0, str(Path(__file__).parent))
