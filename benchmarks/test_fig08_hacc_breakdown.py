"""Fig. 8 — HACC runtime decomposition, AD0 vs AD3.

Paper: HACC's dominant MPI_Wait (the bisection-bound FFT sends) *grows*
under AD3 — the opposite of MILC — because minimal routing concentrates
the transpose traffic onto the direct rank-3 cables.
"""

import numpy as np
import pytest

from _harness import cached_campaign, fmt_table, n_samples, report
from repro.apps import HACC
from repro.core.analysis import breakdown_rows


def run_fig08():
    recs = cached_campaign(HACC(), samples=n_samples(16))
    return recs, breakdown_rows(recs)


def _fmt(bd):
    rows = []
    keys = ("Compute", "MPI_Wait", "MPI_Waitall", "MPI_Allreduce", "Other_MPI")
    for mode in ("AD0", "AD3"):
        for i, stack in enumerate(bd[mode][:6]):
            rows.append([mode, i] + [f"{stack.get(k, 0.0):.0f}" for k in keys])
    return fmt_table(["mode", "run"] + list(keys), rows)


def test_fig08_hacc_breakdown(benchmark):
    recs, bd = benchmark.pedantic(run_fig08, rounds=1, iterations=1)
    report("fig08_hacc_breakdown", _fmt(bd))

    def mean_of(mode, key):
        return np.mean([s.get(key, 0.0) for s in bd[mode]])

    # MPI_Wait is the dominant interface (Table I), and it grows under
    # AD3 (the figure's key message)
    assert mean_of("AD0", "MPI_Wait") > mean_of("AD0", "MPI_Allreduce")
    assert mean_of("AD3", "MPI_Wait") > mean_of("AD0", "MPI_Wait")

    # compute is routing-invariant
    assert mean_of("AD3", "Compute") == pytest.approx(mean_of("AD0", "Compute"), rel=0.05)

    # total runtime grows under AD3 (Table II: -2.7%)
    total0 = np.mean([sum(s.values()) for s in bd["AD0"]])
    total3 = np.mean([sum(s.values()) for s in bd["AD3"]])
    assert total3 > total0
