"""Fig. 7 — normalized runtimes of all six applications, AD0 vs AD3.

Paper: strong minimal bias improves the mean and the variability for
every application except HACC.
"""

import numpy as np

from _harness import cached_campaign, fmt_table, n_samples, report
from repro.apps import PRODUCTION_APPS
from repro.core.analysis import normalized_by_mode
from repro.core.experiment import stats_by_mode


def run_fig07():
    out = {}
    for cls in PRODUCTION_APPS:
        recs = cached_campaign(cls(), samples=n_samples(16))
        out[cls.name] = recs
    return out


def _fmt(out):
    rows = []
    for app, recs in out.items():
        z = normalized_by_mode(recs)
        st = stats_by_mode(recs)
        imp = 100 * (st["AD0"].mean - st["AD3"].mean) / st["AD0"].mean
        rows.append(
            [
                app,
                f"{np.mean(z['AD0']):+.2f}",
                f"{np.mean(z['AD3']):+.2f}",
                f"{imp:+.1f}%",
            ]
        )
    return fmt_table(["app", "AD0 z-mean", "AD3 z-mean", "AD3 improvement"], rows)


def test_fig07_all_apps_normalized(benchmark):
    out = benchmark.pedantic(run_fig07, rounds=1, iterations=1)
    report("fig07_all_apps", _fmt(out))

    for app, recs in out.items():
        z = normalized_by_mode(recs)
        if app == "HACC":
            # the paper's exception: AD3 hurts HACC
            assert np.mean(z["AD3"]) > np.mean(z["AD0"])
        else:
            # everyone else improves or is flat (Rayleigh ~0; our Qbox
            # reproduces the paper's +4.8% only as "about neutral")
            assert np.mean(z["AD3"]) <= np.mean(z["AD0"]) + 0.25, app
