"""Ablation — runtime vs (shift, add) bias beyond the vendor presets.

The vendor exposes only AD0..AD3, but the bias space is any
(shift, add) in 0..15 (Section II-D).  Sweep a grid of custom biases on
MILC to map where the vendor presets sit in the broader space: runtime
should improve monotonically-ish with minimal bias for this
latency-bound app, saturating once the bias is strong enough.
"""

import numpy as np

from _harness import background_pool, fmt_table, n_samples, report, theta_top
from repro.apps import MILC
from repro.core.biases import custom_bias
from repro.core.experiment import CampaignConfig, run_campaign, stats_by_mode


def run_sweep():
    top = theta_top()
    bm, scenarios = background_pool("theta", reserve=512)
    modes = tuple(
        custom_bias(shift, add) for shift in (0, 1, 2, 3) for add in (0, 4)
    )
    cfg = CampaignConfig(app=MILC(), samples=n_samples(6), modes=modes, seed=555)
    recs = run_campaign(top, cfg, background_model=bm, scenarios=scenarios)
    return stats_by_mode(recs)


def _fmt(st):
    rows = [
        [name, f"{s.mean:.1f}", f"{s.std:.1f}"]
        for name, s in sorted(st.items(), key=lambda kv: kv[1].mean)
    ]
    return fmt_table(["bias (shift/add)", "mean runtime (s)", "std"], rows)


def test_ablation_bias_sweep(benchmark):
    st = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report("ablation_bias_sweep", _fmt(st))

    # the unbiased default is the worst (or near-worst) choice for MILC
    worst = max(st.values(), key=lambda s: s.mean)
    assert st["S0A0"].mean > min(s.mean for s in st.values())
    # strong multiplicative bias (the AD3 family) beats no bias
    assert st["S2A0"].mean < st["S0A0"].mean
    # beyond AD3-strength, extra bias changes little (saturation)
    assert abs(st["S3A0"].mean - st["S2A0"].mean) / st["S2A0"].mean < 0.08
