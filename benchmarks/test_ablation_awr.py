"""Ablation — static bias vs an AWR-style adaptive runtime.

The paper's introduction dismisses the De Sensi et al. (SC'19) runtime
for two measured reasons: counter-polling overhead was unaffordable on
KNL, and "individual bias policies often outperformed the adaptive
runtime".  Reproduce that comparison: MILC over a drifting production
background under static AD0, static AD3, AWR on fast cores, and AWR
with KNL-class polling overhead.
"""

import numpy as np

from _harness import background_pool, fmt_table, report, theta_top
from repro.apps import MILC
from repro.core.awr import AwrConfig, run_app_awr, run_app_static
from repro.core.biases import AD0, AD3
from repro.core.experiment import mask_endpoint_background
from repro.scheduler.placement import production_placement
from repro.util import derive_rng


def run_ablation():
    top = theta_top()
    bm, scenarios = background_pool("theta", reserve=512)
    scenario = scenarios[0]
    nodes = production_placement(top, 256, derive_rng(2, "awr-place"))
    rng_i = derive_rng(3, "awr-drift")
    windows = [
        mask_endpoint_background(
            top,
            scenario.at_intensity(
                float(np.clip(rng_i.lognormal(np.log(0.7), 0.6), 0.05, 1.3))
            ),
            nodes,
        )
        for _ in range(12)
    ]

    app = MILC()
    out = {
        "static AD0": run_app_static(
            top, app, nodes, AD0, background_windows=windows, rng=derive_rng(4, "s0")
        ),
        "static AD3": run_app_static(
            top, app, nodes, AD3, background_windows=windows, rng=derive_rng(4, "s3")
        ),
    }
    awr = run_app_awr(top, app, nodes, background_windows=windows, rng=derive_rng(4, "a"))
    awr_knl = run_app_awr(
        top,
        app,
        nodes,
        background_windows=windows,
        rng=derive_rng(4, "a"),
        config=AwrConfig(core_slowdown=8.0),
    )
    out["AWR (fast cores)"] = awr.runtime
    out["AWR (KNL cores)"] = awr_knl.runtime
    return out, awr


def _fmt(out, awr):
    rows = [[k, f"{v:.0f}"] for k, v in sorted(out.items(), key=lambda kv: kv[1])]
    text = fmt_table(["policy", "runtime (s)"], rows)
    text += f"\n\nAWR window modes: {' '.join(awr.window_modes)} ({awr.mode_changes} changes)"
    return text


def test_ablation_awr_vs_static(benchmark):
    out, awr = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report("ablation_awr", _fmt(out, awr))

    # the paper's two claims:
    # 1. a static strong minimal bias beats the adaptive runtime
    assert out["static AD3"] < out["AWR (fast cores)"]
    # 2. KNL-class polling overhead makes the runtime strictly worse
    assert out["AWR (KNL cores)"] > out["AWR (fast cores)"]
    # and the runtime actually adapts (it is not a straw man)
    assert len(set(awr.window_modes)) > 1
