"""Fig. 3 — MILC/MILCREORDER by groups spanned at 128/256/512 nodes (Theta).

Paper: normalized runtimes scatter across group spans at every size;
AD3 is consistently better at 128/256 nodes irrespective of placement
span; at 512 nodes on Theta AD3 shows a small mean *decrease* (-3%) in
production (the underutilized-network regime).
"""

import numpy as np

from _harness import cached_campaign, fmt_table, n_samples, report
from repro.apps import MILC, MILCReorder
from repro.core.analysis import group_span_series
from repro.core.experiment import stats_by_mode


def run_fig03():
    out = {}
    for cls in (MILC, MILCReorder):
        for n_nodes in (128, 256, 512):
            recs = cached_campaign(cls(), n_nodes=n_nodes, samples=n_samples(10))
            out[(cls.name, n_nodes)] = recs
    return out


def _fmt(out):
    rows = []
    for (app, n_nodes), recs in out.items():
        st = stats_by_mode(recs)
        spans = sorted({r.groups for r in recs})
        imp = 100 * (st["AD0"].mean - st["AD3"].mean) / st["AD0"].mean
        rows.append(
            [
                app,
                n_nodes,
                f"{spans[0]}-{spans[-1]}",
                f"{st['AD0'].mean:.0f}",
                f"{st['AD3'].mean:.0f}",
                f"{imp:+.1f}%",
            ]
        )
    return fmt_table(
        ["app", "nodes", "groups spanned", "AD0 mean", "AD3 mean", "AD3 improvement"],
        rows,
    )


def test_fig03_groups_spanned_theta(benchmark):
    out = benchmark.pedantic(run_fig03, rounds=1, iterations=1)
    report("fig03_milc_groups_theta", _fmt(out))

    for (app, n_nodes), recs in out.items():
        series = group_span_series(recs)
        # placements cover several spans (the figure's x-axis)
        assert len(series) >= 3, (app, n_nodes)
        st = stats_by_mode(recs)
        if n_nodes <= 256:
            # AD3 consistently better at small/medium sizes
            assert st["AD3"].mean < st["AD0"].mean * 1.02, (app, n_nodes)
        # KNOWN DEVIATION (recorded in EXPERIMENTS.md): the paper's
        # 512-node Theta production runs slightly preferred AD0 (-3%)
        # because MILC could opportunistically use spare non-minimal
        # bandwidth; our 512-node model is latency-dominated and keeps
        # favoring AD3, so no assertion is made at 512.
