"""Fig. 13 — system-wide counters before (AD0) vs after (AD3) the
default routing change, one production week each.

Paper: flit totals of the two windows are roughly in line (the windows
are comparable); stalls and the stalls-to-flits ratio drop markedly
after the change; MILC probe runs improve ~11.8%.
"""

import numpy as np

from _harness import fmt_table, n_samples, report, theta_top
from repro.core.facility import run_default_change_study
from repro.core.reporting import series_plot


def run_fig13():
    # drive both windows with the same time-correlated machine state
    # from the batch-scheduler simulation (as the real LDMS weeks are
    # consecutive minutes of one evolving system)
    import numpy as np

    from repro.core.facility import DefaultChangeStudy, WindowConfig, simulate_production_window
    from repro.mpi.env import RoutingEnv
    from repro.core.biases import AD3
    from repro.scheduler.simulator import BatchScheduler

    top = theta_top()
    trace = BatchScheduler(top, arrival_rate=14).run(
        n_samples(30) / 60.0, np.random.default_rng(131), sample_interval_hours=1 / 60
    )
    before = simulate_production_window(
        top, WindowConfig(env=RoutingEnv(), n_intervals=n_samples(30), seed=131), trace=trace
    )
    after = simulate_production_window(
        top,
        WindowConfig(env=RoutingEnv.uniform(AD3), n_intervals=n_samples(30), seed=131),
        trace=trace,
    )
    return DefaultChangeStudy(before=before, after=after)


def _fmt(study):
    b, a = study.before.series(), study.after.series()
    change = study.counter_change()
    rows = [
        ["flits", f"{b['flits'].sum():.3e}", f"{a['flits'].sum():.3e}", f"{change['flits']:+.1%}"],
        ["stalls", f"{b['stalls'].sum():.3e}", f"{a['stalls'].sum():.3e}", f"{change['stalls']:+.1%}"],
        [
            "stalls/flits",
            f"{b['stalls'].sum() / b['flits'].sum():.4f}",
            f"{a['stalls'].sum() / a['flits'].sum():.4f}",
            f"{change['ratio']:+.1%}",
        ],
    ]
    text = fmt_table(["metric", "before (AD0 week)", "after (AD3 week)", "change"], rows)
    text += "\n\nstall series over the two windows (Fig. 13 panel):\n"
    text += series_plot(
        b["time"],
        {"before": b["stalls"], "after": a["stalls"]},
        width=60,
        height=8,
        ylabel="stalls/interval",
    )
    return text


def test_fig13_default_change_counters(benchmark):
    study = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    report("fig13_default_change", _fmt(study))

    change = study.counter_change()
    # the windows are comparable (the paper's FLIT sanity check); AD3
    # moves somewhat fewer flits because it takes fewer hops
    assert -0.35 < change["flits"] < 0.05
    # stalls improve under the AD3 default
    # KNOWN DEVIATION (EXPERIMENTS.md): the paper reports a *marked*
    # stall reduction; the trace-driven model reproduces a ~10-20% one
    assert change["stalls"] < 0.02
    # the LDMS series are non-degenerate week-long sequences
    assert study.before.series()["flits"].size == study.after.series()["flits"].size
    assert (study.before.series()["flits"] > 0).all()
