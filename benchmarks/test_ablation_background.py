"""Ablation — the AD0/AD3 crossover as background load rises.

Section V: MILC at 512 nodes preferred AD0 in (underutilized) production
but AD3 under controlled high load.  Sweep the background intensity for
MILC and for HACC: MILC's AD3 advantage should *grow* with congestion,
while HACC's AD3 penalty persists (its bisection bottleneck is its own).
"""

import numpy as np

from _harness import background_pool, fmt_table, report, theta_top
from repro.apps import HACC, MILC
from repro.core.experiment import mask_endpoint_background, run_app_once
from repro.mpi.env import RoutingEnv
from repro.core.biases import AD0, AD3
from repro.scheduler.placement import production_placement
from repro.util import derive_rng


def run_ablation():
    top = theta_top()
    bm, scenarios = background_pool("theta", reserve=512)
    scenario = scenarios[0]
    nodes = production_placement(top, 256, derive_rng(4, "abl-bg"))
    out = {}
    for cls in (MILC, HACC):
        for intensity in (0.0, 0.4, 0.8, 1.2):
            times = {}
            for mode in (AD0, AD3):
                bg = (
                    mask_endpoint_background(
                        top, scenario.at_intensity(intensity), nodes
                    )
                    if intensity
                    else None
                )
                rt, _, _ = run_app_once(
                    top,
                    cls(),
                    nodes,
                    RoutingEnv.uniform(mode),
                    background_util=bg,
                    rng=derive_rng(5, "abl-bg", cls.name, mode.name),
                )
                times[mode.name] = rt
            out[(cls.name, intensity)] = (
                100 * (times["AD0"] - times["AD3"]) / times["AD0"]
            )
    return out


def _fmt(out):
    rows = [
        [app, f"{i:.1f}", f"{imp:+.1f}%"]
        for (app, i), imp in sorted(out.items())
    ]
    return fmt_table(["app", "background intensity", "AD3 improvement"], rows)


def test_ablation_background_crossover(benchmark):
    out = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report("ablation_background", _fmt(out))

    # MILC's AD3 advantage grows as the network gets busier
    assert out[("MILC", 1.2)] > out[("MILC", 0.0)]
    assert out[("MILC", 0.8)] > -2.0
    # HACC's penalty does not turn into a win at any load level
    for i in (0.0, 0.4, 0.8, 1.2):
        assert out[("HACC", i)] < 4.0
