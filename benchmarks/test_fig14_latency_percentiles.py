"""Fig. 14 — system-wide NIC packet-pair mean-latency percentiles,
before vs after the default change.

Paper (Cori): per-NIC mean latencies sampled ~100 times per NIC in a
week-long window before and after; the comparison at
P05..P99.99 shows improvements across the board, with the tails
(P99-P99.99) reduced 20-30% (918 us -> 663 us at P99.99).
"""

import numpy as np

from _harness import fmt_table, n_samples, report, theta_top
from repro.core.facility import run_default_change_study
from repro.core.metrics import LATENCY_PERCENTILES
from repro.core.reporting import grouped_bar_chart


def run_fig14():
    top = theta_top()
    return run_default_change_study(top, n_intervals=n_samples(30), seed=141)


def _fmt(study):
    before = study.before.latency_percentiles()
    after = study.after.latency_percentiles()
    change = study.latency_change()
    rows = [
        [
            f"P{p:g}",
            f"{before[p] * 1e6:.2f}",
            f"{after[p] * 1e6:.2f}",
            f"{change[p]:+.1f}%",
        ]
        for p in LATENCY_PERCENTILES
    ]
    text = fmt_table(
        ["percentile", "before (us)", "after (us)", "% change"], rows
    )
    text += "\n\nlatency by percentile (Fig. 14 panel, us):\n"
    text += grouped_bar_chart(
        [f"P{p:g}" for p in LATENCY_PERCENTILES],
        {
            "AD0": [before[p] * 1e6 for p in LATENCY_PERCENTILES],
            "AD3": [after[p] * 1e6 for p in LATENCY_PERCENTILES],
        },
        width=44,
    )
    return text


def test_fig14_latency_percentiles(benchmark):
    study = benchmark.pedantic(run_fig14, rounds=1, iterations=1)
    report("fig14_latency_percentiles", _fmt(study))

    before = study.before.latency_percentiles()
    change = study.latency_change()

    # sane absolute magnitudes: microseconds at the median, tens of
    # microseconds (or more) in the tails
    assert 1e-6 < before[50] < 20e-6
    assert before[99.9] > before[50]

    # the body of the distribution improves under the AD3 default
    for p in (5, 25, 50, 75):
        assert change[p] < 2.0, p
    body = np.mean([change[p] for p in (5, 25, 50, 75, 90)])
    assert body < 0.0

    # KNOWN DEVIATION (EXPERIMENTS.md): the paper's 20-30% tail
    # reductions are only partially reproduced — our equilibrium tails
    # are dominated by mode-independent saturated links, so P99+ is
    # roughly neutral rather than clearly improved.
    assert change[99.99] < 35.0
