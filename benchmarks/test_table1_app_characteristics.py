"""Table I — communication properties of each application at 256 nodes.

Reproduces the table's columns from AutoPerf profiles of isolated runs:
point-to-point/collective character, % of MPI in total time, and the
top-3 MPI interfaces by time.
"""

import numpy as np

from _harness import fmt_table, report, theta_top
from repro.apps import PRODUCTION_APPS
from repro.core.experiment import run_app_once
from repro.mpi.env import RoutingEnv
from repro.util import derive_rng, fmt_bytes

#: the paper's Table I (256-node runs)
PAPER = {
    "MILC": (0.52, ["MPI_Allreduce", "MPI_Wait", "MPI_Isend"]),
    "MILCREORDER": (0.50, ["MPI_Wait", "MPI_Allreduce", "MPI_Isend"]),
    "Nek5000": (0.48, ["MPI_Allreduce", "MPI_Waitall", "MPI_Recv"]),
    "HACC": (0.22, ["MPI_Wait", "MPI_Waitall", "MPI_Allreduce"]),
    "Qbox": (0.66, ["MPI_Alltoallv", "MPI_Recv", "MPI_Wait"]),
    "Rayleigh": (0.28, ["MPI_Alltoallv", "MPI_Send", "MPI_Barrier"]),
}


def run_table1():
    # Table I comes from AutoPerf data of *production* runs: take the
    # median-runtime AD0 run of each app's (cached, shared) campaign
    from _harness import cached_campaign, n_samples

    reports = {}
    for cls in PRODUCTION_APPS:
        app = cls()
        recs = [
            r
            for r in cached_campaign(app, samples=n_samples(8))
            if r.mode == "AD0"
        ]
        recs.sort(key=lambda r: r.runtime)
        reports[app.name] = recs[len(recs) // 2].report
    return reports


def _fmt(reports):
    rows = []
    for name, rep in reports.items():
        tops = rep.top_ops(3)
        data_ops = [
            (op, rep.ops[op].avg_bytes)
            for op in rep.ops
            if rep.ops[op].avg_bytes > 0
        ]
        biggest = max(data_ops, key=lambda kv: kv[1]) if data_ops else ("-", 0)
        paper_mpi, paper_tops = PAPER[name]
        rows.append(
            [
                name,
                f"{rep.mpi_fraction:.0%} (paper {paper_mpi:.0%})",
                f"{biggest[0]}={fmt_bytes(biggest[1])}",
                ", ".join(tops),
            ]
        )
    return fmt_table(
        ["app", "% MPI", "largest payload", "top MPI calls (measured)"], rows
    )


def test_table1_characteristics(benchmark):
    reports = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    report("table1_app_characteristics", _fmt(reports))

    for name, rep in reports.items():
        paper_mpi, paper_tops = PAPER[name]
        # MPI fraction within +-15 percentage points of Table I
        assert abs(rep.mpi_fraction - paper_mpi) < 0.15, name
        # the top interface matches the paper (full top-3 ordering can
        # differ; the #1 interface is the table's strongest signal)
        measured = rep.top_ops(3)
        if name == "MILCREORDER":
            # known deviation: our variant keeps Allreduce first
            assert set(measured[:2]) == set(paper_tops[:2])
        else:
            assert measured[0] == paper_tops[0], (name, measured)
