"""Fig. 6 — MILC stalls-to-flits ratio per router tile class, AD0 vs AD3.

Paper: the network tiles (Rank3/Rank2/Rank1) improve under AD3; the
processor-tile *request* VC stalls increase (endpoint pressure as data
arrives faster); the response VC is unaffected by routing.
"""

import numpy as np

from _harness import cached_campaign, fmt_table, n_samples, report
from repro.apps import MILC
from repro.network.counters import TILE_CLASSES


def run_fig06():
    recs = cached_campaign(MILC(), samples=n_samples(16))
    ratios = {mode: {c: [] for c in TILE_CLASSES} for mode in ("AD0", "AD3")}
    for r in recs:
        for c in TILE_CLASSES:
            ratios[r.mode][c].append(r.report.counters.class_ratio(c))
    return {m: {c: float(np.mean(v)) for c, v in d.items()} for m, d in ratios.items()}


def _fmt(means):
    rows = [
        [c, f"{means['AD0'][c]:.3f}", f"{means['AD3'][c]:.3f}"]
        for c in ("rank3", "rank2", "rank1", "proc_req", "proc_rsp")
    ]
    return fmt_table(["tile class", "AD0 stalls/flits", "AD3 stalls/flits"], rows)


def test_fig06_milc_tile_ratios(benchmark):
    means = benchmark.pedantic(run_fig06, rounds=1, iterations=1)
    report("fig06_milc_counters", _fmt(means))

    # network-tile congestion improves with strong minimal bias
    net0 = np.mean([means["AD0"][c] for c in ("rank1", "rank2", "rank3")])
    net3 = np.mean([means["AD3"][c] for c in ("rank1", "rank2", "rank3")])
    assert net3 < net0

    # the response VC is (nearly) routing-invariant
    assert means["AD3"]["proc_rsp"] == np.float64(means["AD3"]["proc_rsp"])
    assert abs(means["AD3"]["proc_rsp"] - means["AD0"]["proc_rsp"]) < 0.02

    # ratios land on the paper's 0-10ish scale (proc_req can exceed the
    # per-link stall cap because NIC backpressure stalls add on top)
    for mode in means:
        for c, v in means[mode].items():
            assert 0.0 <= v <= 20.0, (mode, c, v)
