"""Fig. 4 — Cori MILC runtimes by groups spanned at 128/256/512 nodes.

Paper: on Cori (reduced bisection-to-injection ratio, bigger machine)
AD3 wins at *all* three sizes — including 512 nodes (+6%), unlike Theta —
with 256 nodes improving 13.5%.
"""

import numpy as np

from _harness import cached_campaign, fmt_table, n_samples, report
from repro.apps import MILC
from repro.core.experiment import stats_by_mode


def run_fig04():
    out = {}
    for n_nodes in (128, 256, 512):
        out[n_nodes] = cached_campaign(
            MILC(), system="cori", n_nodes=n_nodes, samples=n_samples(8)
        )
    return out


def _fmt(out):
    paper = {128: None, 256: 13.5, 512: 6.0}
    rows = []
    for n_nodes, recs in out.items():
        st = stats_by_mode(recs)
        imp = 100 * (st["AD0"].mean - st["AD3"].mean) / st["AD0"].mean
        spans = sorted({r.groups for r in recs})
        rows.append(
            [
                n_nodes,
                f"{spans[0]}-{spans[-1]}",
                f"{st['AD0'].mean:.0f}",
                f"{st['AD3'].mean:.0f}",
                f"{imp:+.1f}%",
                f"paper {paper[n_nodes]:+.1f}%" if paper[n_nodes] else "paper: +",
            ]
        )
    return fmt_table(
        ["nodes", "groups spanned", "AD0 mean", "AD3 mean", "improvement", "paper"],
        rows,
    )


def test_fig04_cori_milc(benchmark):
    out = benchmark.pedantic(run_fig04, rounds=1, iterations=1)
    report("fig04_milc_groups_cori", _fmt(out))

    for n_nodes, recs in out.items():
        st = stats_by_mode(recs)
        # Cori: AD3 no worse at any size, including 512 (the Theta
        # exception does not carry over)
        assert st["AD3"].mean < st["AD0"].mean * 1.03, n_nodes
        # Cori jobs span more groups than the same size on Theta can
        assert max(r.groups for r in recs) > 12 or n_nodes == 128
