"""Fig. 12 — sixteen 256-node HACC jobs under AD0 vs AD3.

Paper: HACC's runtimes increase with more minimal bias; under AD3 the
rank-3 stalls show localized peaks (concentration onto a subset of
cables), backpressure from the saturated global links inflates flit
counts (packet retransmissions), and processor-tile stalls rise.
"""

import numpy as np

from _harness import fmt_table, report, theta_top
from repro.apps import HACC
from repro.core.biases import AD0, AD3
from repro.core.ensembles import EnsembleConfig, run_ensemble


def run_fig12():
    top = theta_top()
    out = {}
    for mode in (AD0, AD3):
        out[mode.name] = run_ensemble(
            top,
            EnsembleConfig(
                app=HACC(), n_jobs=16, n_nodes=256, mode=mode, placement="compact"
            ),
        )
    return out


def _fmt(out):
    rows = []
    for mode, res in out.items():
        snap = res.bank.snapshot()
        r3 = snap.stalls["rank3"]
        rows.append(
            [
                mode,
                f"{res.job_runtimes.mean():.0f}",
                f"{snap.total_flits(('rank1', 'rank2', 'rank3')):.3e}",
                f"{r3.max():.2e}",
                f"{np.median(r3):.2e}",
                f"{snap.stalls['proc_req'].sum():.2e}",
            ]
        )
    return fmt_table(
        [
            "mode",
            "mean runtime (s)",
            "network flits",
            "rank3 stall peak",
            "rank3 stall median",
            "proc_req stalls",
        ],
        rows,
    )


def test_fig12_hacc_ensemble(benchmark):
    out = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    report("fig12_hacc_ensemble_counters", _fmt(out))

    s0 = out["AD0"].bank.snapshot()
    s3 = out["AD3"].bank.snapshot()

    # runtimes increase with minimal bias for this bisection-bound code
    assert out["AD3"].job_runtimes.mean() > out["AD0"].job_runtimes.mean() * 0.98

    # localized rank-3 stall concentration: the peak grows under AD3
    # while the median collapses (a few cables take all the pain)
    assert s3.stalls["rank3"].max() > s0.stalls["rank3"].max() * 0.9
    peak_to_median_0 = s0.stalls["rank3"].max() / max(np.median(s0.stalls["rank3"]), 1.0)
    peak_to_median_3 = s3.stalls["rank3"].max() / max(np.median(s3.stalls["rank3"]), 1.0)
    assert peak_to_median_3 > peak_to_median_0

    # backpressure flit inflation keeps AD3's flit reduction small
    # compared to the hop-count savings alone (~35% for 2-hop valiant)
    f0 = s0.total_flits(("rank1", "rank2", "rank3"))
    f3 = s3.total_flits(("rank1", "rank2", "rank3"))
    assert f3 > 0.55 * f0
