"""Engine performance benchmarks (the simulator's own speed).

Unlike the figure harnesses (one timed round each), these run multiple
rounds and track the throughput that makes campaign-scale reproduction
practical: path construction, fluid solves, packet-simulator stepping,
and a full application run.  Regressions here directly multiply every
campaign's wall-clock.
"""

import numpy as np
import pytest

from _harness import theta_top
from repro.apps import MILC
from repro.core.biases import AD0
from repro.core.experiment import run_app_once
from repro.mpi.env import RoutingEnv
from repro.network.fluid import FlowSet, FluidParams, solve_fluid
from repro.network.packet_sim import InjectionSpec, PacketSimulator
from repro.topology.paths import minimal_paths, valiant_paths
from repro.util import derive_rng


@pytest.fixture(scope="module")
def perm_flows():
    top = theta_top()
    rng = np.random.default_rng(0)
    n = 4096
    src = rng.integers(0, top.n_nodes, n)
    dst = (src + 1 + rng.integers(0, top.n_nodes - 1, n)) % top.n_nodes
    return top, FlowSet(src, dst, np.full(n, 1e5), np.zeros(n, dtype=np.int64))


def test_perf_minimal_paths(benchmark, perm_flows):
    top, fl = perm_flows
    rng = np.random.default_rng(1)
    out = benchmark(lambda: minimal_paths(top, fl.src, fl.dst, k=4, rng=rng))
    assert out.n_subpaths == 4 * fl.n


def test_perf_valiant_paths(benchmark, perm_flows):
    top, fl = perm_flows
    rng = np.random.default_rng(1)
    out = benchmark(lambda: valiant_paths(top, fl.src, fl.dst, k=4, rng=rng))
    assert out.n_subpaths == 4 * fl.n


def test_perf_fluid_solve_4k_flows(benchmark, perm_flows):
    top, fl = perm_flows

    def solve():
        return solve_fluid(top, fl, [AD0], rng=np.random.default_rng(2))

    res = benchmark(solve)
    assert res.phase_time > 0


def test_perf_fluid_solve_fast_params(benchmark, perm_flows):
    top, fl = perm_flows
    params = FluidParams(k_min=2, k_nonmin=2, n_iter=4)

    def solve():
        return solve_fluid(top, fl, [AD0], rng=np.random.default_rng(2), params=params)

    res = benchmark(solve)
    assert res.phase_time > 0


def test_perf_packet_sim_steps(benchmark):
    from repro.topology.systems import toy

    top = toy()

    def run():
        sim = PacketSimulator(top, rng=np.random.default_rng(3))
        for s in range(16):
            sim.add_message(InjectionSpec(src=s, dst=16 + s, nbytes=8192, mode=AD0))
        return sim.run()

    steps = benchmark(run)
    assert steps > 0


def test_perf_full_milc_run(benchmark):
    top = theta_top()

    def run():
        rt, _, _ = run_app_once(
            top,
            MILC(),
            np.arange(256),
            RoutingEnv(),
            rng=derive_rng(4, "perf"),
            collect_counters=False,
        )
        return rt

    rt = benchmark(run)
    assert rt > 0
