"""Engine performance benchmarks (the simulator's own speed).

Unlike the figure harnesses (one timed round each), these run multiple
rounds and track the throughput that makes campaign-scale reproduction
practical: path construction, fluid solves, packet-simulator stepping,
and a full application run.  Regressions here directly multiply every
campaign's wall-clock.
"""

import json
import os
import time

import numpy as np
import pytest

from _harness import RESULTS_DIR, SEED, background_pool, n_samples, theta_top
from repro.apps import MILC
from repro.core.biases import AD0, AD1, AD2, AD3
from repro.core.checkpoint import record_to_dict
from repro.core.experiment import CampaignConfig, run_app_once, run_campaign
from repro.mpi.env import RoutingEnv
from repro.network.fluid import FlowSet, FluidParams, solve_fluid
from repro.network.packet_sim import InjectionSpec, PacketSimulator
from repro.telemetry import MetricsRegistry, Telemetry
from repro.topology.paths import minimal_paths, valiant_paths
from repro.util import derive_rng


@pytest.fixture(scope="module")
def perm_flows():
    top = theta_top()
    rng = np.random.default_rng(0)
    n = 4096
    src = rng.integers(0, top.n_nodes, n)
    dst = (src + 1 + rng.integers(0, top.n_nodes - 1, n)) % top.n_nodes
    return top, FlowSet(src, dst, np.full(n, 1e5), np.zeros(n, dtype=np.int64))


def test_perf_minimal_paths(benchmark, perm_flows):
    top, fl = perm_flows
    rng = np.random.default_rng(1)
    out = benchmark(lambda: minimal_paths(top, fl.src, fl.dst, k=4, rng=rng))
    assert out.n_subpaths == 4 * fl.n


def test_perf_valiant_paths(benchmark, perm_flows):
    top, fl = perm_flows
    rng = np.random.default_rng(1)
    out = benchmark(lambda: valiant_paths(top, fl.src, fl.dst, k=4, rng=rng))
    assert out.n_subpaths == 4 * fl.n


def test_perf_fluid_solve_4k_flows(benchmark, perm_flows):
    top, fl = perm_flows

    def solve():
        return solve_fluid(top, fl, [AD0], rng=np.random.default_rng(2))

    res = benchmark(solve)
    assert res.phase_time > 0


def test_perf_fluid_solve_fast_params(benchmark, perm_flows):
    top, fl = perm_flows
    params = FluidParams(k_min=2, k_nonmin=2, n_iter=4)

    def solve():
        return solve_fluid(top, fl, [AD0], rng=np.random.default_rng(2), params=params)

    res = benchmark(solve)
    assert res.phase_time > 0


def test_perf_packet_sim_steps(benchmark):
    from repro.topology.systems import toy

    top = toy()

    def run():
        sim = PacketSimulator(top, rng=np.random.default_rng(3))
        for s in range(16):
            sim.add_message(InjectionSpec(src=s, dst=16 + s, nbytes=8192, mode=AD0))
        return sim.run()

    steps = benchmark(run)
    assert steps > 0


def test_perf_full_milc_run(benchmark):
    top = theta_top()

    def run():
        rt, _, _ = run_app_once(
            top,
            MILC(),
            np.arange(256),
            RoutingEnv(),
            rng=derive_rng(4, "perf"),
            collect_counters=False,
        )
        return rt

    rt = benchmark(run)
    assert rt > 0


def _usable_cpus() -> int:
    # cpu_count() reports the machine; sched_getaffinity respects the
    # cpuset/affinity mask containers actually grant us
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_perf_parallel_campaign_speedup():
    """Paper-scale routing-mode sweep: 4 workers vs serial.

    Times the same theta/MILC campaign under ``jobs=1`` and ``jobs=4``,
    checks the records are identical (the parallel dispatcher's core
    contract), and records the measured speedup into
    ``benchmarks/results/parallel_speedup.json``.  The >=2x floor is
    asserted only where four cores are actually schedulable, and the
    whole measurement is skipped on single-CPU boxes where a "speedup"
    number would only mislead the benchmark trajectory (the serial ≡
    parallel contract itself is covered CPU-independently by
    ``tests/test_parallel_equivalence.py``).  Per-phase engine timings
    from the serial leg are recorded alongside, so regressions can be
    attributed to the solver rather than the dispatcher.  Timed by
    hand rather than through the ``benchmark`` fixture: one round is
    ~20 s of solver work, and the serial/parallel pair must share a
    process so the fork-inherited context sees identical pre-built
    scenarios.
    """
    usable = _usable_cpus()
    if usable < 2:
        pytest.skip(
            f"only {usable} usable CPU(s): parallel speedup is not measurable"
        )
    top = theta_top()
    bm, scenarios = background_pool("theta")
    cfg = CampaignConfig(
        app=MILC(),
        n_nodes=256,
        modes=(AD0, AD1, AD2, AD3),
        samples=n_samples(24),
        seed=SEED,
    )
    common = dict(background_model=bm, scenarios=scenarios)
    tel = Telemetry(metrics=MetricsRegistry())

    t0 = time.perf_counter()
    serial = run_campaign(top, cfg, jobs=1, telemetry=tel, **common)
    t1 = time.perf_counter()
    parallel = run_campaign(top, cfg, jobs=4, **common)
    t2 = time.perf_counter()

    assert [record_to_dict(r) for r in parallel] == [
        record_to_dict(r) for r in serial
    ]

    serial_s, parallel_s = t1 - t0, t2 - t1
    speedup = serial_s / parallel_s
    metrics = tel.metrics.to_dict()
    engine = {
        name: {
            "count": m["count"],
            "sum_seconds": round(m["sum"], 4),
            "mean_seconds": m["mean"],
        }
        for name, m in metrics.items()
        if m["type"] == "histogram"
        and name in ("fluid_solve_seconds", "solver_iter_seconds",
                     "packet_run_seconds", "engine_step_seconds")
    }
    payload = {
        "runs": len(serial),
        "jobs": 4,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "speedup": round(speedup, 3),
        "usable_cpus": usable,
        "serial_engine_phases": engine,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "parallel_speedup.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print(f"\nserial {serial_s:.1f}s  4 workers {parallel_s:.1f}s  "
          f"speedup {speedup:.2f}x over {len(serial)} runs "
          f"({payload['usable_cpus']} usable cpus)")
    if payload["usable_cpus"] >= 4:
        assert speedup >= 2.0, payload
