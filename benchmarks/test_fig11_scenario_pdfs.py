"""Fig. 11 — stalls-to-flits ratio PDFs for 256-node MILC under four
conditions: production, isolated, controlled-compact, controlled-disperse.

Paper (AD0 panel): the congestion experienced by isolated and production
runs lies within the band bracketed by the controlled compact and
disperse runs — so controlled experiments are a good proxy for
production.  (AD3 panel): the AD3 production runs sit outside the
controlled band because the *rest* of the system still ran AD0.
"""

import numpy as np

from _harness import cached_campaign, fmt_table, n_samples, report, theta_top
from repro.apps import MILC
from repro.core.analysis import ratio_samples
from repro.core.biases import AD0, AD3
from repro.core.ensembles import EnsembleConfig, run_ensemble


def run_fig11():
    top = theta_top()
    out = {}

    prod = cached_campaign(MILC(), samples=n_samples(12))
    iso = cached_campaign(MILC(), samples=n_samples(8), background="isolated", seed=311)
    for mode in ("AD0", "AD3"):
        out[("production", mode)] = ratio_samples(
            [r for r in prod if r.mode == mode]
        )[mode]
        out[("isolated", mode)] = ratio_samples([r for r in iso if r.mode == mode])[mode]

    for placement in ("compact", "dispersed"):
        for mode in (AD0, AD3):
            res = run_ensemble(
                top,
                EnsembleConfig(
                    app=MILC(),
                    n_jobs=8,
                    n_nodes=256,
                    mode=mode,
                    placement=placement,
                    seed=1100 + len(placement),
                ),
            )
            out[(f"controlled-{placement}", mode.name)] = np.array(
                [res.job_local_ratio(j, top) for j in range(8)]
            )
    return out


def _fmt(out):
    rows = []
    for (scenario, mode), vals in sorted(out.items()):
        rows.append(
            [
                scenario,
                mode,
                f"{vals.mean():.3f}",
                f"{np.median(vals):.3f}",
                f"{vals.min():.3f}-{vals.max():.3f}",
                vals.size,
            ]
        )
    return fmt_table(
        ["scenario", "mode", "mean ratio", "median", "range", "n"], rows
    )


def test_fig11_scenario_ratio_pdfs(benchmark):
    out = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    report("fig11_scenario_pdfs", _fmt(out))

    # ratios are finite and in the paper's 0-10 range
    for vals in out.values():
        assert np.isfinite(vals).all()
        assert (vals >= 0).all() and (vals < 12).all()

    # AD0 panel: production and isolated congestion lie within (or very
    # near) the band spanned by the two controlled placements, so the
    # controlled runs are a good proxy for production.
    # KNOWN DEVIATION (EXPERIMENTS.md): in our model the *compact* end
    # of the band is the hot one (local-link concentration), whereas the
    # paper's hot end was the dispersed one.
    band = [
        out[("controlled-compact", "AD0")].mean(),
        out[("controlled-dispersed", "AD0")].mean(),
    ]
    band_lo, band_hi = min(band), max(band)
    assert band_lo * 0.8 <= out[("isolated", "AD0")].mean() <= band_hi * 1.2
    assert band_lo * 0.8 <= out[("production", "AD0")].mean() <= band_hi * 1.3

    # AD3 panel (the paper's key observation): AD3 production runs lie
    # *outside* (above) the all-AD3 controlled band, because the rest of
    # the production system still routes AD0
    band3_hi = max(
        out[("controlled-compact", "AD3")].mean(),
        out[("controlled-dispersed", "AD3")].mean(),
    )
    assert out[("production", "AD3")].mean() > band3_hi

    # within every scenario, AD3 sees no more congestion than AD0
    for scenario in ("production", "controlled-compact", "controlled-dispersed"):
        assert out[(scenario, "AD3")].mean() <= out[(scenario, "AD0")].mean() * 1.02
