"""Ablation — the bisection-to-injection ratio's effect on mode choice.

Theta wires 12 cables per group pair, Cori only 4 (Section II-F).  Build
Theta variants at both wirings and re-run the HACC (bisection-bound) and
MILC (latency-bound) comparisons.  Measured outcome: scarcity of global
bandwidth *amplifies* both sensitivities — the latency-bound app's AD3
advantage grows (hotter rank-3 links make short paths more valuable,
consistent with Cori MILC's +11.7% vs Theta's +11%), while the
bisection-bound app's AD3 penalty deepens (its minimal bundles saturate
sooner).
"""

import numpy as np

from _harness import fmt_table, n_samples, report
from repro.apps import HACC, MILC
from repro.core.experiment import CampaignConfig, run_campaign, stats_by_mode
from repro.scheduler.background import BackgroundModel
from repro.topology.dragonfly import DragonflyParams, DragonflyTopology
from repro.util import derive_rng


def _system(cables):
    return DragonflyTopology(
        DragonflyParams(
            name=f"theta-{cables}c",
            n_groups=12,
            n_compute_nodes=4392,
            cables_per_group_pair=cables,
        )
    )


def run_ablation():
    out = {}
    for cables in (12, 4):
        top = _system(cables)
        bm = BackgroundModel(top)
        scenarios = bm.build_pool(
            4, derive_rng(7, "ablation-bisect", cables), reserve_nodes=512
        )
        for cls in (MILC, HACC):
            cfg = CampaignConfig(app=cls(), samples=n_samples(6), seed=600 + cables)
            recs = run_campaign(top, cfg, background_model=bm, scenarios=scenarios)
            st = stats_by_mode(recs)
            out[(cables, cls.name)] = 100 * (st["AD0"].mean - st["AD3"].mean) / st["AD0"].mean
    return out


def _fmt(out):
    rows = [
        [cables, app, f"{imp:+.1f}%"]
        for (cables, app), imp in sorted(out.items(), reverse=True)
    ]
    return fmt_table(["cables/group-pair", "app", "AD3 improvement"], rows)


def test_ablation_bisection_ratio(benchmark):
    out = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report("ablation_bisection", _fmt(out))

    # MILC keeps preferring AD3 at either wiring, and more strongly so
    # on the bandwidth-starved variant
    assert out[(12, "MILC")] > 0
    assert out[(4, "MILC")] > 0
    assert out[(4, "MILC")] > out[(12, "MILC")] - 1.0
    # HACC keeps preferring AD0, and more strongly so when its minimal
    # bundles are scarcer
    assert out[(12, "HACC")] < 2.0
    assert out[(4, "HACC")] < out[(12, "HACC")] + 1.0
