"""Shared infrastructure for the per-figure/table benchmark harnesses.

Each benchmark regenerates one of the paper's tables or figures: it runs
the corresponding experiment at a reduced-but-meaningful scale, prints
the paper-shaped rows/series, and writes them under
``benchmarks/results/`` so they survive pytest's stdout capture.  The
``benchmark`` fixture times the harness run itself.

Scale: campaign sample counts default to ~1/4 of the paper's (which used
30-190 runs per configuration); pass ``REPRO_BENCH_SCALE`` > 1 in the
environment to run closer to paper size.
"""

from __future__ import annotations

import functools
import os
from pathlib import Path

import numpy as np

from repro.core.experiment import CampaignConfig, run_campaign
from repro.scheduler.background import BackgroundModel
from repro.topology.systems import cori, theta
from repro.util import derive_rng

RESULTS_DIR = Path(__file__).parent / "results"

#: global scale knob for sample counts
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: root seed for every benchmark campaign
SEED = 2021


def n_samples(base: int) -> int:
    """Scaled sample count (>= 4 so statistics stay meaningful)."""
    return max(4, int(round(base * SCALE)))


def report(name: str, text: str) -> str:
    """Print a harness's table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return text


@functools.lru_cache(maxsize=1)
def theta_top():
    return theta()


@functools.lru_cache(maxsize=1)
def cori_top():
    return cori()


@functools.lru_cache(maxsize=4)
def background_pool(system: str = "theta", reserve: int = 512, n: int = 8):
    """A shared pool of production background scenarios."""
    top = theta_top() if system == "theta" else cori_top()
    bm = BackgroundModel(top)
    scenarios = bm.build_pool(
        n, derive_rng(SEED, "bench-pool", system, reserve), reserve_nodes=reserve
    )
    return bm, scenarios


_campaign_cache: dict = {}


def cached_campaign(
    app,
    *,
    system: str = "theta",
    n_nodes: int = 256,
    modes=None,
    samples: int = 8,
    placement: str = "production",
    background: str = "production",
    seed: int = SEED,
):
    """Run (or reuse) a campaign; many figures share the same records."""
    from repro.core.biases import AD0, AD3

    modes = modes or (AD0, AD3)
    key = (
        app.name,
        system,
        n_nodes,
        tuple(m.name for m in modes),
        samples,
        placement,
        background,
        seed,
    )
    if key not in _campaign_cache:
        top = theta_top() if system == "theta" else cori_top()
        cfg = CampaignConfig(
            app=app,
            n_nodes=n_nodes,
            modes=tuple(modes),
            samples=samples,
            placement=placement,
            background=background,
            seed=seed,
        )
        if background == "production":
            bm, scenarios = background_pool(system, reserve=max(512, n_nodes))
            _campaign_cache[key] = run_campaign(
                top, cfg, background_model=bm, scenarios=scenarios
            )
        else:
            _campaign_cache[key] = run_campaign(top, cfg)
    return _campaign_cache[key]


def fmt_table(headers: list[str], rows: list[list[str]]) -> str:
    """Fixed-width text table."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    def line(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rows)
    return "\n".join(out)
