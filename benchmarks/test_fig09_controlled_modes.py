"""Fig. 9 — all applications at 256 nodes across all four routing modes.

Paper (controlled reservation, z-scored runtimes pooled per app): AD3
has the lowest mean and the tightest spread; AD2 is next; AD1 performs
slightly better than AD0 for this workload set.
"""

import numpy as np

from _harness import cached_campaign, fmt_table, n_samples, report
from repro.apps import PRODUCTION_APPS
from repro.core.analysis import normalized_by_mode
from repro.core.biases import AD0, AD1, AD2, AD3


def run_fig09():
    records = []
    for cls in PRODUCTION_APPS:
        records.extend(
            cached_campaign(
                cls(),
                samples=n_samples(6),
                modes=(AD0, AD1, AD2, AD3),
                seed=909,
            )
        )
    return records, normalized_by_mode(records)


def _fmt(z):
    rows = [
        [m, f"{np.mean(z[m]):+.3f}", f"{np.std(z[m]):.3f}", len(z[m])]
        for m in ("AD0", "AD1", "AD2", "AD3")
    ]
    return fmt_table(["mode", "z-mean", "z-std", "samples"], rows)


def test_fig09_mode_sweep(benchmark):
    records, z = benchmark.pedantic(run_fig09, rounds=1, iterations=1)
    report("fig09_controlled_modes", _fmt(z))

    means = {m: np.mean(z[m]) for m in z}
    # every biased mode beats the unbiased default for the mixed
    # workload — the paper's central Fig. 9 finding.
    # KNOWN DEVIATION (EXPERIMENTS.md): the paper ranks AD3 strictly
    # best; in our model the HACC members of the pool penalize AD3
    # enough that AD1/AD2 edge it out in the pooled z-means, while AD3
    # still clearly beats AD0.
    for biased in ("AD1", "AD2", "AD3"):
        assert means[biased] < means["AD0"], biased
    assert means["AD3"] < means["AD0"] - 0.05
