"""Table II — production runtimes (mean ± std) and AD3-over-AD0
improvements for all applications at 256 nodes.

Paper values (Theta unless noted):

==============  =============  =============  ======  =========
application     AD0 (s)        AD3 (s)        % time  % MPI
==============  =============  =============  ======  =========
MILC            542.6 ± 46.5   482.5 ± 35.0   +11.0   +16.7
CORI MILC       668.6 ± 130.2  589.8 ± 102.2  +11.7   n/a
MILCREORDER     509.6 ± 40.0   448.9 ± 33.3   +11.9   +18.8
Nek5000         467.1 ± 21.1   456.7 ± 16.0   +2.2    +5.5
HACC            442.9 ± 8.1    454.9 ± 10.5   -2.7    -34
Qbox            677.3 ± 54.5   644.7 ± 37.5   +4.8    +5.7
Rayleigh        653.1 ± 16.6   651.7 ± 12.8   +0.2    0
==============  =============  =============  ======  =========
"""

import numpy as np

from _harness import cached_campaign, fmt_table, n_samples, report
from repro.apps import MILC, PRODUCTION_APPS
from repro.core.analysis import improvement_table

PAPER_TIME_IMPROVEMENT = {
    "MILC": 11.0,
    "MILCREORDER": 11.9,
    "Nek5000": 2.2,
    "HACC": -2.7,
    "Qbox": 4.8,
    "Rayleigh": 0.2,
    "CORI MILC": 11.7,
}


def run_table2():
    records = []
    for cls in PRODUCTION_APPS:
        records.extend(cached_campaign(cls(), samples=n_samples(16)))
    rows = improvement_table(records)

    cori_recs = cached_campaign(MILC(), system="cori", samples=n_samples(8))
    cori_rows = improvement_table(cori_recs)
    cori_rows[0] = type(cori_rows[0])(
        app="CORI MILC",
        base=cori_rows[0].base,
        test=cori_rows[0].test,
        base_mode=cori_rows[0].base_mode,
        test_mode=cori_rows[0].test_mode,
        time_improvement=cori_rows[0].time_improvement,
        mpi_improvement=cori_rows[0].mpi_improvement,
        n_runs=cori_rows[0].n_runs,
    )
    return rows + cori_rows


def _fmt(rows):
    table = []
    for row in rows:
        table.append(
            [
                row.app,
                f"{row.base.mean:.1f} ± {row.base.std:.1f}",
                f"{row.test.mean:.1f} ± {row.test.std:.1f}",
                f"{row.time_improvement:+.1f}%",
                f"{row.mpi_improvement:+.1f}%",
                row.n_runs,
                f"paper {PAPER_TIME_IMPROVEMENT[row.app]:+.1f}%",
            ]
        )
    return fmt_table(
        ["app", "AD0 (s)", "AD3 (s)", "% time", "% MPI", "runs", "paper % time"],
        table,
    )


def test_table2_production_improvements(benchmark):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    report("table2_production", _fmt(rows))

    by_app = {r.app: r for r in rows}

    # sign structure: HACC regresses; the others improve or stay flat
    # (our Qbox lands around neutral rather than the paper's +4.8%)
    assert by_app["HACC"].time_improvement < 0
    for app in ("MILC", "MILCREORDER", "Nek5000", "Rayleigh", "CORI MILC"):
        assert by_app[app].time_improvement > -1.0, app
    assert by_app["Qbox"].time_improvement > -5.0

    # MILC's headline improvement lands near the paper's 11%
    assert 4.0 < by_app["MILC"].time_improvement < 20.0
    # the MPI-time improvement exceeds the total-time improvement
    assert by_app["MILC"].mpi_improvement > by_app["MILC"].time_improvement * 0.8

    # ordering: MILC variants improve most, Rayleigh least among winners
    assert by_app["MILC"].time_improvement > by_app["Nek5000"].time_improvement
    assert by_app["MILC"].time_improvement > by_app["Rayleigh"].time_improvement

    # absolute runtimes within ~25% of the paper's means
    paper_means = {
        "MILC": 542.6,
        "MILCREORDER": 509.6,
        "Nek5000": 467.1,
        "HACC": 442.9,
        "Qbox": 677.3,
        "Rayleigh": 653.1,
    }
    for app, mean in paper_means.items():
        assert abs(by_app[app].base.mean - mean) / mean < 0.30, app
