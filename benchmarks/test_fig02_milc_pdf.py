"""Fig. 2 — MILC and MILCREORDER runtime PDFs, AD0 vs AD3, 256 nodes.

Paper: MILC mean drops 542.6 -> 482.5 s (11%) under AD3, and both the
95th-percentile tail and the spread shrink.  MILCREORDER shows the same
shape at lower absolute runtimes.
"""

import numpy as np

from _harness import cached_campaign, fmt_table, n_samples, report
from repro.apps import MILC, MILCReorder
from repro.core.experiment import runtimes_by_mode, stats_by_mode
from repro.core.metrics import density
from repro.core.reporting import density_plot


def run_fig02():
    out = {}
    for cls in (MILC, MILCReorder):
        recs = cached_campaign(cls(), samples=n_samples(16))
        out[cls.name] = (stats_by_mode(recs), runtimes_by_mode(recs))
    return out


def _fmt(out):
    rows = []
    paper = {"MILC": (542.6, 482.5), "MILCREORDER": (509.6, 448.9)}
    for app, (st, rts) in out.items():
        p0, p3 = paper[app]
        rows.append(
            [
                app,
                f"{st['AD0'].mean:.1f} ± {st['AD0'].std:.1f}",
                f"{st['AD3'].mean:.1f} ± {st['AD3'].std:.1f}",
                f"{st['AD0'].p95:.0f} / {st['AD3'].p95:.0f}",
                f"{100 * (st['AD0'].mean - st['AD3'].mean) / st['AD0'].mean:+.1f}%",
                f"({p0:.0f} -> {p3:.0f}, +{100 * (p0 - p3) / p0:.1f}%)",
            ]
        )
    text = fmt_table(
        ["app", "AD0 mean±std (s)", "AD3 mean±std (s)", "p95 AD0/AD3", "improvement", "paper"],
        rows,
    )
    for app, (st, rts) in out.items():
        text += f"\n\n{app} runtime PDFs (Fig. 2 panel):\n"
        text += density_plot(rts, width=64, height=9, xlabel="runtime (s)")
    return text


def test_fig02_milc_runtime_pdfs(benchmark):
    out = benchmark.pedantic(run_fig02, rounds=1, iterations=1)
    report("fig02_milc_pdf", _fmt(out))

    for app, (st, rts) in out.items():
        # AD3 faster on average and with a shorter tail
        assert st["AD3"].mean < st["AD0"].mean, app
        assert st["AD3"].p95 < st["AD0"].p95 * 1.05, app
        # the PDFs are well-defined (the figure's curves)
        for mode, vals in rts.items():
            x, d = density(vals)
            assert d.max() > 0
