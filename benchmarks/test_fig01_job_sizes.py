"""Fig. 1 — CCDF of Theta core-hours by job size.

Paper: "approximately 40% of all core-hours on Theta are from jobs
allocated with between 128 and 512 nodes"; the CCDF starts at 1.0 for
128-node jobs and decays towards the full-machine sizes.
"""

import numpy as np

from _harness import fmt_table, n_samples, report, theta_top
from repro.scheduler.workload import WorkloadModel
from repro.util import derive_rng


def run_fig01():
    top = theta_top()
    wm = WorkloadModel(top)
    log = wm.generate_log(n_samples(4000), derive_rng(1, "fig01"))
    sizes, ccdf = log.corehours_ccdf()
    share = log.core_hour_fraction_between(128, 512)
    rows = [
        [int(s), f"{c:.3f}"]
        for s, c in zip(sizes, ccdf)
        if s in (128, 256, 384, 512, 1024, 2048, 4096) or c == ccdf[-1]
    ]
    text = fmt_table(["nodes", "corehours CCDF"], rows)
    text += f"\n\ncore-hour share of 128-512 node jobs: {share:.1%} (paper: ~40%)"
    return log, share, text


def test_fig01_job_size_distribution(benchmark):
    log, share, text = benchmark.pedantic(run_fig01, rounds=1, iterations=1)
    report("fig01_job_sizes", text)

    sizes, ccdf = log.corehours_ccdf()
    # CCDF starts at 1 and decreases
    assert abs(ccdf[0] - 1.0) < 1e-9
    assert (np.diff(ccdf) <= 1e-12).all()
    # the paper's headline share
    assert 0.30 <= share <= 0.55
    # jobs span the full allocatable range
    assert sizes.min() == 128
    assert sizes.max() >= 2048
