"""Ablation — do the paper's insights transfer to a Slingshot dragonfly?

Section II-A: "we expect that many of the insights provided by this
paper will be applicable to future dragonfly systems ... because on any
dragonfly system applications will have a preference for minimal or
non-minimal routes, due to the communication patterns inherent to the
application."  Rerun the MILC (latency-bound) vs HACC (bisection-bound)
comparison on a Slingshot-generation system.
"""

import numpy as np

from _harness import fmt_table, n_samples, report
from repro.apps import HACC, MILC
from repro.core.experiment import CampaignConfig, run_campaign, stats_by_mode
from repro.scheduler.background import BackgroundModel
from repro.topology.systems import slingshot
from repro.util import derive_rng


def run_ablation():
    top = slingshot()
    bm = BackgroundModel(top)
    scenarios = bm.build_pool(
        4, derive_rng(9, "slingshot-pool"), reserve_nodes=512
    )
    out = {}
    for cls in (MILC, HACC):
        cfg = CampaignConfig(app=cls(), samples=n_samples(6), seed=990)
        recs = run_campaign(top, cfg, background_model=bm, scenarios=scenarios)
        st = stats_by_mode(recs)
        out[cls.name] = 100 * (st["AD0"].mean - st["AD3"].mean) / st["AD0"].mean
    return top, out


def _fmt(top, out):
    rows = [[app, f"{imp:+.1f}%"] for app, imp in out.items()]
    return (
        f"{top.describe()}\n\n"
        + fmt_table(["app", "AD3 improvement over AD0"], rows)
    )


def test_ablation_slingshot_transfer(benchmark):
    top, out = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report("ablation_slingshot", _fmt(top, out))

    # the per-application preferences transfer to the new topology:
    # latency-bound codes still want minimal bias...
    assert out["MILC"] > 0
    # ...and bisection-bound codes still do not
    assert out["HACC"] < out["MILC"]
