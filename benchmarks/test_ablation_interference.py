"""Ablation — the job-interference ("bully") matrix under each default.

Section II-C: medium jobs are the most exposed to other jobs' traffic,
and the interference depends on the aggressor's communication pattern
and the routing in effect.  Measure MILC's slowdown next to a single
512-node aggressor of each archetype, under the AD0 and AD3 defaults.
"""

import numpy as np

from _harness import report, theta_top
from repro.apps import MILC
from repro.core.biases import AD0, AD3
from repro.core.interference import format_matrix, interference_matrix


def run_ablation():
    top = theta_top()
    return interference_matrix(top, MILC(), modes=(AD0, AD3), seed=77)


def test_ablation_interference_matrix(benchmark):
    entries = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    text = "victim slowdown (disturbed/baseline) per aggressor archetype:\n"
    text += format_matrix(entries)
    by = {(e.aggressor, e.mode): e for e in entries}
    text += (
        "\n\nabsolute disturbed runtimes: "
        + "  ".join(
            f"{a}/{m}={by[(a, m)].disturbed:.0f}s"
            for a in ("alltoall", "bisection")
            for m in ("AD0", "AD3")
        )
    )
    report("ablation_interference", text)

    # global-traffic aggressors hurt most; I/O incast barely registers
    for mode in ("AD0", "AD3"):
        assert by[("bisection", mode)].slowdown > by[("io_incast", mode)].slowdown

    # the matrix is well-formed: every cell a finite slowdown >= ~1
    for e in entries:
        assert np.isfinite(e.slowdown) and e.slowdown >= 0.995
