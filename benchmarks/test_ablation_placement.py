"""Ablation — placement interaction with routing mode.

Paper: "the benefits of minimal bias routing were observed for both
compact and scattered process placement" — the mode *ranking* is
placement-independent even though absolute runtimes differ.
"""

import numpy as np

from _harness import cached_campaign, fmt_table, n_samples, report
from repro.apps import MILC
from repro.core.experiment import stats_by_mode


def run_ablation():
    out = {}
    for placement in ("compact", "dispersed", "production"):
        recs = cached_campaign(
            MILC(), samples=n_samples(8), placement=placement, seed=700
        )
        out[placement] = stats_by_mode(recs)
    return out


def _fmt(out):
    rows = []
    for placement, st in out.items():
        imp = 100 * (st["AD0"].mean - st["AD3"].mean) / st["AD0"].mean
        rows.append(
            [
                placement,
                f"{st['AD0'].mean:.0f}",
                f"{st['AD3'].mean:.0f}",
                f"{imp:+.1f}%",
            ]
        )
    return fmt_table(["placement", "AD0 mean (s)", "AD3 mean (s)", "AD3 improvement"], rows)


def test_ablation_placement_independence(benchmark):
    out = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report("ablation_placement", _fmt(out))

    # the ranking (AD3 <= AD0) holds for every placement policy
    for placement, st in out.items():
        assert st["AD3"].mean <= st["AD0"].mean * 1.03, placement
