"""Fig. 5 — MILC runtime decomposition (Compute + top MPI ops), per run.

Paper: one stacked bar per run; under AD3 the MPI components
(MPI_Allreduce, MPI_Wait, MPI_Isend) shrink because the latency-bound
operations benefit from minimal routes.
"""

import numpy as np

from _harness import cached_campaign, fmt_table, n_samples, report
from repro.apps import MILC
from repro.core.analysis import breakdown_rows


def run_fig05():
    recs = cached_campaign(MILC(), samples=n_samples(16))
    return recs, breakdown_rows(recs)


def _fmt(bd):
    rows = []
    for mode in ("AD0", "AD3"):
        for i, stack in enumerate(bd[mode][:6]):
            rows.append(
                [mode, i]
                + [f"{stack[k]:.0f}" for k in ("Compute", "MPI_Allreduce", "MPI_Wait", "MPI_Isend", "Other_MPI")]
            )
    return fmt_table(
        ["mode", "run", "Compute", "MPI_Allreduce", "MPI_Wait", "MPI_Isend", "Other_MPI"],
        rows,
    )


def test_fig05_milc_breakdown(benchmark):
    recs, bd = benchmark.pedantic(run_fig05, rounds=1, iterations=1)
    report("fig05_milc_breakdown", _fmt(bd))

    # the decomposition uses exactly the paper's components
    for stack in bd["AD0"]:
        assert set(stack) == {
            "Compute",
            "MPI_Allreduce",
            "MPI_Wait",
            "MPI_Isend",
            "Other_MPI",
        }

    def mean_of(mode, key):
        return np.mean([s[key] for s in bd[mode]])

    # compute time is routing-invariant; the MPI ops shrink under AD3
    assert mean_of("AD3", "Compute") == pytest.approx(mean_of("AD0", "Compute"), rel=0.05)
    assert mean_of("AD3", "MPI_Allreduce") < mean_of("AD0", "MPI_Allreduce")
    total0 = np.mean([sum(s.values()) for s in bd["AD0"]])
    total3 = np.mean([sum(s.values()) for s in bd["AD3"]])
    assert total3 < total0


import pytest  # noqa: E402  (used in the assertion above)
