"""Perf-regression gate over the engine hot-path kernels.

Times the three engine kernels the hot-path overhaul targets — packet-sim
stepping, the 4k-flow fluid solve, and a full MILC run — and checks them
two ways:

* **Regression vs the committed baseline** — each kernel must stay
  within ``REPRO_PERF_GATE_SLACK`` (default 2x) of the absolute seconds
  recorded in ``benchmarks/results/engine_baseline.json``.  Absolute
  times are box-dependent, so the slack is generous; the gate exists to
  catch order-of-magnitude regressions (an accidentally reintroduced
  quadratic path), not 10% noise.
* **Speedup vs the frozen seed** — the pre-overhaul engines are kept
  verbatim in ``tests/_reference_fluid.py`` / ``_reference_packet_sim.py``
  and timed *in the same process on the same box*, so the measured
  speedup is box-independent.  It must not fall below the per-kernel
  ``min_speedup`` floor locked into the baseline file.

The measured numbers are written to
``benchmarks/results/engine_perf_current.json`` (uploaded as a CI
artifact by the ``perf-smoke`` job) so the trajectory is inspectable
even when the gate passes.  Re-baselining policy: docs/PERFORMANCE.md.
"""

import json
import os
import sys
import time
import warnings
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT))  # for the frozen tests._reference_* engines

from repro.apps import MILC  # noqa: E402
from repro.core.biases import AD0  # noqa: E402
from repro.core.experiment import run_app_once  # noqa: E402
from repro.mpi.env import RoutingEnv  # noqa: E402
from repro.network.fluid import FlowSet, solve_fluid  # noqa: E402
from repro.network.packet_sim import InjectionSpec, PacketSimulator  # noqa: E402
from repro.topology.pathcache import clear_path_cache  # noqa: E402
from repro.topology.systems import theta, toy  # noqa: E402
from repro.util import derive_rng  # noqa: E402

from tests import _reference_fluid as ref_fluid  # noqa: E402
from tests import _reference_packet_sim as ref_pkt  # noqa: E402

BASELINE_PATH = Path(__file__).parent / "results" / "engine_baseline.json"
CURRENT_PATH = Path(__file__).parent / "results" / "engine_perf_current.json"


def _time(fn, reps, warmup=2):
    for _ in range(warmup):
        fn()
    t0 = time.perf_counter()
    for _ in range(reps):
        fn()
    return (time.perf_counter() - t0) / reps


def _packet_round(sim_cls):
    top = toy()

    def run():
        sim = sim_cls(top, rng=np.random.default_rng(3))
        for s in range(16):
            sim.add_message(InjectionSpec(src=s, dst=16 + s, nbytes=8192, mode=AD0))
        sim.run()

    return run


def _fluid_round(solver, flowset_cls, top):
    rng = np.random.default_rng(0)
    n = 4096
    src = rng.integers(0, top.n_nodes, n)
    dst = (src + 1 + rng.integers(0, top.n_nodes - 1, n)) % top.n_nodes
    fl = flowset_cls(src, dst, np.full(n, 1e5), np.zeros(n, dtype=np.int64))

    def run():
        solver(top, fl, [AD0], rng=np.random.default_rng(2))

    return run


def test_perf_gate():
    warnings.simplefilter("ignore")
    baseline = json.loads(BASELINE_PATH.read_text())["kernels"]
    top = theta()

    measured = {}

    # packet-sim stepping: optimized vs frozen seed, same box, same run
    clear_path_cache()
    t_new = _time(_packet_round(PacketSimulator), reps=10)
    t_seed = _time(_packet_round(ref_pkt.PacketSimulator), reps=10)
    measured["packet_sim_steps"] = {
        "optimized_seconds": t_new,
        "seed_seconds": t_seed,
        "speedup": t_seed / t_new,
    }

    # 4k-flow fluid solve (warm path cache, as the microbenchmark runs)
    clear_path_cache()
    t_new = _time(_fluid_round(solve_fluid, FlowSet, top), reps=5)
    clear_path_cache()
    t_seed = _time(_fluid_round(ref_fluid.solve_fluid, ref_fluid.FlowSet, top), reps=5)
    measured["fluid_solve_4k_flows"] = {
        "optimized_seconds": t_new,
        "seed_seconds": t_seed,
        "speedup": t_seed / t_new,
    }

    # full MILC run (end-to-end sanity; regression-gated only)
    def milc():
        run_app_once(
            top, MILC(), np.arange(256), RoutingEnv(),
            rng=derive_rng(4, "perf"), collect_counters=False,
        )

    measured["full_milc_run"] = {"optimized_seconds": _time(milc, reps=3)}

    slack = float(os.environ.get("REPRO_PERF_GATE_SLACK", "2.0"))
    report = {"slack": slack, "kernels": measured, "failures": []}
    for name, m in measured.items():
        base = baseline[name]
        ceiling = base["optimized_seconds"] * slack
        if m["optimized_seconds"] > ceiling:
            report["failures"].append(
                f"{name}: {m['optimized_seconds']:.3f}s exceeds "
                f"{slack:g}x baseline ({base['optimized_seconds']:.3f}s)"
            )
        floor = base.get("min_speedup")
        if floor is not None and m["speedup"] < floor:
            report["failures"].append(
                f"{name}: speedup vs seed {m['speedup']:.2f}x fell below "
                f"locked floor {floor:g}x"
            )

    CURRENT_PATH.parent.mkdir(exist_ok=True)
    CURRENT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    for name, m in measured.items():
        spd = f"  {m['speedup']:.2f}x vs seed" if "speedup" in m else ""
        print(f"{name}: {m['optimized_seconds'] * 1e3:.1f} ms{spd}")
    assert not report["failures"], report["failures"]


def test_telemetry_overhead_gate():
    """Cadence sampling must cost <5% on the packet-sim kernel.

    The series hooks live inside the engine step loop guarded by
    ``rec is not None`` / one integer compare, so enabling a realistic
    sampling cadence (one window every ~200 steps) must not move the
    kernel's wall time.  Min-of-reps is used on both sides to shed
    scheduler noise; the slack is overridable for pathological CI boxes
    via ``REPRO_TELEMETRY_OVERHEAD_SLACK``.
    """
    from repro.telemetry import SeriesConfig, Telemetry

    top = toy()

    def round_with(telemetry):
        sim = PacketSimulator(top, rng=np.random.default_rng(3), telemetry=telemetry)
        for s in range(16):
            sim.add_message(InjectionSpec(src=s, dst=16 + s, nbytes=8192, mode=AD0))
        sim.run()
        return sim

    step_time = PacketSimulator(top, rng=np.random.default_rng(3)).config.step_time
    sampled_tel = Telemetry(series=SeriesConfig(cadence=200 * step_time))

    def best_of(fn, reps=5):
        times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    round_with(None)  # warm path caches and JIT-able numpy internals
    t_off = best_of(lambda: round_with(None))
    t_on = best_of(lambda: round_with(sampled_tel))

    # correctness side of the gate: sampling actually happened and the
    # windows reconcile with the end-of-run aggregate
    sim = round_with(Telemetry(series=SeriesConfig(cadence=200 * step_time)))
    series = sim.counter_series()
    assert series is not None and series.windows
    assert np.isclose(series.total_flits(), float(sim.flits.sum()))

    slack = float(os.environ.get("REPRO_TELEMETRY_OVERHEAD_SLACK", "1.05"))
    overhead = t_on / t_off
    print(f"telemetry overhead: off {t_off * 1e3:.1f} ms  on {t_on * 1e3:.1f} ms  "
          f"ratio {overhead:.3f} (gate {slack:g})")
    assert overhead < slack, (
        f"cadence sampling costs {100 * (overhead - 1):.1f}% on the packet-sim "
        f"kernel (gate: <{100 * (slack - 1):.0f}%)"
    )
