"""Fig. 10 — eight 512-node MILC jobs filling Theta: per-tile-class
counters under AD0 vs AD3.

Paper: a clear reduction in absolute stall counts (rank-1, rank-2,
processor tiles) under AD3, an overall reduction of total flits on all
three network classes (fewer packet transmissions with minimal paths),
and a lower aggregate stalls-to-flits ratio.
"""

import numpy as np

from _harness import fmt_table, report, theta_top
from repro.apps import MILC
from repro.core.biases import AD0, AD3
from repro.core.ensembles import EnsembleConfig, run_ensemble


def run_fig10():
    top = theta_top()
    out = {}
    for mode in (AD0, AD3):
        res = run_ensemble(
            top,
            EnsembleConfig(
                app=MILC(), n_jobs=8, n_nodes=512, mode=mode, placement="dispersed"
            ),
        )
        out[mode.name] = res
    return out


def _fmt(out):
    rows = []
    for cls in ("rank1", "rank2", "rank3", "proc_req"):
        s0 = out["AD0"].bank.snapshot()
        s3 = out["AD3"].bank.snapshot()
        rows.append(
            [
                cls,
                f"{s0.flits[cls].sum():.3e}",
                f"{s3.flits[cls].sum():.3e}",
                f"{s0.stalls[cls].sum():.3e}",
                f"{s3.stalls[cls].sum():.3e}",
            ]
        )
    s0 = out["AD0"].bank.snapshot()
    s3 = out["AD3"].bank.snapshot()
    footer = (
        f"\nnetwork stalls/flits ratio: AD0 {s0.network_ratio():.3f} "
        f"-> AD3 {s3.network_ratio():.3f}"
        f"\nmean job runtime: AD0 {out['AD0'].job_runtimes.mean():.0f} s "
        f"-> AD3 {out['AD3'].job_runtimes.mean():.0f} s"
    )
    return (
        fmt_table(
            ["tile class", "AD0 flits", "AD3 flits", "AD0 stalls", "AD3 stalls"], rows
        )
        + footer
    )


def test_fig10_milc_ensemble(benchmark):
    out = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    report("fig10_milc_ensemble_counters", _fmt(out))

    s0 = out["AD0"].bank.snapshot()
    s3 = out["AD3"].bank.snapshot()
    net = ("rank1", "rank2", "rank3")

    # fewer overall packet transmissions under minimal bias, per class
    for cls in net:
        assert s3.flits[cls].sum() < s0.flits[cls].sum(), cls

    # clear reduction in absolute stalls on the copper classes and the
    # processor tiles (the classes the paper's text calls out)
    assert s3.stalls["rank1"].sum() < s0.stalls["rank1"].sum()
    assert s3.stalls["rank2"].sum() < s0.stalls["rank2"].sum()
    assert s3.stalls["proc_req"].sum() < s0.stalls["proc_req"].sum()

    # under the heavy controlled load, AD3 jobs run no slower
    assert out["AD3"].job_runtimes.mean() <= out["AD0"].job_runtimes.mean() * 1.05

    # LDMS series cover the whole ensemble
    for mode in out:
        assert len(out[mode].ldms.samples) >= 2
