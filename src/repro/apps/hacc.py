"""HACC — cosmological N-body (the paper's bisection-bound exception).

Communication (Section IV-C, Table I): dominated by a **3D-FFT
pencil-transpose pattern over effectively random rank pairs**, using
asynchronous send/recv of **large (1.2 MB) messages** that stress the
global (rank-3) bisection — these show up as ``MPI_Wait``.  A light
neighbor-wise particle exchange and occasional 1 KB allreduces complete
the picture.  Only 22% of runtime is MPI at 256 nodes; paper AD0 mean
442.9 s.

HACC is the one application that *loses* under AD3 (-2.7%): forcing the
FFT's bisection traffic onto the few minimal rank-3 cables of each group
pair concentrates load (Fig. 12's localized rank-3 stall peaks and
backpressure flit inflation), while AD0's non-minimal paths spread it.
The model reproduces this through the fluid solver: the transpose flows
are large and rank-3-bound, so their completion time is set by bundle
bandwidth — minimal-only routing halves the usable path set.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application, grid_dims, random_pair_flows, stencil_flows
from repro.mpi.collectives import allreduce_flows
from repro.mpi.patterns import CollectiveSpec, P2PSpec, Phase, TrafficOp
from repro.util import KiB, MiB


class HACC(Application):
    """3D-FFT transpose (bisection-bound) plus particle exchange."""

    name = "HACC"
    scaling = "strong"
    base_nodes = 256
    reference_runtime = 442.9
    reference_mpi_fraction = 0.22

    #: FFT transposes per outer iteration (forward + inverse pencils)
    transposes_per_iter = 3
    #: random partners per rank per transpose
    fft_partners = 12
    #: message size per partner (the paper's 1.2 MB sends)
    fft_msg_bytes = 1.2 * MiB
    #: per-neighbor particle-exchange bytes per iteration
    particle_msg_bytes = 192 * KiB
    #: 1 KB allreduces per iteration
    allreduces_per_iter = 8
    #: compute seconds per outer iteration at the reference size
    compute_per_iter = 0.060

    def n_iterations(self, P: int) -> int:
        return 5600

    def phases(self, nodes: np.ndarray, rng: np.random.Generator) -> list[Phase]:
        nodes = np.asarray(nodes, dtype=np.int64)
        P = nodes.size
        s = self.scale_factor(P)

        fft = random_pair_flows(
            nodes,
            self.fft_partners,
            self.fft_msg_bytes * s * self.transposes_per_iter,
            rng,
        )
        fft_spec = P2PSpec(
            flows=fft,
            # large async messages: latency fully hidden, Wait is pure
            # bandwidth time
            exposed_messages=0.0,
            wait_op="MPI_Wait",
            post_op="MPI_Isend",
            messages_per_rank=self.fft_partners * self.transposes_per_iter,
        )

        dims3 = grid_dims(P, 3)
        particles = stencil_flows(nodes, dims3, self.particle_msg_bytes * s)
        particle_spec = P2PSpec(
            flows=particles,
            exposed_messages=2.0,
            wait_op="MPI_Waitall",
            post_op="MPI_Isend",
            messages_per_rank=2 * sum(1 for d in dims3 if d > 1),
        )

        ar_flows, ar_rounds = allreduce_flows(nodes, 1 * KiB)
        allreduce = CollectiveSpec(
            op="MPI_Allreduce",
            flows=ar_flows.scaled(self.allreduces_per_iter),
            rounds=ar_rounds * self.allreduces_per_iter,
            traffic_op=TrafficOp.P2P,
            calls=self.allreduces_per_iter,
            msg_bytes=1 * KiB,
        )

        return [
            Phase(
                name="fft_transpose",
                compute_time=self.compute_per_iter * s,
                p2p=fft_spec,
            ),
            Phase(name="particle_exchange", compute_time=0.0, p2p=particle_spec),
            Phase(
                name="global_sums",
                compute_time=0.0,
                collectives=[allreduce],
                spread_time=self.compute_per_iter * s,
            ),
        ]
