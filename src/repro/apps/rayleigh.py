"""Rayleigh — pseudo-spectral convection (dynamo simulation).

Communication (Table I): essentially **no point-to-point**; dominated by
**heavy ``MPI_Alltoallv`` (23 MB aggregate per call)** from the global
spectral transposes, with some ``MPI_Send`` staging and ``MPI_Barrier``.
28% of runtime in MPI at 256 nodes; paper AD0 mean 653.1 s.  The paper
measures Rayleigh as routing-insensitive (0.2% difference): its traffic
is a *uniform* bisection-bound alltoall, for which minimal routing across
the (uniformly loaded) group-pair bundles and non-minimal spreading give
the same saturated throughput.

Model: one global alltoallv per transpose with per-pair bytes sized so
the aggregate per-call buffer is ``a2a_total_bytes``; a light send
pipeline and per-iteration barriers.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application
from repro.mpi.collectives import alltoallv_flows, barrier_flows
from repro.mpi.patterns import CollectiveSpec, P2PSpec, Phase, TrafficOp
from repro.network.fluid import FlowSet
from repro.util import KiB, MiB


class Rayleigh(Application):
    """Global heavy alltoallv, barrier-synchronized."""

    name = "Rayleigh"
    scaling = "strong"
    base_nodes = 256
    reference_runtime = 653.1
    reference_mpi_fraction = 0.28

    #: aggregate per-rank buffer per alltoallv call (Table I's 23 MB)
    a2a_total_bytes = 23 * MiB
    #: transposes (alltoallv calls) per outer iteration
    a2a_calls_per_iter = 1
    #: staging sends per rank per iteration
    sends_per_iter = 2
    send_bytes = 256 * KiB
    #: barriers per outer iteration
    barriers_per_iter = 4
    #: compute seconds per outer iteration at the reference size
    compute_per_iter = 0.055

    def n_iterations(self, P: int) -> int:
        return 8500

    def phases(self, nodes: np.ndarray, rng: np.random.Generator) -> list[Phase]:
        nodes = np.asarray(nodes, dtype=np.int64)
        P = nodes.size
        s = self.scale_factor(P)

        per_pair = self.a2a_total_bytes * s / max(P - 1, 1)
        fl, rounds = alltoallv_flows(
            nodes, per_pair, imbalance=0.2, max_partners=64, rng=rng
        )
        a2a = CollectiveSpec(
            op="MPI_Alltoallv",
            flows=fl.scaled(self.a2a_calls_per_iter),
            rounds=rounds * self.a2a_calls_per_iter,
            traffic_op=TrafficOp.A2A,
            calls=self.a2a_calls_per_iter,
            msg_bytes=self.a2a_total_bytes * s,
            sync="pairwise",
        )

        bfl, brounds = barrier_flows(nodes)
        barrier = CollectiveSpec(
            op="MPI_Barrier",
            flows=bfl.scaled(self.barriers_per_iter),
            rounds=brounds * self.barriers_per_iter,
            traffic_op=TrafficOp.P2P,
            calls=self.barriers_per_iter,
        )

        # staging pipeline: blocking sends up the radial decomposition
        ring = FlowSet(
            nodes,
            np.roll(nodes, -1),
            np.full(P, self.send_bytes * s * self.sends_per_iter),
            np.zeros(P, dtype=np.int64),
        )
        p2p = P2PSpec(
            flows=ring,
            exposed_messages=float(self.sends_per_iter),
            wait_op="MPI_Send",
            post_op="MPI_Send",
            messages_per_rank=float(self.sends_per_iter),
        )

        # barriers run between transposes against a drained network, not
        # inside the alltoallv burst
        return [
            Phase(
                name="spectral_transpose",
                compute_time=self.compute_per_iter * s,
                p2p=p2p,
                collectives=[a2a],
            ),
            Phase(
                name="sync",
                compute_time=0.0,
                collectives=[barrier],
                spread_time=self.compute_per_iter * s,
            ),
        ]
