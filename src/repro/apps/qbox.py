"""Qbox — first-principles molecular dynamics (plane-wave DFT).

Communication (Table I): **medium alltoallv (128 KB)** on column
sub-communicators from the plane-wave transposes, plus **medium 50 KB
point-to-point** with blocking receives from the dense-linear-algebra
(ScaLAPACK-style) layer.  Top interfaces: ``MPI_Alltoallv``,
``MPI_Recv``, ``MPI_Wait``.  66% of runtime in MPI at 256 nodes — the
most communication-bound app in the set; paper AD0 mean 677.3 s, with a
4.8% AD3 improvement.

Model: ranks form a near-square process grid; each iteration runs
alltoallv over the grid columns (A2A traffic class, so it follows the
``MPICH_GNI_A2A_ROUTING_MODE`` setting) and a blocking-recv halo over
grid rows.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application, grid_dims
from repro.mpi.collectives import alltoallv_flows
from repro.mpi.patterns import CollectiveSpec, P2PSpec, Phase, TrafficOp
from repro.network.fluid import FlowSet
from repro.util import KiB


class Qbox(Application):
    """Column alltoallv + row blocking point-to-point."""

    name = "Qbox"
    scaling = "strong"
    base_nodes = 256
    reference_runtime = 677.3
    reference_mpi_fraction = 0.66

    #: alltoallv calls per outer iteration (wavefunction transposes)
    a2a_calls_per_iter = 40
    #: per-pair bytes within a column alltoallv
    a2a_pair_bytes = 128 * KiB
    #: per-message bytes of the row exchange
    row_msg_bytes = 50 * KiB
    #: small blocking pipeline messages per rank per iteration
    pipe_msgs_per_iter = 800
    #: row-exchange messages per rank per iteration (blocking recv)
    row_msgs_per_iter = 60
    #: compute seconds per outer iteration at the reference size
    compute_per_iter = 0.029

    def n_iterations(self, P: int) -> int:
        return 7900

    def phases(self, nodes: np.ndarray, rng: np.random.Generator) -> list[Phase]:
        nodes = np.asarray(nodes, dtype=np.int64)
        P = nodes.size
        s = self.scale_factor(P)
        rows, cols = grid_dims(P, 2)

        # column alltoallv: ranks r, r+cols, r+2*cols, ... share a column.
        # Per-pair bytes are sized so each rank's aggregate transpose
        # volume strong-scales (the wavefunction data is fixed): at the
        # 256-node reference the column holds 16 ranks and pairs carry
        # the Table-I 128 KB.
        ref_partners = int(np.sqrt(self.base_nodes)) - 1
        col_size = P // cols
        pair_bytes = self.a2a_pair_bytes * s * ref_partners / max(col_size - 1, 1)
        col_parts: list[FlowSet] = []
        rounds_total = 0.0
        for c in range(cols):
            members = nodes[np.arange(c, P, cols)]
            if members.size < 2:
                continue
            fl, rounds = alltoallv_flows(
                members,
                pair_bytes,
                imbalance=0.3,
                max_partners=16,
                rng=rng,
            )
            col_parts.append(fl)
            rounds_total = rounds  # same size per column; rounds not summed
        a2a = CollectiveSpec(
            op="MPI_Alltoallv",
            flows=FlowSet.concat(col_parts).scaled(self.a2a_calls_per_iter),
            rounds=rounds_total * self.a2a_calls_per_iter,
            traffic_op=TrafficOp.A2A,
            calls=self.a2a_calls_per_iter,
            msg_bytes=pair_bytes,
            sync="pairwise",
        )

        # row halo with blocking receives
        ranks = np.arange(P)
        right = (ranks // cols) * cols + (ranks + 1) % cols
        keep = right != ranks
        row = FlowSet(
            nodes[ranks[keep]],
            nodes[right[keep]],
            np.full(int(keep.sum()), self.row_msg_bytes * s * self.row_msgs_per_iter),
            np.zeros(int(keep.sum()), dtype=np.int64),
        )
        p2p = P2PSpec(
            flows=row,
            exposed_messages=float(self.row_msgs_per_iter),  # blocking
            wait_op="MPI_Recv",
            post_op="MPI_Send",
            messages_per_rank=float(self.row_msgs_per_iter),
            overlap_fraction=0.4,  # ScaLAPACK lookahead hides part of it
        )

        # dense-linear-algebra pipeline: many small blocking receives
        # interleaved with the DGEMMs (latency-exposed, mode-sensitive)
        down = (ranks + cols) % P
        keep2 = down != ranks
        pipe = FlowSet(
            nodes[ranks[keep2]],
            nodes[down[keep2]],
            np.full(int(keep2.sum()), 2 * KiB * self.pipe_msgs_per_iter),
            np.zeros(int(keep2.sum()), dtype=np.int64),
        )
        pipe_spec = P2PSpec(
            flows=pipe,
            exposed_messages=float(self.pipe_msgs_per_iter),
            wait_op="MPI_Recv",
            post_op="MPI_Send",
            messages_per_rank=float(self.pipe_msgs_per_iter),
            latency_stat="p90",  # serialized pipeline: stragglers chain
        )

        return [
            Phase(
                name="wf_transpose",
                compute_time=self.compute_per_iter * s,
                p2p=p2p,
                collectives=[a2a],
            ),
            Phase(
                name="dgemm_pipeline",
                compute_time=0.0,
                p2p=pipe_spec,
                spread_time=self.compute_per_iter * s,
            ),
        ]
