"""Application workload models.

The five production applications of the paper (plus the reordered MILC
variant and synthetic microbenchmark apps), reduced — as the paper itself
does in Table I — to their communication characteristics: per-iteration
point-to-point flows, collective operations, compute time, and scaling
mode.  Each model emits :class:`~repro.mpi.patterns.Phase` objects that
the experiment harness resolves with the fluid engine.

================  =====================  ==========================  ======
application       point-to-point         collectives                 % MPI
================  =====================  ==========================  ======
MILC              heavy (KB, 4D stencil) frequent 8 B allreduce       52
MILC REORDER      heavy (KB, reordered)  frequent 8 B allreduce       50
Nek5000           medium (KB)            light (16 B)                 48
HACC              light (>1 MB FFT)      light allreduce (1 KB)       22
Qbox              medium (50 KB)         medium alltoallv (128 KB)    66
Rayleigh          none                   heavy alltoallv (23 MB)      28
================  =====================  ==========================  ======
"""

from repro.apps.base import Application, grid_dims, stencil_flows, rank_grid_coords
from repro.apps.milc import MILC, MILCReorder
from repro.apps.nek5000 import Nek5000
from repro.apps.hacc import HACC
from repro.apps.qbox import Qbox
from repro.apps.rayleigh import Rayleigh
from repro.apps.synthetic import (
    LatencyBound,
    BisectionBound,
    InjectionBound,
    ComputeBound,
)

#: the paper's production application set, in Table-II order
PRODUCTION_APPS = (MILC, MILCReorder, Nek5000, HACC, Qbox, Rayleigh)


def app_by_name(name: str) -> type[Application]:
    """Look up an application class by (case-insensitive) name."""
    table = {cls.name.lower(): cls for cls in PRODUCTION_APPS}
    table.update(
        {
            cls.name.lower(): cls
            for cls in (LatencyBound, BisectionBound, InjectionBound, ComputeBound)
        }
    )
    key = name.lower().replace(" ", "")
    if key not in table:
        raise KeyError(f"unknown application {name!r}; have {sorted(table)}")
    return table[key]


__all__ = [
    "Application",
    "grid_dims",
    "stencil_flows",
    "rank_grid_coords",
    "MILC",
    "MILCReorder",
    "Nek5000",
    "HACC",
    "Qbox",
    "Rayleigh",
    "LatencyBound",
    "BisectionBound",
    "InjectionBound",
    "ComputeBound",
    "PRODUCTION_APPS",
    "app_by_name",
]
