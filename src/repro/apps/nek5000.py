"""Nek5000 — spectral-element CFD.

Communication (Table I): **medium KB-range point-to-point** from the
gather-scatter (``gs``) nearest-neighbor exchange on the unstructured
spectral-element mesh, plus **light 16-byte collectives** from the
iterative solvers.  Top interfaces: ``MPI_Allreduce``, ``MPI_Waitall``,
``MPI_Recv``.  48% of runtime in MPI at 256 nodes; strong scaling; paper
AD0 mean 467.1 s.  The paper measures a modest 2.2% AD3 improvement —
the exchange is mostly local and the collectives light.

Model: a locality-weighted random graph of degree ``gs_degree`` stands in
for the mesh adjacency (spectral-element meshes are partitioned for
locality, so most neighbors are nearby ranks); pressure/velocity solves
contribute small allreduces and a blocking-receive pipeline stage.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application
from repro.mpi.collectives import allreduce_flows
from repro.mpi.patterns import CollectiveSpec, P2PSpec, Phase, TrafficOp
from repro.network.fluid import FlowSet
from repro.util import KiB


class Nek5000(Application):
    """Gather-scatter CFD with light small collectives."""

    name = "Nek5000"
    scaling = "strong"
    base_nodes = 256
    reference_runtime = 467.1
    reference_mpi_fraction = 0.48

    #: mesh-graph neighbors per rank
    gs_degree = 12
    #: rank-distance scale of the locality-weighted neighbor sampling
    locality_scale = 8.0
    #: inner solver iterations bundled per outer iteration
    solves_per_iter = 420
    #: per-neighbor bytes per solve iteration at the reference size
    gs_msg_bytes = 4 * KiB
    #: 16-byte allreduces per solve iteration
    allreduces_per_solve = 1.0
    #: fraction of exchange latencies exposed (gs waits on all neighbors)
    exposed_fraction = 0.25
    #: compute seconds per outer iteration at the reference size
    compute_per_iter = 0.038

    def n_iterations(self, P: int) -> int:
        return 7700

    def _mesh_flows(self, nodes: np.ndarray, nbytes: float, rng: np.random.Generator) -> FlowSet:
        """Locality-weighted degree-``gs_degree`` neighbor flows."""
        P = nodes.size
        k = min(self.gs_degree, P - 1)
        ranks = np.repeat(np.arange(P), k)
        # geometric-ish rank offsets: mostly close, occasionally far
        raw = rng.geometric(p=min(0.9, 1.0 / self.locality_scale), size=ranks.size)
        sign = rng.choice((-1, 1), size=ranks.size)
        partners = (ranks + sign * raw) % P
        clash = partners == ranks
        partners[clash] = (ranks[clash] + 1) % P
        return FlowSet(
            nodes[ranks],
            nodes[partners],
            np.full(ranks.size, float(nbytes)),
            np.zeros(ranks.size, dtype=np.int64),
        )

    def phases(self, nodes: np.ndarray, rng: np.random.Generator) -> list[Phase]:
        nodes = np.asarray(nodes, dtype=np.int64)
        P = nodes.size
        s = self.scale_factor(P)

        gs = self._mesh_flows(nodes, self.gs_msg_bytes * s * self.solves_per_iter, rng)
        msgs_per_rank = self.gs_degree * self.solves_per_iter
        p2p = P2PSpec(
            flows=gs,
            exposed_messages=self.exposed_fraction * msgs_per_rank,
            wait_op="MPI_Waitall",
            post_op="MPI_Irecv",
            messages_per_rank=msgs_per_rank,
            overlap_fraction=0.3,
        )

        ar_calls = self.allreduces_per_solve * self.solves_per_iter
        ar_flows, ar_rounds = allreduce_flows(nodes, 16.0)
        allreduce = CollectiveSpec(
            op="MPI_Allreduce",
            flows=ar_flows.scaled(ar_calls),
            rounds=ar_rounds * ar_calls,
            traffic_op=TrafficOp.P2P,
            calls=ar_calls,
            msg_bytes=16.0,
        )

        # a blocking-receive pipeline stage (coarse-grid solve gathers)
        ring = FlowSet(
            nodes,
            np.roll(nodes, -1),
            np.full(P, 2 * KiB * s * 20),
            np.zeros(P, dtype=np.int64),
        )
        pipeline = P2PSpec(
            flows=ring,
            exposed_messages=20.0,
            wait_op="MPI_Recv",
            post_op="MPI_Send",
            messages_per_rank=20.0,
        )

        # the small solver allreduces run between gs exchanges, against
        # background congestion rather than the exchange burst
        return [
            Phase(name="gs_exchange", compute_time=self.compute_per_iter * s, p2p=p2p),
            Phase(
                name="solver_allreduce",
                compute_time=0.0,
                collectives=[allreduce],
                spread_time=self.compute_per_iter * s,
            ),
            Phase(name="coarse_grid", compute_time=0.0, p2p=pipeline),
        ]
