"""Synthetic microbenchmark applications.

One app per network-boundness class of Section II-E, used for controlled
characterization, the advisor's unit tests, and the ablation benches:

* :class:`LatencyBound` — an allreduce storm of 8-byte messages:
  pure small-message latency; should prefer AD3 under load.
* :class:`BisectionBound` — large-message random-permutation traffic:
  pure global-bandwidth; should prefer AD0/non-minimal headroom.
* :class:`InjectionBound` — each rank streams to one fixed partner at
  NIC rate; the NIC is the bottleneck, so routing mode is irrelevant.
* :class:`ComputeBound` — negligible communication; routing-insensitive.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application, random_pair_flows
from repro.mpi.collectives import allreduce_flows
from repro.mpi.patterns import CollectiveSpec, P2PSpec, Phase
from repro.network.fluid import FlowSet
from repro.util import MiB


class LatencyBound(Application):
    """8-byte allreduce storm (latency-bound)."""

    name = "latencybound"
    scaling = "strong"
    reference_mpi_fraction = 0.9
    allreduces_per_iter = 400
    compute_per_iter = 0.002

    def n_iterations(self, P: int) -> int:
        return 1000

    def phases(self, nodes: np.ndarray, rng: np.random.Generator) -> list[Phase]:
        nodes = np.asarray(nodes, dtype=np.int64)
        fl, rounds = allreduce_flows(nodes, 8.0)
        coll = CollectiveSpec(
            op="MPI_Allreduce",
            flows=fl.scaled(self.allreduces_per_iter),
            rounds=rounds * self.allreduces_per_iter,
            calls=self.allreduces_per_iter,
        )
        return [
            Phase(
                name="allreduce_storm",
                compute_time=self.compute_per_iter * self.scale_factor(nodes.size),
                collectives=[coll],
            )
        ]


class BisectionBound(Application):
    """Large-message random-permutation streams (bisection-bound)."""

    name = "bisectionbound"
    scaling = "strong"
    reference_mpi_fraction = 0.8
    partners = 8
    msg_bytes = 4 * MiB
    compute_per_iter = 0.004

    def n_iterations(self, P: int) -> int:
        return 500

    def phases(self, nodes: np.ndarray, rng: np.random.Generator) -> list[Phase]:
        nodes = np.asarray(nodes, dtype=np.int64)
        fl = random_pair_flows(nodes, self.partners, self.msg_bytes * self.scale_factor(nodes.size), rng)
        p2p = P2PSpec(
            flows=fl,
            exposed_messages=0.0,
            wait_op="MPI_Wait",
            messages_per_rank=float(self.partners),
        )
        return [
            Phase(
                name="permutation_stream",
                compute_time=self.compute_per_iter * self.scale_factor(nodes.size),
                p2p=p2p,
            )
        ]


class InjectionBound(Application):
    """Fixed-partner NIC-rate streams (message-rate / injection-bound)."""

    name = "injectionbound"
    scaling = "strong"
    reference_mpi_fraction = 0.8
    msg_bytes = 8 * MiB
    compute_per_iter = 0.002

    def n_iterations(self, P: int) -> int:
        return 500

    def phases(self, nodes: np.ndarray, rng: np.random.Generator) -> list[Phase]:
        nodes = np.asarray(nodes, dtype=np.int64)
        P = nodes.size
        # pair adjacent ranks (typically the same or a neighboring
        # router): the NIC, not any network link, is the bottleneck, so
        # the routing mode cannot matter
        partner = np.arange(P) ^ 1
        partner = np.where(partner < P, partner, np.arange(P))
        keep = partner != np.arange(P)
        src = nodes[np.arange(P)[keep]]
        dst = nodes[partner[keep]]
        fl = FlowSet(
            src,
            dst,
            np.full(int(keep.sum()), self.msg_bytes * self.scale_factor(P)),
            np.zeros(int(keep.sum()), dtype=np.int64),
        )
        p2p = P2PSpec(flows=fl, exposed_messages=0.0, wait_op="MPI_Wait", messages_per_rank=1.0)
        return [
            Phase(
                name="nic_stream",
                compute_time=self.compute_per_iter * self.scale_factor(P),
                p2p=p2p,
            )
        ]


class ComputeBound(Application):
    """Almost no communication (routing-insensitive)."""

    name = "computebound"
    scaling = "strong"
    reference_mpi_fraction = 0.02
    compute_per_iter = 0.05

    def n_iterations(self, P: int) -> int:
        return 1000

    def phases(self, nodes: np.ndarray, rng: np.random.Generator) -> list[Phase]:
        nodes = np.asarray(nodes, dtype=np.int64)
        fl, rounds = allreduce_flows(nodes, 8.0)
        coll = CollectiveSpec(op="MPI_Allreduce", flows=fl, rounds=rounds, calls=1.0)
        return [
            Phase(
                name="compute",
                compute_time=self.compute_per_iter * self.scale_factor(nodes.size),
                collectives=[coll],
            )
        ]
