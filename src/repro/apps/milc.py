"""MILC — lattice QCD (su3_rmd-style), the paper's primary case study.

Communication (paper Section IV, Table I): a **4D stencil** with
overlapped ``MPI_Isend``/``MPI_Irecv`` neighbor exchange of KB-range
messages, punctuated by **frequent 8-byte ``MPI_Allreduce``** calls from
the CG solver — making the application latency-bound at the end of every
neighbor exchange.  Top MPI interfaces by time: ``MPI_Allreduce``,
``MPI_Wait``, ``MPI_Isend``.  52% of runtime in MPI at 256 nodes; strong
scaling; paper AD0 mean 542.6 s at 256 nodes on Theta.

``MILCReorder`` is the paper's MILCREORDER variant: the same code with a
topology-aware rank reordering that places grid-adjacent ranks on
adjacent nodes, shortening stencil paths (its top interface becomes
``MPI_Wait``; AD0 mean 509.6 s).

Model constants (at the 256-node reference):

* one outer iteration bundles ``cg_per_iter`` CG iterations,
* each CG iteration exchanges one ``stencil_msg_bytes`` message per 4D
  neighbor (8 of them) and performs two 8-byte allreduces,
* a fraction ``exposed_fraction`` of the per-message latencies is not
  hidden by the computation overlap.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import Application, grid_dims, stencil_flows
from repro.mpi.collectives import allreduce_flows
from repro.mpi.patterns import CollectiveSpec, P2PSpec, Phase, TrafficOp
from repro.util import KiB


class MILC(Application):
    """4D-stencil lattice QCD with frequent small allreduces."""

    name = "MILC"
    scaling = "strong"
    base_nodes = 256
    reference_runtime = 542.6
    reference_mpi_fraction = 0.52

    #: CG iterations bundled into one outer iteration
    cg_per_iter = 2400
    #: per-neighbor message size per CG iteration at the reference size
    stencil_msg_bytes = 48 * KiB
    #: allreduce calls per CG iteration (residual + alpha)
    allreduces_per_cg = 2
    #: fraction of stencil message latencies exposed (not overlapped)
    exposed_fraction = 0.35
    #: fraction of the exchange drain hidden behind CG compute
    overlap_fraction = 0.85
    #: compute seconds per outer iteration at the reference size
    compute_per_iter = 0.245
    #: whether ranks are topology-reordered (MILCREORDER)
    reorder = False

    def n_iterations(self, P: int) -> int:
        return 1150

    def rank_to_node(self, nodes: np.ndarray) -> np.ndarray:
        """Rank placement onto the allocated nodes.

        Plain MILC uses the scheduler's rank order; MILCREORDER's
        surface optimization enters through its reduced message volume.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if not self.reorder:
            return nodes
        # the reordered variant keeps the scheduler's (already contiguous)
        # order; its gain is the smaller per-node halo surface, which is
        # expressed through the reduced ``stencil_msg_bytes``
        return nodes

    def phases(self, nodes: np.ndarray, rng: np.random.Generator) -> list[Phase]:
        nodes = self.rank_to_node(nodes)
        P = nodes.size
        s = self.scale_factor(P)
        dims = grid_dims(P, 4)

        msg = self.stencil_msg_bytes * s
        stencil = stencil_flows(nodes, dims, msg * self.cg_per_iter)
        msgs_per_rank = 2 * sum(1 for d in dims if d > 1) * self.cg_per_iter
        p2p = P2PSpec(
            flows=stencil,
            exposed_messages=self.exposed_fraction * msgs_per_rank,
            wait_op="MPI_Wait",
            post_op="MPI_Isend",
            messages_per_rank=msgs_per_rank,
            overlap_fraction=self.overlap_fraction,
        )

        ar_calls = self.allreduces_per_cg * self.cg_per_iter
        ar_flows, ar_rounds = allreduce_flows(nodes, 8.0)
        allreduce = CollectiveSpec(
            op="MPI_Allreduce",
            flows=ar_flows.scaled(ar_calls),
            rounds=ar_rounds * ar_calls,
            traffic_op=TrafficOp.P2P,
            calls=ar_calls,
            msg_bytes=8.0,
        )

        # the paper: "at the end of each neighbor exchange the application
        # is latency bound by small message Allreduces" — the allreduces
        # run after the exchange drains, so they see background (not the
        # stencil burst) on their paths: separate phases.
        return [
            Phase(
                name="stencil_exchange",
                compute_time=self.compute_per_iter * s,
                p2p=p2p,
                # per-CG-iteration exchange bursts interleave with the
                # CG compute, so the sustained utilization that drives
                # the stall counters is measured over the full window
                spread_time=self.compute_per_iter * s,
            ),
            Phase(
                name="cg_allreduce",
                compute_time=0.0,
                collectives=[allreduce],
                spread_time=self.compute_per_iter * s,
            ),
        ]


class MILCReorder(MILC):
    """MILC with topology-aware rank reordering (paper's MILCREORDER).

    The reordered build packs 4D sub-blocks onto nodes so each node's
    halo surface (and with it the off-node message volume) shrinks, and
    batches the CG reductions; the remaining communication is relatively
    more exchange-wait than allreduce, which is why ``MPI_Wait`` tops its
    Table-I profile while the mean runtime drops to 509.6 s.
    """

    name = "MILCREORDER"
    reference_runtime = 509.6
    reference_mpi_fraction = 0.50
    reorder = True
    stencil_msg_bytes = int(40 * KiB)
    compute_per_iter = 0.24

    def n_iterations(self, P: int) -> int:
        return 1000
