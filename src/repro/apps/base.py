"""Application base class and pattern-building helpers.

An :class:`Application` describes *one outer iteration* of the code as a
list of :class:`~repro.mpi.patterns.Phase` objects, given the concrete
rank-to-node map the scheduler assigned.  The experiment harness resolves
each phase once (the background is static within a run), multiplies by
:meth:`Application.n_iterations`, and adds per-iteration noise.

Scaling: ``strong`` scaling divides per-rank compute and communication
volumes by ``P / base_nodes``; ``weak`` scaling keeps them constant.

Calibration: each concrete app carries constants (message sizes, inner
iteration counts, compute seconds per iteration) chosen so that at the
reference size (256 nodes) under production AD0 conditions the simulated
runtime and MPI fraction land near the paper's Table I/II values.  The
constants are documented on each class.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.mpi.patterns import Phase
from repro.network.fluid import FlowSet


def grid_dims(n: int, ndims: int) -> tuple[int, ...]:
    """Factor ``n`` ranks into an ``ndims``-dimensional near-cubic grid.

    Mirrors ``MPI_Dims_create``: dims are as balanced as the
    factorization allows, in non-increasing order.

    >>> grid_dims(256, 4)
    (4, 4, 4, 4)
    >>> grid_dims(128, 4)
    (4, 4, 4, 2)
    """
    if n < 1 or ndims < 1:
        raise ValueError("n and ndims must be >= 1")
    dims = [1] * ndims
    remaining = n
    # peel prime factors largest-first onto the smallest dim
    factors: list[int] = []
    d = 2
    while d * d <= remaining:
        while remaining % d == 0:
            factors.append(d)
            remaining //= d
        d += 1
    if remaining > 1:
        factors.append(remaining)
    for f in sorted(factors, reverse=True):
        dims[int(np.argmin(dims))] *= f
    return tuple(sorted(dims, reverse=True))


def rank_grid_coords(P: int, dims: tuple[int, ...]) -> np.ndarray:
    """Coordinates of each rank in a row-major cartesian grid.

    Returns ``(P, ndims)``; requires ``prod(dims) == P``.
    """
    if int(np.prod(dims)) != P:
        raise ValueError(f"grid {dims} does not hold {P} ranks")
    coords = np.empty((P, len(dims)), dtype=np.int64)
    r = np.arange(P)
    for i in range(len(dims) - 1, -1, -1):
        coords[:, i] = r % dims[i]
        r //= dims[i]
    return coords


def stencil_flows(
    nodes: np.ndarray,
    dims: tuple[int, ...],
    bytes_per_neighbor: float,
    *,
    periodic: bool = True,
) -> FlowSet:
    """Nearest-neighbor (±1 per dimension) exchange flows on a grid.

    Each rank sends ``bytes_per_neighbor`` to each of its ``2 * ndims``
    neighbors (fewer at non-periodic boundaries).
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    P = nodes.size
    coords = rank_grid_coords(P, dims)
    strides = np.ones(len(dims), dtype=np.int64)
    for i in range(len(dims) - 2, -1, -1):
        strides[i] = strides[i + 1] * dims[i + 1]

    src_parts, dst_parts = [], []
    for axis in range(len(dims)):
        if dims[axis] == 1:
            continue
        for step in (+1, -1):
            nb = coords[:, axis] + step
            if periodic:
                nb_mod = nb % dims[axis]
                valid = np.ones(P, dtype=bool)
            else:
                valid = (nb >= 0) & (nb < dims[axis])
                nb_mod = np.clip(nb, 0, dims[axis] - 1)
            partner = np.arange(P) + (nb_mod - coords[:, axis]) * strides[axis]
            src_parts.append(nodes[np.arange(P)[valid]])
            dst_parts.append(nodes[partner[valid]])
    if not src_parts:
        return FlowSet.empty()
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    keep = src != dst  # dims of size 2 make +1/-1 the same partner
    return FlowSet(
        src[keep],
        dst[keep],
        np.full(keep.sum(), float(bytes_per_neighbor)),
        np.zeros(keep.sum(), dtype=np.int64),
    )


def random_pair_flows(
    nodes: np.ndarray,
    partners_per_rank: int,
    bytes_per_partner: float,
    rng: np.random.Generator,
) -> FlowSet:
    """Random rank-pair flows (FFT-transpose-style bisection traffic)."""
    nodes = np.asarray(nodes, dtype=np.int64)
    P = nodes.size
    k = min(partners_per_rank, P - 1)
    ranks = np.repeat(np.arange(P), k)
    offsets = rng.integers(1, P, size=ranks.size)
    partners = (ranks + offsets) % P
    return FlowSet(
        nodes[ranks],
        nodes[partners],
        np.full(ranks.size, float(bytes_per_partner)),
        np.zeros(ranks.size, dtype=np.int64),
    )


class Application(abc.ABC):
    """Base class for workload models.

    Subclasses set the class attributes and implement :meth:`phases`.

    Attributes
    ----------
    name:
        Display name as used in the paper's tables.
    scaling:
        ``"strong"`` or ``"weak"``.
    base_nodes:
        Reference job size (256 in the paper's Table I/II).
    reference_runtime:
        The paper's AD0 mean runtime at ``base_nodes`` on Theta
        (seconds) — the calibration target, recorded for tests.
    reference_mpi_fraction:
        The paper's Table-I "% of MPI in total time" at 256 nodes.
    """

    name: str = "app"
    scaling: str = "strong"
    base_nodes: int = 256
    reference_runtime: float = 0.0
    reference_mpi_fraction: float = 0.0

    def scale_factor(self, P: int) -> float:
        """Per-rank work multiplier at job size ``P``."""
        if self.scaling == "strong":
            return self.base_nodes / P
        if self.scaling == "weak":
            return 1.0
        raise ValueError(f"unknown scaling mode {self.scaling!r}")

    @abc.abstractmethod
    def phases(self, nodes: np.ndarray, rng: np.random.Generator) -> list[Phase]:
        """Phases of one outer iteration on the given rank-to-node map."""

    @abc.abstractmethod
    def n_iterations(self, P: int) -> int:
        """Outer iterations for a run at job size ``P``."""

    def describe(self) -> str:
        """One-line summary for reports."""
        return f"{self.name} ({self.scaling} scaling, ref {self.base_nodes} nodes)"

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}()"
