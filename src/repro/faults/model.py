"""Fault model: dead links, degraded cables, down routers, timed events.

Production dragonfly fabrics are never pristine: Aries systems run for
weeks with failed rank-3 cables, cables degraded to a subset of their
optical lanes, and quiesced (down) routers.  This module describes such
states declaratively so both network engines — and the campaign harness
above them — can ask "what does the network look like at time ``t``?"

Two layers:

* :class:`FaultSpec` — one fault: an explicit set of directed links, a
  physical rank-3 cable (both directions), a router (all attached
  links), or a random fraction of a link class.  A spec is either
  *dead* (capacity multiplier 0) or *degraded* (multiplier in (0, 1),
  e.g. surviving-lane fraction of a rank-3 cable), and carries an
  optional ``[start, end)`` activity window in engine seconds so
  mid-window fault/recovery events can be scheduled.
* :class:`FaultSchedule` — an ordered collection of specs plus a seed.
  Random specs (class + fraction) resolve deterministically from the
  schedule seed via :func:`repro.util.rng.derive_rng`, so two runs with
  the same schedule see byte-identical failures.

The schedule's only product is a per-link **capacity multiplier** field
(:meth:`FaultSchedule.capacity_scale`); the topology turns that into a
masked view (:meth:`repro.topology.dragonfly.DragonflyTopology.with_faults`)
and the packet simulator re-reads it at every activity-window boundary.
An empty schedule is a strict no-op by construction: engines never see
a scale field at all.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.faults.errors import FaultSpecError, NetworkPartitionedError
from repro.topology.dragonfly import LinkClass
from repro.util import derive_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.topology.dragonfly import DragonflyTopology

__all__ = ["FaultSpec", "FaultSchedule", "NetworkPartitionedError", "NO_FAULTS"]

_CLASS_NAMES = {
    "rank1": LinkClass.RANK1,
    "rank2": LinkClass.RANK2,
    "rank3": LinkClass.RANK3,
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault: what is broken, how badly, and when.

    Use the classmethod constructors rather than filling fields by hand;
    they validate the per-kind field combinations.

    Attributes
    ----------
    kind:
        ``"links"`` (explicit directed link ids), ``"cable"`` (one
        rank-3 cable, both directions), ``"router"`` (every link the
        router transmits or receives on, including its nodes' NICs), or
        ``"class_fraction"`` (a random fraction of a link class, failed
        in bidirectional pairs).
    scale:
        Per-link capacity multiplier while active: 0 = dead, (0, 1) =
        degraded.  For ``cable`` specs with ``lanes_lost`` set the
        multiplier is derived from the topology's ``lanes_per_cable``
        geometry at resolve time instead.
    start, end:
        Activity window in engine seconds; ``end=None`` means forever.
        The static (campaign) view of a schedule is its state at t=0.
    """

    kind: str
    links: tuple[int, ...] = ()
    group_a: int = -1
    group_b: int = -1
    cable: int = -1
    router: int = -1
    link_class: int = -1
    fraction: float = 0.0
    lanes_lost: int = 0
    scale: float = 0.0
    start: float = 0.0
    end: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("links", "cable", "router", "class_fraction"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not (0.0 <= self.scale < 1.0):
            raise ValueError("fault scale must be in [0, 1) (1.0 would be a no-op)")
        if self.start < 0:
            raise ValueError("fault start must be >= 0")
        if self.end is not None and self.end <= self.start:
            raise ValueError("fault end must be > start")
        if self.kind == "class_fraction" and not (0.0 < self.fraction <= 1.0):
            raise ValueError("fault fraction must be in (0, 1]")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def dead_links(
        cls, link_ids: Iterable[int], *, start: float = 0.0, end: float | None = None
    ) -> "FaultSpec":
        """Explicit directed links, dead."""
        return cls(kind="links", links=tuple(int(i) for i in link_ids), start=start, end=end)

    @classmethod
    def degraded_links(
        cls,
        link_ids: Iterable[int],
        scale: float,
        *,
        start: float = 0.0,
        end: float | None = None,
    ) -> "FaultSpec":
        """Explicit directed links at ``scale`` of their capacity."""
        return cls(
            kind="links",
            links=tuple(int(i) for i in link_ids),
            scale=scale,
            start=start,
            end=end,
        )

    @classmethod
    def dead_cable(
        cls,
        group_a: int,
        group_b: int,
        cable: int,
        *,
        start: float = 0.0,
        end: float | None = None,
    ) -> "FaultSpec":
        """One rank-3 optical cable cut — both directions go dark."""
        return cls(
            kind="cable",
            group_a=int(group_a),
            group_b=int(group_b),
            cable=int(cable),
            start=start,
            end=end,
        )

    @classmethod
    def degraded_cable(
        cls,
        group_a: int,
        group_b: int,
        cable: int,
        *,
        lanes_lost: int = 1,
        start: float = 0.0,
        end: float | None = None,
    ) -> "FaultSpec":
        """A rank-3 cable running on fewer optical lanes.

        The capacity multiplier is ``(lanes_per_cable - lanes_lost) /
        lanes_per_cable`` from the topology's geometry; losing every
        lane is equivalent to :meth:`dead_cable`.
        """
        if lanes_lost < 1:
            raise ValueError("lanes_lost must be >= 1")
        return cls(
            kind="cable",
            group_a=int(group_a),
            group_b=int(group_b),
            cable=int(cable),
            lanes_lost=int(lanes_lost),
            start=start,
            end=end,
        )

    @classmethod
    def dead_router(
        cls, router: int, *, start: float = 0.0, end: float | None = None
    ) -> "FaultSpec":
        """A quiesced router: every attached link (incl. its NICs) dies."""
        return cls(kind="router", router=int(router), start=start, end=end)

    @classmethod
    def random_link_failures(
        cls,
        link_class: str | LinkClass,
        fraction: float,
        *,
        start: float = 0.0,
        end: float | None = None,
    ) -> "FaultSpec":
        """Fail a random ``fraction`` of a link class, in (i, j)/(j, i) pairs.

        The draw is deterministic from the owning schedule's seed and
        the spec's position in the schedule.
        """
        if isinstance(link_class, str):
            if link_class not in _CLASS_NAMES:
                raise ValueError(
                    f"unknown link class {link_class!r}; choose from {sorted(_CLASS_NAMES)}"
                )
            link_class = _CLASS_NAMES[link_class]
        return cls(
            kind="class_fraction",
            link_class=int(link_class),
            fraction=float(fraction),
            start=start,
            end=end,
        )

    # ------------------------------------------------------------------
    def active_at(self, t: float) -> bool:
        """Whether this fault is present at engine time ``t``."""
        return self.start <= t and (self.end is None or t < self.end)

    def resolve_links(self, top: "DragonflyTopology", rng: np.random.Generator) -> np.ndarray:
        """Directed link ids this fault touches on ``top``.

        ``rng`` drives ``class_fraction`` sampling only; other kinds
        never draw from it.
        """
        if self.kind == "links":
            ids = np.asarray(self.links, dtype=np.int64)
            if ids.size and (ids.min() < 0 or ids.max() >= top.n_links):
                raise ValueError(f"link id out of range 0..{top.n_links - 1}")
            return ids
        if self.kind == "cable":
            G = top.params.n_groups
            K = top.params.cables_per_group_pair
            ga, gb, c = self.group_a, self.group_b, self.cable
            if not (0 <= ga < G and 0 <= gb < G) or ga == gb:
                raise ValueError(f"invalid group pair ({ga}, {gb}) for {top.params.name}")
            if not (0 <= c < K):
                raise ValueError(f"cable index {c} out of range 0..{K - 1}")
            return np.asarray(
                [int(top.rank3_link(ga, gb, c)), int(top.rank3_link(gb, ga, c))],
                dtype=np.int64,
            )
        if self.kind == "router":
            r = self.router
            if not (0 <= r < top.n_routers):
                raise ValueError(f"router index {r} out of range 0..{top.n_routers - 1}")
            mask = (top.link_src_router == r) | (top.link_dst_router == r)
            return np.flatnonzero(mask).astype(np.int64)
        # class_fraction: sample canonical (lower, upper) pairs, kill both
        # directions, mirroring how physical link failures present.
        fwd, rev = _class_link_pairs(top, LinkClass(self.link_class))
        n_fail = int(round(self.fraction * fwd.size))
        if n_fail == 0 and self.fraction > 0:
            n_fail = 1
        pick = rng.choice(fwd.size, size=min(n_fail, fwd.size), replace=False)
        return np.concatenate([fwd[pick], rev[pick]])

    def capacity_multiplier(self, top: "DragonflyTopology") -> float:
        """The per-link capacity factor this fault applies while active."""
        if self.kind == "cable" and self.lanes_lost > 0:
            lanes = top.params.lanes_per_cable
            return max(lanes - self.lanes_lost, 0) / lanes
        return self.scale

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.kind == "links":
            what = f"{len(self.links)} link(s)"
        elif self.kind == "cable":
            what = f"cable {self.cable} of groups ({self.group_a}, {self.group_b})"
            if self.lanes_lost:
                what += f" -{self.lanes_lost} lane(s)"
        elif self.kind == "router":
            what = f"router {self.router}"
        else:
            what = f"{self.fraction:.1%} of {LinkClass(self.link_class).name.lower()}"
        state = "degraded" if (self.scale > 0 or self.lanes_lost) else "dead"
        window = "" if self.start == 0 and self.end is None else f" @[{self.start:g}, {self.end if self.end is not None else 'inf'})"
        return f"{what} {state}{window}"


def _class_link_pairs(
    top: "DragonflyTopology", link_class: LinkClass
) -> tuple[np.ndarray, np.ndarray]:
    """Canonical (forward, reverse) directed-link id pairs of one class."""
    p = top.params
    G, C, R, K = p.n_groups, p.chassis_per_group, p.routers_per_chassis, p.cables_per_group_pair
    if link_class == LinkClass.RANK1:
        g, c, i, j = np.meshgrid(
            np.arange(G), np.arange(C), np.arange(R), np.arange(R), indexing="ij"
        )
        keep = (i < j).ravel()
        fwd = np.asarray(top.rank1_link(g, c, i, j)).ravel()[keep]
        rev = np.asarray(top.rank1_link(g, c, j, i)).ravel()[keep]
    elif link_class == LinkClass.RANK2:
        g, s, a, b = np.meshgrid(
            np.arange(G), np.arange(R), np.arange(C), np.arange(C), indexing="ij"
        )
        keep = (a < b).ravel()
        fwd = np.asarray(top.rank2_link(g, s, a, b)).ravel()[keep]
        rev = np.asarray(top.rank2_link(g, s, b, a)).ravel()[keep]
    elif link_class == LinkClass.RANK3:
        g, h, k = np.meshgrid(np.arange(G), np.arange(G), np.arange(K), indexing="ij")
        keep = (g < h).ravel()
        fwd = np.asarray(top.rank3_link(g, h, k)).ravel()[keep]
        rev = np.asarray(top.rank3_link(h, g, k)).ravel()[keep]
    else:
        raise ValueError(f"cannot sample failures over {link_class!r}")
    return fwd.astype(np.int64), rev.astype(np.int64)


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered set of faults plus the seed that resolves random ones.

    Falsy when empty; an empty schedule is guaranteed to be a strict
    no-op everywhere (engines receive the pristine topology object
    itself, not a copy).
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0
    #: the mini-language text this schedule was parsed from, when it
    #: came through :meth:`parse` — lets a remote worker rebuild the
    #: identical schedule from a campaign manifest.  ``None`` for
    #: schedules assembled programmatically (not expressible as text).
    source: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __eq__(self, other) -> bool:
        # the source text is provenance, not identity: a parsed schedule
        # equals the same schedule assembled by hand
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return self.specs == other.specs and self.seed == other.seed

    def __hash__(self) -> int:
        return hash((self.specs, self.seed))

    def with_spec(self, spec: FaultSpec) -> "FaultSchedule":
        """Copy with one more fault appended (drops the parse source)."""
        return replace(self, specs=self.specs + (spec,), source=None)

    def capacity_scale(
        self, top: "DragonflyTopology", *, at_time: float = 0.0
    ) -> np.ndarray | None:
        """Per-link capacity multiplier field at engine time ``at_time``.

        Multipliers of overlapping faults compose multiplicatively (a
        degraded link inside a down router is simply down).  Returns
        ``None`` when no fault is active, so callers can keep the
        pristine fast path allocation-free.
        """
        scale: np.ndarray | None = None
        for idx, spec in enumerate(self.specs):
            if not spec.active_at(at_time):
                continue
            rng = derive_rng(self.seed, "faults", idx, spec.kind)
            ids = spec.resolve_links(top, rng)
            if ids.size == 0:
                continue
            if scale is None:
                scale = np.ones(top.n_links, dtype=np.float64)
            scale[ids] *= spec.capacity_multiplier(top)
        return scale

    def change_times(self) -> list[float]:
        """Sorted times (> 0) at which the active fault set changes.

        The packet simulator re-reads :meth:`capacity_scale` at each of
        these instants; a schedule with only static (t=0, open-ended)
        faults returns an empty list.
        """
        times = set()
        for spec in self.specs:
            if spec.start > 0:
                times.add(float(spec.start))
            if spec.end is not None:
                times.add(float(spec.end))
        return sorted(times)

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        if not self.specs:
            return "no faults"
        return "; ".join(s.describe() for s in self.specs)

    # ------------------------------------------------------------------
    # CLI mini-language
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str, *, seed: int = 0) -> "FaultSchedule":
        """Parse the CLI fault mini-language into a schedule.

        Grammar (specs separated by ``;``, window suffix optional)::

            rank1:F | rank2:F | rank3:F     random fraction F of the class dead
            router:R                        router R down
            cable:GA-GB:C                   rank-3 cable C of the group pair cut
            cable:GA-GB:C*S                 ... degraded to S of its capacity
            link:ID[*S]                     one directed link dead (or at S)
            <spec>@T1,T2                    active only during [T1, T2) seconds
            <spec>@T1                       active from T1 onward

        Examples: ``"rank3:0.05"``, ``"router:17;cable:0-1:3"``,
        ``"cable:0-1:0@1e-4,5e-4"``.

        Raises :class:`repro.faults.FaultSpecError` (a ``ValueError``)
        carrying the offending token and its character position in
        ``text``, so CLI errors can point at the exact spot.
        """
        specs: list[FaultSpec] = []
        pos = 0
        for seg in text.split(";"):
            seg_start = pos
            pos += len(seg) + 1  # +1 for the consumed ";"
            raw = seg.strip()
            if not raw:
                continue

            def err(message: str, token: str, _seg=seg, _base=seg_start) -> FaultSpecError:
                offset = _seg.find(token) if token else -1
                return FaultSpecError(
                    message,
                    token=token or _seg.strip(),
                    position=_base + (offset if offset >= 0 else len(_seg) - len(_seg.lstrip())),
                )

            start, end = 0.0, None
            if "@" in raw:
                raw, _, window = raw.partition("@")
                w1, _, w2 = window.partition(",")
                try:
                    start = float(w1)
                    end = float(w2) if w2 else None
                except ValueError:
                    raise err("bad fault window (expected T1[,T2])", window) from None
            head, _, rest = raw.partition(":")
            head = head.strip().lower()
            if head in _CLASS_NAMES:
                try:
                    frac = float(rest)
                except ValueError:
                    raise err(f"bad fraction in {head} fault spec", rest) from None
                specs.append(
                    FaultSpec.random_link_failures(head, frac, start=start, end=end)
                )
            elif head == "router":
                try:
                    r = int(rest)
                except ValueError:
                    raise err("bad router index in fault spec", rest) from None
                specs.append(FaultSpec.dead_router(r, start=start, end=end))
            elif head == "cable":
                pair, _, cable = rest.partition(":")
                ga, _, gb = pair.partition("-")
                cable, _, scale = cable.partition("*")
                try:
                    ga_i, gb_i, c_i = int(ga), int(gb), int(cable)
                except ValueError:
                    raise err(
                        "bad cable spec (expected cable:GA-GB:C[*S])", rest
                    ) from None
                if scale:
                    try:
                        scale_f = float(scale)
                    except ValueError:
                        raise err("bad cable capacity scale", scale) from None
                    spec = FaultSpec(
                        kind="cable",
                        group_a=ga_i,
                        group_b=gb_i,
                        cable=c_i,
                        scale=scale_f,
                        start=start,
                        end=end,
                    )
                else:
                    spec = FaultSpec.dead_cable(ga_i, gb_i, c_i, start=start, end=end)
                specs.append(spec)
            elif head == "link":
                lid, _, scale = rest.partition("*")
                try:
                    lid_i = int(lid)
                except ValueError:
                    raise err("bad link id in fault spec", lid) from None
                if scale:
                    try:
                        scale_f = float(scale)
                    except ValueError:
                        raise err("bad link capacity scale", scale) from None
                    specs.append(
                        FaultSpec.degraded_links([lid_i], scale_f, start=start, end=end)
                    )
                else:
                    specs.append(FaultSpec.dead_links([lid_i], start=start, end=end))
            else:
                raise err(
                    "unknown fault spec (expected rank1|rank2|rank3|router|cable|link)",
                    head,
                )
        return cls(specs=tuple(specs), seed=seed, source=text)


#: the canonical "nothing is broken" schedule
NO_FAULTS = FaultSchedule()
