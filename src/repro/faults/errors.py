"""Typed fault errors (leaf module: imports nothing from the package).

Kept free of topology imports so :mod:`repro.topology.paths` can raise
:class:`NetworkPartitionedError` without an import cycle.
"""

from __future__ import annotations


class NetworkPartitionedError(RuntimeError):
    """A flow's endpoints have no surviving path between them.

    Raised by the path layer when fault repair exhausts every candidate
    (direct cables, local detours, and two-global-hop detours) for at
    least one flow, or when a flow's NIC link itself is dead.
    """
