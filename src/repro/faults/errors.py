"""Typed fault errors (leaf module: imports nothing from the package).

Kept free of topology imports so :mod:`repro.topology.paths` can raise
:class:`NetworkPartitionedError` without an import cycle.
"""

from __future__ import annotations


class FaultSpecError(ValueError):
    """A ``--faults`` spec failed to parse.

    Carries the offending ``token`` and its character ``position`` in
    the original spec string, so the CLI can point at the exact spot
    instead of dumping a traceback.  Subclasses ``ValueError`` so
    existing ``except ValueError`` config-error handling still applies.
    """

    def __init__(self, message: str, *, token: str = "", position: int = 0) -> None:
        self.token = token
        self.position = position
        super().__init__(f"{message} (token {token!r} at position {position})")


class NetworkPartitionedError(RuntimeError):
    """A flow's endpoints have no surviving path between them.

    Raised by the path layer when fault repair exhausts every candidate
    (direct cables, local detours, and two-global-hop detours) for at
    least one flow, or when a flow's NIC link itself is dead.
    """
