"""Fault injection and degraded-network operation.

Production dragonflies run with failed rank-3 cables, lane-degraded
optics, and quiesced routers; this subpackage models those states
(:class:`FaultSpec` / :class:`FaultSchedule`) and defines the typed
error (:class:`NetworkPartitionedError`) the path layer raises when a
flow has no surviving route.  See ``docs/FAULTS.md`` for the schema,
the degraded-capacity semantics, and the CLI mini-language.
"""

from repro.faults.errors import FaultSpecError, NetworkPartitionedError
from repro.faults.model import (
    NO_FAULTS,
    FaultSchedule,
    FaultSpec,
)

__all__ = [
    "NO_FAULTS",
    "FaultSchedule",
    "FaultSpec",
    "FaultSpecError",
    "NetworkPartitionedError",
]
