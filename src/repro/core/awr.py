"""Application-aware routing (AWR) — the runtime the paper argues against.

De Sensi et al. (SC'19) proposed a runtime that polls Aries NIC latency
counters and adjusts the routing policy when latency degrades.  The
paper's introduction gives two reasons for preferring *static*
per-application biases instead:

1. on many-core CPUs (Intel KNL) the per-message counter polling
   overhead was too high for the processor to absorb, and
2. individual bias policies often outperformed the adaptive runtime.

This module implements an AWR-style controller over the simulation so
that the comparison itself is reproducible: the controller divides a run
into windows, measures mean packet latency per window through the NIC
counters, and moves along the AD0..AD3 ladder when latency crosses
hysteresis thresholds.  Polling overhead is charged per message, scaled
by a core-speed factor (KNL cores pay more).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.base import Application
from repro.core.biases import AD0, VENDOR_MODES, RoutingMode
from repro.core.experiment import resolve_phase
from repro.mpi.env import RoutingEnv
from repro.topology.dragonfly import DragonflyTopology


@dataclass(frozen=True)
class AwrConfig:
    """Controller parameters (hysteresis thresholds per De Sensi's design).

    Attributes
    ----------
    n_windows:
        Adaptation windows per run (the controller re-decides once per
        window).
    degrade_factor:
        Mean window latency above ``degrade_factor`` x the best window
        seen so far escalates the minimal bias one step.
    recover_factor:
        Latency below ``recover_factor`` x the best window de-escalates
        one step (the runtime tries to reclaim non-minimal bandwidth).
    poll_overhead:
        Seconds charged per polled message on a regular (Haswell-class)
        core.
    core_slowdown:
        Multiplier on the polling overhead for slow many-core CPUs
        (KNL); the paper found this made the runtime impractical there.
    """

    n_windows: int = 12
    degrade_factor: float = 1.15
    recover_factor: float = 1.05
    poll_overhead: float = 0.3e-6
    core_slowdown: float = 1.0

    def __post_init__(self) -> None:
        if self.n_windows < 1:
            raise ValueError("n_windows must be >= 1")
        if self.degrade_factor <= self.recover_factor:
            raise ValueError("degrade_factor must exceed recover_factor")


@dataclass
class AwrRunResult:
    """Outcome of one AWR-controlled run."""

    runtime: float
    polling_overhead: float
    window_modes: list[str]
    window_latencies: list[float]

    @property
    def mode_changes(self) -> int:
        return sum(
            1
            for a, b in zip(self.window_modes, self.window_modes[1:])
            if a != b
        )


def run_app_awr(
    top: DragonflyTopology,
    app: Application,
    nodes: np.ndarray,
    *,
    background_windows: list[np.ndarray | None],
    rng: np.random.Generator,
    config: AwrConfig | None = None,
) -> AwrRunResult:
    """Run ``app`` under AWR control.

    ``background_windows`` supplies one ambient utilization field per
    adaptation window (production noise drifts over a run; a static
    field may be repeated).  The controller starts at AD0 (the system
    default the runtime assumes) and walks the AD ladder on the paper's
    described trigger: polled mean packet latency.
    """
    config = config or AwrConfig()
    nodes = np.asarray(nodes, dtype=np.int64)
    P = nodes.size
    n_iter = app.n_iterations(P)
    iters_per_window = n_iter / config.n_windows

    ladder = list(VENDOR_MODES)
    level = 0  # start at AD0
    best_latency = np.inf
    total = 0.0
    overhead_total = 0.0
    window_modes: list[str] = []
    window_latencies: list[float] = []

    phases = app.phases(nodes, rng)
    msgs_per_iter = sum(
        p.p2p.messages_per_rank for p in phases if p.p2p is not None
    )

    for w, bg in enumerate(background_windows[: config.n_windows]):
        mode = ladder[level]
        env = RoutingEnv.uniform(mode)
        per_iter = 0.0
        lat_samples: list[float] = []
        for phase in phases:
            pt = resolve_phase(
                top, phase, env, background_util=bg, rng=rng
            )
            per_iter += phase.compute_time + pt.comm_time
            if pt.result.flow_latency_ambient.size:
                # the NIC counters see congestion-driven latency; sample
                # the ambient component (the app's own bursts are
                # constant per window and carry no signal)
                lat_samples.append(float(pt.result.flow_latency_ambient.mean()))
        # the runtime reads NIC counters around every message
        overhead = (
            msgs_per_iter * config.poll_overhead * config.core_slowdown
        )
        per_iter += overhead
        total += per_iter * iters_per_window
        overhead_total += overhead * iters_per_window

        latency = float(np.mean(lat_samples)) if lat_samples else 0.0
        window_modes.append(mode.name)
        window_latencies.append(latency)

        # hysteresis control on the polled latency
        best_latency = min(best_latency, latency) if latency else best_latency
        if latency and best_latency and latency > config.degrade_factor * best_latency:
            level = min(level + 1, len(ladder) - 1)
        elif (
            latency
            and best_latency
            and latency < config.recover_factor * best_latency
            and level > 0
        ):
            level = max(level - 1, 0)

    return AwrRunResult(
        runtime=total * float(rng.lognormal(0.0, 0.008)),
        polling_overhead=overhead_total * iters_per_window / max(iters_per_window, 1),
        window_modes=window_modes,
        window_latencies=window_latencies,
    )


def run_app_static(
    top: DragonflyTopology,
    app: Application,
    nodes: np.ndarray,
    mode: RoutingMode,
    *,
    background_windows: list[np.ndarray | None],
    rng: np.random.Generator,
    config: AwrConfig | None = None,
) -> float:
    """The static-bias baseline over the same drifting background."""
    config = config or AwrConfig()
    nodes = np.asarray(nodes, dtype=np.int64)
    n_iter = app.n_iterations(nodes.size)
    iters_per_window = n_iter / config.n_windows
    env = RoutingEnv.uniform(mode)
    phases = app.phases(nodes, rng)
    total = 0.0
    for bg in background_windows[: config.n_windows]:
        per_iter = 0.0
        for phase in phases:
            pt = resolve_phase(top, phase, env, background_util=bg, rng=rng)
            per_iter += phase.compute_time + pt.comm_time
        total += per_iter * iters_per_window
    return total * float(rng.lognormal(0.0, 0.008))
