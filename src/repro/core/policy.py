"""The biased minimal-vs-non-minimal routing decision.

Two forms of the same arithmetic:

* :func:`minimal_preferred` — the exact integer comparison a router tile
  makes per packet (used by the packet simulator, including AD1's per-hop
  shift schedule);
* :func:`split_fraction` — a smooth fractional version for the fluid
  solver, where a flow's packets distribute between the two path sets.
  The smoothing width models the packet-to-packet jitter of hardware load
  estimates; as ``temperature -> 0`` it converges to the hard comparison.

Load scale: hardware load estimates are small integers (credit/queue
occupancy buckets).  The fluid solver measures path load as a sum of link
utilizations, which it converts to credit units with
``PolicyParams.load_unit`` before applying the shift/add bias, so the
``add`` parameter has the same meaning in both engines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.biases import RoutingMode


@dataclass(frozen=True)
class PolicyParams:
    """Calibration constants for the fluid-form decision.

    Attributes
    ----------
    load_unit:
        Credit units per unit of summed path utilization.  With the
        default of 4.0, ``add=4`` (AD2) handicaps the non-minimal side by
        one link's worth of full utilization — a weak bias, matching the
        paper's characterization.
    temperature:
        Smoothing width (credit units) of the fractional split.
    hop_bias:
        Hop-count component of a candidate path's load estimate, in
        utilization-sum units per router hop.  Models the UGAL convention
        that a longer path carries proportionally more downstream queue
        even at equal per-link load, so biased modes prefer minimal at
        zero load.
    adaptive_temp:
        Softmin temperature (utilization-sum units) of the within-side
        candidate weighting — how sharply packets avoid the hotter
        candidates of their chosen side.
    """

    load_unit: float = 4.0
    temperature: float = 1.0
    hop_bias: float = 0.045
    adaptive_temp: float = 0.3

    def __post_init__(self) -> None:
        if self.load_unit <= 0:
            raise ValueError("load_unit must be > 0")
        if self.temperature <= 0:
            raise ValueError("temperature must be > 0")
        if self.hop_bias < 0:
            raise ValueError("hop_bias must be >= 0")
        if self.adaptive_temp <= 0:
            raise ValueError("adaptive_temp must be > 0")


DEFAULT_POLICY = PolicyParams()


def effective_shift(mode: RoutingMode, hops_taken) -> np.ndarray:
    """Vectorized per-hop shift for a (possibly increasing) mode."""
    hops_taken = np.asarray(hops_taken)
    if not mode.increasing:
        return np.full(hops_taken.shape, mode.shift, dtype=np.int64)
    sched = np.asarray(mode.hop_shift_schedule, dtype=np.int64)
    idx = np.minimum(hops_taken, len(sched) - 1)
    return sched[idx]


def minimal_preferred(
    mode: RoutingMode,
    load_min,
    load_nonmin,
    hops_taken=0,
) -> np.ndarray:
    """The hard per-packet comparison: take minimal iff it wins the bias.

    ``load_min`` / ``load_nonmin`` are credit-unit load estimates of the
    best candidate of each kind; ``hops_taken`` feeds AD1's schedule.
    All arguments broadcast.

    >>> from repro.core.biases import AD0, AD3
    >>> bool(minimal_preferred(AD0, 3, 2))
    False
    >>> bool(minimal_preferred(AD3, 3, 2))
    True
    """
    load_min = np.asarray(load_min, dtype=np.float64)
    load_nonmin = np.asarray(load_nonmin, dtype=np.float64)
    shift = effective_shift(mode, hops_taken)
    return load_min <= np.ldexp(load_nonmin, shift) + mode.add


def split_fraction(
    mode: RoutingMode,
    util_min,
    util_nonmin,
    params: PolicyParams = DEFAULT_POLICY,
) -> np.ndarray:
    """Fraction of a flow's packets that choose the minimal path set.

    ``util_min`` / ``util_nonmin`` are summed-utilization path loads (the
    fluid solver's metric).  The decision margin, in credit units, is::

        margin = (util_nonmin * 2**mean_shift - util_min) * load_unit + add

    and the split is ``sigmoid(margin / temperature)``: 0.5 at the exact
    bias threshold, approaching the hard decision for large margins.
    """
    util_min = np.asarray(util_min, dtype=np.float64)
    util_nonmin = np.asarray(util_nonmin, dtype=np.float64)
    mult = 2.0 ** mode.mean_shift
    margin = (util_nonmin * mult - util_min) * params.load_unit + mode.add
    # numerically safe sigmoid
    out = np.empty(np.broadcast(util_min, util_nonmin).shape, dtype=np.float64)
    z = margin / params.temperature
    z = np.clip(z, -60.0, 60.0)
    out[...] = 1.0 / (1.0 + np.exp(-z))
    return out
