"""JSONL campaign checkpointing: crash-tolerant sweeps.

A checkpoint file is one header line (the campaign's config fingerprint)
followed by one JSON object per completed run.  Records are appended as
they finish, so a killed campaign can be resumed with ``--resume``: runs
already present (status ``ok``) are loaded back verbatim and skipped;
everything else re-runs.  Because every run's RNG stream is derived
independently from ``(seed, app, n_nodes, sample, mode)``, skipping
completed runs cannot perturb the remaining ones — a resumed campaign
produces records identical to an uninterrupted run.

Floats survive the JSON round-trip exactly (``json`` emits
shortest-repr, which Python parses back to the same double), and counter
arrays are stored sparsely (most routers are zero in a local view).

A truncated final line — the signature of a crash mid-append — is
silently discarded; corruption anywhere else raises, as does a header
whose fingerprint disagrees with the resuming campaign's config.
"""

from __future__ import annotations

import errno
import json
import os
from typing import Any

import numpy as np

from repro.chaos import fs as chaos_fs
from repro.monitoring.autoperf import AutoPerfReport, MpiOpRecord
from repro.network.counters import TILE_CLASSES, CounterSnapshot

_KIND = "campaign-checkpoint"
_VERSION = 1


class StoreUnavailableError(OSError):
    """Durable storage failed (ENOSPC/EIO) during a commit.

    The typed wrapper callers catch instead of bare ``OSError``: it
    names the operation that failed and guarantees the failed commit
    left no half-written scratch behind (tmp files are cleaned on the
    error path before this is raised).  Raised by checkpoint writes and
    :class:`repro.service.store.RunRecordStore` commits.
    """

    def __init__(self, op: str, exc: OSError) -> None:
        super().__init__(
            exc.errno if exc.errno is not None else errno.EIO,
            f"{op}: {exc.strerror or exc}",
            getattr(exc, "filename", None),
        )
        self.op = op


def _counters_to_dict(snap: CounterSnapshot) -> dict[str, Any]:
    n_routers = int(next(iter(snap.flits.values())).size)
    out: dict[str, Any] = {"n_routers": n_routers}
    for name, table in (("flits", snap.flits), ("stalls", snap.stalls)):
        sparse = {}
        for cls in TILE_CLASSES:
            idx = np.flatnonzero(table[cls])
            sparse[cls] = [idx.tolist(), table[cls][idx].tolist()]
        out[name] = sparse
    return out


def _counters_from_dict(d: dict[str, Any]) -> CounterSnapshot:
    n = int(d["n_routers"])

    def build(table: dict[str, Any]) -> dict[str, np.ndarray]:
        out = {}
        for cls in TILE_CLASSES:
            arr = np.zeros(n, dtype=np.float64)
            idx, vals = table[cls]
            arr[np.asarray(idx, dtype=np.int64)] = np.asarray(vals, dtype=np.float64)
            out[cls] = arr
        return out

    return CounterSnapshot(flits=build(d["flits"]), stalls=build(d["stalls"]))


def _report_to_dict(rep: AutoPerfReport) -> dict[str, Any]:
    return {
        "app": rep.app,
        "n_nodes": rep.n_nodes,
        "total_time": rep.total_time,
        "ops": {op: [r.calls, r.nbytes, r.time] for op, r in rep.ops.items()},
        "counters": None if rep.counters is None else _counters_to_dict(rep.counters),
    }


def _report_from_dict(d: dict[str, Any]) -> AutoPerfReport:
    return AutoPerfReport(
        app=d["app"],
        n_nodes=int(d["n_nodes"]),
        ops={
            op: MpiOpRecord(calls=c, nbytes=b, time=t)
            for op, (c, b, t) in d["ops"].items()
        },
        total_time=d["total_time"],
        counters=None if d["counters"] is None else _counters_from_dict(d["counters"]),
    )


def record_to_dict(rec: Any) -> dict[str, Any]:
    """Serialize a :class:`repro.core.experiment.RunRecord` to plain JSON.

    The ``series`` key is emitted only when the run carried a cadence
    series — records from unobserved campaigns keep the exact historical
    key set, so checkpoint files stay byte-identical with telemetry off.
    """
    out = {
        "app": rec.app,
        "mode": rec.mode,
        "n_nodes": rec.n_nodes,
        "placement": rec.placement,
        "groups": rec.groups,
        "runtime": rec.runtime,
        "report": _report_to_dict(rec.report),
        "background_intensity": rec.background_intensity,
        "sample_index": rec.sample_index,
        "status": rec.status,
        "error": rec.error,
        "attempts": rec.attempts,
        "solver_converged": rec.solver_converged,
        "solver_nonconverged_phases": rec.solver_nonconverged_phases,
        "solver_max_residual": rec.solver_max_residual,
        "solver_max_residual_mean": rec.solver_max_residual_mean,
        "solver_iterations": rec.solver_iterations,
    }
    series = getattr(rec, "series", None)
    if series is not None:
        out["series"] = series.to_dict()
    return out


def record_from_dict(d: dict[str, Any]) -> Any:
    """Rebuild a RunRecord from :func:`record_to_dict` output."""
    from repro.core.experiment import RunRecord  # cycle: experiment imports us
    from repro.telemetry.series import CounterSeries

    return RunRecord(
        app=d["app"],
        mode=d["mode"],
        n_nodes=int(d["n_nodes"]),
        placement=d["placement"],
        groups=int(d["groups"]),
        runtime=d["runtime"],
        report=_report_from_dict(d["report"]),
        background_intensity=d["background_intensity"],
        sample_index=int(d["sample_index"]),
        status=d["status"],
        error=d["error"],
        attempts=int(d["attempts"]),
        solver_converged=bool(d["solver_converged"]),
        solver_nonconverged_phases=int(d["solver_nonconverged_phases"]),
        solver_max_residual=d["solver_max_residual"],
        solver_max_residual_mean=d["solver_max_residual_mean"],
        solver_iterations=int(d["solver_iterations"]),
        series=(
            CounterSeries.from_dict(d["series"]) if d.get("series") is not None else None
        ),
    )


def write_header(path: str | os.PathLike, fingerprint: dict[str, Any]) -> None:
    """Start a fresh checkpoint file (truncates any existing one)."""
    try:
        with open(path, "w") as f:
            f.write(
                json.dumps({"kind": _KIND, "version": _VERSION, "config": fingerprint})
                + "\n"
            )
    except OSError as exc:
        raise StoreUnavailableError("checkpoint header", exc) from exc


def append_record(path: str | os.PathLike, rec: Any) -> None:
    """Append one finished run, flushed so a crash loses at most one line.

    Raises :class:`StoreUnavailableError` when the filesystem fails the
    append (ENOSPC/EIO); a torn partial line may remain, which the next
    ``--resume`` removes via :func:`repair_tail`.
    """
    line = json.dumps(record_to_dict(rec)) + "\n"
    try:
        chaos_fs.append_line(path, line, site="checkpoint.append")
    except OSError as exc:
        raise StoreUnavailableError("checkpoint append", exc) from exc


def repair_tail(path: str | os.PathLike) -> bool:
    """Truncate a crash-torn final line so appends stay crash-atomic.

    A campaign killed mid-append leaves either a line without its
    trailing newline or a newline-terminated line of partial JSON.
    ``load_records`` tolerates both on read, but *appending* after a
    torn tail would concatenate a fresh record onto the fragment and
    corrupt two records instead of zero.  Returns True when bytes were
    actually removed.
    """
    with open(path, "r+b") as f:
        data = f.read()
        if not data:
            return False
        keep = len(data)
        if not data.endswith(b"\n"):
            # partial line with no terminator: drop back to the last
            # complete line (the file always starts with the header)
            keep = data.rfind(b"\n") + 1
        else:
            last_nl = data.rfind(b"\n", 0, len(data) - 1)
            last_line = data[last_nl + 1 :]
            try:
                json.loads(last_line)
            except json.JSONDecodeError:
                keep = last_nl + 1  # newline landed but the JSON did not
        if keep == len(data):
            return False
        f.truncate(keep)
        f.flush()
        os.fsync(f.fileno())
        return True


def rewrite(
    path: str | os.PathLike,
    fingerprint: dict[str, Any],
    records: list[Any],
) -> None:
    """Atomically replace a checkpoint with header + the given records.

    Used on ``--resume`` to drop error/superseded records: the new file
    is built beside the old one and swapped in with ``os.replace``, so
    a crash during the rewrite leaves the previous checkpoint intact.
    """
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w") as f:
            f.write(
                json.dumps({"kind": _KIND, "version": _VERSION, "config": fingerprint})
                + "\n"
            )
            for rec in records:
                f.write(json.dumps(record_to_dict(rec)) + "\n")
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        raise StoreUnavailableError("checkpoint rewrite", exc) from exc
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def load_records(
    path: str | os.PathLike, fingerprint: dict[str, Any]
) -> dict[tuple[int, str], Any]:
    """Load completed runs keyed by ``(sample_index, mode)``.

    Only ``status == "ok"`` records are returned (failed runs re-run on
    resume); later records override earlier ones for the same key.
    Raises ``ValueError`` on a header/fingerprint mismatch or on
    corruption anywhere but the final (possibly crash-truncated) line.
    """
    with open(path) as f:
        lines = f.read().splitlines()
    if not lines:
        raise ValueError(f"checkpoint {path} is empty")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as e:
        raise ValueError(f"checkpoint {path} has a corrupt header") from e
    if header.get("kind") != _KIND or header.get("version") != _VERSION:
        raise ValueError(f"{path} is not a version-{_VERSION} campaign checkpoint")
    if header.get("config") != fingerprint:
        raise ValueError(
            f"checkpoint {path} was written by a different campaign config: "
            f"{header.get('config')} != {fingerprint}"
        )
    out: dict[tuple[int, str], Any] = {}
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            d = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines):
                break  # crash-truncated tail; the run simply re-runs
            raise ValueError(f"checkpoint {path} is corrupt at line {lineno}")
        rec = record_from_dict(d)
        if rec.status == "ok":
            out[(rec.sample_index, rec.mode)] = rec
    return out
