"""Controlled full-reservation ensembles (the paper's Section V).

During the paper's controlled experiments the whole machine was reserved
and filled with ``n_jobs`` simultaneous instances of the same application
at the same size and routing mode (e.g. eight 512-node MILC jobs on 4K
Theta nodes, Fig. 10; sixteen 256-node HACC jobs, Fig. 12).  Because the
jobs are each other's only background, the ensemble is resolved
**jointly**: every job's phase flows enter one fluid solve, so mutual
interference — and its dependence on the shared routing mode — emerges
from the equilibrium.

LDMS-style sampling distributes the accumulated counters over the
ensemble makespan at the collector's cadence, reproducing the per-router
scatter data behind the paper's Figs. 10 and 12.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.apps.base import Application
from repro.core.biases import AD0, RoutingMode
from repro.core.experiment import PhaseTiming, phase_slices, phase_times_from_result
from repro.faults import FaultSchedule
from repro.monitoring.ldms import LdmsCollector
from repro.mpi.env import RoutingEnv
from repro.network.counters import CounterBank
from repro.network.fluid import FlowSet, FluidParams, solve_fluid
from repro.scheduler.placement import FreeNodePool, make_placement
from repro.telemetry import Telemetry, resolve_telemetry
from repro.topology.dragonfly import DragonflyTopology
from repro.util import derive_rng


@dataclass
class EnsembleConfig:
    """A controlled same-app ensemble run."""

    app: Application
    n_jobs: int = 8
    n_nodes: int = 512
    mode: RoutingMode = AD0
    placement: str = "compact"
    seed: int = 7
    ldms_interval: float = 60.0
    params: FluidParams | None = None
    #: degraded-network state for the whole ensemble (empty = no-op)
    faults: "FaultSchedule | None" = None

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")


@dataclass
class EnsembleResult:
    """Joint outcome of one controlled ensemble."""

    config: EnsembleConfig
    job_nodes: list[np.ndarray]
    job_runtimes: np.ndarray
    job_timings: list[list[PhaseTiming]]
    bank: CounterBank
    ldms: LdmsCollector

    @property
    def makespan(self) -> float:
        """Slowest job's runtime; 0.0 for a (degenerate) empty ensemble."""
        if self.job_runtimes.size == 0:
            return 0.0
        return float(self.job_runtimes.max())

    def stalls_to_flits(self, cls: str) -> float:
        """System-aggregate stalls-to-flits ratio for a tile class."""
        return self.bank.snapshot().class_ratio(cls)

    def network_ratio_per_router(self) -> np.ndarray:
        """Per-router network-tile ratio (Fig. 11's sample values)."""
        snap = self.bank.snapshot()
        f = sum(snap.flits[c] for c in ("rank1", "rank2", "rank3"))
        s = sum(snap.stalls[c] for c in ("rank1", "rank2", "rank3"))
        return np.divide(s, f, out=np.zeros_like(s), where=f > 0)

    def job_local_ratio(self, job: int, top: DragonflyTopology) -> float:
        """One job's AutoPerf-style local network stalls-to-flits ratio.

        This is what an instrumented job inside the controlled ensemble
        would have reported — the "controlled" samples of Fig. 11.
        """
        return self.bank.local_view(self.job_nodes[job]).network_ratio()


def run_ensemble(
    top: DragonflyTopology,
    cfg: EnsembleConfig,
    *,
    rng: np.random.Generator | None = None,
    telemetry: Telemetry | None = None,
) -> EnsembleResult:
    """Place and jointly resolve all jobs of the ensemble."""
    app = cfg.app
    tel = resolve_telemetry(telemetry)
    if cfg.n_jobs * cfg.n_nodes > top.n_nodes:
        raise ValueError(
            f"{cfg.n_jobs} x {cfg.n_nodes} nodes exceed the machine "
            f"({top.n_nodes} nodes)"
        )
    rng = rng or derive_rng(cfg.seed, "ensemble", app.name, cfg.n_jobs, cfg.n_nodes, cfg.mode.name)
    env = RoutingEnv.uniform(cfg.mode)
    # placement/counters stay on the pristine structure; the joint solve
    # sees the degraded capacities (strict no-op for an empty schedule)
    solve_top = top.with_faults(cfg.faults) if cfg.faults is not None else top

    pool = FreeNodePool(top)
    job_nodes = [
        make_placement(cfg.placement, top, cfg.n_nodes, rng, pool=pool)
        for _ in range(cfg.n_jobs)
    ]
    job_phases = [app.phases(nodes, rng) for nodes in job_nodes]
    n_phases = len(job_phases[0])
    n_iter = app.n_iterations(cfg.n_nodes)

    bank = CounterBank(top)
    per_iter = np.zeros(cfg.n_jobs)
    job_timings: list[list[PhaseTiming]] = [[] for _ in range(cfg.n_jobs)]

    # two traffic classes (p2p, a2a) per job, all mapped to the same mode
    modes = []
    for _ in range(cfg.n_jobs):
        modes.extend(env.modes_list())

    for p in range(n_phases):
        parts: list[FlowSet] = []
        job_slices: list[tuple[int, list[tuple[str, int, int]], int]] = []
        cursor = 0
        spread = 0.0
        for j in range(cfg.n_jobs):
            phase = job_phases[j][p]
            fl, slices = phase_slices(phase, base_class=2 * j)
            job_slices.append((j, slices, cursor))
            parts.append(fl)
            cursor += fl.n
            spread = max(spread, phase.spread_time)
        flows = FlowSet.concat(parts)
        t0 = time.perf_counter() if tel.enabled else 0.0
        res = solve_fluid(
            solve_top,
            flows,
            modes,
            rng=rng,
            params=cfg.params,
            min_duration=spread,
            telemetry=tel,
        )
        res.accumulate_counters(bank, top)
        if tel.enabled:
            if tel.metrics.enabled:
                tel.metrics.counter(
                    "ensemble_phases_total", "jointly solved ensemble phases"
                ).inc()
            tel.event(
                "ensemble.phase",
                app=app.name,
                phase=p,
                jobs=cfg.n_jobs,
                flows=flows.n,
                converged=res.converged,
                residual=res.residual,
                residual_mean=res.residual_mean,
                wall_ms=(time.perf_counter() - t0) * 1e3,
            )
        for j, slices, offset in job_slices:
            phase = job_phases[j][p]
            pt = phase_times_from_result(phase, res, slices, offset=offset)
            job_timings[j].append(pt)
            compute = phase.compute_time * float(rng.lognormal(0.0, 0.004))
            per_iter[j] += compute + pt.comm_time

    noise = rng.lognormal(0.0, 0.008, size=cfg.n_jobs)
    job_runtimes = per_iter * n_iter * noise

    # scale the per-phase counter increments by the iteration count, then
    # spread them over the makespan for the LDMS view
    bank.scale(n_iter)

    ldms_bank = CounterBank(top)
    ldms = LdmsCollector(ldms_bank, interval=cfg.ldms_interval)
    makespan = float(job_runtimes.max())
    n_samples = max(1, int(np.ceil(makespan / cfg.ldms_interval)))
    for k in range(n_samples):
        ldms_bank.merge(bank, fraction=1.0 / n_samples)
        ldms.sample(time=(k + 1) * cfg.ldms_interval)

    tel.event(
        "ensemble.end",
        app=app.name,
        jobs=cfg.n_jobs,
        mode=cfg.mode.name,
        makespan_s=makespan,
        runtime_min_s=float(job_runtimes.min()),
        runtime_max_s=float(job_runtimes.max()),
    )
    return EnsembleResult(
        config=cfg,
        job_nodes=job_nodes,
        job_runtimes=job_runtimes,
        job_timings=job_timings,
        bank=bank,
        ldms=ldms,
    )
