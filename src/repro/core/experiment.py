"""Production / isolated / controlled run harness.

This is the reproduction of the paper's Section III methodology: run an
application at a job size, under a routing-mode setting, against sampled
production background congestion (or none, for isolated runs), many
times, with AutoPerf attached.

Pairing: sample ``i`` of every mode shares the same placement, background
scenario, and intensity draw (same derived RNG streams), so mode
comparisons are paired exactly as the paper's repeated A/B runs over the
same four-month production window aimed to be.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.apps.base import Application
from repro.core import checkpoint as ckpt
from repro.core.biases import AD0, AD3, RoutingMode
from repro.core.metrics import SampleStats, remove_outliers
from repro.faults import FaultSchedule, NetworkPartitionedError
from repro.guard import GuardPolicy, InvariantViolation, RunTimeoutError
from repro.guard.bundle import RingTraceWriter, write_bundle
from repro.guard.context import RunGuard, use_guard
from repro.monitoring.autoperf import AutoPerf, AutoPerfReport
from repro.mpi.env import RoutingEnv
from repro.mpi.patterns import Phase, TrafficOp
from repro.network.counters import CounterBank
from repro.network.fluid import FlowSet, FluidParams, FluidResult, solve_fluid
from repro.scheduler.background import BackgroundModel, BackgroundScenario
from repro.scheduler.placement import groups_spanned, make_placement
from repro.telemetry import MultiTraceWriter, Telemetry, resolve_telemetry
from repro.telemetry.series import CadenceRecorder, CounterSeries
from repro.topology.dragonfly import DragonflyTopology
from repro.util import derive_rng

#: fixed software overhead charged per posted message (MPI_Isend etc.)
POST_OVERHEAD = 0.4e-6


def mask_endpoint_background(
    top: DragonflyTopology, bg: np.ndarray, nodes: np.ndarray
) -> np.ndarray:
    """Zero the ambient utilization on the job's own NIC links.

    The batch scheduler gives a job exclusive nodes, so no background
    traffic injects or ejects at the job's NICs; the pooled background
    scenarios are built machine-wide and must be masked per placement.
    Network (rank-1/2/3) links stay shared, as on the real systems.
    """
    bg = np.asarray(bg).copy()
    nodes = np.asarray(nodes)
    bg[top.injection_link(nodes)] = 0.0
    bg[top.ejection_link(nodes)] = 0.0
    return bg


@dataclass
class PhaseTiming:
    """Resolved wall-clock pieces of one phase (per iteration)."""

    phase: Phase
    comm_time: float
    op_times: dict[str, float]
    op_calls: dict[str, float]
    op_bytes: dict[str, float]
    result: FluidResult


def phase_slices(phase: Phase, base_class: int = 0) -> tuple[FlowSet, list[tuple[str, int, int]]]:
    """Lower a phase to (flows, slices) with traffic classes offset.

    ``base_class`` offsets the TrafficOp class indices, so multiple jobs'
    phases can be concatenated into one joint solve (each job owning a
    (p2p, a2a) class pair).  Slice tags are ``"p2p"`` / ``"coll<i>"``.
    """
    parts: list[FlowSet] = []
    slices: list[tuple[str, int, int]] = []
    cursor = 0
    if phase.p2p is not None and phase.p2p.flows.n:
        fl = phase.p2p.flows.with_class(base_class + int(TrafficOp.P2P))
        parts.append(fl)
        slices.append(("p2p", cursor, cursor + fl.n))
        cursor += fl.n
    for i, coll in enumerate(phase.collectives):
        if not coll.flows.n:
            continue
        fl = coll.flows.with_class(base_class + int(coll.traffic_op))
        parts.append(fl)
        slices.append((f"coll{i}", cursor, cursor + fl.n))
        cursor += fl.n
    return FlowSet.concat(parts), slices


def phase_times_from_result(
    phase: Phase,
    res: FluidResult,
    slices: list[tuple[str, int, int]],
    *,
    offset: int = 0,
) -> PhaseTiming:
    """Convert a (possibly joint) solve into one phase's MPI-op times.

    ``offset`` shifts the slice windows into the combined result when the
    solve covered several jobs' flows.
    """
    n_ranks = 0
    if phase.p2p is not None and phase.p2p.flows.n:
        n_ranks = int(np.unique(phase.p2p.flows.src).size)
    for coll in phase.collectives:
        if coll.flows.n:
            n_ranks = max(n_ranks, int(np.unique(coll.flows.src).size))

    op_times: dict[str, float] = {}
    op_calls: dict[str, float] = {}
    op_bytes: dict[str, float] = {}

    def _add(op: str, t: float, calls: float, nbytes: float) -> None:
        op_times[op] = op_times.get(op, 0.0) + t
        op_calls[op] = op_calls.get(op, 0.0) + calls
        op_bytes[op] = op_bytes.get(op, 0.0) + nbytes

    comm_time = 0.0
    for tag, s0, s1 in slices:
        start, stop = offset + s0, offset + s1
        f_time = res.flow_time[start:stop]
        f_lat = res.flow_latency[start:stop]
        f_lat_amb = res.flow_latency_ambient[start:stop]
        f_lat_worst = res.flow_latency_worst[start:stop]
        if tag == "p2p":
            spec = phase.p2p
            t_bw = float(f_time.max()) if f_time.size else 0.0
            # exposed message latency is queueing behind *other* traffic;
            # waiting on the phase's own burst is the bandwidth term, of
            # which overlapped exchanges hide a fraction behind compute
            if f_lat_amb.size == 0:
                t_lat = 0.0
            elif spec.latency_stat == "p90":
                t_lat = spec.exposed_messages * float(np.percentile(f_lat_amb, 90))
            else:
                t_lat = spec.exposed_messages * float(f_lat_amb.mean())
            t_wait = (1.0 - spec.overlap_fraction) * t_bw + t_lat
            t_post = spec.messages_per_rank * POST_OVERHEAD
            # calls and bytes are reported per rank, as AutoPerf does
            _add(spec.wait_op, t_wait, spec.messages_per_rank, 0.0)
            _add(
                spec.post_op,
                t_post,
                spec.messages_per_rank,
                float(spec.flows.nbytes.sum()) / max(n_ranks, 1),
            )
            comm_time += t_wait + t_post
        else:
            coll = phase.collectives[int(tag[4:])]
            if f_lat.size == 0:
                t_rounds = 0.0
            elif coll.sync == "global":
                # every round waits for the slowest participant's slowest
                # packet (the paper's V-D point about collectives); the
                # partner pattern rotates per round, so the sustained
                # per-round cost is a high percentile, not the single
                # unluckiest pair
                t_rounds = coll.rounds * float(np.percentile(f_lat_worst, 99))
            else:
                t_rounds = coll.rounds * float(f_lat.mean())
            if f_time.size == 0:
                t_bw = 0.0
            elif coll.sync == "pairwise":
                # pairwise rounds pipeline past each other, so stragglers
                # of different rounds overlap: a high percentile, not the
                # absolute worst flow, sets the pace
                t_bw = float(np.percentile(f_time, 90))
            else:
                t_bw = float(f_time.max())
            t_coll = t_rounds + t_bw
            _add(coll.op, t_coll, coll.calls, coll.calls * coll.msg_bytes)
            comm_time += t_coll

    return PhaseTiming(
        phase=phase,
        comm_time=comm_time,
        op_times=op_times,
        op_calls=op_calls,
        op_bytes=op_bytes,
        result=res,
    )


def resolve_phase(
    top: DragonflyTopology,
    phase: Phase,
    env: RoutingEnv,
    *,
    background_util: np.ndarray | None,
    rng: np.random.Generator,
    params: FluidParams | None = None,
    telemetry: Telemetry | None = None,
) -> PhaseTiming:
    """Solve one phase and convert the equilibrium into MPI-op times."""
    flows, slices = phase_slices(phase)
    res = solve_fluid(
        top,
        flows,
        env.modes_list(),
        background_util=background_util,
        rng=rng,
        params=params,
        min_duration=phase.spread_time,
        telemetry=telemetry,
    )
    return phase_times_from_result(phase, res, slices)


@dataclass
class RunRecord:
    """One application run's outcome."""

    app: str
    mode: str
    n_nodes: int
    placement: str
    groups: int
    runtime: float
    report: AutoPerfReport
    background_intensity: float
    sample_index: int
    #: ``"ok"`` or ``"error"``; error records carry a NaN runtime, an
    #: empty report, and the exception text in :attr:`error`, so one
    #: failed run never aborts its campaign.
    status: str = "ok"
    error: str = ""
    #: executions it took to produce this record (>1 after transient
    #: solver-non-convergence retries)
    attempts: int = 1
    #: fluid-solver diagnostics aggregated over the run's phases: did
    #: every phase solve converge, how many did not, and the worst final
    #: residuals (max / mean |Δx|) seen across them.
    solver_converged: bool = True
    solver_nonconverged_phases: int = 0
    solver_max_residual: float = 0.0
    solver_max_residual_mean: float = 0.0
    solver_iterations: int = 0
    #: cadence-sampled counter/latency series (opt-in via
    #: ``Telemetry.series``); ``None`` — the default — keeps records and
    #: checkpoints byte-identical to unobserved campaigns
    series: CounterSeries | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def mpi_time(self) -> float:
        return self.report.mpi_time

    @property
    def mpi_fraction(self) -> float:
        return self.report.mpi_fraction


def solver_diagnostics(timings: list[PhaseTiming]) -> dict:
    """Aggregate per-phase fluid diagnostics for a run (RunRecord fields)."""
    results = [t.result for t in timings]
    nonconv = [r for r in results if not r.converged]
    return {
        "solver_converged": not nonconv,
        "solver_nonconverged_phases": len(nonconv),
        "solver_max_residual": max((r.residual for r in results), default=0.0),
        "solver_max_residual_mean": max((r.residual_mean for r in results), default=0.0),
        "solver_iterations": max((r.iterations for r in results), default=0),
    }


def run_app_once(
    top: DragonflyTopology,
    app: Application,
    nodes: np.ndarray,
    env: RoutingEnv,
    *,
    background_util: np.ndarray | None = None,
    rng: np.random.Generator,
    params: FluidParams | None = None,
    collect_counters: bool = True,
    telemetry: Telemetry | None = None,
    series_recorder: CadenceRecorder | None = None,
) -> tuple[float, AutoPerfReport, list[PhaseTiming]]:
    """One run: resolve each phase once, scale by iterations, add noise.

    Returns (runtime seconds, AutoPerf report, per-phase timings).

    ``series_recorder`` opts into cadence sampling: each resolved phase
    contributes its counter deltas at its position on the run's
    per-iteration sim-time axis, and the recorder is finalized against
    the run's aggregate counter totals (so the series windows sum to the
    end-of-run aggregate exactly).
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    P = nodes.size
    n_iter = app.n_iterations(P)
    phases = app.phases(nodes, rng)

    autoperf = AutoPerf(app.name, P)
    bank = CounterBank(top) if collect_counters else None

    per_iter = 0.0
    timings: list[PhaseTiming] = []
    prev_f = prev_s = 0.0
    for phase in phases:
        pt = resolve_phase(
            top,
            phase,
            env,
            background_util=background_util,
            rng=rng,
            params=params,
            telemetry=telemetry,
        )
        timings.append(pt)
        # compute-time jitter: OS/core-spec noise, a fraction of a percent
        compute = phase.compute_time * float(rng.lognormal(0.0, 0.004))
        per_iter += compute + pt.comm_time
        for op, t in pt.op_times.items():
            autoperf.record_op(
                op,
                calls=pt.op_calls.get(op, 0.0) * n_iter,
                nbytes=pt.op_bytes.get(op, 0.0) * n_iter,
                time=t * n_iter,
            )
        if bank is not None:
            pt.result.accumulate_counters(bank, top)
        if series_recorder is not None:
            if bank is not None:
                snap = bank.snapshot()
                f, s = snap.total_flits(), snap.total_stalls()
            else:
                f, s = prev_f, prev_s
            series_recorder.add(per_iter, f - prev_f, s - prev_s)
            prev_f, prev_s = f, s
            series_recorder.observe_latency(pt.result.flow_latency)

    # run-level multiplicative noise (I/O, startup, residual OS noise)
    runtime = per_iter * n_iter * float(rng.lognormal(0.0, 0.008))
    autoperf.add_total_time(runtime)
    if bank is not None:
        autoperf.attach_counters(bank.local_view(nodes))
    if series_recorder is not None:
        series_recorder.finalize(per_iter, prev_f, prev_s)
    return runtime, autoperf.finalize(), timings


@dataclass
class CampaignConfig:
    """A production-style measurement campaign.

    One campaign = one application at one job size, sampled ``samples``
    times per routing mode, with paired noise across modes.
    """

    app: Application
    n_nodes: int = 256
    modes: tuple[RoutingMode, ...] = (AD0, AD3)
    samples: int = 30
    placement: str = "production"
    background: str = "production"  # "production" | "isolated"
    seed: int = 2021
    scenario_pool: int = 12
    uniform_env: bool = True  # set both routing env vars to the mode
    params: FluidParams | None = None
    #: degraded-network state the whole campaign runs under (an empty
    #: schedule is a strict no-op: byte-identical results)
    faults: FaultSchedule | None = None
    #: executions allowed per run; >1 retries transient solver
    #: non-convergence with a freshly-derived RNG stream.  Partition
    #: errors are deterministic and never retried.
    max_attempts: int = 1
    #: seconds slept before retry ``k`` (scaled by ``k``); 0 = no sleep
    retry_backoff: float = 0.0
    #: run guardrails (deadlines, budgets, invariant checks, watchdog);
    #: ``None`` or an inactive policy is a strict no-op — results are
    #: byte-identical to an unguarded campaign (see docs/GUARDRAILS.md).
    #: Deliberately excluded from :func:`campaign_fingerprint`: guards
    #: change how failures are *bounded*, never what a healthy run
    #: produces, so guarded and unguarded checkpoints stay compatible.
    guard: GuardPolicy | None = None


def campaign_fingerprint(top: DragonflyTopology, cfg: CampaignConfig) -> dict:
    """Identity of a campaign for checkpoint compatibility checks.

    Everything that changes the produced records is included; retry and
    checkpointing knobs themselves are not (they only change *how* the
    records get produced).
    """
    return {
        "system": top.params.name,
        "app": cfg.app.name,
        "n_nodes": cfg.n_nodes,
        "modes": [m.name for m in cfg.modes],
        "samples": cfg.samples,
        "placement": cfg.placement,
        "background": cfg.background,
        "seed": cfg.seed,
        "scenario_pool": cfg.scenario_pool,
        "uniform_env": cfg.uniform_env,
        "faults": cfg.faults.describe() if cfg.faults else "",
    }


def _error_record(
    cfg: CampaignConfig,
    mode: RoutingMode,
    sample: int,
    groups: int,
    intensity: float,
    exc: BaseException,
    attempts: int,
) -> RunRecord:
    """Degenerate record for a run that raised: NaN runtime, empty report."""
    return RunRecord(
        app=cfg.app.name,
        mode=mode.name,
        n_nodes=cfg.n_nodes,
        placement=cfg.placement,
        groups=groups,
        runtime=float("nan"),
        report=AutoPerfReport(
            app=cfg.app.name, n_nodes=cfg.n_nodes, ops={}, total_time=0.0
        ),
        background_intensity=intensity,
        sample_index=sample,
        status="error",
        error=f"{type(exc).__name__}: {exc}",
        attempts=attempts,
    )


def resolve_scenarios(
    top: DragonflyTopology,
    cfg: CampaignConfig,
    background_model: BackgroundModel | None,
    scenarios: list[BackgroundScenario] | None,
) -> tuple[BackgroundModel | None, list[BackgroundScenario] | None]:
    """The ``(model, scenario pool)`` a campaign samples its background from.

    Pure function of ``(top, cfg)`` when no explicit model/pool is given
    (the pool RNG is derived from the campaign seed), so a worker process
    can rebuild the identical pool from the config alone.
    """
    if cfg.background == "production":
        bm = background_model or BackgroundModel(top)
        if scenarios is None:
            pool_rng = derive_rng(cfg.seed, "bgpool", cfg.app.name, cfg.n_nodes)
            scenarios = bm.build_pool(
                cfg.scenario_pool, pool_rng, reserve_nodes=cfg.n_nodes
            )
        return bm, scenarios
    if cfg.background != "isolated":
        raise ValueError(f"unknown background kind {cfg.background!r}")
    return None, None


def sample_draws(
    top: DragonflyTopology,
    cfg: CampaignConfig,
    i: int,
    bm: BackgroundModel | None,
    scenarios: list[BackgroundScenario] | None,
) -> tuple[np.ndarray, np.ndarray | None, float]:
    """Per-sample shared draws (paired across modes): placement, background.

    The sample stream is derived fresh from ``(seed, app, size,
    placement, i)`` on every call, so any process can reproduce sample
    ``i``'s context without replaying samples ``0..i-1``.
    """
    sample_rng = derive_rng(cfg.seed, cfg.app.name, cfg.n_nodes, cfg.placement, i)
    nodes = make_placement(cfg.placement, top, cfg.n_nodes, sample_rng)
    if cfg.background == "production":
        scenario = scenarios[int(sample_rng.integers(0, len(scenarios)))]
        intensity = bm.sample_intensity(sample_rng)
        bg = mask_endpoint_background(top, scenario.at_intensity(intensity), nodes)
    else:
        bg, intensity = None, 0.0
    return nodes, bg, intensity


def _write_guard_bundle(
    top: DragonflyTopology,
    cfg: CampaignConfig,
    policy: GuardPolicy | None,
    guard: RunGuard | None,
    ring: RingTraceWriter | None,
    label: str,
    sample: int,
    mode: RoutingMode,
    attempt: int,
    exc: BaseException,
    tel: Telemetry,
) -> None:
    """Best-effort diagnostics bundle for a guard-terminated run."""
    if policy is None or policy.bundle_dir is None:
        return
    path = write_bundle(
        policy.bundle_dir,
        label=label,
        reason={"type": type(exc).__name__, "message": str(exc)},
        fingerprint=campaign_fingerprint(top, cfg),
        rng_key={
            "seed": cfg.seed,
            "app": cfg.app.name,
            "n_nodes": cfg.n_nodes,
            "sample": sample,
            "mode": mode.name,
            "attempt": attempt,
        },
        policy=asdict(policy),
        events=ring.tail() if ring is not None else [],
        violations=list(guard.violations) if guard is not None else [],
        counters=tel.metrics.to_dict() if tel.metrics.enabled else {},
    )
    if path is not None:
        tel.event("guard.bundle", label=label, path=str(path))


def execute_run(
    top: DragonflyTopology,
    run_top: DragonflyTopology,
    cfg: CampaignConfig,
    i: int,
    mode: RoutingMode,
    nodes: np.ndarray,
    bg: np.ndarray | None,
    intensity: float,
    tel: Telemetry,
) -> RunRecord:
    """One campaign run: the retry loop, error isolation, and telemetry.

    This is the unit the parallel dispatcher fans out; its RNG stream is
    derived solely from ``(seed, app, size, sample, mode)``, so the
    record is identical no matter which process executes it or when.

    With an active :attr:`CampaignConfig.guard`, a :class:`RunGuard` is
    installed around the engines for the run's duration; budget/invariant
    failures are deterministic, so they are never retried — they become
    error-status records (plus a diagnostics bundle when configured).
    """
    app = cfg.app
    env = RoutingEnv.uniform(mode) if cfg.uniform_env else RoutingEnv(p2p_mode=mode)
    policy = cfg.guard if (cfg.guard is not None and cfg.guard.active) else None
    label = f"{app.name}-{mode.name}-s{i}"
    t0 = time.perf_counter() if tel.enabled else 0.0
    rec: RunRecord | None = None
    attempt = 0
    while rec is None:
        attempt += 1
        # attempt 1 uses the canonical paired stream; retries use
        # a fresh derivation so the transient draw changes
        key = (cfg.seed, app.name, cfg.n_nodes, i, mode.name)
        run_rng = (
            derive_rng(*key)
            if attempt == 1
            else derive_rng(*key, "retry", attempt)
        )
        guard: RunGuard | None = None
        ring: RingTraceWriter | None = None
        run_tel = tel
        if policy is not None:
            if policy.bundle_dir is not None:
                # capture the run's trailing events for the bundle without
                # requiring the campaign to persist full traces
                ring = RingTraceWriter(policy.bundle_events)
                run_tel = Telemetry(
                    trace=MultiTraceWriter([tel.trace, ring]), metrics=tel.metrics
                )
            guard = RunGuard(policy, telemetry=run_tel, label=label)
        # a fresh recorder per attempt: a retried run's series must
        # reflect only the attempt that produced the record
        recorder = CadenceRecorder(tel.series) if tel.series is not None else None
        try:
            with use_guard(guard):
                runtime, report, timings = run_app_once(
                    run_top,
                    app,
                    nodes,
                    env,
                    background_util=bg,
                    rng=run_rng,
                    params=cfg.params,
                    telemetry=run_tel,
                    series_recorder=recorder,
                )
        except NetworkPartitionedError as exc:
            # deterministic: retrying cannot help
            rec = _error_record(
                cfg, mode, i, groups_spanned(top, nodes), intensity, exc, attempt
            )
        except (RunTimeoutError, InvariantViolation) as exc:
            # budget exhaustion and broken conservation laws are
            # deterministic too: isolate, bundle, never retry
            rec = _error_record(
                cfg, mode, i, groups_spanned(top, nodes), intensity, exc, attempt
            )
            _write_guard_bundle(
                top, cfg, policy, guard, ring, label, i, mode, attempt, exc, tel
            )
        except Exception as exc:
            if attempt < cfg.max_attempts:
                if cfg.retry_backoff > 0:
                    time.sleep(cfg.retry_backoff * attempt)
                continue
            rec = _error_record(
                cfg, mode, i, groups_spanned(top, nodes), intensity, exc, attempt
            )
        else:
            diag = solver_diagnostics(timings)
            if not diag["solver_converged"] and attempt < cfg.max_attempts:
                if cfg.retry_backoff > 0:
                    time.sleep(cfg.retry_backoff * attempt)
                continue
            rec = RunRecord(
                app=app.name,
                mode=mode.name,
                n_nodes=cfg.n_nodes,
                placement=cfg.placement,
                groups=groups_spanned(top, nodes),
                runtime=runtime,
                report=report,
                background_intensity=intensity,
                sample_index=i,
                attempts=attempt,
                series=recorder.result if recorder is not None else None,
                **diag,
            )
    if tel.enabled:
        wall = time.perf_counter() - t0
        m = tel.metrics
        if m.enabled:
            m.counter("campaign_samples_total", "campaign runs executed").inc()
            if not rec.ok:
                m.counter(
                    "campaign_failures_total", "campaign runs ending in error"
                ).inc()
            m.histogram(
                "campaign_sample_seconds", "wall time per campaign run"
            ).observe(wall)
        tel.event(
            "campaign.sample",
            app=app.name,
            mode=mode.name,
            sample=i,
            status=rec.status,
            error=rec.error,
            attempts=rec.attempts,
            runtime_s=rec.runtime,
            mpi_time_s=rec.report.mpi_time,
            background_intensity=intensity,
            solver_converged=rec.solver_converged,
            solver_nonconverged_phases=rec.solver_nonconverged_phases,
            solver_max_residual=rec.solver_max_residual,
            wall_ms=wall * 1e3,
        )
    return rec


def prepare_checkpoint(
    checkpoint_path: str | None,
    top: DragonflyTopology,
    cfg: CampaignConfig,
    resume: bool,
) -> dict[tuple[int, str], RunRecord]:
    """Open (or resume) a campaign checkpoint; returns completed runs."""
    done: dict[tuple[int, str], RunRecord] = {}
    if checkpoint_path is None:
        return done
    fp = campaign_fingerprint(top, cfg)
    if resume and os.path.exists(checkpoint_path):
        # a crash mid-append may have torn the final line: truncate it
        # before reading, then atomically rewrite without error and
        # superseded records (a crash mid-rewrite keeps the old file)
        ckpt.repair_tail(checkpoint_path)
        done = ckpt.load_records(checkpoint_path, fp)
        ckpt.rewrite(checkpoint_path, fp, list(done.values()))
    else:
        ckpt.write_header(checkpoint_path, fp)
    return done


def emit_campaign_start(
    tel: Telemetry, cfg: CampaignConfig, done: dict, **extra
) -> None:
    """The ``campaign.start`` trace event (shared with the parallel path)."""
    tel.event(
        "campaign.start",
        app=cfg.app.name,
        n_nodes=cfg.n_nodes,
        modes=[m.name for m in cfg.modes],
        samples=cfg.samples,
        placement=cfg.placement,
        background=cfg.background,
        seed=cfg.seed,
        faults=cfg.faults.describe() if cfg.faults else "",
        resumed_runs=len(done),
        **extra,
    )


def emit_campaign_end(tel: Telemetry, cfg: CampaignConfig, records: list[RunRecord]) -> None:
    """The ``campaign.end`` trace event (shared with the parallel path)."""
    tel.event(
        "campaign.end",
        app=cfg.app.name,
        records=len(records),
        failed_runs=sum(1 for r in records if not r.ok),
        nonconverged_runs=sum(1 for r in records if not r.solver_converged),
    )


def _effective_jobs(jobs: int | None) -> int:
    """Resolve the worker count: explicit argument, else ``$REPRO_JOBS``."""
    if jobs is None:
        try:
            jobs = int(os.environ.get("REPRO_JOBS", "1") or "1")
        except ValueError:
            jobs = 1
    return max(1, int(jobs))


def run_campaign(
    top: DragonflyTopology,
    cfg: CampaignConfig,
    *,
    background_model: BackgroundModel | None = None,
    scenarios: list[BackgroundScenario] | None = None,
    telemetry: Telemetry | None = None,
    checkpoint_path: str | None = None,
    resume: bool = False,
    jobs: int | None = None,
    queue_dir: str | None = None,
) -> list[RunRecord]:
    """Run the campaign; returns one RunRecord per (mode, sample).

    A run that raises is isolated into an error-status record instead of
    aborting the sweep.  With ``checkpoint_path`` set, finished runs are
    appended to a JSONL file; ``resume=True`` loads compatible completed
    runs from it and skips re-executing them (records come out identical
    to an uninterrupted campaign, because each run's RNG stream is
    derived independently).

    ``jobs`` > 1 dispatches the runs over that many worker processes via
    :mod:`repro.parallel`; records, checkpoint bytes, and the resume
    behaviour are identical to serial execution (see docs/PARALLEL.md).
    ``jobs=None`` reads ``$REPRO_JOBS`` (default 1).

    ``queue_dir`` hands the runs to a shared-directory work queue
    instead: any number of ``repro worker --queue DIR`` processes on any
    number of hosts execute them, and this process coordinates and
    merges — falling back to the local pool if no worker ever shows up
    (see docs/DISTRIBUTED.md).  Results stay byte-identical either way.
    """
    if queue_dir is not None:
        from repro.dist.coordinator import run_campaign_distributed

        return run_campaign_distributed(
            top,
            cfg,
            queue_dir=queue_dir,
            background_model=background_model,
            scenarios=scenarios,
            telemetry=telemetry,
            checkpoint_path=checkpoint_path,
            resume=resume,
            jobs=jobs,
        )
    n_jobs = _effective_jobs(jobs)
    if n_jobs > 1:
        from repro.parallel.campaign import run_campaign_parallel

        return run_campaign_parallel(
            top,
            cfg,
            jobs=n_jobs,
            background_model=background_model,
            scenarios=scenarios,
            telemetry=telemetry,
            checkpoint_path=checkpoint_path,
            resume=resume,
        )

    # background scenarios are built against the pristine fabric (ambient
    # traffic predates the fault window); the job itself routes on the
    # degraded view
    run_top = top.with_faults(cfg.faults) if cfg.faults is not None else top
    done = prepare_checkpoint(checkpoint_path, top, cfg, resume)
    tel = resolve_telemetry(telemetry)
    emit_campaign_start(tel, cfg, done)
    bm, scenarios = resolve_scenarios(top, cfg, background_model, scenarios)

    records: list[RunRecord] = []
    for i in range(cfg.samples):
        nodes, bg, intensity = sample_draws(top, cfg, i, bm, scenarios)
        for mode in cfg.modes:
            prior = done.get((i, mode.name))
            if prior is not None:
                records.append(prior)
                continue
            rec = execute_run(top, run_top, cfg, i, mode, nodes, bg, intensity, tel)
            records.append(rec)
            if checkpoint_path is not None:
                ckpt.append_record(checkpoint_path, rec)
    emit_campaign_end(tel, cfg, records)
    return records


def runtimes_by_mode(records: list[RunRecord], *, filter_outliers: bool = True) -> dict[str, np.ndarray]:
    """Group runtimes by mode name, with the paper's outlier filter.

    Error-status records (NaN runtime) are excluded — a mode whose runs
    all failed still appears, with an empty array.
    """
    out: dict[str, np.ndarray] = {}
    for mode in sorted({r.mode for r in records}):
        v = np.array(
            [r.runtime for r in records if r.mode == mode and r.ok], dtype=np.float64
        )
        v = v[np.isfinite(v)]
        out[mode] = remove_outliers(v) if filter_outliers else v
    return out


def stats_by_mode(records: list[RunRecord]) -> dict[str, SampleStats]:
    """Mean/std/n per mode (Table II's left columns)."""
    return {m: SampleStats.from_values(v) for m, v in runtimes_by_mode(records).items()}
