"""Aries adaptive routing modes as shift/add bias parameters.

Section II-D of the paper: an adaptive routing mode is configured by a
**bias value which is a combination of shift and add** parameters (each
0..15).  When a packet must choose between its best minimal candidate and
its best non-minimal candidate, the router compares their (credit-based)
load estimates with the bias applied in favor of the minimal side::

    take minimal  iff  load_min <= (load_nonmin << shift) + add

The four vendor presets:

``AD0``
    shift=0, add=0 — equal bias; pure load comparison.  The Cray MPI
    default for all operations except ``MPI_Alltoall[v]``.
``AD1``
    *increasingly minimal* bias (Roweth et al.; US patent 9,577,918): the
    bias toward minimal grows as the packet takes more hops, so traffic
    may start non-minimal but is progressively herded onto minimal paths.
    We model the published behaviour as a shift schedule that ramps from
    0 to 2 over the first four hops.  Cray MPI uses AD1 for
    ``MPI_Alltoall[v]``.
``AD2``
    shift=0, add=4 — *weak* minimal bias (a constant 4-credit handicap to
    the non-minimal side).
``AD3``
    shift=2, add=0 — *strong* minimal bias: minimal-path load must exceed
    4x the non-minimal load before a non-minimal path is taken.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import check_in_range


@dataclass(frozen=True)
class RoutingMode:
    """An adaptive routing bias configuration.

    Attributes
    ----------
    name:
        Display name (``"AD0"`` .. ``"AD3"`` for vendor presets).
    shift:
        Left-shift applied to the non-minimal load in the comparison
        (i.e. minimal tolerated up to ``2**shift`` times the non-minimal
        load).  0..15.
    add:
        Constant credit handicap added to the non-minimal side.  0..15.
    hop_shift_schedule:
        Optional per-hop shift schedule for increasingly-minimal modes:
        element ``h`` is the shift applied to packets that have already
        taken ``h`` hops (the last element applies to all further hops).
        When set, ``shift`` is the schedule's final value.
    """

    name: str
    shift: int
    add: int
    hop_shift_schedule: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        check_in_range("shift", self.shift, 0, 15)
        check_in_range("add", self.add, 0, 15)
        if self.hop_shift_schedule is not None:
            if len(self.hop_shift_schedule) == 0:
                raise ValueError("hop_shift_schedule must be non-empty")
            for s in self.hop_shift_schedule:
                check_in_range("hop_shift_schedule entry", s, 0, 15)
            if self.hop_shift_schedule[-1] != self.shift:
                raise ValueError(
                    "shift must equal the final hop_shift_schedule entry "
                    f"({self.hop_shift_schedule[-1]}), got {self.shift}"
                )

    @property
    def multiplier(self) -> int:
        """Tolerated minimal/non-minimal load ratio, ``2**shift``."""
        return 1 << self.shift

    @property
    def increasing(self) -> bool:
        """Whether the bias grows with hops taken (AD1-style)."""
        return self.hop_shift_schedule is not None

    def shift_at_hop(self, hops_taken: int) -> int:
        """Shift in effect for a packet that has taken ``hops_taken`` hops."""
        if self.hop_shift_schedule is None:
            return self.shift
        sched = self.hop_shift_schedule
        return sched[min(int(hops_taken), len(sched) - 1)]

    @property
    def mean_shift(self) -> float:
        """Hop-averaged shift — the fluid solver's source-decision proxy.

        The fluid solver makes one routing decision per flow (at the
        source), so increasingly-minimal modes are represented by the mean
        of their schedule, which lands AD1 between AD0 and AD3 exactly as
        the paper observes (Fig. 9).
        """
        if self.hop_shift_schedule is None:
            return float(self.shift)
        return float(sum(self.hop_shift_schedule)) / len(self.hop_shift_schedule)

    def describe(self) -> str:
        """One-line description for reports."""
        kind = "increasingly-minimal" if self.increasing else (
            "no bias" if (self.shift == 0 and self.add == 0) else
            f"minimal bias x{self.multiplier}+{self.add}"
        )
        return f"{self.name} (shift={self.shift}, add={self.add}, {kind})"

    def __str__(self) -> str:
        return self.name


#: ADAPTIVE_0 — the historical system default: equal bias.
AD0 = RoutingMode("AD0", shift=0, add=0)

#: ADAPTIVE_1 — increasingly-minimal bias (Cray MPI's Alltoall default).
AD1 = RoutingMode("AD1", shift=2, add=0, hop_shift_schedule=(0, 0, 1, 1, 2))

#: ADAPTIVE_2 — weak minimal bias (add=4).
AD2 = RoutingMode("AD2", shift=0, add=4)

#: ADAPTIVE_3 — strong minimal bias (minimal until 4x non-minimal load).
AD3 = RoutingMode("AD3", shift=2, add=0)

#: The four vendor presets in mode-number order.
VENDOR_MODES: tuple[RoutingMode, ...] = (AD0, AD1, AD2, AD3)

_BY_NAME = {m.name: m for m in VENDOR_MODES}


def mode_by_name(name: str) -> RoutingMode:
    """Look up a vendor mode by name (``"AD0"``..``"AD3"``) or number.

    Accepts the bare mode number as used by the
    ``MPICH_GNI_ROUTING_MODE`` environment variable (``"0"``..``"3"``)
    and the full ``ADAPTIVE_n`` spelling.
    """
    key = name.strip().upper()
    if key in _BY_NAME:
        return _BY_NAME[key]
    if key.startswith("ADAPTIVE_"):
        key = "AD" + key[len("ADAPTIVE_"):]
        if key in _BY_NAME:
            return _BY_NAME[key]
    if key.isdigit() and f"AD{key}" in _BY_NAME:
        return _BY_NAME[f"AD{key}"]
    raise KeyError(f"unknown routing mode {name!r}; expected AD0..AD3")


def custom_bias(shift: int, add: int) -> RoutingMode:
    """Build a non-preset bias, for ablation sweeps over (shift, add)."""
    return RoutingMode(f"S{shift}A{add}", shift=shift, add=add)
