"""Statistical toolkit used throughout the paper's analysis.

Z-score normalization of runtimes (Figs. 3, 4, 7, 9), complementary CDFs
(Fig. 1), probability-density estimates (Figs. 2, 11), percentile
summaries (Fig. 14), and the +-3-sigma outlier filter of Section III-A.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats


def zscore(values: np.ndarray) -> np.ndarray:
    """Z-score normalization: 0 is the mean; positive is slower.

    Degenerate inputs (fewer than 2 values, or zero spread) normalize to
    zeros rather than dividing by zero.
    """
    v = np.asarray(values, dtype=np.float64)
    if v.size < 2:
        return np.zeros_like(v)
    sd = v.std(ddof=1)
    if sd == 0:
        return np.zeros_like(v)
    return (v - v.mean()) / sd


def zscore_pooled(values: np.ndarray, pool: np.ndarray) -> np.ndarray:
    """Z-score ``values`` using the mean/std of ``pool``.

    The paper normalizes AD0 and AD3 runtimes of a (app, size) config
    *jointly* so the two modes are comparable on one axis.
    """
    pool = np.asarray(pool, dtype=np.float64)
    v = np.asarray(values, dtype=np.float64)
    sd = pool.std(ddof=1) if pool.size > 1 else 0.0
    if sd == 0:
        return np.zeros_like(v)
    return (v - pool.mean()) / sd


def remove_outliers(values: np.ndarray, *, n_sigma: float = 3.0) -> np.ndarray:
    """Drop samples beyond ``n_sigma`` standard deviations of the mean.

    Section III-A: extreme congestion events (incast, transient errors)
    are removed at +-3 sigma of normalized runtimes; the paper reports
    <0.6% of samples removed.
    """
    v = np.asarray(values, dtype=np.float64)
    if v.size < 3:
        return v
    z = zscore(v)
    return v[np.abs(z) <= n_sigma]


def ccdf(values: np.ndarray, weights: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Complementary CDF: fraction of (weighted) mass at >= each value."""
    v = np.asarray(values, dtype=np.float64)
    w = np.ones_like(v) if weights is None else np.asarray(weights, dtype=np.float64)
    order = np.argsort(v)
    v_sorted, w_sorted = v[order], w[order]
    uniq, starts = np.unique(v_sorted, return_index=True)
    tail = w_sorted[::-1].cumsum()[::-1]
    return uniq, tail[starts] / w.sum()


def density(values: np.ndarray, grid: np.ndarray | None = None, *, n_grid: int = 200) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian-KDE probability density (the PDF curves of Figs. 2/11)."""
    v = np.asarray(values, dtype=np.float64)
    if v.size < 3 or v.std() == 0:
        # degenerate: a spike at the mean
        g = grid if grid is not None else np.linspace(v.min() - 1, v.max() + 1, n_grid)
        d = np.zeros_like(g)
        d[np.argmin(np.abs(g - v.mean()))] = 1.0
        return g, d
    kde = stats.gaussian_kde(v)
    if grid is None:
        lo, hi = v.min(), v.max()
        pad = 0.15 * (hi - lo + 1e-12)
        grid = np.linspace(lo - pad, hi + pad, n_grid)
    return grid, kde(grid)


#: the percentiles reported in Fig. 14
LATENCY_PERCENTILES: tuple[float, ...] = (5, 25, 50, 75, 90, 95, 99, 99.9, 99.99)


def percentile_summary(
    values: np.ndarray,
    percentiles: tuple[float, ...] = LATENCY_PERCENTILES,
) -> dict[float, float]:
    """Named percentiles of a sample, NaNs dropped."""
    v = np.asarray(values, dtype=np.float64)
    v = v[np.isfinite(v)]
    if v.size == 0:
        return {p: float("nan") for p in percentiles}
    out = np.percentile(v, percentiles)
    return {p: float(x) for p, x in zip(percentiles, out)}


def percent_change(before: dict[float, float], after: dict[float, float]) -> dict[float, float]:
    """Per-percentile % change, negative = improvement (lower after)."""
    return {
        p: 100.0 * (after[p] - before[p]) / before[p] if before[p] else float("nan")
        for p in before
    }


@dataclass(frozen=True)
class SampleStats:
    """Mean/std/count summary of one sample set."""

    mean: float
    std: float
    n: int
    p95: float

    #: fewer finite samples than this and the summary is flagged
    #: unreliable (outlier filtering + failed runs can hollow a mode out)
    MIN_RELIABLE_N = 4

    @property
    def reliable(self) -> bool:
        return self.n >= self.MIN_RELIABLE_N and np.isfinite(self.mean)

    @classmethod
    def from_values(cls, values: np.ndarray) -> "SampleStats":
        """Summarize a sample; NaN/inf entries (failed runs) are dropped.

        Empty input yields an all-NaN, ``n=0`` summary rather than a
        numpy warning/crash; check :attr:`reliable` before leaning on
        the numbers.
        """
        v = np.asarray(values, dtype=np.float64)
        v = v[np.isfinite(v)]
        if v.size == 0:
            return cls(float("nan"), float("nan"), 0, float("nan"))
        return cls(
            mean=float(v.mean()),
            std=float(v.std(ddof=1)) if v.size > 1 else 0.0,
            n=int(v.size),
            p95=float(np.percentile(v, 95)),
        )

    def improvement_over(self, other: "SampleStats") -> float:
        """% improvement of this sample's mean relative to ``other``.

        Positive means this sample is faster (lower mean), matching the
        paper's "% of improvement in time, AD3 over AD0" column.
        """
        if not np.isfinite(other.mean) or other.mean == 0:
            return float("nan")
        return 100.0 * (other.mean - self.mean) / other.mean
