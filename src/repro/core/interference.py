"""Pairwise job-interference analysis.

Section II-C of the paper discusses how a job's exposure to *other*
jobs' traffic depends on sizes, placements, and routing; its related
work cites the "watch out for the bully" study (Yang et al., SC'16).
This module quantifies that directly: run a victim application twice —
once alone, once sharing the machine with a single aggressor job of a
given traffic archetype — and report the slowdown.  Sweeping archetypes
and routing modes yields the interference matrix facilities use to
reason about co-scheduling, and shows how the AD3 default shrinks the
bully effect for latency-bound victims.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import Application
from repro.core.biases import RoutingMode
from repro.core.experiment import mask_endpoint_background, run_app_once
from repro.mpi.env import RoutingEnv
from repro.network.fluid import FluidParams, solve_fluid
from repro.scheduler.background import _job_flows
from repro.scheduler.jobs import Job
from repro.scheduler.placement import FreeNodePool, production_placement
from repro.topology.dragonfly import DragonflyTopology
from repro.util import derive_rng

#: aggressor traffic archetypes swept by default
DEFAULT_AGGRESSORS = ("stencil", "alltoall", "bisection", "io_incast")


@dataclass(frozen=True)
class InterferenceEntry:
    """One (victim, aggressor, mode) measurement."""

    victim: str
    aggressor: str
    mode: str
    baseline: float
    disturbed: float

    @property
    def slowdown(self) -> float:
        """Disturbed / baseline runtime (1.0 = no interference)."""
        return self.disturbed / self.baseline if self.baseline > 0 else float("nan")


def _aggressor_field(
    top: DragonflyTopology,
    archetype: str,
    aggressor_nodes: np.ndarray,
    env: RoutingEnv,
    rng: np.random.Generator,
) -> np.ndarray:
    """Steady-state utilization field of one aggressor job."""
    job = Job(n_nodes=aggressor_nodes.size, duration_hours=1.0, archetype=archetype)
    p2p, a2a = _job_flows(job, aggressor_nodes, rng)
    from repro.network.fluid import FlowSet

    flows = FlowSet.concat([p2p.with_class(0), a2a.with_class(1)])
    res = solve_fluid(
        top,
        flows,
        env.modes_list(),
        rng=rng,
        params=FluidParams(k_min=3, k_nonmin=2, n_iter=5),
        fixed_duration=1.0,
    )
    return np.clip(res.link_raw_util, 0.0, 0.9)


def interference_matrix(
    top: DragonflyTopology,
    victim: Application,
    *,
    modes: tuple[RoutingMode, ...],
    aggressors: tuple[str, ...] = DEFAULT_AGGRESSORS,
    victim_nodes: int = 256,
    aggressor_nodes: int = 512,
    seed: int = 77,
) -> list[InterferenceEntry]:
    """Victim slowdown per (aggressor archetype, routing mode).

    Both the victim and the aggressor run under the same default mode
    (the facility-default question).  The placements are fixed across
    all cells so only the traffic archetype and the mode vary.
    """
    rng_place = derive_rng(seed, "interference-placement", victim.name)
    pool = FreeNodePool(top)
    v_nodes = production_placement(top, victim_nodes, rng_place, pool=pool)
    a_nodes = production_placement(top, aggressor_nodes, rng_place, pool=pool)

    entries: list[InterferenceEntry] = []
    for mode in modes:
        env = RoutingEnv.uniform(mode)
        baseline, _, _ = run_app_once(
            top,
            victim,
            v_nodes,
            env,
            rng=derive_rng(seed, "interference-victim", mode.name),
            collect_counters=False,
        )
        for archetype in aggressors:
            field = _aggressor_field(
                top,
                archetype,
                a_nodes,
                env,
                derive_rng(seed, "interference-aggressor", archetype, mode.name),
            )
            bg = mask_endpoint_background(top, field, v_nodes)
            disturbed, _, _ = run_app_once(
                top,
                victim,
                v_nodes,
                env,
                background_util=bg,
                rng=derive_rng(seed, "interference-victim", mode.name),
                collect_counters=False,
            )
            entries.append(
                InterferenceEntry(
                    victim=victim.name,
                    aggressor=archetype,
                    mode=mode.name,
                    baseline=baseline,
                    disturbed=disturbed,
                )
            )
    return entries


def format_matrix(entries: list[InterferenceEntry]) -> str:
    """Render the matrix as text: rows = aggressors, columns = modes."""
    modes = sorted({e.mode for e in entries})
    aggressors = sorted({e.aggressor for e in entries})
    by_key = {(e.aggressor, e.mode): e for e in entries}
    width = max(len(a) for a in aggressors)
    header = " " * width + "  " + "  ".join(f"{m:>8s}" for m in modes)
    lines = [header]
    for a in aggressors:
        cells = []
        for m in modes:
            e = by_key.get((a, m))
            cells.append(f"{e.slowdown:8.3f}" if e else " " * 8)
        lines.append(f"{a.ljust(width)}  " + "  ".join(cells))
    return "\n".join(lines)
