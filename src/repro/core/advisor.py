"""Per-application routing-bias recommendations.

The paper's motivating question: *"Are there fundamental application and
system characteristics that prefer a minimal or non-minimal bias in
dragonfly networks?"* — answered in Section II-E and validated in
Sections IV-V:

* **latency-bound** codes (small-message collectives, blocking small
  receives) prefer a strong minimal bias (AD3): the shortest path and
  the least exposure to congestion;
* **bisection-bandwidth-bound** codes (large messages over global
  random pairings) prefer equal bias (AD0): non-minimal paths multiply
  the usable global bandwidth;
* **injection/message-rate-bound** codes are NIC-limited, so the routing
  mode is irrelevant;
* **compute-bound** codes are insensitive altogether.

:func:`recommend` classifies an AutoPerf profile with those rules and
returns the mode the study's findings endorse, defaulting — as the
facilities now do — to AD3 for anything mixed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.biases import AD0, AD3, RoutingMode
from repro.monitoring.autoperf import AutoPerfReport
from repro.util import KiB

#: interfaces that synchronize globally and are paced by message latency
LATENCY_OPS = ("MPI_Allreduce", "MPI_Barrier", "MPI_Bcast", "MPI_Reduce")

#: interfaces that carry bulk payloads
BULK_OPS = ("MPI_Alltoall", "MPI_Alltoallv", "MPI_Isend", "MPI_Send", "MPI_Allgather")

#: payload sizes bounding the latency- and bandwidth-bound regimes
SMALL_MSG = 4 * KiB
LARGE_MSG = 512 * KiB


@dataclass(frozen=True)
class Recommendation:
    """A routing-bias recommendation with its reasoning."""

    profile_class: str
    mode: RoutingMode
    rationale: str
    latency_share: float
    bulk_share: float
    mpi_fraction: float

    def __str__(self) -> str:
        return (
            f"{self.profile_class}: use {self.mode.name} — {self.rationale} "
            f"(MPI {self.mpi_fraction:.0%}, latency-bound share "
            f"{self.latency_share:.0%}, large-message share {self.bulk_share:.0%})"
        )


def _shares(report: AutoPerfReport) -> tuple[float, float, float]:
    """(latency share, sparse-bulk share, dense-a2a share) of MPI time.

    Wait-class interfaces carry no payload of their own; they inherit the
    character of the posting interfaces' payloads (a Wait on 1.2 MB
    Isends is bandwidth time, a blocking Recv of 2 KB pipeline messages
    is latency time).  Sparse bulk (large point-to-point sends over
    arbitrary pairings, the HACC case) is separated from dense symmetric
    Alltoall[v] bulk (the Rayleigh case): only the former concentrates
    pathologically under minimal routing, because a uniform alltoall
    already balances the minimal bundles.
    """
    mpi = report.mpi_time
    if mpi <= 0:
        return 0.0, 0.0, 0.0
    # average payload of the posting ops, to classify the wait ops
    post_bytes = [
        report.ops[op].avg_bytes
        for op in ("MPI_Isend", "MPI_Send", "MPI_Irecv")
        if op in report.ops and report.ops[op].calls > 0
    ]
    post_avg = max(post_bytes) if post_bytes else 0.0

    lat = 0.0
    bulk_p2p = 0.0
    bulk_a2a = 0.0
    for op, rec in report.ops.items():
        if op in LATENCY_OPS and rec.avg_bytes <= SMALL_MSG:
            lat += rec.time
        elif op.startswith("MPI_Alltoall") and rec.avg_bytes >= LARGE_MSG:
            bulk_a2a += rec.time
        elif op in BULK_OPS and rec.avg_bytes >= LARGE_MSG:
            bulk_p2p += rec.time
        elif op in ("MPI_Wait", "MPI_Waitall", "MPI_Recv"):
            if post_avg >= LARGE_MSG:
                bulk_p2p += rec.time
            elif post_avg <= 64 * KiB:
                lat += 0.5 * rec.time  # partially latency-exposed waits
    return lat / mpi, bulk_p2p / mpi, bulk_a2a / mpi


def classify(report: AutoPerfReport) -> str:
    """Network-boundness class of an AutoPerf profile (Section II-E)."""
    if report.mpi_fraction < 0.10:
        return "compute_bound"
    lat_share, bulk_p2p, bulk_a2a = _shares(report)
    if bulk_p2p > 0.5 and lat_share < 0.25:
        return "bisection_bound"
    if bulk_a2a > 0.5 and lat_share < 0.25:
        return "dense_alltoall"
    if lat_share > 0.3 and lat_share > bulk_p2p + bulk_a2a:
        return "latency_bound"
    return "mixed"


def recommend(report: AutoPerfReport) -> Recommendation:
    """Recommend a routing bias for an application profile."""
    cls = classify(report)
    lat_share, bulk_p2p, bulk_a2a = _shares(report)
    bulk_share = bulk_p2p + bulk_a2a
    if cls == "compute_bound":
        return Recommendation(
            cls,
            AD3,
            "communication is negligible; any mode works, and the "
            "facility default (AD3) keeps system-wide congestion low",
            lat_share,
            bulk_share,
            report.mpi_fraction,
        )
    if cls == "bisection_bound":
        return Recommendation(
            cls,
            AD0,
            "large messages over global pairings need the extra path "
            "diversity of non-minimal routes (the HACC case)",
            lat_share,
            bulk_share,
            report.mpi_fraction,
        )
    if cls == "dense_alltoall":
        return Recommendation(
            cls,
            AD3,
            "a dense symmetric alltoall already balances the minimal "
            "bundles, so the mode barely matters (the Rayleigh case); "
            "the facility default keeps system-wide congestion low",
            lat_share,
            bulk_share,
            report.mpi_fraction,
        )
    if cls == "latency_bound":
        return Recommendation(
            cls,
            AD3,
            "small synchronizing messages are paced by per-hop queueing; "
            "strong minimal bias shortens and stabilizes their paths "
            "(the MILC case)",
            lat_share,
            bulk_share,
            report.mpi_fraction,
        )
    return Recommendation(
        cls,
        AD3,
        "mixed profile: the study found strong minimal bias the best "
        "default on production dragonflies",
        lat_share,
        bulk_share,
        report.mpi_fraction,
    )
