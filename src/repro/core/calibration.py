"""Calibration harness: score model constants against the paper targets.

The congestion and policy constants documented in DESIGN.md were tuned
so the AD0 production baseline lands near the paper's Table II.  This
module makes that process reproducible and maintainable: it runs a
compact probe campaign (MILC and HACC, the two apps that anchor the
result's sign structure), extracts the observables the calibration
targets, and scores them — so any change to the model can be checked
against the paper with one call, and constants can be re-derived with
:func:`sweep_parameter`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.apps import HACC, MILC
from repro.core.experiment import CampaignConfig, run_campaign, stats_by_mode
from repro.network.congestion import CongestionModel
from repro.network.fluid import FluidParams
from repro.scheduler.background import BackgroundModel
from repro.topology.dragonfly import DragonflyTopology
from repro.util import derive_rng


@dataclass(frozen=True)
class CalibrationTarget:
    """One paper observable with an acceptance band."""

    name: str
    paper: float
    lo: float
    hi: float

    def check(self, measured: float) -> bool:
        return self.lo <= measured <= self.hi


#: the anchors of the reproduction (Table II and Table I)
PAPER_TARGETS: tuple[CalibrationTarget, ...] = (
    CalibrationTarget("milc_ad0_mean_s", 542.6, lo=420.0, hi=700.0),
    CalibrationTarget("milc_improvement_pct", 11.0, lo=3.0, hi=22.0),
    CalibrationTarget("milc_mpi_fraction", 0.52, lo=0.35, hi=0.65),
    CalibrationTarget("hacc_improvement_pct", -2.7, lo=-12.0, hi=-0.1),
)


def probe_observables(
    top: DragonflyTopology,
    *,
    samples: int = 14,
    seed: int = 4242,
    params: FluidParams | None = None,
    jobs: int | None = None,
) -> dict[str, float]:
    """Run the probe campaigns and extract the calibration observables.

    ``jobs`` fans the probe campaigns' runs over worker processes (see
    :func:`repro.core.experiment.run_campaign`); the observables are
    identical for any value.
    """
    bm = BackgroundModel(top)
    scenarios = bm.build_pool(
        6, derive_rng(seed, "calibration-pool"), reserve_nodes=512
    )
    out: dict[str, float] = {}
    for app_cls, tag in ((MILC, "milc"), (HACC, "hacc")):
        cfg = CampaignConfig(app=app_cls(), samples=samples, seed=seed, params=params)
        recs = run_campaign(
            top, cfg, background_model=bm, scenarios=scenarios, jobs=jobs
        )
        st = stats_by_mode(recs)
        out[f"{tag}_ad0_mean_s"] = st["AD0"].mean
        # improvement as the *median paired* delta: sample i of both
        # modes shares placement/background, so pairing cancels the
        # scenario-level variance that makes the mean-of-means swing
        by_sample: dict[int, dict[str, float]] = {}
        for r in recs:
            by_sample.setdefault(r.sample_index, {})[r.mode] = r.runtime
        deltas = [
            100.0 * (d["AD0"] - d["AD3"]) / d["AD0"]
            for d in by_sample.values()
            if "AD0" in d and "AD3" in d
        ]
        out[f"{tag}_improvement_pct"] = float(np.median(deltas)) if deltas else float("nan")
        out[f"{tag}_mpi_fraction"] = float(
            np.mean([r.mpi_fraction for r in recs if r.mode == "AD0"])
        )
    return out


def score_against_paper(
    observables: dict[str, float],
    targets: tuple[CalibrationTarget, ...] = PAPER_TARGETS,
) -> list[tuple[CalibrationTarget, float, bool]]:
    """(target, measured, within-band) for each calibration anchor."""
    out = []
    for t in targets:
        measured = observables.get(t.name, float("nan"))
        out.append((t, measured, np.isfinite(measured) and t.check(measured)))
    return out


def format_score(scored: list[tuple[CalibrationTarget, float, bool]]) -> str:
    """Human-readable calibration scorecard."""
    lines = [f"{'observable':24s} {'paper':>8s} {'band':>16s} {'measured':>9s}  ok"]
    for t, measured, ok in scored:
        lines.append(
            f"{t.name:24s} {t.paper:8.1f} [{t.lo:6.1f}, {t.hi:6.1f}] "
            f"{measured:9.2f}  {'yes' if ok else 'NO'}"
        )
    return "\n".join(lines)


#: constants exposed to single-parameter sweeps
_SWEEPABLE = {
    "stall_kappa",
    "stall_cap",
    "buffer_bytes",
    "queue_delay_cap_factor",
    "backpressure_beta",
    "backpressure_inj_coupling",
}


def sweep_parameter(
    top: DragonflyTopology,
    name: str,
    values: list[float],
    *,
    samples: int = 6,
    seed: int = 4242,
    jobs: int | None = None,
) -> dict[float, dict[str, float]]:
    """Probe observables across values of one congestion constant.

    Returns ``{value: observables}``; use it to see how sensitive the
    paper anchors are to a constant before changing it.
    """
    if name not in _SWEEPABLE:
        raise KeyError(f"unknown sweepable constant {name!r}; have {sorted(_SWEEPABLE)}")
    out: dict[float, dict[str, float]] = {}
    for value in values:
        cm = dataclasses.replace(CongestionModel(), **{name: value})
        params = FluidParams(congestion=cm)
        out[value] = probe_observables(
            top, samples=samples, seed=seed, params=params, jobs=jobs
        )
    return out
