"""Result analysis: the paper's tables and figure data, from RunRecords.

Turns campaign output into the exact artifacts the paper reports:

* :func:`improvement_table` — Table II (mean, std, % improvement in
  runtime and in MPI time, sample counts);
* :func:`normalized_by_mode` — the z-scored runtime clouds of
  Figs. 3/4/7/9;
* :func:`group_span_series` — runtimes organized by dragonfly groups
  spanned (Figs. 3/4);
* :func:`breakdown_rows` — the stacked Compute/top-MPI decomposition of
  Figs. 5/8;
* :func:`ratio_samples` — per-run local stalls-to-flits ratios for the
  scenario PDFs of Fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.experiment import RunRecord, runtimes_by_mode
from repro.core.metrics import SampleStats, remove_outliers, zscore_pooled


@dataclass(frozen=True)
class ImprovementRow:
    """One Table-II row."""

    app: str
    base: SampleStats
    test: SampleStats
    base_mode: str
    test_mode: str
    time_improvement: float
    mpi_improvement: float
    n_runs: int

    def format(self) -> str:
        return (
            f"{self.app:14s} {self.base.mean:7.1f} ± {self.base.std:5.1f}  "
            f"{self.test.mean:7.1f} ± {self.test.std:5.1f}  "
            f"{self.time_improvement:+6.1f}%  {self.mpi_improvement:+6.1f}%  "
            f"{self.n_runs:4d}"
        )


def improvement_table(
    records: list[RunRecord],
    *,
    base_mode: str = "AD0",
    test_mode: str = "AD3",
) -> list[ImprovementRow]:
    """Build Table II from a mixed-app record list."""
    rows: list[ImprovementRow] = []
    for app in sorted({r.app for r in records}):
        app_recs = [r for r in records if r.app == app]
        by_mode = runtimes_by_mode(app_recs)
        if base_mode not in by_mode or test_mode not in by_mode:
            continue
        base = SampleStats.from_values(by_mode[base_mode])
        test = SampleStats.from_values(by_mode[test_mode])
        mpi_base = remove_outliers(
            np.array([r.mpi_time for r in app_recs if r.mode == base_mode and r.ok])
        )
        mpi_test = remove_outliers(
            np.array([r.mpi_time for r in app_recs if r.mode == test_mode and r.ok])
        )
        mpi_imp = (
            100.0 * (mpi_base.mean() - mpi_test.mean()) / mpi_base.mean()
            if mpi_base.size and mpi_base.mean() > 0
            else float("nan")
        )
        rows.append(
            ImprovementRow(
                app=app,
                base=base,
                test=test,
                base_mode=base_mode,
                test_mode=test_mode,
                time_improvement=test.improvement_over(base),
                mpi_improvement=mpi_imp,
                n_runs=base.n + test.n,
            )
        )
    return rows


def normalized_by_mode(records: list[RunRecord]) -> dict[str, np.ndarray]:
    """Z-scored runtimes per mode, normalized jointly per app config.

    Each (app, n_nodes) config is z-scored over the pooled runtimes of
    all its modes, then samples are grouped by mode — exactly how
    Figs. 3/7/9 put different apps on one normalized axis.
    """
    out: dict[str, list[float]] = {}
    configs = sorted({(r.app, r.n_nodes) for r in records})
    for app, n in configs:
        sel = [r for r in records if r.app == app and r.n_nodes == n]
        pool = np.array([r.runtime for r in sel])
        for r in sel:
            z = zscore_pooled(np.array([r.runtime]), pool)[0]
            out.setdefault(r.mode, []).append(float(z))
    return {m: np.array(v) for m, v in out.items()}


def group_span_series(
    records: list[RunRecord],
) -> dict[int, dict[str, np.ndarray]]:
    """Normalized runtimes keyed by groups spanned (Figs. 3/4).

    Returns ``{groups: {mode: zscores}}``; normalization is per
    (app, n_nodes) pool as in :func:`normalized_by_mode`.
    """
    out: dict[int, dict[str, list[float]]] = {}
    configs = sorted({(r.app, r.n_nodes) for r in records})
    for app, n in configs:
        sel = [r for r in records if r.app == app and r.n_nodes == n]
        pool = np.array([r.runtime for r in sel])
        for r in sel:
            z = float(zscore_pooled(np.array([r.runtime]), pool)[0])
            out.setdefault(r.groups, {}).setdefault(r.mode, []).append(z)
    return {
        g: {m: np.array(v) for m, v in modes.items()} for g, modes in out.items()
    }


def breakdown_rows(
    records: list[RunRecord], *, top_n: int = 3
) -> dict[str, list[dict[str, float]]]:
    """Per-run stacked Compute/MPI decompositions, grouped by mode.

    The bar stacks of Figs. 5 and 8: one dict per run with ``Compute``,
    the app's top interfaces, and ``Other_MPI``.
    """
    # determine the app-wide top interfaces from the pooled profile
    op_totals: dict[str, float] = {}
    for r in records:
        for op, rec in r.report.ops.items():
            op_totals[op] = op_totals.get(op, 0.0) + rec.time
    tops = sorted(op_totals, key=op_totals.get, reverse=True)[:top_n]

    out: dict[str, list[dict[str, float]]] = {}
    for r in sorted(records, key=lambda r: (r.mode, r.sample_index)):
        row = {"Compute": r.report.compute_time}
        other = r.report.mpi_time
        for op in tops:
            t = r.report.ops[op].time if op in r.report.ops else 0.0
            row[op] = t
            other -= t
        row["Other_MPI"] = max(other, 0.0)
        out.setdefault(r.mode, []).append(row)
    return out


def ratio_samples(
    records: list[RunRecord], cls: str | None = None
) -> dict[str, np.ndarray]:
    """Per-run local stalls-to-flits ratios grouped by mode (Fig. 11).

    ``cls`` picks one tile class; ``None`` aggregates the 40 network
    tiles as the paper's Fig. 11 does.
    """
    out: dict[str, list[float]] = {}
    for r in records:
        if r.report.counters is None:
            continue
        if cls is None:
            v = r.report.counters.network_ratio()
        else:
            v = r.report.counters.class_ratio(cls)
        out.setdefault(r.mode, []).append(v)
    return {m: np.array(v) for m, v in out.items()}
