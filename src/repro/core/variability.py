"""Run-to-run variability analysis.

Reduced variability is half of the paper's headline ("not only improved
mean performance ... but also reduced run-to-run variability").  This
module summarizes and *explains* a campaign's variability:

* :func:`variability_report` — per-mode dispersion statistics
  (coefficient of variation, IQR, tail spread);
* :func:`explain_variability` — how much of the runtime variance each
  recorded factor accounts for (background intensity, placement span),
  via simple univariate regressions over the campaign records.  On the
  real systems this attribution required months of production sampling;
  here it drops out of the paired records.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.experiment import RunRecord, runtimes_by_mode


@dataclass(frozen=True)
class DispersionStats:
    """Dispersion summary of one mode's runtimes."""

    mode: str
    n: int
    mean: float
    std: float
    cov: float  # coefficient of variation, std/mean
    iqr: float
    tail_spread: float  # p95 - p5

    @classmethod
    def from_values(cls, mode: str, values: np.ndarray) -> "DispersionStats":
        v = np.asarray(values, dtype=np.float64)
        if v.size < 2:
            return cls(mode, int(v.size), float(v.mean()) if v.size else np.nan, 0.0, 0.0, 0.0, 0.0)
        p5, p25, p75, p95 = np.percentile(v, [5, 25, 75, 95])
        mean = float(v.mean())
        std = float(v.std(ddof=1))
        return cls(
            mode=mode,
            n=int(v.size),
            mean=mean,
            std=std,
            cov=std / mean if mean else np.nan,
            iqr=float(p75 - p25),
            tail_spread=float(p95 - p5),
        )


def variability_report(records: list[RunRecord]) -> dict[str, DispersionStats]:
    """Per-mode dispersion statistics (with the paper's outlier filter)."""
    return {
        mode: DispersionStats.from_values(mode, values)
        for mode, values in runtimes_by_mode(records).items()
    }


def _r_squared(x: np.ndarray, y: np.ndarray) -> float:
    """Fraction of the variance of ``y`` explained by a linear fit on ``x``."""
    if x.size < 3 or np.std(x) == 0 or np.std(y) == 0:
        return 0.0
    r = float(np.corrcoef(x, y)[0, 1])
    return r * r


def explain_variability(records: list[RunRecord]) -> dict[str, dict[str, float]]:
    """Attribute each mode's runtime variance to the recorded factors.

    Returns, per mode, the univariate R² of background intensity and of
    placement span (groups), plus the unexplained residual fraction
    (bounded below by 0; the factors are not orthogonal, so the parts
    need not sum to 1).
    """
    out: dict[str, dict[str, float]] = {}
    for mode in sorted({r.mode for r in records}):
        sel = [r for r in records if r.mode == mode]
        y = np.array([r.runtime for r in sel])
        intensity = np.array([r.background_intensity for r in sel])
        groups = np.array([r.groups for r in sel], dtype=float)
        r2_i = _r_squared(intensity, y)
        r2_g = _r_squared(groups, y)
        out[mode] = {
            "background_intensity": r2_i,
            "groups_spanned": r2_g,
            "residual": max(0.0, 1.0 - max(r2_i, r2_g)),
        }
    return out


def format_variability(records: list[RunRecord]) -> str:
    """Human-readable variability + attribution summary."""
    rep = variability_report(records)
    attr = explain_variability(records)
    lines = [
        f"{'mode':6s} {'n':>4s} {'mean':>9s} {'std':>8s} {'CoV':>7s} "
        f"{'IQR':>8s} {'p95-p5':>8s}  {'R2(intensity)':>13s} {'R2(groups)':>10s}"
    ]
    for mode, d in sorted(rep.items()):
        a = attr[mode]
        lines.append(
            f"{mode:6s} {d.n:4d} {d.mean:9.1f} {d.std:8.1f} {d.cov:7.3f} "
            f"{d.iqr:8.1f} {d.tail_spread:8.1f}  "
            f"{a['background_intensity']:13.2f} {a['groups_spanned']:10.2f}"
        )
    return "\n".join(lines)
