"""The paper's primary contribution as a library.

This subpackage turns the study of Section III-V into reusable pieces:

* :mod:`~repro.core.biases` — the four Aries adaptive routing modes
  (AD0..AD3) expressed as shift/add bias parameters, plus custom biases;
* :mod:`~repro.core.policy` — the biased minimal-vs-non-minimal
  comparison, in per-packet (packet simulator) and fractional-split
  (fluid solver) forms;
* :mod:`~repro.core.experiment` — production / isolated / controlled run
  harness producing :class:`RunRecord` samples;
* :mod:`~repro.core.ensembles` — full-machine-reservation ensembles;
* :mod:`~repro.core.metrics` / :mod:`~repro.core.analysis` — the paper's
  statistical toolkit (z-scores, CCDFs, stalls-to-flits ratios, +-3-sigma
  outlier removal, improvement tables);
* :mod:`~repro.core.advisor` — per-application routing-bias
  recommendations from AutoPerf profiles (the "best practices" engine);
* :mod:`~repro.core.facility` — facility-level default-change studies
  (Figs. 13-14).
"""

from repro.core.biases import RoutingMode, AD0, AD1, AD2, AD3, VENDOR_MODES, mode_by_name
from repro.core.policy import (
    PolicyParams,
    minimal_preferred,
    split_fraction,
    effective_shift,
)

__all__ = [
    "RoutingMode",
    "AD0",
    "AD1",
    "AD2",
    "AD3",
    "VENDOR_MODES",
    "mode_by_name",
    "PolicyParams",
    "minimal_preferred",
    "split_fraction",
    "effective_shift",
]

from repro.core.metrics import (
    zscore,
    zscore_pooled,
    remove_outliers,
    ccdf,
    density,
    percentile_summary,
    percent_change,
    SampleStats,
    LATENCY_PERCENTILES,
)
from repro.core.experiment import (
    CampaignConfig,
    RunRecord,
    run_app_once,
    run_campaign,
    runtimes_by_mode,
    stats_by_mode,
    resolve_phase,
    mask_endpoint_background,
)
from repro.core.ensembles import EnsembleConfig, EnsembleResult, run_ensemble
from repro.core.facility import (
    WindowConfig,
    WindowResult,
    DefaultChangeStudy,
    simulate_production_window,
    run_default_change_study,
)
from repro.core.advisor import Recommendation, classify, recommend
from repro.core.analysis import (
    ImprovementRow,
    improvement_table,
    normalized_by_mode,
    group_span_series,
    breakdown_rows,
    ratio_samples,
)

__all__ += [
    "zscore",
    "zscore_pooled",
    "remove_outliers",
    "ccdf",
    "density",
    "percentile_summary",
    "percent_change",
    "SampleStats",
    "LATENCY_PERCENTILES",
    "CampaignConfig",
    "RunRecord",
    "run_app_once",
    "run_campaign",
    "runtimes_by_mode",
    "stats_by_mode",
    "resolve_phase",
    "mask_endpoint_background",
    "EnsembleConfig",
    "EnsembleResult",
    "run_ensemble",
    "WindowConfig",
    "WindowResult",
    "DefaultChangeStudy",
    "simulate_production_window",
    "run_default_change_study",
    "Recommendation",
    "classify",
    "recommend",
    "ImprovementRow",
    "improvement_table",
    "normalized_by_mode",
    "group_span_series",
    "breakdown_rows",
    "ratio_samples",
]

from repro.core.awr import AwrConfig, AwrRunResult, run_app_awr, run_app_static
from repro.core.reporting import (
    bar_chart,
    grouped_bar_chart,
    density_plot,
    series_plot,
    histogram,
)

__all__ += [
    "AwrConfig",
    "AwrRunResult",
    "run_app_awr",
    "run_app_static",
    "bar_chart",
    "grouped_bar_chart",
    "density_plot",
    "series_plot",
    "histogram",
]

from repro.core.interference import (
    InterferenceEntry,
    interference_matrix,
    format_matrix,
)

__all__ += ["InterferenceEntry", "interference_matrix", "format_matrix"]

from repro.core.variability import (
    DispersionStats,
    variability_report,
    explain_variability,
    format_variability,
)

__all__ += [
    "DispersionStats",
    "variability_report",
    "explain_variability",
    "format_variability",
]

from repro.core.calibration import (
    CalibrationTarget,
    PAPER_TARGETS,
    probe_observables,
    score_against_paper,
    format_score,
    sweep_parameter,
)

__all__ += [
    "CalibrationTarget",
    "PAPER_TARGETS",
    "probe_observables",
    "score_against_paper",
    "format_score",
    "sweep_parameter",
]
