"""Terminal rendering of the paper's figure types.

The benchmarks print tables; this module renders the figure *shapes* —
density curves (Figs. 2/11), grouped scatter summaries (Figs. 3/7/9),
bar charts (Figs. 6/14), and time series (Fig. 13) — as fixed-width
text, so a reproduction run can be inspected without a plotting stack.
"""

from __future__ import annotations

import numpy as np

from repro.core.metrics import density

#: glyph ramp for intensity plots
_RAMP = " .:-=+*#%@"


def hbar(value: float, vmax: float, width: int = 40, fill: str = "#") -> str:
    """A horizontal bar scaled to ``vmax``."""
    if vmax <= 0:
        return ""
    n = int(round(width * max(value, 0.0) / vmax))
    return fill * min(n, width)


def bar_chart(
    labels: list[str],
    values: list[float],
    *,
    width: int = 40,
    fmt: str = "{:.2f}",
) -> str:
    """Labeled horizontal bar chart (Fig. 6 / Fig. 14 style).

    >>> print(bar_chart(["a", "b"], [1.0, 2.0], width=4))
    a  ##    1.00
    b  ####  2.00
    """
    vmax = max(values) if values else 1.0
    label_w = max(len(l) for l in labels) if labels else 0
    lines = []
    for label, value in zip(labels, values):
        bar = hbar(value, vmax, width)
        lines.append(f"{label.ljust(label_w)}  {bar.ljust(width)}  {fmt.format(value)}")
    return "\n".join(lines)


def grouped_bar_chart(
    labels: list[str],
    series: dict[str, list[float]],
    *,
    width: int = 40,
    fmt: str = "{:.2f}",
) -> str:
    """Several series side by side per label (AD0 vs AD3 comparisons)."""
    vmax = max((max(v) for v in series.values() if v), default=1.0)
    label_w = max(len(l) for l in labels) if labels else 0
    name_w = max(len(n) for n in series) if series else 0
    lines = []
    for i, label in enumerate(labels):
        for name, vals in series.items():
            bar = hbar(vals[i], vmax, width)
            prefix = label.ljust(label_w) if name == next(iter(series)) else " " * label_w
            lines.append(
                f"{prefix}  {name.ljust(name_w)}  {bar.ljust(width)}  {fmt.format(vals[i])}"
            )
    return "\n".join(lines)


def density_plot(
    samples: dict[str, np.ndarray],
    *,
    width: int = 60,
    height: int = 10,
    xlabel: str = "",
) -> str:
    """Overlaid probability-density curves (the Figs. 2/11 panels).

    Each series is rendered with its own glyph; the y-axis is the
    normalized density.
    """
    if not samples:
        return "(no data)"
    allvals = np.concatenate([np.asarray(v, dtype=float) for v in samples.values()])
    lo, hi = float(allvals.min()), float(allvals.max())
    pad = 0.1 * (hi - lo + 1e-12)
    grid = np.linspace(lo - pad, hi + pad, width)

    glyphs = "#*o+x%"
    curves = {}
    dmax = 0.0
    for name, vals in samples.items():
        _, d = density(np.asarray(vals, dtype=float), grid=grid)
        curves[name] = d
        dmax = max(dmax, float(d.max()))
    if dmax <= 0:
        dmax = 1.0

    canvas = [[" "] * width for _ in range(height)]
    for gi, (name, d) in enumerate(curves.items()):
        glyph = glyphs[gi % len(glyphs)]
        rows = np.clip(((d / dmax) * (height - 1)).round().astype(int), 0, height - 1)
        for x, r in enumerate(rows):
            if d[x] / dmax > 0.02:
                canvas[height - 1 - r][x] = glyph

    lines = ["".join(row) for row in canvas]
    lines.append("-" * width)
    lines.append(f"{lo:<15.4g}{'':^{max(width - 30, 0)}}{hi:>15.4g}")
    if xlabel:
        lines.append(xlabel.center(width))
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(curves)
    )
    lines.append(legend)
    return "\n".join(lines)


def series_plot(
    t: np.ndarray,
    values: dict[str, np.ndarray],
    *,
    width: int = 60,
    height: int = 8,
    ylabel: str = "",
) -> str:
    """Time-series strip chart (the Fig. 13 LDMS panels)."""
    if not values:
        return "(no data)"
    glyphs = "#*o+"
    vmax = max(float(np.max(v)) for v in values.values())
    vmax = vmax if vmax > 0 else 1.0
    n = len(t)
    canvas = [[" "] * width for _ in range(height)]
    for gi, (name, v) in enumerate(values.items()):
        glyph = glyphs[gi % len(glyphs)]
        xs = np.clip((np.arange(n) / max(n - 1, 1) * (width - 1)).astype(int), 0, width - 1)
        ys = np.clip((np.asarray(v) / vmax * (height - 1)).round().astype(int), 0, height - 1)
        for x, y in zip(xs, ys):
            canvas[height - 1 - y][x] = glyph
    lines = ["".join(row) for row in canvas]
    lines.append("-" * width)
    legend = "   ".join(f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(values))
    if ylabel:
        legend = f"{ylabel}   {legend}"
    lines.append(legend)
    return "\n".join(lines)


def histogram(values: np.ndarray, *, bins: int = 20, width: int = 40) -> str:
    """A vertical-bar histogram rendered horizontally."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return "(no data)"
    counts, edges = np.histogram(values, bins=bins)
    vmax = counts.max() if counts.max() > 0 else 1
    lines = []
    for c, lo, hi in zip(counts, edges[:-1], edges[1:]):
        lines.append(f"{lo:>10.4g} - {hi:<10.4g} {hbar(c, vmax, width)} {c}")
    return "\n".join(lines)
