"""Facility-level default-routing-change studies (Figs. 13 and 14).

Motivated by the paper's findings, ALCF and NERSC changed the production
default routing mode on Theta and Cori to AD3.  The paper then compared
one week of LDMS data before and after the change (Fig. 13: system-wide
stalls, flits, and stalls-to-flits ratio) and sampled every NIC's mean
packet-pair latency ~100 times in each window (Fig. 14: percentile
changes — 20-30% tail reductions).

:func:`simulate_production_window` reproduces one such window: each LDMS
interval samples a fresh production job mix, routes it with the window's
default :class:`~repro.mpi.env.RoutingEnv` through the fluid engine in
rate mode, accumulates tile counters, and reads per-NIC mean latencies
from the two cumulative NIC counters exactly as the paper's pipeline
does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.biases import AD3, RoutingMode
from repro.core.metrics import (
    percent_change,
    percentile_summary,
)
from repro.faults import FaultSchedule
from repro.monitoring.ldms import LdmsCollector
from repro.monitoring.nic import NicLatencyCounters
from repro.mpi.env import RoutingEnv
from repro.network.congestion import PACKET_BYTES
from repro.network.counters import CounterBank
from repro.network.fluid import FlowSet, FluidParams, solve_fluid
from repro.scheduler.background import _job_flows
from repro.scheduler.placement import FreeNodePool, production_placement
from repro.scheduler.workload import WorkloadModel
from repro.telemetry import Telemetry, resolve_telemetry
from repro.topology.dragonfly import DragonflyTopology
from repro.util import derive_rng


@dataclass
class WindowConfig:
    """One production observation window."""

    env: RoutingEnv
    n_intervals: int = 100
    interval: float = 60.0
    target_fill: float = 0.88
    seed: int = 1234
    params: FluidParams | None = None
    #: degraded-network state over the window.  Timed specs flip as the
    #: window's simulated clock (``interval`` seconds per step) crosses
    #: their start/end; an empty schedule is a strict no-op.
    faults: "FaultSchedule | None" = None


@dataclass
class WindowResult:
    """Counters and latency samples from one window."""

    config: WindowConfig
    ldms: LdmsCollector
    nic_latency_samples: np.ndarray  # pooled per-NIC per-interval means (s)

    def series(self) -> dict[str, np.ndarray]:
        """System-wide network-tile flits/stalls/ratio series (Fig. 13)."""
        return self.ldms.series()

    def latency_percentiles(self) -> dict[float, float]:
        """Percentiles of per-NIC mean latency (Fig. 14 input)."""
        return percentile_summary(self.nic_latency_samples)


def simulate_production_window(
    top: DragonflyTopology,
    cfg: WindowConfig,
    *,
    workload: WorkloadModel | None = None,
    trace=None,
    telemetry: Telemetry | None = None,
) -> WindowResult:
    """Simulate one week-like window of production under a default mode.

    ``trace`` optionally supplies a
    :class:`repro.scheduler.simulator.ScheduleTrace`: the window then
    follows the trace's time-correlated machine states (jobs persist
    across consecutive intervals, as in a real LDMS week) instead of
    sampling an independent job mix per interval.
    """
    workload = workload or WorkloadModel(top)
    tel = resolve_telemetry(telemetry)
    params = cfg.params or FluidParams(k_min=3, k_nonmin=2, n_iter=5)
    bank = CounterBank(top)
    ldms = LdmsCollector(bank, interval=cfg.interval)
    nic = NicLatencyCounters(top)
    samples: list[np.ndarray] = []

    for i in range(cfg.n_intervals):
        t0 = time.perf_counter() if tel.enabled else 0.0
        # note: the routing mode is *not* part of the key, so two windows
        # with the same seed see identical job mixes and load levels
        rng = derive_rng(cfg.seed, "facility", i)
        p2p_parts: list[FlowSet] = []
        a2a_parts: list[FlowSet] = []
        if trace is not None:
            idx = min(i, len(trace.active_at) - 1)
            placed = [
                (sj.job, sj.nodes) for sj in trace.active_at[idx] if sj.nodes is not None
            ]
        else:
            jobs = workload.sample_active_jobs(rng, target_fill=cfg.target_fill)
            pool = FreeNodePool(top)
            placed = []
            for job in jobs:
                if pool.n_free < job.n_nodes:
                    continue
                placed.append(
                    (job, production_placement(top, job.n_nodes, rng, pool=pool))
                )
        for job, nodes in placed:
            p2p, a2a = _job_flows(job, nodes, rng)
            if p2p.n:
                p2p_parts.append(p2p.with_class(0))
            if a2a.n:
                a2a_parts.append(a2a.with_class(1))
        # per-interval load level varies (day/night, job churn).  The
        # archetype rates are busy-phase bursts; a week-long window
        # averages over duty cycles, so the sustained level is lower
        # than the campaign background's per-run intensity.
        level = float(rng.lognormal(np.log(0.45), 0.35))
        flows = FlowSet.concat(p2p_parts + a2a_parts).scaled(level * cfg.interval)

        solve_top = (
            top.with_faults(cfg.faults, at_time=i * cfg.interval)
            if cfg.faults is not None
            else top
        )
        res = solve_fluid(
            solve_top,
            flows,
            cfg.env.modes_list(),
            rng=rng,
            params=params,
            fixed_duration=cfg.interval,
            telemetry=tel,
        )
        res.accumulate_counters(bank, top)
        ldms.sample()

        before = nic.snapshot()
        pairs = np.maximum(res.flows.nbytes / PACKET_BYTES, 1.0)
        nic.record_flows(res.flows, res.flow_latency, pairs)
        means = NicLatencyCounters.window_mean_latency(before, nic.snapshot())
        samples.append(means[np.isfinite(means)])

        if tel.enabled:
            if tel.metrics.enabled:
                tel.metrics.counter(
                    "facility_intervals_total", "production intervals simulated"
                ).inc()
            tel.event(
                "facility.interval",
                interval=i,
                jobs=len(placed),
                flows=flows.n,
                load_level=level,
                converged=res.converged,
                residual_mean=res.residual_mean,
                wall_ms=(time.perf_counter() - t0) * 1e3,
            )

    # the loop samples on every whole boundary, so this only emits when a
    # trace-driven window leaves sub-cadence residue (flagged partial)
    ldms.finalize(cfg.n_intervals * cfg.interval)
    pooled = np.concatenate(samples) if samples else np.zeros(0)
    tel.event(
        "facility.window",
        intervals=cfg.n_intervals,
        mode=cfg.env.p2p_mode.name,
        latency_samples=int(pooled.size),
    )
    return WindowResult(config=cfg, ldms=ldms, nic_latency_samples=pooled)


@dataclass
class DefaultChangeStudy:
    """Before/after comparison of a facility default change."""

    before: WindowResult
    after: WindowResult

    def latency_change(self) -> dict[float, float]:
        """Per-percentile % change in mean latency (negative = faster)."""
        return percent_change(
            self.before.latency_percentiles(), self.after.latency_percentiles()
        )

    def counter_change(self) -> dict[str, float]:
        """Relative change of window-total flits, stalls, and ratio."""
        b, a = self.before.series(), self.after.series()
        out = {}
        for key in ("flits", "stalls"):
            tb, ta = b[key].sum(), a[key].sum()
            out[key] = float((ta - tb) / tb) if tb else float("nan")
        rb = b["stalls"].sum() / max(b["flits"].sum(), 1.0)
        ra = a["stalls"].sum() / max(a["flits"].sum(), 1.0)
        out["ratio"] = float((ra - rb) / rb) if rb else float("nan")
        return out


def run_default_change_study(
    top: DragonflyTopology,
    *,
    n_intervals: int = 100,
    seed: int = 1234,
    before_env: RoutingEnv | None = None,
    after_mode: RoutingMode = AD3,
    params: FluidParams | None = None,
) -> DefaultChangeStudy:
    """Simulate the before (AD0 default) and after (AD3) weeks."""
    before = simulate_production_window(
        top,
        WindowConfig(
            env=before_env or RoutingEnv(),
            n_intervals=n_intervals,
            seed=seed,
            params=params,
        ),
    )
    # the paper verifies its two windows are comparable by checking the
    # flit totals are "roughly in line"; we make them comparable by
    # construction (same job-mix draws, different routing), which removes
    # week-to-week workload variance from the comparison
    after = simulate_production_window(
        top,
        WindowConfig(
            env=RoutingEnv.uniform(after_mode),
            n_intervals=n_intervals,
            seed=seed,
            params=params,
        ),
    )
    return DefaultChangeStudy(before=before, after=after)
