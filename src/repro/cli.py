"""Command-line interface for the routing study toolkit.

Usage (``python -m repro <command>``)::

    python -m repro describe --system theta
    python -m repro compare  --app milc --nodes 256 --samples 8
    python -m repro sweep    --app milc --samples 6 --jobs 4
    python -m repro advise   --app hacc
    python -m repro facility --intervals 12
    python -m repro ensemble --app milc --jobs 8 --nodes 512 --mode AD3
    python -m repro calibrate                 # score constants vs the paper
    python -m repro calibrate --param stall_kappa --values 1,3,6

Every command prints paper-style text output; nothing is written to
disk unless telemetry flags ask for it.  All commands accept ``--seed``
for reproducibility, plus the observability flags:

``--verbose/-v``
    Log progress to stderr (repeat for the full event stream).
``--trace PATH``
    Journal structured JSONL solver/engine events to a file
    (summarize later with ``repro-study report PATH``).
``--metrics PATH``
    Write accumulated metrics at exit — Prometheus text exposition, or
    JSON when the path ends in ``.json``.
"""

from __future__ import annotations

import argparse
import json
import logging
import signal
import sys
import time
from pathlib import Path

import numpy as np

from repro.apps import app_by_name
from repro.core.advisor import recommend
from repro.core.analysis import improvement_table
from repro.core.biases import VENDOR_MODES, mode_by_name
from repro.core.ensembles import EnsembleConfig
from repro.core.experiment import (
    CampaignConfig,
    _effective_jobs,
    run_app_once,
    run_campaign,
    stats_by_mode,
)
from repro.core.facility import run_default_change_study
from repro.core.metrics import LATENCY_PERCENTILES
from repro.faults import FaultSchedule, NetworkPartitionedError
from repro.mpi.env import RoutingEnv
from repro.telemetry import (
    BusTraceWriter,
    CampaignProgress,
    EventBus,
    JsonlTraceWriter,
    LoggingTraceWriter,
    MetricsExporter,
    MetricsRegistry,
    MultiTraceWriter,
    NULL_TRACE,
    SeriesConfig,
    Telemetry,
    TraceTail,
    format_summary,
    scan_trace,
    summarize_trace,
    use_telemetry,
)
from repro.telemetry.top import heartbeat_ages, render_top
from repro.topology.systems import cori, mini, slingshot, theta, toy
from repro.util import derive_rng

SYSTEMS = {
    "theta": theta,
    "cori": cori,
    "slingshot": slingshot,
    "mini": mini,
    "toy": toy,
}

logger = logging.getLogger("repro.cli")


def _system(name: str):
    if name not in SYSTEMS:
        raise ValueError(f"unknown system {name!r}; choose from {sorted(SYSTEMS)}")
    return SYSTEMS[name]()


def _faults_from_args(args) -> FaultSchedule | None:
    """Parse ``--faults`` (see docs/FAULTS.md for the mini-language)."""
    spec = getattr(args, "faults", None)
    if not spec:
        return None
    return FaultSchedule.parse(spec, seed=args.seed)


def _guard_from_args(args):
    """Build a :class:`GuardPolicy` from the guard flags (None if unset)."""
    from repro.guard import GuardPolicy

    deadline = getattr(args, "deadline", None)
    step_budget = getattr(args, "step_budget", None)
    invariants = getattr(args, "guard", None)
    hang_timeout = getattr(args, "hang_timeout", None)
    bundle_dir = getattr(args, "bundle_dir", None)
    if not any((deadline, step_budget, invariants, hang_timeout, bundle_dir)):
        return None
    return GuardPolicy(
        deadline=deadline,
        step_budget=step_budget,
        invariants="raise" if invariants == "strict" else (invariants or "off"),
        hang_timeout=hang_timeout,
        bundle_dir=bundle_dir,
    )


def cmd_describe(args) -> int:
    top = _system(args.system)
    print(top.describe())
    print(f"  routers: {top.n_routers}  links: {top.n_links}")
    print(f"  tiles/router: {top.tiles.total} ({top.tiles.network} network, {top.tiles.proc} processor)")
    print("  routing modes:")
    for m in VENDOR_MODES:
        print(f"    {m.describe()}")
    return 0


def cmd_compare(args) -> int:
    top = _system(args.system)
    app = app_by_name(args.app)()
    modes = tuple(mode_by_name(m) for m in args.modes.split(","))
    faults = _faults_from_args(args)
    print(f"{app.describe()} on {top.params.name}, {args.samples} samples per mode ...")
    if faults:
        print(f"  degraded network: {faults.describe()}")
    cfg = CampaignConfig(
        app=app,
        n_nodes=args.nodes,
        modes=modes,
        samples=args.samples,
        seed=args.seed,
        faults=faults,
        max_attempts=args.max_attempts,
        guard=_guard_from_args(args),
    )
    cache_dir = getattr(args, "cache", None)
    if cache_dir is not None:
        from repro.service import RunRecordStore, run_campaign_cached

        outcome = run_campaign_cached(
            top,
            cfg,
            store=RunRecordStore(cache_dir),
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            jobs=args.jobs,
            queue_dir=getattr(args, "queue", None),
        )
        records = outcome.records
        print(
            f"  cache: {outcome.hits} hit(s)  {outcome.misses} miss(es)"
            + (f"  {outcome.resumed} resumed" if outcome.resumed else "")
        )
    else:
        records = run_campaign(
            top,
            cfg,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            jobs=args.jobs,
            queue_dir=getattr(args, "queue", None),
        )
    failed = [r for r in records if not r.ok]
    if failed:
        print(f"  {len(failed)}/{len(records)} runs failed (first: {failed[0].error})")
    for mode, st in sorted(
        stats_by_mode(records).items(),
        key=lambda kv: kv[1].mean if np.isfinite(kv[1].mean) else float("inf"),
    ):
        flag = "" if st.reliable else "  [unreliable: too few samples]"
        print(
            f"  {mode:6s} mean {st.mean:8.1f} s  std {st.std:7.1f}  "
            f"p95 {st.p95:8.1f}  (n={st.n}){flag}"
        )
    for row in improvement_table(records, base_mode=modes[0].name, test_mode=modes[-1].name):
        print(
            f"\n{row.test_mode} over {row.base_mode}: "
            f"{row.time_improvement:+.1f}% time, {row.mpi_improvement:+.1f}% MPI"
        )
    return 0


def cmd_sweep(args) -> int:
    # sweep is compare with its own --modes default (all four vendor
    # modes); the parser owns the default so --modes is honored and the
    # help text stays truthful.
    return cmd_compare(args)


def cmd_advise(args) -> int:
    top = _system(args.system)
    app = app_by_name(args.app)()
    print(f"profiling {app.name} on {top.params.name} ...")
    _, report, _ = run_app_once(
        top,
        app,
        np.arange(args.nodes),
        RoutingEnv(),
        rng=derive_rng(args.seed, "cli-advise", app.name),
    )
    print(report.summary())
    print(f"\n{recommend(report)}")
    return 0


def cmd_facility(args) -> int:
    top = _system(args.system)
    print(f"simulating 2 x {args.intervals} production intervals on {top.params.name} ...")
    study = run_default_change_study(top, n_intervals=args.intervals, seed=args.seed)
    change = study.counter_change()
    print(
        f"flits {change['flits']:+.1%}  stalls {change['stalls']:+.1%}  "
        f"ratio {change['ratio']:+.1%}"
    )
    lat = study.latency_change()
    print("latency change: " + "  ".join(f"P{p:g}:{lat[p]:+.1f}%" for p in LATENCY_PERCENTILES))
    return 0


def cmd_calibrate(args) -> int:
    from repro.core.calibration import (
        format_score,
        probe_observables,
        score_against_paper,
        sweep_parameter,
    )

    top = _system(args.system)
    if args.param:
        values = [float(v) for v in args.values.split(",")]
        print(f"sweeping {args.param} over {values} ...")
        out = sweep_parameter(
            top,
            args.param,
            values,
            samples=args.samples,
            seed=args.seed,
            jobs=args.jobs,
        )
        for v, obs in out.items():
            print(
                f"  {args.param}={v:g}: milc_imp {obs['milc_improvement_pct']:+.1f}%  "
                f"hacc_imp {obs['hacc_improvement_pct']:+.1f}%  "
                f"milc_mean {obs['milc_ad0_mean_s']:.0f}s"
            )
    else:
        print("scoring the shipped constants against the paper anchors ...")
        obs = probe_observables(top, samples=args.samples, seed=args.seed, jobs=args.jobs)
        print(format_score(score_against_paper(obs)))
    return 0


def _ensemble_lines(args, app, mode, faults, res) -> list[str]:
    snap = res.bank.snapshot()
    lines = [f"{args.jobs} x {args.nodes}-node {app.name} jobs under {mode.name}:"]
    if faults:
        lines.append(f"  degraded network: {faults.describe()}")
    lines.append(
        f"  job runtimes: {res.job_runtimes.min():.0f} - {res.job_runtimes.max():.0f} s"
    )
    for cls in ("rank1", "rank2", "rank3", "proc_req"):
        lines.append(
            f"  {cls:9s} flits {snap.flits[cls].sum():.3e}  "
            f"stalls {snap.stalls[cls].sum():.3e}  ratio {snap.class_ratio(cls):.3f}"
        )
    lines.append(f"  network stalls/flits: {snap.network_ratio():.3f}")
    return lines


def cmd_ensemble(args) -> int:
    from repro.parallel import run_ensembles

    top = _system(args.system)
    app = app_by_name(args.app)()
    modes = [
        mode_by_name(m)
        for m in (args.modes.split(",") if args.modes else [args.mode])
    ]
    faults = _faults_from_args(args)
    fingerprint = {
        "kind": "ensemble",
        "system": args.system,
        "app": app.name,
        "jobs": args.jobs,
        "nodes": args.nodes,
        "mode": ",".join(m.name for m in modes),
        "placement": args.placement,
        "seed": args.seed,
        "faults": faults.describe() if faults else "",
    }
    ck = Path(args.checkpoint) if args.checkpoint else None
    outputs: dict[str, list[str]] = {}
    if ck is not None and args.resume and ck.exists():
        saved = json.loads(ck.read_text())
        if saved.get("config") != fingerprint:
            raise ValueError(
                f"checkpoint {ck} was written by a different ensemble config"
            )
        if "outputs" in saved:
            outputs = {k: list(v) for k, v in saved["outputs"].items()}
        elif "output" in saved:
            # single-mode format written before mode sweeps existed
            outputs = {modes[0].name: list(saved["output"])}
        print(f"(resumed from {ck})")
        for mode in modes:
            if mode.name in outputs:
                print("\n".join(outputs[mode.name]))
    remaining = [m for m in modes if m.name not in outputs]
    if not remaining:
        return 0
    cfgs = [
        EnsembleConfig(
            app=app,
            n_jobs=args.jobs,
            n_nodes=args.nodes,
            mode=mode,
            placement=args.placement,
            seed=args.seed,
            faults=faults,
        )
        for mode in remaining
    ]

    def on_result(idx, res):
        lines = _ensemble_lines(args, app, remaining[idx], faults, res)
        print("\n".join(lines))
        outputs[remaining[idx].name] = lines
        if ck is not None:
            # rewritten after every completed ensemble, so an interrupt
            # leaves a resumable prefix of the sweep
            ck.write_text(
                json.dumps({"config": fingerprint, "outputs": outputs}) + "\n"
            )

    run_ensembles(top, cfgs, jobs=_effective_jobs(args.workers), on_result=on_result)
    return 0


def cmd_doctor(args) -> int:
    from repro.guard.doctor import exit_code, run_doctor

    findings = run_doctor(
        system=args.system,
        dims=args.dims,
        faults=args.faults,
        checkpoint=args.checkpoint,
        queue=getattr(args, "queue", None),
        selftest=not args.no_selftest,
        seed=args.seed,
    )
    for f in findings:
        print(f.format())
    rc = exit_code(findings)
    failed = sum(1 for f in findings if not f.ok)
    print(
        f"doctor: {len(findings) - failed}/{len(findings)} checks passed"
        + ("" if rc == 0 else f" -- NOT ready (exit {rc})")
    )
    return rc


def cmd_worker(args) -> int:
    """One distributed-campaign worker: claim, execute, commit, repeat."""
    from repro.dist import DistWorker, WorkQueue
    from repro.telemetry import resolve_telemetry

    tel = resolve_telemetry(None)
    queue = WorkQueue(args.queue)
    worker = DistWorker(
        queue,
        owner=args.owner,
        max_tasks=args.max_tasks,
        max_seconds=args.max_seconds,
        speculate=not args.no_speculate,
        poll=max(float(args.poll), 0.01),
        on_event=lambda name, **fields: tel.event(f"dist.{name}", **fields),
    )
    print(f"worker {worker.owner} joining queue {queue.root}", flush=True)
    stats = worker.run()
    print(
        "worker done: "
        + "  ".join(f"{k}={v}" for k, v in stats.to_dict().items()),
        flush=True,
    )
    return 0


def cmd_queue_status(args) -> int:
    """Point-in-time scan of a distributed campaign's queue directory."""
    from repro.dist import WorkQueue

    queue = WorkQueue(args.queue)
    manifest = queue.load_manifest()
    if manifest is None:
        print(f"queue {queue.root}: no manifest yet (coordinator not started)")
        return 0
    st = queue.status(queue.manifest_tasks(manifest))
    fp = manifest.get("fingerprint", {})
    print(
        f"queue {queue.root}: {fp.get('app', '?')} x{fp.get('samples', '?')} "
        f"on {fp.get('system', '?')} "
        f"(ttl {manifest.get('ttl')}s, retry budget {manifest.get('retry_budget')})"
    )
    print(
        f"  tasks: {st.total} total  {st.done} done  {st.claimed} claimed  "
        f"{st.available} available  {st.expired} expired-lease  "
        f"{len(st.exhausted)} exhausted"
    )
    now = time.time()
    beats = heartbeat_ages(str(queue.heartbeats_dir), now=now)
    for owner in sorted(set(st.workers) | set(beats)):
        held = [
            tid for tid, lease in st.leases.items() if lease.get("owner") == owner
        ]
        live = [
            tid
            for tid in held
            if float(st.leases[tid].get("expires_at", 0.0)) > now
        ]
        state = "live" if live else "expired"
        hb = beats.get(owner)
        # a worker with a guard heartbeat but no lease is between tasks
        # (or speculating); one with a lease but a stale heartbeat is
        # the watchdog's "hung" signature
        hb_note = f"  heartbeat {hb:.1f}s ago" if hb is not None else "  no heartbeat"
        if not held and hb is not None:
            state = "busy (no lease)"
        print(f"  worker {owner}: {len(held)} lease(s) [{state}]{hb_note}")
    return 0


def cmd_serve(args) -> int:
    """Long-running campaign service over a shared result cache.

    SIGTERM/SIGINT trigger a graceful drain: submissions are refused
    with 503, in-flight campaigns get ``--drain-grace`` seconds to
    finish (unfinished ones stay journalled for the next start's
    recovery), the cache flushes, and the process exits 0.
    """
    import threading

    from repro.service import CampaignService, RunRecordStore

    store = RunRecordStore(
        args.cache, max_bytes=args.max_bytes, max_entries=args.max_entries
    )
    journal_dir = None
    if not args.no_journal:
        journal_dir = args.journal if args.journal else str(Path(args.cache) / "journal")
    service = CampaignService(
        store,
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        queue_dir=getattr(args, "queue", None),
        journal_dir=journal_dir,
    ).start()
    st = store.stats()
    print(
        f"campaign service on {service.url}  "
        f"(cache {store.root}: {st.entries} entries, {st.bytes} bytes)",
        flush=True,
    )
    if service.recovered:
        print(
            f"recovered {len(service.recovered)} journalled campaign(s): "
            + ", ".join(service.recovered),
            flush=True,
        )
    stop = threading.Event()
    try:
        # take over main()'s exit-143 SIGTERM handler: the service owns
        # its shutdown now, and it must drain rather than unwind
        signal.signal(signal.SIGTERM, lambda signum, frame: stop.set())
        signal.signal(signal.SIGINT, lambda signum, frame: stop.set())
    except ValueError:
        pass  # not the main thread (embedded use)
    deadline = (
        time.monotonic() + args.max_seconds if args.max_seconds is not None else None
    )
    try:
        while deadline is None or time.monotonic() < deadline:
            if stop.wait(timeout=0.2):
                break
    except KeyboardInterrupt:
        pass
    leftover = service.drain(timeout=args.drain_grace)
    if leftover:
        print(
            f"drain: {len(leftover)} campaign(s) still running after "
            f"{args.drain_grace}s grace — journalled for recovery on restart: "
            + ", ".join(leftover),
            flush=True,
        )
    else:
        print("drain: all campaigns finished", flush=True)
    service.close()
    return 0


def cmd_chaos(args) -> int:
    """Soak a campaign under a deterministic failure schedule."""
    import tempfile

    from repro.chaos.runner import run_soak, verify_replay
    from repro.chaos.schedule import ChaosSpecError

    top = _system(args.system)
    app = app_by_name(args.app)()
    modes = tuple(mode_by_name(m) for m in args.modes.split(","))
    cfg = CampaignConfig(
        app=app,
        n_nodes=args.nodes,
        modes=modes,
        samples=args.samples,
        seed=args.seed,
        faults=_faults_from_args(args),
    )
    workdir = args.workdir
    tmp = None
    if workdir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        workdir = tmp.name
    try:
        try:
            if args.replay:
                first, second, same = verify_replay(
                    top, cfg, spec=args.schedule, seed=args.chaos_seed,
                    workdir=workdir, queue=args.queue,
                    max_restarts=args.max_restarts,
                )
                print(first.format())
                print(
                    f"replay: {'identical' if same else 'DIVERGED'} "
                    f"({len(first.fired)} vs {len(second.fired)} fires, "
                    f"{first.attempts} vs {second.attempts} attempts)"
                )
                return 0 if (first.ok and second.ok and same) else 1
            report = run_soak(
                top, cfg, spec=args.schedule, seed=args.chaos_seed,
                workdir=workdir, queue=args.queue,
                max_restarts=args.max_restarts,
            )
        except ChaosSpecError as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        print(report.format())
        return 0 if report.ok else 1
    finally:
        if tmp is not None:
            tmp.cleanup()


def cmd_submit(args) -> int:
    """Submit a campaign to a running service (`repro serve`)."""
    from repro.dist.manifest import campaign_to_manifest
    from repro.service import client
    from repro.telemetry import resolve_telemetry

    top = _system(args.system)
    app = app_by_name(args.app)()
    modes = tuple(mode_by_name(m) for m in args.modes.split(","))
    cfg = CampaignConfig(
        app=app,
        n_nodes=args.nodes,
        modes=modes,
        samples=args.samples,
        seed=args.seed,
        faults=_faults_from_args(args),
        max_attempts=args.max_attempts,
    )
    manifest = campaign_to_manifest(top, cfg, resolve_telemetry(None))
    try:
        resp = client.submit(args.url, manifest, jobs=args.jobs)
    except client.ServiceError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    verb = "coalesced into in-flight campaign" if resp.get("deduped") else "submitted as"
    print(f"{verb} {resp['id']} [{resp['state']}] on {args.url}")
    if not args.wait:
        return 0
    try:
        doc = client.wait(args.url, resp["id"], timeout=args.timeout)
    except client.ServiceError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    cache = doc.get("cache", {})
    print(
        f"  cache: {cache.get('hits', 0)} hit(s)  "
        f"{cache.get('misses', 0)} miss(es)"
    )
    from repro.core.checkpoint import record_from_dict

    records = [record_from_dict(d) for d in doc.get("records", [])]
    for mode, st in sorted(
        stats_by_mode(records).items(),
        key=lambda kv: kv[1].mean if np.isfinite(kv[1].mean) else float("inf"),
    ):
        flag = "" if st.reliable else "  [unreliable: too few samples]"
        print(
            f"  {mode:6s} mean {st.mean:8.1f} s  std {st.std:7.1f}  "
            f"p95 {st.p95:8.1f}  (n={st.n}){flag}"
        )
    return 0


def cmd_cache_status(args) -> int:
    """Inspect a result cache: local directory scan or a live service."""
    if args.url is not None:
        from repro.service import client

        try:
            stats = client.cache_stats(args.url)
        except client.ServiceError as e:
            print(f"error: {e}", file=sys.stderr)
            return 2
        print(f"cache at {args.url}:")
        for k, v in stats.items():
            print(f"  {k}: {v}")
        return 0
    if args.cache is None:
        print("error: need --cache DIR or --url URL", file=sys.stderr)
        return 2
    from repro.service import RunRecordStore

    store = RunRecordStore(args.cache)
    st = store.stats()
    print(
        f"cache {store.root}: {st.entries} entries  {st.bytes} bytes  "
        f"{st.quarantined_files} quarantined"
    )
    return 0


def cmd_report(args) -> int:
    path = Path(args.trace_path)
    if getattr(args, "follow", False):
        return _report_follow(args, path)
    if not path.exists():
        raise SystemExit(f"no such trace file: {path}")
    scan = scan_trace(path)
    if scan.truncated_tail:
        print(
            f"warning: {path} ends mid-line — the writer is still live, or "
            "the run was interrupted mid-append (use --follow for live runs)",
            file=sys.stderr,
        )
    if scan.n_bad:
        print(
            f"warning: {path}: skipped {scan.n_bad} malformed line(s)",
            file=sys.stderr,
        )
    if not scan.events:
        print(f"trace: {path}  (0 events)")
        print(
            "  no events recorded yet — the run may not have started, or "
            "was launched without --trace"
        )
        return 0
    summary = summarize_trace(scan.events, top=args.top)
    summary.source = str(path)
    print(format_summary(summary))
    return 0


def _report_follow(args, path: Path) -> int:
    """``report --follow``: re-summarize as the trace grows."""
    interval = max(float(getattr(args, "interval", 2.0) or 2.0), 0.05)
    max_seconds = getattr(args, "max_seconds", None)
    deadline = time.monotonic() + max_seconds if max_seconds else None
    tail = TraceTail(path)
    events: list[dict] = []
    while True:
        fresh = tail.poll()
        if fresh:
            events.extend(fresh)
            summary = summarize_trace(events, top=args.top)
            summary.source = f"{path} (following)"
            try:
                print(format_summary(summary))
                print("-" * 64, flush=True)
            except BrokenPipeError:
                return 0  # downstream pager/head closed the pipe
            if any(e.get("ev") == "campaign.end" for e in fresh):
                return 0
        if deadline is not None and time.monotonic() >= deadline:
            return 0
        time.sleep(interval)


def cmd_top(args) -> int:
    """Live campaign progress from a trace another process is writing."""
    tail = TraceTail(args.trace_path)
    prog = CampaignProgress()
    max_seconds = getattr(args, "max_seconds", None)
    deadline = time.monotonic() + max_seconds if max_seconds else None
    while True:
        prog.feed_many(tail.poll())
        hb_dir = args.heartbeats or prog.heartbeat_dir
        frame = render_top(prog.snapshot(), heartbeats=heartbeat_ages(hb_dir))
        if args.once:
            print(frame, end="")
            return 0
        sys.stdout.write("\x1b[2J\x1b[H" + frame)  # clear screen, home
        sys.stdout.flush()
        if prog.ended_at is not None:
            return 0
        if deadline is not None and time.monotonic() >= deadline:
            return 0
        time.sleep(max(float(args.interval), 0.05))


def _fold_event_metrics(reg: MetricsRegistry, ev: dict) -> None:
    """Mirror one trace event into scrapeable counters/histograms."""
    name = str(ev.get("ev", "unknown")).replace(".", "_").replace("-", "_")
    reg.counter(f"trace_{name}_total", "trace events observed by type").inc()
    wall = ev.get("wall_ms")
    if isinstance(wall, (int, float)):
        reg.histogram(
            f"trace_{name}_seconds", "wall time of traced spans by type"
        ).observe(float(wall) / 1e3)


def _fold_progress_metrics(reg: MetricsRegistry, prog: CampaignProgress) -> None:
    snap = prog.snapshot()
    reg.gauge("campaign_runs_total", "runs the campaign will produce").set(
        snap["total_runs"]
    )
    reg.gauge("campaign_runs_done", "runs completed so far").set(snap["done_runs"])
    reg.gauge("campaign_runs_failed", "runs ending in error").set(
        snap["failed_runs"]
    )
    reg.gauge("campaign_running", "1 while the campaign is live").set(
        1.0 if snap["running"] else 0.0
    )
    eta = snap["eta_seconds"]
    if eta is not None:
        reg.gauge("campaign_eta_seconds", "estimated wall time remaining").set(eta)


def cmd_serve_metrics(args) -> int:
    """Standalone sidecar exporter following a live campaign trace."""
    reg = MetricsRegistry(enabled=True)
    prog = CampaignProgress()
    tail = TraceTail(args.trace) if args.trace else None
    exporter = MetricsExporter(reg, progress=prog, host=args.host, port=args.port)
    print(f"serving /metrics /healthz /runs on {exporter.url}", flush=True)
    max_seconds = getattr(args, "max_seconds", None)
    deadline = time.monotonic() + max_seconds if max_seconds else None
    try:
        while True:
            if tail is not None:
                for ev in tail.poll():
                    prog.feed(ev)
                    _fold_event_metrics(reg, ev)
            _fold_progress_metrics(reg, prog)
            if deadline is not None and time.monotonic() >= deadline:
                return 0
            time.sleep(max(float(args.interval), 0.05))
    except KeyboardInterrupt:
        return 0
    finally:
        exporter.close()


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro", description="Dragonfly adaptive-routing study toolkit"
    )
    sub = p.add_subparsers(dest="command", required=True)

    def observability(sp):
        sp.add_argument(
            "-v",
            "--verbose",
            action="count",
            default=0,
            help="log progress to stderr (-vv for the full event stream)",
        )
        sp.add_argument(
            "--trace",
            default=None,
            metavar="PATH",
            help="journal structured JSONL engine events to PATH",
        )
        sp.add_argument(
            "--metrics",
            default=None,
            metavar="PATH",
            help="write metrics at exit (Prometheus text, or JSON for *.json)",
        )
        sp.add_argument(
            "--series",
            type=float,
            default=None,
            metavar="SECONDS",
            help="cadence-sample counter/latency series onto run records "
            "(sim-time seconds between windows)",
        )
        sp.add_argument(
            "--serve",
            type=int,
            default=None,
            metavar="PORT",
            help="serve live /metrics, /healthz, and /runs over HTTP while "
            "the command runs (0 picks an ephemeral port)",
        )

    def common(sp):
        sp.add_argument(
            "--system", default="theta", help="theta | cori | slingshot | mini | toy"
        )
        sp.add_argument("--seed", type=int, default=2021)
        observability(sp)

    def jobs_flag(sp):
        sp.add_argument(
            "-j",
            "--jobs",
            type=int,
            default=None,
            metavar="N",
            help="worker processes for the campaign runs (default: $REPRO_JOBS "
            "or 1; results are identical for any value)",
        )

    def campaign_flags(sp):
        sp.add_argument(
            "--faults",
            default=None,
            metavar="SPEC",
            help='degraded-network spec, e.g. "rank3:0.05; router:3" (docs/FAULTS.md)',
        )
        sp.add_argument(
            "--checkpoint",
            default=None,
            metavar="PATH",
            help="append finished runs to a JSONL checkpoint file",
        )
        sp.add_argument(
            "--resume",
            action="store_true",
            help="skip runs already completed in --checkpoint",
        )
        sp.add_argument(
            "--deadline",
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-run wall-clock budget; a run over it becomes an "
            "error-status record instead of hanging the campaign",
        )
        sp.add_argument(
            "--step-budget",
            type=int,
            default=None,
            metavar="N",
            help="per-run packet-simulator step budget (docs/GUARDRAILS.md)",
        )
        sp.add_argument(
            "--guard",
            default=None,
            choices=["off", "warn", "record", "raise", "strict"],
            help="invariant-monitor policy (strict == raise); see also "
            "the REPRO_GUARD environment variable",
        )
        sp.add_argument(
            "--hang-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="with -j: SIGKILL+retry a worker whose heartbeat goes "
            "stale for this long",
        )
        sp.add_argument(
            "--bundle-dir",
            default=None,
            metavar="DIR",
            help="write a diagnostics bundle per guard-terminated run",
        )
        sp.add_argument(
            "--queue",
            default=None,
            metavar="DIR",
            help="distribute the runs over a shared-directory work queue; "
            "start executors with `repro worker --queue DIR` on any host "
            "(docs/DISTRIBUTED.md)",
        )
        sp.add_argument(
            "--cache",
            default=None,
            metavar="DIR",
            help="memoize runs in a content-addressed result cache; hits "
            "are served from DIR without executing (docs/SERVICE.md)",
        )

    sp = sub.add_parser("describe", help="print a system's structure and the routing modes")
    common(sp)
    sp.set_defaults(func=cmd_describe)

    sp = sub.add_parser("compare", help="paired campaign over chosen modes")
    common(sp)
    sp.add_argument("--app", default="milc")
    sp.add_argument("--nodes", type=int, default=256)
    sp.add_argument("--samples", type=int, default=8)
    sp.add_argument("--modes", default="AD0,AD3", help="comma-separated, e.g. AD0,AD3")
    sp.add_argument(
        "--max-attempts",
        type=int,
        default=1,
        help="retries per run on transient solver non-convergence",
    )
    campaign_flags(sp)
    jobs_flag(sp)
    sp.set_defaults(func=cmd_compare)

    sp = sub.add_parser("sweep", help="campaign over all four vendor modes")
    common(sp)
    sp.add_argument("--app", default="milc")
    sp.add_argument("--nodes", type=int, default=256)
    sp.add_argument("--samples", type=int, default=6)
    sp.add_argument(
        "--modes",
        default="AD0,AD1,AD2,AD3",
        help="comma-separated mode subset to sweep (default: all four)",
    )
    sp.add_argument(
        "--max-attempts",
        type=int,
        default=1,
        help="retries per run on transient solver non-convergence",
    )
    campaign_flags(sp)
    jobs_flag(sp)
    sp.set_defaults(func=cmd_sweep)

    sp = sub.add_parser("advise", help="profile an app and recommend a bias")
    common(sp)
    sp.add_argument("--app", default="milc")
    sp.add_argument("--nodes", type=int, default=256)
    sp.set_defaults(func=cmd_advise)

    sp = sub.add_parser("facility", help="before/after default-change study")
    common(sp)
    sp.add_argument("--intervals", type=int, default=12)
    sp.set_defaults(func=cmd_facility)

    sp = sub.add_parser("calibrate", help="score (or sweep) the model constants")
    common(sp)
    sp.add_argument("--param", default=None, help="congestion constant to sweep")
    sp.add_argument("--values", default="", help="comma-separated sweep values")
    sp.add_argument("--samples", type=int, default=14)
    jobs_flag(sp)
    sp.set_defaults(func=cmd_calibrate)

    sp = sub.add_parser("ensemble", help="controlled full-reservation ensemble")
    common(sp)
    sp.add_argument("--app", default="milc")
    sp.add_argument("--jobs", type=int, default=8)
    sp.add_argument("--nodes", type=int, default=512)
    sp.add_argument("--mode", default="AD3")
    sp.add_argument(
        "--modes",
        default=None,
        help="comma-separated mode sweep (one ensemble per mode); overrides --mode",
    )
    sp.add_argument("--placement", default="dispersed")
    sp.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes when sweeping multiple --modes "
        "(default: $REPRO_JOBS or 1); --jobs is the ensemble's job count",
    )
    campaign_flags(sp)
    sp.set_defaults(func=cmd_ensemble)

    sp = sub.add_parser("report", help="summarize a recorded JSONL trace")
    sp.add_argument("trace_path", help="trace file written with --trace")
    sp.add_argument("--top", type=int, default=10, help="rows per ranked section")
    sp.add_argument(
        "--follow",
        action="store_true",
        help="keep re-summarizing as the trace grows (live runs)",
    )
    sp.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="poll cadence with --follow (default: 2)",
    )
    sp.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --follow: stop after this long even if the run is live",
    )
    observability(sp)
    sp.set_defaults(func=cmd_report, passive=True)

    sp = sub.add_parser(
        "top", help="live progress view of a campaign writing a --trace file"
    )
    sp.add_argument("trace_path", help="trace file the campaign is writing")
    sp.add_argument(
        "--once",
        action="store_true",
        help="print a single frame and exit (no screen clearing)",
    )
    sp.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="refresh cadence (default: 1)",
    )
    sp.add_argument(
        "--heartbeats",
        default=None,
        metavar="DIR",
        help="worker heartbeat directory (auto-discovered from the trace "
        "when the campaign runs with -j)",
    )
    sp.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop after this long even if the campaign is still live",
    )
    observability(sp)
    sp.set_defaults(func=cmd_top, passive=True)

    sp = sub.add_parser(
        "serve-metrics",
        help="sidecar HTTP exporter: /metrics, /healthz, /runs",
    )
    sp.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="live trace file to follow (progress + per-event counters)",
    )
    sp.add_argument("--host", default="127.0.0.1")
    sp.add_argument(
        "--port",
        type=int,
        default=9137,
        metavar="PORT",
        help="listen port (default: 9137; 0 picks an ephemeral port)",
    )
    sp.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="trace poll cadence (default: 0.5)",
    )
    sp.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serve for this long, then exit 0 (default: until interrupted)",
    )
    sp.add_argument("-v", "--verbose", action="count", default=0)
    sp.set_defaults(func=cmd_serve_metrics, passive=True)

    sp = sub.add_parser(
        "doctor",
        help="validate a campaign's config and self-test the installation",
    )
    common(sp)
    sp.add_argument(
        "--dims",
        default=None,
        metavar="G,C,R,N",
        help="custom topology dims (groups, chassis/group, routers/chassis, "
        "nodes/router); overrides --system",
    )
    sp.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="fault schedule to validate against the chosen topology",
    )
    sp.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="checkpoint destination to probe for writability",
    )
    sp.add_argument(
        "--no-selftest",
        action="store_true",
        help="skip the engine self-test matrix (config checks only)",
    )
    sp.add_argument(
        "--queue",
        default=None,
        metavar="DIR",
        help="preflight a shared queue directory for a distributed "
        "campaign (O_EXCL, atomic rename, space, clock skew, stale leases)",
    )
    sp.set_defaults(func=cmd_doctor)

    sp = sub.add_parser(
        "worker",
        help="execute runs from a shared-directory campaign queue",
    )
    sp.add_argument(
        "--queue",
        required=True,
        metavar="DIR",
        help="queue directory a coordinator created (or will create) "
        "with --queue on compare/sweep",
    )
    sp.add_argument(
        "--owner",
        default=None,
        metavar="NAME",
        help="worker identity in leases and results (default: host:pid)",
    )
    sp.add_argument(
        "--max-tasks",
        type=int,
        default=None,
        metavar="N",
        help="exit after executing N runs (default: until the campaign ends)",
    )
    sp.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit after this long even if work remains (batch job budgets)",
    )
    sp.add_argument(
        "--no-speculate",
        action="store_true",
        help="never re-execute in-flight stragglers at the campaign tail",
    )
    sp.add_argument(
        "--poll",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="idle scan cadence (default: 0.2)",
    )
    sp.add_argument("--seed", type=int, default=2021)
    observability(sp)
    sp.set_defaults(func=cmd_worker)

    sp = sub.add_parser(
        "queue-status",
        help="inspect a distributed campaign's queue directory",
    )
    sp.add_argument(
        "--queue",
        required=True,
        metavar="DIR",
        help="queue directory to scan",
    )
    sp.set_defaults(func=cmd_queue_status, passive=True)

    sp = sub.add_parser(
        "serve",
        help="run the campaign service: HTTP submissions over a shared "
        "content-addressed result cache (docs/SERVICE.md)",
    )
    sp.add_argument(
        "--cache", required=True, metavar="DIR", help="result-cache directory"
    )
    sp.add_argument("--host", default="127.0.0.1")
    sp.add_argument("--port", type=int, default=0, help="0 picks an ephemeral port")
    sp.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="LRU-evict cache entries beyond this total size",
    )
    sp.add_argument(
        "--max-entries",
        type=int,
        default=None,
        help="LRU-evict cache entries beyond this count",
    )
    sp.add_argument(
        "--queue",
        default=None,
        metavar="DIR",
        help="fan cache misses out over a shared-directory work queue "
        "instead of the local fork pool",
    )
    sp.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="serve for this long, then exit (default: until SIGINT)",
    )
    sp.add_argument(
        "--journal",
        default=None,
        metavar="DIR",
        help="durable job journal for restart recovery "
        "(default: <cache>/journal)",
    )
    sp.add_argument(
        "--no-journal",
        action="store_true",
        help="disable the job journal (a restart forgets in-flight campaigns)",
    )
    sp.add_argument(
        "--drain-grace",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="on SIGTERM/SIGINT, wait this long for in-flight campaigns "
        "before exiting (unfinished ones recover on restart; default: 30)",
    )
    jobs_flag(sp)
    observability(sp)
    sp.set_defaults(func=cmd_serve, passive=True)

    sp = sub.add_parser(
        "chaos",
        help="soak a campaign under a deterministic failure schedule "
        "(docs/CHAOS.md)",
    )
    common(sp)
    sp.add_argument(
        "--schedule",
        required=True,
        metavar="SPEC",
        help='failpoint rules, e.g. "checkpoint.append:crash:at=3; '
        'store.commit.pre_rename:enospc:p=0.3"',
    )
    sp.add_argument(
        "--chaos-seed",
        type=int,
        default=2021,
        help="seed for the schedule's probability draws (replay key)",
    )
    sp.add_argument(
        "--workdir",
        default=None,
        metavar="DIR",
        help="keep the soak's reference/survivor/fired files here "
        "(default: a temp dir, removed afterwards)",
    )
    sp.add_argument("--app", default="milc")
    sp.add_argument("--nodes", type=int, default=32)
    sp.add_argument("--samples", type=int, default=3)
    sp.add_argument("--modes", default="AD0,AD3", help="comma-separated, e.g. AD0,AD3")
    sp.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help='degraded-network spec, e.g. "rank3:0.05; router:3"',
    )
    sp.add_argument(
        "--queue",
        action="store_true",
        help="dispatch the soak through the shared-directory queue protocol",
    )
    sp.add_argument(
        "--max-restarts",
        type=int,
        default=25,
        metavar="N",
        help="give up after N child restarts (default: 25)",
    )
    sp.add_argument(
        "--replay",
        action="store_true",
        help="run the soak twice and verify the failure run replays "
        "identically (fires, attempts, surviving bytes)",
    )
    sp.set_defaults(func=cmd_chaos)

    sp = sub.add_parser(
        "submit", help="submit a campaign to a running `repro serve`"
    )
    common(sp)
    sp.add_argument("--url", required=True, help="service base URL (http://host:port)")
    sp.add_argument("--app", default="milc")
    sp.add_argument("--nodes", type=int, default=256)
    sp.add_argument("--samples", type=int, default=8)
    sp.add_argument("--modes", default="AD0,AD3", help="comma-separated, e.g. AD0,AD3")
    sp.add_argument(
        "--max-attempts",
        type=int,
        default=1,
        help="retries per run on transient solver non-convergence",
    )
    sp.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help='degraded-network spec, e.g. "rank3:0.05; router:3"',
    )
    sp.add_argument(
        "--wait",
        action="store_true",
        help="block until the campaign finishes and print its mode stats",
    )
    sp.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="--wait gives up after this many seconds",
    )
    jobs_flag(sp)
    sp.set_defaults(func=cmd_submit)

    sp = sub.add_parser(
        "cache-status", help="inspect a result cache (local dir or live service)"
    )
    sp.add_argument("--cache", default=None, metavar="DIR", help="cache directory")
    sp.add_argument(
        "--url", default=None, help="running service to query for /cache/stats"
    )
    sp.set_defaults(func=cmd_cache_status, passive=True)

    return p


def _telemetry_from_args(args) -> Telemetry:
    """Build the command's telemetry handle from the shared flags."""
    verbose = getattr(args, "verbose", 0)
    if verbose:
        logging.basicConfig(
            stream=sys.stderr,
            level=logging.INFO if verbose == 1 else logging.DEBUG,
            format="%(asctime)s %(name)s %(levelname)s %(message)s",
        )
    writers = []
    # passive commands (report/top/serve-metrics) treat --trace as an
    # input to follow, never a journal to open for writing — opening it
    # here would truncate the live file they are about to read
    passive = getattr(args, "passive", False)
    trace_path = None if passive else getattr(args, "trace", None)
    if trace_path:
        try:
            writers.append(JsonlTraceWriter(trace_path))
        except OSError as e:
            raise SystemExit(f"cannot open trace file {trace_path}: {e.strerror}")
    if verbose >= 2:
        writers.append(LoggingTraceWriter(logging.getLogger("repro.telemetry")))
    if len(writers) == 1:
        trace = writers[0]
    elif writers:
        trace = MultiTraceWriter(writers)
    else:
        trace = NULL_TRACE
    tel = Telemetry(trace=trace)
    tel.metrics.enabled = bool(getattr(args, "metrics", None)) or (
        not passive and getattr(args, "serve", None) is not None
    )
    if not passive and getattr(args, "series", None) is not None:
        tel.series = SeriesConfig(cadence=args.series)
    if trace_path:
        logger.info("tracing engine events to %s", trace_path)
    return tel


def main(argv: list[str] | None = None) -> int:
    try:
        # a batch scheduler's SIGTERM should unwind like SystemExit so
        # pools reap their workers and checkpoints keep a clean tail
        signal.signal(signal.SIGTERM, lambda signum, frame: sys.exit(143))
    except ValueError:
        pass  # not the main thread (embedded use); keep default handling
    try:
        # honour $REPRO_CHAOS so subprocess workers and services run
        # under the same failure schedule as the soak that spawned them
        from repro.chaos import activate_from_env

        activate_from_env()
    except ValueError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    args = build_parser().parse_args(argv)
    tel = _telemetry_from_args(args)
    exporter = None
    serve_port = None if getattr(args, "passive", False) else getattr(
        args, "serve", None
    )
    if serve_port is not None:
        # splice a bus into the trace path so the exporter's /runs view
        # tracks the campaign live, with zero changes to the engines
        bus = EventBus()
        progress = CampaignProgress()
        bus.subscribe(progress.feed)
        tel.trace = MultiTraceWriter([tel.trace, BusTraceWriter(bus)])
        exporter = MetricsExporter(tel.metrics, progress=progress, port=serve_port)
        print(
            f"serving /metrics /healthz /runs on {exporter.url}",
            file=sys.stderr,
            flush=True,
        )
    try:
        with use_telemetry(tel):
            rc = args.func(args)
    except NetworkPartitionedError as e:
        print(f"error: network partitioned: {e}", file=sys.stderr)
        return 2
    except ValueError as e:
        # bad config/topology/fault-spec values are user errors, not bugs
        print(f"error: {e}", file=sys.stderr)
        return 2
    finally:
        if exporter is not None:
            exporter.close()
        tel.close()
    metrics_path = getattr(args, "metrics", None)
    if metrics_path:
        path = Path(metrics_path)
        text = (
            tel.metrics.to_json()
            if path.suffix == ".json"
            else tel.metrics.to_prometheus()
        )
        try:
            path.write_text(text)
        except OSError as e:
            raise SystemExit(f"cannot write metrics file {path}: {e.strerror}")
        logger.info("wrote %d metrics to %s", len(tel.metrics), path)
    return rc


if __name__ == "__main__":
    sys.exit(main())
