"""Command-line interface for the routing study toolkit.

Usage (``python -m repro <command>``)::

    python -m repro describe --system theta
    python -m repro compare  --app milc --nodes 256 --samples 8
    python -m repro sweep    --app milc --samples 6
    python -m repro advise   --app hacc
    python -m repro facility --intervals 12
    python -m repro ensemble --app milc --jobs 8 --nodes 512 --mode AD3
    python -m repro calibrate                 # score constants vs the paper
    python -m repro calibrate --param stall_kappa --values 1,3,6

Every command prints paper-style text output; nothing is written to
disk.  All commands accept ``--seed`` for reproducibility.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.apps import app_by_name
from repro.core.advisor import recommend
from repro.core.analysis import improvement_table
from repro.core.biases import AD0, AD3, VENDOR_MODES, mode_by_name
from repro.core.ensembles import EnsembleConfig, run_ensemble
from repro.core.experiment import CampaignConfig, run_app_once, run_campaign, stats_by_mode
from repro.core.facility import run_default_change_study
from repro.core.metrics import LATENCY_PERCENTILES
from repro.mpi.env import RoutingEnv
from repro.topology.systems import cori, slingshot, theta
from repro.util import derive_rng

SYSTEMS = {"theta": theta, "cori": cori, "slingshot": slingshot}


def _system(name: str):
    if name not in SYSTEMS:
        raise SystemExit(f"unknown system {name!r}; choose from {sorted(SYSTEMS)}")
    return SYSTEMS[name]()


def cmd_describe(args) -> int:
    top = _system(args.system)
    print(top.describe())
    print(f"  routers: {top.n_routers}  links: {top.n_links}")
    print(f"  tiles/router: {top.tiles.total} ({top.tiles.network} network, {top.tiles.proc} processor)")
    print("  routing modes:")
    for m in VENDOR_MODES:
        print(f"    {m.describe()}")
    return 0


def cmd_compare(args) -> int:
    top = _system(args.system)
    app = app_by_name(args.app)()
    modes = tuple(mode_by_name(m) for m in args.modes.split(","))
    print(f"{app.describe()} on {top.params.name}, {args.samples} samples per mode ...")
    records = run_campaign(
        top,
        CampaignConfig(
            app=app, n_nodes=args.nodes, modes=modes, samples=args.samples, seed=args.seed
        ),
    )
    for mode, st in sorted(stats_by_mode(records).items(), key=lambda kv: kv[1].mean):
        print(f"  {mode:6s} mean {st.mean:8.1f} s  std {st.std:7.1f}  p95 {st.p95:8.1f}  (n={st.n})")
    for row in improvement_table(records, base_mode=modes[0].name, test_mode=modes[-1].name):
        print(
            f"\n{row.test_mode} over {row.base_mode}: "
            f"{row.time_improvement:+.1f}% time, {row.mpi_improvement:+.1f}% MPI"
        )
    return 0


def cmd_sweep(args) -> int:
    args.modes = "AD0,AD1,AD2,AD3"
    return cmd_compare(args)


def cmd_advise(args) -> int:
    top = _system(args.system)
    app = app_by_name(args.app)()
    print(f"profiling {app.name} on {top.params.name} ...")
    _, report, _ = run_app_once(
        top,
        app,
        np.arange(args.nodes),
        RoutingEnv(),
        rng=derive_rng(args.seed, "cli-advise", app.name),
    )
    print(report.summary())
    print(f"\n{recommend(report)}")
    return 0


def cmd_facility(args) -> int:
    top = _system(args.system)
    print(f"simulating 2 x {args.intervals} production intervals on {top.params.name} ...")
    study = run_default_change_study(top, n_intervals=args.intervals, seed=args.seed)
    change = study.counter_change()
    print(
        f"flits {change['flits']:+.1%}  stalls {change['stalls']:+.1%}  "
        f"ratio {change['ratio']:+.1%}"
    )
    lat = study.latency_change()
    print("latency change: " + "  ".join(f"P{p:g}:{lat[p]:+.1f}%" for p in LATENCY_PERCENTILES))
    return 0


def cmd_calibrate(args) -> int:
    from repro.core.calibration import (
        format_score,
        probe_observables,
        score_against_paper,
        sweep_parameter,
    )

    top = _system(args.system)
    if args.param:
        values = [float(v) for v in args.values.split(",")]
        print(f"sweeping {args.param} over {values} ...")
        out = sweep_parameter(top, args.param, values, samples=args.samples, seed=args.seed)
        for v, obs in out.items():
            print(
                f"  {args.param}={v:g}: milc_imp {obs['milc_improvement_pct']:+.1f}%  "
                f"hacc_imp {obs['hacc_improvement_pct']:+.1f}%  "
                f"milc_mean {obs['milc_ad0_mean_s']:.0f}s"
            )
    else:
        print("scoring the shipped constants against the paper anchors ...")
        obs = probe_observables(top, samples=args.samples, seed=args.seed)
        print(format_score(score_against_paper(obs)))
    return 0


def cmd_ensemble(args) -> int:
    top = _system(args.system)
    app = app_by_name(args.app)()
    mode = mode_by_name(args.mode)
    res = run_ensemble(
        top,
        EnsembleConfig(
            app=app,
            n_jobs=args.jobs,
            n_nodes=args.nodes,
            mode=mode,
            placement=args.placement,
            seed=args.seed,
        ),
    )
    snap = res.bank.snapshot()
    print(f"{args.jobs} x {args.nodes}-node {app.name} jobs under {mode.name}:")
    print(f"  job runtimes: {res.job_runtimes.min():.0f} - {res.job_runtimes.max():.0f} s")
    for cls in ("rank1", "rank2", "rank3", "proc_req"):
        print(
            f"  {cls:9s} flits {snap.flits[cls].sum():.3e}  "
            f"stalls {snap.stalls[cls].sum():.3e}  ratio {snap.class_ratio(cls):.3f}"
        )
    print(f"  network stalls/flits: {snap.network_ratio():.3f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro", description="Dragonfly adaptive-routing study toolkit"
    )
    sub = p.add_subparsers(dest="command", required=True)

    def common(sp):
        sp.add_argument("--system", default="theta", help="theta | cori | slingshot")
        sp.add_argument("--seed", type=int, default=2021)

    sp = sub.add_parser("describe", help="print a system's structure and the routing modes")
    common(sp)
    sp.set_defaults(func=cmd_describe)

    sp = sub.add_parser("compare", help="paired campaign over chosen modes")
    common(sp)
    sp.add_argument("--app", default="milc")
    sp.add_argument("--nodes", type=int, default=256)
    sp.add_argument("--samples", type=int, default=8)
    sp.add_argument("--modes", default="AD0,AD3", help="comma-separated, e.g. AD0,AD3")
    sp.set_defaults(func=cmd_compare)

    sp = sub.add_parser("sweep", help="campaign over all four vendor modes")
    common(sp)
    sp.add_argument("--app", default="milc")
    sp.add_argument("--nodes", type=int, default=256)
    sp.add_argument("--samples", type=int, default=6)
    sp.set_defaults(func=cmd_sweep)

    sp = sub.add_parser("advise", help="profile an app and recommend a bias")
    common(sp)
    sp.add_argument("--app", default="milc")
    sp.add_argument("--nodes", type=int, default=256)
    sp.set_defaults(func=cmd_advise)

    sp = sub.add_parser("facility", help="before/after default-change study")
    common(sp)
    sp.add_argument("--intervals", type=int, default=12)
    sp.set_defaults(func=cmd_facility)

    sp = sub.add_parser("calibrate", help="score (or sweep) the model constants")
    common(sp)
    sp.add_argument("--param", default=None, help="congestion constant to sweep")
    sp.add_argument("--values", default="", help="comma-separated sweep values")
    sp.add_argument("--samples", type=int, default=14)
    sp.set_defaults(func=cmd_calibrate)

    sp = sub.add_parser("ensemble", help="controlled full-reservation ensemble")
    common(sp)
    sp.add_argument("--app", default="milc")
    sp.add_argument("--jobs", type=int, default=8)
    sp.add_argument("--nodes", type=int, default=512)
    sp.add_argument("--mode", default="AD3")
    sp.add_argument("--placement", default="dispersed")
    sp.set_defaults(func=cmd_ensemble)

    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
