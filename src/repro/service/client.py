"""Thin stdlib client for the campaign service (used by ``repro submit``).

Every helper takes the service base URL (``http://host:port``) and
speaks the JSON schema documented in ``docs/SERVICE.md``.  Errors from
the service surface as :class:`ServiceError` with the server's message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request


class ServiceError(RuntimeError):
    """The service answered with an error status (message included)."""


def _call(url: str, *, data: dict | None = None, timeout: float = 30.0) -> dict:
    body = None
    headers = {"Accept": "application/json"}
    if data is not None:
        body = json.dumps(data).encode()
        headers["Content-Type"] = "application/json"
    req = urllib.request.Request(url, data=body, headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        try:
            detail = json.loads(exc.read().decode()).get("error", "")
        except Exception:
            detail = ""
        raise ServiceError(f"HTTP {exc.code}: {detail or exc.reason}") from exc
    except urllib.error.URLError as exc:
        raise ServiceError(f"service unreachable at {url}: {exc.reason}") from exc


def submit(base_url: str, manifest: dict, *, jobs: int | None = None) -> dict:
    """POST the campaign; returns ``{"id", "deduped", "state"}``."""
    payload: dict = {"manifest": manifest}
    if jobs is not None:
        payload["jobs"] = jobs
    return _call(f"{base_url.rstrip('/')}/campaigns", data=payload)


def status(base_url: str, job_id: str) -> dict:
    """The job's status document (records included once done)."""
    return _call(f"{base_url.rstrip('/')}/campaigns/{job_id}")


def cache_stats(base_url: str) -> dict:
    """The store counters (``cache_hits_total`` et al.)."""
    return _call(f"{base_url.rstrip('/')}/cache/stats")


def wait(
    base_url: str,
    job_id: str,
    *,
    timeout: float = 600.0,
    poll: float = 0.25,
) -> dict:
    """Poll until the job leaves the running states; returns its status.

    Raises :class:`ServiceError` on timeout or if the job errored.
    """
    deadline = time.monotonic() + timeout
    while True:
        doc = status(base_url, job_id)
        if doc.get("state") == "done":
            return doc
        if doc.get("state") == "error":
            raise ServiceError(f"campaign {job_id} failed: {doc.get('error')}")
        if time.monotonic() >= deadline:
            raise ServiceError(f"campaign {job_id} still {doc.get('state')} after {timeout}s")
        time.sleep(poll)
