"""Thin stdlib client for the campaign service (used by ``repro submit``).

Every helper takes the service base URL (``http://host:port``) and
speaks the JSON schema documented in ``docs/SERVICE.md``.  Errors from
the service surface as :class:`ServiceError` with the server's message.

Transient failures — connection refused/reset, timeouts, and every 5xx
(a restarting or draining server answers 503) — are retried under the
shared full-jitter backoff policy.  Retrying a ``submit`` is safe by
construction: the server coalesces identical submissions single-flight
on the campaign fingerprint, so a resubmission lands on the same job.
4xx responses are the caller's fault and surface immediately.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.util.backoff import Backoff, BackoffPolicy

#: full-jitter schedule between transient-failure retries
RETRY_POLICY = BackoffPolicy(base=0.2, cap=3.0)
#: transient failures retried after the first attempt
DEFAULT_RETRIES = 4


class ServiceError(RuntimeError):
    """The service answered with an error status (message included)."""


def _call(
    url: str,
    *,
    data: dict | None = None,
    timeout: float = 30.0,
    retries: int = DEFAULT_RETRIES,
    backoff: Backoff | None = None,
) -> dict:
    body = None
    headers = {"Accept": "application/json"}
    if data is not None:
        body = json.dumps(data).encode()
        headers["Content-Type"] = "application/json"
    bo = backoff if backoff is not None else Backoff(RETRY_POLICY)
    for attempt in range(1, retries + 2):
        req = urllib.request.Request(url, data=body, headers=headers)
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                return json.loads(resp.read().decode())
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode()).get("error", "")
            except Exception:
                detail = ""
            err = ServiceError(f"HTTP {exc.code}: {detail or exc.reason}")
            if exc.code < 500 or attempt > retries:
                raise err from exc
        except urllib.error.URLError as exc:
            if attempt > retries:
                raise ServiceError(
                    f"service unreachable at {url}: {exc.reason}"
                ) from exc
        bo.sleep(attempt)
    raise AssertionError("unreachable")  # pragma: no cover


def submit(base_url: str, manifest: dict, *, jobs: int | None = None) -> dict:
    """POST the campaign; returns ``{"id", "deduped", "state"}``."""
    payload: dict = {"manifest": manifest}
    if jobs is not None:
        payload["jobs"] = jobs
    return _call(f"{base_url.rstrip('/')}/campaigns", data=payload)


def status(base_url: str, job_id: str) -> dict:
    """The job's status document (records included once done)."""
    return _call(f"{base_url.rstrip('/')}/campaigns/{job_id}")


def cache_stats(base_url: str) -> dict:
    """The store counters (``cache_hits_total`` et al.)."""
    return _call(f"{base_url.rstrip('/')}/cache/stats")


def wait(
    base_url: str,
    job_id: str,
    *,
    timeout: float = 600.0,
    poll: float = 0.25,
) -> dict:
    """Poll until the job leaves the running states; returns its status.

    Raises :class:`ServiceError` on timeout or if the job errored.
    """
    deadline = time.monotonic() + timeout
    while True:
        doc = status(base_url, job_id)
        if doc.get("state") == "done":
            return doc
        if doc.get("state") == "error":
            raise ServiceError(f"campaign {job_id} failed: {doc.get('error')}")
        if time.monotonic() >= deadline:
            raise ServiceError(f"campaign {job_id} still {doc.get('state')} after {timeout}s")
        time.sleep(poll)
