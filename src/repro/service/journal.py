"""Durable job journal: `repro serve` survives a SIGKILL.

The journal closes the service's biggest single point of loss: before
it, a restarted server had never heard of the campaigns it accepted.
Every submitted job gets one JSON file under the journal directory,
rewritten atomically (write-tmp → fsync → ``os.replace``) at each state
transition, so an entry is always a complete snapshot of what the
server last knew:

    <job id>.json   {"kind", "version", "id", "key", "manifest",
                     "jobs", "state", "error", "submitted_at",
                     "finished_at"}

On restart, :meth:`CampaignService.recover` re-adopts every entry whose
state is not terminal (``done``/``error``) and re-executes it — through
the result cache, so completed work is served as hits and the records
come out byte-identical to an uninterrupted run.

Journal I/O is *advisory by contract*: a failed write degrades recovery
(the restarted server may not know about one job) but must never fail
the submission or the campaign itself — callers swallow
:class:`OSError` and count it.
"""

from __future__ import annotations

import json
import os
import uuid
from pathlib import Path

from repro.chaos import fs as chaos_fs

_KIND = "repro-job-journal"
_VERSION = 1

#: job states that need no recovery
TERMINAL_STATES = ("done", "error")


class JobJournal:
    """One directory of per-job recovery snapshots (see module doc)."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.dir = Path(directory)
        self.dir.mkdir(parents=True, exist_ok=True)

    def _path(self, jid: str) -> Path:
        return self.dir / f"{jid}.json"

    def record(
        self,
        jid: str,
        *,
        key: str,
        manifest: dict,
        jobs: int | None,
        state: str,
        error: str | None = None,
        submitted_at: float | None = None,
        finished_at: float | None = None,
    ) -> None:
        """Atomically (re)write one job's snapshot.  Raises ``OSError``
        on filesystem failure — the *caller* decides that journal loss
        is survivable, not this layer."""
        entry = {
            "kind": _KIND,
            "version": _VERSION,
            "id": jid,
            "key": key,
            "manifest": manifest,
            "jobs": jobs,
            "state": state,
            "error": error,
            "submitted_at": submitted_at,
            "finished_at": finished_at,
        }
        path = self._path(jid)
        tmp = self.dir / f".{jid}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
        try:
            chaos_fs.write_text_atomic(
                path,
                json.dumps(entry) + "\n",
                tmp,
                post_tmp="service.journal.append",
            )
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def load(self) -> list[dict]:
        """Every readable entry, oldest submission first.

        Unparseable files (a torn write from a dying disk — the atomic
        protocol never produces one, but the journal must not trust its
        own luck) are skipped, not raised.
        """
        out = []
        try:
            names = sorted(os.listdir(self.dir))
        except OSError:
            return out
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                entry = json.loads((self.dir / name).read_bytes())
            except (OSError, ValueError):
                continue
            if (
                isinstance(entry, dict)
                and entry.get("kind") == _KIND
                and entry.get("version") == _VERSION
                and isinstance(entry.get("manifest"), dict)
            ):
                out.append(entry)
        out.sort(key=lambda e: (e.get("submitted_at") or 0.0, e.get("id", "")))
        return out

    def pending(self) -> list[dict]:
        """Entries a restarted server must re-adopt (non-terminal state)."""
        return [e for e in self.load() if e.get("state") not in TERMINAL_STATES]

    def remove(self, jid: str) -> None:
        try:
            os.unlink(self._path(jid))
        except OSError:
            pass

    def prune_terminal(self) -> int:
        """Drop entries for finished jobs; returns how many were removed."""
        n = 0
        for entry in self.load():
            if entry.get("state") in TERMINAL_STATES:
                self.remove(entry["id"])
                n += 1
        return n
