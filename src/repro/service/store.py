"""Durable content-addressed RunRecord store (the memoization layer).

Every campaign run is already a pure function of its content address:
the campaign fingerprint (:func:`repro.core.experiment.campaign_fingerprint`)
plus the run's stateless RNG key ``(sample, mode)`` fully determine the
produced :class:`~repro.core.experiment.RunRecord`, byte for byte.  The
store turns that property into a cache that is safe to share between
campaigns, processes, and service restarts:

* **Commit protocol** — an entry lands via write-tmp → fsync →
  ``os.replace``, so a SIGKILL at any instant leaves either nothing
  visible or a complete entry; concurrent writers of the same key are
  harmless because deterministic duplicates are byte-identical.
* **Integrity** — each entry carries a SHA-256 over its canonical
  ``(fingerprint, rng_key, record)`` JSON.  A read that fails to parse,
  fails the hash, or was addressed to a different identity is
  **quarantined** (moved aside, never served, never raised) and counts
  as a miss — a torn or bit-flipped entry can slow a campaign down but
  can never corrupt one.
* **Eviction** — optional ``max_bytes`` / ``max_entries`` budgets are
  enforced LRU (entry-file mtime, refreshed on every hit).  Keys pinned
  by an in-flight campaign (:meth:`RunRecordStore.pinned`) are never
  evicted mid-use.

The entry key hashes the same ``{"config": fingerprint, "rng_key":
{"sample", "mode"}}`` structure as :func:`repro.dist.queue.task_id`, so
a cache entry, a queue task, and a checkpoint record for the same run
all share one content address (the store keeps more digest bits).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.chaos import fs as chaos_fs
from repro.chaos.failpoints import failpoint
from repro.core.checkpoint import StoreUnavailableError

__all__ = ["CacheStats", "RunRecordStore", "StoreUnavailableError", "entry_key"]

_KIND = "repro-run-cache"
_VERSION = 1

#: hex digits of SHA-256 kept in entry keys (collision odds are
#: negligible at any realistic cache size; the full hash guards content)
KEY_LEN = 32


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def entry_key(fingerprint: dict, sample: int, mode: str) -> str:
    """Content address of one run: campaign fingerprint + RNG key."""
    key = {"config": fingerprint, "rng_key": {"sample": sample, "mode": mode}}
    return hashlib.sha256(_canonical(key).encode()).hexdigest()[:KEY_LEN]


def _entry_digest(fingerprint: dict, rng_key: dict, record: dict) -> str:
    body = {"fingerprint": fingerprint, "rng_key": rng_key, "record": record}
    return hashlib.sha256(_canonical(body).encode()).hexdigest()


@dataclass
class CacheStats:
    """Point-in-time store accounting (``/cache/stats``, ``cache-status``).

    ``entries``/``bytes``/``quarantined_files`` are read from disk;
    the counters accumulate over this process's lifetime.
    """

    entries: int = 0
    bytes: int = 0
    quarantined_files: int = 0
    hits: int = 0
    misses: int = 0
    puts: int = 0
    dedup_puts: int = 0
    evictions: int = 0
    quarantined: int = 0

    def to_dict(self) -> dict:
        return {
            "entries": self.entries,
            "bytes": self.bytes,
            "quarantined_files": self.quarantined_files,
            "cache_hits_total": self.hits,
            "cache_misses_total": self.misses,
            "cache_puts_total": self.puts,
            "cache_dedup_puts_total": self.dedup_puts,
            "cache_evictions_total": self.evictions,
            "cache_quarantined_total": self.quarantined,
        }


class RunRecordStore:
    """One cache directory of committed run records (see module docstring).

    Thread-safe: the HTTP service reads and writes from several campaign
    threads at once.  Multi-process sharing is safe for correctness
    (commits are atomic, duplicates byte-identical); the in-memory byte
    total can drift under concurrent external writers — :meth:`rescan`
    resyncs it.

    Layout under ``root``::

        entries/<key>.json   committed entries (complete or absent)
        tmp/                 in-flight scratch, invisible to readers
        quarantine/          entries that failed parse or integrity
    """

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        max_bytes: int | None = None,
        max_entries: int | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be > 0, got {max_bytes!r}")
        if max_entries is not None and max_entries <= 0:
            raise ValueError(f"max_entries must be > 0, got {max_entries!r}")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.entries_dir = self.root / "entries"
        self.tmp_dir = self.root / "tmp"
        self.quarantine_dir = self.root / "quarantine"
        for d in (self.root, self.entries_dir, self.tmp_dir, self.quarantine_dir):
            d.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._pins: dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.dedup_puts = 0
        self.evictions = 0
        self.quarantined = 0
        # orphaned scratch from a previous SIGKILLed writer is garbage
        # by construction (nothing visible references it)
        for stale in self.tmp_dir.iterdir():
            try:
                stale.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.entries_dir / f"{key}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a damaged entry aside so it is never read again."""
        dest = self.quarantine_dir / f"{path.name}.{uuid.uuid4().hex[:8]}"
        try:
            os.replace(path, dest)
        except OSError:
            try:
                path.unlink()
            except OSError:
                return  # someone else moved it; either way it is gone
        self.quarantined += 1

    def get(self, fingerprint: dict, sample: int, mode: str) -> dict | None:
        """The cached record dict for one run, or ``None`` on a miss.

        Never raises on a damaged entry: parse failures, integrity-hash
        mismatches, and identity mismatches quarantine the file and
        return ``None`` — the caller simply re-executes the run.
        """
        key = entry_key(fingerprint, sample, mode)
        path = self._path(key)
        with self._lock:
            try:
                failpoint("store.get.read", path=path)
                raw = path.read_bytes()
            except FileNotFoundError:
                self.misses += 1
                return None
            except OSError:
                self.misses += 1
                return None
            try:
                entry = json.loads(raw)
            except ValueError:  # JSONDecodeError, or invalid UTF-8
                self._quarantine(path)
                self.misses += 1
                return None
            if not self._valid(entry, fingerprint, sample, mode):
                self._quarantine(path)
                self.misses += 1
                return None
            try:
                os.utime(path)  # LRU touch: a hit is a use
            except OSError:
                pass
            self.hits += 1
            return entry["record"]

    @staticmethod
    def _valid(entry: Any, fingerprint: dict, sample: int, mode: str) -> bool:
        if not isinstance(entry, dict):
            return False
        if entry.get("kind") != _KIND or entry.get("version") != _VERSION:
            return False
        rng_key = entry.get("rng_key")
        record = entry.get("record")
        if not isinstance(rng_key, dict) or not isinstance(record, dict):
            return False
        if entry.get("fingerprint") != fingerprint:
            return False
        if rng_key != {"sample": sample, "mode": mode}:
            return False
        return entry.get("sha256") == _entry_digest(fingerprint, rng_key, record)

    def put(self, fingerprint: dict, sample: int, mode: str, record: dict) -> bool:
        """Commit one run's record; ``False`` when the key already exists.

        Existing entries are kept (first-commit-wins is free: a
        deterministic duplicate is byte-identical, and skipping the
        write preserves the original's LRU age).

        Raises :class:`~repro.core.checkpoint.StoreUnavailableError`
        when the filesystem fails the commit (ENOSPC/EIO); the scratch
        file is removed first, so a failed put leaves nothing behind.
        """
        key = entry_key(fingerprint, sample, mode)
        path = self._path(key)
        rng_key = {"sample": sample, "mode": mode}
        entry = {
            "kind": _KIND,
            "version": _VERSION,
            "key": key,
            "fingerprint": fingerprint,
            "rng_key": rng_key,
            "sha256": _entry_digest(fingerprint, rng_key, record),
            "record": record,
        }
        with self._lock:
            if path.exists():
                self.dedup_puts += 1
                return False
            tmp = self.tmp_dir / f".{key}.{os.getpid()}.{uuid.uuid4().hex[:8]}"
            try:
                chaos_fs.write_text_atomic(
                    path,
                    json.dumps(entry) + "\n",
                    tmp,
                    post_tmp="store.commit.post_tmp",
                    pre_rename="store.commit.pre_rename",
                )
            except OSError as exc:
                raise StoreUnavailableError("cache entry commit", exc) from exc
            finally:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            self.puts += 1
            self._evict_to_budget()
            return True

    # ------------------------------------------------------------------
    # pinning: in-flight campaigns protect their working set
    # ------------------------------------------------------------------
    @contextmanager
    def pinned(self, keys: Iterator[str] | list[str]) -> Iterator[None]:
        """Hold ``keys`` exempt from eviction for the block's duration."""
        keys = list(keys)
        with self._lock:
            for k in keys:
                self._pins[k] = self._pins.get(k, 0) + 1
        try:
            yield
        finally:
            with self._lock:
                for k in keys:
                    n = self._pins.get(k, 0) - 1
                    if n <= 0:
                        self._pins.pop(k, None)
                    else:
                        self._pins[k] = n

    def pinned_keys(self) -> set[str]:
        with self._lock:
            return set(self._pins)

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------
    def _scan(self) -> list[tuple[float, str, int]]:
        """``(mtime, key, size)`` per entry; unreadable files are skipped."""
        out = []
        try:
            names = os.listdir(self.entries_dir)
        except OSError:
            return out
        for name in sorted(names):
            if not name.endswith(".json"):
                continue
            try:
                st = (self.entries_dir / name).stat()
            except OSError:
                continue
            out.append((st.st_mtime, name[: -len(".json")], st.st_size))
        return out

    def _evict_to_budget(self) -> int:
        """Delete oldest unpinned entries until inside the budgets."""
        if self.max_bytes is None and self.max_entries is None:
            return 0
        entries = self._scan()
        total = sum(size for _, _, size in entries)
        count = len(entries)
        evicted = 0
        for _, key, size in sorted(entries):
            over_bytes = self.max_bytes is not None and total > self.max_bytes
            over_count = self.max_entries is not None and count > self.max_entries
            if not (over_bytes or over_count):
                break
            if key in self._pins:
                continue
            try:
                self._path(key).unlink()
            except OSError:
                continue
            total -= size
            count -= 1
            evicted += 1
        self.evictions += evicted
        return evicted

    # ------------------------------------------------------------------
    def verify(self) -> tuple[int, list[str]]:
        """Integrity-scan every committed entry: ``(ok_count, bad_keys)``.

        An entry is *bad* when it fails to parse, carries the wrong
        kind/version, or its SHA-256 disagrees with its own content —
        precisely the damage a torn or interrupted write would leave if
        the commit protocol ever let one become visible.  Bad entries
        are quarantined exactly as :meth:`get` would.  The chaos soak
        asserts ``bad_keys == []`` after every failure schedule.
        """
        ok = 0
        bad: list[str] = []
        with self._lock:
            for _, key, _ in self._scan():
                path = self._path(key)
                try:
                    entry = json.loads(path.read_bytes())
                except (OSError, ValueError):
                    bad.append(key)
                    self._quarantine(path)
                    continue
                if (
                    not isinstance(entry, dict)
                    or entry.get("kind") != _KIND
                    or entry.get("version") != _VERSION
                    or not isinstance(entry.get("rng_key"), dict)
                    or not isinstance(entry.get("record"), dict)
                    or entry.get("sha256")
                    != _entry_digest(
                        entry.get("fingerprint"),
                        entry["rng_key"],
                        entry["record"],
                    )
                ):
                    bad.append(key)
                    self._quarantine(path)
                    continue
                ok += 1
        return ok, bad

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return len(self._scan())

    def stats(self) -> CacheStats:
        with self._lock:
            entries = self._scan()
            try:
                nq = sum(1 for _ in self.quarantine_dir.iterdir())
            except OSError:
                nq = 0
            return CacheStats(
                entries=len(entries),
                bytes=sum(size for _, _, size in entries),
                quarantined_files=nq,
                hits=self.hits,
                misses=self.misses,
                puts=self.puts,
                dedup_puts=self.dedup_puts,
                evictions=self.evictions,
                quarantined=self.quarantined,
            )
