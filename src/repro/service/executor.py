"""Memoizing campaign executor (cache in front of every dispatch path).

:func:`run_campaign_cached` is the cache-aware twin of
:func:`repro.core.experiment.run_campaign`.  Before dispatching
anything it consults a :class:`~repro.service.store.RunRecordStore`
keyed by ``(campaign fingerprint, RNG key)``; hits are served from
disk, misses execute through exactly the machinery the uncached paths
use — the serial loop, the :mod:`repro.parallel` fork pool, or a
:mod:`repro.dist` shared-directory queue — and every fresh ``ok``
record is committed back to the store.

Equivalence contract: because each run is a pure function of its
content address, a warm campaign's records and checkpoint JSONL are
**byte-identical** to a cold serial run, while executing zero
simulation steps.  The checkpoint keeps its canonical (sample-major,
mode-minor) order by committing the contiguous completed prefix of
the slot list, interleaving cache hits and fresh results exactly where
a serial loop would have written them.  Error-status records are never
cached: a failed run re-executes on the next request (the record it
produces is still deterministic).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core import checkpoint as ckpt
from repro.core.experiment import (
    CampaignConfig,
    RunRecord,
    _effective_jobs,
    _error_record,
    campaign_fingerprint,
    emit_campaign_end,
    emit_campaign_start,
    execute_run,
    prepare_checkpoint,
    resolve_scenarios,
    sample_draws,
)
from repro.scheduler.background import BackgroundModel, BackgroundScenario
from repro.scheduler.placement import groups_spanned
from repro.service.store import RunRecordStore, entry_key
from repro.telemetry import MetricsRegistry, Telemetry, resolve_telemetry
from repro.topology.dragonfly import DragonflyTopology

#: per-sample draw cache for the serial miss loop (mirrors the worker's)
_SAMPLE_CACHE_CAP = 4


@dataclass
class CacheOutcome:
    """What one cached campaign did: the records plus cache accounting."""

    records: list[RunRecord] = field(default_factory=list)
    hits: int = 0
    misses: int = 0
    resumed: int = 0

    @property
    def total(self) -> int:
        return len(self.records)


def run_campaign_cached(
    top: DragonflyTopology,
    cfg: CampaignConfig,
    *,
    store: RunRecordStore,
    background_model: BackgroundModel | None = None,
    scenarios: list[BackgroundScenario] | None = None,
    telemetry: Telemetry | None = None,
    checkpoint_path: str | None = None,
    resume: bool = False,
    jobs: int | None = None,
    queue_dir: str | None = None,
    fallback_after: float = 10.0,
    poll: float = 0.2,
) -> CacheOutcome:
    """Run the campaign through the result cache; returns a
    :class:`CacheOutcome` whose ``records`` match ``run_campaign``.

    Dispatch of misses follows the same rules as ``run_campaign``:
    ``queue_dir`` fans them over a shared-directory work queue,
    ``jobs`` > 1 over the local fork pool, otherwise the serial loop.
    Cache hits never dispatch at all.
    """
    tel = resolve_telemetry(telemetry)
    run_top = top.with_faults(cfg.faults) if cfg.faults is not None else top
    done = prepare_checkpoint(checkpoint_path, top, cfg, resume)
    emit_campaign_start(tel, cfg, done, cache=str(store.root))
    bm, scenarios = resolve_scenarios(top, cfg, background_model, scenarios)
    fp = campaign_fingerprint(top, cfg)
    mode_by_name = {m.name: m for m in cfg.modes}

    # canonical slot list: (sample-major, mode-minor), same as every
    # other executor — slot order IS checkpoint order
    runs: list[tuple[int, str]] = [
        (i, mode.name) for i in range(cfg.samples) for mode in cfg.modes
    ]
    total = len(runs)
    slots: list[RunRecord | None] = [None] * total
    #: "" (miss, awaiting execution), "resume" (already in the
    #: checkpoint file) or "hit" (from the store, needs appending)
    origin = [""] * total
    keys = [entry_key(fp, i, mode) for i, mode in runs]

    outcome = CacheOutcome()
    with store.pinned(keys):
        pending: list[tuple[int, int, str]] = []  # (slot index, sample, mode)
        for idx, (i, mode) in enumerate(runs):
            prior = done.get((i, mode))
            if prior is not None:
                slots[idx] = prior
                origin[idx] = "resume"
                outcome.resumed += 1
                continue
            cached = store.get(fp, i, mode)
            if cached is not None:
                slots[idx] = ckpt.record_from_dict(cached)
                origin[idx] = "hit"
                outcome.hits += 1
            else:
                pending.append((idx, i, mode))
        outcome.misses = len(pending)

        m = tel.metrics
        if m.enabled:
            if outcome.hits:
                m.counter("cache_hits_total", "runs served from the cache").inc(
                    outcome.hits
                )
            if outcome.misses:
                m.counter("cache_misses_total", "runs executed on a miss").inc(
                    outcome.misses
                )
        tel.event(
            "cache.lookup",
            hits=outcome.hits,
            misses=outcome.misses,
            resumed=outcome.resumed,
            total=total,
            store=str(store.root),
        )

        # ------------------------------------------------------------------
        # canonical-order commit of the contiguous completed prefix:
        # hits append exactly where the serial loop would have written
        # them, fresh results slot in as they arrive
        # ------------------------------------------------------------------
        buffered: dict[int, dict] = {}
        worker_ids: dict[object, int] = {}
        flush_pos = 0

        def _flush() -> None:
            nonlocal flush_pos
            while flush_pos < total:
                if slots[flush_pos] is None:
                    item = buffered.pop(flush_pos, None)
                    if item is None:
                        return
                    rec = item["record"]
                    slots[flush_pos] = rec
                    if checkpoint_path is not None:
                        ckpt.append_record(checkpoint_path, rec)
                    events = item.get("events") or []
                    if events:
                        wid = worker_ids.setdefault(
                            item.get("worker_key"), len(worker_ids)
                        )
                        for ev in events:
                            fields = {k: v for k, v in ev.items() if k != "ev"}
                            fields["worker"] = wid
                            fields["run_index"] = flush_pos
                            tel.trace.emit(ev["ev"], **fields)
                    metrics = item.get("metrics")
                    if metrics is not None and tel.metrics.enabled:
                        tel.metrics.merge(metrics, tag=flush_pos)
                elif origin[flush_pos] == "hit" and checkpoint_path is not None:
                    ckpt.append_record(checkpoint_path, slots[flush_pos])
                flush_pos += 1

        def _commit(idx: int, sample: int, mode: str, item: dict) -> None:
            rec = item["record"]
            if rec.ok:
                try:
                    store.put(fp, sample, mode, ckpt.record_to_dict(rec))
                except ckpt.StoreUnavailableError as exc:
                    # a full/broken cache disk degrades the store to a
                    # no-op: the run is already computed, the campaign
                    # (and its checkpoint) must not lose it
                    tel.event(
                        "cache.put_failed", sample=sample, mode=mode, error=str(exc)
                    )
            buffered[idx] = item
            _flush()

        _flush()  # leading hits (or a fully-warm campaign) commit now

        if pending and queue_dir is not None:
            _run_via_queue(
                top, run_top, cfg, bm, scenarios, tel, queue_dir, pending,
                jobs, _commit, fallback_after=fallback_after, poll=poll,
            )
        elif pending and _effective_jobs(jobs) > 1:
            _run_via_pool(
                top, run_top, cfg, bm, scenarios, tel, mode_by_name, pending,
                _effective_jobs(jobs), _commit,
            )
        elif pending:
            draw_cache: dict[int, tuple] = {}
            for idx, sample, mode in pending:
                draws = draw_cache.get(sample)
                if draws is None:
                    draws = sample_draws(top, cfg, sample, bm, scenarios)
                    if len(draw_cache) >= _SAMPLE_CACHE_CAP:
                        draw_cache.pop(next(iter(draw_cache)))
                    draw_cache[sample] = draws
                nodes, bg, intensity = draws
                rec = execute_run(
                    top, run_top, cfg, sample, mode_by_name[mode],
                    nodes, bg, intensity, tel,
                )
                _commit(idx, sample, mode, {"record": rec})

        _flush()

    outcome.records = [rec for rec in slots if rec is not None]
    emit_campaign_end(tel, cfg, outcome.records)
    return outcome


def _run_via_pool(
    top: DragonflyTopology,
    run_top: DragonflyTopology,
    cfg: CampaignConfig,
    bm: BackgroundModel | None,
    scenarios: list[BackgroundScenario] | None,
    tel: Telemetry,
    mode_by_name: dict,
    pending: list[tuple[int, int, str]],
    jobs: int,
    commit,
) -> None:
    """Fan misses over the local fork pool (the PR 3 machinery)."""
    from repro.parallel.campaign import _CampaignContext, _init_worker, _run_task
    from repro.parallel.executor import run_tasks
    from repro.parallel.spec import RunTask

    by_index = {idx: (sample, mode) for idx, sample, mode in pending}
    tasks = [
        RunTask(index=idx, sample=sample, mode=mode)
        for idx, sample, mode in pending
    ]
    ctx = _CampaignContext(
        top,
        run_top,
        cfg,
        bm,
        scenarios,
        trace_enabled=tel.trace.enabled,
        metrics_enabled=tel.metrics.enabled,
        series=tel.series,
    )
    for out in run_tasks(
        tasks, _run_task, jobs=jobs, initializer=_init_worker, initargs=(ctx,)
    ):
        task = out.task
        sample, mode = by_index[task.index]
        if out.ok:
            tr = out.result
            item = {
                "record": tr.record,
                "events": tr.events,
                "metrics": tr.metrics,
                "worker_key": tr.pid,
            }
        else:
            # worker process died repeatedly on this run: isolate it,
            # exactly like the uncached parallel path does
            nodes, _, intensity = sample_draws(top, cfg, sample, bm, scenarios)
            rec = _error_record(
                cfg,
                mode_by_name[mode],
                sample,
                groups_spanned(top, nodes),
                intensity,
                out.error,
                out.attempts,
            )
            tel.event(
                "guard.worker_lost",
                label=f"{cfg.app.name}-{mode}-s{sample}",
                sample=sample,
                mode=mode,
                attempts=out.attempts,
                error=str(out.error),
            )
            item = {"record": rec, "worker_key": os.getpid()}
        commit(task.index, sample, mode, item)


def _run_via_queue(
    top: DragonflyTopology,
    run_top: DragonflyTopology,
    cfg: CampaignConfig,
    bm: BackgroundModel | None,
    scenarios: list[BackgroundScenario] | None,
    tel: Telemetry,
    queue_dir: str,
    pending: list[tuple[int, int, str]],
    jobs: int | None,
    commit,
    *,
    fallback_after: float,
    poll: float,
) -> None:
    """Fan misses over a shared-directory work queue (the PR 8 machinery).

    Only the cache misses are materialized as queue tasks; a mostly-warm
    campaign puts almost nothing on the fleet.
    """
    from repro.dist.coordinator import DistDispatcher
    from repro.dist.queue import QueueTask, WorkQueue, task_id

    fp = campaign_fingerprint(top, cfg)
    qtasks = [
        QueueTask(tid=task_id(fp, sample, mode), index=idx, sample=sample, mode=mode)
        for idx, sample, mode in pending
    ]
    by_index = {idx: (sample, mode) for idx, sample, mode in pending}
    queue = WorkQueue(queue_dir)
    dispatcher = DistDispatcher(
        top, run_top, cfg, bm, scenarios, tel, queue, qtasks,
        jobs=jobs, fallback_after=fallback_after, poll=poll,
    )
    for task, payload in dispatcher.run():
        sample, mode = by_index[task.index]
        wire = payload.get("metrics")
        commit(
            task.index,
            sample,
            mode,
            {
                "record": ckpt.record_from_dict(payload["record"]),
                "events": payload.get("events"),
                "metrics": MetricsRegistry.from_wire(wire) if wire else None,
                "worker_key": str(payload.get("worker", "?")),
            },
        )
