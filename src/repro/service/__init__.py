"""Campaign-as-a-service: content-addressed memoization + HTTP front-end.

Three layers, each usable on its own (see ``docs/SERVICE.md``):

* :mod:`repro.service.store` — a durable, content-addressed
  :class:`RunRecordStore` keyed by ``(campaign fingerprint, RNG key)``,
  with crash-atomic commits, per-entry integrity hashes, corrupted-entry
  quarantine, and LRU size-bounded eviction.
* :mod:`repro.service.executor` — :func:`run_campaign_cached`, the
  memoizing twin of :func:`repro.core.experiment.run_campaign`: cache
  hits are served from the store, misses fan out through the existing
  fork pool or shared-directory queue, and everything commits back in
  canonical order so cached and fresh campaigns are byte-identical.
* :mod:`repro.service.http` — an asyncio HTTP/JSON service (stdlib
  only) accepting campaign submissions, deduping identical concurrent
  requests into one execution, and streaming live progress events.
  With a journal directory (:mod:`repro.service.journal`) it re-adopts
  in-flight campaigns after a crash or restart, and drains gracefully
  on SIGTERM (see ``docs/CHAOS.md``).
"""

from repro.core.checkpoint import StoreUnavailableError
from repro.service.executor import CacheOutcome, run_campaign_cached
from repro.service.http import CampaignService, ServiceDraining
from repro.service.journal import JobJournal
from repro.service.store import CacheStats, RunRecordStore, entry_key

__all__ = [
    "CacheOutcome",
    "CacheStats",
    "CampaignService",
    "JobJournal",
    "RunRecordStore",
    "ServiceDraining",
    "StoreUnavailableError",
    "entry_key",
    "run_campaign_cached",
]
