"""Campaign-as-a-service: content-addressed memoization + HTTP front-end.

Three layers, each usable on its own (see ``docs/SERVICE.md``):

* :mod:`repro.service.store` — a durable, content-addressed
  :class:`RunRecordStore` keyed by ``(campaign fingerprint, RNG key)``,
  with crash-atomic commits, per-entry integrity hashes, corrupted-entry
  quarantine, and LRU size-bounded eviction.
* :mod:`repro.service.executor` — :func:`run_campaign_cached`, the
  memoizing twin of :func:`repro.core.experiment.run_campaign`: cache
  hits are served from the store, misses fan out through the existing
  fork pool or shared-directory queue, and everything commits back in
  canonical order so cached and fresh campaigns are byte-identical.
* :mod:`repro.service.http` — an asyncio HTTP/JSON service (stdlib
  only) accepting campaign submissions, deduping identical concurrent
  requests into one execution, and streaming live progress events.
"""

from repro.service.executor import CacheOutcome, run_campaign_cached
from repro.service.http import CampaignService
from repro.service.store import CacheStats, RunRecordStore, entry_key

__all__ = [
    "CacheOutcome",
    "CacheStats",
    "CampaignService",
    "RunRecordStore",
    "entry_key",
    "run_campaign_cached",
]
