"""Asyncio HTTP/JSON front-end for the memoizing campaign executor.

Stdlib only.  The service accepts campaign submissions in the dist
manifest wire form (:func:`repro.dist.manifest.campaign_to_manifest` —
the same schema the shared-directory queue round-trips), executes each
through :func:`repro.service.executor.run_campaign_cached` on a worker
thread, and exposes:

* ``POST /campaigns``                 — submit ``{"manifest": ..., "jobs": ...}``;
  returns ``{"id", "deduped", "state"}``.  Concurrent submissions of an
  identical campaign (same fingerprint) coalesce **single-flight** into
  one execution — every caller gets the same id and, through the cache,
  byte-identical results.
* ``GET  /campaigns``                 — all known jobs, newest last.
* ``GET  /campaigns/<id>``            — state + live progress snapshot +
  cache accounting; completed jobs include the full record dicts.
* ``GET  /campaigns/<id>/events``     — NDJSON progress stream (replay
  of everything so far, then live follow until the job ends), fed by
  the PR 7 :class:`~repro.telemetry.stream.EventBus`.
* ``GET  /cache/stats``               — the store's counters
  (``cache_hits_total`` et al.) — the hit-rate contract surface.
* ``GET  /healthz``                   — liveness.

The HTTP layer is deliberately minimal (request line + headers +
Content-Length body, ``Connection: close``), matching the PR 7
exporter's scope: an operator surface, not a general web server.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import threading
import time
from typing import Any

from repro.chaos.failpoints import failpoint
from repro.core import checkpoint as ckpt
from repro.core.experiment import campaign_fingerprint
from repro.dist.manifest import NotDistributable, manifest_series, manifest_to_campaign
from repro.service.executor import CacheOutcome, run_campaign_cached
from repro.service.journal import JobJournal
from repro.service.store import RunRecordStore
from repro.telemetry import MetricsRegistry, Telemetry
from repro.telemetry.stream import BusTraceWriter, CampaignProgress, EventBus

_MAX_BODY = 8 * 1024 * 1024


class ServiceDraining(RuntimeError):
    """Submission rejected: the server is shutting down (HTTP 503)."""


def _job_key(fingerprint: dict) -> str:
    """Single-flight identity of a submission: its campaign fingerprint."""
    body = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode()).hexdigest()[:24]


class _Job:
    """One submitted campaign: identity, live telemetry, final outcome."""

    def __init__(self, jid: str, key: str, manifest: dict, jobs: int | None) -> None:
        self.id = jid
        self.key = key
        self.manifest = manifest
        self.jobs = jobs
        self.state = "pending"  # pending → running → done | error
        self.error: str | None = None
        self.outcome: CacheOutcome | None = None
        self.submitted_at = time.time()
        self.finished_at: float | None = None
        #: extra submitters coalesced into this execution
        self.coalesced = 0
        self.done_evt = threading.Event()
        self.progress = CampaignProgress()
        self.bus = EventBus()
        self._events: list[dict] = []
        self._lock = threading.Lock()
        self.bus.subscribe(self._on_event)

    def _on_event(self, event: dict) -> None:
        with self._lock:
            self._events.append(event)
        self.progress.feed(event)

    def events_since(self, pos: int) -> list[dict]:
        with self._lock:
            return self._events[pos:]

    def event_count(self) -> int:
        with self._lock:
            return len(self._events)

    def status(self, *, include_records: bool = False) -> dict:
        out: dict[str, Any] = {
            "id": self.id,
            "key": self.key,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "coalesced": self.coalesced,
            "progress": self.progress.snapshot(),
        }
        if self.error is not None:
            out["error"] = self.error
        if self.outcome is not None:
            out["cache"] = {
                "hits": self.outcome.hits,
                "misses": self.outcome.misses,
                "resumed": self.outcome.resumed,
                "total": self.outcome.total,
            }
            if include_records and self.state == "done":
                out["records"] = [
                    ckpt.record_to_dict(r) for r in self.outcome.records
                ]
        return out


class CampaignService:
    """The campaign-as-a-service front door (see module docstring).

    ``start()`` runs the asyncio server on a background thread and
    returns once the port is bound (``.url`` is then valid) — the shape
    tests and the CLI use.  Embedders already inside an event loop can
    ``await serve()`` directly.
    """

    def __init__(
        self,
        store: RunRecordStore,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: int | None = None,
        queue_dir: str | None = None,
        poll: float = 0.2,
        journal_dir: str | None = None,
    ) -> None:
        self.store = store
        self.host = host
        self.port = port
        self.jobs = jobs
        self.queue_dir = queue_dir
        self.poll = poll
        self.started_at = time.time()
        #: durable recovery journal, or None (journalling off)
        self.journal = JobJournal(journal_dir) if journal_dir is not None else None
        #: journal writes that failed (journal loss is survivable, but counted)
        self.journal_errors = 0
        #: job ids re-adopted from the journal by the last recover()
        self.recovered: list[str] = []
        self._draining = False
        self._jobs: dict[str, _Job] = {}
        #: single-flight table: campaign key → the in-flight job
        self._inflight: dict[str, _Job] = {}
        self._lock = threading.Lock()
        self._seq = 0
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self.url: str | None = None

    # ------------------------------------------------------------------
    # submission / single-flight
    # ------------------------------------------------------------------
    def submit(self, manifest: dict, jobs: int | None = None) -> tuple[_Job, bool]:
        """Register a campaign; returns ``(job, deduped)``.

        Identical concurrent submissions — same campaign fingerprint,
        judged on the *rebuilt* campaign so a hand-edited manifest
        cannot spoof its way into another job's results — share one
        execution.  Raises ``NotDistributable``/``ValueError``/
        ``KeyError`` on a malformed manifest (mapped to 400 above).
        """
        if self._draining:
            raise ServiceDraining("service is draining, not accepting campaigns")
        top, cfg = manifest_to_campaign(manifest)
        key = _job_key(campaign_fingerprint(top, cfg))
        with self._lock:
            live = self._inflight.get(key)
            if live is not None and not live.done_evt.is_set():
                live.coalesced += 1
                return live, True
            self._seq += 1
            job = _Job(f"{key[:12]}-{self._seq}", key, manifest, jobs)
            self._jobs[job.id] = job
            self._inflight[key] = job
        self._journal_write(job)
        t = threading.Thread(
            target=self._run_job, args=(job, top, cfg), daemon=True,
            name=f"campaign-{job.id}",
        )
        t.start()
        return job, False

    def _journal_write(self, job: _Job) -> None:
        """Snapshot one job's state to the journal; loss is counted, not fatal."""
        if self.journal is None:
            return
        try:
            self.journal.record(
                job.id,
                key=job.key,
                manifest=job.manifest,
                jobs=job.jobs,
                state=job.state,
                error=job.error,
                submitted_at=job.submitted_at,
                finished_at=job.finished_at,
            )
        except OSError:
            self.journal_errors += 1

    def _run_job(self, job: _Job, top, cfg) -> None:
        job.state = "running"
        tel = Telemetry(
            trace=BusTraceWriter(job.bus),
            metrics=MetricsRegistry(enabled=True),
            series=manifest_series(job.manifest),
        )
        try:
            failpoint("service.job.dispatch")
            job.outcome = run_campaign_cached(
                top,
                cfg,
                store=self.store,
                telemetry=tel,
                jobs=job.jobs if job.jobs is not None else self.jobs,
                queue_dir=self.queue_dir,
            )
            job.state = "done"
        except Exception as exc:  # a broken campaign must not kill the service
            job.error = f"{type(exc).__name__}: {exc}"
            job.state = "error"
        finally:
            job.finished_at = time.time()
            with self._lock:
                if self._inflight.get(job.key) is job:
                    del self._inflight[job.key]
            self._journal_write(job)
            job.done_evt.set()

    def get_job(self, jid: str) -> _Job | None:
        with self._lock:
            return self._jobs.get(jid)

    # ------------------------------------------------------------------
    # restart recovery / graceful drain
    # ------------------------------------------------------------------
    def recover(self) -> list[str]:
        """Re-adopt every non-terminal journal entry (crash recovery).

        Each recovered campaign keeps its original job id and runs
        through the cache, so work the dead server already committed is
        served as hits and the records match an uninterrupted run.
        Returns the recovered job ids (also kept in ``self.recovered``).
        """
        self.recovered = []
        if self.journal is None:
            return self.recovered
        for entry in self.journal.pending():
            jid = entry["id"]
            try:
                top, cfg = manifest_to_campaign(entry["manifest"])
            except Exception:
                # a journal entry the current code cannot rebuild:
                # leave it on disk for inspection, adopt the rest
                self.journal_errors += 1
                continue
            with self._lock:
                if jid in self._jobs:
                    continue
                job = _Job(jid, entry.get("key", ""), entry["manifest"], entry.get("jobs"))
                job.submitted_at = entry.get("submitted_at") or job.submitted_at
                self._jobs[jid] = job
                self._inflight[job.key] = job
                try:
                    self._seq = max(self._seq, int(jid.rsplit("-", 1)[1]))
                except (IndexError, ValueError):
                    pass
            self._journal_write(job)
            threading.Thread(
                target=self._run_job, args=(job, top, cfg), daemon=True,
                name=f"campaign-{jid}",
            ).start()
            self.recovered.append(jid)
        return self.recovered

    def drain(self, timeout: float = 30.0) -> list[str]:
        """Stop accepting submissions, wait for in-flight jobs.

        Jobs still running when ``timeout`` expires stay journalled in a
        non-terminal state — the next start's :meth:`recover` finishes
        them.  Returns the ids of the jobs that did not finish.
        """
        self._draining = True
        deadline = time.monotonic() + timeout
        with self._lock:
            live = [j for j in self._jobs.values() if not j.done_evt.is_set()]
        leftover = []
        for job in live:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not job.done_evt.wait(timeout=remaining):
                leftover.append(job.id)
        return leftover

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            try:
                line = await asyncio.wait_for(reader.readline(), timeout=30)
                parts = line.decode("latin-1").split()
                if len(parts) < 2:
                    return
                method, path = parts[0].upper(), parts[1]
                headers = {}
                while True:
                    h = await asyncio.wait_for(reader.readline(), timeout=30)
                    if h in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = h.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                body = b""
                n = int(headers.get("content-length", "0") or "0")
                if n > _MAX_BODY:
                    await self._json(writer, 413, {"error": "body too large"})
                    return
                if n:
                    body = await asyncio.wait_for(reader.readexactly(n), timeout=30)
            except (asyncio.TimeoutError, asyncio.IncompleteReadError, ValueError):
                return
            await self._route(writer, method, path.split("?", 1)[0], body)
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, writer, method: str, path: str, body: bytes) -> None:
        if method == "GET" and path == "/healthz":
            await self._json(
                writer,
                200,
                {
                    "ok": True,
                    "uptime_s": round(time.time() - self.started_at, 3),
                    "draining": self._draining,
                },
            )
        elif method == "GET" and path == "/cache/stats":
            await self._json(writer, 200, self.store.stats().to_dict())
        elif method == "POST" and path == "/campaigns":
            await self._post_campaign(writer, body)
        elif method == "GET" and path == "/campaigns":
            with self._lock:
                jobs = list(self._jobs.values())
            await self._json(
                writer,
                200,
                {"campaigns": [j.status() for j in jobs]},
            )
        elif method == "GET" and path.startswith("/campaigns/"):
            rest = path[len("/campaigns/"):]
            if rest.endswith("/events"):
                job = self.get_job(rest[: -len("/events")].rstrip("/"))
                if job is None:
                    await self._json(writer, 404, {"error": "no such campaign"})
                else:
                    await self._stream_events(writer, job)
            else:
                job = self.get_job(rest.rstrip("/"))
                if job is None:
                    await self._json(writer, 404, {"error": "no such campaign"})
                else:
                    await self._json(writer, 200, job.status(include_records=True))
        else:
            await self._json(writer, 404, {"error": f"no route for {method} {path}"})

    async def _post_campaign(self, writer, body: bytes) -> None:
        try:
            req = json.loads(body.decode())
            manifest = req["manifest"]
            jobs = req.get("jobs")
            if jobs is not None:
                jobs = int(jobs)
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError, ValueError) as exc:
            await self._json(writer, 400, {"error": f"bad request: {type(exc).__name__}: {exc}"})
            return
        try:
            job, deduped = self.submit(manifest, jobs)
        except ServiceDraining as exc:
            await self._json(writer, 503, {"error": str(exc)})
            return
        except (NotDistributable, KeyError, TypeError, ValueError) as exc:
            await self._json(writer, 400, {"error": f"bad manifest: {type(exc).__name__}: {exc}"})
            return
        await self._json(
            writer, 202 if not deduped else 200,
            {"id": job.id, "deduped": deduped, "state": job.state},
        )

    async def _stream_events(self, writer, job: _Job) -> None:
        """NDJSON replay + live follow of one job's telemetry events."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\nConnection: close\r\n\r\n"
        )
        pos = 0
        try:
            while True:
                events = job.events_since(pos)
                pos += len(events)
                for ev in events:
                    writer.write(json.dumps(ev).encode() + b"\n")
                if events:
                    await writer.drain()
                if job.done_evt.is_set() and pos >= job.event_count():
                    writer.write(
                        json.dumps({"ev": "service.end", "id": job.id, "state": job.state}).encode()
                        + b"\n"
                    )
                    await writer.drain()
                    return
                await asyncio.sleep(self.poll)
        except (ConnectionError, OSError):
            return  # client went away mid-stream

    async def _json(self, writer, status: int, obj: dict) -> None:
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 413: "Payload Too Large",
                  503: "Service Unavailable"}.get(status, "OK")
        payload = json.dumps(obj).encode()
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n".encode() + payload
        )
        await writer.drain()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def serve(self) -> None:
        """Bind and serve until cancelled (for embedders with a loop)."""
        self.recover()  # re-adopt journalled campaigns before taking traffic
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.url = f"http://{self.host}:{self.port}"
        self._ready.set()
        async with self._server:
            await self._server.serve_forever()

    def start(self) -> "CampaignService":
        """Serve on a background thread; returns once the port is bound."""

        def _main() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            try:
                loop.run_until_complete(self.serve())
            except asyncio.CancelledError:
                pass
            finally:
                try:
                    loop.run_until_complete(loop.shutdown_asyncgens())
                finally:
                    loop.close()

        self._thread = threading.Thread(target=_main, daemon=True, name="repro-serve")
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("campaign service failed to bind")
        return self

    def close(self) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            def _stop() -> None:
                if self._server is not None:
                    self._server.close()
                for task in asyncio.all_tasks():
                    task.cancel()

            loop.call_soon_threadsafe(_stop)
        if self._thread is not None:
            self._thread.join(timeout=10)
