"""Shared utilities: unit helpers, seeded RNG derivation, validation.

These helpers are deliberately tiny and dependency-free so that every other
subpackage can import them without cycles.
"""

from repro.util.units import (
    KiB,
    MiB,
    GiB,
    GB,
    MB,
    KB,
    US,
    MS,
    fmt_bytes,
    fmt_time,
)
from repro.util.backoff import NO_BACKOFF, Backoff, BackoffPolicy
from repro.util.rng import (
    derive_rng,
    derive_seeds,
    seed_sequence_for,
    spawn_rng_streams,
    spawn_rngs,
)
from repro.util.validation import (
    check_positive,
    check_nonnegative,
    check_in_range,
    check_power_of_two,
)

__all__ = [
    "Backoff",
    "BackoffPolicy",
    "NO_BACKOFF",
    "KiB",
    "MiB",
    "GiB",
    "GB",
    "MB",
    "KB",
    "US",
    "MS",
    "fmt_bytes",
    "fmt_time",
    "derive_rng",
    "derive_seeds",
    "seed_sequence_for",
    "spawn_rng_streams",
    "spawn_rngs",
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_power_of_two",
]
