"""Deterministic random-number-generator derivation.

Reproducibility rules for this library:

* Every stochastic function takes a ``numpy.random.Generator`` (never the
  global NumPy state).
* Campaign-level code derives *named* child generators with
  :func:`derive_rng`, so that (a) results are bit-reproducible given a root
  seed and (b) paired comparisons (e.g. AD0 vs AD3 on the same background
  scenario) reuse identical noise streams by construction.
"""

from __future__ import annotations

import zlib
from typing import Iterable, Sequence

import numpy as np


def _key_to_ints(key: Iterable[object]) -> list[int]:
    """Hash a heterogeneous key tuple to a list of 32-bit ints.

    Strings are CRC32-hashed (stable across processes, unlike ``hash()``);
    integers pass through masked to 32 bits.
    """
    out: list[int] = []
    for part in key:
        if isinstance(part, (bool, np.bool_)):
            out.append(int(part))
        elif isinstance(part, (int, np.integer)):
            out.append(int(part) & 0xFFFFFFFF)
        elif isinstance(part, str):
            out.append(zlib.crc32(part.encode("utf-8")))
        elif isinstance(part, float):
            out.append(zlib.crc32(repr(part).encode("utf-8")))
        else:
            raise TypeError(f"unsupported RNG key part: {part!r} ({type(part).__name__})")
    return out


def seed_sequence_for(root_seed: int, *key: object) -> np.random.SeedSequence:
    """The :class:`numpy.random.SeedSequence` behind a derived key.

    This is the single point where run identities become entropy: every
    derived stream in the library — including the per-run streams the
    parallel dispatcher hands to workers — comes from a ``SeedSequence``
    seeded with ``[root, *hashed key]``, so streams for distinct keys are
    statistically independent and identical regardless of which process
    (or in which order) they are consumed.
    """
    return np.random.SeedSequence([int(root_seed) & 0xFFFFFFFF, *_key_to_ints(key)])


def derive_rng(root_seed: int, *key: object) -> np.random.Generator:
    """Derive a child generator from ``root_seed`` and a descriptive key.

    >>> a = derive_rng(42, "milc", "AD0", 3)
    >>> b = derive_rng(42, "milc", "AD0", 3)
    >>> a.integers(1 << 30) == b.integers(1 << 30)
    True
    """
    return np.random.default_rng(seed_sequence_for(root_seed, *key))


def spawn_rng_streams(
    root_seed: int, *key: object, n: int
) -> list[np.random.Generator]:
    """``n`` independent child streams of a derived key, via ``SeedSequence.spawn``.

    Unlike :func:`spawn_rngs` this does not consume draws from an
    existing generator, so the children are a pure function of
    ``(root_seed, key, index)`` — safe to re-derive in any process.
    """
    return [
        np.random.default_rng(child)
        for child in seed_sequence_for(root_seed, *key).spawn(n)
    ]


def derive_seeds(root_seed: int, *key: object, n: int = 1) -> list[int]:
    """Derive ``n`` stable 63-bit integer seeds for the given key."""
    rng = derive_rng(root_seed, *key)
    return [int(s) for s in rng.integers(0, 2**63 - 1, size=n)]


def spawn_rngs(rng: np.random.Generator, n: int) -> Sequence[np.random.Generator]:
    """Split an existing generator into ``n`` independent children."""
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]
