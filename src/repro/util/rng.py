"""Deterministic random-number-generator derivation.

Reproducibility rules for this library:

* Every stochastic function takes a ``numpy.random.Generator`` (never the
  global NumPy state).
* Campaign-level code derives *named* child generators with
  :func:`derive_rng`, so that (a) results are bit-reproducible given a root
  seed and (b) paired comparisons (e.g. AD0 vs AD3 on the same background
  scenario) reuse identical noise streams by construction.
"""

from __future__ import annotations

import zlib
from typing import Iterable, Sequence

import numpy as np


def _key_to_ints(key: Iterable[object]) -> list[int]:
    """Hash a heterogeneous key tuple to a list of 32-bit ints.

    Strings are CRC32-hashed (stable across processes, unlike ``hash()``);
    integers pass through masked to 32 bits.
    """
    out: list[int] = []
    for part in key:
        if isinstance(part, (bool, np.bool_)):
            out.append(int(part))
        elif isinstance(part, (int, np.integer)):
            out.append(int(part) & 0xFFFFFFFF)
        elif isinstance(part, str):
            out.append(zlib.crc32(part.encode("utf-8")))
        elif isinstance(part, float):
            out.append(zlib.crc32(repr(part).encode("utf-8")))
        else:
            raise TypeError(f"unsupported RNG key part: {part!r} ({type(part).__name__})")
    return out


def derive_rng(root_seed: int, *key: object) -> np.random.Generator:
    """Derive a child generator from ``root_seed`` and a descriptive key.

    >>> a = derive_rng(42, "milc", "AD0", 3)
    >>> b = derive_rng(42, "milc", "AD0", 3)
    >>> a.integers(1 << 30) == b.integers(1 << 30)
    True
    """
    ss = np.random.SeedSequence([int(root_seed) & 0xFFFFFFFF, *_key_to_ints(key)])
    return np.random.default_rng(ss)


def derive_seeds(root_seed: int, *key: object, n: int = 1) -> list[int]:
    """Derive ``n`` stable 63-bit integer seeds for the given key."""
    rng = derive_rng(root_seed, *key)
    return [int(s) for s in rng.integers(0, 2**63 - 1, size=n)]


def spawn_rngs(rng: np.random.Generator, n: int) -> Sequence[np.random.Generator]:
    """Split an existing generator into ``n`` independent children."""
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]
