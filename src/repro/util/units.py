"""Byte / time unit constants and formatting helpers.

Conventions used throughout the library:

* sizes are in **bytes** (floats allowed for aggregate loads),
* bandwidths are in **bytes per second**,
* times are in **seconds**.

Binary prefixes (``KiB``/``MiB``/``GiB``) are powers of two; decimal
prefixes (``KB``/``MB``/``GB``) are powers of ten and match how link
bandwidths are quoted in the paper (e.g. 10.5 GB/s rank-1 links).
"""

from __future__ import annotations

KiB: int = 1024
MiB: int = 1024 * 1024
GiB: int = 1024 * 1024 * 1024

KB: int = 1_000
MB: int = 1_000_000
GB: int = 1_000_000_000

#: one microsecond / millisecond, in seconds
US: float = 1e-6
MS: float = 1e-3


def fmt_bytes(n: float) -> str:
    """Render a byte count with a human-friendly binary suffix.

    >>> fmt_bytes(8)
    '8 B'
    >>> fmt_bytes(2048)
    '2.0 KiB'
    """
    n = float(n)
    if abs(n) < KiB:
        return f"{n:.0f} B"
    for suffix, scale in (("KiB", KiB), ("MiB", MiB), ("GiB", GiB)):
        if abs(n) < scale * 1024 or suffix == "GiB":
            return f"{n / scale:.1f} {suffix}"
    raise AssertionError("unreachable")


def fmt_time(t: float) -> str:
    """Render a duration in the most readable unit.

    >>> fmt_time(0.5)
    '500.0 ms'
    >>> fmt_time(3e-6)
    '3.0 us'
    """
    t = float(t)
    if abs(t) >= 1.0:
        return f"{t:.3f} s"
    if abs(t) >= MS:
        return f"{t / MS:.1f} ms"
    return f"{t / US:.1f} us"
