"""Small argument-validation helpers with consistent error messages."""

from __future__ import annotations


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it for chaining."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it for chaining."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Require ``lo <= value <= hi``; return it for chaining."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def check_power_of_two(name: str, value: int) -> int:
    """Require a positive power of two; return it for chaining."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")
    return value
