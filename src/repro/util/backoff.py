"""Exponential backoff with full jitter, shared by every retry path.

One policy object serves both the local fork-pool dispatcher
(:mod:`repro.parallel.executor` re-dispatching tasks whose worker died)
and the distributed queue (:mod:`repro.dist` reclaiming expired leases
and parking through shared-directory outages).  Full jitter — a uniform
draw over ``[0, min(cap, base * multiplier**(attempt-1))]`` — is the
AWS-style variant that decorrelates a thundering herd of workers all
retrying the same resource.

Determinism hooks: the jitter RNG and the sleep function are both
injectable, so tests drive retry schedules without wall-clock sleeps
and campaigns stay reproducible (the *results* never depend on backoff
draws — only the waiting does — so an OS-entropy default is safe).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class BackoffPolicy:
    """Shape of a retry schedule: ``base * multiplier**k``, capped.

    ``delay(attempt)`` is the *ceiling* for attempt ``attempt`` (1-based);
    :class:`Backoff` draws the jittered value below it.
    """

    base: float = 0.1
    cap: float = 30.0
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError(f"base must be >= 0, got {self.base!r}")
        if self.cap < 0:
            raise ValueError(f"cap must be >= 0, got {self.cap!r}")
        if self.multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier!r}")

    def ceiling(self, attempt: int) -> float:
        """Un-jittered delay ceiling for 1-based ``attempt``."""
        if attempt <= 1:
            exp = self.base
        else:
            exp = self.base * self.multiplier ** (attempt - 1)
        return float(min(self.cap, exp))


#: no waiting at all — the historical immediate-retry behaviour
NO_BACKOFF = BackoffPolicy(base=0.0, cap=0.0)


class Backoff:
    """A jittered sleeper bound to one policy.

    Parameters
    ----------
    policy:
        The :class:`BackoffPolicy` delay ceilings.
    rng:
        Jitter source; defaults to an OS-seeded generator.  Inject a
        seeded generator for deterministic schedules in tests.
    sleeper:
        Called with the drawn delay; defaults to :func:`time.sleep`.
        Inject a recorder to assert on schedules without sleeping.
    """

    def __init__(
        self,
        policy: BackoffPolicy | None = None,
        *,
        rng: np.random.Generator | None = None,
        sleeper: Callable[[float], None] = time.sleep,
    ) -> None:
        self.policy = policy if policy is not None else BackoffPolicy()
        self.rng = rng if rng is not None else np.random.default_rng()
        self.sleeper = sleeper
        #: delays actually drawn/slept, oldest first (diagnostics)
        self.history: list[float] = []

    def delay(self, attempt: int) -> float:
        """Draw the full-jitter delay for 1-based ``attempt`` (no sleep)."""
        ceiling = self.policy.ceiling(attempt)
        if ceiling <= 0:
            return 0.0
        return float(self.rng.uniform(0.0, ceiling))

    def sleep(self, attempt: int) -> float:
        """Draw and sleep the delay for ``attempt``; returns the delay."""
        d = self.delay(attempt)
        self.history.append(d)
        if d > 0:
            self.sleeper(d)
        return d
