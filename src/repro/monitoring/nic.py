"""Aries NIC packet-pair latency counters.

The paper's Section V-D uses two Aries NIC counters —
``AR_NIC_ORB_PRF_NET_RSP_TRACK2:SUM_RSP_TIME_COUNT`` (accumulated
request-response latency over all observed packet pairs) and
``AR_NIC_NETMON_ORB_EVENT_CNTR_RSP_NET_TRACK`` (the number of pairs) —
whose quotient gives the NIC's mean packet-pair latency over a window.
Sampling every NIC at ~100 random instants in a week, before and after
the default-routing change, yields the percentile comparison of Fig. 14.

:class:`NicLatencyCounters` keeps the two cumulative per-node counters;
the facility harness adds each interval's flow latencies and reads
windowed means exactly as the paper's pipeline does.
"""

from __future__ import annotations

import numpy as np

from repro.network.fluid import FlowSet
from repro.topology.dragonfly import DragonflyTopology


class NicLatencyCounters:
    """Cumulative (sum-latency, pair-count) counters per node NIC."""

    def __init__(self, top: DragonflyTopology) -> None:
        self.top = top
        self.sum_rsp_time = np.zeros(top.n_nodes)
        self.rsp_count = np.zeros(top.n_nodes)

    def record_flows(
        self,
        flows: FlowSet,
        latency: np.ndarray,
        pairs: np.ndarray,
    ) -> None:
        """Accumulate observed request-response pairs.

        Parameters
        ----------
        flows:
            The flows whose packets were observed.
        latency:
            Mean round-trip-ish latency per flow (seconds).
        pairs:
            Number of packet pairs observed per flow in the window.
        """
        latency = np.asarray(latency, dtype=np.float64)
        pairs = np.asarray(pairs, dtype=np.float64)
        np.add.at(self.sum_rsp_time, flows.src, latency * pairs)
        np.add.at(self.rsp_count, flows.src, pairs)

    def snapshot(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of the two cumulative counter arrays."""
        return self.sum_rsp_time.copy(), self.rsp_count.copy()

    @staticmethod
    def window_mean_latency(
        before: tuple[np.ndarray, np.ndarray],
        after: tuple[np.ndarray, np.ndarray],
    ) -> np.ndarray:
        """Per-NIC mean latency over a window bounded by two snapshots.

        NICs that observed no pairs in the window return NaN (they are
        dropped from percentile summaries, as idle NICs were in the
        paper's pipeline).
        """
        dt = after[0] - before[0]
        dc = after[1] - before[1]
        return np.divide(dt, dc, out=np.full_like(dt, np.nan), where=dc > 0)

    def interval_means(self) -> np.ndarray:
        """Mean latency per NIC over everything recorded so far."""
        return self.window_mean_latency(
            (np.zeros_like(self.sum_rsp_time), np.zeros_like(self.rsp_count)),
            (self.sum_rsp_time, self.rsp_count),
        )
