"""AutoPerf model: per-MPI-interface profile plus local router counters.

AutoPerf (Chunduri et al., SC18) wraps MPI with PMPI and reports, per
interface, the number of calls, the average bytes per call, and the total
wall-clock time, at <0.05% overhead; it also reads the Aries router tiles
the job's nodes are attached to.  The experiment harness feeds the same
information from the fluid solve into an :class:`AutoPerf` collector; the
resulting :class:`AutoPerfReport` is the input for the paper's Table I
and the breakdown stacks of Figs. 5/8.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.network.counters import CounterSnapshot, TILE_CLASSES
from repro.util import fmt_bytes, fmt_time


@dataclass
class MpiOpRecord:
    """Cumulative stats for one MPI interface."""

    calls: float = 0.0
    nbytes: float = 0.0
    time: float = 0.0

    @property
    def avg_bytes(self) -> float:
        """Average bytes passed per call (0 for metadata-only calls)."""
        return self.nbytes / self.calls if self.calls > 0 else 0.0


@dataclass
class AutoPerfReport:
    """Finalized per-run profile.

    Attributes
    ----------
    app, n_nodes:
        Run identity.
    ops:
        Per-interface records.
    total_time:
        Wall-clock runtime of the run (seconds).
    counters:
        Local-view counter delta (only the job's routers), when collected.
    """

    app: str
    n_nodes: int
    ops: dict[str, MpiOpRecord]
    total_time: float
    counters: CounterSnapshot | None = None

    @property
    def mpi_time(self) -> float:
        """Total seconds in MPI."""
        return float(sum(r.time for r in self.ops.values()))

    @property
    def compute_time(self) -> float:
        """Non-MPI ("Compute" in Figs. 5/8) seconds."""
        return max(self.total_time - self.mpi_time, 0.0)

    @property
    def mpi_fraction(self) -> float:
        """Fraction of runtime in MPI (Table I's "% of MPI")."""
        return self.mpi_time / self.total_time if self.total_time > 0 else 0.0

    def top_ops(self, n: int = 3) -> list[str]:
        """The ``n`` interfaces with the most time (Table I's MPI Call 1-3)."""
        return sorted(self.ops, key=lambda op: self.ops[op].time, reverse=True)[:n]

    def breakdown(self, top_n: int = 3) -> dict[str, float]:
        """Stacked-bar decomposition: Compute, top interfaces, Other_MPI."""
        tops = self.top_ops(top_n)
        out = {"Compute": self.compute_time}
        for op in tops:
            out[op] = self.ops[op].time
        out["Other_MPI"] = self.mpi_time - sum(self.ops[op].time for op in tops)
        return out

    def stalls_to_flits(self, cls: str) -> float:
        """Local-view aggregate stalls-to-flits ratio for a tile class."""
        if self.counters is None:
            raise RuntimeError("run was not collected with counters")
        return self.counters.class_ratio(cls)

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"AutoPerf: {self.app} on {self.n_nodes} nodes — "
            f"runtime {fmt_time(self.total_time)}, MPI {self.mpi_fraction:.0%}"
        ]
        for op in self.top_ops(6):
            r = self.ops[op]
            lines.append(
                f"  {op:16s} calls={r.calls:12.0f} avg={fmt_bytes(r.avg_bytes):>10s} "
                f"time={fmt_time(r.time)}"
            )
        if self.counters is not None:
            ratios = "  ".join(
                f"{c}={self.counters.class_ratio(c):.2f}" for c in TILE_CLASSES
            )
            lines.append(f"  stalls/flits: {ratios}")
        return "\n".join(lines)


class AutoPerf:
    """Collector: accumulate interface stats during a (simulated) run."""

    def __init__(self, app: str, n_nodes: int) -> None:
        self.app = app
        self.n_nodes = n_nodes
        self._ops: dict[str, MpiOpRecord] = {}
        self._counters: CounterSnapshot | None = None
        self._total_time = 0.0

    def record_op(self, op: str, *, calls: float, nbytes: float, time: float) -> None:
        """Add calls/bytes/seconds to one interface's record."""
        rec = self._ops.setdefault(op, MpiOpRecord())
        rec.calls += calls
        rec.nbytes += nbytes
        rec.time += time

    def add_total_time(self, seconds: float) -> None:
        """Advance the run's wall clock (compute + MPI)."""
        self._total_time += seconds

    def attach_counters(self, snapshot: CounterSnapshot) -> None:
        """Attach the local-view counter delta read at MPI_Finalize."""
        self._counters = snapshot

    def finalize(self) -> AutoPerfReport:
        """Produce the immutable report."""
        return AutoPerfReport(
            app=self.app,
            n_nodes=self.n_nodes,
            ops=dict(self._ops),
            total_time=self._total_time,
            counters=self._counters,
        )
