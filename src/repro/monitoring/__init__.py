"""Monitoring substrates: AutoPerf, LDMS, and NIC latency counters.

The paper collects metrics with two tools, both modeled here with the
same report semantics:

* **AutoPerf** (:mod:`~repro.monitoring.autoperf`) — a PMPI intercept
  library reporting, per MPI interface, the call count, average bytes,
  and total wall-clock time, plus the Aries router-tile counters of the
  routers the job's nodes attach to (a *local* view).
* **LDMS** (:mod:`~repro.monitoring.ldms`) — a node-level service
  sampling every router's counters on a periodic (1-minute) cadence, the
  *global* view behind Figs. 10-13.
* **NIC latency counters** (:mod:`~repro.monitoring.nic`) — the two
  cumulative Aries NIC counters (summed request-response latency and
  response count) whose quotient gives mean packet-pair latency, used for
  the system-wide percentile study of Fig. 14.
"""

from repro.monitoring.autoperf import AutoPerf, AutoPerfReport, MpiOpRecord
from repro.monitoring.ldms import LdmsCollector, LdmsSample
from repro.monitoring.nic import NicLatencyCounters
from repro.monitoring.export import (
    autoperf_to_dict,
    autoperf_to_json,
    counters_to_csv,
    ldms_series_to_csv,
    records_to_csv,
    series_to_csv,
)

__all__ = [
    "AutoPerf",
    "AutoPerfReport",
    "MpiOpRecord",
    "LdmsCollector",
    "LdmsSample",
    "NicLatencyCounters",
    "autoperf_to_dict",
    "autoperf_to_json",
    "counters_to_csv",
    "ldms_series_to_csv",
    "records_to_csv",
    "series_to_csv",
]
