"""Export monitoring data to CSV/JSON for external analysis.

The paper's pipeline post-processed AutoPerf and LDMS dumps with
external tooling; this module provides the equivalent egress points:

* :func:`autoperf_to_dict` / :func:`autoperf_to_json` — the per-interface
  profile plus local counter ratios;
* :func:`ldms_series_to_csv` — the system-wide flit/stall/ratio series;
* :func:`counters_to_csv` — a per-router counter snapshot;
* :func:`records_to_csv` — a campaign's run records (the Table-II /
  Figs. 2-7 raw data).

All functions return strings; pass ``path`` to also write a file.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

from typing import TYPE_CHECKING

import numpy as np

from repro.monitoring.autoperf import AutoPerfReport

if TYPE_CHECKING:  # avoid a core <-> monitoring import cycle
    from repro.core.experiment import RunRecord
from repro.monitoring.ldms import LdmsCollector
from repro.network.counters import CounterSnapshot, TILE_CLASSES


def _maybe_write(text: str, path: str | Path | None) -> str:
    if path is not None:
        Path(path).write_text(text)
    return text


def autoperf_to_dict(report: AutoPerfReport) -> dict:
    """JSON-ready representation of an AutoPerf report."""
    out = {
        "app": report.app,
        "n_nodes": report.n_nodes,
        "total_time_s": report.total_time,
        "mpi_time_s": report.mpi_time,
        "mpi_fraction": report.mpi_fraction,
        "ops": {
            op: {
                "calls": rec.calls,
                "bytes": rec.nbytes,
                "avg_bytes": rec.avg_bytes,
                "time_s": rec.time,
            }
            for op, rec in report.ops.items()
        },
    }
    if report.counters is not None:
        out["stalls_to_flits"] = {
            cls: report.counters.class_ratio(cls) for cls in TILE_CLASSES
        }
    return out


def autoperf_to_json(report: AutoPerfReport, path: str | Path | None = None) -> str:
    """Serialize an AutoPerf report to JSON."""
    return _maybe_write(json.dumps(autoperf_to_dict(report), indent=2), path)


def ldms_series_to_csv(
    ldms: LdmsCollector, path: str | Path | None = None
) -> str:
    """The network-tile flit/stall/ratio time series as CSV.

    The ``partial`` column marks an end-of-run residual interval that
    covers less than one full cadence (``LdmsCollector.finalize``).
    """
    series = ldms.series()
    buf = io.StringIO()
    buf.write("time_s,flits,stalls,ratio,partial\n")
    # an empty collector (no samples yet) yields a header-only CSV
    for t, f, s, r, smp in zip(
        series["time"], series["flits"], series["stalls"], series["ratio"],
        ldms.samples,
    ):
        buf.write(f"{t:.1f},{f:.6e},{s:.6e},{r:.6f},{int(smp.partial)}\n")
    return _maybe_write(buf.getvalue(), path)


def series_to_csv(series, path: str | Path | None = None) -> str:
    """A :class:`repro.telemetry.series.CounterSeries` as CSV.

    One row per cadence window: start/end sim time, flit and stall
    totals, the window's stall-to-flit health ratio, and the partial
    flag for the end-of-run residual window.
    """
    buf = io.StringIO()
    buf.write("t_start_s,t_end_s,flits,stalls,ratio,partial\n")
    for w in series.windows:
        buf.write(
            f"{w.t_start:.9g},{w.t_end:.9g},{w.flits:.6e},{w.stalls:.6e},"
            f"{w.ratio:.6f},{int(w.partial)}\n"
        )
    return _maybe_write(buf.getvalue(), path)


def counters_to_csv(
    snapshot: CounterSnapshot, path: str | Path | None = None
) -> str:
    """Per-router counter values for every tile class, as CSV.

    An empty snapshot (no tile classes recorded) yields a header-only
    CSV rather than crashing.
    """
    n = next(iter(snapshot.flits.values())).size if snapshot.flits else 0
    buf = io.StringIO()
    header = ["router"]
    for cls in TILE_CLASSES:
        header += [f"{cls}_flits", f"{cls}_stalls"]
    buf.write(",".join(header) + "\n")
    zeros = np.zeros(n)
    for r in range(n):
        row = [str(r)]
        for cls in TILE_CLASSES:
            row += [
                f"{snapshot.flits.get(cls, zeros)[r]:.6e}",
                f"{snapshot.stalls.get(cls, zeros)[r]:.6e}",
            ]
        buf.write(",".join(row) + "\n")
    return _maybe_write(buf.getvalue(), path)


def records_to_csv(
    records: "list[RunRecord]", path: str | Path | None = None
) -> str:
    """A campaign's run records as CSV (one row per run)."""
    buf = io.StringIO()
    buf.write(
        "app,mode,n_nodes,placement,groups,sample,runtime_s,mpi_time_s,"
        "mpi_fraction,background_intensity\n"
    )
    for r in records:
        buf.write(
            f"{r.app},{r.mode},{r.n_nodes},{r.placement},{r.groups},"
            f"{r.sample_index},{r.runtime:.3f},{r.mpi_time:.3f},"
            f"{r.mpi_fraction:.4f},{r.background_intensity:.3f}\n"
        )
    return _maybe_write(buf.getvalue(), path)
