"""LDMS model: periodic global sampling of every router's counters.

LDMS (Agelastos et al., SC14) runs on every compute node and samples the
Cray network counters at a configurable periodic rate (1 minute on
Theta).  The collector here accepts counter-bank snapshots on that
cadence and exposes the time series the paper's system-level analyses
use: total stalls, flits, and stalls-to-flits ratio per tile class
(Figs. 10, 12, 13), plus per-router arrays for the scatter views.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.counters import CounterBank, CounterSnapshot, TILE_CLASSES


@dataclass
class LdmsSample:
    """One sampling interval's counter delta."""

    time: float
    delta: CounterSnapshot
    #: True when the interval covers less than a full cadence (the
    #: end-of-run residual emitted by :meth:`LdmsCollector.finalize`)
    partial: bool = False

    def totals(self) -> dict[str, tuple[float, float]]:
        """Per-class (flits, stalls) totals for the interval."""
        return {
            c: (float(self.delta.flits[c].sum()), float(self.delta.stalls[c].sum()))
            for c in TILE_CLASSES
        }


class LdmsCollector:
    """Samples a :class:`CounterBank` on a periodic cadence.

    Usage: give the collector the system's live bank; call
    :meth:`sample` whenever simulated time crosses an interval boundary
    (the facility harness drives this).  The collector stores interval
    deltas, never raw cumulative values — mirroring how LDMS data is
    post-processed.
    """

    def __init__(self, bank: CounterBank, *, interval: float = 60.0) -> None:
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self.bank = bank
        self.interval = interval
        self.samples: list[LdmsSample] = []
        self._last = bank.snapshot()
        self._t = 0.0

    def sample(self, time: float | None = None) -> LdmsSample:
        """Record the delta since the previous sample."""
        now = self._t + self.interval if time is None else float(time)
        snap = self.bank.snapshot()
        s = LdmsSample(time=now, delta=snap - self._last)
        self._last = snap
        self._t = now
        self.samples.append(s)
        return s

    def finalize(self, time: float | None = None) -> LdmsSample | None:
        """Emit the trailing sub-cadence interval instead of dropping it.

        A run rarely ends exactly on a cadence boundary; whatever the
        bank accumulated since the last :meth:`sample` call belongs to a
        final interval shorter than the cadence.  That residual is
        recorded as a sample flagged ``partial=True`` (so downstream
        rate analyses can weight or skip it) rather than silently lost.

        ``time`` is the run's end time; ``None`` means "an unknown
        point inside the next interval".  Returns ``None`` — and records
        nothing — when the residual interval is empty (``time`` on the
        last boundary and no counter movement since).
        """
        snap = self.bank.snapshot()
        delta = snap - self._last
        if time is not None:
            time = float(time)
            if time < self._t:
                raise ValueError(
                    f"finalize time {time} precedes the last sample at {self._t}"
                )
            span = time - self._t
            partial = span < self.interval
        else:
            # end time unknown: the residual covers at most one cadence
            time = self._t + self.interval
            span = self.interval
            partial = True
        moved = any(
            delta.flits[c].any() or delta.stalls[c].any() for c in TILE_CLASSES
        )
        if span <= 0 and not moved:
            return None
        s = LdmsSample(time=time, delta=delta, partial=partial)
        self._last = snap
        self._t = time
        self.samples.append(s)
        return s

    # ------------------------------------------------------------------
    def series(self, cls: str | None = None) -> dict[str, np.ndarray]:
        """Time series of total flits, stalls, and ratio.

        ``cls`` restricts to one tile class; ``None`` aggregates the
        40 network tiles (rank-1/2/3), the paper's system-wide metric.
        """
        times = np.array([s.time for s in self.samples])
        if cls is None:
            classes = ("rank1", "rank2", "rank3")
        else:
            classes = (cls,)
        flits = np.array(
            [sum(s.delta.flits[c].sum() for c in classes) for s in self.samples]
        )
        stalls = np.array(
            [sum(s.delta.stalls[c].sum() for c in classes) for s in self.samples]
        )
        ratio = np.divide(stalls, flits, out=np.zeros_like(stalls), where=flits > 0)
        return {"time": times, "flits": flits, "stalls": stalls, "ratio": ratio}

    def per_router_series(self, cls: str) -> tuple[np.ndarray, np.ndarray]:
        """(flits, stalls) arrays shaped (n_samples, n_routers) for a class.

        The per-router scatter data behind Figs. 10 and 12.
        """
        flits = np.stack([s.delta.flits[cls] for s in self.samples])
        stalls = np.stack([s.delta.stalls[cls] for s in self.samples])
        return flits, stalls

    def cumulative(self) -> CounterSnapshot:
        """Sum of all recorded deltas."""
        if not self.samples:
            raise RuntimeError("no samples recorded")
        out = self.samples[0].delta
        for s in self.samples[1:]:
            out = CounterSnapshot(
                flits={c: out.flits[c] + s.delta.flits[c] for c in TILE_CLASSES},
                stalls={c: out.stalls[c] + s.delta.stalls[c] for c in TILE_CLASSES},
            )
        return out
