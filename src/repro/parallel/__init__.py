"""Parallel execution subsystem: deterministic fan-out of runs.

Campaigns, sweeps, ensembles, and calibration scoring are all lists of
*independent* computations whose RNG streams are derived from stable
keys (never threaded state), so they can be executed on a process pool
with results **byte-identical to serial execution** regardless of
worker count or completion order.  ``docs/PARALLEL.md`` states the full
determinism contract; the short version:

* per-run streams come from ``SeedSequence``-based derivation
  (:func:`repro.util.seed_sequence_for`) keyed by run identity;
* the dispatcher finalizes results in canonical order, so checkpoint
  files and merged telemetry are order-independent;
* topology and path tables are memoized behind read-only LRU caches
  (:mod:`repro.parallel.cache`, :mod:`repro.topology.pathcache`).
"""

from repro.parallel.cache import (
    cached_faulted_view,
    cached_topology,
    clear_topology_cache,
    freeze_topology_arrays,
    topology_cache_stats,
)
from repro.parallel.campaign import run_campaign_parallel
from repro.parallel.ensembles import run_ensembles
from repro.parallel.executor import TaskOutcome, run_tasks
from repro.parallel.spec import RunTask, TaskResult, TopologySpec
from repro.topology.pathcache import (
    cached_minimal_paths,
    cached_valiant_paths,
    clear_path_cache,
    path_cache_stats,
    topology_fingerprint,
)

__all__ = [
    "RunTask",
    "TaskOutcome",
    "TaskResult",
    "TopologySpec",
    "cached_faulted_view",
    "cached_minimal_paths",
    "cached_topology",
    "cached_valiant_paths",
    "clear_path_cache",
    "clear_topology_cache",
    "freeze_topology_arrays",
    "path_cache_stats",
    "run_campaign_parallel",
    "run_ensembles",
    "run_tasks",
    "topology_cache_stats",
    "topology_fingerprint",
]
