"""Bounded LRU caches for topology construction and faulted views.

Rebuilding a :class:`DragonflyTopology` (and re-deriving a fault-masked
view of it) is pure — the result depends only on ``(params, seed)`` and
the :class:`~repro.faults.FaultSchedule` — so worker processes memoize
both behind small LRU caches keyed by those identities.  Cache keys are
the frozen dataclasses themselves: equality is field-wise, so two
distinct ``(system, faults)`` inputs can never alias a key.

Every array of a cached topology (and the capacity arrays of a cached
faulted view) is frozen read-only before it is stored, so an accidental
in-place mutation by a consumer raises ``ValueError`` instead of
silently poisoning later cache hits.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.faults import FaultSchedule
from repro.parallel.spec import TopologySpec
from repro.topology.dragonfly import DragonflyTopology

_TOPO_MAXSIZE = 8
_VIEW_MAXSIZE = 16

_lock = threading.Lock()
_topologies: OrderedDict[TopologySpec, DragonflyTopology] = OrderedDict()
_views: OrderedDict[tuple[TopologySpec, FaultSchedule], DragonflyTopology] = (
    OrderedDict()
)


def freeze_topology_arrays(top: DragonflyTopology) -> DragonflyTopology:
    """Mark every ndarray attribute of ``top`` read-only, in place."""
    for value in vars(top).values():
        if isinstance(value, np.ndarray):
            value.flags.writeable = False
    return top


def cached_topology(spec: TopologySpec) -> DragonflyTopology:
    """Build (or fetch) the pristine topology for ``spec``.

    The returned object is shared across callers and its arrays are
    read-only; treat it as immutable (every engine in this library
    already does).
    """
    with _lock:
        top = _topologies.get(spec)
        if top is not None:
            _topologies.move_to_end(spec)
            return top
    top = freeze_topology_arrays(spec.build())
    with _lock:
        _topologies[spec] = top
        _topologies.move_to_end(spec)
        while len(_topologies) > _TOPO_MAXSIZE:
            _topologies.popitem(last=False)
    return top


def cached_faulted_view(
    spec: TopologySpec, schedule: FaultSchedule | None
) -> DragonflyTopology:
    """The fault-masked view of ``spec``'s topology under ``schedule``.

    ``None`` (or an empty/inactive schedule) returns the cached pristine
    topology itself, mirroring ``with_faults``'s strict no-op contract.
    """
    base = cached_topology(spec)
    if schedule is None or not schedule:
        return base
    key = (spec, schedule)
    with _lock:
        view = _views.get(key)
        if view is not None:
            _views.move_to_end(key)
            return view
    view = base.with_faults(schedule)
    if view is not base:
        # with_faults gives the view fresh capacity/fault_scale arrays
        # (structure is shared with the already-frozen base)
        view.capacity.flags.writeable = False
        view.fault_scale.flags.writeable = False
    with _lock:
        _views[key] = view
        _views.move_to_end(key)
        while len(_views) > _VIEW_MAXSIZE:
            _views.popitem(last=False)
    return view


def clear_topology_cache() -> None:
    """Drop all cached topologies and faulted views."""
    with _lock:
        _topologies.clear()
        _views.clear()


def topology_cache_stats() -> dict[str, int]:
    with _lock:
        return {"topologies": len(_topologies), "views": len(_views)}
