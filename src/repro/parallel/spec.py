"""Pickle-safe specifications for parallel dispatch.

Workers receive a :class:`TopologySpec` (or, under the ``fork`` start
method, the topology object itself) plus tiny per-run :class:`RunTask`
tuples; everything heavyweight is rebuilt or inherited, never streamed
per task.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.topology.dragonfly import DragonflyParams, DragonflyTopology


@dataclass(frozen=True)
class TopologySpec:
    """Hashable, pickle-friendly identity of a pristine topology.

    ``(params, seed)`` fully determine a :class:`DragonflyTopology`'s
    structure — including the seeded global-cable assignment — so
    :meth:`build` reconstructs a byte-identical system in any process.
    """

    params: DragonflyParams
    seed: int = 0

    @classmethod
    def of(cls, top: DragonflyTopology) -> "TopologySpec":
        return cls(params=top.params, seed=top.seed)

    def build(self) -> DragonflyTopology:
        return DragonflyTopology(self.params, seed=self.seed)


@dataclass(frozen=True)
class RunTask:
    """One campaign run to execute: canonical index + its identity.

    ``index`` is the run's position in the canonical (sample-major,
    mode-minor) order — the order the serial loop executes and the
    order checkpoint records are flushed in.
    """

    index: int
    sample: int
    mode: str


@dataclass
class TaskResult:
    """What a worker sends back for one completed run."""

    index: int
    pid: int
    record: Any
    events: list[dict] = field(default_factory=list)
    metrics: Any = None
