"""Parallel execution of independent controlled ensembles.

Each :class:`~repro.core.ensembles.EnsembleConfig` already derives its
RNG purely from its own fields (``derive_rng(cfg.seed, "ensemble",
...)``), so a list of ensembles is embarrassingly parallel and the
results are identical to running them in a serial loop — the same
determinism-by-construction contract the campaign dispatcher relies on.

Results are delivered to ``on_result`` in **canonical list order**
(index 0 first), regardless of completion order, so callers can stream
output or persist a resumable checkpoint: after Ctrl-C, everything
delivered is a clean prefix of the serial output.
"""

from __future__ import annotations

import os
from typing import Callable

from repro.core.ensembles import EnsembleConfig, EnsembleResult, run_ensemble
from repro.parallel.executor import run_tasks
from repro.telemetry import (
    MemoryTraceWriter,
    MetricsRegistry,
    NULL_TRACE,
    Telemetry,
    resolve_telemetry,
)
from repro.topology.dragonfly import DragonflyTopology

_CTX = None


class _EnsembleContext:
    def __init__(self, top, cfgs, trace_enabled, metrics_enabled):
        self.top = top
        self.cfgs = cfgs
        self.trace_enabled = trace_enabled
        self.metrics_enabled = metrics_enabled


def _init_worker(ctx: _EnsembleContext) -> None:
    global _CTX
    _CTX = ctx


def _run_one(idx: int):
    ctx = _CTX
    trace = MemoryTraceWriter() if ctx.trace_enabled else NULL_TRACE
    tel = Telemetry(trace=trace, metrics=MetricsRegistry(enabled=ctx.metrics_enabled))
    res = run_ensemble(ctx.top, ctx.cfgs[idx], telemetry=tel)
    return (
        idx,
        os.getpid(),
        res,
        trace.events if ctx.trace_enabled else [],
        tel.metrics if ctx.metrics_enabled else None,
    )


def run_ensembles(
    top: DragonflyTopology,
    cfgs: list[EnsembleConfig],
    *,
    jobs: int = 1,
    telemetry: Telemetry | None = None,
    on_result: Callable[[int, EnsembleResult], None] | None = None,
    scramble_seed: int | None = None,
) -> list[EnsembleResult]:
    """Run every ensemble config; returns results in list order.

    With ``jobs`` > 1 the ensembles run on a worker pool; worker trace
    events are forwarded with ``worker``/``ensemble_index`` tags and
    worker metrics are merged into the parent registry in canonical
    order.  A worker process dying repeatedly raises — an ensemble has
    no per-run error-record to degrade into.
    """
    tel = resolve_telemetry(telemetry)
    if jobs <= 1:
        results: list[EnsembleResult] = []
        for idx, cfg in enumerate(cfgs):
            res = run_ensemble(top, cfg, telemetry=tel)
            results.append(res)
            if on_result is not None:
                on_result(idx, res)
        return results

    ctx = _EnsembleContext(
        top, list(cfgs), tel.trace.enabled, tel.metrics.enabled
    )
    slots: list[EnsembleResult | None] = [None] * len(cfgs)
    buffered: dict[int, tuple] = {}
    worker_ids: dict[int, int] = {}
    flush_pos = 0

    def _finalize_ready() -> None:
        nonlocal flush_pos
        while flush_pos < len(cfgs):
            item = buffered.pop(flush_pos, None)
            if item is None:
                return
            idx, pid, res, events, metrics = item
            slots[idx] = res
            if events:
                wid = worker_ids.setdefault(pid, len(worker_ids))
                for ev in events:
                    fields = {k: v for k, v in ev.items() if k != "ev"}
                    fields["worker"] = wid
                    fields["ensemble_index"] = idx
                    tel.trace.emit(ev["ev"], **fields)
            if metrics is not None:
                tel.metrics.merge(metrics)
            if on_result is not None:
                on_result(idx, res)
            flush_pos += 1

    for outcome in run_tasks(
        list(range(len(cfgs))),
        _run_one,
        jobs=jobs,
        initializer=_init_worker,
        initargs=(ctx,),
        scramble_seed=scramble_seed,
    ):
        if not outcome.ok:
            raise RuntimeError(
                f"ensemble {outcome.task} lost its worker process "
                f"{outcome.attempts} times"
            ) from outcome.error
        buffered[outcome.task] = outcome.result
        _finalize_ready()

    return [res for res in slots if res is not None]
