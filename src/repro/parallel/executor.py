"""ProcessPoolExecutor dispatch with bounded retries and test hooks.

:func:`run_tasks` is the one place worker pools are created.  Its
contract with callers:

* Results are yielded **as tasks complete** (or, with ``scramble_seed``
  set, in a deterministically shuffled order — the equivalence suite
  uses this to prove the consumer is completion-order independent).
* An exception raised *inside* the worker function propagates to the
  caller immediately, matching the serial loop's abort semantics.
  (Campaign workers isolate per-run failures into error-status records
  themselves, so anything escaping them is a harness bug.)
* A **dead worker** (``os._exit``, OOM-kill, segfault) breaks the whole
  pool; the dispatcher rebuilds it and resubmits every unfinished task,
  up to ``max_retries`` extra rounds per task.  Rebuild rounds after the
  first wait under the shared exponential-backoff-with-full-jitter
  helper (:mod:`repro.util.backoff` — the same schedule the distributed
  queue uses), so a persistently crashing environment is probed, not
  hammered.  Tasks still failing then are yielded as failures rather
  than raised, so one poisonous run cannot sink a campaign.
* ``KeyboardInterrupt`` / ``SystemExit`` (e.g. a SIGTERM handler) tear
  the pool down, SIGKILL any still-running workers so the parent leaves
  no orphans behind, and propagate — leaving whatever the caller already
  consumed intact.  This is what makes a killed checkpointed campaign
  resumable.
* A :class:`repro.guard.Watchdog` can be attached via ``watchdog=``;
  the dispatcher points it at each live pool's worker pids so stale
  heartbeats get the worker SIGKILLed — which surfaces here as a broken
  pool and flows through the same bounded-retry machinery as a crash.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import threading
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.util.backoff import Backoff, BackoffPolicy

#: start method for worker pools; ``fork`` lets workers inherit the
#: campaign context (topology, apps, scenario pool) without pickling
DEFAULT_MP_CONTEXT = "fork"

#: pool-rebuild backoff after a worker death: short base (a crashed
#: fork pool rebuilds cheaply) with a tight cap so the bounded-retry
#: rounds stay inside CI timeouts
POOL_RETRY_BACKOFF = BackoffPolicy(base=0.05, cap=1.0)


@dataclass
class TaskOutcome:
    """One finished (or given-up-on) task."""

    task: Any
    result: Any = None
    error: BaseException | None = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.error is None


def _pool_pids(pool: ProcessPoolExecutor) -> set[int]:
    """Pids of the pool's live worker processes (empty once shut down)."""
    procs = getattr(pool, "_processes", None) or {}
    return set(procs)


def _kill_pool_workers(pool: ProcessPoolExecutor) -> None:
    """SIGKILL every worker still alive — the parent is going down."""
    for pid in _pool_pids(pool):
        try:
            os.kill(pid, signal.SIGKILL)
        except (OSError, ProcessLookupError):
            pass


def _unstick_manager(pool: ProcessPoolExecutor) -> None:
    """Free a manager thread stuck on a result torn by the SIGKILL above.

    A worker killed mid-result-write leaves a partial message in the
    result pipe; if the executor's (non-daemon) manager thread had
    already entered ``recv`` it blocks forever on the missing bytes and
    would hang interpreter exit when ``concurrent.futures`` joins it.
    Feeding filler bytes completes the read; the garbage fails to
    unpickle, so the manager marks the pool broken and exits.  Only
    called on the parent-death path, where the pool is garbage anyway.
    """
    manager = getattr(pool, "_executor_manager_thread", None)
    writer = getattr(getattr(pool, "_result_queue", None), "_writer", None)
    if manager is None or writer is None or not manager.is_alive():
        return

    def feed() -> None:
        chunk = b"\x00" * 65536
        try:
            while manager.is_alive():
                writer.send_bytes(chunk)
                manager.join(0.05)
        except OSError:
            pass

    threading.Thread(target=feed, name="repro-pool-unstick", daemon=True).start()


def run_tasks(
    tasks: Sequence[Any],
    worker_fn: Callable[[Any], Any],
    *,
    jobs: int,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
    max_retries: int = 2,
    scramble_seed: int | None = None,
    mp_context: str = DEFAULT_MP_CONTEXT,
    watchdog: Any | None = None,
    retry_backoff: Backoff | None = None,
) -> Iterator[TaskOutcome]:
    """Fan ``tasks`` over ``jobs`` worker processes; yield outcomes.

    See the module docstring for the full contract.  ``retry_backoff``
    overrides the jittered wait before each pool-rebuild round (tests
    inject a no-sleep recorder); the default draws from
    :data:`POOL_RETRY_BACKOFF`.
    """
    ctx = mp.get_context(mp_context)
    scramble = (
        np.random.default_rng(scramble_seed) if scramble_seed is not None else None
    )
    backoff = retry_backoff if retry_backoff is not None else Backoff(POOL_RETRY_BACKOFF)
    pending: list[tuple[int, Any]] = list(enumerate(tasks))
    attempts = {pos: 0 for pos, _ in pending}
    round_ready: list[TaskOutcome] = []
    round_no = 0

    while pending:
        round_no += 1
        if round_no > 1:
            # a pool just died; give the host a jittered breather before
            # rebuilding instead of re-forking in a tight crash loop
            backoff.sleep(round_no - 1)
        for pos, _ in pending:
            attempts[pos] += 1
        pool = ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=ctx,
            initializer=initializer,
            initargs=initargs,
        )
        if watchdog is not None:
            # only this pool's workers are fair game for the watchdog;
            # stale heartbeat files from a previous (broken) pool must
            # not get live-looking pids killed after reuse
            watchdog.pid_provider = lambda pool=pool: _pool_pids(pool)
        broken: list[tuple[int, Any]] = []
        try:
            futs = {}
            for pos, task in pending:
                try:
                    futs[pool.submit(worker_fn, task)] = (pos, task)
                except BrokenProcessPool:
                    broken.append((pos, task))
            not_done = set(futs)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for fut in done:
                    pos, task = futs[fut]
                    exc = fut.exception()
                    if isinstance(exc, BrokenProcessPool):
                        broken.append((pos, task))
                        continue
                    if exc is not None:
                        raise exc
                    outcome = TaskOutcome(
                        task=task, result=fut.result(), attempts=attempts[pos]
                    )
                    if scramble is None:
                        yield outcome
                    else:
                        round_ready.append(outcome)
        except (KeyboardInterrupt, SystemExit, GeneratorExit):
            # the parent is dying (Ctrl-C, SIGTERM handler, consumer
            # abandoned us): reap the children so none are orphaned
            _kill_pool_workers(pool)
            _unstick_manager(pool)
            raise
        finally:
            if watchdog is not None:
                watchdog.pid_provider = lambda: set()
            pool.shutdown(wait=False, cancel_futures=True)

        pending = []
        for pos, task in broken:
            if attempts[pos] > max_retries:
                yield TaskOutcome(
                    task=task,
                    error=BrokenProcessPool(
                        f"worker died {attempts[pos]} times executing this task"
                    ),
                    attempts=attempts[pos],
                )
            else:
                pending.append((pos, task))

    if scramble is not None:
        for j in scramble.permutation(len(round_ready)):
            yield round_ready[int(j)]
