"""ProcessPoolExecutor dispatch with bounded retries and test hooks.

:func:`run_tasks` is the one place worker pools are created.  Its
contract with callers:

* Results are yielded **as tasks complete** (or, with ``scramble_seed``
  set, in a deterministically shuffled order — the equivalence suite
  uses this to prove the consumer is completion-order independent).
* An exception raised *inside* the worker function propagates to the
  caller immediately, matching the serial loop's abort semantics.
  (Campaign workers isolate per-run failures into error-status records
  themselves, so anything escaping them is a harness bug.)
* A **dead worker** (``os._exit``, OOM-kill, segfault) breaks the whole
  pool; the dispatcher rebuilds it and resubmits every unfinished task,
  up to ``max_retries`` extra rounds per task.  Tasks still failing then
  are yielded as failures rather than raised, so one poisonous run
  cannot sink a campaign.
* ``KeyboardInterrupt`` tears the pool down (without waiting) and
  propagates, leaving whatever the caller already consumed intact —
  this is what makes Ctrl-C during a checkpointed campaign resumable.
"""

from __future__ import annotations

import multiprocessing as mp
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

import numpy as np

#: start method for worker pools; ``fork`` lets workers inherit the
#: campaign context (topology, apps, scenario pool) without pickling
DEFAULT_MP_CONTEXT = "fork"


@dataclass
class TaskOutcome:
    """One finished (or given-up-on) task."""

    task: Any
    result: Any = None
    error: BaseException | None = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.error is None


def run_tasks(
    tasks: Sequence[Any],
    worker_fn: Callable[[Any], Any],
    *,
    jobs: int,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
    max_retries: int = 2,
    scramble_seed: int | None = None,
    mp_context: str = DEFAULT_MP_CONTEXT,
) -> Iterator[TaskOutcome]:
    """Fan ``tasks`` over ``jobs`` worker processes; yield outcomes.

    See the module docstring for the full contract.
    """
    ctx = mp.get_context(mp_context)
    scramble = (
        np.random.default_rng(scramble_seed) if scramble_seed is not None else None
    )
    pending: list[tuple[int, Any]] = list(enumerate(tasks))
    attempts = {pos: 0 for pos, _ in pending}
    round_ready: list[TaskOutcome] = []

    while pending:
        for pos, _ in pending:
            attempts[pos] += 1
        pool = ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=ctx,
            initializer=initializer,
            initargs=initargs,
        )
        broken: list[tuple[int, Any]] = []
        try:
            futs = {}
            for pos, task in pending:
                try:
                    futs[pool.submit(worker_fn, task)] = (pos, task)
                except BrokenProcessPool:
                    broken.append((pos, task))
            not_done = set(futs)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for fut in done:
                    pos, task = futs[fut]
                    exc = fut.exception()
                    if isinstance(exc, BrokenProcessPool):
                        broken.append((pos, task))
                        continue
                    if exc is not None:
                        raise exc
                    outcome = TaskOutcome(
                        task=task, result=fut.result(), attempts=attempts[pos]
                    )
                    if scramble is None:
                        yield outcome
                    else:
                        round_ready.append(outcome)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

        pending = []
        for pos, task in broken:
            if attempts[pos] > max_retries:
                yield TaskOutcome(
                    task=task,
                    error=BrokenProcessPool(
                        f"worker died {attempts[pos]} times executing this task"
                    ),
                    attempts=attempts[pos],
                )
            else:
                pending.append((pos, task))

    if scramble is not None:
        for j in scramble.permutation(len(round_ready)):
            yield round_ready[int(j)]
