"""Parallel campaign execution with serial-equivalent results.

:func:`run_campaign_parallel` fans a campaign's runs over worker
processes and produces output **byte-identical** to
:func:`repro.core.experiment.run_campaign` with ``jobs=1``:

* Every run's RNG stream is re-derived in the worker from the same
  ``(seed, app, size, sample, mode)`` key the serial loop uses — no
  state is threaded between runs, so worker count and completion order
  cannot influence a single draw (see ``docs/PARALLEL.md``).
* Results are buffered and finalized in the canonical (sample-major,
  mode-minor) order: checkpoint records are appended, worker trace
  events forwarded, and worker metrics merged only for the contiguous
  completed prefix.  The checkpoint file is therefore always a clean,
  resumable prefix of the serial file — including after Ctrl-C — and
  its final bytes are identical for any ``jobs``.
* A run that raises inside the worker becomes an error-status record
  (same isolation as serial); a run whose worker process *dies* is
  retried on a rebuilt pool a bounded number of times, then isolated
  into an error-status record as well.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import asdict

from repro.core import checkpoint as ckpt
from repro.core.experiment import (
    CampaignConfig,
    RunRecord,
    _error_record,
    campaign_fingerprint,
    emit_campaign_end,
    emit_campaign_start,
    execute_run,
    prepare_checkpoint,
    resolve_scenarios,
    sample_draws,
)
from repro.guard import Watchdog, WorkerHeartbeat, set_worker_heartbeat, write_bundle
from repro.parallel.executor import run_tasks
from repro.parallel.spec import RunTask, TaskResult
from repro.scheduler.background import BackgroundModel, BackgroundScenario
from repro.scheduler.placement import groups_spanned
from repro.telemetry import (
    MemoryTraceWriter,
    MetricsRegistry,
    NULL_TRACE,
    Telemetry,
    resolve_telemetry,
)
from repro.topology.dragonfly import DragonflyTopology

#: per-sample draws kept per worker (each entry holds a placement plus a
#: masked background array); modes of the same sample reuse the entry
_SAMPLE_CACHE_CAP = 4

_CTX = None
_SAMPLE_CACHE: dict[int, tuple] = {}
_HB: WorkerHeartbeat | None = None


class _CampaignContext:
    """Everything a worker needs, shipped once via the pool initializer.

    Under the ``fork`` start method the context is inherited by memory
    image (never pickled), so it can hold live topologies, applications,
    and the pre-built scenario pool.
    """

    def __init__(
        self,
        top: DragonflyTopology,
        run_top: DragonflyTopology,
        cfg: CampaignConfig,
        bm: BackgroundModel | None,
        scenarios: list[BackgroundScenario] | None,
        trace_enabled: bool,
        metrics_enabled: bool,
        series=None,
        heartbeat_dir: str | None = None,
    ) -> None:
        self.top = top
        self.run_top = run_top
        self.cfg = cfg
        self.bm = bm
        self.scenarios = scenarios
        self.trace_enabled = trace_enabled
        self.metrics_enabled = metrics_enabled
        #: SeriesConfig propagated to every worker's telemetry bundle
        self.series = series
        self.heartbeat_dir = heartbeat_dir
        self.modes = {m.name: m for m in cfg.modes}


def _init_worker(ctx: _CampaignContext) -> None:
    global _CTX, _SAMPLE_CACHE, _HB
    _CTX = ctx
    _SAMPLE_CACHE = {}
    _HB = None
    if ctx.heartbeat_dir is not None:
        # every guard tick inside the engines refreshes this file's
        # mtime; the parent's watchdog reads staleness as "hung"
        _HB = WorkerHeartbeat(ctx.heartbeat_dir)
        set_worker_heartbeat(_HB)


def _worker_telemetry(ctx: _CampaignContext) -> Telemetry:
    trace = MemoryTraceWriter() if ctx.trace_enabled else NULL_TRACE
    return Telemetry(
        trace=trace,
        metrics=MetricsRegistry(enabled=ctx.metrics_enabled),
        series=ctx.series,
    )


def _run_task(task: RunTask) -> TaskResult:
    ctx = _CTX
    draws = _SAMPLE_CACHE.get(task.sample)
    if draws is None:
        draws = sample_draws(ctx.top, ctx.cfg, task.sample, ctx.bm, ctx.scenarios)
        if len(_SAMPLE_CACHE) >= _SAMPLE_CACHE_CAP:
            _SAMPLE_CACHE.pop(next(iter(_SAMPLE_CACHE)))
        _SAMPLE_CACHE[task.sample] = draws
    nodes, bg, intensity = draws
    tel = _worker_telemetry(ctx)
    if _HB is not None:
        _HB.start_task()
    try:
        rec = execute_run(
            ctx.top,
            ctx.run_top,
            ctx.cfg,
            task.sample,
            ctx.modes[task.mode],
            nodes,
            bg,
            intensity,
            tel,
        )
    finally:
        if _HB is not None:
            _HB.end_task()
    return TaskResult(
        index=task.index,
        pid=os.getpid(),
        record=rec,
        events=tel.trace.events if ctx.trace_enabled else [],
        metrics=tel.metrics if ctx.metrics_enabled else None,
    )


def run_campaign_parallel(
    top: DragonflyTopology,
    cfg: CampaignConfig,
    *,
    jobs: int,
    background_model: BackgroundModel | None = None,
    scenarios: list[BackgroundScenario] | None = None,
    telemetry: Telemetry | None = None,
    checkpoint_path: str | None = None,
    resume: bool = False,
    scramble_seed: int | None = None,
    max_pool_retries: int = 2,
) -> list[RunRecord]:
    """Parallel twin of ``run_campaign`` (which delegates here for jobs>1).

    ``scramble_seed`` is a test hook: it makes the dispatcher deliver
    completions in a deterministically shuffled order, which must not —
    and provably does not — change any output.
    """
    run_top = top.with_faults(cfg.faults) if cfg.faults is not None else top
    done = prepare_checkpoint(checkpoint_path, top, cfg, resume)
    tel = resolve_telemetry(telemetry)
    emit_campaign_start(tel, cfg, done, jobs=jobs)
    bm, scenarios = resolve_scenarios(top, cfg, background_model, scenarios)

    mode_by_name = {m.name: m for m in cfg.modes}
    slots: list[RunRecord | None] = []
    tasks: list[RunTask] = []
    for i in range(cfg.samples):
        for mode in cfg.modes:
            idx = len(slots)
            prior = done.get((i, mode.name))
            slots.append(prior)
            if prior is None:
                tasks.append(RunTask(index=idx, sample=i, mode=mode.name))

    ctx = _CampaignContext(
        top,
        run_top,
        cfg,
        bm,
        scenarios,
        trace_enabled=tel.trace.enabled,
        metrics_enabled=tel.metrics.enabled,
        series=tel.series,
    )

    buffered: dict[int, TaskResult] = {}
    worker_ids: dict[int, int] = {}
    flush_pos = 0

    def _finalize_ready() -> None:
        """Commit the contiguous completed prefix, in canonical order."""
        nonlocal flush_pos
        while flush_pos < len(tasks):
            tr = buffered.pop(tasks[flush_pos].index, None)
            if tr is None:
                return
            rec = tr.record
            slots[tr.index] = rec
            if checkpoint_path is not None:
                ckpt.append_record(checkpoint_path, rec)
            if tr.events:
                wid = worker_ids.setdefault(tr.pid, len(worker_ids))
                for ev in tr.events:
                    fields = {k: v for k, v in ev.items() if k != "ev"}
                    fields["worker"] = wid
                    fields["run_index"] = tr.index
                    tel.trace.emit(ev["ev"], **fields)
            if tr.metrics is not None:
                tel.metrics.merge(tr.metrics, tag=tr.index)
            flush_pos += 1

    guard_policy = cfg.guard if (cfg.guard is not None and cfg.guard.active) else None
    watchdog = None
    if tasks and guard_policy is not None and guard_policy.hang_timeout is not None:
        ctx.heartbeat_dir = tempfile.mkdtemp(prefix="repro-hb-")
        # published so live observers (``repro-study top``) can find the
        # per-worker liveness files without being told the directory
        tel.event("campaign.workers", jobs=jobs, heartbeat_dir=ctx.heartbeat_dir)
        watchdog = Watchdog(
            ctx.heartbeat_dir,
            guard_policy.hang_timeout,
            pid_provider=lambda: set(),  # run_tasks rebinds this per pool
            on_kill=lambda pid, age: tel.event(
                "guard.worker_hung", pid=pid, stale_s=round(age, 3)
            ),
        )

    if tasks:
        try:
            if watchdog is not None:
                watchdog.start()
            for outcome in run_tasks(
                tasks,
                _run_task,
                jobs=jobs,
                initializer=_init_worker,
                initargs=(ctx,),
                max_retries=max_pool_retries,
                scramble_seed=scramble_seed,
                watchdog=watchdog,
            ):
                task = outcome.task
                if outcome.ok:
                    buffered[task.index] = outcome.result
                else:
                    # the worker process died repeatedly on this run (crash
                    # or watchdog kill): isolate it exactly like an in-run
                    # failure would be
                    nodes, _, intensity = sample_draws(
                        top, cfg, task.sample, bm, scenarios
                    )
                    rec = _error_record(
                        cfg,
                        mode_by_name[task.mode],
                        task.sample,
                        groups_spanned(top, nodes),
                        intensity,
                        outcome.error,
                        outcome.attempts,
                    )
                    label = f"{cfg.app.name}-{task.mode}-s{task.sample}"
                    tel.event(
                        "guard.worker_lost",
                        label=label,
                        sample=task.sample,
                        mode=task.mode,
                        attempts=outcome.attempts,
                        error=str(outcome.error),
                    )
                    if guard_policy is not None and guard_policy.bundle_dir is not None:
                        path = write_bundle(
                            guard_policy.bundle_dir,
                            label=label,
                            reason={
                                "type": type(outcome.error).__name__,
                                "message": str(outcome.error),
                            },
                            fingerprint=campaign_fingerprint(top, cfg),
                            rng_key={
                                "seed": cfg.seed,
                                "app": cfg.app.name,
                                "n_nodes": cfg.n_nodes,
                                "sample": task.sample,
                                "mode": task.mode,
                                "attempt": outcome.attempts,
                            },
                            policy=asdict(guard_policy),
                        )
                        if path is not None:
                            tel.event("guard.bundle", label=label, path=str(path))
                    buffered[task.index] = TaskResult(
                        index=task.index, pid=os.getpid(), record=rec
                    )
                _finalize_ready()
        finally:
            if watchdog is not None:
                watchdog.stop()
            if ctx.heartbeat_dir is not None:
                shutil.rmtree(ctx.heartbeat_dir, ignore_errors=True)

    records = [rec for rec in slots if rec is not None]
    emit_campaign_end(tel, cfg, records)
    return records
