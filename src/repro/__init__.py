"""repro — reproduction of "Performance Evaluation of Adaptive Routing on
Dragonfly-based Production Systems" (Chunduri et al., IPDPS 2021).

The package simulates Cray Aries dragonfly systems (ALCF Theta, NERSC
Cori) well enough to study the paper's subject: the four adaptive
routing bias modes AD0..AD3 and their effect on production application
performance, system-wide congestion counters, and packet latency.

Quickstart::

    import numpy as np
    from repro import theta, MILC, CampaignConfig, run_campaign, stats_by_mode

    top = theta()
    records = run_campaign(top, CampaignConfig(app=MILC(), samples=10))
    print(stats_by_mode(records))

Layout:

* :mod:`repro.topology` — the Aries dragonfly structure (Theta/Cori),
* :mod:`repro.network` — fluid and packet-level congestion engines,
  tile counters,
* :mod:`repro.mpi` — collective algorithms, phases, routing-mode env,
  an imperative sim-MPI,
* :mod:`repro.apps` — MILC, Nek5000, HACC, Qbox, Rayleigh workload
  models (+ synthetic microbenchmarks),
* :mod:`repro.scheduler` — placement, production workload mix,
  background noise,
* :mod:`repro.monitoring` — AutoPerf, LDMS, NIC latency counters,
* :mod:`repro.core` — routing biases/policy, experiment harness,
  ensembles, facility studies, metrics/analysis, the routing advisor.
"""

from repro.core.biases import AD0, AD1, AD2, AD3, RoutingMode, VENDOR_MODES, mode_by_name
from repro.core.experiment import (
    CampaignConfig,
    RunRecord,
    run_app_once,
    run_campaign,
    stats_by_mode,
)
from repro.core.ensembles import EnsembleConfig, run_ensemble
from repro.core.facility import run_default_change_study
from repro.core.advisor import recommend
from repro.apps import MILC, MILCReorder, Nek5000, HACC, Qbox, Rayleigh
from repro.guard import GuardPolicy, InvariantViolation, RunTimeoutError
from repro.mpi.env import RoutingEnv
from repro.topology.systems import theta, cori, mini, toy

__version__ = "1.0.0"

__all__ = [
    "AD0",
    "AD1",
    "AD2",
    "AD3",
    "RoutingMode",
    "VENDOR_MODES",
    "mode_by_name",
    "CampaignConfig",
    "RunRecord",
    "run_app_once",
    "run_campaign",
    "stats_by_mode",
    "EnsembleConfig",
    "run_ensemble",
    "run_default_change_study",
    "recommend",
    "GuardPolicy",
    "InvariantViolation",
    "RunTimeoutError",
    "MILC",
    "MILCReorder",
    "Nek5000",
    "HACC",
    "Qbox",
    "Rayleigh",
    "RoutingEnv",
    "theta",
    "cori",
    "mini",
    "toy",
    "__version__",
]
