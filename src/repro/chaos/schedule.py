"""Seeded chaos schedules: deterministic per-hit failure decisions.

A schedule is parsed from a ``;``-separated mini-language, one rule per
clause::

    site-glob:action[:param=value[,param=value...]]

    store.commit.pre_rename:enospc:p=0.25
    queue.commit.link:eio:at=2
    worker.heartbeat:crash:at=3
    service.job.dispatch:latency:ms=50
    store.*:trace

Fields:

* **site-glob** — an ``fnmatch`` pattern over the registered sites in
  :data:`repro.chaos.failpoints.SITES`; a pattern matching no site is a
  spec error (it would silently test nothing).
* **action** — ``enospc`` / ``eio`` (raise the ``OSError``), ``torn``
  (half-write the in-flight file, then raise ``EIO``), ``crash``
  (``os._exit(137)`` — the SIGKILL signature), ``latency`` (sleep
  ``ms``, the fail-slow mode), or ``trace`` (record the hit, act not).
* **params** — ``p=0.25`` fire probability (default 1), ``at=N`` fire
  only on the N-th hit of that site in this process (1-based),
  ``times=N`` fire at most N times, ``ms=N`` latency milliseconds.

Determinism is the whole point: probability draws come from
:func:`repro.util.rng.derive_rng` keyed on ``(seed, "chaos", site,
hit-index, epoch, rule-index)``, so a failure run replays exactly from
``(seed, spec)``.  The *epoch* distinguishes restart attempts of a soak
(each restart re-counts hits from zero); bumping it decorrelates the
probability draws while keeping the whole soak a pure function of its
inputs.  Every fire is recorded in :attr:`ChaosSchedule.fired` (and
appended to ``log_path`` when given, flushed before the action runs so
even a ``crash`` leaves its own footprint).
"""

from __future__ import annotations

import errno as _errno
import json
import os
import threading
import time
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Callable

from repro.util.rng import derive_rng

#: exit status of the ``crash`` action — the classic SIGKILL code, so a
#: chaos crash is indistinguishable from ``kill -9`` to every supervisor
CRASH_EXIT_CODE = 137

ACTIONS = ("enospc", "eio", "torn", "crash", "latency", "trace")

_ERRNOS = {"enospc": _errno.ENOSPC, "eio": _errno.EIO}


class ChaosSpecError(ValueError):
    """A malformed schedule spec (bad site, action, or parameter)."""

    def __init__(self, clause: str, reason: str) -> None:
        super().__init__(f"bad chaos rule {clause!r}: {reason}")
        self.clause = clause
        self.reason = reason


@dataclass
class ChaosRule:
    """One parsed clause: which site(s), what to do, when."""

    pattern: str
    action: str
    p: float = 1.0
    at: int | None = None
    times: int | None = None
    ms: float = 10.0
    #: the original clause text (fired-log attribution)
    source: str = ""
    #: fires so far (``times`` bookkeeping; per-process, like hit counts)
    fires: int = field(default=0, compare=False)

    def check_registered(self, sites: dict[str, str]) -> None:
        """Reject patterns matching nothing — they would test nothing."""
        if not any(fnmatch(site, self.pattern) for site in sites):
            raise ChaosSpecError(
                self.source or self.pattern,
                f"matches no registered failpoint site (have: "
                f"{', '.join(sorted(sites))})",
            )


def _parse_rule(clause: str) -> ChaosRule:
    parts = [p.strip() for p in clause.split(":")]
    if not parts or not parts[0]:
        raise ChaosSpecError(clause, "empty site pattern")
    if len(parts) < 2:
        raise ChaosSpecError(clause, "missing action (site:action[:k=v,...])")
    if len(parts) > 3:
        raise ChaosSpecError(clause, "too many ':' fields")
    pattern, action = parts[0], parts[1]
    if action not in ACTIONS:
        raise ChaosSpecError(
            clause, f"unknown action {action!r} (choose from {', '.join(ACTIONS)})"
        )
    rule = ChaosRule(pattern=pattern, action=action, source=clause)
    if len(parts) == 3 and parts[2]:
        for kv in parts[2].split(","):
            key, sep, value = kv.partition("=")
            key = key.strip()
            value = value.strip()
            if not sep or not value:
                raise ChaosSpecError(clause, f"parameter {kv!r} is not k=v")
            try:
                if key == "p":
                    rule.p = float(value)
                    if not 0.0 <= rule.p <= 1.0:
                        raise ChaosSpecError(clause, f"p={rule.p} outside [0, 1]")
                elif key == "at":
                    rule.at = int(value)
                    if rule.at < 1:
                        raise ChaosSpecError(clause, "at= is 1-based")
                elif key == "times":
                    rule.times = int(value)
                    if rule.times < 1:
                        raise ChaosSpecError(clause, "times= must be >= 1")
                elif key == "ms":
                    rule.ms = float(value)
                    if rule.ms < 0:
                        raise ChaosSpecError(clause, "ms= must be >= 0")
                else:
                    raise ChaosSpecError(clause, f"unknown parameter {key!r}")
            except ValueError as exc:
                if isinstance(exc, ChaosSpecError):
                    raise
                raise ChaosSpecError(clause, f"bad value for {key!r}: {value!r}") from exc
    return rule


class ChaosSchedule:
    """The per-hit decision engine behind active failpoints.

    Thread-safe: the service hits failpoints from several campaign
    threads at once.  Hit counters and ``times`` budgets are
    per-process (a forked child starts fresh — that is what makes
    ``at=N`` rules meaningful across soak restarts).
    """

    def __init__(
        self,
        rules: list[ChaosRule],
        *,
        seed: int = 0,
        epoch: int = 0,
        log_path: str | None = None,
        sleeper: Callable[[float], None] = time.sleep,
        spec: str = "",
    ) -> None:
        self.rules = rules
        self.seed = int(seed)
        self.epoch = int(epoch)
        self.log_path = log_path
        self.sleeper = sleeper
        self.spec = spec
        self.hits: dict[str, int] = {}
        #: every fire, oldest first: {"site", "hit", "action", "rule", "epoch"}
        self.fired: list[dict] = []
        self._lock = threading.Lock()

    @classmethod
    def parse(
        cls,
        spec: str,
        *,
        seed: int = 0,
        epoch: int = 0,
        log_path: str | None = None,
        sleeper: Callable[[float], None] = time.sleep,
    ) -> "ChaosSchedule":
        """Parse the ``;``-separated rule mini-language (see module doc)."""
        rules = [
            _parse_rule(clause.strip())
            for clause in spec.split(";")
            if clause.strip()
        ]
        return cls(
            rules, seed=seed, epoch=epoch, log_path=log_path,
            sleeper=sleeper, spec=spec,
        )

    def describe(self) -> str:
        """One line per rule, for logs and the soak report."""
        if not self.rules:
            return "(empty schedule: no rules, all failpoints pass)"
        return "; ".join(r.source or f"{r.pattern}:{r.action}" for r in self.rules)

    # ------------------------------------------------------------------
    def hit(self, site: str, *, path=None, data: str | None = None) -> None:
        """One failpoint hit: count it, match rules, maybe act."""
        with self._lock:
            n = self.hits.get(site, 0) + 1
            self.hits[site] = n
            rule = self._match(site, n)
            if rule is None:
                return
            rule.fires += 1
            entry = {
                "site": site,
                "hit": n,
                "action": rule.action,
                "rule": rule.source,
                "epoch": self.epoch,
            }
            self.fired.append(entry)
            self._log(entry)
        # act outside the lock: latency must not serialize other sites,
        # and the torn write takes its own I/O time
        self._act(rule, site, n, path, data)

    def _match(self, site: str, n: int) -> ChaosRule | None:
        """First rule that decides to fire for hit ``n`` of ``site``."""
        for idx, rule in enumerate(self.rules):
            if not fnmatch(site, rule.pattern):
                continue
            if rule.at is not None and n != rule.at:
                continue
            if rule.times is not None and rule.fires >= rule.times:
                continue
            if rule.p < 1.0:
                draw = derive_rng(
                    self.seed, "chaos", site, n, self.epoch, idx
                ).random()
                if draw >= rule.p:
                    continue
            return rule
        return None

    def _log(self, entry: dict) -> None:
        """Append one fire to the JSONL log, flushed pre-action so even
        a crash leaves its own footprint (plain I/O: the chaos layer
        must never recurse into itself)."""
        if self.log_path is None:
            return
        try:
            with open(self.log_path, "a") as f:
                f.write(json.dumps(entry) + "\n")
                f.flush()
                os.fsync(f.fileno())
        except OSError:
            pass

    def _act(self, rule: ChaosRule, site: str, n: int, path, data) -> None:
        action = rule.action
        if action == "trace":
            return
        if action == "latency":
            if rule.ms > 0:
                self.sleeper(rule.ms / 1000.0)
            return
        if action == "crash":
            # the SIGKILL signature: no cleanup, no atexit, no flush
            os._exit(CRASH_EXIT_CODE)
        if action == "torn":
            self._tear(path, data)
            raise OSError(
                _errno.EIO, "injected torn write (chaos)",
                None if path is None else os.fspath(path),
            )
        # enospc / eio
        eno = _ERRNOS[action]
        raise OSError(
            eno, f"injected {os.strerror(eno)} (chaos)",
            None if path is None else os.fspath(path),
        )

    @staticmethod
    def _tear(path, data: str | None) -> None:
        """Leave a believable half-written file behind before raising.

        With ``data`` (the payload in flight) the first half is appended
        — a torn append/write.  Without it, an existing file is
        truncated to half its size — a torn overwrite.
        """
        if path is None:
            return
        try:
            if data:
                with open(path, "ab") as f:
                    f.write(data.encode()[: max(1, len(data) // 2)])
                    f.flush()
                    os.fsync(f.fileno())
            elif os.path.exists(path):
                size = os.path.getsize(path)
                with open(path, "r+b") as f:
                    f.truncate(size // 2)
        except OSError:
            pass  # the injected EIO is the point; the tear is best-effort

    # ------------------------------------------------------------------
    def to_env(self, env: dict | None = None) -> dict:
        """Environment variables reproducing this schedule in a subprocess."""
        from repro.chaos import failpoints as fp

        out = env if env is not None else {}
        out[fp.ENV_SPEC] = self.spec or self.describe()
        out[fp.ENV_SEED] = str(self.seed)
        out[fp.ENV_EPOCH] = str(self.epoch)
        if self.log_path is not None:
            out[fp.ENV_LOG] = str(self.log_path)
        return out
