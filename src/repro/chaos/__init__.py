"""Deterministic failure injection for the durability layers.

``repro.chaos`` turns the platform's one-off kill tests into a
systematic harness: named failpoints in every durability-critical code
path (:mod:`~repro.chaos.failpoints`), seeded schedules that decide
per-hit whether to error/tear/crash/delay (:mod:`~repro.chaos.
schedule`), a single injectable I/O layer under the store/queue/
checkpoint commit protocols (:mod:`~repro.chaos.fs`), and a soak
runner executing real campaigns under a schedule while asserting the
standing invariants (:mod:`~repro.chaos.runner` — imported lazily; it
pulls in the campaign engine).  See ``docs/CHAOS.md``.
"""

from repro.chaos.failpoints import (
    SITES,
    UnknownFailpointError,
    activate,
    activate_from_env,
    active,
    current,
    deactivate,
    failpoint,
    is_active,
)
from repro.chaos.schedule import (
    ACTIONS,
    CRASH_EXIT_CODE,
    ChaosRule,
    ChaosSchedule,
    ChaosSpecError,
)

# NOTE: repro.chaos.runner is deliberately NOT imported here — it
# depends on repro.core.experiment, which (via checkpoint -> chaos.fs)
# imports this package; importing it at module level would be a cycle.

__all__ = [
    "ACTIONS",
    "CRASH_EXIT_CODE",
    "ChaosRule",
    "ChaosSchedule",
    "ChaosSpecError",
    "SITES",
    "UnknownFailpointError",
    "activate",
    "activate_from_env",
    "active",
    "current",
    "deactivate",
    "failpoint",
    "is_active",
]
