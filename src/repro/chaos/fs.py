"""The injectable I/O layer under the durability-critical write paths.

An ``errfs`` in miniature: the store, queue, and checkpoint commit
protocols route their writes through these two helpers instead of bare
``os`` calls, so one layer owns both the real syscall sequence and the
failpoints inside it.  With chaos inactive each helper performs
*exactly* the open/write/flush/fsync/replace sequence the callers used
to inline — same syscalls, same order, same buffering — which is what
keeps the strict-no-op golden test honest.

The failpoints sit at the interesting instants of each protocol:

* after the payload reaches the tmp/append file but before fsync
  (``post_tmp`` / the append site) — the torn-write window;
* after fsync but before the rename/link publishes the data
  (``pre_rename``) — a crash here loses nothing visible.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.chaos.failpoints import failpoint


def append_line(path: Path | str, line: str, *, site: str) -> None:
    """Durably append one line: failpoint, open-append, write, fsync.

    ``site`` fires *before* the write with the payload attached, so a
    ``torn`` rule can leave a believable half-appended line behind —
    exactly the damage ``checkpoint.repair_tail`` exists to undo.
    """
    failpoint(site, path=path, data=line)
    with open(path, "a") as f:
        f.write(line)
        f.flush()
        os.fsync(f.fileno())


def write_text_atomic(
    path: Path | str,
    text: str,
    tmp: Path | str,
    *,
    post_tmp: str | None = None,
    pre_rename: str | None = None,
) -> None:
    """Publish ``text`` at ``path`` via write-tmp/fsync/os.replace.

    The caller owns ``tmp`` (naming, collision avoidance, cleanup on
    error — callers already unlink it in their ``finally``).  Both
    failpoints are optional so protocols can expose only the windows
    they care about.
    """
    with open(tmp, "w") as f:
        f.write(text)
        f.flush()
        if post_tmp is not None:
            failpoint(post_tmp, path=tmp, data=text)
        os.fsync(f.fileno())
    if pre_rename is not None:
        failpoint(pre_rename, path=path, data=text)
    os.replace(tmp, path)
